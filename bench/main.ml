(* Benchmark harness — one section per experiment of DESIGN.md §6.

   The paper has no quantitative tables; each experiment measures one
   of its comparative claims against the sequential-rounds baseline (or
   the transfer-blind ablation), on the simulated substrate. Absolute
   numbers are substrate-dependent; the SHAPES — who wins, by what
   factor, where the gap opens — are what EXPERIMENTS.md records.

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- E1 E4   (a subset) *)

open Vsgc_types
module System = Vsgc_harness.System
module SS = Vsgc_harness.Server_system
module Executor = Vsgc_ioa.Executor
module Sync_runner = Vsgc_ioa.Sync_runner
module Metrics = Vsgc_ioa.Metrics
module Client = Vsgc_core.Client

let section id title = Fmt.pr "@.== %s: %s ==@." id title
let rowf fmt = Fmt.pr fmt

(* -- Machine-readable rows ------------------------------------------------ *)

(* A hand-rolled JSON value (the toolchain ships no JSON library, and
   the rows are flat): experiments record one object per table row;
   the driver writes them to BENCH_wire.json so tooling can track the
   wire-layer numbers across commits without scraping the tables. *)
module Json = struct
  type t =
    | Int of int
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec pp ppf = function
    | Int i -> Fmt.pf ppf "%d" i
    | Num f -> Fmt.pf ppf "%.3f" f
    | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
    | Arr l -> Fmt.pf ppf "[@[<hv>%a@]]" Fmt.(list ~sep:(any ",@ ") pp) l
    | Obj kvs ->
        let pp_kv ppf (k, v) = Fmt.pf ppf "\"%s\": %a" (escape k) pp v in
        Fmt.pf ppf "{@[<hv>%a@]}" Fmt.(list ~sep:(any ",@ ") pp_kv) kvs
end

(* -smoke: reduced iterations and no JSON writes — the CI perf gate
   runs the hot-path experiments for shape, not for numbers. *)
let smoke = ref false

(* Every row carries the host parallelism, compiler and pool width it
   was measured under, so numbers from different machines or -jobs
   settings are never compared as like-for-like. An experiment that
   already recorded one of these keys (E19 records its own [jobs])
   wins over the ambient value. *)
let with_meta fields =
  let ambient =
    [
      ("cores", Json.Int (Vsgc_ioa.Dpool.recommended_jobs ()));
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("jobs", Json.Int (Executor.get_default_jobs ()));
    ]
  in
  fields @ List.filter (fun (k, _) -> not (List.mem_assoc k fields)) ambient

let bench_rows : Json.t list ref = ref []
let record fields = bench_rows := Json.Obj (with_meta fields) :: !bench_rows

(* The hot-path experiments (E13/E14) land in their own file so the
   executor/codec optimisation numbers are tracked separately from the
   wire-layer baseline in BENCH_wire.json. *)
let hot_rows : Json.t list ref = ref []
let record_hot fields = hot_rows := Json.Obj (with_meta fields) :: !hot_rows

(* E16's sanitizer-overhead rows track the cost of the honesty
   certificate separately from the optimisation numbers. *)
let san_rows : Json.t list ref = ref []
let record_san fields = san_rows := Json.Obj (with_meta fields) :: !san_rows

(* E17's replicated-KV-service rows (batched vs unbatched stable
   delivery, loaded and faulted arms) land in BENCH_kv.json. *)
let kv_rows : Json.t list ref = ref []
let record_kv fields = kv_rows := Json.Obj (with_meta fields) :: !kv_rows

(* E18's bake-off rows — the sequencer-based GCS arm against the
   symmetric (Skeen-style) arm, same load, same faults — land in
   BENCH_bakeoff.json. *)
let bakeoff_rows : Json.t list ref = ref []
let record_bakeoff fields = bakeoff_rows := Json.Obj (with_meta fields) :: !bakeoff_rows

(* E19's multicore rows — the deterministic-merge gate and the scaling
   arms — land in BENCH_multicore.json. *)
let mc_rows : Json.t list ref = ref []
let record_mc fields = mc_rows := Json.Obj (with_meta fields) :: !mc_rows

let write_file file rows =
  match List.rev rows with
  | [] -> ()
  | rows ->
      let oc = open_out file in
      let ppf = Format.formatter_of_out_channel oc in
      Fmt.pf ppf "%a@." Json.pp (Json.Obj [ ("rows", Json.Arr rows) ]);
      close_out oc;
      Fmt.pr "@.wrote %s (%d rows)@." file (List.length rows)

let write_rows () =
  if not !smoke then begin
    write_file "BENCH_wire.json" !bench_rows;
    write_file "BENCH_hotpath.json" !hot_rows;
    write_file "BENCH_sanitize.json" !san_rows;
    write_file "BENCH_kv.json" !kv_rows;
    write_file "BENCH_bakeoff.json" !bakeoff_rows;
    write_file "BENCH_multicore.json" !mc_rows
  end

(* -- Round-measurement helpers ------------------------------------------- *)

(* Run synchronous rounds until [pred] holds (checked after each
   round's local phase); returns the number of rounds consumed. *)
let rounds_until ?(max_rounds = 60) sys pred =
  let exec = System.exec sys in
  ignore (Sync_runner.local_quiesce exec);
  let rec go r =
    if pred () || r >= max_rounds then r
    else begin
      ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
      go (r + 1)
    end
  in
  go 0

let gcs_system ~seed ~n = System.create ~seed ~n ()

let baseline_system ~seed ~n =
  System.create ~seed ~n ~endpoint_builder:(fun p -> fst (Vsgc_baseline.component p)) ()

(* Establish a stable n-member view (round-synchronously, so that the
   metrics up to the measurement window are comparable across systems). *)
let establish sys ~n =
  let all = Proc.Set.of_range 0 (n - 1) in
  let v = System.reconfigure sys ~set:all in
  let r = rounds_until sys (fun () -> System.all_in_view sys v) in
  if r >= 60 then failwith "bench: initial view did not form";
  v

(* One reconfiguration, measured in communication rounds. The
   membership round costs one round; the paper's algorithm overlaps the
   synchronization round with it, the baseline runs it afterwards. *)
let measure_view_change sys ~target_set =
  let exec = System.exec sys in
  ignore (System.start_change sys ~set:target_set);
  ignore (Sync_runner.local_quiesce exec);
  (* the membership algorithm's message round; GCS synchronization
     messages travel in parallel with it *)
  ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
  let v = System.deliver_view sys ~set:target_set in
  let extra = rounds_until sys (fun () -> System.all_in_view sys v) in
  (1 + extra, v)

(* -- E1: view-change latency in rounds ------------------------------------ *)

let e1 () =
  section "E1" "view-change latency (communication rounds)";
  rowf "%6s  %12s  %12s@." "n" "gcs" "baseline";
  List.iter
    (fun n ->
      let target = Proc.Set.of_range 0 (n - 2) in
      let gcs =
        let sys = gcs_system ~seed:11 ~n in
        ignore (establish sys ~n);
        fst (measure_view_change sys ~target_set:target)
      in
      let base =
        let sys = baseline_system ~seed:11 ~n in
        ignore (establish sys ~n);
        fst (measure_view_change sys ~target_set:target)
      in
      rowf "%6d  %12d  %12d@." n gcs base)
    [ 2; 4; 8; 16; 32 ]

(* -- E2: synchronization traffic during a view change --------------------- *)

let e2 () =
  section "E2" "traffic during one view change (copies and bytes)";
  rowf "%6s  %10s  %10s  %12s  %14s  %14s@." "n" "gcs:sync" "base:bsync" "gcs:bytes"
    "mergesync:fB" "mergesync:cB";
  let count sys k = Metrics.sent_count (Executor.metrics (System.exec sys)) k in
  let bytes sys =
    List.fold_left
      (fun acc k -> acc + Metrics.sent_bytes (Executor.metrics (System.exec sys)) k)
      0
      Msg.Wire.[ K_view_msg; K_app; K_fwd; K_sync; K_bsync ]
  in
  List.iter
    (fun n ->
      let target = Proc.Set.of_range 0 (n - 2) in
      let run build =
        let sys = build ~seed:12 ~n in
        ignore (establish sys ~n);
        let before_sync = count sys Msg.Wire.K_sync in
        let before_bsync = count sys Msg.Wire.K_bsync in
        let before_bytes = bytes sys in
        ignore (measure_view_change sys ~target_set:target);
        ( count sys Msg.Wire.K_sync - before_sync,
          count sys Msg.Wire.K_bsync - before_bsync,
          bytes sys - before_bytes )
      in
      let gs, _, gb = run gcs_system in
      let _, bb, _ = run baseline_system in
      (* the §5.2.4 compact markers pay off when the start_change set
         extends beyond the current view — measure them on a merge of
         an (n-1)-group with a singleton *)
      let merge_bytes build =
        let sys = build () in
        let grp = Proc.Set.of_range 0 (n - 2) in
        let v0 = System.reconfigure sys ~origin:0 ~set:grp in
        ignore (rounds_until sys (fun () -> System.all_in_view sys v0));
        let sync_bytes () =
          Metrics.sent_bytes (Executor.metrics (System.exec sys)) Msg.Wire.K_sync
        in
        let before = sync_bytes () in
        let v = System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 0 (n - 1)) in
        ignore (rounds_until sys (fun () -> System.all_in_view sys v));
        sync_bytes () - before
      in
      let mb_full = merge_bytes (fun () -> System.create ~seed:12 ~n ()) in
      let mb_compact =
        merge_bytes (fun () -> System.create ~seed:12 ~compact_sync:true ~n ())
      in
      rowf "%6d  %10d  %10d  %12d  %14d  %14d@." n gs bb gb mb_full mb_compact)
    [ 2; 4; 8; 16; 32 ]

(* -- E3: forwarding strategies --------------------------------------------- *)

type e3_phase = Frozen | Lossy | Open_

let e3_run ~strategy ~m =
  let phase = ref Open_ in
  let weights (a : Action.t) =
    match a with
    | Action.Rf_deliver (2, 1, _) when !phase = Frozen -> 0.0
    | Action.Rf_lose (2, 1) when !phase = Lossy -> 1.0
    | Action.Rf_lose _ -> 0.0
    | _ -> 1.0
  in
  let sys = System.create ~seed:13 ~weights ~strategy ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  phase := Frozen;
  for i = 1 to m do
    System.send sys 2 (Fmt.str "lost-%d" i)
  done;
  let have p = List.length (Client.delivered_from !(System.client sys p) 2) = m in
  ignore (System.run sys ~max_steps:2_000_000 ~stop:(fun () -> have 0 && have 3));
  System.crash sys 2;
  phase := Lossy;
  ignore
    (System.run sys ~max_steps:2_000_000 ~stop:(fun () ->
         Vsgc_corfifo.channel_length !(System.corfifo sys) 2 1 = 0));
  phase := Open_;
  let before = Metrics.sent_count (Executor.metrics (System.exec sys)) Msg.Wire.K_fwd in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_list [ 0; 1; 3 ]));
  System.settle ~max_steps:5_000_000 sys;
  let copies =
    Metrics.sent_count (Executor.metrics (System.exec sys)) Msg.Wire.K_fwd - before
  in
  let recovered = List.length (Client.delivered_from !(System.client sys 1) 2) in
  (copies, recovered)

let e3 () =
  section "E3" "forwarding strategies: copies forwarded to recover m messages";
  rowf "%6s  %10s  %12s  %10s@." "m" "simple" "min-copies" "recovered";
  List.iter
    (fun m ->
      let simple, r1 = e3_run ~strategy:Vsgc_core.Forwarding.Simple ~m in
      let minc, r2 = e3_run ~strategy:Vsgc_core.Forwarding.Min_copies ~m in
      assert (r1 = m && r2 = m);
      rowf "%6d  %10d  %12d  %10d@." m simple minc m)
    [ 10; 50; 100 ]

(* -- E4: stable-view throughput (bechamel) --------------------------------- *)

let e4_run ~n ~msgs () =
  let sys = System.create ~seed:14 ~monitors:`None ~n () in
  let all = Proc.Set.of_range 0 (n - 1) in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:msgs;
  System.settle ~max_steps:5_000_000 sys

let e4 () =
  section "E4" "stable-view multicast cost (bechamel, whole run per config)";
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"throughput"
      [
        Test.make ~name:"n=4,msgs=20" (Staged.stage (e4_run ~n:4 ~msgs:20));
        Test.make ~name:"n=8,msgs=20" (Staged.stage (e4_run ~n:8 ~msgs:20));
        Test.make ~name:"n=16,msgs=10" (Staged.stage (e4_run ~n:16 ~msgs:10));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  rowf "%-28s  %16s@." "config" "ns/run";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rowf "%-28s  %16.0f@." name est
      | _ -> rowf "%-28s  %16s@." name "n/a")
    results

(* -- E5: obsolete views under joins mid-change ------------------------------ *)

let e5_run build ~joins =
  let n = 4 + joins in
  let sys = build ~seed:15 ~n in
  let core = Proc.Set.of_range 0 3 in
  let v0 = System.reconfigure sys ~set:core in
  ignore (rounds_until sys (fun () -> System.all_in_view sys v0));
  (* the membership changes its mind [joins] times before settling:
     every change of mind yields a start_change and a view, queued
     back-to-back — the paper's "views already known to be out of date" *)
  let before = List.length (System.views_of sys 0) in
  let set = ref core in
  for j = 1 to joins do
    set := Proc.Set.add (3 + j) !set;
    ignore (System.reconfigure sys ~origin:j ~set:!set)
  done;
  ignore (rounds_until ~max_rounds:100 sys (fun () -> false));
  System.settle sys;
  List.length (System.views_of sys 0) - before

let e5 () =
  section "E5" "views delivered per endpoint when membership changes its mind";
  rowf "%6s  %12s  %12s@." "joins" "gcs" "baseline";
  List.iter
    (fun joins ->
      let g = e5_run (fun ~seed ~n -> gcs_system ~seed ~n) ~joins in
      let b = e5_run (fun ~seed ~n -> baseline_system ~seed ~n) ~joins in
      rowf "%6d  %12d  %12d@." joins g b)
    [ 1; 2; 4 ]

(* -- E6: delivery during reconfiguration ------------------------------------ *)

let e6_run build ~inflight =
  let n = 4 in
  let sys = build ~seed:16 ~n in
  let all = Proc.Set.of_range 0 (n - 1) in
  let v0 = System.reconfigure sys ~set:all in
  ignore (rounds_until sys (fun () -> System.all_in_view sys v0));
  System.broadcast sys ~senders:all ~per_sender:inflight;
  (* let some of the traffic drain, then reconfigure *)
  ignore (System.run sys ~max_steps:(inflight * 20));
  let mark = Executor.trace_length (System.exec sys) in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 (n - 2)));
  System.settle ~max_steps:5_000_000 sys;
  let tail = List.filteri (fun i _ -> i >= mark) (Executor.trace (System.exec sys)) in
  let during = Vsgc_ioa.Trace_stats.deliveries_during_reconfiguration ~at:0 tail in
  let window =
    match Vsgc_ioa.Trace_stats.blocked_windows ~at:0 tail with w :: _ -> w | [] -> 0
  in
  (during, window)

let e6 () =
  section "E6"
    "messages delivered during reconfiguration / send-blocked window (at p0)";
  rowf "%10s  %12s  %12s  %14s  %14s@." "in-flight" "gcs" "baseline" "gcs:window"
    "base:window";
  List.iter
    (fun inflight ->
      let g, gw = e6_run (fun ~seed ~n -> gcs_system ~seed ~n) ~inflight in
      let b, bw = e6_run (fun ~seed ~n -> baseline_system ~seed ~n) ~inflight in
      rowf "%10d  %12d  %12d  %14d  %14d@." inflight g b gw bw)
    [ 10; 30 ]

(* -- E7: end-to-end with membership servers --------------------------------- *)

let e7_run ~endpoint ~n_clients ~n_servers =
  let ss =
    match endpoint with
    | `Gcs -> SS.create ~seed:17 ~n_clients ~n_servers ()
    | `Baseline ->
        SS.create ~seed:17
          ~endpoint_builder:(fun p -> fst (Vsgc_baseline.component p))
          ~n_clients ~n_servers ()
  in
  let sys = SS.sys ss in
  SS.bootstrap ss;
  let formed () =
    match System.last_view_of sys 0 with
    | Some (v, _) -> Proc.Set.cardinal (View.set v) = n_clients && System.all_in_view sys v
    | None -> false
  in
  ignore (rounds_until ~max_rounds:100 sys formed);
  (* the measured reconfiguration: the last client leaves *)
  SS.leave ss (n_clients - 1);
  let survivors_in_view () =
    match System.last_view_of sys 0 with
    | Some (v, _) ->
        Proc.Set.cardinal (View.set v) = n_clients - 1
        && Proc.Set.for_all
             (fun p ->
               match System.last_view_of sys p with
               | Some (v', _) -> View.equal v v'
               | None -> false)
             (View.set v)
    | None -> false
  in
  rounds_until ~max_rounds:100 sys survivors_in_view

let e7 () =
  section "E7" "end-to-end reconfiguration rounds through membership servers";
  rowf "%6s  %8s  %12s  %12s@." "n" "servers" "gcs" "baseline";
  List.iter
    (fun (n_clients, n_servers) ->
      let g = e7_run ~endpoint:`Gcs ~n_clients ~n_servers in
      let b = e7_run ~endpoint:`Baseline ~n_clients ~n_servers in
      rowf "%6d  %8d  %12d  %12d@." n_clients n_servers g b)
    [ (4, 1); (8, 2); (16, 3) ]

(* -- E8: transitional-set-aware state transfer ------------------------------- *)

let e8_run ~transfer_blind ~g =
  let n = 2 * g in
  let refs = Hashtbl.create 16 in
  let sys =
    System.create ~seed:18 ~n
      ~client_builder:(fun p ->
        let c, r = Vsgc_replication.Replica.component ~transfer_blind p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  let left = Proc.Set.of_range 0 (g - 1) in
  let right = Proc.Set.of_range g (n - 1) in
  ignore (System.reconfigure sys ~origin:0 ~set:left);
  ignore (System.reconfigure sys ~origin:1 ~set:right);
  System.settle sys;
  for i = 1 to 8 do
    Vsgc_replication.Replica.set (Hashtbl.find refs 0) ~key:(Fmt.str "l%d" i) ~value:"v";
    Vsgc_replication.Replica.set (Hashtbl.find refs g) ~key:(Fmt.str "r%d" i) ~value:"v"
  done;
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 (n - 1)));
  System.settle sys;
  (* one further stable change: with T, free; blind, full re-transfer *)
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 (n - 1)));
  System.settle sys;
  Hashtbl.fold
    (fun _ r (cnt, bytes) ->
      ( cnt + !r.Vsgc_replication.Replica.snapshots_sent,
        bytes + !r.Vsgc_replication.Replica.snapshot_bytes ))
    refs (0, 0)

let e8 () =
  section "E8" "state-transfer cost: snapshots multicast (count/bytes)";
  rowf "%12s  %16s  %16s@." "group size" "with T" "blind";
  List.iter
    (fun g ->
      let tc, tb = e8_run ~transfer_blind:false ~g in
      let bc, bb = e8_run ~transfer_blind:true ~g in
      rowf "%12d  %9d/%-6d  %9d/%-6d@." g tc tb bc bb)
    [ 2; 4; 8 ]

(* -- E9: the §9 two-tier hierarchy ablation ----------------------------------- *)

let e9 () =
  section "E9" "two-tier hierarchy: sync copies vs rounds for one view change";
  rowf "%6s  %6s  %14s  %14s  %10s  %10s@." "n" "g" "direct:copies" "hier:copies"
    "direct:r" "hier:r";
  let copies sys =
    let m = Executor.metrics (System.exec sys) in
    Metrics.sent_count m Msg.Wire.K_sync + Metrics.sent_count m Msg.Wire.K_sync_batch
  in
  List.iter
    (fun (n, g) ->
      let run ?hierarchy () =
        let sys = System.create ~seed:19 ?hierarchy ~n () in
        ignore (establish sys ~n);
        let before = copies sys in
        let rounds, _ = measure_view_change sys ~target_set:(Proc.Set.of_range 0 (n - 2)) in
        (copies sys - before, rounds)
      in
      let dc, dr = run () in
      let hc, hr = run ~hierarchy:g () in
      rowf "%6d  %6d  %14d  %14d  %10d  %10d@." n g dc hc dr hr)
    [ (8, 2); (16, 4); (32, 4); (32, 6) ]

(* -- E11: wire-layer throughput ----------------------------------------------- *)

(* The transport runtime's raw costs, wall-clock measured: framing
   codec throughput per payload size, and the full
   encode -> loopback hub -> decode round trip. These are the only
   wall-clock numbers in the suite (everything else counts rounds or
   messages), so they also land in BENCH_wire.json. *)

module Packet = Vsgc_wire.Packet
module Frame = Vsgc_wire.Frame
module Node_id = Vsgc_wire.Node_id
module Loopback = Vsgc_net.Loopback
module Transport = Vsgc_net.Transport

let e11 () =
  section "E11" "wire throughput: codec msgs/sec, loopback round trip";
  rowf "%10s  %9s  %14s  %14s@." "payload B" "frame B" "encode msg/s" "decode msg/s";
  let iters = 100_000 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  List.iter
    (fun size ->
      let pkt =
        Packet.Rf { from = 0; wire = Msg.Wire.App (Msg.App_msg.make (String.make size 'x')) }
      in
      let frame = Frame.encode pkt in
      let te = timed (fun () -> for _ = 1 to iters do ignore (Frame.encode pkt) done) in
      let td =
        timed (fun () ->
            for _ = 1 to iters do
              match Frame.decode frame with
              | Ok _ -> ()
              | Error _ -> failwith "bench: own frame rejected"
            done)
      in
      let eps = float_of_int iters /. te and dps = float_of_int iters /. td in
      rowf "%10d  %9d  %14.0f  %14.0f@." size (Bytes.length frame) eps dps;
      record
        [
          ("experiment", Json.Str "wire_codec");
          ("payload_bytes", Json.Int size);
          ("frame_bytes", Json.Int (Bytes.length frame));
          ("encode_msgs_per_sec", Json.Num eps);
          ("decode_msgs_per_sec", Json.Num dps);
        ])
    [ 16; 256; 4096 ];
  (* Round trip through the loopback transport: every leg frames on
     send and decodes on delivery, so this prices the whole wire path
     minus the kernel. *)
  let hub = Loopback.hub ~seed:7 () in
  let a = Loopback.attach hub (Node_id.client 0) in
  let b = Loopback.attach hub (Node_id.client 1) in
  Transport.connect a (Node_id.client 1);
  ignore (Transport.recv a);
  ignore (Transport.recv b);
  let ping = Packet.Rf { from = 0; wire = Msg.Wire.App (Msg.App_msg.make "ping") } in
  let rec pump tr =
    match Transport.recv tr with
    | [] ->
        Loopback.tick hub;
        pump tr
    | evs -> evs
  in
  let rtts = 20_000 in
  let dt =
    timed (fun () ->
        for _ = 1 to rtts do
          Transport.send a (Node_id.client 1) ping;
          ignore (pump b);
          Transport.send b (Node_id.client 0) ping;
          ignore (pump a)
        done)
  in
  let rtt_us = dt /. float_of_int rtts *. 1e6 in
  let mps = float_of_int (2 * rtts) /. dt in
  rowf "@.%-28s  %10.2f us  (%10.0f msg/s)@." "loopback round trip" rtt_us mps;
  record
    [
      ("experiment", Json.Str "loopback_roundtrip");
      ("round_trips", Json.Int rtts);
      ("rtt_us", Json.Num rtt_us);
      ("msgs_per_sec", Json.Num mps);
    ]

(* -- E13: executor scheduling throughput (cached vs rescan) ------------------- *)

(* The incremental scheduler against the full-rescan reference, on the
   workloads that dominate every experiment above: the free-running
   random scheduler and the round-synchronous runner, across system
   sizes. Both modes are run on identical seeds; the step counts must
   agree exactly (the modes are behaviourally equivalent — that is the
   qcheck-verified contract), so the steps/sec ratio is a pure
   like-for-like scheduling-cost comparison. *)

let e13_run ~mode ~sync ~n ~reps =
  Executor.set_default_mode mode;
  Fun.protect
    ~finally:(fun () -> Executor.set_default_mode `Cached)
    (fun () ->
      let sys = System.create ~seed:21 ~monitors:`None ~n () in
      let all = Proc.Set.of_range 0 (n - 1) in
      ignore (System.reconfigure sys ~set:all);
      System.settle sys;
      let m = Executor.metrics (System.exec sys) in
      let s0 = Metrics.steps m in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        System.broadcast sys ~senders:all ~per_sender:2;
        if sync then ignore (System.run_rounds ~max_rounds:400 sys)
        else System.settle ~max_steps:10_000_000 sys
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let steps = Metrics.steps m - s0 in
      (float_of_int steps /. dt, steps, Vsgc_ioa.Trace_stats.counters m))

let e13 () =
  section "E13" "executor scheduling: steps/sec, cached vs full rescan";
  rowf "%6s  %8s  %14s  %14s  %9s  %10s@." "n" "mode" "cached st/s" "rescan st/s"
    "speedup" "hit rate";
  List.iter
    (fun n ->
      let reps = if !smoke then 1 else max 2 (128 / n) in
      List.iter
        (fun (label, sync) ->
          let c_sps, c_steps, ctr = e13_run ~mode:`Cached ~sync ~n ~reps in
          let r_sps, r_steps, _ = e13_run ~mode:`Rescan ~sync ~n ~reps in
          if c_steps <> r_steps then
            failwith
              (Fmt.str "E13: modes diverged at n=%d %s: %d vs %d steps" n label
                 c_steps r_steps);
          let hit_rate =
            let total = ctr.Vsgc_ioa.Trace_stats.cand_hits + ctr.cand_misses in
            if total = 0 then 0.0
            else float_of_int ctr.cand_hits /. float_of_int total
          in
          rowf "%6d  %8s  %14.0f  %14.0f  %8.2fx  %9.1f%%@." n label c_sps r_sps
            (c_sps /. r_sps) (100. *. hit_rate);
          record_hot
            [
              ("experiment", Json.Str "executor_steps");
              ("n", Json.Int n);
              ("workload", Json.Str label);
              ("steps", Json.Int c_steps);
              ("cached_steps_per_sec", Json.Num c_sps);
              ("rescan_steps_per_sec", Json.Num r_sps);
              ("speedup", Json.Num (c_sps /. r_sps));
              ("cand_hit_rate", Json.Num hit_rate);
            ])
        [ ("random", false); ("sync", true) ])
    [ 4; 8; 16; 32 ]

(* -- E14: hot-path codec + transport throughput -------------------------------- *)

(* The zero-copy encode path against the pre-optimisation two-buffer
   path, replicated here cost-for-cost: a fresh 64-byte growable body
   buffer (doubling growth from a fixed hint), one copy out of it,
   then a second whole-frame copy behind the header. *)
let legacy_frame_encode pkt =
  let body =
    let b = Bin.Wbuf.create 64 in
    Packet.write b pkt;
    Bin.Wbuf.to_bytes b
  in
  let n = Bytes.length body in
  let frame = Bytes.create (Frame.header_len + n) in
  Bytes.set frame 0 'V';
  Bytes.set frame 1 'G';
  Bytes.set frame 2 (Char.chr Frame.version);
  Bytes.set frame 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set frame 4 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set frame 5 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set frame 6 (Char.chr (n land 0xff));
  Bytes.blit body 0 frame Frame.header_len n;
  frame

let e14 () =
  section "E14" "hot-path codec + transport: legacy vs pooled vs batched";
  let iters = if !smoke then 2_000 else 100_000 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  rowf "%10s  %13s  %13s  %13s  %13s  %9s@." "payload B" "legacy e/s"
    "pooled e/s" "batched e/s" "decode m/s" "speedup";
  List.iter
    (fun size ->
      let pkt =
        Packet.Rf
          { from = 0; wire = Msg.Wire.App (Msg.App_msg.make (String.make size 'x')) }
      in
      let frame = Frame.encode pkt in
      if not (Bytes.equal frame (legacy_frame_encode pkt)) then
        failwith "E14: legacy and pooled encodes disagree";
      let tl =
        timed (fun () -> for _ = 1 to iters do ignore (legacy_frame_encode pkt) done)
      in
      (* the pooled path: scratch reuse, one copy out *)
      let tp = timed (fun () -> for _ = 1 to iters do ignore (Frame.encode pkt) done) in
      (* the batched path TCP runs: frames appended to one long-lived
         buffer, drained (cleared) as a flush would *)
      let batch = Bin.Wbuf.create 65536 in
      let tb =
        timed (fun () ->
            for _ = 1 to iters do
              Frame.encode_into batch pkt;
              if Bin.Wbuf.length batch > 60_000 then Bin.Wbuf.clear batch
            done)
      in
      let td =
        timed (fun () ->
            for _ = 1 to iters do
              match Frame.decode frame with
              | Ok _ -> ()
              | Error _ -> failwith "E14: own frame rejected"
            done)
      in
      let per t = float_of_int iters /. t in
      rowf "%10d  %13.0f  %13.0f  %13.0f  %13.0f  %8.2fx@." size (per tl) (per tp)
        (per tb) (per td)
        (per tb /. per tl);
      record_hot
        [
          ("experiment", Json.Str "codec_hotpath");
          ("payload_bytes", Json.Int size);
          ("legacy_encode_msgs_per_sec", Json.Num (per tl));
          ("pooled_encode_msgs_per_sec", Json.Num (per tp));
          ("batched_encode_msgs_per_sec", Json.Num (per tb));
          ("decode_msgs_per_sec", Json.Num (per td));
          ("batched_vs_legacy_speedup", Json.Num (per tb /. per tl));
        ])
    [ 16; 256; 1024; 4096 ];
  (* Transport leg: one-way loopback throughput per payload size — the
     scratch-encode, in-place-decode path end to end (frame on send,
     decode on delivery). *)
  rowf "@.%10s  %14s@." "payload B" "loopback m/s";
  let batch = 64 in
  let rounds = max 1 (iters / batch) in
  List.iter
    (fun size ->
      let hub = Loopback.hub ~seed:9 () in
      let a = Loopback.attach hub (Node_id.client 0) in
      let b = Loopback.attach hub (Node_id.client 1) in
      Transport.connect a (Node_id.client 1);
      ignore (Transport.recv a);
      ignore (Transport.recv b);
      let pkt =
        Packet.Rf
          { from = 0; wire = Msg.Wire.App (Msg.App_msg.make (String.make size 'x')) }
      in
      let got = ref 0 in
      let dt =
        timed (fun () ->
            for _ = 1 to rounds do
              for _ = 1 to batch do
                Transport.send a (Node_id.client 1) pkt
              done;
              while !got < batch do
                Loopback.tick hub;
                got := !got + List.length (Transport.recv b)
              done;
              got := 0
            done)
      in
      let mps = float_of_int (rounds * batch) /. dt in
      rowf "%10d  %14.0f@." size mps;
      record_hot
        [
          ("experiment", Json.Str "loopback_throughput");
          ("payload_bytes", Json.Int size);
          ("msgs_per_sec", Json.Num mps);
        ])
    [ 16; 256; 1024; 4096 ]


(* -- E16: effect-sanitizer overhead ------------------------------------------- *)

(* What the honesty certificate costs on the scheduling hot path: the
   E13 random workload with the sanitizer off vs collecting. The
   sanitizer contract (DESIGN.md Â§14, qcheck-verified) is that it
   consumes no randomness and restores race replays by value, so both
   runs take the SAME steps and end on the SAME trace fingerprint â
   asserted here, which makes steps/sec a pure overhead measurement â
   and a shipped-component violation fails the bench outright. *)

let e16_run ~sanitize ~n ~reps =
  Executor.set_default_sanitize sanitize;
  Fun.protect
    ~finally:(fun () -> Executor.set_default_sanitize None)
    (fun () ->
      let sys = System.create ~seed:23 ~monitors:`None ~n () in
      let all = Proc.Set.of_range 0 (n - 1) in
      ignore (System.reconfigure sys ~set:all);
      System.settle sys;
      let exec = System.exec sys in
      let m = Executor.metrics exec in
      let s0 = Metrics.steps m in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        System.broadcast sys ~senders:all ~per_sender:2;
        System.settle ~max_steps:10_000_000 sys
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let steps = Metrics.steps m - s0 in
      let viol =
        match Executor.sanitizer exec with
        | Some s -> Vsgc_ioa.Sanitizer.violations s
        | None -> 0
      in
      ( float_of_int steps /. dt,
        steps,
        Vsgc_ioa.Trace_stats.fingerprint (Executor.trace exec),
        viol ))

let e16 () =
  section "E16" "effect sanitizer: steps/sec off vs collecting";
  rowf "%6s  %14s  %14s  %9s@." "n" "off st/s" "sanitized st/s" "overhead";
  List.iter
    (fun n ->
      let reps = if !smoke then 1 else max 2 (128 / n) in
      let off_sps, off_steps, off_fp, _ = e16_run ~sanitize:None ~n ~reps in
      let on_sps, on_steps, on_fp, viol =
        e16_run ~sanitize:(Some `Collect) ~n ~reps
      in
      if off_steps <> on_steps || not (String.equal off_fp on_fp) then
        failwith
          (Fmt.str "E16: sanitizer perturbed the run at n=%d: %d/%s vs %d/%s" n
             off_steps off_fp on_steps on_fp);
      if viol <> 0 then
        failwith (Fmt.str "E16: %d footprint violations at n=%d" viol n);
      rowf "%6d  %14.0f  %14.0f  %8.2fx@." n off_sps on_sps (off_sps /. on_sps);
      record_san
        [
          ("experiment", Json.Str "sanitizer_overhead");
          ("n", Json.Int n);
          ("steps", Json.Int off_steps);
          ("off_steps_per_sec", Json.Num off_sps);
          ("sanitized_steps_per_sec", Json.Num on_sps);
          ("overhead_factor", Json.Num (off_sps /. on_sps));
        ])
    [ 8; 32 ]

(* -- E17: replicated KV service — batched stable delivery under load ----------- *)

(* The KV service (DESIGN.md §15) on the loopback deployment: an
   open-loop generator offers a fixed write rate; the batched arm
   coalesces the sequencer's announcement backlog and applies
   contiguous stable commands in one apply+ack round. Both arms must
   produce byte-identical stores on the identical command log (the
   correctness gate, asserted in every mode); the batched arm must do
   strictly fewer apply rounds and ship fewer packets, which is where
   its throughput win comes from. The faulted arm reruns the load
   across a partition-heal script and gates the SLO: zero lost
   acknowledged writes, bounded client-visible stall. *)

module Kv_system = Vsgc_kv.Kv_system

let e17 () =
  section "E17"
    "replicated KV service: open-loop load, batched stable delivery, SLO";
  let count = if !smoke then 80 else 600 in
  let rate = 2.0 (* writes per tick per client: saturates the sequencer *) in
  let homes = [ 0; 2 ] and clients = 2 in
  let partition_script =
    [
      ( 40,
        Kv_system.Partition
          [
            [
              Vsgc_wire.Node_id.Client 0;
              Vsgc_wire.Node_id.Client 2;
              Vsgc_wire.Node_id.Server 0;
            ];
            [ Vsgc_wire.Node_id.Client 1; Vsgc_wire.Node_id.Server 1 ];
          ] );
      (160, Kv_system.Heal);
    ]
  in
  let run ?(script = []) ~batch () =
    let t0 = Unix.gettimeofday () in
    let r =
      Kv_system.slo_run ~seed:17 ~batch ~n:3 ~n_servers:2 ~homes ~clients
        ~rate ~count ~script ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let arm ~name ~batch (r : Kv_system.report) wall =
    let cmds_per_sec = float_of_int r.Kv_system.acked /. wall in
    rowf
      "  %-22s acked=%d/%d cmds/s=%.0f p50=%d p99=%d p999=%d stall=%.0f \
       apply_rounds=%d wire=%d lost=%d@."
      name r.Kv_system.acked r.Kv_system.sent cmds_per_sec r.Kv_system.p50
      r.Kv_system.p99 r.Kv_system.p999 r.Kv_system.max_stall
      r.Kv_system.apply_rounds r.Kv_system.wire_delivered r.Kv_system.lost_acks;
    record_kv
      [
        ("exp", Json.Str "E17");
        ("arm", Json.Str name);
        ("batch", Json.Str (string_of_bool batch));
        ("clients", Json.Int clients);
        ("rate", Json.Num rate);
        ("count", Json.Int count);
        ("sent", Json.Int r.Kv_system.sent);
        ("acked", Json.Int r.Kv_system.acked);
        ("lost_acks", Json.Int r.Kv_system.lost_acks);
        ("dup_acks", Json.Int r.Kv_system.dup_acks);
        ("cmds_per_sec", Json.Num cmds_per_sec);
        ("p50_ticks", Json.Int r.Kv_system.p50);
        ("p99_ticks", Json.Int r.Kv_system.p99);
        ("p999_ticks", Json.Int r.Kv_system.p999);
        ("max_stall_ticks", Json.Num r.Kv_system.max_stall);
        ("apply_rounds", Json.Int r.Kv_system.apply_rounds);
        ("wire_delivered", Json.Int r.Kv_system.wire_delivered);
        ("converged", Json.Str (string_of_bool r.Kv_system.converged));
      ];
    cmds_per_sec
  in
  let check ~what (r : Kv_system.report) =
    if r.Kv_system.acked <> r.Kv_system.sent then
      failwith
        (Fmt.str "E17 %s: %d/%d acked" what r.Kv_system.acked r.Kv_system.sent);
    if r.Kv_system.lost_acks <> 0 then
      failwith (Fmt.str "E17 %s: %d lost acks" what r.Kv_system.lost_acks);
    if not r.Kv_system.converged then
      failwith (Fmt.str "E17 %s: stores diverged" what)
  in
  let u, uw = run ~batch:false () in
  let b, bw = run ~batch:true () in
  check ~what:"unbatched" u;
  check ~what:"batched" b;
  (* the correctness gate: same command log => same store bytes,
     whatever the delivery batching *)
  List.iter2
    (fun (p, du) (p', db) ->
      if p <> p' || not (String.equal du db) then
        failwith (Fmt.str "E17: batched arm store diverged at p%d" p))
    u.Kv_system.digests b.Kv_system.digests;
  if b.Kv_system.apply_rounds >= u.Kv_system.apply_rounds then
    failwith
      (Fmt.str "E17: batching did not reduce apply rounds (%d vs %d)"
         b.Kv_system.apply_rounds u.Kv_system.apply_rounds);
  let ut = arm ~name:"loaded/unbatched" ~batch:false u uw in
  let bt = arm ~name:"loaded/batched" ~batch:true b bw in
  if (not !smoke) && bt <= ut then
    failwith
      (Fmt.str "E17: batched throughput %.0f <= unbatched %.0f at saturation"
         bt ut);
  let f, fw = run ~batch:true ~script:partition_script () in
  check ~what:"faulted" f;
  if f.Kv_system.max_stall > 600.0 then
    failwith (Fmt.str "E17 faulted: stall %.0f ticks" f.Kv_system.max_stall);
  ignore (arm ~name:"faulted/partition-heal" ~batch:true f fw);
  rowf "  batching: %dx fewer apply rounds, %.2fx fewer wire packets@."
    (u.Kv_system.apply_rounds / max 1 b.Kv_system.apply_rounds)
    (float_of_int u.Kv_system.wire_delivered
    /. float_of_int (max 1 b.Kv_system.wire_delivered))

(* -- E18: the bake-off — sequencer (GCS) vs symmetric (Skeen) total order ------ *)

(* Both total-order arms of DESIGN.md §16, head-to-head on the wire:
   the same KV edge, the same open-loop generator and histogram, the
   same chaos fault schedules (partition-heal, crash-rejoin,
   lossy-spike), at n in {3,5,8} — only the ordering protocol differs.
   Every run is spec-checked: the GCS arm carries the networked
   service-level battery, the symmetric arm additionally carries the
   Skeen delivery-condition monitor, and a monitor violation fails the
   bench outright. The correctness gate across arms: unique keys per
   write mean the final stores are order-independent, so the two arms'
   stores must be byte-identical whenever both apply the same command
   set — asserted per mode, per n. *)

let e18 () =
  section "E18"
    "bake-off: sequencer (GCS) vs symmetric (Skeen) total order on the wire";
  let count = if !smoke then 60 else 300 in
  let rate = 2.0 and homes = [ 0; 2 ] and clients = 2 in
  let quiet_knobs = { Loopback.default_knobs with Loopback.delay = 1 } in
  let scripts n =
    let others =
      List.filter_map
        (fun p -> if p = 0 || p = 2 then None else Some (Node_id.Client p))
        (List.init n Fun.id)
    in
    let split =
      [
        [ Node_id.Client 0; Node_id.Client 2; Node_id.Server 0 ];
        Node_id.Server 1 :: others;
      ]
    in
    [
      ("quiet", [], 0.0);
      ( "partition-heal",
        [ (40, Kv_system.Partition split); (160, Kv_system.Heal) ],
        0.0 );
      ( "crash-rejoin",
        [ (50, Kv_system.Crash 1); (150, Kv_system.Restart 1) ],
        0.0 );
      (* Dropped KV packets are invisible to the ordering layer, so the
         lossy mode arms the load generator's retransmission. *)
      ( "lossy-spike",
        [
          ( 20,
            Kv_system.Spike
              { Loopback.delay = 2; drop = 0.2; reorder = 0.25 } );
          (120, Kv_system.Spike quiet_knobs);
        ],
        80.0 );
    ]
  in
  let monitors_for = function
    | `Gcs -> Vsgc_spec.All.net_selfstab ()
    | `Sym -> Vsgc_spec.All.net_sym ()
  in
  rowf "%4s %6s %16s  %9s  %7s %5s %5s %6s  %9s  %10s@." "n" "arm" "mode"
    "acked" "cmds/s" "p50" "p99" "p999" "wire pkts" "wire bytes";
  List.iter
    (fun n ->
      List.iter
        (fun (mode, script, retransmit_after) ->
          let run arm =
            let t0 = Unix.gettimeofday () in
            let r =
              Kv_system.slo_run ~seed:18 ~batch:true ~arm
                ~monitors:(monitors_for arm) ~n ~n_servers:2 ~homes ~clients
                ~rate ~count ~retransmit_after ~script ()
            in
            (r, Unix.gettimeofday () -. t0)
          in
          let check arm (r : Kv_system.report) =
            let what = Fmt.str "%s/%s n=%d" arm mode n in
            if r.Kv_system.acked <> r.Kv_system.sent then
              failwith
                (Fmt.str "E18 %s: %d/%d acked" what r.Kv_system.acked
                   r.Kv_system.sent);
            if r.Kv_system.lost_acks <> 0 then
              failwith (Fmt.str "E18 %s: %d lost acks" what r.Kv_system.lost_acks);
            if not r.Kv_system.converged then
              failwith (Fmt.str "E18 %s: stores diverged" what)
          in
          let row name (r : Kv_system.report) wall =
            let cmds_per_sec = float_of_int r.Kv_system.acked /. wall in
            rowf "%4d %6s %16s  %4d/%-4d  %7.0f %5d %5d %6d  %9d  %10d@." n
              name mode r.Kv_system.acked r.Kv_system.sent cmds_per_sec
              r.Kv_system.p50 r.Kv_system.p99 r.Kv_system.p999
              r.Kv_system.wire_delivered r.Kv_system.wire_bytes;
            record_bakeoff
              [
                ("exp", Json.Str "E18");
                ("arm", Json.Str name);
                ("mode", Json.Str mode);
                ("n", Json.Int n);
                ("clients", Json.Int clients);
                ("rate", Json.Num rate);
                ("count", Json.Int count);
                ("sent", Json.Int r.Kv_system.sent);
                ("acked", Json.Int r.Kv_system.acked);
                ("lost_acks", Json.Int r.Kv_system.lost_acks);
                ("retransmits", Json.Int r.Kv_system.retransmits);
                ("cmds_per_sec", Json.Num cmds_per_sec);
                ("p50_ticks", Json.Int r.Kv_system.p50);
                ("p99_ticks", Json.Int r.Kv_system.p99);
                ("p999_ticks", Json.Int r.Kv_system.p999);
                ("max_stall_ticks", Json.Num r.Kv_system.max_stall);
                ("rounds", Json.Int r.Kv_system.rounds);
                ("wire_delivered", Json.Int r.Kv_system.wire_delivered);
                ("wire_bytes", Json.Int r.Kv_system.wire_bytes);
                ("converged", Json.Str (string_of_bool r.Kv_system.converged));
              ]
          in
          let g, gw = run `Gcs in
          let s, sw = run `Sym in
          check "gcs" g;
          check "sym" s;
          (* cross-arm gate: unique keys, same command set => same bytes *)
          List.iter
            (fun (p, dg) ->
              match List.assoc_opt p s.Kv_system.digests with
              | Some ds when String.equal dg ds -> ()
              | Some _ ->
                  failwith
                    (Fmt.str "E18 %s n=%d: arms disagree on p%d's store" mode n
                       p)
              | None -> ())
            g.Kv_system.digests;
          row "gcs" g gw;
          row "sym" s sw)
        (scripts n))
    [ 3; 5; 8 ]

(* -- E19: multicore executor (DESIGN.md §17) ------------------------------- *)

(* Four arms.

   det_merge — the gate: [`Parallel]+[`Deterministic] fans the per-step
   candidate refresh across the pool but must stay bit-identical to
   [`Rescan] in steps AND fingerprint; any drift aborts the bench.

   racy_full_system — the honest arm: on the shipped composition the
   reliable-FIFO hub and the membership oracle connect most protocol
   actions, so the partition yields far fewer groups than a clean
   k-way split and most multicast work serialises into one big group.
   The row records the measured group count so the degeneracy (or
   lack of it) is data, not assumption; jobs-independence of the
   merged trace is still asserted.

   racy_synthetic — the scaling arm the partition was built for: k
   footprint-disjoint worker components in ONE executor form k
   singleton groups, so group quanta actually run concurrently.

   fleet — embarrassingly-parallel control: k independent full systems
   fanned across the pool, bounding what the substrate can deliver.

   Speedup assertions are conditional on the host actually having >= 8
   useful domains — on fewer cores the machinery must still be correct
   and deterministic, but no wall-clock claim is checkable. *)

module Partition = Vsgc_ioa.Partition
module Dpool = Vsgc_ioa.Dpool
module Component = Vsgc_ioa.Component
module Footprint = Vsgc_ioa.Footprint

let e19_run ~mode ~merge ~jobs ~n ~reps =
  Executor.set_default_mode mode;
  Executor.set_default_merge merge;
  Executor.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () ->
      Executor.set_default_mode `Cached;
      Executor.set_default_merge `Deterministic;
      Executor.set_default_jobs 1)
    (fun () ->
      let sys = System.create ~seed:29 ~monitors:`None ~n () in
      let all = Proc.Set.of_range 0 (n - 1) in
      ignore (System.reconfigure sys ~set:all);
      System.settle sys;
      let exec = System.exec sys in
      (* Warm-up rep doubles as the honest partition sample: the
         runtime partition is probed from currently *enabled* actions,
         so it must be read while multicast work is in flight — at
         quiescence every component is trivially its own singleton. *)
      System.broadcast sys ~senders:all ~per_sender:2;
      let groups = Partition.n_groups (Executor.partition exec) in
      System.settle ~max_steps:10_000_000 sys;
      let m = Executor.metrics exec in
      let s0 = Metrics.steps m in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        System.broadcast sys ~senders:all ~per_sender:2;
        System.settle ~max_steps:10_000_000 sys
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let steps = Metrics.steps m - s0 in
      ( float_of_int steps /. dt,
        steps,
        Vsgc_ioa.Trace_stats.fingerprint (Executor.trace exec),
        groups ))

(* One synthetic worker: a private counter behind a private Global
   cell, emitting its own App_send until its budget is spent. Workers
   share no participant and no location, so the partition gives k
   singleton groups. *)
let e19_worker ~budget i =
  let act = Action.App_send (i, Msg.App_msg.make (Fmt.str "w%d" i)) in
  let loc = Footprint.Global (Fmt.str "e19-worker-%d" i) in
  Component.make
    ~footprint:(fun a ->
      if Action.equal a act then { Footprint.reads = [ loc ]; writes = [ loc ] }
      else Footprint.empty)
    ~emits:(Action.equal act)
    ~observe:(fun s -> [ (loc, Component.digest s) ])
    ~name:(Fmt.str "e19-worker-%d" i)
    ~init:0
    ~accepts:(fun _ -> false)
    ~outputs:(fun s -> if s < budget then [ act ] else [])
    ~apply:(fun s _ -> s + 1)
    ()

let e19_workers ~k ~budget ~jobs =
  let comps = List.init k (fun i -> Component.pack (e19_worker ~budget i)) in
  let exec =
    Executor.create ~seed:5 ~keep_trace:false ~mode:`Parallel ~merge:`Racy
      ~jobs ~sanitize:None comps
  in
  let groups = Partition.n_groups (Executor.partition exec) in
  let t0 = Unix.gettimeofday () in
  (match Executor.run ~max_steps:((k * budget) + 1) exec with
  | Executor.Quiescent _ -> ()
  | Executor.Step_limit -> failwith "E19: synthetic workers did not quiesce");
  let dt = Unix.gettimeofday () -. t0 in
  let steps = Metrics.steps (Executor.metrics exec) in
  if steps <> k * budget then
    failwith
      (Fmt.str "E19: synthetic arm lost steps: %d, want %d" steps (k * budget));
  (dt, groups)

let e19_fleet ~k ~n ~jobs =
  let run_one i =
    let sys = System.create ~seed:(400 + i) ~monitors:`None ~n () in
    let all = Proc.Set.of_range 0 (n - 1) in
    ignore (System.reconfigure sys ~set:all);
    System.settle sys;
    System.broadcast sys ~senders:all ~per_sender:2;
    System.settle ~max_steps:10_000_000 sys
  in
  let t0 = Unix.gettimeofday () in
  Dpool.run (Dpool.global ~jobs) run_one k;
  Unix.gettimeofday () -. t0

let e19 () =
  section "E19" "multicore executor: deterministic-merge gate + scaling arms";
  let cores = Dpool.recommended_jobs () in
  rowf "host: %d recommended domain(s), OCaml %s@." cores Sys.ocaml_version;
  (* n caps at 32: the gate needs a `Rescan baseline per cell, and
     full rescan at n=64 is O(hours) on a small host (cf. E13). *)
  let jobs_list = if !smoke then [ 2 ] else [ 1; 2; 4; 8 ] in
  let ns = if !smoke then [ 8 ] else [ 8; 32 ] in

  rowf "@.deterministic merge (must be bit-identical to rescan)@.";
  rowf "%6s  %6s  %14s  %14s  %9s@." "n" "jobs" "par st/s" "rescan st/s"
    "ratio";
  List.iter
    (fun n ->
      let reps = if !smoke then 1 else 2 in
      let r_sps, r_steps, r_fp, _ =
        e19_run ~mode:`Rescan ~merge:`Deterministic ~jobs:1 ~n ~reps
      in
      List.iter
        (fun jobs ->
          let p_sps, p_steps, p_fp, _ =
            e19_run ~mode:`Parallel ~merge:`Deterministic ~jobs ~n ~reps
          in
          if p_steps <> r_steps || not (String.equal p_fp r_fp) then
            failwith
              (Fmt.str
                 "E19: deterministic merge diverged from rescan at n=%d \
                  jobs=%d"
                 n jobs);
          rowf "%6d  %6d  %14.0f  %14.0f  %8.2fx@." n jobs p_sps r_sps
            (p_sps /. r_sps);
          record_mc
            [
              ("experiment", Json.Str "det_merge");
              ("n", Json.Int n);
              ("jobs", Json.Int jobs);
              ("steps", Json.Int p_steps);
              ("steps_per_sec", Json.Num p_sps);
              ("rescan_steps_per_sec", Json.Num r_sps);
              ("speedup_vs_rescan", Json.Num (p_sps /. r_sps));
            ])
        jobs_list)
    ns;

  rowf "@.racy full system (the partition collapses here — measured, \
        not hidden)@.";
  let racy_n = if !smoke then 8 else 32 in
  let racy_reps = if !smoke then 1 else 2 in
  let fps =
    List.map
      (fun jobs ->
        let sps, steps, fp, groups =
          e19_run ~mode:`Parallel ~merge:`Racy ~jobs ~n:racy_n ~reps:racy_reps
        in
        rowf "%6d  %6d  %14.0f st/s  %3d group(s)@." racy_n jobs sps groups;
        record_mc
          [
            ("experiment", Json.Str "racy_full_system");
            ("n", Json.Int racy_n);
            ("jobs", Json.Int jobs);
            ("groups", Json.Int groups);
            ("steps", Json.Int steps);
            ("steps_per_sec", Json.Num sps);
          ];
        fp)
      jobs_list
  in
  (match fps with
  | fp :: rest when not (List.for_all (String.equal fp) rest) ->
      failwith "E19: racy merged trace is not jobs-independent"
  | _ -> ());

  rowf "@.synthetic k-group racy scaling@.";
  let k = 8 in
  let budget = if !smoke then 500 else 20_000 in
  let sjobs = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let base = ref 0.0 in
  List.iter
    (fun jobs ->
      let dt, groups = e19_workers ~k ~budget ~jobs in
      if jobs = 1 then base := dt;
      let sp = if dt > 0. then !base /. dt else 0. in
      rowf "%6d workers  %4d jobs  %8.3fs  %8.2fx  (%d groups)@." k jobs dt
        sp groups;
      record_mc
        [
          ("experiment", Json.Str "racy_synthetic");
          ("workers", Json.Int k);
          ("jobs", Json.Int jobs);
          ("groups", Json.Int groups);
          ("wall_s", Json.Num dt);
          ("speedup", Json.Num sp);
        ];
      if cores >= 8 && (not !smoke) && jobs = 8 && sp < 4.0 then
        failwith
          (Fmt.str "E19: synthetic racy speedup %.2fx < 4x at 8 jobs on %d \
                    cores"
             sp cores))
    sjobs;

  rowf "@.fleet of independent systems (embarrassingly-parallel bound)@.";
  let fleet_n = if !smoke then 4 else 8 in
  let fbase = ref 0.0 in
  List.iter
    (fun jobs ->
      let dt = e19_fleet ~k ~n:fleet_n ~jobs in
      if jobs = 1 then fbase := dt;
      let sp = if dt > 0. then !fbase /. dt else 0. in
      rowf "%6d systems  %4d jobs  %8.3fs  %8.2fx@." k jobs dt sp;
      record_mc
        [
          ("experiment", Json.Str "fleet");
          ("systems", Json.Int k);
          ("n", Json.Int fleet_n);
          ("jobs", Json.Int jobs);
          ("wall_s", Json.Num dt);
          ("speedup", Json.Num sp);
        ];
      if cores >= 8 && (not !smoke) && jobs = 8 && sp < 4.0 then
        failwith
          (Fmt.str "E19: fleet speedup %.2fx < 4x at 8 jobs on %d cores" sp
             cores))
    sjobs

(* -- Driver ------------------------------------------------------------------ *)

let all : (string * string * (unit -> unit)) list =
  [
    ("E1", "view-change rounds", e1);
    ("E2", "sync-message overhead", e2);
    ("E3", "forwarding strategies", e3);
    ("E4", "throughput", e4);
    ("E5", "obsolete views", e5);
    ("E6", "delivery during reconfiguration", e6);
    ("E7", "client-server end-to-end", e7);
    ("E8", "state transfer", e8);
    ("E9", "two-tier hierarchy ablation", e9);
    ("E11", "wire throughput", e11);
    ("E13", "executor scheduling cached vs rescan", e13);
    ("E14", "hot-path codec + transport", e14);
    ("E16", "effect-sanitizer overhead", e16);
    ("E17", "replicated KV service: load, batching, SLO", e17);
    ("E18", "total-order bake-off: GCS sequencer vs symmetric Skeen", e18);
    ("E19", "multicore executor: det-merge gate + scaling arms", e19);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  smoke := List.mem "-smoke" args;
  let requested = List.filter (fun a -> a <> "-smoke") args in
  let selected =
    if requested = [] then all
    else List.filter (fun (id, _, _) -> List.mem id requested) all
  in
  Fmt.pr "vsgc benchmark harness — experiments %a%s@."
    Fmt.(list ~sep:(any ",") string)
    (List.map (fun (id, _, _) -> id) selected)
    (if !smoke then " (smoke: reduced iterations, no JSON)" else "");
  List.iter (fun (_, _, f) -> f ()) selected;
  write_rows ();
  Fmt.pr "@.done.@."
