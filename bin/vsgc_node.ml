(* vsgc_node: one node of the group-multicast system as an OS process.

   Two roles (DESIGN.md §10):
   - [server]: a membership server. Listens, meshes with its peer
     servers, accepts client joins, and takes part in the proposal /
     commit protocol. Runs until killed.
   - [client]: a GCS end-point plus a scripted application. Dials its
     membership server and the other clients, joins, waits for a view
     of the requested cardinality, multicasts its payloads, and exits
     once the expected number of deliveries arrived.

   The client prints one machine-readable line per event:
     VIEW id=<vid> members=<set>
     DELIVER view=<vid> from=p<sender> payload=<string>
   which is what the CI socket smoke diffs across processes. *)

open Vsgc_types
module Node = Vsgc_net.Node
module Tcp = Vsgc_net.Tcp
module Transport = Vsgc_net.Transport
module Node_id = Vsgc_wire.Node_id

(* -- Argument parsing ----------------------------------------------------- *)

let parse_addr s =
  match String.index_opt s ':' with
  | Some i -> begin
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when 0 < p && p < 65536 && host <> "" -> Ok (host, p)
      | _ -> Error (`Msg (Fmt.str "bad address %S (want HOST:PORT)" s))
    end
  | None -> Error (`Msg (Fmt.str "bad address %S (want HOST:PORT)" s))

let addr_conv =
  Cmdliner.Arg.conv
    (parse_addr, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p)

(* A peer spec names the node behind an address: p<N>=HOST:PORT for a
   client, s<N>=HOST:PORT for a server. *)
let parse_peer s =
  match String.index_opt s '=' with
  | None -> Error (`Msg (Fmt.str "bad peer %S (want p<N>=HOST:PORT or s<N>=HOST:PORT)" s))
  | Some i -> begin
      let name = String.sub s 0 i in
      let addr = String.sub s (i + 1) (String.length s - i - 1) in
      let id =
        if String.length name >= 2 then
          let n = String.sub name 1 (String.length name - 1) in
          match name.[0], int_of_string_opt n with
          | 'p', Some k when k >= 0 -> Some (Node_id.client k)
          | 's', Some k when k >= 0 -> Some (Node_id.server (Server.of_int k))
          | _ -> None
        else None
      in
      match id, parse_addr addr with
      | Some id, Ok a -> Ok (id, a)
      | None, _ ->
          Error (`Msg (Fmt.str "bad peer name %S (want p<N> or s<N>)" name))
      | _, (Error _ as e) -> e
    end

let peer_conv =
  Cmdliner.Arg.conv
    ( parse_peer,
      fun ppf (id, (h, p)) -> Fmt.pf ppf "%s=%s:%d" (Node_id.to_string id) h p )

open Cmdliner

let id_arg =
  Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"Numeric identity of this node.")

let listen_arg =
  Arg.(value & opt (some addr_conv) None
       & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Address to accept connections on.")

let peers_arg =
  Arg.(value & opt_all peer_conv []
       & info [ "peer" ] ~docv:"ID=HOST:PORT"
           ~doc:"A peer this node dials (repeatable). $(docv) is \
                 p<N>=HOST:PORT for a client, s<N>=HOST:PORT for a \
                 server. Each deployment lists every edge exactly once.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Executor schedule seed.")

let timeout_arg ~default =
  Arg.(value & opt float default
       & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Give up and exit non-zero after $(docv) seconds (0 = never).")

(* -- Shared drive loop ---------------------------------------------------- *)

let deadline_of timeout = if timeout <= 0.0 then None else Some (Unix.gettimeofday () +. timeout)

let expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

(* One iteration: drain the wire into the automata, pump them, ship
   what they produced. Returns how many transport events arrived. *)
let spin node tr =
  let events = Transport.recv tr in
  List.iter (Node.handle node) events;
  List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Node.step node);
  List.length events

(* -- Server role ---------------------------------------------------------- *)

let run_server id listen peers seed timeout =
  let me = Node_id.server (Server.of_int id) in
  let tr = Tcp.create (Tcp.config ~listen ~peers me) in
  let node = Node.create ~seed (Node.Server_node { server = Server.of_int id }) in
  Fmt.pr "READY %s@." (Node_id.to_string me);
  let deadline = deadline_of timeout in
  let rec loop () =
    ignore (spin node tr);
    if expired deadline then begin
      Transport.close tr;
      Fmt.epr "vsgc_node: server timeout after %.1fs@." timeout;
      exit 1
    end
    else loop ()
  in
  loop ()

(* -- Client role ---------------------------------------------------------- *)

let members_arg =
  Arg.(value & opt int 1
       & info [ "members" ] ~docv:"M"
           ~doc:"Start multicasting once a view of cardinality $(docv) is delivered.")

let send_arg =
  Arg.(value & opt int 0
       & info [ "send" ] ~docv:"K" ~doc:"Multicast $(docv) payloads p<id>-1 .. p<id>-K.")

let expect_arg =
  Arg.(value & opt int 0
       & info [ "expect" ] ~docv:"D" ~doc:"Exit successfully after $(docv) application deliveries.")

let attach_arg =
  Arg.(value & opt int 0
       & info [ "attach" ] ~docv:"S" ~doc:"Membership server to register with (default s0).")

let linger_arg =
  Arg.(value & opt float 1.0
       & info [ "linger" ] ~docv:"SECS"
           ~doc:"Keep servicing the protocol for $(docv) seconds after the \
                 expected deliveries arrived, so peers can drain before this \
                 node's departure forces a view change.")

let run_client id attach listen peers seed members send expect linger timeout =
  let me = Node_id.client id in
  let tr = Tcp.create (Tcp.config ~listen ~peers me) in
  let node =
    Node.create ~seed (Node.Client_node { proc = id; attach = Server.of_int attach })
  in
  Fmt.pr "READY %s@." (Node_id.to_string me);
  let deadline = deadline_of timeout in
  let seen_views = ref 0 and seen_deliveries = ref 0 and sent = ref false in
  let report () =
    let views = Node.views node in
    List.iteri
      (fun i (v, _) ->
        if i >= !seen_views then
          Fmt.pr "VIEW id=%a members=%a@." View.Id.pp (View.id v) Proc.Set.pp
            (View.set v))
      views;
    seen_views := List.length views;
    let vid =
      match Node.last_view node with
      | Some (v, _) -> Fmt.str "%a" View.Id.pp (View.id v)
      | None -> "-"
    in
    let deliveries = Node.delivered node in
    List.iteri
      (fun i (q, m) ->
        if i >= !seen_deliveries then
          Fmt.pr "DELIVER view=%s from=%a payload=%s@." vid Proc.pp q
            (Msg.App_msg.payload m))
      deliveries;
    seen_deliveries := List.length deliveries
  in
  let rec loop () =
    ignore (spin node tr);
    report ();
    if (not !sent) && send > 0 then begin
      match Node.last_view node with
      | Some (v, _) when Proc.Set.cardinal (View.set v) >= members ->
          sent := true;
          for i = 1 to send do
            Node.push node (Fmt.str "p%d-%d" id i)
          done
      | _ -> ()
    end;
    if !seen_deliveries >= expect && Node.quiescent node then begin
      (* Done, but stay responsive: peers may still be pulling the
         messages this node multicast. *)
      let until = Unix.gettimeofday () +. linger in
      while Unix.gettimeofday () < until do
        ignore (spin node tr);
        report ()
      done;
      Transport.close tr;
      Fmt.pr "DONE deliveries=%d@." !seen_deliveries;
      exit 0
    end;
    if expired deadline then begin
      Transport.close tr;
      Fmt.epr "vsgc_node: client timeout after %.1fs (%d/%d deliveries)@."
        timeout !seen_deliveries expect;
      exit 1
    end;
    loop ()
  in
  loop ()

(* -- Commands ------------------------------------------------------------- *)

let server_cmd =
  let doc = "run a membership server (runs until killed)" in
  Cmd.v
    (Cmd.info "server" ~doc)
    Term.(
      const run_server $ id_arg $ listen_arg $ peers_arg $ seed_arg
      $ timeout_arg ~default:0.0)

let client_cmd =
  let doc = "run a GCS end-point with a scripted application" in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run_client $ id_arg $ attach_arg $ listen_arg $ peers_arg $ seed_arg
      $ members_arg $ send_arg $ expect_arg $ linger_arg
      $ timeout_arg ~default:30.0)

let () =
  let doc = "a vsgc group-multicast node over TCP" in
  let info = Cmd.info "vsgc_node" ~doc ~version:"%%VERSION%%" in
  exit (Cmd.eval (Cmd.group info [ server_cmd; client_cmd ]))
