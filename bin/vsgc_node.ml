(* vsgc_node: one node of the group-multicast system as an OS process.

   Two roles (DESIGN.md §10):
   - [server]: a membership server. Listens, meshes with its peer
     servers, accepts client joins, and takes part in the proposal /
     commit protocol. Runs until killed.
   - [client]: a GCS end-point plus a scripted application. Dials its
     membership server and the other clients, joins, waits for a view
     of the requested cardinality, multicasts its payloads, and exits
     once the expected number of deliveries arrived.

   The client prints one machine-readable line per event:
     VIEW id=<vid> members=<set>
     DELIVER view=<vid> from=p<sender> payload=<string>
   which is what the CI socket smoke diffs across processes. *)

open Vsgc_types
module Node = Vsgc_net.Node
module Tcp = Vsgc_net.Tcp
module Transport = Vsgc_net.Transport
module Node_id = Vsgc_wire.Node_id

(* -- Argument parsing ----------------------------------------------------- *)

let parse_addr s =
  match String.index_opt s ':' with
  | Some i -> begin
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when 0 < p && p < 65536 && host <> "" -> Ok (host, p)
      | _ -> Error (`Msg (Fmt.str "bad address %S (want HOST:PORT)" s))
    end
  | None -> Error (`Msg (Fmt.str "bad address %S (want HOST:PORT)" s))

let addr_conv =
  Cmdliner.Arg.conv
    (parse_addr, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p)

(* A peer spec names the node behind an address: p<N>=HOST:PORT for a
   client (or KV server), s<N>=HOST:PORT for a membership server,
   k<N>=HOST:PORT for a KV load client. *)
let parse_peer s =
  match String.index_opt s '=' with
  | None -> Error (`Msg (Fmt.str "bad peer %S (want p<N>=HOST:PORT or s<N>=HOST:PORT)" s))
  | Some i -> begin
      let name = String.sub s 0 i in
      let addr = String.sub s (i + 1) (String.length s - i - 1) in
      let id =
        if String.length name >= 2 then
          let n = String.sub name 1 (String.length name - 1) in
          match name.[0], int_of_string_opt n with
          | 'p', Some k when k >= 0 -> Some (Node_id.client k)
          | 's', Some k when k >= 0 -> Some (Node_id.server (Server.of_int k))
          | 'k', Some k when k >= 0 -> Some (Node_id.kv_client k)
          | _ -> None
        else None
      in
      match id, parse_addr addr with
      | Some id, Ok a -> Ok (id, a)
      | None, _ ->
          Error (`Msg (Fmt.str "bad peer name %S (want p<N>, s<N> or k<N>)" name))
      | _, (Error _ as e) -> e
    end

let peer_conv =
  Cmdliner.Arg.conv
    ( parse_peer,
      fun ppf (id, (h, p)) -> Fmt.pf ppf "%s=%s:%d" (Node_id.to_string id) h p )

open Cmdliner

let id_arg =
  Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"Numeric identity of this node.")

let listen_arg =
  Arg.(value & opt (some addr_conv) None
       & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Address to accept connections on.")

let peers_arg =
  Arg.(value & opt_all peer_conv []
       & info [ "peer" ] ~docv:"ID=HOST:PORT"
           ~doc:"A peer this node dials (repeatable). $(docv) is \
                 p<N>=HOST:PORT for a client, s<N>=HOST:PORT for a \
                 server. Each deployment lists every edge exactly once.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Executor schedule seed.")

let timeout_arg ~default =
  Arg.(value & opt float default
       & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Give up and exit non-zero after $(docv) seconds (0 = never).")

(* -- Shared drive loop ---------------------------------------------------- *)

let deadline_of timeout = if timeout <= 0.0 then None else Some (Unix.gettimeofday () +. timeout)

let expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

(* One iteration: drain the wire into the automata, pump them, ship
   what they produced. Returns how many transport events arrived. *)
let spin node tr =
  let events = Transport.recv tr in
  List.iter (Node.handle node) events;
  List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Node.step node);
  List.length events

(* -- Server role ---------------------------------------------------------- *)

let run_server id listen peers seed timeout =
  let me = Node_id.server (Server.of_int id) in
  let tr = Tcp.create (Tcp.config ~listen ~peers me) in
  let node = Node.create ~seed (Node.Server_node { server = Server.of_int id }) in
  Fmt.pr "READY %s@." (Node_id.to_string me);
  let deadline = deadline_of timeout in
  let rec loop () =
    ignore (spin node tr);
    if expired deadline then begin
      Transport.close tr;
      Fmt.epr "vsgc_node: server timeout after %.1fs@." timeout;
      exit 1
    end
    else loop ()
  in
  loop ()

(* -- Client role ---------------------------------------------------------- *)

let members_arg =
  Arg.(value & opt int 1
       & info [ "members" ] ~docv:"M"
           ~doc:"Start multicasting once a view of cardinality $(docv) is delivered.")

let send_arg =
  Arg.(value & opt int 0
       & info [ "send" ] ~docv:"K" ~doc:"Multicast $(docv) payloads p<id>-1 .. p<id>-K.")

let expect_arg =
  Arg.(value & opt int 0
       & info [ "expect" ] ~docv:"D" ~doc:"Exit successfully after $(docv) application deliveries.")

let attach_arg =
  Arg.(value & opt int 0
       & info [ "attach" ] ~docv:"S" ~doc:"Membership server to register with (default s0).")

let linger_arg =
  Arg.(value & opt float 1.0
       & info [ "linger" ] ~docv:"SECS"
           ~doc:"Keep servicing the protocol for $(docv) seconds after the \
                 expected deliveries arrived, so peers can drain before this \
                 node's departure forces a view change.")

let run_client id attach listen peers seed members send expect linger timeout =
  let me = Node_id.client id in
  let tr = Tcp.create (Tcp.config ~listen ~peers me) in
  let node =
    Node.create ~seed (Node.Client_node { proc = id; attach = Server.of_int attach })
  in
  Fmt.pr "READY %s@." (Node_id.to_string me);
  let deadline = deadline_of timeout in
  let seen_views = ref 0 and seen_deliveries = ref 0 and sent = ref false in
  let report () =
    let views = Node.views node in
    List.iteri
      (fun i (v, _) ->
        if i >= !seen_views then
          Fmt.pr "VIEW id=%a members=%a@." View.Id.pp (View.id v) Proc.Set.pp
            (View.set v))
      views;
    seen_views := List.length views;
    let vid =
      match Node.last_view node with
      | Some (v, _) -> Fmt.str "%a" View.Id.pp (View.id v)
      | None -> "-"
    in
    let deliveries = Node.delivered node in
    List.iteri
      (fun i (q, m) ->
        if i >= !seen_deliveries then
          Fmt.pr "DELIVER view=%s from=%a payload=%s@." vid Proc.pp q
            (Msg.App_msg.payload m))
      deliveries;
    seen_deliveries := List.length deliveries
  in
  let rec loop () =
    ignore (spin node tr);
    report ();
    if (not !sent) && send > 0 then begin
      match Node.last_view node with
      | Some (v, _) when Proc.Set.cardinal (View.set v) >= members ->
          sent := true;
          for i = 1 to send do
            Node.push node (Fmt.str "p%d-%d" id i)
          done
      | _ -> ()
    end;
    if !seen_deliveries >= expect && Node.quiescent node then begin
      (* Done, but stay responsive: peers may still be pulling the
         messages this node multicast. *)
      let until = Unix.gettimeofday () +. linger in
      while Unix.gettimeofday () < until do
        ignore (spin node tr);
        report ()
      done;
      Transport.close tr;
      Fmt.pr "DONE deliveries=%d@." !seen_deliveries;
      exit 0
    end;
    if expired deadline then begin
      Transport.close tr;
      Fmt.epr "vsgc_node: client timeout after %.1fs (%d/%d deliveries)@."
        timeout !seen_deliveries expect;
      exit 1
    end;
    loop ()
  in
  loop ()

(* -- KV server role (DESIGN.md §15) --------------------------------------- *)

module Kv_node = Vsgc_kv.Kv_node
module Kv_load = Vsgc_kv.Kv_load
module Kv_store = Vsgc_kv.Kv_store

let batch_arg =
  Arg.(value & flag
       & info [ "batch" ]
           ~doc:"Coalesce the sequencer's announcement backlog and apply \
                 contiguous stable commands in one round (batched stable \
                 delivery). Same total order, fewer messages.")

let spin_kv node tr =
  let events = Transport.recv tr in
  List.iter (Kv_node.handle node) events;
  List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Kv_node.step node);
  List.length events

let run_kv_server arm id attach listen peers seed batch timeout =
  let me = Node_id.client id in
  let tr = Tcp.create (Tcp.config ~listen ~peers me) in
  let node =
    Kv_node.create ~seed ~batch ~arm ~attach:(Server.of_int attach) id
  in
  Fmt.pr "READY %s batch=%b arm=%s@." (Node_id.to_string me) batch
    (match arm with `Gcs -> "gcs" | `Sym -> "sym");
  let deadline = deadline_of timeout in
  let seen_views = ref 0 and last_digest = ref "" in
  let report () =
    let views = Kv_node.views node in
    List.iteri
      (fun i (v, _) ->
        if i >= !seen_views then
          Fmt.pr "VIEW id=%a members=%a@." View.Id.pp (View.id v) Proc.Set.pp
            (View.set v))
      views;
    seen_views := List.length views;
    let d = Kv_node.digest node in
    if not (String.equal d !last_digest) then begin
      last_digest := d;
      Fmt.pr "STORE digest=%s applied=%d@." d
        (Kv_store.applied_count (Kv_node.store node))
    end
  in
  let rec loop () =
    ignore (spin_kv node tr);
    report ();
    if expired deadline then begin
      Transport.close tr;
      Fmt.epr "vsgc_node: kv-server timeout after %.1fs@." timeout;
      exit 1
    end
    else loop ()
  in
  loop ()

(* -- KV load role --------------------------------------------------------- *)

let rate_arg =
  Arg.(value & opt float 200.0
       & info [ "rate" ] ~docv:"R"
           ~doc:"Offered load in requests per second. Open loop: request i \
                 is due at start + i/R whether or not earlier requests were \
                 answered.")

let count_arg =
  Arg.(value & opt int 500
       & info [ "count" ] ~docv:"K" ~doc:"Total writes to issue.")

let value_bytes_arg =
  Arg.(value & opt int 32
       & info [ "value-bytes" ] ~docv:"B" ~doc:"Size of each written value.")

let key_space_arg =
  Arg.(value & opt (some int) None
       & info [ "key-space" ] ~docv:"S"
           ~doc:"Keys cycle within a per-client namespace of $(docv) keys \
                 (default: one key per write).")

let retransmit_arg =
  Arg.(value & opt float 1.0
       & info [ "retransmit" ] ~docv:"SECS"
           ~doc:"Retransmit unacknowledged writes after $(docv) seconds \
                 (0 disables). Acks dedup by command id, so retransmission \
                 is safe across server restarts.")

let run_kv_load id peers rate count key_space value_bytes retransmit timeout =
  let me = Node_id.kv_client id in
  let home =
    match
      List.filter_map
        (fun (pid, _) ->
          match pid with Node_id.Client p -> Some p | _ -> None)
        peers
    with
    | [ p ] -> p
    | _ ->
        Fmt.epr "vsgc_node: kv-load needs exactly one p<N> peer (its home)@.";
        exit 2
  in
  let tr = Tcp.create (Tcp.config ~listen:None ~peers me) in
  Fmt.pr "READY %s home=p%d@." (Node_id.to_string me) home;
  (* The load core is time-abstract; feed it microseconds so the
     histogram's integer buckets carry microsecond latencies. *)
  let now_us () = Unix.gettimeofday () *. 1e6 in
  let conf =
    {
      Kv_load.client = id;
      rate = rate /. 1e6;
      count;
      key_space = (match key_space with Some s -> s | None -> count);
      value_bytes;
      retransmit_after = retransmit *. 1e6;
    }
  in
  let gen = Kv_load.create ~start:(now_us ()) conf in
  let deadline = deadline_of timeout in
  let finish ~ok =
    let s = (Kv_load.stats gen : Kv_load.stats) in
    Fmt.pr
      "KVLOAD sent=%d acked=%d dup=%d retx=%d lost=%d p50us=%d p99us=%d \
       p999us=%d maxus=%d maxstallus=%.0f@."
      s.Kv_load.sent s.Kv_load.acked s.Kv_load.dup_acks s.Kv_load.retransmits
      s.Kv_load.outstanding s.Kv_load.p50 s.Kv_load.p99 s.Kv_load.p999
      s.Kv_load.max_latency s.Kv_load.max_stall;
    Transport.close tr;
    exit (if ok && s.Kv_load.outstanding = 0 then 0 else 1)
  in
  let rec loop () =
    let now = now_us () in
    List.iter
      (fun ev ->
        match ev with
        | Transport.Received (_, Vsgc_wire.Packet.Kv_resp resp) ->
            Kv_load.on_response gen ~now resp
        | _ -> ())
      (Transport.recv tr);
    List.iter
      (fun req ->
        Transport.send tr (Node_id.client home) (Vsgc_wire.Packet.Kv_req req))
      (Kv_load.due gen ~now);
    if Kv_load.finished gen then finish ~ok:true
    else if expired deadline then begin
      Fmt.epr "vsgc_node: kv-load timeout after %.1fs (%d/%d acked)@." timeout
        (Kv_load.acked gen) (Kv_load.sent gen);
      finish ~ok:false
    end
    else loop ()
  in
  loop ()

(* -- Commands ------------------------------------------------------------- *)

let server_cmd =
  let doc = "run a membership server (runs until killed)" in
  Cmd.v
    (Cmd.info "server" ~doc)
    Term.(
      const run_server $ id_arg $ listen_arg $ peers_arg $ seed_arg
      $ timeout_arg ~default:0.0)

let client_cmd =
  let doc = "run a GCS end-point with a scripted application" in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run_client $ id_arg $ attach_arg $ listen_arg $ peers_arg $ seed_arg
      $ members_arg $ send_arg $ expect_arg $ linger_arg
      $ timeout_arg ~default:30.0)

let kv_server_cmd =
  let doc = "run a replicated KV server (GCS end-point + strict replica)" in
  Cmd.v
    (Cmd.info "kv-server" ~doc)
    Term.(
      const (run_kv_server `Gcs) $ id_arg $ attach_arg $ listen_arg $ peers_arg
      $ seed_arg $ batch_arg $ timeout_arg ~default:0.0)

let kv_load_cmd =
  let doc = "run an open-loop KV load generator against one kv-server" in
  Cmd.v
    (Cmd.info "kv-load" ~doc)
    Term.(
      const run_kv_load $ id_arg $ peers_arg $ rate_arg $ count_arg
      $ key_space_arg $ value_bytes_arg $ retransmit_arg
      $ timeout_arg ~default:60.0)

(* -- Symmetric-arm roles (DESIGN.md §16) ----------------------------------- *)

(* The symmetric arm reuses the whole KV edge — same Kv_req/Kv_resp
   packets, same store, same load protocol — with the sequencer-based
   replica swapped for the Skeen-ordered one. *)
let sym_server_cmd =
  let doc =
    "run a replicated KV server whose writes are ordered by the symmetric \
     (Skeen-style) total-order protocol instead of the GCS sequencer"
  in
  Cmd.v
    (Cmd.info "sym-server" ~doc)
    Term.(
      const (run_kv_server `Sym) $ id_arg $ attach_arg $ listen_arg $ peers_arg
      $ seed_arg $ batch_arg $ timeout_arg ~default:0.0)

let sym_load_cmd =
  let doc =
    "run an open-loop KV load generator against one sym-server (the same \
     generator as kv-load; the name records which arm the deployment runs)"
  in
  Cmd.v
    (Cmd.info "sym-load" ~doc)
    Term.(
      const run_kv_load $ id_arg $ peers_arg $ rate_arg $ count_arg
      $ key_space_arg $ value_bytes_arg $ retransmit_arg
      $ timeout_arg ~default:60.0)

let () =
  let doc = "a vsgc group-multicast node over TCP" in
  let info = Cmd.info "vsgc_node" ~doc ~version:"%%VERSION%%" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            server_cmd;
            client_cmd;
            kv_server_cmd;
            kv_load_cmd;
            sym_server_cmd;
            sym_load_cmd;
          ]))
