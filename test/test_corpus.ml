(* The regression corpus: every saved schedule under test/corpus/ must
   replay, against the full monitor + invariant battery, to exactly
   what its expect header records — violating schedules reproduce their
   violation, clean schedules stay clean. Findings from the explorer
   (devtools/explore.exe) are shrunk and parked here so once-found bugs
   stay found. *)

module E = Vsgc_explore

let corpus_dir = "corpus"

let corpus_files () =
  match Sys.readdir corpus_dir with
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".sched")
      |> List.sort compare
      |> List.map (Filename.concat corpus_dir)
  | exception Sys_error _ -> []

let check_one file () =
  let s = E.Schedule.load file in
  match E.Replay.check s with
  | E.Replay.Reproduced | E.Replay.Clean_ok -> ()
  | E.Replay.Missing kind ->
      Alcotest.failf "%s: replay was clean, expected a %s violation" file kind
  | E.Replay.Unexpected v ->
      Alcotest.failf "%s: unexpected violation %a" file E.Replay.pp_violation v

let suite =
  let files = corpus_files () in
  Alcotest.test_case "corpus present" `Quick (fun () ->
      if files = [] then Alcotest.fail "no .sched files under test/corpus")
  :: List.map (fun f -> Alcotest.test_case f `Quick (check_one f)) files
