(* The regression corpus: every saved schedule under test/corpus/ must
   replay, against the full monitor + invariant battery, to exactly
   what its expect header records — violating schedules reproduce their
   violation, clean schedules stay clean, and detected-and-rejoined
   schedules heal through the §13 corruption guards. Findings from the
   explorer (devtools/explore.exe) and the chaos driver
   (devtools/chaos.exe) are shrunk and parked here so once-found bugs
   stay found.

   Discovery is a sorted directory scan: both [.sched] (explorer,
   in-memory harness) and [.fault] (chaos, networked deployment) files
   are picked up automatically, any other file in the directory fails
   the suite loudly, and an unparseable corpus file is a test failure —
   never a silent skip. Every file replays under BOTH executor
   scheduling modes (cached and rescan), because a pinned fingerprint
   that only reproduces under one mode is a scheduler bug in hiding. *)

module E = Vsgc_explore
module F = Vsgc_fault
module Executor = Vsgc_ioa.Executor

let corpus_dir = "corpus"

(* -- Discovery ------------------------------------------------------------ *)

let all_files () =
  match Sys.readdir corpus_dir with
  | files ->
      Array.to_list files |> List.sort compare
      |> List.map (Filename.concat corpus_dir)
  | exception Sys_error _ -> []

let sched_files () =
  List.filter (fun f -> Filename.check_suffix f ".sched") (all_files ())

let fault_files () =
  List.filter (fun f -> Filename.check_suffix f ".fault") (all_files ())

let stray_files () =
  List.filter
    (fun f ->
      not
        (Filename.check_suffix f ".sched" || Filename.check_suffix f ".fault"))
    (all_files ())

(* -- Loud-failure guards -------------------------------------------------- *)

let test_corpus_present () =
  if sched_files () = [] then Alcotest.fail "no .sched files under test/corpus";
  if List.length (fault_files ()) < 3 then
    Alcotest.failf "want at least 3 .fault files under test/corpus, got %d"
      (List.length (fault_files ()))

let test_no_stray_files () =
  match stray_files () with
  | [] -> ()
  | strays ->
      Alcotest.failf
        "test/corpus holds files the replay harness cannot discover: %s"
        (String.concat ", " strays)

(* Every corpus file must parse; a half-edited pin must fail the suite,
   not vanish from discovery. *)
let test_corpus_parses () =
  List.iter
    (fun f ->
      match E.Schedule.load f with
      | (_ : E.Schedule.t) -> ()
      | exception E.Schedule.Parse_error m ->
          Alcotest.failf "%s does not parse: %s" f m)
    (sched_files ());
  List.iter
    (fun f ->
      match F.Schedule.load f with
      | (_ : F.Schedule.t) -> ()
      | exception F.Schedule.Parse_error m ->
          Alcotest.failf "%s does not parse: %s" f m)
    (fault_files ())

(* The §13 corruption corpus must never silently shrink away: at least
   one pinned .fault schedule carries a corrupt event. *)
let test_corruption_corpus_present () =
  let has_corrupt f =
    List.exists
      (function F.Schedule.Corrupt _ -> true | _ -> false)
      (F.Schedule.load f).F.Schedule.events
  in
  match List.filter has_corrupt (fault_files ()) with
  | [] -> Alcotest.fail "no pinned .fault schedule carries a corrupt event"
  | _ -> ()

(* The symmetric-arm corpus (DESIGN.md §16) must never silently shrink
   away either: at least a partition-heal and a crash-rejoin pin deploy
   [arm sym], so the Skeen monitor keeps seeing faulted wire traffic. *)
let test_sym_corpus_present () =
  let is_sym f =
    (F.Schedule.load f).F.Schedule.conf.F.Schedule.arm = `Sym
  in
  if List.length (List.filter is_sym (fault_files ())) < 2 then
    Alcotest.fail "want at least 2 pinned sym-arm .fault schedules"

(* -- Replay, under both scheduler modes ----------------------------------- *)

let in_mode mode body () =
  let saved = Executor.get_default_mode () in
  Executor.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Executor.set_default_mode saved) body

let check_sched file () =
  let s = E.Schedule.load file in
  match E.Replay.check s with
  | E.Replay.Reproduced | E.Replay.Clean_ok -> ()
  | E.Replay.Missing kind ->
      Alcotest.failf "%s: replay was clean, expected a %s violation" file kind
  | E.Replay.Unexpected v ->
      Alcotest.failf "%s: unexpected violation %a" file E.Replay.pp_violation v

let check_fault file () =
  let s = F.Schedule.load file in
  Alcotest.(check bool)
    (file ^ " carries a pinned fingerprint")
    true
    (s.F.Schedule.conf.F.Schedule.fingerprint <> None);
  match F.Inject.check s with
  | F.Inject.Reproduced | F.Inject.Clean_ok -> ()
  | F.Inject.Missing kind ->
      Alcotest.failf "%s: replay was clean, expected %s" file kind
  | F.Inject.Unexpected v ->
      Alcotest.failf "%s: unexpected violation %a" file F.Inject.pp_violation v
  | F.Inject.Fingerprint_mismatch { expected; got } ->
      Alcotest.failf "%s: fingerprint drift@.  pinned: %s@.  got:    %s" file
        expected got

let replay_cases =
  List.concat_map
    (fun mode ->
      let tag f =
        Fmt.str "%s [%s]" f
          (match mode with
          | `Cached -> "cached"
          | `Rescan -> "rescan"
          | `Parallel -> "parallel")
      in
      List.map
        (fun f -> Alcotest.test_case (tag f) `Quick (in_mode mode (check_sched f)))
        (sched_files ())
      @ List.map
          (fun f ->
            Alcotest.test_case (tag f) `Quick (in_mode mode (check_fault f)))
          (fault_files ()))
    (* [`Parallel] here is the deterministic-merge multicore mode: the
       whole pinned corpus must fingerprint-match under it too. *)
    [ `Cached; `Rescan; `Parallel ]

let suite =
  [
    Alcotest.test_case "corpus present" `Quick test_corpus_present;
    Alcotest.test_case "no stray corpus files" `Quick test_no_stray_files;
    Alcotest.test_case "corpus files all parse" `Quick test_corpus_parses;
    Alcotest.test_case "corruption corpus present" `Quick
      test_corruption_corpus_present;
    Alcotest.test_case "sym-arm corpus present" `Quick test_sym_corpus_present;
  ]
  @ replay_cases
