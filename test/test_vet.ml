(* The vet static-analysis passes: shipped compositions lint clean and
   hold the inheritance discipline; each seeded miswiring fixture
   produces its expected diagnostic (the linter can see); the schedule
   checker validates the corpus and rejects out-of-signature
   schedules. *)

module A = Vsgc_analysis
module Sched = Vsgc_explore.Schedule
module Sysconf = Vsgc_explore.Sysconf

let check = Alcotest.(check bool)

let has_check c diags = List.exists (fun d -> d.A.Diag.check = c) diags

let diags_to_string diags =
  String.concat "\n" (List.map A.Diag.to_string diags)

let test_fixtures () =
  List.iter
    (fun (f : A.Fixtures.t) ->
      let diags = f.A.Fixtures.run () in
      check
        (Fmt.str "fixture %s reports %s" f.A.Fixtures.name f.A.Fixtures.expect)
        true
        (has_check f.A.Fixtures.expect diags))
    A.Fixtures.all

let test_full_layer_clean () =
  let diags = A.Lint.layer `Full in
  Alcotest.(check string) "full layer lints clean" "" (diags_to_string diags)

let test_server_stack_clean () =
  let diags = A.Lint.server_stack () in
  Alcotest.(check string) "server stack lints clean" "" (diags_to_string diags)

let test_inherit_clean () =
  List.iter
    (fun (r : A.Inherit_check.report) ->
      check (r.A.Inherit_check.pair ^ " corpus is non-vacuous") true
        (r.A.Inherit_check.states > 0 && r.A.Inherit_check.transitions > 0);
      Alcotest.(check string)
        (r.A.Inherit_check.pair ^ " holds the discipline")
        ""
        (diags_to_string r.A.Inherit_check.diags))
    (A.Inherit_check.all ())

let test_corpus_clean () =
  Alcotest.(check string)
    "shipped corpus validates" ""
    (diags_to_string (A.Sched_check.check_dir "corpus"))

(* A hand-built schedule violating all four schedule checks at once. *)
let test_sched_rejects () =
  let conf = Sysconf.make ~n:2 ~layer:`Wv () in
  let bad =
    {
      Sched.name = "bad";
      expect = None;
      conf;
      entries =
        [
          Sched.Choose { owner = 99; key = "send_p0(\"x\")" };
          Sched.Choose { owner = 0; key = "bogus_action()" };
          Sched.Choose
            { owner = 1; key = "co_rfifo.send_p1({p0},sync(c2,v1.0,[]))" };
          Sched.Choose { owner = 1; key = "block_p5()" };
          Sched.Env (Sched.Crash 7);
        ];
    }
  in
  let diags = A.Sched_check.check_sched bad in
  List.iter
    (fun c -> check (c ^ " detected") true (has_check c diags))
    [ "owner-range"; "unknown-action"; "layer-mismatch"; "locus-range" ]

let suite =
  [
    Alcotest.test_case "miswiring fixtures are seen" `Quick test_fixtures;
    Alcotest.test_case "full layer wiring is clean" `Quick test_full_layer_clean;
    Alcotest.test_case "server stack wiring is clean" `Quick test_server_stack_clean;
    Alcotest.test_case "inheritance discipline holds" `Quick test_inherit_clean;
    Alcotest.test_case "corpus schedules validate" `Quick test_corpus_clean;
    Alcotest.test_case "out-of-signature schedules are rejected" `Quick
      test_sched_rejects;
  ]
