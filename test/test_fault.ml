(* The fault layer (DESIGN.md §11): serializable schedules over the
   networked runtime, per-link controls in the loopback hub, the
   acceptance partition-then-heal scenario judged by the full monitor +
   invariant battery, seeded chaos, and the .fault regression corpus
   with pinned fingerprints. *)

open Vsgc_types
module F = Vsgc_fault
module Net_system = Vsgc_harness.Net_system
module Loopback = Vsgc_net.Loopback
module Transport = Vsgc_net.Transport
module Node_id = Vsgc_wire.Node_id
module Packet = Vsgc_wire.Packet

let check = Alcotest.(check bool)

(* -- Schedule text form -------------------------------------------------- *)

(* One schedule exercising every event constructor round-trips through
   the text form exactly. *)
let test_schedule_roundtrip () =
  let sched =
    {
      F.Schedule.conf =
        {
          name = "roundtrip";
          seed = 99;
          clients = 3;
          servers = 2;
          layer = `Full;
          arm = `Sym;
          knobs = { Loopback.delay = 2; drop = 0.25; reorder = 0.5 };
          expect = Some "wv_rfifo_spec";
          fingerprint = Some "p0=dead:1|hub:2/3/4";
        };
      events =
        [
          F.Schedule.Settle;
          F.Schedule.Partition
            [
              [ Node_id.Client 0; Node_id.Server 0 ];
              [ Node_id.Client 1; Node_id.Client 2; Node_id.Server 1 ];
            ];
          F.Schedule.Traffic 2;
          F.Schedule.Run 7;
          F.Schedule.Heal;
          F.Schedule.Crash 1;
          F.Schedule.Restart 1;
          F.Schedule.Delay_spike { Loopback.delay = 4; drop = 0.1; reorder = 0.0 };
          F.Schedule.Link { a = Node_id.Client 0; b = Node_id.Server 1; up = false };
          F.Schedule.Link { a = Node_id.Client 0; b = Node_id.Server 1; up = true };
          F.Schedule.Send { from = 2; payload = "with space\nand newline" };
          F.Schedule.Corrupt
            { target = 1; field = Vsgc_core.Endpoint.Wraparound; salt = 42 };
          F.Schedule.Settle;
          F.Schedule.Converged;
        ];
    }
  in
  let text = F.Schedule.to_string sched in
  let back = F.Schedule.of_string text in
  Alcotest.(check string) "text fixpoint" text (F.Schedule.to_string back)

let test_schedule_rejects_garbage () =
  List.iter
    (fun text ->
      match F.Schedule.of_string text with
      | exception F.Schedule.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    [
      "";
      "vsgc-sched 1\nclients 2";
      "vsgc-fault 1\nclients 2\nfrobnicate 3";
      "vsgc-fault 1\nsettle";
      "vsgc-fault 1\nclients 2\nlink p0 q1 up";
      "vsgc-fault 1\nclients 2\npartition |";
      "vsgc-fault 1\nclients 2\ncorrupt 0 frobnicate 3";
      "vsgc-fault 1\nclients 2\ncorrupt 0 last_sent";
      "vsgc-fault 1\nclients 2\narm banana";
    ]

(* -- Per-link hub controls ----------------------------------------------- *)

let drain tr = Transport.recv tr

let run_hub hub trs =
  let got = ref [] in
  let rec go budget =
    if budget = 0 then Alcotest.fail "hub did not settle";
    List.iter (fun tr -> got := !got @ drain tr) trs;
    if not (Loopback.idle hub) then begin
      Loopback.tick hub;
      go (budget - 1)
    end
  in
  go 200;
  !got

(* Down parks traffic (idle, nothing delivered, nothing dropped); up
   re-injects it in order. *)
let test_link_down_parks_up_redelivers () =
  let hub = Loopback.hub ~seed:3 () in
  let a = Loopback.attach hub (Node_id.Client 0)
  and b = Loopback.attach hub (Node_id.Client 1) in
  Transport.connect a (Node_id.Client 1);
  ignore (run_hub hub [ a; b ]);
  Loopback.set_link hub (Node_id.Client 0) (Node_id.Client 1) ~up:false;
  ignore (drain a);
  ignore (drain b);
  Transport.send a (Node_id.Client 1) (Packet.Join 0);
  Transport.send a (Node_id.Client 1) (Packet.Leave 0);
  ignore (run_hub hub [ a; b ]);
  check "parked traffic leaves the hub idle" true (Loopback.idle hub);
  Alcotest.(check int) "nothing delivered while down" 0 (Loopback.delivered hub);
  Alcotest.(check int) "nothing dropped either" 0 (Loopback.dropped hub);
  check "link reported down" true
    (not (Loopback.connected hub (Node_id.Client 0) (Node_id.Client 1)));
  Loopback.set_link hub (Node_id.Client 0) (Node_id.Client 1) ~up:true;
  let events = run_hub hub [ a; b ] in
  let received =
    List.filter_map
      (function Transport.Received (_, p) -> Some p | _ -> None)
      events
  in
  check "both parked packets delivered in order" true
    (match received with
    | [ Packet.Join 0; Packet.Leave 0 ] -> true
    | _ -> false)

(* discard is the node-death variant: parked and in-flight traffic is
   destroyed (counted as dropped), and the stream cursor skips so a
   later reconnect flows again. *)
let test_discard_destroys_parked () =
  let hub = Loopback.hub ~seed:4 () in
  let a = Loopback.attach hub (Node_id.Client 0)
  and b = Loopback.attach hub (Node_id.Client 1) in
  Transport.connect a (Node_id.Client 1);
  ignore (run_hub hub [ a; b ]);
  Loopback.set_link hub (Node_id.Client 0) (Node_id.Client 1) ~up:false;
  Transport.send a (Node_id.Client 1) (Packet.Join 0);
  Loopback.discard hub (Node_id.Client 1);
  Loopback.set_link hub (Node_id.Client 0) (Node_id.Client 1) ~up:true;
  let events = run_hub hub [ a; b ] in
  Alcotest.(check int) "parked packet counted dropped" 1 (Loopback.dropped hub);
  check "no stale delivery" true
    (not
       (List.exists
          (function Transport.Received _ -> true | _ -> false)
          events));
  Transport.send a (Node_id.Client 1) (Packet.Leave 0);
  let events = run_hub hub [ a; b ] in
  check "stream flows again past the destroyed frame" true
    (List.exists
       (function
         | Transport.Received (_, Packet.Leave 0) -> true
         | _ -> false)
       events)

(* Per-link knob overrides beat the hub default: an overridden slow
   link delivers after a fast default link, and restoring the override
   restores the default. *)
let test_per_link_knobs () =
  let hub = Loopback.hub ~seed:5 () in
  let a = Loopback.attach hub (Node_id.Client 0) in
  let b = Loopback.attach hub (Node_id.Client 1) in
  let c = Loopback.attach hub (Node_id.Client 2) in
  Transport.connect a (Node_id.Client 1);
  Transport.connect a (Node_id.Client 2);
  ignore (run_hub hub [ a; b; c ]);
  Loopback.set_link_knobs hub (Node_id.Client 0) (Node_id.Client 2)
    (Some { Loopback.delay = 0; drop = 1.0; reorder = 0.0 });
  (* drop=1.0 charges the full capped retransmission penalty on every
     packet into the overridden link; the default link stays at zero *)
  Transport.send a (Node_id.Client 1) (Packet.Join 0);
  Transport.send a (Node_id.Client 2) (Packet.Join 0);
  Loopback.tick hub;
  let fast = drain b and slow = drain c in
  check "default link already delivered" true
    (List.exists (function Transport.Received _ -> true | _ -> false) fast);
  check "overridden link still in flight" true
    (not
       (List.exists (function Transport.Received _ -> true | _ -> false) slow));
  ignore (run_hub hub [ a; b; c ]);
  check "overridden link delivered eventually" true
    (Loopback.delivered hub = 2);
  check "retransmission rounds were charged" true (Loopback.retransmits hub > 0);
  Loopback.set_link_knobs hub (Node_id.Client 0) (Node_id.Client 2) None;
  Transport.send a (Node_id.Client 2) (Packet.Leave 0);
  Loopback.tick hub;
  check "restored link is fast again" true
    (List.exists
       (function Transport.Received _ -> true | _ -> false)
       (drain c))

(* -- The acceptance scenario --------------------------------------------- *)

let acceptance_schedule =
  {
    F.Schedule.conf =
      {
        name = "acceptance";
        seed = 31;
        clients = 3;
        servers = 2;
        layer = `Full;
        arm = `Gcs;
        knobs = { Loopback.default_knobs with delay = 1 };
        expect = None;
        fingerprint = None;
      };
    events =
      [
        F.Schedule.Settle;
        F.Schedule.Traffic 1;
        F.Schedule.Partition
          [
            [ Node_id.Client 0; Node_id.Client 1; Node_id.Server 0 ];
            [ Node_id.Client 2; Node_id.Server 1 ];
          ];
        F.Schedule.Traffic 1;
        F.Schedule.Run 30;
        F.Schedule.Heal;
        F.Schedule.Traffic 1;
        F.Schedule.Settle;
        F.Schedule.Converged;
      ];
  }

(* Seeded partition-then-heal over 2 servers + 3 clients: same seed,
   same fingerprint; converges to one agreed view covering everyone;
   all four monitors and the invariant battery green (a violation
   would surface as an Error verdict). *)
let test_acceptance_partition_heal () =
  let o1 = F.Inject.run acceptance_schedule in
  let o2 = F.Inject.run acceptance_schedule in
  (match o1.F.Inject.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %a" F.Inject.pp_violation v);
  Alcotest.(check string)
    "same seed, same fingerprint" o1.F.Inject.fingerprint
    o2.F.Inject.fingerprint;
  let net = o1.F.Inject.net in
  match Net_system.last_view_of net 0 with
  | None -> Alcotest.fail "no final view"
  | Some (v, _) ->
      check "final view covers all three clients" true
        (Proc.Set.equal (View.set v) (Proc.Set.of_range 0 2));
      check "every client installed it" true (Net_system.all_in_view net v)

(* The convergence check has teeth: never healing the partition makes
   the schedule fail with "diverged", and the violation classifier
   names it. *)
let test_unhealed_partition_diverges () =
  let events =
    List.filter
      (fun e -> e <> F.Schedule.Heal)
      acceptance_schedule.F.Schedule.events
  in
  let sched = { acceptance_schedule with events } in
  match (F.Inject.run sched).F.Inject.verdict with
  | Error { kind = "diverged"; _ } -> ()
  | Error v -> Alcotest.failf "wrong kind: %a" F.Inject.pp_violation v
  | Ok () -> Alcotest.fail "unhealed partition converged"

(* -- Chaos --------------------------------------------------------------- *)

let test_chaos_sample_pure () =
  let c = F.Chaos.default_config in
  let s1 = F.Chaos.sample ~seed:9 c and s2 = F.Chaos.sample ~seed:9 c in
  Alcotest.(check string)
    "equal seeds, equal schedules" (F.Schedule.to_string s1)
    (F.Schedule.to_string s2);
  let s3 = F.Chaos.sample ~seed:10 c in
  check "different seeds differ" true
    (F.Schedule.to_string s1 <> F.Schedule.to_string s3)

let test_chaos_smoke () =
  match F.Chaos.find ~rounds:3 ~seed:2026 F.Chaos.default_config with
  | None -> ()
  | Some f ->
      Alcotest.failf "chaos round %d found %a:@,%a" f.F.Chaos.round
        F.Inject.pp_violation f.F.Chaos.violation F.Schedule.pp
        f.F.Chaos.schedule

(* -- Properties (qcheck) -------------------------------------------------- *)

(* Random well-formed schedules: every constructor reachable, corrupt
   events included, node ids within the conf's bounds. *)
let gen_schedule =
  QCheck.Gen.(
    let* clients = int_range 2 4 in
    let* servers = int_range 1 2 in
    let gen_id =
      oneof
        [
          map Node_id.client (int_range 0 (clients - 1));
          map
            (fun s -> Node_id.server (Server.of_int s))
            (int_range 0 (servers - 1));
        ]
    in
    let gen_knobs =
      let* delay = int_range 0 4 in
      let* drop = oneofl [ 0.0; 0.25; 0.5 ] in
      let* reorder = oneofl [ 0.0; 0.5 ] in
      return { Loopback.delay; drop; reorder }
    in
    let gen_event =
      oneof
        [
          return F.Schedule.Settle;
          return F.Schedule.Heal;
          return F.Schedule.Converged;
          map (fun n -> F.Schedule.Traffic n) (int_range 1 3);
          map (fun n -> F.Schedule.Run n) (int_range 1 40);
          map (fun p -> F.Schedule.Crash p) (int_range 0 (clients - 1));
          map (fun p -> F.Schedule.Restart p) (int_range 0 (clients - 1));
          map (fun k -> F.Schedule.Delay_spike k) gen_knobs;
          (let* a = gen_id and* b = gen_id and* up = bool in
           return (F.Schedule.Link { a; b; up }));
          (let* target = int_range 0 (clients - 1)
           and* field = oneofl Vsgc_core.Endpoint.all_corruptions
           and* salt = int_range 0 999 in
           return (F.Schedule.Corrupt { target; field; salt }));
          (let* from = int_range 0 (clients - 1)
           and* payload = oneofl [ "m"; "two words"; "line\nbreak" ] in
           return (F.Schedule.Send { from; payload }));
        ]
    in
    let* events = list_size (int_range 0 12) gen_event in
    let* seed = int_range 0 9999 in
    let* layer = oneofl [ `Wv; `Vs; `Full ] in
    let* arm = oneofl [ `Gcs; `Sym ] in
    let* knobs = gen_knobs in
    let* expect =
      oneofl [ None; Some "wv_rfifo_spec"; Some F.Inject.detected_kind ]
    in
    let* fingerprint = oneofl [ None; Some "p0=dead:1|hub:2/3/4" ] in
    return
      {
        F.Schedule.conf =
          {
            name = "prop";
            seed;
            clients;
            servers;
            layer;
            arm;
            knobs;
            expect;
            fingerprint;
          };
        events;
      })

let prop_fault_roundtrip =
  QCheck.Test.make ~count:200 ~name:".fault text round-trips"
    (QCheck.make gen_schedule) (fun s ->
      let text = F.Schedule.to_string s in
      String.equal text (F.Schedule.to_string (F.Schedule.of_string text)))

(* Chaos sampling stays pure with corruption enabled — and disabling
   corruption must not disturb the RNG stream of crash-only sampling,
   or every pinned chaos-N name would silently re-derive. *)
let prop_chaos_corruption_pure =
  QCheck.Test.make ~count:30 ~name:"chaos sampling is pure under corruption"
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let c = { F.Chaos.default_config with corruption = true } in
      let s1 = F.Chaos.sample ~seed c and s2 = F.Chaos.sample ~seed c in
      String.equal (F.Schedule.to_string s1) (F.Schedule.to_string s2))

let is_corrupt = function F.Schedule.Corrupt _ -> true | _ -> false

let rec subsequence xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
      if x = y then subsequence xs' ys' else subsequence xs ys'

(* ddmin over a sampled schedule's events: the result still satisfies
   the predicate, is a genuine subsequence (shrinking never invents or
   reorders events), and the shrunk schedule is still serializable. *)
let prop_shrink_preserves_validity =
  QCheck.Test.make ~count:30 ~name:"shrinking preserves validity"
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let c = { F.Chaos.default_config with corruption = true } in
      let s = F.Chaos.sample ~seed c in
      let pred evs = List.exists is_corrupt evs in
      QCheck.assume (pred s.F.Schedule.events);
      let events = Vsgc_explore.Shrink.ddmin pred s.F.Schedule.events in
      let shrunk = { s with events } in
      let text = F.Schedule.to_string shrunk in
      pred events
      && subsequence events s.F.Schedule.events
      && String.equal text (F.Schedule.to_string (F.Schedule.of_string text)))

let suite =
  [
    Alcotest.test_case "schedule text round-trip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule parser rejects garbage" `Quick
      test_schedule_rejects_garbage;
    Alcotest.test_case "link down parks, up redelivers" `Quick
      test_link_down_parks_up_redelivers;
    Alcotest.test_case "discard destroys parked traffic" `Quick
      test_discard_destroys_parked;
    Alcotest.test_case "per-link knob overrides" `Quick test_per_link_knobs;
    Alcotest.test_case "acceptance: partition-heal converges" `Quick
      test_acceptance_partition_heal;
    Alcotest.test_case "unhealed partition diverges" `Quick
      test_unhealed_partition_diverges;
    Alcotest.test_case "chaos sampling is pure" `Quick test_chaos_sample_pure;
    Alcotest.test_case "chaos: 3 rounds green" `Quick test_chaos_smoke;
    QCheck_alcotest.to_alcotest ~long:false prop_fault_roundtrip;
    QCheck_alcotest.to_alcotest ~long:false prop_chaos_corruption_pure;
    QCheck_alcotest.to_alcotest ~long:false prop_shrink_preserves_validity;
  ]
