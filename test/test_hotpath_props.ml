(* The hot-path equivalence properties (qcheck).

   The incremental scheduler and the pooled wire buffers are pure
   optimisations: nothing observable may change. Two families of
   properties pin that down.

   1. Scheduler equivalence: for random seeds, schedules, and fault
      knobs, a [`Cached] executor and a [`Rescan] executor produce
      IDENTICAL trace fingerprints — under the free-running scheduler,
      the explorer's replay machinery, the round-synchronous runner,
      and the loopback (net) runtime. The fingerprint hashes every
      rendered action in order, so equality means the entire scheduling
      history (hence the RNG stream) matched decision for decision.

   2. Pool safety: frames encoded through the shared buffer pool are
      OWNED — arbitrarily interleaved encodes and decodes never alias a
      live buffer, so bytes handed out earlier are never mutated by
      later pool reuse. *)

open Vsgc_types
module E = Vsgc_explore
module Sched = E.Schedule
module System = Vsgc_harness.System
module Net_system = Vsgc_harness.Net_system
module Executor = Vsgc_ioa.Executor
module Trace_stats = Vsgc_ioa.Trace_stats
module Loopback = Vsgc_net.Loopback
module Frame = Vsgc_wire.Frame
module Packet = Vsgc_wire.Packet

let with_mode m f =
  let saved = Executor.get_default_mode () in
  Executor.set_default_mode m;
  Fun.protect ~finally:(fun () -> Executor.set_default_mode saved) f

(* -- Random driving scripts --------------------------------------------- *)

let n = 3

type op = Reconf of int | Send of int | Run of int | Change

let pp_op = function
  | Reconf bits -> Fmt.str "reconf(%#x)" bits
  | Send p -> Fmt.str "send(%d)" p
  | Run k -> Fmt.str "run(%d)" k
  | Change -> "change"

let entries_of_ops ops =
  let all = Proc.Set.of_range 0 (n - 1) in
  let origin = ref 0 in
  let counter = ref 0 in
  let start = [ Sched.Env (Sched.Reconfigure { origin = 0; set = all }) ] in
  start
  @ List.concat_map
      (fun op ->
        match op with
        | Reconf bits ->
            let set = Proc.Set.filter (fun p -> bits land (1 lsl p) <> 0) all in
            if Proc.Set.is_empty set then []
            else begin
              incr origin;
              [ Sched.Env (Sched.Reconfigure { origin = !origin; set }) ]
            end
        | Send p ->
            incr counter;
            [ Sched.Env (Sched.Send { from = p; payload = Fmt.str "x%d" !counter }) ]
        | Run k -> [ Sched.Run k ]
        | Change ->
            [
              Sched.Env (Sched.Start_change all);
              Sched.Env (Sched.Deliver_view { origin = 1; set = all });
            ])
      ops

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun b -> Reconf b) (int_range 1 ((1 lsl n) - 1)));
        (4, map (fun p -> Send p) (int_range 0 (n - 1)));
        (3, map (fun k -> Run k) (int_range 5 60));
        (2, return Change);
      ])

let gen_case = QCheck.Gen.(pair (int_range 0 9999) (list_size (int_range 1 6) gen_op))

let arb_case =
  QCheck.make gen_case
    ~print:(fun (seed, ops) ->
      Fmt.str "seed=%d [%s]" seed (String.concat "; " (List.map pp_op ops)))
    ~shrink:
      QCheck.Shrink.(
        fun (seed, ops) yield -> list ops (fun ops' -> yield (seed, ops')))

let fingerprint_of sys =
  Trace_stats.fingerprint (Vsgc_ioa.Executor.trace (System.exec sys))

(* -- 1a. Free-running scheduler + explorer replay ----------------------- *)

(* The replay machinery exercises [Executor.run] (Run entries), public
   [candidates]/[perform] (environment injections), and the harness's
   direct state mutations (Send pushes into the client ref) — exactly
   the paths the resync-at-public-entry rule must protect. *)
let random_runner_equivalent (seed, ops) =
  let build mode =
    with_mode mode (fun () ->
        let sys = System.create ~seed ~n ~layer:`Full ~monitors:`None () in
        E.Replay.replay sys (entries_of_ops ops);
        ignore (System.run ~max_steps:50_000 sys);
        fingerprint_of sys)
  in
  String.equal (build `Cached) (build `Rescan)

(* -- 1b. Round-synchronous runner --------------------------------------- *)

let sync_runner_equivalent (seed, ops) =
  let build mode =
    with_mode mode (fun () ->
        let sys = System.create ~seed ~n ~layer:`Full ~monitors:`None () in
        ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 (n - 1)));
        List.iter
          (function
            | Send p -> System.send sys p (Fmt.str "s%d" p)
            | Reconf _ | Run _ | Change -> ())
          ops;
        ignore (System.run_rounds ~max_rounds:200 sys);
        fingerprint_of sys)
  in
  String.equal (build `Cached) (build `Rescan)

(* -- 1c. The loopback (net) runtime, across fault knobs ------------------ *)

let gen_knobs =
  QCheck.Gen.(
    map3
      (fun delay drop reorder ->
        { Loopback.delay; drop = float_of_int drop /. 10.; reorder = float_of_int reorder /. 10. })
      (int_range 0 4) (int_range 0 4) (int_range 0 4))

let arb_net_case =
  QCheck.make
    QCheck.Gen.(pair (int_range 0 9999) gen_knobs)
    ~print:(fun (seed, k) ->
      Fmt.str "seed=%d delay=%d drop=%.1f reorder=%.1f" seed k.Loopback.delay
        k.Loopback.drop k.Loopback.reorder)

let net_runner_equivalent (seed, knobs) =
  let build mode =
    with_mode mode (fun () ->
        let net = Net_system.create ~seed ~knobs ~n () in
        ignore (Net_system.reconfigure net ~set:(Proc.Set.of_range 0 (n - 1)));
        Net_system.run net;
        Net_system.broadcast net ~senders:(Proc.Set.of_range 0 (n - 1)) ~per_sender:2;
        Net_system.run net;
        ignore (Net_system.reconfigure net ~set:(Proc.Set.of_range 0 (n - 2)));
        Net_system.run net;
        Net_system.fingerprint net)
  in
  String.equal (build `Cached) (build `Rescan)

(* -- 2. Pool safety ------------------------------------------------------ *)

(* Interleave encodes and decodes driven by a random program; every
   byte string the codec hands out must still equal a fresh re-encode
   of its packet at the end — if pool reuse ever aliased a live
   buffer, some earlier frame's bytes would have been clobbered. *)
let pool_never_aliases (seed, steps) =
  let rng = Vsgc_ioa.Rng.make seed in
  let mk_packet i =
    match i mod 4 with
    | 0 -> Packet.Hello (Vsgc_wire.Node_id.client i)
    | 1 -> Packet.Join i
    | 2 ->
        Packet.Rf
          {
            from = i;
            wire = Msg.Wire.App (Msg.App_msg.make (String.make (1 + (i mod 97)) 'x'));
          }
    | _ ->
        Packet.Start_change
          { target = i mod n; cid = i; set = Proc.Set.of_range 0 (i mod 4) }
  in
  let live = ref [] in
  for step = 0 to steps - 1 do
    match Vsgc_ioa.Rng.int rng 3 with
    | 0 ->
        let pkt = mk_packet step in
        live := (pkt, Frame.encode pkt) :: !live
    | 1 -> (
        (* decode a random live frame — decoders go through the same
           pooled machinery on the read side *)
        match !live with
        | [] -> ()
        | l ->
            let _, bytes = List.nth l (Vsgc_ioa.Rng.int rng (List.length l)) in
            ignore (Frame.decode bytes))
    | _ ->
        (* a nested encode inside a decode window's lifetime *)
        ignore (Frame.encode (mk_packet (step + 1)))
  done;
  List.for_all
    (fun (pkt, bytes) ->
      Bytes.equal bytes (Frame.encode pkt)
      && match Frame.decode bytes with
         | Ok pkt' -> Packet.equal pkt pkt'
         | Error _ -> false)
    !live

let arb_pool =
  QCheck.make
    QCheck.Gen.(pair (int_range 0 9999) (int_range 10 120))
    ~print:(fun (seed, steps) -> Fmt.str "seed=%d steps=%d" seed steps)

let suite =
  let t ?(count = 30) name arb prop =
    QCheck_alcotest.to_alcotest ~long:false
      ~rand:(Random.State.make [| 0x1407 |])
      (QCheck.Test.make ~count ~name arb prop)
  in
  [
    t "cached = rescan: free-running + explorer replay" arb_case
      random_runner_equivalent;
    t "cached = rescan: round-synchronous runner" arb_case
      sync_runner_equivalent;
    t ~count:15 "cached = rescan: loopback runtime x fault knobs" arb_net_case
      net_runner_equivalent;
    t "pooled encode/decode never aliases a live buffer" arb_pool
      pool_never_aliases;
  ]
