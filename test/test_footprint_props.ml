(* Cross-validation of the footprint-derived independence relation
   (qcheck): whatever reachable state a random driving prefix produces,
   any two DISTINCT enabled actions the static relation declares
   independent must actually commute there — each stays enabled after
   the other, and both execution orders leave the system in the same
   observable state.

   Observable state is compared through canonical observations
   (delivered logs, view histories, channel contents, sorted candidate
   keys) rather than raw structural equality: the two orders may build
   balanced maps with different internal shapes for the same
   contents. *)

open Vsgc_types
module E = Vsgc_explore
module Sched = E.Schedule
module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor

let n = 3

(* -- Random driving prefixes (no Choose entries: those are what we
   pick ourselves, pairwise) -------------------------------------------- *)

type op = Reconf of int | Send of int | Run of int | Change

let pp_op = function
  | Reconf bits -> Fmt.str "reconf(%#x)" bits
  | Send p -> Fmt.str "send(%d)" p
  | Run k -> Fmt.str "run(%d)" k
  | Change -> "change"

let entries_of_ops ops =
  let all = Proc.Set.of_range 0 (n - 1) in
  let origin = ref 0 in
  let counter = ref 0 in
  let start = [ Sched.Env (Sched.Reconfigure { origin = 0; set = all }) ] in
  start
  @ List.concat_map
      (fun op ->
        match op with
        | Reconf bits ->
            let set = Proc.Set.filter (fun p -> bits land (1 lsl p) <> 0) all in
            if Proc.Set.is_empty set then []
            else begin
              incr origin;
              [ Sched.Env (Sched.Reconfigure { origin = !origin; set }) ]
            end
        | Send p ->
            incr counter;
            [ Sched.Env (Sched.Send { from = p; payload = Fmt.str "x%d" !counter }) ]
        | Run k -> [ Sched.Run k ]
        | Change ->
            [
              Sched.Env (Sched.Start_change all);
              Sched.Env (Sched.Deliver_view { origin = 1; set = all });
            ])
      ops

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun b -> Reconf b) (int_range 1 ((1 lsl n) - 1)));
        (4, map (fun p -> Send p) (int_range 0 (n - 1)));
        (3, map (fun k -> Run k) (int_range 5 60));
        (2, return Change);
      ])

let gen_case = QCheck.Gen.(pair (int_range 0 9999) (list_size (int_range 1 6) gen_op))

let arb_case =
  QCheck.make gen_case
    ~print:(fun (seed, ops) ->
      Fmt.str "seed=%d [%s]" seed (String.concat "; " (List.map pp_op ops)))
    ~shrink:
      QCheck.Shrink.(
        fun (seed, ops) yield -> list ops (fun ops' -> yield (seed, ops')))

(* -- Canonical observation digest --------------------------------------- *)

let digest sys =
  let buf = Buffer.create 512 in
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let co = !(System.corfifo sys) in
  for p = 0 to n - 1 do
    add "del%d:%a;" p
      Fmt.(list ~sep:(any ",") (pair ~sep:(any ":") Proc.pp Msg.App_msg.pp))
      (System.delivered sys p);
    add "views%d:%a;" p
      Fmt.(list ~sep:(any ",") (pair ~sep:(any "@") View.pp Proc.Set.pp))
      (System.views_of sys p);
    for q = 0 to n - 1 do
      add "ch%d%d:%a;" p q
        Fmt.(list ~sep:(any ",") Msg.Wire.pp)
        (Vsgc_corfifo.channel_contents co p q)
    done
  done;
  let keys =
    List.sort String.compare
      (List.map
         (fun (i, a) -> Fmt.str "%d/%s" i (Sched.key_of_action a))
         (Executor.candidates (System.exec sys)))
  in
  add "cand:%s" (String.concat "|" keys);
  Buffer.contents buf

(* -- The property -------------------------------------------------------- *)

let build_at (seed, ops) =
  let sys = System.create ~seed ~n ~layer:`Full ~monitors:`None () in
  E.Replay.replay sys (entries_of_ops ops);
  sys

let enabled sys a =
  List.exists (fun (_, b) -> Action.equal a b) (Executor.candidates (System.exec sys))

(* At the state the prefix reaches, take up to [limit] statically
   independent enabled pairs and check each commutes: replaying the
   same prefix on fresh systems, a;b and b;a must agree. *)
let independent_pairs_commute (seed, ops) =
  let probe = build_at (seed, ops) in
  let independent = Executor.independence (System.exec probe) in
  let cands =
    List.map snd (Executor.candidates (System.exec probe))
    (* exclude the adversary move: it is weight-0 under the default
       scheduler and [perform] on a lost message is not replayable *)
    |> List.filter (fun a -> Action.category a <> Action.C_rf_lose)
  in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              String.compare (Sched.key_of_action a) (Sched.key_of_action b) < 0
              && independent a b
            then Some (a, b)
            else None)
          cands)
      cands
  in
  let limit = 8 in
  let pairs = List.filteri (fun i _ -> i < limit) pairs in
  List.for_all
    (fun (a, b) ->
      let sys_ab = build_at (seed, ops) in
      let sys_ba = build_at (seed, ops) in
      let perform sys x = Executor.perform (System.exec sys) x in
      enabled sys_ab a && enabled sys_ba b
      && begin
           perform sys_ab a;
           perform sys_ba b;
           enabled sys_ab b && enabled sys_ba a
           && begin
                perform sys_ab b;
                perform sys_ba a;
                String.equal (digest sys_ab) (digest sys_ba)
              end
         end)
    pairs

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:false
      ~rand:(Random.State.make [| 0xF007 |])
      (QCheck.Test.make ~count:20
         ~name:"statically independent enabled pairs commute" arb_case
         independent_pairs_commute);
  ]
