(* Reproducibility: a monitored run is a pure function of its seed —
   the backbone of every recorded experiment and seeded test. *)

open Vsgc_types
module System = Vsgc_harness.System

let run_once ~seed =
  let sys = System.create ~seed ~n:4 () in
  Vsgc_harness.Scenario.run sys (Vsgc_harness.Scenario.partition_heal ~n:4);
  Vsgc_ioa.Executor.trace (System.exec sys)

let test_same_seed_same_trace () =
  let t1 = run_once ~seed:271 and t2 = run_once ~seed:271 in
  Alcotest.(check int) "same length" (List.length t1) (List.length t2);
  Alcotest.(check bool) "identical traces" true (List.for_all2 Action.equal t1 t2)

let test_different_seed_different_schedule () =
  let t1 = run_once ~seed:271 and t2 = run_once ~seed:272 in
  (* the external behaviour is equivalent, the interleaving is not *)
  Alcotest.(check bool) "schedules differ" true
    (List.length t1 <> List.length t2
    || not (List.for_all2 Action.equal t1 t2))

let test_server_stack_deterministic () =
  let run () =
    let ss = Vsgc_harness.Server_system.create ~seed:273 ~n_clients:4 ~n_servers:2 () in
    Vsgc_harness.Server_system.bootstrap ss;
    System.settle (Vsgc_harness.Server_system.sys ss);
    Vsgc_ioa.Executor.trace (System.exec (Vsgc_harness.Server_system.sys ss))
  in
  let t1 = run () and t2 = run () in
  Alcotest.(check bool) "server stack reproducible" true
    (List.length t1 = List.length t2 && List.for_all2 Action.equal t1 t2)

(* Same seed + same fault knobs on the loopback transport => identical
   per-node Trace_stats fingerprints (the wire runtime is as
   reproducible as the in-memory executor). *)
let test_loopback_fingerprint_deterministic () =
  let run ~seed ~knobs =
    let net = Vsgc_harness.Net_system.create ~seed ~knobs ~n:3 () in
    ignore (Vsgc_harness.Net_system.reconfigure net ~set:(Proc.Set.of_range 0 2));
    Vsgc_harness.Net_system.run net;
    Vsgc_harness.Net_system.broadcast net ~senders:(Proc.Set.of_range 0 2)
      ~per_sender:3;
    Vsgc_harness.Net_system.run net;
    ignore
      (Vsgc_harness.Net_system.reconfigure ~origin:1 net
         ~set:(Proc.Set.of_range 0 1));
    Vsgc_harness.Net_system.run net;
    Vsgc_harness.Net_system.fingerprint net
  in
  let knobs = { Vsgc_net.Loopback.delay = 2; drop = 0.0; reorder = 0.25 } in
  Alcotest.(check string)
    "same seed + knobs, same fingerprint" (run ~seed:97 ~knobs)
    (run ~seed:97 ~knobs);
  let lossy = { knobs with Vsgc_net.Loopback.drop = 0.2 } in
  (* Drop charges retransmission latency instead of losing packets, so
     lossy runs are slower, never non-deterministic. *)
  Alcotest.(check string)
    "lossy links still reproducible" (run ~seed:98 ~knobs:lossy)
    (run ~seed:98 ~knobs:lossy)

let suite =
  [
    Alcotest.test_case "same seed, same trace" `Quick test_same_seed_same_trace;
    Alcotest.test_case "loopback transport reproducible" `Quick
      test_loopback_fingerprint_deterministic;
    Alcotest.test_case "different seed, different schedule" `Quick
      test_different_seed_different_schedule;
    Alcotest.test_case "server stack reproducible" `Quick test_server_stack_deterministic;
  ]
