(* The round-synchronous runner: messages sent in round r are delivered
   in round r+1; local actions are free. *)

open Vsgc_types
module Executor = Vsgc_ioa.Executor
module Component = Vsgc_ioa.Component
module Sync_runner = Vsgc_ioa.Sync_runner

let msg s = Msg.Wire.App (Msg.App_msg.make s)

(* A relay chain over CO_RFIFO: node i, upon delivery, sends to i+1.
   End-to-end latency over k hops must be exactly k rounds. *)
let relay ~me ~next =
  Component.make
    ~name:(Fmt.str "relay%d" me)
    ~init:[] (* payloads to forward *)
    ~accepts:(fun a -> match a with Action.Rf_deliver (_, q, _) -> q = me | _ -> false)
    ~outputs:(fun pending ->
      match pending with
      | p :: _ -> [ Action.Rf_send (me, Proc.Set.singleton next, msg p) ]
      | [] -> [])
    ~apply:(fun pending a ->
      match a with
      | Action.Rf_deliver (_, _, Msg.Wire.App m) -> pending @ [ Msg.App_msg.payload m ]
      | Action.Rf_send _ -> ( match pending with _ :: rest -> rest | [] -> [])
      | _ -> pending)
    ()

let test_hop_per_round () =
  let corfifo, net = Vsgc_corfifo.component () in
  let chain = List.init 4 (fun i -> Component.pack (relay ~me:i ~next:(i + 1))) in
  let sink_seen = ref 0 in
  let sink =
    Component.make ~name:"sink" ~init:()
      ~accepts:(fun a -> match a with Action.Rf_deliver (_, 4, _) -> true | _ -> false)
      ~outputs:(fun () -> [])
      ~apply:(fun () _ -> incr sink_seen)
      ()
  in
  let exec = Executor.create ~seed:4 (corfifo :: Component.pack sink :: chain) in
  (* everyone can deliver to everyone *)
  for i = 0 to 4 do
    Executor.inject exec (Action.Rf_live (i, Proc.Set.of_range 0 4))
  done;
  (* seed the chain: node 0 receives a payload out of thin air *)
  Executor.inject exec (Action.Rf_send (9, Proc.Set.singleton 0, msg "token"));
  Executor.inject exec (Action.Rf_live (9, Proc.Set.of_range 0 4));
  let rounds =
    Sync_runner.run_rounds exec
      ~make_budget:(Vsgc_corfifo.round_budget net)
      ~stop:(fun () -> !sink_seen > 0)
  in
  (* 9 -> 0 -> 1 -> 2 -> 3 -> 4: five hops *)
  Alcotest.(check int) "five hops take five rounds" 5 rounds;
  Alcotest.(check int) "token arrived once" 1 !sink_seen

let test_local_actions_are_free () =
  (* a component that performs k local steps then sends: still 1 round *)
  let corfifo, net = Vsgc_corfifo.component () in
  let ticker =
    Component.make ~name:"ticker" ~init:5
      ~accepts:(fun _ -> false)
      ~outputs:(fun k ->
        if k > 0 then [ Action.Block 0 ]  (* stands in for local work *)
        else if k = 0 then [ Action.Rf_send (0, Proc.Set.singleton 1, msg "done") ]
        else [])
      ~apply:(fun k a -> match a with Action.Block _ -> k - 1 | _ -> -1)
      ()
  in
  let got = ref false in
  let sink =
    Component.make ~name:"sink" ~init:()
      ~accepts:(fun a -> match a with Action.Rf_deliver (0, 1, _) -> true | _ -> false)
      ~outputs:(fun () -> [])
      ~apply:(fun () _ -> got := true)
      ()
  in
  let exec = Executor.create ~seed:5 [ corfifo; Component.pack ticker; Component.pack sink ] in
  Executor.inject exec (Action.Rf_live (0, Proc.Set.of_range 0 1));
  let rounds =
    Sync_runner.run_rounds exec
      ~make_budget:(Vsgc_corfifo.round_budget net)
      ~stop:(fun () -> !got)
  in
  Alcotest.(check int) "local work costs no rounds" 1 rounds;
  Alcotest.(check bool) "message arrived" true !got

let test_budget_blocks_same_round_delivery () =
  (* a message sent during the delivery phase must wait a round *)
  let corfifo, net = Vsgc_corfifo.component () in
  let echo =
    (* node 1 echoes back to 0 upon delivery *)
    Component.make ~name:"echo" ~init:0
      ~accepts:(fun a -> match a with Action.Rf_deliver (_, 1, _) -> true | _ -> false)
      ~outputs:(fun n ->
        if n > 0 then [ Action.Rf_send (1, Proc.Set.singleton 0, msg "echo") ] else [])
      ~apply:(fun n a ->
        match a with
        | Action.Rf_deliver _ -> n + 1
        | Action.Rf_send _ -> n - 1
        | _ -> n)
      ()
  in
  let echoed = ref (-1) in
  let round_no = ref 0 in
  let sink =
    Component.make ~name:"sink0" ~init:()
      ~accepts:(fun a -> match a with Action.Rf_deliver (1, 0, _) -> true | _ -> false)
      ~outputs:(fun () -> [])
      ~apply:(fun () _ -> echoed := !round_no)
      ()
  in
  let exec = Executor.create ~seed:6 [ corfifo; Component.pack echo; Component.pack sink ] in
  Executor.inject exec (Action.Rf_live (0, Proc.Set.of_range 0 1));
  Executor.inject exec (Action.Rf_live (1, Proc.Set.of_range 0 1));
  Executor.inject exec (Action.Rf_send (0, Proc.Set.singleton 1, msg "ping"));
  for r = 1 to 3 do
    round_no := r;
    ignore (Sync_runner.round exec ~make_budget:(Vsgc_corfifo.round_budget net))
  done;
  Alcotest.(check int) "echo delivered in round 2" 2 !echoed

let suite =
  [
    Alcotest.test_case "one hop per round" `Quick test_hop_per_round;
    Alcotest.test_case "local actions are free" `Quick test_local_actions_are_free;
    Alcotest.test_case "no same-round delivery" `Quick test_budget_blocks_same_round_delivery;
  ]
