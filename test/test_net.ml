(* The networked runtime against the in-memory oracle.

   Acceptance criterion: the same scripted scenario produces the same
   per-client delivery sequences (messages and views) on (a) the
   in-memory executor and (b) the loopback transport. Both sides run
   the identical membership script — the standalone oracle inside
   Net_system does the same bookkeeping as System's oracle component,
   so the views compared are literally equal triples.

   Cross-sender interleaving is NOT part of the GCS contract (RFIFO
   orders per sender), so the single-sender scenario compares whole
   sequences and the multi-sender one compares per-sender
   subsequences plus the delivered multiset. *)

open Vsgc_types
module System = Vsgc_harness.System
module Net_system = Vsgc_harness.Net_system
module Loopback = Vsgc_net.Loopback
module Node = Vsgc_net.Node

let payloads_of deliveries = List.map (fun (q, m) -> (q, Msg.App_msg.payload m)) deliveries

let check_same_views what expected actual =
  Alcotest.(check int) (what ^ ": view count") (List.length expected) (List.length actual);
  List.iter2
    (fun (v, tset) (v', tset') ->
      Alcotest.(check bool)
        (Fmt.str "%s: view %a = %a" what View.pp v View.pp v')
        true
        (View.equal v v' && Proc.Set.equal tset tset'))
    expected actual

(* (a): the scripted scenario on the in-memory composition. *)
let run_in_memory ~n ~script =
  let sys = System.create ~seed:11 ~n () in
  script
    ~reconfigure:(fun set -> ignore (System.reconfigure sys ~set))
    ~send:(System.send sys)
    ~settle:(fun () -> System.settle sys);
  sys

(* (b): the same scenario over the loopback transport. *)
let run_on_loopback ?(seed = 23) ?knobs ~n ~script () =
  let net = Net_system.create ~seed ?knobs ~n () in
  script
    ~reconfigure:(fun set -> ignore (Net_system.reconfigure net ~set))
    ~send:(Net_system.send net)
    ~settle:(fun () -> Net_system.run net);
  net

let compare_equivalent ~n ~script ?seed ?knobs ~single_sender () =
  let sys = run_in_memory ~n ~script in
  let net = run_on_loopback ?seed ?knobs ~n ~script () in
  for p = 0 to n - 1 do
    let what = Fmt.str "p%d" p in
    check_same_views what (System.views_of sys p) (Net_system.views_of net p);
    let mem = payloads_of (System.delivered sys p) in
    let lo = payloads_of (Net_system.delivered net p) in
    if single_sender then
      Alcotest.(check (list (pair int string))) (what ^ ": deliveries") mem lo
    else begin
      Alcotest.(check (list (pair int string)))
        (what ^ ": delivered multiset")
        (List.sort compare mem) (List.sort compare lo);
      for q = 0 to n - 1 do
        let from_q l = List.filter_map (fun (s, m) -> if s = q then Some m else None) l in
        Alcotest.(check (list string))
          (Fmt.str "%s: FIFO from p%d" what q)
          (from_q mem) (from_q lo)
      done
    end
  done;
  Alcotest.(check int) "no malformed traffic" 0 (Net_system.malformed net)

let script_single_sender ~reconfigure ~send ~settle =
  reconfigure (Proc.Set.of_range 0 2);
  settle ();
  for i = 1 to 5 do
    send 0 (Fmt.str "m%d" i)
  done;
  settle ();
  reconfigure (Proc.Set.of_range 0 1);
  settle ()

let script_multi_sender ~reconfigure ~send ~settle =
  reconfigure (Proc.Set.of_range 0 2);
  settle ();
  for i = 1 to 3 do
    for p = 0 to 2 do
      send p (Fmt.str "m-p%d-%d" p i)
    done
  done;
  settle ();
  reconfigure (Proc.Set.of_range 0 2);
  settle ()

let test_equivalence_single_sender () =
  compare_equivalent ~n:3 ~script:script_single_sender ~single_sender:true ()

let test_equivalence_multi_sender () =
  compare_equivalent ~n:3 ~script:script_multi_sender ~single_sender:false ()

(* The equivalence survives adverse link timing under every knob, on
   several hub seeds: all three knobs resolve to per-packet latency
   behind a resequencing link (the connection is a stream, like TCP),
   so delay, drop and reorder change schedules, not outcomes. *)
let test_equivalence_under_faults () =
  List.iter
    (fun seed ->
      List.iter
        (fun knobs ->
          compare_equivalent ~n:3 ~script:script_multi_sender ~seed ~knobs
            ~single_sender:false ())
        [
          { Loopback.delay = 3; drop = 0.0; reorder = 0.0 };
          { Loopback.delay = 2; drop = 0.3; reorder = 0.0 };
          { Loopback.delay = 2; drop = 0.2; reorder = 0.25 };
          { Loopback.delay = 5; drop = 0.4; reorder = 0.5 };
        ])
    [ 23; 101; 4096 ]

(* Real client-server membership over the wire: joins, proposal wave,
   commit, views shipped as packets — all clients agree. *)
let test_server_mode_agreement () =
  let net = Net_system.create ~seed:5 ~n:4 ~n_servers:2 () in
  Net_system.run net;
  let v0 =
    match Net_system.last_view_of net 0 with
    | Some (v, _) -> v
    | None -> Alcotest.fail "p0 got no view"
  in
  Alcotest.(check bool) "view covers all clients" true
    (Proc.Set.equal (View.set v0) (Proc.Set.of_range 0 3));
  Alcotest.(check bool) "all clients in the same view" true
    (Net_system.all_in_view net v0);
  Net_system.send net 2 "hello";
  Net_system.send net 2 "world";
  Net_system.run net;
  for p = 0 to 3 do
    Alcotest.(check (list (pair int string)))
      (Fmt.str "p%d delivered" p)
      [ (2, "hello"); (2, "world") ]
      (payloads_of (Net_system.delivered net p))
  done;
  Alcotest.(check int) "no malformed traffic" 0 (Net_system.malformed net)

(* A server node survives malformed frames: counted, never fatal. *)
let test_node_survives_malformed () =
  let node = Node.create (Node.Server_node { server = 0 }) in
  Node.handle node
    (Vsgc_net.Transport.Malformed
       {
         peer = None;
         error = Vsgc_wire.Frame.Bad_magic { got = ('x', 'y') };
       });
  ignore (Node.step node);
  Alcotest.(check int) "counted" 1 (Node.malformed node);
  Alcotest.(check bool) "still quiescent" true (Node.quiescent node)

let suite =
  [
    Alcotest.test_case "loopback = in-memory (single sender)" `Quick
      test_equivalence_single_sender;
    Alcotest.test_case "loopback = in-memory (multi sender)" `Quick
      test_equivalence_multi_sender;
    Alcotest.test_case "loopback = in-memory (seed x knobs matrix)" `Quick
      test_equivalence_under_faults;
    Alcotest.test_case "server mode: wire membership agreement" `Quick
      test_server_mode_agreement;
    Alcotest.test_case "malformed events never kill a node" `Quick
      test_node_survives_malformed;
  ]
