(* Unit tests for the I/O-automaton executor: composition semantics,
   weights, injection, quiescence, filtered runs, monitors and hooks. *)

open Vsgc_types
module Executor = Vsgc_ioa.Executor
module Component = Vsgc_ioa.Component

let msg s = Msg.App_msg.make s

(* A one-shot emitter: outputs a fixed action until it has fired. *)
let emitter nm action =
  Component.make ~name:nm ~init:false
    ~accepts:(fun _ -> false)
    ~outputs:(fun fired -> if fired then [] else [ action ])
    ~apply:(fun _ a -> Action.equal a action)
    ()

(* A counter of accepted actions. *)
let counter pred =
  let r = ref 0 in
  let def =
    Component.make ~name:"counter" ~init:() ~accepts:pred
      ~outputs:(fun () -> [])
      ~apply:(fun () _ -> incr r)
      ()
  in
  (def, r)

let test_output_reaches_acceptors () =
  let a = Action.App_send (0, msg "x") in
  let c, seen = counter (function Action.App_send (0, _) -> true | _ -> false) in
  let exec = Executor.create ~seed:1 [ Component.pack (emitter "e" a); Component.pack c ] in
  (match Executor.run exec with
  | Executor.Quiescent n -> Alcotest.(check int) "one step to quiescence" 1 n
  | Executor.Step_limit -> Alcotest.fail "no quiescence");
  Alcotest.(check int) "acceptor saw the action" 1 !seen;
  Alcotest.(check bool) "quiescent" true (Executor.is_quiescent exec)

let test_non_acceptor_unaffected () =
  let a = Action.App_send (0, msg "x") in
  let c, seen = counter (function Action.App_send (1, _) -> true | _ -> false) in
  let exec = Executor.create ~seed:1 [ Component.pack (emitter "e" a); Component.pack c ] in
  ignore (Executor.run exec);
  Alcotest.(check int) "other-process acceptor untouched" 0 !seen

let test_zero_weight_disables () =
  let a = Action.App_send (0, msg "x") in
  let weights act = match act with Action.App_send _ -> 0.0 | _ -> 1.0 in
  let exec = Executor.create ~seed:1 ~weights [ Component.pack (emitter "e" a) ] in
  (match Executor.run exec with
  | Executor.Quiescent 0 -> ()
  | _ -> Alcotest.fail "weighted-out action must not fire");
  Alcotest.(check int) "candidate still enabled" 1 (List.length (Executor.candidates exec))

let test_injection () =
  let c, seen = counter (function Action.Crash 3 -> true | _ -> false) in
  let exec = Executor.create ~seed:1 [ Component.pack c ] in
  Executor.inject exec (Action.Crash 3);
  Alcotest.(check int) "injected input delivered" 1 !seen;
  Alcotest.(check int) "trace records it" 1 (Executor.trace_length exec)

let test_determinism () =
  (* same seed, same components => identical traces *)
  let build () =
    let mk i = Component.pack (emitter (Fmt.str "e%d" i) (Action.Block i)) in
    Executor.create ~seed:9 [ mk 0; mk 1; mk 2; mk 3 ]
  in
  let t1 =
    let e = build () in
    ignore (Executor.run e);
    Executor.trace e
  in
  let t2 =
    let e = build () in
    ignore (Executor.run e);
    Executor.trace e
  in
  Alcotest.(check bool) "identical traces" true (List.for_all2 Action.equal t1 t2)

let test_run_filtered () =
  let mk i = Component.pack (emitter (Fmt.str "e%d" i) (Action.Block i)) in
  let exec = Executor.create ~seed:2 [ mk 0; mk 1 ] in
  let steps = Executor.run_filtered exec ~allow:(function Action.Block 0 -> true | _ -> false) in
  Alcotest.(check int) "only the allowed action ran" 1 steps;
  Alcotest.(check int) "the other is still pending" 1 (List.length (Executor.candidates exec))

let test_monitor_violation_propagates () =
  let m =
    Vsgc_ioa.Monitor.make "grumpy" (fun _ ->
        Vsgc_ioa.Monitor.violate ~monitor:"grumpy" "no actions allowed")
  in
  let exec = Executor.create ~seed:1 [ Component.pack (emitter "e" (Action.Block 0)) ] in
  Executor.add_monitor exec m;
  Alcotest.check_raises "violation surfaces"
    (Vsgc_ioa.Monitor.Violation { monitor = "grumpy"; message = "no actions allowed" })
    (fun () -> ignore (Executor.run exec))

let test_finish_reports_residuals () =
  let m =
    Vsgc_ioa.Monitor.make ~at_end:(fun () -> [ "leftover" ]) "residual" (fun _ -> ())
  in
  let exec = Executor.create ~seed:1 [] in
  Executor.add_monitor exec m;
  Alcotest.check_raises "at_end surfaces"
    (Vsgc_ioa.Monitor.Violation { monitor = "residual"; message = "leftover" })
    (fun () -> Executor.finish exec)

let test_stop_condition () =
  let mk i = Component.pack (emitter (Fmt.str "e%d" i) (Action.Block i)) in
  let exec = Executor.create ~seed:3 [ mk 0; mk 1; mk 2 ] in
  let stop () = Executor.trace_length exec >= 2 in
  (match Executor.run ~stop exec with
  | Executor.Quiescent _ -> ()
  | Executor.Step_limit -> Alcotest.fail "stop ignored");
  Alcotest.(check int) "stopped at two steps" 2 (Executor.trace_length exec)

let suite =
  [
    Alcotest.test_case "output reaches acceptors" `Quick test_output_reaches_acceptors;
    Alcotest.test_case "non-acceptors unaffected" `Quick test_non_acceptor_unaffected;
    Alcotest.test_case "zero weight disables" `Quick test_zero_weight_disables;
    Alcotest.test_case "injection" `Quick test_injection;
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "filtered runs" `Quick test_run_filtered;
    Alcotest.test_case "monitor violations propagate" `Quick test_monitor_violation_propagates;
    Alcotest.test_case "finish reports residuals" `Quick test_finish_reports_residuals;
    Alcotest.test_case "stop condition" `Quick test_stop_condition;
  ]
