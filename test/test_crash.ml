(* Crash and recovery semantics (paper §8): end-points restart under
   their original identity from initial state (no stable storage); the
   membership keeps its identifiers, so the first view after recovery
   still satisfies Local Monotonicity. *)

open Vsgc_types
module System = Vsgc_harness.System
module Net_system = Vsgc_harness.Net_system
module Client = Vsgc_core.Client

let check = Alcotest.(check bool)

let test_survivors_continue () =
  let sys = System.create ~seed:71 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:3;
  (match System.run sys ~max_steps:150 with _ -> ());
  System.crash sys 2;
  let v = System.reconfigure sys ~set:(Proc.Set.of_range 0 1) in
  System.settle sys;
  check "survivors installed the new view" true (System.all_in_view sys v)

let test_recovery_same_identity () =
  let sys = System.create ~seed:72 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  let v1 = System.reconfigure sys ~set:all in
  System.settle sys;
  System.crash sys 2;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  System.recover sys 2;
  let v3 = System.reconfigure sys ~set:all in
  System.settle sys;
  check "recovered process is a member again" true (View.mem 2 v3);
  check "everyone installed the post-recovery view" true (System.all_in_view sys v3);
  check "post-recovery id above pre-crash id" true (View.Id.lt (View.id v1) (View.id v3));
  (* the end-point restarted from scratch: its client log holds only
     the new view *)
  match Client.views !(System.client sys 2) with
  | [ (v, tset) ] ->
      check "single view since recovery" true (View.equal v v3);
      check "recovered end-point's T is itself" true (Proc.Set.equal tset (Proc.Set.singleton 2))
  | l -> Alcotest.failf "expected 1 view at the recovered client, got %d" (List.length l)

let test_crashed_endpoint_is_silent () =
  let sys = System.create ~seed:73 ~n:2 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  System.crash sys 1;
  check "no outputs from crashed end-point" true
    (Vsgc_core.Endpoint.outputs !(System.endpoint sys 1) = []);
  System.send sys 0 "into-the-void";
  System.settle sys;
  (* p0 still self-delivers; p1 observed nothing new *)
  check "sender self-delivered" true
    (List.length (Client.delivered_from !(System.client sys 0) 0) = 1);
  Alcotest.(check int) "crashed client saw nothing" 0
    (List.length (Client.delivered !(System.client sys 1)))

let test_traffic_after_recovery () =
  let sys = System.create ~seed:74 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  System.crash sys 1;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_list [ 0; 2 ]));
  System.settle sys;
  System.recover sys 1;
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  (* everyone, including the recovered process, exchanges traffic *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          check
            (Fmt.str "%a receives %a after recovery" Proc.pp p Proc.pp q)
            true
            (List.length (Client.delivered_from !(System.client sys p) q) >= 2))
        [ 0; 1; 2 ])
    [ 0; 1; 2 ]

let test_invariants_across_crash_recovery () =
  let sys = System.create ~seed:75 ~n:3 () in
  System.attach_invariants sys;
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  (match System.run sys ~max_steps:100 with _ -> ());
  System.crash sys 0;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 1 2));
  System.settle sys;
  System.recover sys 0;
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  check "invariants held throughout" true true

(* Networked real-server mode: crash one client, then crash a second
   one in the MIDDLE of the view change the first crash started. The
   service-level monitors (including TRANS_SET and SELF) and the
   reborn-aware invariant battery must stay green for the survivor,
   and after both crashed clients restart everyone converges to one
   agreed view again. *)
let test_net_crash_mid_view_change () =
  let net = Net_system.create ~seed:81 ~n:3 ~n_servers:2 () in
  Net_system.attach_monitors net (Vsgc_spec.All.net ());
  Net_system.run net;
  Net_system.broadcast net ~senders:(Proc.Set.of_range 0 2) ~per_sender:2;
  Net_system.run net;
  Net_system.crash_client net 2;
  (* a few rounds: the Client_leave-driven view change is now in
     flight among the survivors *)
  Net_system.run_ticks net 3;
  Net_system.crash_client net 1;
  Net_system.run net;
  (match Net_system.last_view_of net 0 with
  | None -> Alcotest.fail "survivor got no view after the crashes"
  | Some (v, tset) ->
      check "survivor's view is exactly itself" true
        (Proc.Set.equal (View.set v) (Proc.Set.singleton 0));
      check "survivor's transitional set is itself" true
        (Proc.Set.equal tset (Proc.Set.singleton 0)));
  Net_system.check_invariants net;
  (* both reborn end-points rejoin under their original identities *)
  Net_system.restart_client net 1;
  Net_system.restart_client net 2;
  Net_system.run net;
  (match Net_system.last_view_of net 0 with
  | None -> Alcotest.fail "no view after the restarts"
  | Some (v, _) ->
      check "post-restart view covers everyone" true
        (Proc.Set.equal (View.set v) (Proc.Set.of_range 0 2));
      check "all clients agree on it" true (Net_system.all_in_view net v));
  Net_system.check_invariants net;
  Net_system.finish net;
  Alcotest.(check int) "no malformed traffic" 0 (Net_system.malformed net)

let suite =
  [
    Alcotest.test_case "survivors continue" `Quick test_survivors_continue;
    Alcotest.test_case "recovery under original identity" `Quick test_recovery_same_identity;
    Alcotest.test_case "crashed end-point is silent" `Quick test_crashed_endpoint_is_silent;
    Alcotest.test_case "traffic after recovery" `Quick test_traffic_after_recovery;
    Alcotest.test_case "invariants across crash/recovery" `Quick
      test_invariants_across_crash_recovery;
    Alcotest.test_case "net mode: crash mid view-change" `Quick
      test_net_crash_mid_view_change;
  ]
