(* Property-based tests for the explorer: whatever scenario drives it,
   a depth-bounded exploration either exhausts (or runs out of budget)
   cleanly, or returns a schedule that deterministically reproduces the
   violation it claims — and still reproduces it after ddmin shrinking.
   Scenarios mix membership changes, traffic, crashes and recoveries,
   over both the correct algorithm and the seeded no-sync-wait
   mutation; failing scenarios shrink to smaller op lists. *)

open Vsgc_types
module E = Vsgc_explore
module Sched = E.Schedule

let n = 3

type op =
  | Reconf of int  (* bitmask over live processes *)
  | Send of int
  | Crash of int
  | Recover of int
  | Run of int

let pp_op = function
  | Reconf bits -> Fmt.str "reconf(%#x)" bits
  | Send p -> Fmt.str "send(%d)" p
  | Crash p -> Fmt.str "crash(%d)" p
  | Recover p -> Fmt.str "recover(%d)" p
  | Run k -> Fmt.str "run(%d)" k

(* Interpret raw ops into a valid driving prefix: never crash the last
   live process, only recover the crashed, reconfigure live subsets.
   The prefix always ends with a queued membership change over the live
   set — the view-change interleavings are what the DFS explores. *)
let entries_of_ops ops =
  let all = Proc.Set.of_range 0 (n - 1) in
  let crashed = ref Proc.Set.empty in
  let origin = ref 0 in
  let counter = ref 0 in
  let start =
    [ Sched.Env (Sched.Reconfigure { origin = 0; set = all }); Sched.Settle ]
  in
  let middle =
    List.concat_map
      (fun op ->
        let live = Proc.Set.diff all !crashed in
        match op with
        | Reconf bits ->
            let set =
              Proc.Set.filter (fun p -> bits land (1 lsl p) <> 0) live
            in
            if Proc.Set.is_empty set then []
            else begin
              incr origin;
              [ Sched.Env (Sched.Reconfigure { origin = !origin; set }) ]
            end
        | Send p ->
            if Proc.Set.mem p live then begin
              incr counter;
              [ Sched.Env (Sched.Send { from = p; payload = Fmt.str "x%d" !counter }) ]
            end
            else []
        | Crash p ->
            if Proc.Set.mem p live && Proc.Set.cardinal live > 1 then begin
              crashed := Proc.Set.add p !crashed;
              [ Sched.Env (Sched.Crash p) ]
            end
            else []
        | Recover p ->
            if Proc.Set.mem p !crashed then begin
              crashed := Proc.Set.remove p !crashed;
              [ Sched.Env (Sched.Recover p) ]
            end
            else []
        | Run k -> [ Sched.Run k ])
      ops
  in
  let live = Proc.Set.diff all !crashed in
  incr origin;
  start @ middle
  @ [
      Sched.Env (Sched.Start_change live);
      Sched.Env (Sched.Deliver_view { origin = !origin; set = live });
    ]

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun b -> Reconf b) (int_range 1 ((1 lsl n) - 1)));
        (4, map (fun p -> Send p) (int_range 0 (n - 1)));
        (1, map (fun p -> Crash p) (int_range 0 (n - 1)));
        (1, map (fun p -> Recover p) (int_range 0 (n - 1)));
        (2, map (fun k -> Run k) (int_range 10 120));
      ])

let gen_case =
  QCheck.Gen.(
    triple (int_range 0 9999) bool (list_size (int_range 0 6) gen_op))

let arb_case =
  QCheck.make gen_case
    ~print:(fun (seed, mutated, ops) ->
      Fmt.str "seed=%d mutated=%b [%s]" seed mutated
        (String.concat "; " (List.map pp_op ops)))
    ~shrink:
      QCheck.Shrink.(
        fun (seed, mutated, ops) yield ->
          list ops (fun ops' -> yield (seed, mutated, ops')))

let explores_soundly (seed, mutated, ops) =
  let mutation = if mutated then Some Vsgc_core.Vs_rfifo_ts.No_sync_wait else None in
  let conf = E.Sysconf.make ~seed ?mutation ~n () in
  let sched =
    { Sched.name = "prop"; expect = None; conf; entries = entries_of_ops ops }
  in
  match (E.Explorer.explore ~depth:2 ~max_runs:40 sched).E.Explorer.outcome with
  | E.Explorer.Exhausted | E.Explorer.Run_budget -> true
  | E.Explorer.Found (found, v) -> (
      let small = E.Shrink.minimize found in
      List.length small.Sched.entries <= List.length found.Sched.entries
      &&
      match E.Replay.run small with
      | Error v' -> String.equal v'.E.Replay.kind v.E.Replay.kind
      | Ok _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:false
      ~rand:(Random.State.make [| 0xD1CE |])
      (QCheck.Test.make ~count:25 ~name:"bounded exploration is sound (clean or reproducible)"
         arb_case explores_soundly);
  ]
