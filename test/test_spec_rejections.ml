(* Hand-crafted non-conforming traces, one per clause of the §4
   specification monitors: each must be rejected at the precise action
   that leaves the specification's trace set. *)

open Vsgc_types

let view ~num ~members =
  let set = Proc.Set.of_list members in
  View.make
    ~id:(View.Id.make ~num ~origin:0)
    ~set
    ~start_ids:(Proc.Set.fold (fun p m -> Proc.Map.add p 1 m) set Proc.Map.empty)

let msg s = Msg.App_msg.make s

let rejects monitor actions =
  let m = monitor () in
  try
    List.iter m.Vsgc_ioa.Monitor.on_action actions;
    false
  with Vsgc_ioa.Monitor.Violation _ -> true

let accepts monitor actions = not (rejects monitor actions)

let check = Alcotest.(check bool)

(* -- WV_RFIFO : SPEC ----------------------------------------------------- *)

let wv () = Vsgc_spec.Wv_rfifo_spec.monitor ()

let v01 = view ~num:1 ~members:[ 0; 1 ]

let test_wv_gap () =
  check "skipping a message is rejected" true
    (rejects wv
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_send (0, msg "m1");
         Action.App_send (0, msg "m2");
         Action.App_deliver (1, 0, msg "m2");
       ]);
  check "in-order delivery accepted" true
    (accepts wv
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_send (0, msg "m1");
         Action.App_send (0, msg "m2");
         Action.App_deliver (1, 0, msg "m1");
         Action.App_deliver (1, 0, msg "m2");
       ])

let test_wv_cross_view_delivery () =
  (* a message sent in the initial view must not be delivered in v01 *)
  check "cross-view delivery rejected" true
    (rejects wv
       [
         Action.App_send (0, msg "early");
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_deliver (1, 0, msg "early");
       ])

let test_wv_duplicate_delivery () =
  check "duplicate delivery rejected" true
    (rejects wv
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_send (0, msg "m1");
         Action.App_deliver (1, 0, msg "m1");
         Action.App_deliver (1, 0, msg "m1");
       ])

let test_wv_view_monotonicity () =
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  check "regressing view rejected" true
    (rejects wv
       [ Action.App_view (0, v2, Proc.Set.singleton 0);
         Action.App_view (0, v01, Proc.Set.singleton 0) ]);
  check "non-member view rejected" true
    (rejects wv [ Action.App_view (5, v01, Proc.Set.singleton 5) ])

(* -- VS_RFIFO : SPEC ------------------------------------------------------ *)

let vs () = Vsgc_spec.Vs_rfifo_spec.monitor ()

let test_vs_cut_disagreement () =
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  check "co-movers with different delivery sets rejected" true
    (rejects vs
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_send (0, msg "m1");
         (* p1 delivers it, p0 does not; both move to v2 *)
         Action.App_deliver (1, 0, msg "m1");
         Action.App_deliver (0, 0, msg "m1");
         Action.App_view (1, v2, Proc.Set.of_list [ 0; 1 ]);
         Action.App_deliver (0, 0, msg "never-mind");
         Action.App_view (0, v2, Proc.Set.of_list [ 0; 1 ]);
       ])

let test_vs_agreement_accepted () =
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  check "identical delivery sets accepted" true
    (accepts vs
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_send (0, msg "m1");
         Action.App_deliver (1, 0, msg "m1");
         Action.App_deliver (0, 0, msg "m1");
         Action.App_view (1, v2, Proc.Set.of_list [ 0; 1 ]);
         Action.App_view (0, v2, Proc.Set.of_list [ 0; 1 ]);
       ])

(* -- TRANS_SET : SPEC ------------------------------------------------------ *)

let ts () = Vsgc_spec.Trans_set_spec.monitor ()

let test_ts_missing_self () =
  check "T without the mover rejected" true
    (rejects ts [ Action.App_view (0, v01, Proc.Set.empty) ])

let test_ts_overclaiming () =
  (* p0 claims p1 travelled with it, but p1 arrives from a different view *)
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  check "overclaimed T rejected" true
    (rejects ts
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         (* p1 never installed v01: it moves to v2 straight from its
            initial view *)
         Action.App_view (0, v2, Proc.Set.of_list [ 0; 1 ]);
         Action.App_view (1, v2, Proc.Set.singleton 1);
       ])

let test_ts_inconsistent_sets () =
  (* both move v01 -> v2 together but deliver different Ts *)
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  check "different Ts for co-movers rejected" true
    (rejects ts
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_view (1, v01, Proc.Set.singleton 1);
         Action.App_view (0, v2, Proc.Set.of_list [ 0; 1 ]);
         Action.App_view (1, v2, Proc.Set.singleton 1);
       ])

(* -- SELF : SPEC ------------------------------------------------------------ *)

let self () = Vsgc_spec.Self_spec.monitor ()

let test_self_violated () =
  check "moving on before self-delivery rejected" true
    (rejects self
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_send (0, msg "m1");
         Action.App_view (0, view ~num:2 ~members:[ 0 ], Proc.Set.singleton 0);
       ]);
  check "self-delivery first accepted" true
    (accepts self
       [
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_send (0, msg "m1");
         Action.App_deliver (0, 0, msg "m1");
         Action.App_view (0, view ~num:2 ~members:[ 0 ], Proc.Set.singleton 0);
       ])

(* -- CLIENT : SPEC ------------------------------------------------------------ *)

let client () = Vsgc_spec.Client_spec.monitor ()

let test_client_clauses () =
  check "send while blocked rejected" true
    (rejects client
       [ Action.Block 0; Action.Block_ok 0; Action.App_send (0, msg "x") ]);
  check "spontaneous block_ok rejected" true (rejects client [ Action.Block_ok 0 ]);
  check "double block rejected" true (rejects client [ Action.Block 0; Action.Block 0 ]);
  check "view unblocks" true
    (accepts client
       [
         Action.Block 0;
         Action.Block_ok 0;
         Action.App_view (0, v01, Proc.Set.singleton 0);
         Action.App_send (0, msg "x");
       ])

let suite =
  [
    Alcotest.test_case "wv: gap rejected" `Quick test_wv_gap;
    Alcotest.test_case "wv: cross-view delivery rejected" `Quick test_wv_cross_view_delivery;
    Alcotest.test_case "wv: duplicate rejected" `Quick test_wv_duplicate_delivery;
    Alcotest.test_case "wv: view monotonicity & inclusion" `Quick test_wv_view_monotonicity;
    Alcotest.test_case "vs: cut disagreement rejected" `Quick test_vs_cut_disagreement;
    Alcotest.test_case "vs: agreement accepted" `Quick test_vs_agreement_accepted;
    Alcotest.test_case "ts: missing self rejected" `Quick test_ts_missing_self;
    Alcotest.test_case "ts: overclaiming rejected" `Quick test_ts_overclaiming;
    Alcotest.test_case "ts: inconsistent sets rejected" `Quick test_ts_inconsistent_sets;
    Alcotest.test_case "self: clauses" `Quick test_self_violated;
    Alcotest.test_case "client: clauses" `Quick test_client_clauses;
  ]
