(* The bake-off regression suite (DESIGN.md §16, EXPERIMENTS.md E18):
   the symmetric Skeen arm as a first-class runtime protocol next to
   the sequencer-based GCS arm, over the same deployments, generators,
   and fault surface.

   - Determinism: a faulted symmetric-arm deployment replays to a
     pinned fingerprint under BOTH executor scheduling modes, with the
     full net_sym battery (Skeen monitor included) attached.
   - The shared harness is fair: the GCS arm's batched and unbatched
     stable-delivery modes fold the same open-loop history into
     byte-identical stores.
   - Agreement: the symmetric arm survives a scripted partition-heal
     with zero lost acks and converged stores, and folds the same
     client history into the same final store as the GCS arm.
   - The monitor bites: planted early-delivery, ordering-divergence,
     forged-digest, and transitional-set flush-divergence traces are
     each flagged at the precise non-conforming action, and the at_end
     residual check reports deliveries the deliverability condition
     admitted but the implementation never reported. *)

open Vsgc_types
module F = Vsgc_fault
module Node_id = Vsgc_wire.Node_id
module Sym_msg = Vsgc_wire.Sym_msg
module Loopback = Vsgc_net.Loopback
module Kv_system = Vsgc_kv.Kv_system
module Executor = Vsgc_ioa.Executor
module M = Vsgc_ioa.Monitor
module All = Vsgc_spec.All
module Skeen_spec = Vsgc_spec.Skeen_spec
module Tord_symmetric = Vsgc_totalorder.Tord_symmetric

let check = Alcotest.(check bool)

(* -- Loopback determinism: pinned fingerprint, both scheduler modes ------- *)

let bakeoff_schedule =
  {
    F.Schedule.conf =
      {
        name = "bakeoff-determinism";
        seed = 18;
        clients = 3;
        servers = 2;
        layer = `Full;
        arm = `Sym;
        knobs = { Loopback.default_knobs with delay = 1 };
        expect = None;
        fingerprint = None;
      };
    events =
      [
        F.Schedule.Settle;
        F.Schedule.Traffic 2;
        F.Schedule.Partition
          [
            [ Node_id.Client 0; Node_id.Client 1; Node_id.Server 0 ];
            [ Node_id.Client 2; Node_id.Server 1 ];
          ];
        F.Schedule.Traffic 1;
        F.Schedule.Run 30;
        F.Schedule.Heal;
        F.Schedule.Traffic 1;
        F.Schedule.Settle;
        F.Schedule.Converged;
      ];
  }

(* Discovered once from the run above and pinned: a symmetric-arm
   deployment under partition-heal churn is a pure function of
   (seed, schedule), whatever the executor's scheduling mode. *)
let pinned_fingerprint =
  "p0=83d633d26a9a472b:129;p1=21cdf954fc42dab1:94;p2=f269d95d260cfe41:117;s0=89fc6d325558efcc:58;s1=f86666a8574af513:39|hub:153/0/0"

let in_mode mode body () =
  let saved = Executor.get_default_mode () in
  Executor.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Executor.set_default_mode saved) body

let test_determinism () =
  let o = F.Inject.run bakeoff_schedule in
  (match o.F.Inject.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %a" F.Inject.pp_violation v);
  Alcotest.(check string) "pinned fingerprint" pinned_fingerprint
    o.F.Inject.fingerprint

(* -- The shared generator is fair across arms and modes ------------------- *)

let split =
  [
    [ Node_id.Client 0; Node_id.Client 2; Node_id.Server 0 ];
    [ Node_id.Client 1; Node_id.Server 1 ];
  ]

let slo ?script ~arm ~batch () =
  Kv_system.slo_run ~seed:77 ~batch ~arm
    ~monitors:
      (match arm with `Gcs -> All.net_selfstab () | `Sym -> All.net_sym ())
    ~n:3 ~n_servers:2 ~homes:[ 0; 2 ] ~clients:2 ~rate:2.0 ~count:40 ?script ()

let complete (r : Kv_system.report) what =
  check (what ^ ": every command acked") true (r.acked = r.sent);
  check (what ^ ": no lost acks") true (r.lost_acks = 0);
  check (what ^ ": stores converged") true r.converged

let test_gcs_batched_equals_unbatched () =
  let u = slo ~arm:`Gcs ~batch:false () in
  let b = slo ~arm:`Gcs ~batch:true () in
  complete u "unbatched";
  complete b "batched";
  List.iter2
    (fun (p, du) (p', db) ->
      check "same proc" true (Proc.equal p p');
      Alcotest.(check string) (Fmt.str "store digest at %a" Proc.pp p) du db)
    u.digests b.digests;
  check "batching strictly reduces apply rounds" true
    (b.apply_rounds < u.apply_rounds)

let test_sym_partition_heal_agreement () =
  let script =
    [ (10, Kv_system.Partition split); (60, Kv_system.Heal) ]
  in
  let s = slo ~script ~arm:`Sym ~batch:true () in
  complete s "sym partition-heal";
  (* Unique keys make the final store order-independent, so the
     symmetric arm must fold the same acked history into the same
     bytes as the sequencer arm (the E18 cross-arm gate). *)
  let g = slo ~script ~arm:`Gcs ~batch:true () in
  complete g "gcs partition-heal";
  List.iter2
    (fun (p, ds) (p', dg) ->
      check "same proc" true (Proc.equal p p');
      Alcotest.(check string)
        (Fmt.str "cross-arm store digest at %a" Proc.pp p)
        ds dg)
    s.digests g.digests

(* -- The Skeen monitor bites ---------------------------------------------- *)

let view ~num ~members =
  let set = Proc.Set.of_list members in
  View.make
    ~id:(View.Id.make ~num ~origin:0)
    ~set
    ~start_ids:(Proc.Set.fold (fun p m -> Proc.Map.add p 1 m) set Proc.Map.empty)

let data ~ts body = Msg.App_msg.make (Sym_msg.to_payload (Sym_msg.Data { ts; body }))
let ack ~ts = Msg.App_msg.make (Sym_msg.to_payload (Sym_msg.Ack { ts }))

let flush ~ts ~view ~digest =
  Msg.App_msg.make (Sym_msg.to_payload (Sym_msg.Flush { ts; view; digest }))

let skeen () = Skeen_spec.monitor ()

let rejects monitor actions =
  let m = monitor () in
  try
    List.iter m.M.on_action actions;
    false
  with M.Violation _ -> true

let accepts monitor actions = not (rejects monitor actions)

let v01 = view ~num:2 ~members:[ 0; 1 ]
let tset01 = Proc.Set.of_list [ 0; 1 ]

(* A gated delivery: p0 hears <t1, p1>, then its own ack at t2 covers
   every member at or beyond t1, so exactly <p1, t1, "a"> may deliver. *)
let gated_prefix =
  [
    Action.App_view (0, v01, tset01);
    Action.App_deliver (0, 1, data ~ts:1 "a");
    Action.App_deliver (0, 0, ack ~ts:2);
  ]

let test_skeen_early_delivery () =
  check "delivery with nothing deliverable rejected" true
    (rejects skeen [ Action.Sym_deliver (0, 1, 1, "x") ]);
  check "the gated delivery itself is accepted" true
    (accepts skeen (gated_prefix @ [ Action.Sym_deliver (0, 1, 1, "a") ]));
  check "a second, unadmitted delivery rejected" true
    (rejects skeen
       (gated_prefix
       @ [ Action.Sym_deliver (0, 1, 1, "a"); Action.Sym_deliver (0, 1, 1, "a") ]
       ))

let test_skeen_order_divergence () =
  check "divergent payload rejected" true
    (rejects skeen (gated_prefix @ [ Action.Sym_deliver (0, 1, 1, "WRONG") ]));
  check "divergent sender rejected" true
    (rejects skeen (gated_prefix @ [ Action.Sym_deliver (0, 0, 1, "a") ]))

let test_skeen_nonincreasing_ts () =
  check "repeated broadcast timestamp rejected" true
    (rejects skeen
       [ Action.App_send (0, data ~ts:5 "a"); Action.App_send (0, data ~ts:5 "b") ]);
  check "increasing timestamps accepted" true
    (accepts skeen
       [ Action.App_send (0, data ~ts:5 "a"); Action.App_send (0, ack ~ts:6) ])

let test_skeen_forged_flush_digest () =
  check "flush announcing a digest its own chunk contradicts rejected" true
    (rejects skeen
       [
         Action.App_view (0, v01, tset01);
         Action.App_send
           (0, flush ~ts:1 ~view:(View.id v01) ~digest:"forged");
       ])

(* Two transitional-set members install the same view having flushed
   different chunks — p0 flushed the undeliverable <t5, p2>, p1 flushed
   nothing — and each honestly announces its own digest. Virtual
   Synchrony says the chunks must be identical, so the second
   announcement must be flagged as a flush divergence. *)
let test_skeen_flush_divergence () =
  let d_with =
    Tord_symmetric.flush_digest
      [ { Tord_symmetric.ts = 5; sender = 2; payload = "zz" } ]
  in
  let d_empty = Tord_symmetric.flush_digest [] in
  check "transitional-set flush divergence rejected" true
    (rejects skeen
       [
         Action.App_deliver (0, 2, data ~ts:5 "zz");
         Action.App_view (0, v01, tset01);
         Action.App_view (1, v01, tset01);
         Action.App_send (0, flush ~ts:6 ~view:(View.id v01) ~digest:d_with);
         Action.App_send (1, flush ~ts:1 ~view:(View.id v01) ~digest:d_empty);
       ]);
  check "identical flushes accepted" true
    (accepts skeen
       [
         Action.App_view (0, v01, tset01);
         Action.App_view (1, v01, tset01);
         Action.App_send (0, flush ~ts:1 ~view:(View.id v01) ~digest:d_empty);
         Action.App_send (1, flush ~ts:1 ~view:(View.id v01) ~digest:d_empty);
       ])

(* The residual check: the deliverability condition admitted <t1, p1>
   but the implementation never reported it. *)
let test_skeen_missed_delivery_residual () =
  let m = skeen () in
  List.iter m.M.on_action gated_prefix;
  (match m.M.at_end () with
  | [] -> Alcotest.fail "missed delivery left no residual obligation"
  | _ -> ());
  let m' = skeen () in
  List.iter m'.M.on_action
    (gated_prefix @ [ Action.Sym_deliver (0, 1, 1, "a") ]);
  Alcotest.(check (list string)) "reported delivery discharges it" [] (m'.M.at_end ())

let suite =
  [
    Alcotest.test_case "determinism: pinned fingerprint [cached]" `Quick
      (in_mode `Cached test_determinism);
    Alcotest.test_case "determinism: pinned fingerprint [rescan]" `Quick
      (in_mode `Rescan test_determinism);
    Alcotest.test_case "gcs arm: batched = unbatched" `Quick
      test_gcs_batched_equals_unbatched;
    Alcotest.test_case "sym arm: partition-heal agreement" `Quick
      test_sym_partition_heal_agreement;
    Alcotest.test_case "skeen monitor: early delivery" `Quick
      test_skeen_early_delivery;
    Alcotest.test_case "skeen monitor: order divergence" `Quick
      test_skeen_order_divergence;
    Alcotest.test_case "skeen monitor: non-increasing timestamps" `Quick
      test_skeen_nonincreasing_ts;
    Alcotest.test_case "skeen monitor: forged flush digest" `Quick
      test_skeen_forged_flush_digest;
    Alcotest.test_case "skeen monitor: flush divergence" `Quick
      test_skeen_flush_divergence;
    Alcotest.test_case "skeen monitor: missed-delivery residual" `Quick
      test_skeen_missed_delivery_residual;
  ]
