(* The schedule explorer: bounded DFS with sleep sets, deterministic
   replay from saved files, and ddmin shrinking. The tentpole smoke
   tests run the whole machine against a seeded §5 mutation — skipping
   the TS_p wait for the peers' synchronization messages — and require
   the violation to be found within the depth bound, shrunk, saved,
   and reproduced from the file. *)

open Vsgc_types
module E = Vsgc_explore
module Sched = E.Schedule

let all2 = Proc.Set.of_range 0 1

(* The standard driving prefix: one settled configuration with a
   message in flight, then a queued (but not yet executed) membership
   change whose interleavings the DFS enumerates. *)
let change_prefix all =
  [
    Sched.Env (Sched.Reconfigure { origin = 0; set = all });
    Sched.Settle;
    Sched.Env (Sched.Send { from = 1; payload = "m1" });
    Sched.Env (Sched.Start_change all);
    Sched.Env (Sched.Deliver_view { origin = 1; set = all });
  ]

let sched ?mutation ?(layer = `Full) name =
  {
    Sched.name;
    expect = None;
    conf = E.Sysconf.make ~seed:42 ~layer ?mutation ~n:2 ();
    entries = change_prefix all2;
  }

let find_violation ?depth s =
  match (E.Explorer.explore ?depth s).E.Explorer.outcome with
  | E.Explorer.Found (found, v) -> (found, v)
  | o -> Alcotest.failf "expected a violation, got %a" E.Explorer.pp_outcome o

(* -- The seeded mutation demo ------------------------------------------- *)

let test_finds_seeded_mutation () =
  let found, v =
    find_violation ~depth:4 (sched ~mutation:Vsgc_core.Vs_rfifo_ts.No_sync_wait "nsw")
  in
  Alcotest.(check string) "caught by the transitional-set monitor" "trans_set_spec" v.E.Replay.kind;
  Alcotest.(check (option string)) "expect header set" (Some "trans_set_spec") found.Sched.expect;
  (* the finding replays deterministically, twice *)
  Alcotest.(check bool) "strict replay reproduces" true (E.Replay.check found = E.Replay.Reproduced);
  Alcotest.(check bool) "and again" true (E.Replay.check found = E.Replay.Reproduced)

let test_shrunk_schedule_replays_from_file () =
  let found, _ =
    find_violation ~depth:4 (sched ~mutation:Vsgc_core.Vs_rfifo_ts.No_sync_wait "nsw")
  in
  let small = E.Shrink.minimize found in
  Alcotest.(check bool)
    "shrinking does not grow the schedule" true
    (List.length small.Sched.entries <= List.length found.Sched.entries);
  let file = Filename.temp_file "vsgc-shrunk" ".sched" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () ->
      Sched.save small file;
      let reloaded = Sched.load file in
      Alcotest.(check bool) "file roundtrip is structural identity" true (reloaded = small);
      Alcotest.(check bool)
        "shrunk schedule reproduces from its saved file" true
        (E.Replay.check reloaded = E.Replay.Reproduced))

(* The correct algorithm survives the same bounded exploration: every
   interleaving of the change, probed to completion, is clean. *)
let test_correct_algorithm_exhausts_clean () =
  match (E.Explorer.explore ~depth:3 (sched "clean")).E.Explorer.outcome with
  | E.Explorer.Exhausted -> ()
  | o -> Alcotest.failf "expected clean exhaustion, got %a" E.Explorer.pp_outcome o

(* The unmutated `Vs layer lacks blocking, and the DFS finds the
   interleaving that breaks it — the cut is published before a
   buffered application send fires (invariant 6.13) — even though
   randomized settling of the very same scenario stays green. *)
let test_finds_unblocked_cut_interleaving () =
  let found, v = find_violation ~depth:4 (sched ~layer:`Vs "vs-cut") in
  Alcotest.(check string) "cut-coverage invariant" "6.13" v.E.Replay.kind;
  Alcotest.(check bool) "replays" true (E.Replay.check found = E.Replay.Reproduced)

(* -- Sleep sets ---------------------------------------------------------- *)

let test_sleep_sets_prune_commuting_deliveries () =
  (* traffic from both processes to both: plenty of Rf_deliver pairs at
     distinct receivers in the enabled sets *)
  let s =
    {
      (sched "sleep") with
      Sched.entries =
        [
          Sched.Env (Sched.Reconfigure { origin = 0; set = all2 });
          Sched.Settle;
          Sched.Env (Sched.Send { from = 0; payload = "a" });
          Sched.Env (Sched.Send { from = 1; payload = "b" });
        ];
    }
  in
  (* depth 6: two client sends + two multicasts set up concurrent
     deliveries in both directions, the last two levels explore and
     then sleep their redundant orderings *)
  let r = E.Explorer.explore ~depth:6 ~probe:false s in
  (match r.E.Explorer.outcome with
  | E.Explorer.Exhausted -> ()
  | o -> Alcotest.failf "expected exhaustion, got %a" E.Explorer.pp_outcome o);
  Alcotest.(check bool) "some branches were slept" true (r.E.Explorer.sleep_skips > 0)

let test_independence_from_footprints () =
  let indep = E.Explorer.independence (E.Sysconf.make ~n:3 ()) in
  let m = Msg.Wire.App (Msg.App_msg.make "x") in
  let d q = Action.Rf_deliver (0, q, m) in
  (* the historical hand-coded relation is preserved... *)
  Alcotest.(check bool) "distinct receivers commute" true (indep (d 1) (d 2));
  Alcotest.(check bool) "same receiver does not" false (indep (d 1) (d 1));
  Alcotest.(check bool)
    "delivery vs a crash of the sender does not" false
    (indep (d 1) (Action.Crash 0));
  (* ...and the footprint-derived one is strictly larger *)
  let send p = Action.App_send (p, Msg.App_msg.make "y") in
  Alcotest.(check bool) "sends at distinct processes commute" true (indep (send 0) (send 1));
  Alcotest.(check bool) "send vs a delivery to it does not" false (indep (send 1) (d 1));
  let v =
    View.make ~id:(View.Id.make ~num:1 ~origin:0) ~set:Proc.Set.empty
      ~start_ids:Proc.Map.empty
  in
  Alcotest.(check bool)
    "membership view vs delivery from the viewed process does not" false
    (indep (Action.Mb_view (0, v)) (d 1))

(* -- Schedule serialization --------------------------------------------- *)

let test_schedule_roundtrip () =
  let t =
    {
      Sched.name = "roundtrip with spaces";
      expect = Some "vs_rfifo_spec";
      conf =
        E.Sysconf.make ~seed:9 ~layer:`Vs ~mutation:Vsgc_core.Vs_rfifo_ts.No_sync_wait
          ~n:3 ();
      entries =
        [
          Sched.Env (Sched.Reconfigure { origin = 2; set = Proc.Set.of_range 0 2 });
          Sched.Run 17;
          Sched.Env (Sched.Send { from = 1; payload = "payload with spaces\nand a newline" });
          Sched.Env (Sched.Start_change Proc.Set.empty);
          Sched.Env (Sched.Deliver_view { origin = 0; set = Proc.Set.singleton 1 });
          Sched.Env (Sched.Crash 2);
          Sched.Env (Sched.Recover 2);
          Sched.Settle;
          Sched.Choose { owner = 3; key = "co_rfifo.send_p1({p0},sync(c2,v1.0,[]))" };
        ];
    }
  in
  Alcotest.(check bool) "of_string (to_string t) = t" true (Sched.of_string (Sched.to_string t) = t)

let test_schedule_rejects_garbage () =
  let bad s = match Sched.of_string s with
    | exception Sched.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true (bad "not-a-schedule\nn 2");
  Alcotest.(check bool) "missing n" true (bad "vsgc-schedule 1\nname x");
  Alcotest.(check bool) "bad entry" true (bad "vsgc-schedule 1\nn 2\nfrobnicate 3")

(* -- Recorder ------------------------------------------------------------ *)

let test_recorder_captures_replayable_run () =
  let conf = E.Sysconf.make ~n:3 () in
  let s =
    E.Recorder.capture ~name:"recorded-clean" conf (fun r ->
        let all = Proc.Set.of_range 0 2 in
        ignore (E.Recorder.reconfigure r ~set:all);
        E.Recorder.settle r;
        E.Recorder.send r 0 "hello";
        E.Recorder.crash r 2;
        ignore (E.Recorder.reconfigure ~origin:1 r ~set:(Proc.Set.of_range 0 1));
        E.Recorder.settle r)
  in
  Alcotest.(check (option string)) "clean run" None s.Sched.expect;
  Alcotest.(check bool)
    "explicit choices were captured" true
    (List.exists (function Sched.Choose _ -> true | _ -> false) s.Sched.entries);
  Alcotest.(check bool)
    "the crash injection was captured as an env op" true
    (List.mem (Sched.Env (Sched.Crash 2)) s.Sched.entries);
  Alcotest.(check bool) "replays clean" true (E.Replay.check s = E.Replay.Clean_ok)

let test_recorder_captures_violation () =
  let conf =
    E.Sysconf.make ~layer:`Full ~mutation:Vsgc_core.Vs_rfifo_ts.No_sync_wait ~n:2 ()
  in
  let s =
    E.Recorder.capture ~name:"recorded-violation" conf (fun r ->
        ignore (E.Recorder.reconfigure r ~set:all2);
        E.Recorder.settle r;
        ignore (E.Recorder.start_change r ~set:all2);
        ignore (E.Recorder.deliver_view ~origin:1 r ~set:all2);
        E.Recorder.settle r)
  in
  Alcotest.(check (option string)) "classified" (Some "trans_set_spec") s.Sched.expect;
  Alcotest.(check bool) "reproduces" true (E.Replay.check s = E.Replay.Reproduced)

(* -- ddmin ---------------------------------------------------------------- *)

let test_ddmin_minimizes_to_kernel () =
  (* reproduction = "contains both 3 and 7": ddmin must strip all noise *)
  let repro xs = List.mem 3 xs && List.mem 7 xs in
  let out = E.Shrink.ddmin repro [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check (list int)) "kernel" [ 3; 7 ] out

let suite =
  [
    Alcotest.test_case "explorer finds the seeded no-sync-wait mutation" `Quick
      test_finds_seeded_mutation;
    Alcotest.test_case "shrunk finding replays from its saved file" `Quick
      test_shrunk_schedule_replays_from_file;
    Alcotest.test_case "correct algorithm exhausts clean" `Quick
      test_correct_algorithm_exhausts_clean;
    Alcotest.test_case "finds the unblocked-cut interleaving at `Vs" `Quick
      test_finds_unblocked_cut_interleaving;
    Alcotest.test_case "sleep sets prune commuting deliveries" `Quick
      test_sleep_sets_prune_commuting_deliveries;
    Alcotest.test_case "independence derives from footprints" `Quick
      test_independence_from_footprints;
    Alcotest.test_case "schedule text roundtrip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule parser rejects garbage" `Quick test_schedule_rejects_garbage;
    Alcotest.test_case "recorder captures a replayable run" `Quick
      test_recorder_captures_replayable_run;
    Alcotest.test_case "recorder classifies a violation" `Quick
      test_recorder_captures_violation;
    Alcotest.test_case "ddmin minimizes to the kernel" `Quick test_ddmin_minimizes_to_kernel;
  ]
