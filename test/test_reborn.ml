(* §8 crash/recovery vs the §6 proof obligations: a restart wipes the
   volatile bookkeeping the invariants quantify over, so checks that
   reference wiped state (here 6.7: received sync messages equal the
   sender's record) must be vacuous for processes that have ever
   crashed — and must keep their teeth for processes that never did.

   The fabricated state: receiver p1 holds a synchronization message
   that sender p0 has no record of sending. With an intact p0 that is
   exactly the inconsistency 6.7 exists to catch; with a reborn p0 it
   is the expected aftermath of the restart. *)

open Vsgc_types
module System = Vsgc_harness.System
module Inv = Vsgc_checker.Invariants
module Endpoint = Vsgc_core.Endpoint
module Vs = Vsgc_core.Vs_rfifo_ts

let fabricated ~reborn =
  let sys = System.create ~n:2 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  let snap = System.snapshot sys in
  let e1 = Proc.Map.find 1 snap.Inv.endpoints in
  let vs' =
    Vs.recv_sync (Endpoint.vs e1) 0 ~cid:99 ~view:(Endpoint.current_view e1)
      ~cut:Msg.Cut.empty
  in
  let e1' = { e1 with Endpoint.g = { e1.Endpoint.g with Vsgc_core.Gcs.vs = vs' } } in
  { snap with Inv.endpoints = Proc.Map.add 1 e1' snap.Inv.endpoints; Inv.reborn = reborn }

let expect_6_7 snap =
  match Inv.inv_6_7 snap with
  | () -> Alcotest.fail "expected invariant 6.7 to fire"
  | exception Inv.Invariant_violation { name; _ } ->
      Alcotest.(check string) "violated invariant" "6.7" name

let test_enforced_for_never_crashed () = expect_6_7 (fabricated ~reborn:Proc.Set.empty)

(* The sender crashed at some point: its missing record proves nothing,
   the check is vacuous. *)
let test_vacuous_for_reborn_sender () =
  Inv.inv_6_7 (fabricated ~reborn:(Proc.Set.singleton 0))

(* Rebirth of the RECEIVER does not excuse the sender's missing record:
   vacuity is keyed on whose state was wiped. *)
let test_still_enforced_when_only_receiver_reborn () =
  expect_6_7 (fabricated ~reborn:(Proc.Set.singleton 1))

(* End to end: a real crash/recover run populates the snapshot's reborn
   set, and the full battery — checked after every step — stays green
   across the wipe and re-admission. *)
let test_crash_recover_run_is_green_and_marks_reborn () =
  let all = Proc.Set.of_range 0 2 in
  let sys = System.create ~seed:3 ~n:3 () in
  System.attach_invariants sys;
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  System.crash sys 2;
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  System.recover sys 2;
  ignore (System.reconfigure sys ~origin:2 ~set:all);
  System.settle sys;
  Alcotest.(check bool)
    "snapshot marks p2 reborn" true
    (Proc.Set.equal (System.snapshot sys).Inv.reborn (Proc.Set.singleton 2))

let suite =
  [
    Alcotest.test_case "6.7 enforced for never-crashed processes" `Quick
      test_enforced_for_never_crashed;
    Alcotest.test_case "6.7 vacuous when the sender is reborn" `Quick
      test_vacuous_for_reborn_sender;
    Alcotest.test_case "6.7 still enforced when only the receiver is reborn" `Quick
      test_still_enforced_when_only_receiver_reborn;
    Alcotest.test_case "crash/recover run is green and marks reborn" `Quick
      test_crash_recover_run_is_green_and_marks_reborn;
  ]
