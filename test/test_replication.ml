(* The replicated key-value store: replica consistency through churn,
   and transitional-set-aware state transfer on merges. *)

open Vsgc_types
module System = Vsgc_harness.System
module Replica = Vsgc_replication.Replica

let build ?transfer_blind ~seed ~n () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed ~n
      ~client_builder:(fun p ->
        let c, r = Replica.component ?transfer_blind p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  (sys, fun p -> Hashtbl.find refs p)

let states_equal a b = Replica.Smap.equal String.equal a b

let test_replicas_converge () =
  let sys, rep = build ~seed:91 ~n:3 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  Replica.set (rep 0) ~key:"x" ~value:"1";
  Replica.set (rep 1) ~key:"y" ~value:"2";
  Replica.set (rep 2) ~key:"x" ~value:"3";
  System.settle sys;
  let s0 = Replica.state !(rep 0) in
  Alcotest.(check bool) "replica 1 equals replica 0" true (states_equal s0 (Replica.state !(rep 1)));
  Alcotest.(check bool) "replica 2 equals replica 0" true (states_equal s0 (Replica.state !(rep 2)));
  Alcotest.(check bool) "y committed" true (Replica.get !(rep 0) "y" = Some "2");
  (* concurrent writes to x resolved identically everywhere *)
  Alcotest.(check bool) "x resolved" true (Replica.get !(rep 0) "x" <> None)

let test_joiner_catches_up () =
  let sys, rep = build ~seed:92 ~n:3 () in
  let pair = Proc.Set.of_range 0 1 in
  ignore (System.reconfigure sys ~origin:0 ~set:pair);
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.singleton 2));
  System.settle sys;
  Replica.set (rep 0) ~key:"a" ~value:"A";
  Replica.set (rep 1) ~key:"b" ~value:"B";
  System.settle sys;
  (* p2 was elsewhere; on merge it must adopt the pair's state *)
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  Alcotest.(check bool) "joiner sees a" true (Replica.get !(rep 2) "a" = Some "A");
  Alcotest.(check bool) "joiner sees b" true (Replica.get !(rep 2) "b" = Some "B");
  Alcotest.(check bool) "all replicas equal" true
    (states_equal (Replica.state !(rep 0)) (Replica.state !(rep 2)))

let test_writes_after_merge () =
  let sys, rep = build ~seed:93 ~n:4 () in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  Replica.set (rep 0) ~key:"left" ~value:"l";
  Replica.set (rep 2) ~key:"right" ~value:"r";
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  Replica.set (rep 3) ~key:"after" ~value:"!";
  System.settle sys;
  (* all four replicas byte-identical; the adopted snapshot plus the
     post-merge write are visible everywhere *)
  let s0 = Replica.state !(rep 0) in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "replica %d equals replica 0" p)
        true
        (states_equal s0 (Replica.state !(rep p))))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "post-merge write visible" true (Replica.get !(rep 1) "after" = Some "!")

let snapshot_cost ?transfer_blind ~seed () =
  let sys, rep = build ?transfer_blind ~seed ~n:4 () in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  Replica.set (rep 0) ~key:"k0" ~value:"v0";
  Replica.set (rep 2) ~key:"k2" ~value:"v2";
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  (* one more stable reconfiguration: nobody joins, so with
     transitional sets no transfer is needed at all *)
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  List.fold_left (fun acc p -> acc + !(rep p).Replica.snapshots_sent) 0 [ 0; 1; 2; 3 ]

let test_transitional_sets_cut_state_transfer () =
  let with_ts = snapshot_cost ~seed:94 () in
  let blind = snapshot_cost ~transfer_blind:true ~seed:94 () in
  (* with transitional sets: one snapshot per merging group — 4 when
     the singletons form pairs, 2 when the pairs merge, 0 for the
     stable change; blind: every member at every view change (4+8) *)
  Alcotest.(check int) "snapshots only where groups merge" 6 with_ts;
  Alcotest.(check int) "blind transfer at every change" 12 blind;
  Alcotest.(check bool)
    (Fmt.str "blind transfer costs more (%d > %d)" blind with_ts)
    true (blind > with_ts)

let test_state_transfer_under_load () =
  (* A joiner catches up via the transitional-set snapshot WHILE the
     incumbents keep writing: interleave small executor bursts with
     fresh writes across the merge instead of letting it settle first.
     Afterwards every replica must be byte-identical and hold the
     pre-merge state, the joiner's own state, and every in-flight
     write. *)
  let sys, rep = build ~seed:95 ~n:3 () in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.singleton 2));
  System.settle sys;
  for i = 1 to 5 do
    Replica.write (rep 0) ~client:1 ~seq:i ~key:(Fmt.str "pre%d" i) ~value:"p"
  done;
  Replica.set (rep 2) ~key:"joiner" ~value:"j";
  System.settle sys;
  (* merge, and keep the load running while the view change and the
     snapshot transfer are still in flight *)
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 2));
  for i = 1 to 8 do
    ignore (System.run ~max_steps:15 sys);
    Replica.write (rep (i mod 2)) ~client:2 ~seq:i
      ~key:(Fmt.str "mid%d" i) ~value:"m"
  done;
  System.settle sys;
  let s0 = Replica.state !(rep 0) in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "replica %d byte-identical to replica 0" p)
        true
        (states_equal s0 (Replica.state !(rep p))))
    [ 1; 2 ];
  Alcotest.(check bool) "joiner kept its own key" true
    (Replica.get !(rep 0) "joiner" = Some "j");
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present everywhere") true
        (Replica.get !(rep 2) k <> None))
    [ "pre1"; "pre5"; "mid1"; "mid8" ]

let suite =
  [
    Alcotest.test_case "replicas converge" `Quick test_replicas_converge;
    Alcotest.test_case "state transfer under load" `Quick
      test_state_transfer_under_load;
    Alcotest.test_case "joiner catches up via snapshot" `Quick test_joiner_catches_up;
    Alcotest.test_case "writes after merge" `Quick test_writes_after_merge;
    Alcotest.test_case "transitional sets cut state transfer" `Quick
      test_transitional_sets_cut_state_transfer;
  ]
