(* The effect sanitizer (DESIGN.md §14): a sanitized run must be
   fingerprint-identical to an unsanitized one — across runners and
   both scheduler modes — while genuinely lying footprints are caught.
   The positive half is the qcheck property and the per-runner cases;
   the negative half replants the lying-footprint / false-independence
   / non-commuting fixtures and demands the expected diagnostics. *)

open Vsgc_types
module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor
module Sanitizer = Vsgc_ioa.Sanitizer
module Component = Vsgc_ioa.Component
module Footprint = Vsgc_ioa.Footprint
module Trace_stats = Vsgc_ioa.Trace_stats
module Diag = Vsgc_ioa.Diag

(* Scoped overrides of the process-wide executor defaults (the same
   knobs VSGC_SANITIZE / VSGC_SCHED set), restored on exit so test
   order cannot leak a mode into unrelated suites. *)
let with_sanitize policy f =
  let saved = Executor.get_default_sanitize () in
  Executor.set_default_sanitize policy;
  Fun.protect ~finally:(fun () -> Executor.set_default_sanitize saved) f

let with_mode mode f =
  let saved = Executor.get_default_mode () in
  Executor.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Executor.set_default_mode saved) f

let in_modes f = List.iter (fun m -> with_mode m (fun () -> f m)) [ `Cached; `Rescan ]

let mode_name = function
  | `Cached -> "cached"
  | `Rescan -> "rescan"
  | `Parallel -> "parallel"

(* -- The three runner shapes --------------------------------------------- *)

(* Each returns (fingerprint, sanitizer violations). Under [None] the
   violation count is trivially 0; under [Some `Collect] a non-zero
   count on shipped components is itself a failure (the honesty half),
   and equal fingerprints are the neutrality half. *)

let free_run ~seed () =
  let sys = System.create ~seed ~n:4 () in
  Vsgc_harness.Scenario.run sys (Vsgc_harness.Scenario.partition_heal ~n:4);
  let exec = System.exec sys in
  let viol =
    match Executor.sanitizer exec with
    | Some s -> Sanitizer.violations s
    | None -> 0
  in
  (Trace_stats.fingerprint (Executor.trace exec), viol)

let sync_run ~seed () =
  let sys = System.create ~seed ~n:4 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 3));
  System.send sys 0 "san-a";
  System.send sys 1 "san-b";
  ignore (System.run_rounds sys);
  let exec = System.exec sys in
  let viol =
    match Executor.sanitizer exec with
    | Some s -> Sanitizer.violations s
    | None -> 0
  in
  (Trace_stats.fingerprint (Executor.trace exec), viol)

let server_run ~seed () =
  let ss = Vsgc_harness.Server_system.create ~seed ~n_clients:4 ~n_servers:2 () in
  Vsgc_harness.Server_system.bootstrap ss;
  let sys = Vsgc_harness.Server_system.sys ss in
  System.settle sys;
  let exec = System.exec sys in
  let viol =
    match Executor.sanitizer exec with
    | Some s -> Sanitizer.violations s
    | None -> 0
  in
  (Trace_stats.fingerprint (Executor.trace exec), viol)

(* The networked runner spans many executors, so the per-run check
   uses the [`Raise] policy: any footprint lie aborts the run instead
   of hiding in one node's collector. *)
let net_run ~seed () =
  let knobs = { Vsgc_net.Loopback.delay = 2; drop = 0.0; reorder = 0.25 } in
  let net = Vsgc_harness.Net_system.create ~seed ~knobs ~n:3 () in
  ignore (Vsgc_harness.Net_system.reconfigure net ~set:(Proc.Set.of_range 0 2));
  Vsgc_harness.Net_system.run net;
  Vsgc_harness.Net_system.broadcast net ~senders:(Proc.Set.of_range 0 2)
    ~per_sender:3;
  Vsgc_harness.Net_system.run net;
  ignore
    (Vsgc_harness.Net_system.reconfigure ~origin:1 net
       ~set:(Proc.Set.of_range 0 1));
  Vsgc_harness.Net_system.run net;
  Vsgc_harness.Net_system.fingerprint net

let check_neutral ~label run =
  in_modes (fun m ->
      let fp_off, _ = with_sanitize None run in
      let fp_on, viol = with_sanitize (Some `Collect) run in
      Alcotest.(check string)
        (Fmt.str "%s/%s: sanitized fingerprint identical" label (mode_name m))
        fp_off fp_on;
      Alcotest.(check int)
        (Fmt.str "%s/%s: shipped footprints honest" label (mode_name m))
        0 viol)

let test_free_running_neutral () = check_neutral ~label:"free" (free_run ~seed:271)
let test_sync_runner_neutral () = check_neutral ~label:"sync" (sync_run ~seed:137)
let test_server_stack_neutral () = check_neutral ~label:"server" (server_run ~seed:273)

let test_net_runner_neutral () =
  in_modes (fun m ->
      let fp_off = with_sanitize None (net_run ~seed:97) in
      (* Raise policy: a lying footprint anywhere in the deployment
         aborts the run right here. *)
      let fp_on = with_sanitize (Some `Raise) (net_run ~seed:97) in
      Alcotest.(check string)
        (Fmt.str "net/%s: sanitized fingerprint identical" (mode_name m))
        fp_off fp_on)

(* The qcheck property: for ANY seed, the free-running system is
   sanitizer-neutral and sanitizer-clean under both policies' default
   path. One property, many seeds — the per-runner cases above pin the
   other runner shapes. *)
let prop_sanitize_neutral =
  QCheck.Test.make ~count:15 ~name:"sanitized run = unsanitized run (any seed)"
    QCheck.(int_range 0 99_999)
    (fun seed ->
      let fp_off, _ = with_sanitize None (free_run ~seed) in
      let fp_on, viol = with_sanitize (Some `Collect) (free_run ~seed) in
      String.equal fp_off fp_on && viol = 0)

(* -- Negative tests: the planted lies must be caught ---------------------- *)

(* Fixture actions reuse the universe's message: Action.equal compares
   payloads, and App_send carries a typed App_msg. *)
let msg = Vsgc_analysis.Universe.msg

let has_check c diags = List.exists (fun d -> d.Diag.check = c) diags

(* Same shape as the analysis fixture: accepts [send], increments, but
   declares a read-only footprint over its observed slice. *)
let liar_comps () =
  let send = Action.App_send (0, msg) in
  [
    Component.pack
      (Component.make
         ~footprint:(fun a ->
           if Action.equal a send then Footprint.rw [ Footprint.Proc_state 0 ]
           else Footprint.empty)
         ~emits:(Action.equal send) ~name:"speaker" ~init:false
         ~accepts:(fun _ -> false)
         ~outputs:(fun fired -> if fired then [] else [ send ])
         ~apply:(fun _ _ -> true)
         ());
    Component.pack
      (Component.make
         ~footprint:(fun a ->
           if Action.equal a send then
             Footprint.make ~reads:[ Footprint.Proc_state 0 ] ()
           else Footprint.empty)
         ~emits:(fun _ -> false)
         ~observe:(fun k -> [ (Footprint.Proc_state 0, Component.digest k) ])
         ~name:"liar" ~init:0 ~accepts:(Action.equal send)
         ~outputs:(fun _ -> [])
         ~apply:(fun k a -> if Action.equal a send then k + 1 else k)
         ());
  ]

let fixture_diags name =
  match Vsgc_analysis.Fixtures.find name with
  | Some f -> f.Vsgc_analysis.Fixtures.run ()
  | None -> Alcotest.failf "fixture %s vanished from the registry" name

let test_undeclared_write_collected () =
  let diags = fixture_diags "sanitize-undeclared-write" in
  Alcotest.(check bool)
    "planted undeclared write detected" true
    (has_check "undeclared-write" diags)

let test_false_independence_collected () =
  let diags = fixture_diags "sanitize-false-independence" in
  Alcotest.(check bool)
    "planted false independence detected" true
    (has_check "false-independence" diags)

let test_lying_footprint_raises () =
  let exec = Executor.create ~seed:1 ~sanitize:(Some `Raise) (liar_comps ()) in
  match Executor.run ~max_steps:50 exec with
  | _ -> Alcotest.fail "the planted lie did not raise under `Raise"
  | exception Sanitizer.Violation d ->
      Alcotest.(check string) "violation check" "undeclared-write" d.Diag.check;
      Alcotest.(check string) "violation pass" "sanitize" d.Diag.pass

let test_static_audit_catches_liar () =
  let universe = [ Action.App_send (0, msg) ] in
  let diags =
    Vsgc_analysis.Effect_check.audit ~steps:10 ~universe (liar_comps ())
  in
  Alcotest.(check bool)
    "static write-gap catches the same plant" true
    (has_check "write-gap" diags)

(* A planted commute failure for the race replay: two always-enabled
   outputs with disjoint declared footprints, plus a recorder that
   secretly appends every firing to one shared slice — the orders
   [a;b] and [b;a] leave different digests, so the both-orders replay
   must report commute-divergence (the recorder's hidden write also
   shows up as undeclared-write; both are asserted). *)
let test_commute_divergence () =
  let act1 = Action.App_send (0, msg) in
  let act2 = Action.Block_ok 1 in
  let fp_only act locs a =
    if Action.equal a act then Footprint.rw locs else Footprint.empty
  in
  let chatter name act locs =
    Component.pack
      (Component.make
         ~footprint:(fp_only act locs)
         ~emits:(Action.equal act) ~name ~init:()
         ~accepts:(fun _ -> false)
         ~outputs:(fun () -> [ act ])
         ~apply:(fun () _ -> ())
         ())
  in
  let recorder =
    Component.pack
      (Component.make
         ~footprint:(fun _ -> Footprint.empty)
         ~emits:(fun _ -> false)
         ~observe:(fun log ->
           [ (Footprint.Global "recorder-log", Component.digest log) ])
         ~name:"recorder" ~init:[]
         ~accepts:(fun a -> Action.equal a act1 || Action.equal a act2)
         ~outputs:(fun _ -> [])
         ~apply:(fun log a -> Action.to_string a :: log)
         ())
  in
  let comps =
    [
      chatter "talker-a" act1 [ Footprint.Proc_state 0 ];
      chatter "talker-b" act2 [ Footprint.Proc_state 1 ];
      recorder;
    ]
  in
  let exec = Executor.create ~seed:5 ~sanitize:None comps in
  let san =
    Sanitizer.create ~race_every:1 ~policy:`Collect (Executor.components exec)
      (Executor.metrics exec)
  in
  Alcotest.(check bool)
    "the pair is declared independent" true
    (Sanitizer.independent san act1 act2);
  (match Executor.candidates exec with
  | (owner, a) :: _ ->
      Sanitizer.pre san ~owner a;
      Executor.perform exec ~owner a;
      Sanitizer.post san ~owner a
  | [] -> Alcotest.fail "no enabled candidate");
  let diags = Sanitizer.diags san in
  Alcotest.(check bool)
    "both-orders replay reports commute-divergence" true
    (has_check "commute-divergence" diags);
  Alcotest.(check bool)
    "the hidden shared write is also an undeclared-write" true
    (has_check "undeclared-write" diags)

(* -- Counters, static pass, JSON ------------------------------------------ *)

let test_counters () =
  with_sanitize (Some `Collect) (fun () ->
      let sys = System.create ~seed:271 ~n:4 () in
      Vsgc_harness.Scenario.run sys
        (Vsgc_harness.Scenario.partition_heal ~n:4);
      let c = Trace_stats.counters (Executor.metrics (System.exec sys)) in
      Alcotest.(check bool) "san_steps counted" true (c.Trace_stats.san_steps > 0);
      Alcotest.(check bool) "san_diffs counted" true (c.Trace_stats.san_diffs > 0);
      Alcotest.(check bool) "race replays ran" true (c.Trace_stats.san_races > 0);
      Alcotest.(check int) "no violations on shipped code" 0
        c.Trace_stats.san_violations);
  with_sanitize None (fun () ->
      let sys = System.create ~seed:271 ~n:4 () in
      Vsgc_harness.Scenario.run sys
        (Vsgc_harness.Scenario.partition_heal ~n:4);
      let c = Trace_stats.counters (Executor.metrics (System.exec sys)) in
      Alcotest.(check int) "unsanitized runs count nothing" 0
        c.Trace_stats.san_steps)

let test_effects_pass_clean () =
  List.iter
    (fun (label, diags) ->
      Alcotest.(check (list string))
        (Fmt.str "vet %s clean" label)
        []
        (List.map Diag.to_string diags))
    (Vsgc_analysis.Effect_check.all ())

let test_diag_json () =
  let d =
    Diag.v ~pass:"sanitize" ~check:"undeclared-write" ~subject:{|a"b\c|}
      "line1\nline2\ttab"
  in
  Alcotest.(check string) "JSONL escaping"
    {|{"pass":"sanitize","check":"undeclared-write","subject":"a\"b\\c","message":"line1\nline2\u0009tab"}|}
    (Diag.to_json d)

let suite =
  [
    Alcotest.test_case "free-running runner neutral (both modes)" `Quick
      test_free_running_neutral;
    Alcotest.test_case "sync runner neutral (both modes)" `Quick
      test_sync_runner_neutral;
    Alcotest.test_case "server stack neutral (both modes)" `Quick
      test_server_stack_neutral;
    Alcotest.test_case "net runner neutral under Raise (both modes)" `Quick
      test_net_runner_neutral;
    QCheck_alcotest.to_alcotest ~long:false prop_sanitize_neutral;
    Alcotest.test_case "planted undeclared write detected" `Quick
      test_undeclared_write_collected;
    Alcotest.test_case "planted false independence detected" `Quick
      test_false_independence_collected;
    Alcotest.test_case "Raise policy aborts on the lie" `Quick
      test_lying_footprint_raises;
    Alcotest.test_case "static audit catches the same lie" `Quick
      test_static_audit_catches_liar;
    Alcotest.test_case "race replay reports commute-divergence" `Quick
      test_commute_divergence;
    Alcotest.test_case "sanitizer counters" `Quick test_counters;
    Alcotest.test_case "vet effects clean on shipped compositions" `Quick
      test_effects_pass_clean;
    Alcotest.test_case "diagnostic JSON escaping" `Quick test_diag_json;
  ]
