(* Self-stabilization (DESIGN.md §13): the local legitimacy guards
   catch every detectable corruption class and stay silent on every
   reachable state; the fault layer's corrupt event drives the
   detect-and-rejoin path end to end; and each negative outcome —
   divergence, convergence failure, fingerprint drift, missing
   detection — classifies under the right verdict. *)

open Vsgc_types
module System = Vsgc_harness.System
module Net_system = Vsgc_harness.Net_system
module Endpoint = Vsgc_core.Endpoint
module Servers = Vsgc_mbrshp.Servers
module F = Vsgc_fault
module Node_id = Vsgc_wire.Node_id
module Loopback = Vsgc_net.Loopback

let check = Alcotest.(check bool)

(* A settled full-layer endpoint with traffic behind it — a reachable,
   legitimate state to corrupt. *)
let settled_endpoint () =
  let sys = System.create ~seed:171 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  !(System.endpoint sys 0)

(* -- The guards themselves ------------------------------------------------ *)

let test_reachable_states_pass () =
  check "initial endpoint passes" true
    (Endpoint.self_check (Endpoint.initial ~layer:`Full 0) = None);
  check "settled endpoint passes" true
    (Endpoint.self_check (settled_endpoint ()) = None)

let expected_prefix = function
  | Endpoint.Last_dlvrd | Endpoint.Last_sent -> "seqno:"
  | Endpoint.View_id -> "view-ahead:"
  | Endpoint.Wraparound -> "wraparound:"
  | Endpoint.Payload -> assert false

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Every detectable corruption class trips its guard, with the reason
   naming the right guard family — at several salts, since mutations
   are salt-relative. *)
let test_detectable_corruptions_caught () =
  let st = settled_endpoint () in
  List.iter
    (fun field ->
      List.iter
        (fun salt ->
          let name =
            Fmt.str "%s salt %d" (Endpoint.corruption_to_string field) salt
          in
          match Endpoint.self_check (Endpoint.corrupt ~salt field st) with
          | None -> Alcotest.failf "%s: corruption not detected" name
          | Some reason ->
              check
                (Fmt.str "%s names the guard (%s)" name reason)
                true
                (starts_with ~prefix:(expected_prefix field) reason))
        [ 0; 1; 17; -5 ])
    Endpoint.detectable_corruptions

(* Payload scribbling is the deliberate blind spot: locally invisible
   (the state stays self-consistent), caught only by the global §6
   invariants — the "diverged" witness below. *)
let test_payload_locally_invisible () =
  let st = settled_endpoint () in
  check "payload corruption passes the local guards" true
    (Endpoint.self_check (Endpoint.corrupt ~salt:5 Endpoint.Payload st) = None)

let test_corrupt_rejects_crashed () =
  let st = { (settled_endpoint ()) with Endpoint.crashed = true } in
  check "self_check is silent on crashed end-points" true
    (Endpoint.self_check st = None);
  match Endpoint.corrupt ~salt:1 Endpoint.Last_sent st with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corrupt accepted a crashed end-point"

let test_corruption_field_names () =
  List.iter
    (fun f ->
      check
        (Endpoint.corruption_to_string f ^ " round-trips")
        true
        (Endpoint.corruption_of_string (Endpoint.corruption_to_string f)
        = Some f))
    Endpoint.all_corruptions;
  check "garbage field rejected" true
    (Endpoint.corruption_of_string "frobnicate" = None)

(* Servers get the same guard discipline (no rejoin machinery yet —
   see ROADMAP). *)
let test_server_guards () =
  let two = Server.Set.of_range 0 1 in
  let st = Servers.initial ~clients:(Proc.Set.of_list [ 0; 1 ]) ~servers:two 0 in
  check "initial server state passes" true (Servers.self_check st = None);
  check "round at bound caught" true
    (Servers.self_check { st with Servers.round = View.counter_bound } <> None);
  check "self-exclusion caught" true
    (Servers.self_check { st with Servers.alive = Server.Set.singleton 1 }
    <> None);
  check "mid-change without announcement caught" true
    (Servers.self_check { st with Servers.in_change = true; announced = None }
    <> None)

(* -- Negative paths through the fault layer ------------------------------- *)

let base_conf name seed =
  {
    F.Schedule.name;
    seed;
    clients = 3;
    servers = 2;
    layer = `Full;
    arm = `Gcs;
    knobs = { Loopback.default_knobs with delay = 1 };
    expect = None;
    fingerprint = None;
  }

let heal_schedule =
  {
    F.Schedule.conf =
      { (base_conf "selfstab-heal" 181) with expect = Some F.Inject.detected_kind };
    events =
      [
        F.Schedule.Settle;
        F.Schedule.Traffic 1;
        F.Schedule.Corrupt { target = 1; field = Endpoint.Last_dlvrd; salt = 7 };
        F.Schedule.Run 20;
        F.Schedule.Traffic 1;
        F.Schedule.Settle;
        F.Schedule.Converged;
      ];
  }

(* The happy path: corruption detected, client recycled through the §8
   rejoin, the run converges green — and check classifies it as
   detected-and-rejoined, not merely clean. *)
let test_detected_and_rejoined () =
  let o = F.Inject.run heal_schedule in
  (match o.F.Inject.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %a" F.Inject.pp_violation v);
  let net = o.F.Inject.net in
  check "corruption recorded" true (Net_system.corruptions net <> []);
  (match Net_system.detections net with
  | [ (1, reason, _) ] ->
      check "guard names the seqno family" true
        (starts_with ~prefix:"seqno:" reason)
  | ds -> Alcotest.failf "want exactly one detection of p1, got %d" (List.length ds));
  match F.Inject.check heal_schedule with
  | F.Inject.Reproduced -> ()
  | _ -> Alcotest.fail "check did not classify as detected-and-rejoined"

(* Expecting a detection on a run whose guards never fire is Missing —
   a corruption-free schedule cannot silently pass as healed. *)
let test_detection_missing () =
  let events =
    List.filter
      (function F.Schedule.Corrupt _ -> false | _ -> true)
      heal_schedule.F.Schedule.events
  in
  match F.Inject.check { heal_schedule with events } with
  | F.Inject.Missing kind ->
      Alcotest.(check string) "missing kind" F.Inject.detected_kind kind
  | _ -> Alcotest.fail "clean run accepted as detected-and-rejoined"

(* Payload corruption slips past the local guards and surfaces as a
   §6.6 divergence across the buffered copies. *)
let test_payload_diverges () =
  let sched =
    {
      F.Schedule.conf = base_conf "selfstab-payload" 183;
      events =
        [
          F.Schedule.Settle;
          F.Schedule.Traffic 2;
          F.Schedule.Settle;
          F.Schedule.Corrupt { target = 0; field = Endpoint.Payload; salt = 5 };
          F.Schedule.Settle;
          F.Schedule.Converged;
        ];
    }
  in
  let o = F.Inject.run sched in
  check "no local detection" true (Net_system.detections o.F.Inject.net = []);
  match o.F.Inject.verdict with
  | Error v -> check "6.6 family" true (starts_with ~prefix:"6.6" v.F.Inject.kind)
  | Ok () -> Alcotest.fail "scribbled payload went unnoticed globally"

(* Detection does not excuse divergence: a corruption healed inside an
   unhealed partition still fails the convergence question. *)
let test_heal_does_not_mask_divergence () =
  let sched =
    {
      F.Schedule.conf = base_conf "selfstab-partition" 185;
      events =
        [
          F.Schedule.Settle;
          F.Schedule.Traffic 1;
          F.Schedule.Partition
            [
              [ Node_id.Client 0; Node_id.Client 1; Node_id.Server 0 ];
              [ Node_id.Client 2; Node_id.Server 1 ];
            ];
          F.Schedule.Corrupt { target = 2; field = Endpoint.Last_dlvrd; salt = 9 };
          F.Schedule.Run 30;
          F.Schedule.Traffic 1;
          F.Schedule.Settle;
          F.Schedule.Converged;
        ];
    }
  in
  match (F.Inject.run sched).F.Inject.verdict with
  | Error { kind = "diverged"; _ } -> ()
  | Error v -> Alcotest.failf "wrong kind: %a" F.Inject.pp_violation v
  | Ok () -> Alcotest.fail "unhealed partition converged"

(* A tampered pin on a detected-and-rejoined schedule is fingerprint
   drift, not a pass. *)
let test_fingerprint_mismatch () =
  let pinned = F.Schedule.load "corpus/corrupt-heal.fault" in
  let tampered =
    {
      pinned with
      F.Schedule.conf =
        { pinned.F.Schedule.conf with fingerprint = Some "p0=feed:1|hub:0/0/0" };
    }
  in
  match F.Inject.check tampered with
  | F.Inject.Fingerprint_mismatch { expected = "p0=feed:1|hub:0/0/0"; _ } -> ()
  | _ -> Alcotest.fail "tampered fingerprint not flagged"

let suite =
  [
    Alcotest.test_case "reachable states pass the guards" `Quick
      test_reachable_states_pass;
    Alcotest.test_case "detectable corruptions are caught" `Quick
      test_detectable_corruptions_caught;
    Alcotest.test_case "payload corruption is locally invisible" `Quick
      test_payload_locally_invisible;
    Alcotest.test_case "corrupt rejects crashed end-points" `Quick
      test_corrupt_rejects_crashed;
    Alcotest.test_case "corruption field names round-trip" `Quick
      test_corruption_field_names;
    Alcotest.test_case "server guards" `Quick test_server_guards;
    Alcotest.test_case "corrupt, detect, rejoin, converge" `Quick
      test_detected_and_rejoined;
    Alcotest.test_case "missing detection is Missing" `Quick
      test_detection_missing;
    Alcotest.test_case "payload corruption diverges globally" `Quick
      test_payload_diverges;
    Alcotest.test_case "detection does not mask divergence" `Quick
      test_heal_does_not_mask_divergence;
    Alcotest.test_case "tampered pin is fingerprint drift" `Quick
      test_fingerprint_mismatch;
  ]
