(* Multicore executor coverage (DESIGN.md §17).

   1. Env parsing: VSGC_SCHED / VSGC_SANITIZE / VSGC_JOBS accept their
      documented values silently and reject everything else loudly —
      the parse functions return the default plus a warning instead of
      silently coercing.

   2. Dpool: indices are each processed exactly once whatever the
      width; the lowest-index exception is the one re-raised; nested
      [run] degrades to sequential instead of deadlocking.

   3. Bin.Pool domain-locality: concurrent encodes on distinct domains
      never share a scratch, so every frame decodes back to its packet.

   4. The tentpole property: [`Parallel] with deterministic merge
      produces fingerprints IDENTICAL to [`Rescan] — across random
      seeds, driving scripts and loopback fault knobs, at jobs 1 and
      jobs 2 (the generators are shared with test_hotpath_props, which
      pins [`Cached] = [`Rescan] for the same scripts).

   5. The racy engine: gated by greenness, not fingerprints — the full
      monitor battery and the §6/§7 invariants watch a racy run; the
      merged trace must also be reproducible and jobs-independent
      (group evolution depends only on group state and the group's
      keyed RNG stream, never on domain timing). *)

open Vsgc_types
module HP = Test_hotpath_props
module E = Vsgc_explore
module System = Vsgc_harness.System
module Net_system = Vsgc_harness.Net_system
module Executor = Vsgc_ioa.Executor
module Partition = Vsgc_ioa.Partition
module Dpool = Vsgc_ioa.Dpool
module Trace_stats = Vsgc_ioa.Trace_stats
module Loopback = Vsgc_net.Loopback
module Frame = Vsgc_wire.Frame
module Packet = Vsgc_wire.Packet

let with_sched mode merge jobs f =
  let m0 = Executor.get_default_mode () in
  let g0 = Executor.get_default_merge () in
  let j0 = Executor.get_default_jobs () in
  Executor.set_default_mode mode;
  Executor.set_default_merge merge;
  Executor.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () ->
      Executor.set_default_mode m0;
      Executor.set_default_merge g0;
      Executor.set_default_jobs j0)
    f

(* -- 1. Env parsing ------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_env_sched () =
  let accepted v mode merge =
    let (m, g), w = Executor.mode_of_env v in
    Alcotest.(check bool) (Fmt.str "%a accepted" Fmt.(Dump.option string) v) true (w = None);
    Alcotest.(check bool) "mode" true (m = mode && g = merge)
  in
  accepted None `Cached `Deterministic;
  accepted (Some "") `Cached `Deterministic;
  accepted (Some "cached") `Cached `Deterministic;
  accepted (Some "rescan") `Rescan `Deterministic;
  accepted (Some "parallel") `Parallel `Deterministic;
  accepted (Some "parallel-racy") `Parallel `Racy;
  let (m, g), w = Executor.mode_of_env (Some "bogus") in
  Alcotest.(check bool) "unknown falls back to default" true
    (m = `Cached && g = `Deterministic);
  (match w with
  | None -> Alcotest.fail "unknown VSGC_SCHED must warn"
  | Some msg ->
      Alcotest.(check bool) "warning names the accepted values" true
        (contains msg "rescan"))

let test_env_sanitize () =
  let accepted v policy =
    let p, w = Executor.sanitize_of_env v in
    Alcotest.(check bool) "accepted silently" true (w = None);
    Alcotest.(check bool) "policy" true (p = policy)
  in
  accepted None None;
  accepted (Some "") None;
  accepted (Some "0") None;
  accepted (Some "off") None;
  accepted (Some "collect") (Some `Collect);
  accepted (Some "raise") (Some `Raise);
  accepted (Some "on") (Some `Raise);
  accepted (Some "1") (Some `Raise);
  (* The historical trap: an unrecognized value used to silently turn
     the RAISING sanitizer on. Now it warns and stays off. *)
  let p, w = Executor.sanitize_of_env (Some "yes") in
  Alcotest.(check bool) "unknown stays off" true (p = None);
  Alcotest.(check bool) "unknown warns" true (w <> None)

let test_env_jobs () =
  let j, w = Executor.jobs_of_env (Some "4") in
  Alcotest.(check int) "4" 4 j;
  Alcotest.(check bool) "silent" true (w = None);
  List.iter
    (fun v ->
      let j, w = Executor.jobs_of_env (Some v) in
      Alcotest.(check int) (v ^ " falls back") 1 j;
      Alcotest.(check bool) (v ^ " warns") true (w <> None))
    [ "0"; "-3"; "many"; "2.5" ]

(* -- 2. Dpool ------------------------------------------------------------ *)

let test_dpool_covers () =
  let pool = Dpool.create ~jobs:3 in
  let hits = Array.make 999 0 in
  Dpool.run pool (fun i -> hits.(i) <- hits.(i) + 1) 999;
  Dpool.shutdown pool;
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_dpool_lowest_exn () =
  let pool = Dpool.create ~jobs:4 in
  let attempt () =
    Dpool.run pool
      (fun i -> if i mod 7 = 3 then failwith (string_of_int i))
      100
  in
  (match attempt () with
  | () -> Alcotest.fail "expected a failure"
  | exception Failure i -> Alcotest.(check string) "lowest failing index" "3" i);
  Dpool.shutdown pool

let test_dpool_nested () =
  let pool = Dpool.create ~jobs:3 in
  let acc = Array.make 16 0 in
  Dpool.run pool
    (fun i ->
      (* a nested fan-out from inside a task runs inline *)
      Dpool.run pool (fun j -> if j = i then acc.(i) <- i * i) 16)
    16;
  Dpool.shutdown pool;
  Alcotest.(check bool) "nested run completed" true
    (Array.for_all (fun i -> acc.(i) = i * i) (Array.init 16 Fun.id))

(* -- 3. Bin.Pool domain-locality ----------------------------------------- *)

let test_pool_per_domain () =
  let pool = Dpool.create ~jobs:4 in
  let frames = Array.make 128 Bytes.empty in
  Dpool.run pool
    (fun i ->
      (* several pooled encodes per index, concurrently across domains *)
      ignore (Frame.encode (Packet.Join (i * 7)));
      frames.(i) <- Frame.encode (Packet.Join i))
    128;
  Dpool.shutdown pool;
  Array.iteri
    (fun i b ->
      match Frame.decode b with
      | Ok pkt ->
          Alcotest.(check bool) (Fmt.str "frame %d round-trips" i) true
            (Packet.equal pkt (Packet.Join i))
      | Error e -> Alcotest.failf "frame %d: %s" i (Frame.error_to_string e))
    frames;
  Alcotest.(check bool) "pool counters visible across domains" true
    (Vsgc_types.Bin.Pool.allocated () > 0)

(* -- 4. parallel (deterministic merge) = rescan -------------------------- *)

let fingerprint_of sys =
  Trace_stats.fingerprint (Executor.trace (System.exec sys))

let parallel_equals_rescan (seed, ops) =
  let build mode jobs =
    with_sched mode `Deterministic jobs (fun () ->
        let sys = System.create ~seed ~n:3 ~layer:`Full ~monitors:`None () in
        E.Replay.replay sys (HP.entries_of_ops ops);
        ignore (System.run ~max_steps:50_000 sys);
        fingerprint_of sys)
  in
  let reference = build `Rescan 1 in
  String.equal reference (build `Parallel 1)
  && String.equal reference (build `Parallel 2)

let parallel_net_equals_rescan (seed, knobs) =
  let build mode jobs =
    with_sched mode `Deterministic jobs (fun () ->
        let net = Net_system.create ~seed ~knobs ~n:3 () in
        ignore (Net_system.reconfigure net ~set:(Proc.Set.of_range 0 2));
        Net_system.run net;
        Net_system.broadcast net ~senders:(Proc.Set.of_range 0 2) ~per_sender:2;
        Net_system.run net;
        ignore (Net_system.reconfigure net ~set:(Proc.Set.of_range 0 1));
        Net_system.run net;
        Net_system.fingerprint net)
  in
  let reference = build `Rescan 1 in
  String.equal reference (build `Parallel 1)
  && String.equal reference (build `Parallel 2)

(* -- 5. The racy engine -------------------------------------------------- *)

(* Full battery attached: every spec monitor plus the §6/§7 invariants
   (evaluated at barrier states). Any violation raises out of [run]. *)
let racy_run ~jobs ~seed =
  with_sched `Parallel `Racy jobs (fun () ->
      let sys = System.create ~seed ~n:4 ~layer:`Full ~monitors:`All () in
      System.attach_invariants sys;
      ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 3));
      ignore (System.run ~max_steps:30_000 sys);
      System.broadcast sys ~senders:(Proc.Set.of_range 0 3) ~per_sender:2;
      ignore (System.run ~max_steps:30_000 sys);
      ignore (System.reconfigure ~origin:1 sys ~set:(Proc.Set.of_range 0 2));
      ignore (System.run ~max_steps:30_000 sys);
      Executor.finish (System.exec sys);
      fingerprint_of sys)

let test_racy_green () =
  (* greenness is the assertion: monitors/invariants raise on red *)
  ignore (racy_run ~jobs:2 ~seed:4242)

let test_racy_deterministic () =
  let a = racy_run ~jobs:1 ~seed:77 in
  let b = racy_run ~jobs:2 ~seed:77 in
  let c = racy_run ~jobs:2 ~seed:77 in
  Alcotest.(check string) "jobs-independent" a b;
  Alcotest.(check string) "run-to-run reproducible" b c

let test_racy_rejects_sanitizer () =
  with_sched `Parallel `Racy 2 (fun () ->
      let sys =
        System.create ~seed:3 ~n:3 ~layer:`Full ~monitors:`None ()
      in
      ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
      let exec =
        Executor.create ~seed:3 ~sanitize:(Some `Collect)
          (Array.to_list (Executor.components (System.exec sys)))
      in
      match Executor.run exec with
      | _ -> Alcotest.fail "racy run with a sanitizer must be rejected"
      | exception Invalid_argument _ -> ())

(* -- 6. The planned partition vs the declared footprints ------------------ *)

(* Inline version of the `vet domains` audit: over the representative
   universe, any two actions internal to different planned groups must
   be footprint-independent. *)
let test_partition_audit () =
  let sys = System.create ~seed:7 ~n:3 ~layer:`Full ~monitors:`None () in
  let exec = System.exec sys in
  let comps = Executor.components exec in
  let universe = Vsgc_analysis.Universe.actions ~n:3 () in
  let part = Partition.compute ~probe:universe comps in
  let internal_group a =
    match Partition.participants comps a with
    | [] -> None
    | i0 :: rest ->
        let g = Partition.group_of part i0 in
        if List.for_all (fun i -> Partition.group_of part i = g) rest then Some g
        else None
  in
  let independent = Executor.independence exec in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match (internal_group a, internal_group b) with
          | Some ga, Some gb when ga <> gb ->
              Alcotest.(check bool)
                (Fmt.str "%a vs %a independent across groups" Action.pp a
                   Action.pp b)
                true (independent a b)
          | _ -> ())
        universe)
    universe

(* -- 7. Parallel explorer = sequential explorer --------------------------- *)

let all2 = Proc.Set.of_range 0 1

let explore_sched ?mutation ?(layer = `Full) name =
  {
    E.Schedule.name;
    expect = None;
    conf = E.Sysconf.make ~seed:42 ~layer ?mutation ~n:2 ();
    entries =
      [
        E.Schedule.Env (E.Schedule.Reconfigure { origin = 0; set = all2 });
        E.Schedule.Settle;
        E.Schedule.Env (E.Schedule.Send { from = 1; payload = "m1" });
        E.Schedule.Env (E.Schedule.Start_change all2);
        E.Schedule.Env (E.Schedule.Deliver_view { origin = 1; set = all2 });
      ];
  }

(* The finding must be canonical: a later subtree finding first cancels
   only later siblings, so the parallel search reports the same
   DFS-minimal schedule as the sequential one. *)
let test_explorer_same_finding () =
  let s = explore_sched ~mutation:Vsgc_core.Vs_rfifo_ts.No_sync_wait "nsw-par" in
  let seqr = E.Explorer.explore ~depth:4 s in
  let parr = E.Explorer.explore ~depth:4 ~jobs:3 s in
  match (seqr.E.Explorer.outcome, parr.E.Explorer.outcome) with
  | E.Explorer.Found (s1, v1), E.Explorer.Found (s2, v2) ->
      Alcotest.(check string) "same violation kind" v1.E.Replay.kind
        v2.E.Replay.kind;
      Alcotest.(check bool) "same DFS-minimal schedule" true
        (s1.E.Schedule.entries = s2.E.Schedule.entries)
  | o1, o2 ->
      Alcotest.failf "expected two findings, got %a / %a" E.Explorer.pp_outcome
        o1 E.Explorer.pp_outcome o2

let test_explorer_same_exhaustion () =
  let s = explore_sched "clean-par" in
  let seqr = E.Explorer.explore ~depth:3 s in
  let parr = E.Explorer.explore ~depth:3 ~jobs:4 s in
  (match (seqr.E.Explorer.outcome, parr.E.Explorer.outcome) with
  | E.Explorer.Exhausted, E.Explorer.Exhausted -> ()
  | o1, o2 ->
      Alcotest.failf "expected two exhaustions, got %a / %a"
        E.Explorer.pp_outcome o1 E.Explorer.pp_outcome o2);
  Alcotest.(check int) "identical states" seqr.E.Explorer.states
    parr.E.Explorer.states;
  Alcotest.(check int) "identical sleep skips" seqr.E.Explorer.sleep_skips
    parr.E.Explorer.sleep_skips

let suite =
  let q ?(count = 20) name arb prop =
    QCheck_alcotest.to_alcotest ~long:false
      ~rand:(Random.State.make [| 0x1907 |])
      (QCheck.Test.make ~count ~name arb prop)
  in
  [
    Alcotest.test_case "env: VSGC_SCHED parses loudly" `Quick test_env_sched;
    Alcotest.test_case "env: VSGC_SANITIZE parses loudly" `Quick test_env_sanitize;
    Alcotest.test_case "env: VSGC_JOBS parses loudly" `Quick test_env_jobs;
    Alcotest.test_case "dpool: every index exactly once" `Quick test_dpool_covers;
    Alcotest.test_case "dpool: lowest-index exception wins" `Quick
      test_dpool_lowest_exn;
    Alcotest.test_case "dpool: nested run degrades to inline" `Quick
      test_dpool_nested;
    Alcotest.test_case "bin.pool: domain-local scratch never crosses" `Quick
      test_pool_per_domain;
    q "parallel(det) = rescan: free-running + replay" HP.arb_case
      parallel_equals_rescan;
    q ~count:10 "parallel(det) = rescan: loopback x fault knobs"
      HP.arb_net_case parallel_net_equals_rescan;
    Alcotest.test_case "racy: full battery green" `Quick test_racy_green;
    Alcotest.test_case "racy: deterministic and jobs-independent" `Quick
      test_racy_deterministic;
    Alcotest.test_case "racy: sanitizer rejected" `Quick
      test_racy_rejects_sanitizer;
    Alcotest.test_case "partition: footprints disjoint across groups" `Quick
      test_partition_audit;
    Alcotest.test_case "explorer: parallel finds the sequential finding"
      `Quick test_explorer_same_finding;
    Alcotest.test_case "explorer: parallel exhausts identically" `Quick
      test_explorer_same_exhaustion;
  ]
