(* The KV service subsystem (DESIGN.md §15): the latency histogram's
   error bound, the incremental store against the replica's pure fold,
   strict codec drift, open-loop load mechanics, and the scripted
   loopback deployment — batched and unbatched stable delivery must
   produce byte-identical stores while batching strictly reduces
   apply rounds. *)

open Vsgc_types
module System = Vsgc_harness.System
module Replica = Vsgc_replication.Replica
module Tord_client = Vsgc_totalorder.Tord_client
module Histogram = Vsgc_kv.Histogram
module Kv_store = Vsgc_kv.Kv_store
module Kv_load = Vsgc_kv.Kv_load
module Kv_system = Vsgc_kv.Kv_system
module Node_id = Vsgc_wire.Node_id

(* -- Histogram ------------------------------------------------------------- *)

let test_hist_small_exact () =
  let h = Histogram.create () in
  for v = 0 to 15 do
    Histogram.add h v
  done;
  Alcotest.(check int) "count" 16 (Histogram.count h);
  Alcotest.(check int) "p50 exact below 16" 7 (Histogram.percentile h 0.5);
  Alcotest.(check int) "p100 is max" 15 (Histogram.percentile h 1.0);
  Alcotest.(check int) "p0 still covers rank 1" 0 (Histogram.percentile h 0.0)

let test_hist_error_bound () =
  (* A percentile read never understates, and overstates by at most one
     sub-bucket (1/16th of the value's magnitude). *)
  let v = ref 3 in
  for _ = 1 to 200 do
    v := ((!v * 7) + 13) mod 1_000_000;
    let v = !v in
    let h = Histogram.create () in
    Histogram.add h v;
    let p = Histogram.percentile h 1.0 in
    Alcotest.(check int) (Fmt.str "singleton p100 exact for %d" v) v p;
    Histogram.add h (v + 1 + (2 * v));
    (* now v is the median; the read may round up within its bucket *)
    let p50 = Histogram.percentile h 0.5 in
    Alcotest.(check bool)
      (Fmt.str "p50 >= %d" v)
      true (p50 >= v);
    Alcotest.(check bool)
      (Fmt.str "p50 %d within a sub-bucket of %d" p50 v)
      true
      (p50 - v <= max 1 (v / 16))
  done

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 3 ];
  List.iter (Histogram.add b) [ 1000; 2000 ];
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  Alcotest.(check int) "merged max" 2000 (Histogram.max_value a);
  Alcotest.(check bool) "merged p99 near max" true
    (Histogram.percentile a 0.99 >= 2000)

(* -- Kv_store vs the replica's pure fold ----------------------------------- *)

let build ?strict ~seed ~n () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed ~n
      ~client_builder:(fun p ->
        let c, r = Replica.component ?strict p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  (sys, fun p -> Hashtbl.find refs p)

(* Queue a raw (possibly undecodable) payload for ordered multicast,
   the same out-of-band idiom as [Replica.set]. *)
let push_raw (r : Replica.t ref) payload =
  let tc = ref !r.Replica.tc in
  Tord_client.push tc payload;
  r := { !r with Replica.tc = !tc }

let test_store_matches_fold () =
  (* Split-brain, writes on both sides, merge (snapshot transfer), more
     writes — then the incremental store fed from the cursor must agree
     with the pure fold on every replica. *)
  let sys, rep = build ~seed:311 ~n:4 () in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  Replica.set (rep 0) ~key:"left" ~value:"l";
  Replica.write (rep 2) ~client:9 ~seq:0 ~key:"right" ~value:"r";
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  Replica.write (rep 3) ~client:9 ~seq:1 ~key:"after" ~value:"!";
  System.settle sys;
  List.iter
    (fun p ->
      let r = !(rep p) in
      let store = Kv_store.create () in
      List.iter
        (fun payload -> ignore (Kv_store.apply store payload))
        (Replica.ordered_from r 0);
      Alcotest.(check string)
        (Fmt.str "store digest = fold digest at %d" p)
        (Kv_store.digest_map (Replica.state r))
        (Kv_store.digest store);
      Alcotest.(check int)
        (Fmt.str "store version = fold version at %d" p)
        (Replica.version r) (Kv_store.version store);
      Alcotest.(check bool)
        (Fmt.str "write id applied at %d" p)
        true
        (Kv_store.applied store ~client:9 ~seq:1))
    [ 0; 1; 2; 3 ]

let test_store_dedups_write_ids () =
  let store = Kv_store.create () in
  let w = Replica.encode_write ~client:7 ~seq:3 ~key:"k" ~value:"v1" in
  Alcotest.(check bool) "first apply yields id" true
    (Kv_store.apply store w = Some (7, 3));
  Alcotest.(check bool) "second apply yields id again" true
    (Kv_store.apply store w = Some (7, 3));
  Alcotest.(check int) "one distinct id" 1 (Kv_store.applied_count store);
  Alcotest.(check int) "one duplicate" 1 (Kv_store.dups store);
  ignore (Kv_store.apply store "Zgarbage");
  Alcotest.(check int) "unknown tolerated" 1 (Kv_store.unknowns store);
  Alcotest.(check int) "commands counted" 3 (Kv_store.commands store)

(* -- Strict codec drift (ISSUE satellite: no silent Unknowns) -------------- *)

let test_nonstrict_counts_unknowns () =
  let sys, rep = build ~strict:false ~seed:411 ~n:3 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  push_raw (rep 0) "Zmystery-command";
  Replica.set (rep 1) ~key:"ok" ~value:"1";
  System.settle sys;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Fmt.str "unknown counted at %d" p)
        1
        (Replica.unknowns !(rep p)))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "good write still applied" true
    (Replica.get !(rep 2) "ok" = Some "1")

let test_strict_raises_on_unknown () =
  (* The component default: an undecodable command reaching the totally
     ordered log is a codec bug, not data. *)
  let sys, rep = build ~strict:true ~seed:412 ~n:2 () in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  push_raw (rep 0) "Zmystery-command";
  let raised =
    try
      System.settle sys;
      false
    with Replica.Codec_drift _ -> true
  in
  Alcotest.(check bool) "Codec_drift raised" true raised

(* -- Open-loop load mechanics ---------------------------------------------- *)

let conf ?(client = 100) ?(rate = 2.0) ?(count = 10) ?(key_space = 10)
    ?(value_bytes = 8) ?(retransmit_after = 0.) () =
  { Kv_load.client; rate; count; key_space; value_bytes; retransmit_after }

let test_load_open_loop_schedule () =
  let g = Kv_load.create ~start:0. (conf ~rate:2.0 ~count:10 ()) in
  Alcotest.(check int) "one due at t=0" 1 (List.length (Kv_load.due g ~now:0.));
  (* open loop: t=1 owes seq 1 (0.5) and seq 2 (1.0) even with nothing
     acked yet *)
  Alcotest.(check int) "two due at t=1" 2 (List.length (Kv_load.due g ~now:1.));
  Alcotest.(check int) "sent" 3 (Kv_load.sent g);
  Alcotest.(check int) "outstanding" 3 (Kv_load.outstanding g);
  (* a long stall does not throttle the offered rate *)
  Alcotest.(check int) "rest due at t=100" 7
    (List.length (Kv_load.due g ~now:100.));
  Alcotest.(check bool) "all sent" true (Kv_load.all_sent g);
  Alcotest.(check bool) "not finished until acked" false (Kv_load.finished g)

let test_load_ack_dedup_and_stall () =
  let g = Kv_load.create ~start:0. (conf ~rate:1.0 ~count:3 ()) in
  ignore (Kv_load.due g ~now:2.);
  let ack seq now =
    Kv_load.on_response g ~now
      (Vsgc_wire.Kv_msg.Put_ack { client = 100; seq })
  in
  ack 0 3.;
  ack 0 10.;
  (* duplicate: dropped, no stall update *)
  ack 1 10.;
  ack 2 11.;
  Alcotest.(check int) "acked dedups" 3 (Kv_load.acked g);
  Alcotest.(check int) "dup counted" 1 (Kv_load.dup_acks g);
  Alcotest.(check bool) "finished" true (Kv_load.finished g);
  (* stalls: 3-0, 10-3, 11-10 *)
  Alcotest.(check bool) "max stall is 7" true (Kv_load.max_stall g = 7.);
  let s = Kv_load.stats g in
  Alcotest.(check int) "p999 = max latency" s.Kv_load.max_latency
    s.Kv_load.p999;
  Alcotest.(check bool) "acked ids sorted" true
    (Kv_load.acked_ids g = [ (100, 0); (100, 1); (100, 2) ])

let test_load_retransmit () =
  let g =
    Kv_load.create ~start:0. (conf ~rate:10.0 ~count:1 ~retransmit_after:5. ())
  in
  Alcotest.(check int) "issue" 1 (List.length (Kv_load.due g ~now:0.));
  Alcotest.(check int) "not yet due for retx" 0
    (List.length (Kv_load.due g ~now:4.));
  Alcotest.(check int) "retransmitted" 1 (List.length (Kv_load.due g ~now:6.));
  Alcotest.(check int) "counted" 1 (Kv_load.retransmits g);
  (* latency still measured from FIRST emission *)
  Kv_load.on_response g ~now:8.
    (Vsgc_wire.Kv_msg.Put_ack { client = 100; seq = 0 });
  Alcotest.(check int) "latency from first send" 8
    (Histogram.max_value (Kv_load.histogram g))

(* -- The loopback deployment ----------------------------------------------- *)

let check_clean ~what (r : Kv_system.report) =
  Alcotest.(check int) (what ^ ": all acked") r.Kv_system.sent
    r.Kv_system.acked;
  Alcotest.(check int) (what ^ ": zero lost acks") 0 r.Kv_system.lost_acks;
  Alcotest.(check bool) (what ^ ": stores converged") true
    r.Kv_system.converged

let test_slo_quiet_run () =
  let r =
    Kv_system.slo_run ~seed:21 ~n:3 ~n_servers:1 ~homes:[ 0; 1 ] ~clients:2
      ~rate:0.5 ~count:30 ()
  in
  check_clean ~what:"quiet" r;
  Alcotest.(check int) "both loads issued fully" 60 r.Kv_system.sent;
  Alcotest.(check int) "three live stores" 3
    (List.length r.Kv_system.digests);
  Alcotest.(check bool) "latency measured" true (r.Kv_system.p50 > 0)

let partition_script =
  [
    ( 40,
      Kv_system.Partition
        [
          [ Node_id.Client 0; Node_id.Client 2; Node_id.Server 0 ];
          [ Node_id.Client 1; Node_id.Server 1 ];
        ] );
    (160, Kv_system.Heal);
  ]

let slo_partition ~batch () =
  Kv_system.slo_run ~seed:22 ~batch ~n:3 ~n_servers:2 ~homes:[ 0; 2 ]
    ~clients:2 ~rate:1.0 ~count:60 ~script:partition_script ()

let test_slo_partition_heal () =
  let r = slo_partition ~batch:false () in
  check_clean ~what:"partition-heal" r;
  (* the minority-side stall is visible but bounded: delivery resumed *)
  Alcotest.(check bool) "some stall observed" true (r.Kv_system.max_stall > 0.)

let test_slo_crash_rejoin () =
  let r =
    Kv_system.slo_run ~seed:23 ~n:3 ~n_servers:2 ~homes:[ 0; 1 ] ~clients:2
      ~rate:0.5 ~count:40
      ~script:[ (30, Kv_system.Crash 2); (120, Kv_system.Restart 2) ]
      ()
  in
  check_clean ~what:"crash-rejoin" r;
  (* the reborn node refolded to the same store as everyone else *)
  Alcotest.(check int) "all three stores back" 3
    (List.length r.Kv_system.digests)

let test_batched_equals_unbatched () =
  (* The tentpole equality: same seed, same schedule, same fault script
     — coalesced stable delivery must produce byte-identical stores
     while doing strictly fewer apply+ack rounds. *)
  let u = slo_partition ~batch:false () in
  let b = slo_partition ~batch:true () in
  check_clean ~what:"unbatched arm" u;
  check_clean ~what:"batched arm" b;
  List.iter2
    (fun (p, du) (p', db) ->
      Alcotest.(check int) "same proc" p p';
      Alcotest.(check string) (Fmt.str "digest at %d identical" p) du db)
    u.Kv_system.digests b.Kv_system.digests;
  Alcotest.(check bool)
    (Fmt.str "batched apply rounds %d < unbatched %d"
       b.Kv_system.apply_rounds u.Kv_system.apply_rounds)
    true
    (b.Kv_system.apply_rounds < u.Kv_system.apply_rounds);
  Alcotest.(check bool)
    (Fmt.str "batched wire %d <= unbatched %d" b.Kv_system.wire_delivered
       u.Kv_system.wire_delivered)
    true
    (b.Kv_system.wire_delivered <= u.Kv_system.wire_delivered)

let suite =
  [
    Alcotest.test_case "histogram: exact below 16" `Quick test_hist_small_exact;
    Alcotest.test_case "histogram: bounded error" `Quick test_hist_error_bound;
    Alcotest.test_case "histogram: merge" `Quick test_hist_merge;
    Alcotest.test_case "store matches the pure fold" `Quick
      test_store_matches_fold;
    Alcotest.test_case "store dedups write ids" `Quick
      test_store_dedups_write_ids;
    Alcotest.test_case "non-strict replica counts unknowns" `Quick
      test_nonstrict_counts_unknowns;
    Alcotest.test_case "strict replica raises on unknown" `Quick
      test_strict_raises_on_unknown;
    Alcotest.test_case "load: open-loop schedule" `Quick
      test_load_open_loop_schedule;
    Alcotest.test_case "load: ack dedup and stall" `Quick
      test_load_ack_dedup_and_stall;
    Alcotest.test_case "load: retransmit" `Quick test_load_retransmit;
    Alcotest.test_case "slo: quiet run" `Quick test_slo_quiet_run;
    Alcotest.test_case "slo: partition-heal" `Quick test_slo_partition_heal;
    Alcotest.test_case "slo: crash-rejoin" `Quick test_slo_crash_rejoin;
    Alcotest.test_case "batched = unbatched, fewer rounds" `Quick
      test_batched_equals_unbatched;
  ]
