(* Wire-codec properties.

   Round-trips: decode (encode m) = Ok m for every codec, on
   generated values covering all constructors. Totality: decoding
   arbitrary bytes — random, truncated, or bit-flipped valid
   encodings — returns a result, never raises; across well over the
   10k inputs the acceptance bar asks for. *)

open Vsgc_types
module Packet = Vsgc_wire.Packet
module Frame = Vsgc_wire.Frame
module Node_id = Vsgc_wire.Node_id
module Kv_msg = Vsgc_wire.Kv_msg
module Sym_msg = Vsgc_wire.Sym_msg
module Gen = QCheck.Gen

(* -- Generators ---------------------------------------------------------- *)

let gen_proc = Gen.int_range 0 20
let gen_server = Gen.int_range 0 7
let gen_sc_id = Gen.int_range 0 50

let gen_vid =
  Gen.map2
    (fun num origin -> View.Id.make ~num ~origin)
    (Gen.int_range 0 100) (Gen.int_range 0 5)

let gen_proc_set =
  Gen.map Proc.Set.of_list (Gen.list_size (Gen.int_range 0 6) gen_proc)

let gen_view =
  Gen.map2
    (fun id bindings ->
      let start_ids =
        List.fold_left
          (fun m (p, c) -> Proc.Map.add p c m)
          Proc.Map.empty bindings
      in
      View.make ~id ~set:(Proc.Map.key_set start_ids) ~start_ids)
    gen_vid
    (Gen.list_size (Gen.int_range 1 6) (Gen.pair gen_proc gen_sc_id))

let gen_payload = Gen.string_size ~gen:Gen.char (Gen.int_range 0 16)
let gen_app = Gen.map Msg.App_msg.make gen_payload

let gen_cut =
  Gen.map Msg.Cut.of_bindings
    (Gen.list_size (Gen.int_range 0 5) (Gen.pair gen_proc (Gen.int_range 0 30)))

let gen_sync_entry =
  Gen.map
    (fun (origin, cid, sview, cut) -> { Msg.Wire.origin; cid; sview; cut })
    (Gen.quad gen_proc gen_sc_id gen_view gen_cut)

let gen_wire =
  Gen.frequency
    [
      (2, Gen.map (fun v -> Msg.Wire.View_msg v) gen_view);
      (4, Gen.map (fun m -> Msg.Wire.App m) gen_app);
      ( 2,
        Gen.map
          (fun (origin, view, index, msg) ->
            Msg.Wire.Fwd { origin; view; index; msg })
          (Gen.quad gen_proc gen_view (Gen.int_range 0 100) gen_app) );
      ( 2,
        Gen.map
          (fun (cid, view, cut) -> Msg.Wire.Sync { cid; view; cut })
          (Gen.triple gen_sc_id gen_view gen_cut) );
      ( 1,
        Gen.map
          (fun es -> Msg.Wire.Sync_batch es)
          (Gen.list_size (Gen.int_range 0 4) gen_sync_entry) );
      ( 1,
        Gen.map
          (fun (vid, view, cut) -> Msg.Wire.Bsync { vid; view; cut })
          (Gen.triple gen_vid gen_view gen_cut) );
    ]

let gen_srv_msg =
  Gen.frequency
    [
      ( 2,
        Gen.map2
          (fun (round, from, servers) (clients, members, max_vid) ->
            let clients =
              List.fold_left
                (fun m (p, c) -> Proc.Map.add p c m)
                Proc.Map.empty clients
            in
            Srv_msg.Proposal
              {
                round;
                from;
                servers = Server.Set.of_list servers;
                clients;
                members = Proc.Set.of_list members;
                max_vid;
              })
          (Gen.triple (Gen.int_range 0 50) gen_server
             (Gen.list_size (Gen.int_range 0 4) gen_server))
          (Gen.triple
             (Gen.list_size (Gen.int_range 0 4) (Gen.pair gen_proc gen_sc_id))
             (Gen.list_size (Gen.int_range 0 5) gen_proc)
             gen_vid) );
      (1, Gen.map (fun v -> Srv_msg.Commit v) gen_view);
    ]

let gen_node_id =
  Gen.oneof
    [
      Gen.map (fun p -> Node_id.Client p) gen_proc;
      Gen.map (fun s -> Node_id.Server s) gen_server;
      Gen.map (fun c -> Node_id.Kv_client c) (Gen.int_range 0 500);
    ]

let gen_kv_req =
  let gen_id = Gen.pair (Gen.int_range 0 500) (Gen.int_range 0 10_000) in
  Gen.oneof
    [
      Gen.map2
        (fun (client, seq) (key, value) -> Kv_msg.Put { client; seq; key; value })
        gen_id (Gen.pair gen_payload gen_payload);
      Gen.map2
        (fun (client, seq) key -> Kv_msg.Get { client; seq; key })
        gen_id gen_payload;
    ]

let gen_kv_resp =
  let gen_id = Gen.pair (Gen.int_range 0 500) (Gen.int_range 0 10_000) in
  Gen.oneof
    [
      Gen.map (fun (client, seq) -> Kv_msg.Put_ack { client; seq }) gen_id;
      Gen.map2
        (fun (client, seq) value -> Kv_msg.Get_reply { client; seq; value })
        gen_id
        (Gen.option gen_payload);
    ]

(* Symmetric-arm timestamps start at 1 and the decoder rejects ts <= 0,
   so the generator stays in the valid range; bad timestamps get their
   own directed case below. *)
let gen_sym_ts = Gen.int_range 1 1_000_000

let gen_sym =
  Gen.frequency
    [
      ( 4,
        Gen.map2 (fun ts body -> Sym_msg.Data { ts; body }) gen_sym_ts
          gen_payload );
      (2, Gen.map (fun ts -> Sym_msg.Ack { ts }) gen_sym_ts);
      ( 2,
        Gen.map
          (fun (ts, view, digest) -> Sym_msg.Flush { ts; view; digest })
          (Gen.triple gen_sym_ts gen_vid gen_payload) );
    ]

let gen_packet =
  Gen.frequency
    [
      (1, Gen.map (fun id -> Packet.Hello id) gen_node_id);
      ( 4,
        Gen.map2 (fun from wire -> Packet.Rf { from; wire }) gen_proc gen_wire
      );
      ( 2,
        Gen.map2 (fun from msg -> Packet.Srv { from; msg }) gen_server
          gen_srv_msg );
      (1, Gen.map (fun p -> Packet.Join p) gen_proc);
      (1, Gen.map (fun p -> Packet.Leave p) gen_proc);
      ( 1,
        Gen.map
          (fun (target, cid, set) -> Packet.Start_change { target; cid; set })
          (Gen.triple gen_proc gen_sc_id gen_proc_set) );
      ( 1,
        Gen.map2
          (fun target view -> Packet.View { target; view })
          gen_proc gen_view );
      (1, Gen.map (fun req -> Packet.Kv_req req) gen_kv_req);
      (1, Gen.map (fun resp -> Packet.Kv_resp resp) gen_kv_resp);
    ]

(* -- Round-trip properties ----------------------------------------------- *)

let roundtrip ~name ~count gen write read equal pp =
  QCheck.Test.make ~name ~count (QCheck.make gen ~print:(Fmt.str "%a" pp))
    (fun v ->
      match Bin.run read (Bin.to_bytes write v) with
      | Ok v' -> equal v v'
      | Error e -> QCheck.Test.fail_reportf "decode error: %a" Bin.pp_error e)

let prop_view =
  roundtrip ~name:"view roundtrip" ~count:500 gen_view View.write View.read
    View.equal View.pp

let prop_wire =
  roundtrip ~name:"wire msg roundtrip" ~count:1000 gen_wire Msg.Wire.write
    Msg.Wire.read Msg.Wire.equal Msg.Wire.pp

let prop_srv_msg =
  roundtrip ~name:"srv msg roundtrip" ~count:1000 gen_srv_msg Srv_msg.write
    Srv_msg.read Srv_msg.equal Srv_msg.pp

let prop_node_id =
  roundtrip ~name:"node id roundtrip" ~count:200 gen_node_id Node_id.write
    Node_id.read Node_id.equal Node_id.pp

let prop_kv_req =
  roundtrip ~name:"kv request roundtrip" ~count:1000 gen_kv_req
    Kv_msg.write_request Kv_msg.read_request Kv_msg.request_equal
    Kv_msg.pp_request

let prop_kv_resp =
  roundtrip ~name:"kv response roundtrip" ~count:1000 gen_kv_resp
    Kv_msg.write_response Kv_msg.read_response Kv_msg.response_equal
    Kv_msg.pp_response

let prop_packet =
  roundtrip ~name:"packet roundtrip" ~count:1000 gen_packet Packet.write
    Packet.read Packet.equal Packet.pp

let prop_sym =
  roundtrip ~name:"sym msg roundtrip" ~count:1000 gen_sym Sym_msg.write
    Sym_msg.read Sym_msg.equal Sym_msg.pp

(* The payload edge the symmetric arm actually travels through: encode
   into an opaque App_msg payload string and decode it back out. *)
let prop_sym_payload =
  QCheck.Test.make ~name:"sym payload roundtrip" ~count:500
    (QCheck.make gen_sym ~print:(Fmt.str "%a" Sym_msg.pp))
    (fun m ->
      let app = Msg.App_msg.make (Sym_msg.to_payload m) in
      match Sym_msg.of_payload (Msg.App_msg.payload app) with
      | Ok m' -> Sym_msg.equal m m'
      | Error e ->
          QCheck.Test.fail_reportf "payload decode error: %a" Bin.pp_error e)

let prop_frame =
  QCheck.Test.make ~name:"frame roundtrip" ~count:1000
    (QCheck.make gen_packet ~print:Packet.to_string) (fun pkt ->
      match Frame.decode (Frame.encode pkt) with
      | Ok pkt' -> Packet.equal pkt pkt'
      | Error e -> QCheck.Test.fail_reportf "frame error: %a" Frame.pp_error e)

(* Every strict prefix of a framed packet is rejected, not misparsed. *)
let prop_prefix =
  QCheck.Test.make ~name:"strict prefixes never decode" ~count:300
    (QCheck.make
       Gen.(pair gen_packet (float_bound_inclusive 1.0))
       ~print:(fun (pkt, f) -> Fmt.str "%a@%f" Packet.pp pkt f))
    (fun (pkt, f) ->
      let b = Frame.encode pkt in
      let k = int_of_float (f *. float_of_int (Bytes.length b - 1)) in
      match Frame.decode (Bytes.sub b 0 k) with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "prefix of length %d decoded" k)

(* -- Totality (fuzz) ----------------------------------------------------- *)

(* Feed [n] adversarial inputs to every total entry point; the only
   acceptable outcomes are Ok and Error. Inputs: uniform random bytes,
   random bytes behind a valid frame header, and single-byte
   corruptions of valid encodings. *)
let test_fuzz_total () =
  let rng = Vsgc_ioa.Rng.make 0xf00d in
  let random_bytes len =
    Bytes.init len (fun _ -> Char.chr (Vsgc_ioa.Rng.int rng 256))
  in
  let decoders : (string * (bytes -> bool)) list =
    [
      ("packet", fun b -> Result.is_ok (Packet.of_bytes b));
      ("frame", fun b -> Result.is_ok (Frame.decode b));
      ("wire", fun b -> Result.is_ok (Bin.run Msg.Wire.read b));
      ("srv_msg", fun b -> Result.is_ok (Bin.run Srv_msg.read b));
      ("view", fun b -> Result.is_ok (Bin.run View.read b));
      ("kv_req", fun b -> Result.is_ok (Bin.run Kv_msg.read_request b));
      ("kv_resp", fun b -> Result.is_ok (Bin.run Kv_msg.read_response b));
      ("sym_msg", fun b -> Result.is_ok (Sym_msg.of_bytes b));
    ]
  in
  let oks = ref 0 and errs = ref 0 in
  let feed b =
    List.iter
      (fun (what, d) ->
        match d b with
        | true -> incr oks
        | false -> incr errs
        | exception exn ->
            Alcotest.failf "%s decoder raised %s on %d bytes" what
              (Printexc.to_string exn) (Bytes.length b))
      decoders
  in
  (* 1. uniform random inputs *)
  for _ = 1 to 6_000 do
    feed (random_bytes (Vsgc_ioa.Rng.int rng 65))
  done;
  (* 2. random bodies behind a valid frame header *)
  for _ = 1 to 3_000 do
    let body = random_bytes (Vsgc_ioa.Rng.int rng 48) in
    let b = Bin.Wbuf.create 64 in
    Bin.Wbuf.add_string b "VG";
    Bin.w_u8 b Frame.version;
    Bin.w_u32 b (Bytes.length body);
    Bin.Wbuf.add_string b (Bytes.to_string body);
    feed (Bin.Wbuf.to_bytes b)
  done;
  (* 3. single-byte corruptions of valid frames *)
  let sample =
    [
      Packet.Join 3;
      Packet.Hello (Node_id.Server 1);
      Packet.Rf
        {
          from = 0;
          wire =
            Msg.Wire.Sync
              {
                cid = 2;
                view = View.initial 0;
                cut = Msg.Cut.of_bindings [ (1, 4) ];
              };
        };
      Packet.View { target = 1; view = View.initial 1 };
      Packet.Kv_req (Kv_msg.Put { client = 1; seq = 2; key = "k"; value = "v" });
      Packet.Kv_resp (Kv_msg.Get_reply { client = 1; seq = 2; value = None });
      Packet.Rf
        {
          from = 2;
          wire =
            Msg.Wire.App
              (Msg.App_msg.make
                 (Sym_msg.to_payload (Sym_msg.Data { ts = 7; body = "sym" })));
        };
    ]
  in
  for _ = 1 to 3_000 do
    let pkt = Vsgc_ioa.Rng.pick rng sample in
    let b = Frame.encode pkt in
    let i = Vsgc_ioa.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Vsgc_ioa.Rng.int rng 256));
    feed b
  done;
  Alcotest.(check int)
    (Fmt.str "every input produced a result (ok=%d err=%d)" !oks !errs)
    (12_000 * List.length decoders)
    (!oks + !errs)

(* -- Directed cases ------------------------------------------------------ *)

let test_bad_tag () =
  let b = Bytes.of_string "\xff" in
  (match Bin.run Msg.Wire.read b with
  | Error (Bin.Bad_tag { what = "wire"; tag = 255 }) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Bin.pp_error e
  | Ok _ -> Alcotest.fail "tag 255 decoded");
  match Packet.of_bytes (Bytes.of_string "\x00") with
  | Error (Bin.Bad_tag { what = "packet"; tag = 0 }) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Bin.pp_error e
  | Ok _ -> Alcotest.fail "tag 0 decoded"

let test_trailing_rejected () =
  let b = Packet.to_bytes (Packet.Join 1) in
  let b' = Bytes.cat b (Bytes.of_string "x") in
  match Packet.of_bytes b' with
  | Error (Bin.Trailing { extra = 1 }) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Bin.pp_error e
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let test_frame_header_errors () =
  let pkt = Packet.Leave 2 in
  let f = Frame.encode pkt in
  let bad_magic = Bytes.copy f in
  Bytes.set bad_magic 0 'X';
  (match Frame.decode bad_magic with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let bad_version = Bytes.copy f in
  Bytes.set bad_version 2 '\x63';
  (match Frame.decode bad_version with
  | Error (Frame.Bad_version 0x63) -> ()
  | _ -> Alcotest.fail "bad version accepted");
  let oversize = Bytes.copy f in
  Bytes.set oversize 3 '\xff';
  match Frame.decode oversize with
  | Error (Frame.Oversize _) -> ()
  | _ -> Alcotest.fail "oversize length accepted"

(* The incremental feeder yields the same packets the sender framed,
   whatever the chunking. *)
let test_feeder_chunked () =
  let pkts =
    [
      Packet.Hello (Node_id.Client 0);
      Packet.Join 0;
      Packet.Rf { from = 0; wire = Msg.Wire.App (Msg.App_msg.make "payload") };
      Packet.View { target = 0; view = View.initial 0 };
      Packet.Leave 0;
    ]
  in
  let stream = Bytes.concat Bytes.empty (List.map Frame.encode pkts) in
  List.iter
    (fun chunk ->
      let f = Frame.feeder () in
      let got = ref [] in
      let drain () =
        let rec go () =
          match Frame.next f with
          | Some (Ok pkt) ->
              got := pkt :: !got;
              go ()
          | Some (Error e) -> Alcotest.failf "feeder error %a" Frame.pp_error e
          | None -> ()
        in
        go ()
      in
      let len = Bytes.length stream in
      let off = ref 0 in
      while !off < len do
        let k = Stdlib.min chunk (len - !off) in
        Frame.feed f stream ~off:!off ~len:k;
        drain ();
        off := !off + k
      done;
      let got = List.rev !got in
      Alcotest.(check int)
        (Fmt.str "all packets at chunk %d" chunk)
        (List.length pkts) (List.length got);
      Alcotest.(check bool)
        (Fmt.str "identical at chunk %d" chunk)
        true
        (List.for_all2 Packet.equal pkts got))
    [ 1; 2; 3; 7; 16; 64; 100_000 ]

(* Adversarial chunking, as a property: for a generated packet train,
   split the concatenated byte stream at EVERY boundary — each split
   feeds the two halves separately — and require the feeder to hand
   back the identical packets each time. A trailing-garbage variant
   must yield the packets and then exactly one decode error. *)
let prop_feeder_adversarial =
  let gen_train = Gen.list_size (Gen.int_range 1 4) gen_packet in
  QCheck.Test.make ~name:"feeder: every split point decodes identically"
    ~count:60
    (QCheck.make gen_train
       ~print:(Fmt.str "%a" (Fmt.Dump.list Packet.pp)))
    (fun pkts ->
      let stream = Bytes.concat Bytes.empty (List.map Frame.encode pkts) in
      let len = Bytes.length stream in
      let drain f =
        let rec go acc errs =
          match Frame.next f with
          | Some (Ok pkt) -> go (pkt :: acc) errs
          | Some (Error _) -> go acc (errs + 1)
          | None -> (List.rev acc, errs)
        in
        go [] 0
      in
      let feed_split k ~garbage =
        let f = Frame.feeder () in
        Frame.feed f stream ~off:0 ~len:k;
        let got1, errs1 = drain f in
        Frame.feed f stream ~off:k ~len:(len - k);
        (* a full header's worth of junk, so the feeder can rule on it *)
        if garbage then
          Frame.feed f
            (Bytes.of_string "\xde\xad\xbe\xef\xde\xad\xbe\xef")
            ~off:0 ~len:8;
        let got2, errs2 = drain f in
        (got1 @ got2, errs1 + errs2)
      in
      let check_split k ~garbage =
        let got, errs = feed_split k ~garbage in
        let want_errs = if garbage then 1 else 0 in
        if errs <> want_errs then
          QCheck.Test.fail_reportf "split %d/%d: %d decode errors (want %d)" k
            len errs want_errs;
        if
          List.length got <> List.length pkts
          || not (List.for_all2 Packet.equal pkts got)
        then
          QCheck.Test.fail_reportf
            "split %d/%d: %d packets out for %d in (garbage=%b)" k len
            (List.length got) (List.length pkts) garbage
      in
      for k = 0 to len do
        check_split k ~garbage:false
      done;
      (* trailing garbage after a complete train: sampled splits keep
         the quadratic-ish cost honest *)
      List.iter
        (fun k -> check_split k ~garbage:true)
        [ 0; len / 3; len / 2; len - 1; len ];
      true)

(* Non-positive timestamps are a decode error, not a value: the
   symmetric arm's per-sender Lamport clocks start at 1, so ts <= 0 in
   any constructor marks a corrupt or forged message. *)
let test_sym_bad_ts () =
  let craft tag ts =
    let b = Bin.Wbuf.create 16 in
    Bin.w_u8 b tag;
    Bin.w_int b ts;
    if tag = 1 then Bin.w_string b "body";
    Bin.Wbuf.to_bytes b
  in
  List.iter
    (fun (tag, ts) ->
      match Sym_msg.of_bytes (craft tag ts) with
      | Error (Bin.Bad_value { what = "sym_msg.ts"; _ }) -> ()
      | Error e ->
          Alcotest.failf "tag %d ts=%d: unexpected error %a" tag ts Bin.pp_error
            e
      | Ok m -> Alcotest.failf "tag %d ts=%d decoded as %a" tag ts Sym_msg.pp m)
    [ (1, 0); (1, -1); (2, 0); (2, -4096) ];
  match Sym_msg.of_bytes (Bytes.of_string "\x09") with
  | Error (Bin.Bad_tag { what = "sym_msg"; tag = 9 }) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Bin.pp_error e
  | Ok _ -> Alcotest.fail "sym tag 9 decoded"

(* Trailing bytes after a complete sym message are rejected like every
   other total codec. *)
let test_sym_trailing () =
  let b = Sym_msg.to_bytes (Sym_msg.Ack { ts = 3 }) in
  match Sym_msg.of_bytes (Bytes.cat b (Bytes.of_string "z")) with
  | Error (Bin.Trailing { extra = 1 }) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Bin.pp_error e
  | Ok _ -> Alcotest.fail "trailing byte accepted"

(* Single-byte corruptions of valid sym encodings: the decoder must
   rule Ok or Error on every one, never raise. *)
let test_sym_corruption () =
  let rng = Vsgc_ioa.Rng.make 0x5e1f in
  let samples =
    [
      Sym_msg.Data { ts = 1; body = "" };
      Sym_msg.Data { ts = 40_000; body = String.make 24 'q' };
      Sym_msg.Ack { ts = 17 };
      Sym_msg.Flush
        { ts = 9; view = View.Id.make ~num:4 ~origin:1; digest = "0123abcd" };
    ]
  in
  for _ = 1 to 2_000 do
    let m = Vsgc_ioa.Rng.pick rng samples in
    let b = Sym_msg.to_bytes m in
    let i = Vsgc_ioa.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Vsgc_ioa.Rng.int rng 256));
    match Sym_msg.of_bytes b with
    | Ok _ | Error _ -> ()
    | exception exn ->
        Alcotest.failf "sym decoder raised %s" (Printexc.to_string exn)
  done

(* Sym traffic rides inside App payloads inside framed Rf packets; the
   incremental feeder must hand the train back intact at any chunking,
   and every recovered payload must decode to the original sym
   message. *)
let test_sym_feeder_chunked () =
  let msgs =
    [
      Sym_msg.Data { ts = 1; body = "a" };
      Sym_msg.Ack { ts = 2 };
      Sym_msg.Flush
        { ts = 3; view = View.Id.make ~num:2 ~origin:0; digest = "deadbeef" };
      Sym_msg.Data { ts = 5; body = String.make 40 'x' };
    ]
  in
  let pkts =
    List.map
      (fun m ->
        Packet.Rf
          { from = 1; wire = Msg.Wire.App (Msg.App_msg.make (Sym_msg.to_payload m)) })
      msgs
  in
  let stream = Bytes.concat Bytes.empty (List.map Frame.encode pkts) in
  List.iter
    (fun chunk ->
      let f = Frame.feeder () in
      let got = ref [] in
      let drain () =
        let rec go () =
          match Frame.next f with
          | Some (Ok pkt) ->
              got := pkt :: !got;
              go ()
          | Some (Error e) -> Alcotest.failf "feeder error %a" Frame.pp_error e
          | None -> ()
        in
        go ()
      in
      let len = Bytes.length stream in
      let off = ref 0 in
      while !off < len do
        let k = Stdlib.min chunk (len - !off) in
        Frame.feed f stream ~off:!off ~len:k;
        drain ();
        off := !off + k
      done;
      let decoded =
        List.rev_map
          (function
            | Packet.Rf { wire = Msg.Wire.App a; _ } -> (
                match Sym_msg.of_payload (Msg.App_msg.payload a) with
                | Ok m -> m
                | Error e ->
                    Alcotest.failf "payload at chunk %d: %a" chunk Bin.pp_error
                      e)
            | pkt ->
                Alcotest.failf "non-Rf packet at chunk %d: %a" chunk Packet.pp
                  pkt)
          !got
      in
      Alcotest.(check int)
        (Fmt.str "all sym messages at chunk %d" chunk)
        (List.length msgs) (List.length decoded);
      Alcotest.(check bool)
        (Fmt.str "identical sym messages at chunk %d" chunk)
        true
        (List.for_all2 Sym_msg.equal msgs decoded))
    [ 1; 2; 5; 13; 64; 100_000 ]

let test_feeder_garbage () =
  let f = Frame.feeder () in
  Frame.feed f (Bytes.of_string "garbage bytes here") ~off:0 ~len:18;
  (match Frame.next f with
  | Some (Error (Frame.Bad_magic _)) -> ()
  | _ -> Alcotest.fail "garbage not rejected");
  Alcotest.(check int) "buffer flushed" 0 (Frame.buffered f)

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t)
    [
      prop_view;
      prop_wire;
      prop_srv_msg;
      prop_node_id;
      prop_kv_req;
      prop_kv_resp;
      prop_sym;
      prop_sym_payload;
      prop_packet;
      prop_frame;
      prop_prefix;
      prop_feeder_adversarial;
    ]
  @ [
      Alcotest.test_case "fuzz: decoders are total" `Quick test_fuzz_total;
      Alcotest.test_case "bad tags rejected" `Quick test_bad_tag;
      Alcotest.test_case "trailing bytes rejected" `Quick test_trailing_rejected;
      Alcotest.test_case "frame header errors" `Quick test_frame_header_errors;
      Alcotest.test_case "feeder: chunk-independent" `Quick test_feeder_chunked;
      Alcotest.test_case "feeder: garbage flushes" `Quick test_feeder_garbage;
      Alcotest.test_case "sym: bad timestamps rejected" `Quick test_sym_bad_ts;
      Alcotest.test_case "sym: trailing bytes rejected" `Quick test_sym_trailing;
      Alcotest.test_case "sym: corruption never raises" `Quick
        test_sym_corruption;
      Alcotest.test_case "sym: feeder chunk-independent" `Quick
        test_sym_feeder_chunked;
    ]
