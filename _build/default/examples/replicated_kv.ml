(* A replicated key-value store over the virtually synchronous service
   — the state-machine-replication motif of paper §4.1.2.

       dune exec examples/replicated_kv.exe

   Replicas that move together from view to view stay consistent with
   NO synchronization exchange (that is what Virtual Synchrony buys);
   state transfer happens only when groups merge, and the transitional
   set tells each group exactly one member to ship its snapshot. *)

open Vsgc_types
module System = Vsgc_harness.System
module Replica = Vsgc_replication.Replica

let () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed:1234 ~n:4
      ~client_builder:(fun p ->
        let c, r = Replica.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  let rep p : Replica.t ref = Hashtbl.find refs p in
  let show p =
    let kv = Replica.state !(rep p) in
    Fmt.pr "  replica %a: {%s}@." Proc.pp p
      (String.concat ", "
         (List.map (fun (k, v) -> k ^ "=" ^ v) (Replica.Smap.bindings kv)))
  in

  (* two disjoint partitions evolve independently *)
  let left = Proc.Set.of_range 0 1 and right = Proc.Set.of_range 2 3 in
  ignore (System.reconfigure sys ~origin:0 ~set:left);
  ignore (System.reconfigure sys ~origin:1 ~set:right);
  System.settle sys;

  Fmt.pr "writes on both sides of the partition:@.";
  Replica.set (rep 0) ~key:"city" ~value:"boston";
  Replica.set (rep 1) ~key:"lab" ~value:"lcs";
  Replica.set (rep 2) ~key:"year" ~value:"2000";
  System.settle sys;
  List.iter show [ 0; 1; 2; 3 ];

  (* merge: one snapshot per merging group, routed through the same
     totally ordered stream as the commands *)
  Fmt.pr "@.merging the partitions...@.";
  let snapshots () =
    List.fold_left (fun acc p -> acc + !(rep p).Replica.snapshots_sent) 0 [ 0; 1; 2; 3 ]
  in
  let before = snapshots () in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  List.iter show [ 0; 1; 2; 3 ];
  Fmt.pr "snapshots shipped for the merge: %d (one per merging group)@."
    (snapshots () - before);

  (* post-merge writes replicate everywhere with no extra machinery *)
  Fmt.pr "@.a write after the merge:@.";
  Replica.set (rep 3) ~key:"status" ~value:"merged";
  System.settle sys;
  List.iter show [ 0; 1; 2; 3 ];
  Fmt.pr "replicated-kv demo done.@."
