(* A partitionable chat room: the workload the paper's introduction
   motivates — a group that splits into two network components, keeps
   working on both sides, and heals.

       dune exec examples/chat_partition.exe

   Watch the transitional sets: after the merge each side learns
   exactly which peers travelled with it (Property 4.1), so the
   application knows whose chat history it already shares. This demo
   runs on the full client-server membership stack (Figure 1): two
   dedicated membership servers maintain the room membership and feed
   start_change/view events to the GCS end-points at the clients. *)

open Vsgc_types
module System = Vsgc_harness.System
module SS = Vsgc_harness.Server_system
module Client = Vsgc_core.Client

let show_views sys members tag =
  Fmt.pr "-- %s --@." tag;
  Proc.Set.iter
    (fun p ->
      match System.last_view_of sys p with
      | Some (v, tset) ->
          Fmt.pr "  %a: view %a members=%a came-with=%a@." Proc.pp p View.Id.pp
            (View.id v) Proc.Set.pp (View.set v) Proc.Set.pp tset
      | None -> Fmt.pr "  %a: (no view yet)@." Proc.pp p)
    members

let say sys p text =
  System.send sys p text;
  Fmt.pr "  %a says %S@." Proc.pp p text

let transcript sys p =
  Fmt.pr "  %a's transcript:@." Proc.pp p;
  List.iter
    (fun (q, m) -> Fmt.pr "    <%a> %s@." Proc.pp q (Msg.App_msg.payload m))
    (Client.delivered !(System.client sys p))

let () =
  (* four chatters, two membership servers (p0,p2 on s0; p1,p3 on s1) *)
  let ss = SS.create ~seed:7 ~n_clients:4 ~n_servers:2 () in
  let sys = SS.sys ss in
  let everyone = Proc.Set.of_range 0 3 in
  SS.bootstrap ss;
  System.settle sys;
  show_views sys everyone "room formed";

  say sys 0 "hi all";
  say sys 3 "hello!";
  System.settle sys;

  (* the network partitions: the servers stop seeing each other, and
     each maintains the membership of its own side *)
  Fmt.pr "@.*** network partition: servers s0 | s1 ***@.";
  SS.fd_change ss ~perceived:(Server.Set.singleton 0);
  SS.fd_change ss ~perceived:(Server.Set.singleton 1);
  System.settle sys;
  show_views sys everyone "partitioned";

  say sys 0 "anyone still here?";
  say sys 1 "my side is quiet too";
  System.settle sys;

  (* the partition heals; the servers re-agree on one view, and the
     clients' transitional sets reveal the two merging groups *)
  Fmt.pr "@.*** partition heals ***@.";
  SS.fd_change ss ~perceived:(Server.Set.of_range 0 1);
  System.settle sys;
  show_views sys everyone "merged";

  say sys 2 "we are back together";
  System.settle sys;
  transcript sys 0;
  transcript sys 1;
  Fmt.pr "chat demo done.@."
