examples/quickstart.mli:
