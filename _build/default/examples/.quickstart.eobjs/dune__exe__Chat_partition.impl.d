examples/chat_partition.ml: Fmt List Msg Proc Server View Vsgc_core Vsgc_harness Vsgc_types
