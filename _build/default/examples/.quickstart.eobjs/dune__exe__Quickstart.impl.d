examples/quickstart.ml: Fmt List Msg Proc View Vsgc_core Vsgc_harness Vsgc_types
