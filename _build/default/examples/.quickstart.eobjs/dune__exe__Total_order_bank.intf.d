examples/total_order_bank.mli:
