examples/replicated_kv.ml: Fmt Hashtbl List Proc String Vsgc_harness Vsgc_replication Vsgc_types
