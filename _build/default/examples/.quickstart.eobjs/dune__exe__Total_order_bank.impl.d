examples/total_order_bank.ml: Fmt Hashtbl List Proc String Vsgc_harness Vsgc_totalorder Vsgc_types
