(* A toy bank on totally ordered multicast (the layered construction
   the paper points to in §4.1.1: total order is built ATOP the
   within-view reliable FIFO service, not into it).

       dune exec examples/total_order_bank.exe

   Three tellers issue concurrent deposits and withdrawals against one
   account; because every replica folds the same total order, they
   always compute the same balance — even across a view change that
   removes the sequencer mid-stream. *)

open Vsgc_types
module System = Vsgc_harness.System
module Tord = Vsgc_totalorder.Tord_client

let balance_of tord =
  List.fold_left
    (fun acc (_, payload) ->
      match String.split_on_char ' ' payload with
      | [ "deposit"; n ] -> acc + int_of_string n
      | [ "withdraw"; n ] -> acc - int_of_string n
      | _ -> acc)
    0
    (Tord.total_order tord)

let show refs ps tag =
  Fmt.pr "-- %s --@." tag;
  List.iter
    (fun p ->
      let t = !(Hashtbl.find refs p) in
      Fmt.pr "  teller %a: %d ops, balance %d@." Proc.pp p
        (List.length (Tord.total_order t))
        (balance_of t))
    ps

let () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed:99 ~n:3
      ~client_builder:(fun p ->
        let c, r = Tord.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;

  (* concurrent, conflicting operations from all three tellers *)
  Tord.push (Hashtbl.find refs 0) "deposit 100";
  Tord.push (Hashtbl.find refs 1) "withdraw 30";
  Tord.push (Hashtbl.find refs 2) "deposit 5";
  Tord.push (Hashtbl.find refs 0) "withdraw 50";
  Tord.push (Hashtbl.find refs 1) "deposit 1";
  System.settle sys;
  show refs [ 0; 1; 2 ] "after concurrent operations";

  (* the sequencer (p0, the minimum member) leaves; the survivors keep
     a single consistent order and elect a new sequencer *)
  Fmt.pr "@.*** the sequencer departs ***@.";
  System.crash sys 0;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 1 2));
  System.settle sys;
  Tord.push (Hashtbl.find refs 1) "deposit 1000";
  Tord.push (Hashtbl.find refs 2) "withdraw 7";
  System.settle sys;
  show refs [ 1; 2 ] "after failover";

  let b1 = balance_of !(Hashtbl.find refs 1)
  and b2 = balance_of !(Hashtbl.find refs 2) in
  assert (b1 = b2);
  Fmt.pr "@.survivors agree on the balance: %d@." b1;
  Fmt.pr "bank demo done.@."
