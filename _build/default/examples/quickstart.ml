(* Quickstart: three processes form a group, multicast, and observe
   virtually synchronous delivery.

       dune exec examples/quickstart.exe

   The harness assembles the composition of the paper's Figure 8: a GCS
   end-point and a blocking client per process, the CO_RFIFO transport,
   and a membership service (here the scriptable oracle). Every run is
   checked online against all the safety specifications of §4. *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

let () =
  (* 1. Build a monitored 3-process system (deterministic seed). *)
  let sys = System.create ~seed:2026 ~n:3 () in

  (* 2. The membership service announces a view containing everyone.
        Under the hood: a start_change with a fresh locally-unique
        identifier per process, then the view carrying the startId map. *)
  let members = Proc.Set.of_range 0 2 in
  let view = System.reconfigure sys ~set:members in
  System.settle sys;
  Fmt.pr "formed view %a@." View.pp view;
  Proc.Set.iter
    (fun p ->
      match System.last_view_of sys p with
      | Some (v, tset) ->
          Fmt.pr "  %a installed %a with transitional set %a@." Proc.pp p
            View.Id.pp (View.id v) Proc.Set.pp tset
      | None -> assert false)
    members;

  (* 3. Everyone multicasts; the service delivers within the view, in
        gap-free FIFO order per sender, with self-delivery. *)
  Proc.Set.iter
    (fun p ->
      System.send sys p (Fmt.str "hello from %a" Proc.pp p);
      System.send sys p (Fmt.str "and again from %a" Proc.pp p))
    members;
  System.settle sys;

  Proc.Set.iter
    (fun p ->
      Fmt.pr "%a delivered:@." Proc.pp p;
      List.iter
        (fun (q, m) -> Fmt.pr "  from %a: %s@." Proc.pp q (Msg.App_msg.payload m))
        (Client.delivered !(System.client sys p)))
    members;

  (* 4. A member leaves; the survivors agree on the messages of the old
        view (virtual synchrony) and move to the next view together. *)
  let survivors = Proc.Set.of_range 0 1 in
  let view2 = System.reconfigure sys ~set:survivors in
  System.settle sys;
  Fmt.pr "reconfigured to %a@." View.pp view2;
  Fmt.pr "all survivors in the new view: %b@." (System.all_in_view sys view2);
  Fmt.pr "quickstart done.@."
