open Vsgc_types
module System = Vsgc_harness.System

(* replicate test_props generator + execute inline *)
type op =
  | Reconfigure of Proc.Set.t
  | Send of Proc.t * int
  | Crash of Proc.t
  | Recover of Proc.t
  | Run of int

let n = 4
let all = Proc.Set.of_range 0 (n - 1)

let pp_op = function
  | Reconfigure s -> Fmt.str "reconf%a" Proc.Set.pp s
  | Send (p, k) -> Fmt.str "send(%a,%d)" Proc.pp p k
  | Crash p -> Fmt.str "crash(%a)" Proc.pp p
  | Recover p -> Fmt.str "recover(%a)" Proc.pp p
  | Run k -> Fmt.str "run(%d)" k

let gen_op rng =
  match Vsgc_ioa.Rng.int rng 12 with
  | 0 | 1 | 2 ->
      let bits = 1 + Vsgc_ioa.Rng.int rng ((1 lsl n) - 1) in
      let s = List.fold_left (fun acc i -> if bits land (1 lsl i) <> 0 then Proc.Set.add i acc else acc) Proc.Set.empty (List.init n Fun.id) in
      Reconfigure (if Proc.Set.is_empty s then Proc.Set.singleton 0 else s)
  | 3 | 4 | 5 | 6 -> Send (Vsgc_ioa.Rng.int rng n, 1 + Vsgc_ioa.Rng.int rng 4)
  | 7 -> Crash (Vsgc_ioa.Rng.int rng n)
  | 8 -> Recover (Vsgc_ioa.Rng.int rng n)
  | _ -> Run (10 + Vsgc_ioa.Rng.int rng 190)

let execute ~seed ops =
  let sys = System.create ~seed ~n () in
  System.attach_invariants ~every:3 sys;
  let counter = ref 0 in
  let crashed = ref Proc.Set.empty in
  let origin = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Reconfigure set ->
          let set = Proc.Set.diff set !crashed in
          if not (Proc.Set.is_empty set) then begin
            incr origin;
            ignore (System.reconfigure sys ~origin:!origin ~set)
          end
      | Send (p, k) ->
          if not (Proc.Set.mem p !crashed) then
            for _ = 1 to k do incr counter; System.send sys p (Fmt.str "x%d" !counter) done
      | Crash p ->
          if not (Proc.Set.mem p !crashed) then begin
            System.crash sys p; crashed := Proc.Set.add p !crashed end
      | Recover p ->
          if Proc.Set.mem p !crashed then begin
            System.recover sys p; crashed := Proc.Set.remove p !crashed end
      | Run k -> ignore (System.run sys ~max_steps:k))
    ops;
  let live = Proc.Set.diff all !crashed in
  if not (Proc.Set.is_empty live) then begin
    incr origin; ignore (System.reconfigure sys ~origin:!origin ~set:live)
  end;
  System.settle sys;
  (sys, live)

let () =
  let iters = try int_of_string Sys.argv.(1) with _ -> 2000 in
  let bad = ref 0 in
  for i = 1 to iters do
    let rng = Vsgc_ioa.Rng.make (i * 7919) in
    let len = 1 + Vsgc_ioa.Rng.int rng 10 in
    let ops = List.init len (fun _ -> gen_op rng) in
    (try
       let sys, live = execute ~seed:(i * 31) ops in
       (* stable view agreement *)
       if not (Proc.Set.is_empty live) then begin
         match System.last_view_of sys (Proc.Set.min_elt live) with
         | Some (v, _) when Proc.Set.equal (View.set v) live && System.all_in_view sys v -> ()
         | _ when Proc.Set.cardinal live <= 1 -> ()
         | _ ->
             incr bad;
             Fmt.pr "AGREEMENT FAIL iter=%d ops=[%s]@." i
               (String.concat "; " (List.map pp_op ops))
       end
     with e ->
       incr bad;
       Fmt.pr "EXN iter=%d: %s@.  ops=[%s]@." i (Printexc.to_string e)
         (String.concat "; " (List.map pp_op ops)));
    if !bad > 4 then exit 1
  done;
  Fmt.pr "done: %d iters, %d bad@." iters !bad
