(* A persistent FIFO queue (two-list representation).

   Used for CO_RFIFO channels: O(1) amortized enqueue/dequeue, plus the
   [drop_last] operation the lose(p,q) action needs. *)

type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }
let length t = t.length
let is_empty t = t.length = 0

let push t x = { t with back = x :: t.back; length = t.length + 1 }

let norm t =
  match t.front with
  | [] -> { t with front = List.rev t.back; back = [] }
  | _ :: _ -> t

let peek t =
  let t = norm t in
  match t.front with [] -> None | x :: _ -> Some x

let pop t =
  let t = norm t in
  match t.front with
  | [] -> None
  | x :: front -> Some (x, { t with front; length = t.length - 1 })

let drop_last t =
  (* Remove the most recently enqueued element, as CO_RFIFO's lose(p,q)
     does ("dequeue last message"). *)
  match t.back with
  | _ :: back -> Some { t with back; length = t.length - 1 }
  | [] -> (
      match List.rev t.front with
      | [] -> None
      | _ :: rev_front ->
          Some { front = List.rev rev_front; back = []; length = t.length - 1 })

let to_list t = t.front @ List.rev t.back
let of_list l = { front = l; back = []; length = List.length l }
let fold f acc t = List.fold_left f acc (to_list t)
