lib/types/action.mli: Format Msg Proc Server Srv_msg View
