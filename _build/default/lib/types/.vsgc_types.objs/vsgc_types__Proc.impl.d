lib/types/proc.ml: Fmt Hashtbl Int List Map Set
