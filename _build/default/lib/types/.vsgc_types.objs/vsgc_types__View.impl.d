lib/types/view.ml: Fmt Int Map Proc
