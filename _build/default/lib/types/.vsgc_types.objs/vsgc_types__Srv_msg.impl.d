lib/types/srv_msg.ml: Fmt Proc Server View
