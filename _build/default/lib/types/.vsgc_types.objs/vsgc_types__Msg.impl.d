lib/types/msg.ml: Fmt Int List Proc Stdlib String View
