lib/types/action.ml: Fmt Msg Proc Server Srv_msg View
