lib/types/view.mli: Format Map Proc
