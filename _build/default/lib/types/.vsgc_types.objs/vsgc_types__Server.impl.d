lib/types/server.ml: Fmt Int Proc
