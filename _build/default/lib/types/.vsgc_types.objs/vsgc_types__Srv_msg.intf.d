lib/types/srv_msg.mli: Format Proc Server View
