lib/types/fqueue.mli:
