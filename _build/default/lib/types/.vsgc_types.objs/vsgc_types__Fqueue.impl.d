lib/types/fqueue.ml: List
