lib/types/msg.mli: Format Proc View
