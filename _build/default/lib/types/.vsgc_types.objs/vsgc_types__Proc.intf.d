lib/types/proc.mli: Format Map Set
