lib/types/server.mli: Format Proc
