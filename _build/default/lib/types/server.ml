(* Membership-server identifiers (paper §1, Figure 1).

   Servers live in the same integer id space as processes but are
   rendered distinctly in traces. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let of_int i =
  if i < 0 then invalid_arg "Server.of_int: negative server id";
  i

let to_int s = s
let pp ppf s = Fmt.pf ppf "s%d" s

module Set = Proc.Set
module Map = Proc.Map
