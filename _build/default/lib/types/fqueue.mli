(** A persistent FIFO queue (two-list representation).

    Used for CO_RFIFO channels: O(1) amortized enqueue/dequeue, plus the
    [drop_last] operation the lose(p,q) action needs. *)

type 'a t

val empty : 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> 'a t
(** Enqueue at the back. *)

val peek : 'a t -> 'a option
(** The front element, if any. *)

val pop : 'a t -> ('a * 'a t) option
(** Dequeue from the front. *)

val drop_last : 'a t -> 'a t option
(** Remove the most recently enqueued element — CO_RFIFO's lose(p,q)
    "dequeues the last message". [None] when empty. *)

val to_list : 'a t -> 'a list
(** Front first. *)

val of_list : 'a list -> 'a t
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
