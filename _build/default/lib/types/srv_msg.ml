(* Inter-server messages of the client-server membership algorithm
   (our executable rendering of the one-round membership service of
   Keidar-Sussman-Marzullo-Dolev [27]; see DESIGN.md §2).

   [Proposal]: a server's current picture — its failure-detector
   estimate, its attached clients with the start_change identifiers it
   last sent them, its estimate of the full client union, and the
   largest view identifier it has seen.

   [Commit]: the view synthesized by the minimum live server once all
   live servers' proposals agree on the server set and client union;
   peers validate it against their own bookkeeping and deliver it to
   their attached clients. *)

type proposal = {
  round : int;  (* the proposer's local attempt number *)
  from : Server.t;
  servers : Server.Set.t;  (* proposer's current estimate of live servers *)
  clients : View.Sc_id.t Proc.Map.t;
      (* clients attached to the proposer, with the start_change ids it
         last sent them for this attempt *)
  members : Proc.Set.t;  (* proposer's estimate of the full client union *)
  max_vid : View.Id.t;  (* largest view identifier the proposer has seen *)
}

type t = Proposal of proposal | Commit of View.t

let pp ppf = function
  | Proposal m ->
      Fmt.pf ppf "propose(r%d,%a,srv=%a,cl=%a,U=%a,max=%a)" m.round Server.pp
        m.from Server.Set.pp m.servers (Proc.Map.pp View.Sc_id.pp) m.clients
        Proc.Set.pp m.members View.Id.pp m.max_vid
  | Commit v -> Fmt.pf ppf "commit(%a)" View.pp v
