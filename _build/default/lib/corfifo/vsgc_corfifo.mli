(** CO_RFIFO: the connection-oriented reliable FIFO multicast service
    (paper §3.2, Figure 3), executable.

    One FIFO channel per ordered pair of end-points. [reliable_set] is
    client-controlled; toward targets outside it, an arbitrary suffix of
    the channel may be lost (the lose action — an adversary move the
    scheduler takes only when a scenario weights it). [live_set]
    reflects the real network: deliveries fire only toward live targets,
    which is how partitions are modelled. Following Figure 8, the
    membership actions start_change_p/view_p are linked with live_p, so
    this component also accepts Mb_* actions. Crash (§8) empties the
    crashed process's reliable and live sets and, connection-oriented,
    drops its incoming queues. *)

open Vsgc_types

module Pair_map : Map.S with type key = Proc.t * Proc.t

type state = {
  channels : Msg.Wire.t Fqueue.t Pair_map.t;
  reliable : Proc.Set.t Proc.Map.t;  (** default \{p\} *)
  live : Proc.Set.t Proc.Map.t;  (** default \{p\} *)
}

val initial : state
val channel : state -> Proc.t -> Proc.t -> Msg.Wire.t Fqueue.t
val reliable_set : state -> Proc.t -> Proc.Set.t
val live_set : state -> Proc.t -> Proc.Set.t
val channel_length : state -> Proc.t -> Proc.t -> int
val channel_contents : state -> Proc.t -> Proc.t -> Msg.Wire.t list

val occupancy : state -> ((Proc.t * Proc.t) * int) list
(** All non-empty channels with their occupancy. *)

val accepts : Action.t -> bool
val outputs : state -> Action.t list
val apply : state -> Action.t -> state
(** @raise Invalid_argument on a delivery that is not the channel head
    or a lose on an empty channel (executor discipline violations). *)

val def : state Vsgc_ioa.Component.def
val component : unit -> Vsgc_ioa.Component.packed * state ref

val round_budget : state ref -> unit -> Vsgc_ioa.Sync_runner.budget
(** A budget allowing exactly the messages currently in transit — one
    round's worth of deliveries. *)
