(** Deterministic pseudo-random source (splitmix64).

    Every executor run is reproducible from one integer seed; all
    randomness in the reproduction flows through this module. *)

type t

val make : int -> t
(** [make seed] is a fresh generator. Equal seeds give equal streams. *)

val next_int64 : t -> int64
(** The next raw 64-bit output (advances the state). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates permutation. *)

val split : t -> t
(** An independent stream derived from (and advancing) this one. *)
