(** Round-synchronous execution.

    Measures latency in communication rounds — the unit the paper
    argues in ("a single message exchange round", §1, §5). A round runs
    all enabled local (non-delivery) actions to quiescence, then
    delivers exactly the messages that were in transit at the round
    boundary; messages sent during a round arrive in the next one. *)

open Vsgc_types

type budget = {
  allow : Action.t -> bool;  (** may this delivery happen this round? *)
  consume : Action.t -> unit;  (** account a performed delivery *)
}
(** One round's delivery allowance, built by the harness from its typed
    view of the channel states (the executor cannot see occupancy). *)

val is_delivery : Action.t -> bool
(** [Rf_deliver] and [Srv_deliver] — everything else is local. *)

val local_quiesce : ?max_steps:int -> Executor.t -> int
(** Run non-delivery actions to quiescence; returns steps taken. *)

val round : ?max_steps:int -> Executor.t -> make_budget:(unit -> budget) -> int
(** Execute one round: local quiescence first, then the budget snapshot,
    then deliveries (with local reactions interleaved — their sends wait
    for the next round). Returns the number of deliveries performed. *)

val run_rounds :
  ?max_rounds:int ->
  Executor.t ->
  make_budget:(unit -> budget) ->
  stop:(unit -> bool) ->
  int
(** Run rounds until [stop] (checked at round boundaries) or until a
    round delivers nothing; returns the number of delivering rounds
    (also accumulated into the executor's metrics). *)
