(* Deterministic pseudo-random source (splitmix64).

   Every run of the executor is reproducible from a single integer
   seed; all randomness in the reproduction flows through this module. *)

type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  (* Uniform in [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t =
  (* An independent stream derived from this one. *)
  { state = next_int64 t }
