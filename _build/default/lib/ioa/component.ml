(* Executable I/O-automaton components.

   A component is a state machine over the composed system's shared
   action vocabulary (Vsgc_types.Action). Its [outputs] function lists
   the locally-controlled actions enabled in the current state (each is
   its own task, matching the paper's fairness partition); [accepts]
   describes its input signature; [apply] performs the transition
   effect, for inputs and for the component's own outputs alike. *)

open Vsgc_types

type 's def = {
  name : string;
  init : 's;
  accepts : Action.t -> bool;
  outputs : 's -> Action.t list;
  apply : 's -> Action.t -> 's;
}

(* A component packed with its mutable current state, so that
   heterogeneous components compose into one system. The [state] ref is
   shared with whoever built the component (the harness keeps typed
   handles for invariant checking and introspection). *)
type packed = Packed : 's def * 's ref -> packed

let pack def = Packed (def, ref def.init)

let pack_with_ref def r = Packed (def, r)

let name (Packed (d, _)) = d.name

let outputs (Packed (d, s)) = d.outputs !s

let accepts (Packed (d, _)) a = d.accepts a

let apply (Packed (d, s)) a = s := d.apply !s a

(* A purely reactive observer: accepts everything, outputs nothing.
   Used to turn trace monitors into components when convenient. *)
let observer ~name ~init ~apply =
  { name; init; accepts = (fun _ -> true); outputs = (fun _ -> []); apply }
