lib/ioa/trace_stats.ml: Action Hashtbl List Msg Option Proc Vsgc_types
