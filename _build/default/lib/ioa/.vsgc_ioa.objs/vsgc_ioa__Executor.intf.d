lib/ioa/executor.mli: Action Component Metrics Monitor Rng Vsgc_types
