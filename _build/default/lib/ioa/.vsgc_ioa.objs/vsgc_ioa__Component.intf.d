lib/ioa/component.mli: Action Vsgc_types
