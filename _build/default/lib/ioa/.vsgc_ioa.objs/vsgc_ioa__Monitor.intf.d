lib/ioa/monitor.mli: Format Vsgc_types
