lib/ioa/monitor.ml: Fmt Vsgc_types
