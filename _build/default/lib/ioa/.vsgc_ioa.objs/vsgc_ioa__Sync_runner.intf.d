lib/ioa/sync_runner.mli: Action Executor Vsgc_types
