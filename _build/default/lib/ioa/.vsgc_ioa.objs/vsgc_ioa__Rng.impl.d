lib/ioa/rng.ml: Array Int64 List
