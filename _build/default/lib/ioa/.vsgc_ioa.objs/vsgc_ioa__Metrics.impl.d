lib/ioa/metrics.ml: Action Fmt Hashtbl Msg Proc Vsgc_types
