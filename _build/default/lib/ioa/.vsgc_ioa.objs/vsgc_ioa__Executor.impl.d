lib/ioa/executor.ml: Action Array Component List Metrics Monitor Rng Vsgc_types
