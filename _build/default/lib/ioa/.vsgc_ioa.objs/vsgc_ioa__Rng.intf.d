lib/ioa/rng.mli:
