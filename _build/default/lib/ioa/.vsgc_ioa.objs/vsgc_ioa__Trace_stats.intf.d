lib/ioa/trace_stats.mli: Action Hashtbl Proc View Vsgc_types
