lib/ioa/sync_runner.ml: Action Executor List Metrics Vsgc_types
