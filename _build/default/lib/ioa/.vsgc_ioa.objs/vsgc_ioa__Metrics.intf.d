lib/ioa/metrics.mli: Action Format Msg Vsgc_types
