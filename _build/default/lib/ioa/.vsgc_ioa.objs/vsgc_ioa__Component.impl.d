lib/ioa/component.ml: Action Vsgc_types
