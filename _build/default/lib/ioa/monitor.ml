(* Online trace monitors.

   A monitor observes the composed system's trace action-by-action and
   raises [Violation] as soon as the trace leaves the set of traces of
   the specification automaton it renders. [at_end] reports residual
   obligations that can only be judged on the whole trace (e.g. the
   pairwise transitional-set consistency of Property 4.1). *)

exception Violation of { monitor : string; message : string }

type t = {
  name : string;
  on_action : Vsgc_types.Action.t -> unit;
  at_end : unit -> string list;
}

let violate ~monitor fmt =
  Fmt.kstr (fun message -> raise (Violation { monitor; message })) fmt

let check ~monitor cond fmt =
  if cond then Fmt.kstr ignore fmt else violate ~monitor fmt

let make ?(at_end = fun () -> []) name on_action = { name; on_action; at_end }
