(** Executable I/O-automaton components.

    A component is a state machine over the composed system's shared
    action vocabulary ({!Vsgc_types.Action}). Composition follows the
    paper's §2: when an output action fires, every component that
    accepts it takes the same step atomically. *)

open Vsgc_types

type 's def = {
  name : string;
  init : 's;
  accepts : Action.t -> bool;  (** the input signature *)
  outputs : 's -> Action.t list;
      (** the locally-controlled actions enabled in a state; each is
          its own fairness task, as in the paper's end-point automata *)
  apply : 's -> Action.t -> 's;
      (** the transition effect — for accepted inputs and for the
          component's own outputs alike *)
}

type packed = Packed : 's def * 's ref -> packed
(** A component with its mutable current state, packed so that
    heterogeneous components compose into one system. *)

val pack : 's def -> packed
(** Pack with a fresh state cell initialized to [def.init]. *)

val pack_with_ref : 's def -> 's ref -> packed
(** Pack sharing [ref] with the caller — the harness keeps these typed
    handles for invariant checking and observation. *)

val name : packed -> string

val outputs : packed -> Action.t list
(** Enabled locally-controlled actions in the current state. *)

val accepts : packed -> Action.t -> bool
val apply : packed -> Action.t -> unit

val observer :
  name:string ->
  init:'s ->
  apply:('s -> Action.t -> 's) ->
  's def
(** A purely reactive component: accepts everything, outputs nothing. *)
