(* Round-synchronous execution mode.

   Measures latency in communication rounds, the unit the paper uses
   ("a single message exchange round", §1, §5). A round is: run all
   enabled local (non-delivery) actions to quiescence, then deliver
   exactly the messages that were in transit at the start of the round.
   Messages sent during a round are delivered in the next one — the
   classic synchronous-round abstraction over an asynchronous system.

   The executor cannot see channel occupancy, so the caller supplies a
   [budget] built from the harness's typed view of the channel states:
   [budget ()] returns a stateful allowance consulted once per attempted
   delivery this round. *)

open Vsgc_types

type budget = { allow : Action.t -> bool; consume : Action.t -> unit }

let is_delivery (a : Action.t) =
  match Action.category a with
  | Action.C_rf_deliver | Action.C_srv_deliver -> true
  | _ -> false

let local_quiesce ?(max_steps = 100_000) exec =
  Executor.run_filtered exec ~max_steps ~allow:(fun a -> not (is_delivery a))

(* Execute one round: run local actions to quiescence, snapshot the
   in-transit messages (the budget), then deliver exactly those —
   interleaving any local reactions, whose own sends will only travel
   in the NEXT round. Returns the number of deliveries performed. *)
let round ?(max_steps = 100_000) exec ~make_budget =
  let deliveries = ref 0 in
  let steps = ref 0 in
  steps := local_quiesce ~max_steps exec;
  let budget : budget = make_budget () in
  let rec go () =
    if !steps >= max_steps then ()
    else
      let cands =
        Executor.candidates exec
        |> List.filter (fun (_, a) -> is_delivery a && budget.allow a)
      in
      match cands with
      | [] -> ()
      | (i, a) :: _ ->
          Executor.perform exec ~owner:i a;
          budget.consume a;
          incr deliveries;
          incr steps;
          steps := !steps + local_quiesce ~max_steps:(max_steps - !steps) exec;
          go ()
  in
  go ();
  !deliveries

(* Run rounds until [stop] holds or nothing is in transit. Returns the
   number of rounds that actually delivered messages. *)
let run_rounds ?(max_rounds = 1_000) exec ~make_budget ~stop =
  let rec go r =
    if stop () || r >= max_rounds then r
    else
      let delivered = round exec ~make_budget in
      if delivered = 0 then r
      else begin
        Metrics.add_round (Executor.metrics exec);
        go (r + 1)
      end
  in
  go 0
