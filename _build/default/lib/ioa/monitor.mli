(** Online trace monitors — executable specification automata.

    A monitor observes the composed system's trace action-by-action and
    raises {!Violation} the moment the trace leaves the specification's
    trace set (trace-inclusion checking, the dynamic counterpart of the
    paper's refinement proofs). *)

exception Violation of { monitor : string; message : string }

type t = {
  name : string;
  on_action : Vsgc_types.Action.t -> unit;
      (** called on every step; raises {!Violation} on non-conformance *)
  at_end : unit -> string list;
      (** residual obligations judged on the whole trace; non-empty
          means violated *)
}

val violate : monitor:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise a {!Violation} with a formatted message. *)

val check : monitor:string -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [check ~monitor cond fmt ...] raises unless [cond] holds. *)

val make : ?at_end:(unit -> string list) -> string -> (Vsgc_types.Action.t -> unit) -> t
