lib/replication/replica.ml: Action Fmt List Map Proc String View Vsgc_ioa Vsgc_totalorder Vsgc_types
