lib/replication/replica.mli: Action Map Proc Vsgc_ioa Vsgc_totalorder Vsgc_types
