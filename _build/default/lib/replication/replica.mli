(** A replicated key-value state machine over totally ordered multicast
    — the application motif the paper gives for Virtual Synchrony
    (§4.1.2). Replicas that travel together stay byte-identical with no
    synchronization exchange; on merges, the minimum member of each
    transitional set multicasts one snapshot, folded into the same
    totally ordered log as the commands (so adoption is deterministic
    everywhere). The [transfer_blind] ablation models a system without
    transitional sets: every member ships its snapshot at every view
    change (bench E8). *)

open Vsgc_types
module Smap : Map.S with type key = string
module Tord_client = Vsgc_totalorder.Tord_client

type t = {
  tc : Tord_client.t;
  me : Proc.t;
  transfer_blind : bool;
  snapshot_bytes : int;  (** total snapshot payload bytes multicast *)
  snapshots_sent : int;
}

val initial : ?transfer_blind:bool -> Proc.t -> t

(** {1 Commands and snapshots} *)

val encode_set : key:string -> value:string -> string
val encode_snapshot : version:int -> string Smap.t -> string

type cmd = Set of string * string | Snapshot of int * string Smap.t | Unknown

val decode : string -> cmd

(** {1 State (a pure fold of the totally ordered log)} *)

val state : t -> string Smap.t
val version : t -> int
val get : t -> string -> string option

(** {1 Scripting} *)

val set : t ref -> key:string -> value:string -> unit

(** {1 Component} *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : ?transfer_blind:bool -> Proc.t -> t Vsgc_ioa.Component.def
val component : ?transfer_blind:bool -> Proc.t -> Vsgc_ioa.Component.packed * t ref
