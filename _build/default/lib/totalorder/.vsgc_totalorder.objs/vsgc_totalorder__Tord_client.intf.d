lib/totalorder/tord_client.mli: Action Proc Tord_core View Vsgc_ioa Vsgc_types
