lib/totalorder/tord_symmetric.mli: Proc View Vsgc_types
