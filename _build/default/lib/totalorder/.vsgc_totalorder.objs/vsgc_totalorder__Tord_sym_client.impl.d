lib/totalorder/tord_sym_client.ml: Action Fmt List Msg Proc Tord_symmetric View Vsgc_ioa Vsgc_types
