lib/totalorder/tord_client.ml: Action Fmt List Msg Proc String Tord_core View Vsgc_ioa Vsgc_types
