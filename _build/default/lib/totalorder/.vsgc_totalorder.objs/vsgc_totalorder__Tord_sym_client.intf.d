lib/totalorder/tord_sym_client.mli: Action Proc Tord_symmetric View Vsgc_ioa Vsgc_types
