lib/totalorder/tord_core.mli: Proc View Vsgc_types
