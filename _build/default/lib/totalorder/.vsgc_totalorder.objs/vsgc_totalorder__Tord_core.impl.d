lib/totalorder/tord_core.ml: Fmt Int List Proc String View Vsgc_types
