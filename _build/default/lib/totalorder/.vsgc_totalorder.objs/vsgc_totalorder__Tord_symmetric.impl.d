lib/totalorder/tord_symmetric.ml: Fmt Int List Proc String View Vsgc_types
