(** The symmetric-total-order application component: the blocking-client
    shell (Figure 12) over {!Tord_symmetric}. Timestamps are assigned at
    actual send time; acknowledgments are derived from the core state. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  core : Tord_symmetric.t;
  me : Proc.t;
  block_status : block_status;
  to_send : string list;
  views : (View.t * Proc.Set.t) list;
  crashed : bool;
}

val initial : Proc.t -> t

val push : t ref -> string -> unit
(** Queue a payload for totally ordered multicast. *)

val total_order : t -> (Proc.t * string) list
val views : t -> (View.t * Proc.Set.t) list
val last_view : t -> (View.t * Proc.Set.t) option

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : Proc.t -> t Vsgc_ioa.Component.def
val component : Proc.t -> Vsgc_ioa.Component.packed * t ref
