(** The blocking application client (paper Figure 12, CLIENT_p : SPEC),
    executable and scriptable.

    The client sends the payloads queued by the harness whenever it is
    not blocked, answers block() with block_ok(), and refrains from
    sending until a view is delivered. It logs everything it observes —
    the integration tests and the liveness assertions read the logs. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  me : Proc.t;
  block_status : block_status;
  to_send : Msg.App_msg.t list;  (** oldest first *)
  send_while_requested : bool;
      (** Figure 12 allows sending until block_ok; scenarios may
          disable it for determinism *)
  sent : Msg.App_msg.t list;  (** newest first *)
  delivered : (Proc.t * Msg.App_msg.t) list;  (** newest first *)
  views : (View.t * Proc.Set.t) list;  (** newest first *)
  blocks_seen : int;
  crashed : bool;
}

val initial : ?send_while_requested:bool -> Proc.t -> t

(** {1 Scripting and observation} *)

val push : t ref -> string -> unit
(** Queue a payload for multicast. *)

val push_many : t ref -> string list -> unit

val sent : t -> Msg.App_msg.t list
(** Oldest first. *)

val delivered : t -> (Proc.t * Msg.App_msg.t) list
val views : t -> (View.t * Proc.Set.t) list
val delivered_from : t -> Proc.t -> Msg.App_msg.t list
val last_view : t -> (View.t * Proc.Set.t) option

(** {1 Component} *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : Proc.t -> t Vsgc_ioa.Component.def
val component :
  ?send_while_requested:bool -> Proc.t -> Vsgc_ioa.Component.packed * t ref
