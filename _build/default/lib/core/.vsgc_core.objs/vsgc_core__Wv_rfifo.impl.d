lib/core/wv_rfifo.ml: Action Int Map Msg Proc View Vsgc_types
