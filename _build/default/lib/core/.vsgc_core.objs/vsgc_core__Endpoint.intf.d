lib/core/endpoint.mli: Action Forwarding Gcs Proc View Vs_rfifo_ts Vsgc_ioa Vsgc_types Wv_rfifo
