lib/core/endpoint.ml: Action Fmt Gcs List Msg Proc Vs_rfifo_ts Vsgc_ioa Vsgc_types Wv_rfifo
