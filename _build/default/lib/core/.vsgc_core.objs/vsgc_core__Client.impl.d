lib/core/client.ml: Action Fmt List Msg Proc View Vsgc_ioa Vsgc_types
