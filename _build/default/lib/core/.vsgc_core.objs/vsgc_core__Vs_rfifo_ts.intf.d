lib/core/vs_rfifo_ts.mli: Action Forwarding Map Msg Proc Set View Vsgc_types Wv_rfifo
