lib/core/gcs.mli: Forwarding Vs_rfifo_ts Vsgc_types
