lib/core/forwarding.ml:
