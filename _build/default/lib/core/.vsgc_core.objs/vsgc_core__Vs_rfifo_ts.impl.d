lib/core/vs_rfifo_ts.ml: Action Forwarding Fun Int List Map Msg Proc Set View Vsgc_types Wv_rfifo
