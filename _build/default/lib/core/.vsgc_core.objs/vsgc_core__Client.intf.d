lib/core/client.mli: Action Msg Proc View Vsgc_ioa Vsgc_types
