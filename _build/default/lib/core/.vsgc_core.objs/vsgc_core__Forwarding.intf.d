lib/core/forwarding.mli:
