lib/core/gcs.ml: Vs_rfifo_ts
