lib/core/wv_rfifo.mli: Action Map Msg Proc View Vsgc_types
