(** Forwarding strategies for messages from disconnected end-points
    (paper §5.2.2).

    [Simple]: any end-point that committed to deliver a message and
    learns from a peer's synchronization message that the peer misses
    it forwards the message — several holders may forward the same
    copy. [Min_copies]: the minimum-id committed holder within the
    transitional set forwards each missing message, so usually exactly
    one copy travels. [Off] disables forwarding (the pure within-view
    layer leaves the strategy open). *)

type kind = Off | Simple | Min_copies

val to_string : kind -> string
