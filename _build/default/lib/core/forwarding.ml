(* Forwarding strategies for messages from disconnected end-points
   (paper §5.2.2).

   [Simple]: any end-point that has committed to deliver a message and
   learns from a peer's synchronization message that the peer misses it
   forwards the message — multiple copies of the same message may be
   forwarded by different end-points.

   [Min_copies]: once the membership view and all relevant
   synchronization messages are known, the members of the transitional
   set deterministically elect (by minimum identifier) a single member
   to forward each missing message, so usually exactly one copy of each
   message is sent.

   [Off] disables forwarding; the pure within-view layer (Figure 9)
   leaves the strategy open. *)

type kind = Off | Simple | Min_copies

let to_string = function
  | Off -> "off"
  | Simple -> "simple"
  | Min_copies -> "min-copies"
