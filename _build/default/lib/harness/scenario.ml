(* A declarative scenario language over monitored systems.

   Tests, the property generators, and the CLI all drive systems
   through the same small vocabulary of steps: membership changes
   (through the oracle), traffic, partial runs, crashes/recoveries,
   and checkpoints with named assertions. A scenario is data — it can
   be printed, shrunk by qcheck, and replayed deterministically. *)

open Vsgc_types

type step =
  | Reconfigure of { origin : int; set : Proc.Set.t }
      (** start_change to all of [set], then the agreed view *)
  | Start_change of Proc.Set.t
      (** a change announcement without (yet) a view — the membership
          "changing its mind" ingredient *)
  | Deliver_view of { origin : int; set : Proc.Set.t }
  | Send of { from : Proc.t; payloads : string list }
  | Broadcast of { senders : Proc.Set.t; per_sender : int }
  | Crash of Proc.t
  | Recover of Proc.t
  | Run of int  (** let the scheduler take up to this many steps *)
  | Settle  (** run to quiescence; monitors discharge *)
  | Check of string * (System.t -> bool)
      (** named assertion over the system state *)

let pp_step ppf = function
  | Reconfigure { origin; set } ->
      Fmt.pf ppf "reconfigure~%d%a" origin Proc.Set.pp set
  | Start_change set -> Fmt.pf ppf "start_change%a" Proc.Set.pp set
  | Deliver_view { origin; set } -> Fmt.pf ppf "deliver_view~%d%a" origin Proc.Set.pp set
  | Send { from; payloads } -> Fmt.pf ppf "send(%a,%d)" Proc.pp from (List.length payloads)
  | Broadcast { senders; per_sender } ->
      Fmt.pf ppf "broadcast(%a,%d)" Proc.Set.pp senders per_sender
  | Crash p -> Fmt.pf ppf "crash(%a)" Proc.pp p
  | Recover p -> Fmt.pf ppf "recover(%a)" Proc.pp p
  | Run k -> Fmt.pf ppf "run(%d)" k
  | Settle -> Fmt.pf ppf "settle"
  | Check (name, _) -> Fmt.pf ppf "check(%s)" name

type t = step list

let pp = Fmt.list ~sep:(Fmt.any "; ") pp_step

exception Check_failed of string

(* Execute a scenario against a system. Raises [Check_failed],
   [Vsgc_ioa.Monitor.Violation], or [Failure] (no quiescence) — a
   normal return means every step succeeded. *)
let run (sys : System.t) (scenario : t) =
  List.iter
    (fun step ->
      match step with
      | Reconfigure { origin; set } -> ignore (System.reconfigure sys ~origin ~set)
      | Start_change set -> ignore (System.start_change sys ~set)
      | Deliver_view { origin; set } -> ignore (System.deliver_view sys ~origin ~set)
      | Send { from; payloads } -> List.iter (System.send sys from) payloads
      | Broadcast { senders; per_sender } -> System.broadcast sys ~senders ~per_sender
      | Crash p -> System.crash sys p
      | Recover p -> System.recover sys p
      | Run k -> ignore (System.run sys ~max_steps:k)
      | Settle -> System.settle sys
      | Check (name, pred) -> if not (pred sys) then raise (Check_failed name))
    scenario

(* -- Common assertions ---------------------------------------------------- *)

let all_in_last_view set sys =
  match System.last_view_of sys (Proc.Set.min_elt set) with
  | Some (v, _) ->
      Proc.Set.equal (View.set v) set
      && Proc.Set.for_all
           (fun p ->
             match System.last_view_of sys p with
             | Some (v', _) -> View.equal v v'
             | None -> false)
           set
  | None -> false

let delivered_at_least ~at ~from ~count sys =
  List.length (Vsgc_core.Client.delivered_from !(System.client sys at) from) >= count

(* -- A library of named scenarios (shared with the CLI) -------------------- *)

let stable ~n : t =
  let all = Proc.Set.of_range 0 (n - 1) in
  [
    Reconfigure { origin = 0; set = all };
    Broadcast { senders = all; per_sender = 3 };
    Settle;
    Check ("all in view", all_in_last_view all);
  ]

let partition_heal ~n : t =
  let all = Proc.Set.of_range 0 (n - 1) in
  let half = n / 2 in
  [
    Reconfigure { origin = 0; set = all };
    Broadcast { senders = all; per_sender = 2 };
    Reconfigure { origin = 1; set = Proc.Set.of_range 0 (half - 1) };
    Reconfigure { origin = 2; set = Proc.Set.of_range half (n - 1) };
    Settle;
    Reconfigure { origin = 3; set = all };
    Settle;
    Check ("healed", all_in_last_view all);
  ]

let crash_recover ~n : t =
  let all = Proc.Set.of_range 0 (n - 1) in
  let survivors = Proc.Set.of_range 0 (n - 2) in
  [
    Reconfigure { origin = 0; set = all };
    Broadcast { senders = all; per_sender = 2 };
    Run 150;
    Crash (n - 1);
    Reconfigure { origin = 1; set = survivors };
    Settle;
    Check ("survivors regrouped", all_in_last_view survivors);
    Recover (n - 1);
    Reconfigure { origin = 2; set = all };
    Settle;
    Check ("rejoined", all_in_last_view all);
  ]

let churn_with_mind_changes ~n : t =
  let core = Proc.Set.of_range 0 (n - 2) in
  let all = Proc.Set.of_range 0 (n - 1) in
  [
    Reconfigure { origin = 0; set = core };
    Broadcast { senders = core; per_sender = 2 };
    (* the membership changes its mind before the view completes *)
    Start_change core;
    Start_change all;
    Deliver_view { origin = 1; set = all };
    Settle;
    Check ("final view includes the joiner", all_in_last_view all);
  ]

let catalog ~n =
  [
    ("stable", stable ~n);
    ("partition-heal", partition_heal ~n);
    ("crash-recover", crash_recover ~n);
    ("churn", churn_with_mind_changes ~n);
  ]
