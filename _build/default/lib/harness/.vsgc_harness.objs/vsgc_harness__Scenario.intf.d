lib/harness/scenario.mli: Format Proc System Vsgc_types
