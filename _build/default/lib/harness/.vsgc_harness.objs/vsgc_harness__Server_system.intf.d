lib/harness/server_system.mli: Action Proc Server System Vsgc_core Vsgc_ioa Vsgc_mbrshp Vsgc_types
