lib/harness/server_system.ml: Action Proc Server System Vsgc_ioa Vsgc_mbrshp Vsgc_types
