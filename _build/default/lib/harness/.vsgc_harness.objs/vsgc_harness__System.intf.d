lib/harness/system.mli: Action Msg Proc View Vsgc_checker Vsgc_core Vsgc_corfifo Vsgc_ioa Vsgc_mbrshp Vsgc_types
