lib/harness/system.ml: Action Fmt List Option Proc View Vsgc_checker Vsgc_core Vsgc_corfifo Vsgc_ioa Vsgc_mbrshp Vsgc_spec Vsgc_types
