lib/harness/scenario.ml: Fmt List Proc System View Vsgc_core Vsgc_types
