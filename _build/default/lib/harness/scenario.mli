(** A declarative scenario language over monitored systems.

    Tests, property generators, and the CLI share one vocabulary of
    steps; a scenario is data — printable, shrinkable, deterministic
    to replay. *)

open Vsgc_types

type step =
  | Reconfigure of { origin : int; set : Proc.Set.t }
  | Start_change of Proc.Set.t
  | Deliver_view of { origin : int; set : Proc.Set.t }
  | Send of { from : Proc.t; payloads : string list }
  | Broadcast of { senders : Proc.Set.t; per_sender : int }
  | Crash of Proc.t
  | Recover of Proc.t
  | Run of int
  | Settle
  | Check of string * (System.t -> bool)

val pp_step : Format.formatter -> step -> unit

type t = step list

val pp : Format.formatter -> t -> unit

exception Check_failed of string

val run : System.t -> t -> unit
(** Execute every step. Normal return means all assertions held and
    every [Settle] discharged the monitors.
    @raise Check_failed on a failed assertion.
    @raise Vsgc_ioa.Monitor.Violation on a specification violation. *)

(** {1 Common assertions} *)

val all_in_last_view : Proc.Set.t -> System.t -> bool
val delivered_at_least : at:Proc.t -> from:Proc.t -> count:int -> System.t -> bool

(** {1 Named scenarios (shared with the CLI)} *)

val stable : n:int -> t
val partition_heal : n:int -> t
val crash_recover : n:int -> t
val churn_with_mind_changes : n:int -> t
val catalog : n:int -> (string * t) list
