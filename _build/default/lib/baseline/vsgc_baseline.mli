(** The sequential-rounds baseline comparator.

    Models the classical virtual-synchrony construction the paper
    contrasts with ([7, 22]-style, §1, §5.2, §9): synchronization
    messages must carry a globally unique pre-agreed identifier — in
    practice the identifier of the view being installed — so the cut
    exchange can only start once the membership algorithm has
    terminated and announced that view. The rounds are SEQUENTIAL where
    the paper's algorithm overlaps them (bench E1/E7), and membership
    views are processed to termination in FIFO order, so views already
    known to be out of date are still delivered (bench E5).

    The message-stream machinery is inherited from the paper's own
    {!Vsgc_core.Wv_rfifo} layer, so the baseline differs only in the
    reconfiguration protocol. Forwarding is not modelled; comparison
    scenarios keep members connected. *)

open Vsgc_types

module Vid_map : Map.S with type key = View.Id.t

type block_status = Unblocked | Requested | Blocked

type bsync = { view : View.t; cut : Msg.Cut.t }

type t = {
  wv : Vsgc_core.Wv_rfifo.t;
  start_change : Proc.Set.t option;
  pending_views : View.t list;  (** membership views, processed FIFO *)
  bsyncs : bsync Vid_map.t Proc.Map.t;  (** bsyncs[q][target view id] *)
  block_status : block_status;
  crashed : bool;
}

val initial : Proc.t -> t
val target : t -> View.t option
(** The head pending view, when newer than the current one. *)

val view_ready : t -> (View.t * Proc.Set.t) option
val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : Proc.t -> t Vsgc_ioa.Component.def
val component : Proc.t -> Vsgc_ioa.Component.packed * t ref
