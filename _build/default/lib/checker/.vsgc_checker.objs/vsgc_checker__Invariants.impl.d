lib/checker/invariants.ml: Fmt List Msg Proc View Vsgc_core Vsgc_corfifo Vsgc_mbrshp Vsgc_types
