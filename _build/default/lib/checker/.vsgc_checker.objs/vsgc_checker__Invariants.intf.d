lib/checker/invariants.mli: Proc Vsgc_core Vsgc_corfifo Vsgc_mbrshp Vsgc_types
