(* Monitor for the membership service safety specification
   (paper §3.1, Figure 2, automaton MBRSHP).

   Checks, per process p:
   - start_change identifiers are locally unique and increasing, and
     every start_change includes p (Self Inclusion on proposals);
   - view identifiers are strictly increasing (Local Monotonicity);
   - every view includes p (Self Inclusion), its member set is a subset
     of the set in the latest preceding start_change, its startId for p
     equals the cid of that start_change, and at least one start_change
     separates consecutive views (the mode discipline). *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

type mode = Normal | Change_started

type pst = {
  last_cid : View.Sc_id.t;
  last_sc_set : Proc.Set.t;
  last_vid : View.Id.t;
  mode : mode;
}

let monitor ?(name = "mbrshp_spec") () =
  let st : (Proc.t, pst) Hashtbl.t = Hashtbl.create 16 in
  let get p =
    match Hashtbl.find_opt st p with
    | Some x -> x
    | None ->
        {
          last_cid = View.Sc_id.zero;
          last_sc_set = Proc.Set.empty;
          last_vid = View.Id.zero;
          mode = Normal;
        }
  in
  let on_action (a : Action.t) =
    match a with
    | Action.Mb_start_change (p, cid, set) ->
        let s = get p in
        M.check ~monitor:name
          (View.Sc_id.compare cid s.last_cid > 0)
          "start_change id %a for %a not above %a" View.Sc_id.pp cid Proc.pp p
          View.Sc_id.pp s.last_cid;
        M.check ~monitor:name (Proc.Set.mem p set)
          "start_change to %a omits it from the proposed set %a" Proc.pp p
          Proc.Set.pp set;
        Hashtbl.replace st p
          { s with last_cid = cid; last_sc_set = set; mode = Change_started }
    | Action.Mb_view (p, v) ->
        let s = get p in
        M.check ~monitor:name
          (View.Id.lt s.last_vid (View.id v))
          "view %a for %a violates Local Monotonicity (last %a)" View.Id.pp
          (View.id v) Proc.pp p View.Id.pp s.last_vid;
        M.check ~monitor:name (View.mem p v)
          "view %a delivered to non-member %a (Self Inclusion)" View.pp v Proc.pp p;
        M.check ~monitor:name
          (Proc.Set.subset (View.set v) s.last_sc_set)
          "view set %a not within preceding start_change set %a" Proc.Set.pp
          (View.set v) Proc.Set.pp s.last_sc_set;
        M.check ~monitor:name
          (View.Sc_id.equal (View.start_id v p) s.last_cid)
          "view startId(%a)=%a differs from last start_change id %a" Proc.pp p
          View.Sc_id.pp (View.start_id v p) View.Sc_id.pp s.last_cid;
        M.check ~monitor:name (s.mode = Change_started)
          "view %a delivered to %a without a preceding start_change" View.pp v
          Proc.pp p;
        Hashtbl.replace st p { s with last_vid = View.id v; mode = Normal }
    | _ -> ()
  in
  M.make name on_action
