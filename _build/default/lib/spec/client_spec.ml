(* Monitor for the blocking-client contract
   (paper §6.4, Figure 12, automaton CLIENT : SPEC).

   A client answers block() with block_ok() and then refrains from
   sending until a view is delivered; it never sends while blocked and
   never acknowledges a block it was not asked for. The GCS side is
   also checked: block() is only issued once per reconfiguration. *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

type status = Unblocked | Requested | Blocked

let monitor ?(name = "client_spec") () =
  let st : (Proc.t, status) Hashtbl.t = Hashtbl.create 16 in
  let get p = match Hashtbl.find_opt st p with Some s -> s | None -> Unblocked in
  let on_action (a : Action.t) =
    match a with
    | Action.Block p ->
        M.check ~monitor:name (get p = Unblocked)
          "block_%a() issued while already %s" Proc.pp p
          (match get p with Requested -> "requested" | Blocked -> "blocked" | Unblocked -> "?");
        Hashtbl.replace st p Requested
    | Action.Block_ok p ->
        M.check ~monitor:name (get p = Requested)
          "block_ok_%a() without a pending block request" Proc.pp p;
        Hashtbl.replace st p Blocked
    | Action.App_send (p, m) ->
        M.check ~monitor:name (get p <> Blocked)
          "client %a sent %a while blocked" Proc.pp p Msg.App_msg.pp m
    | Action.App_view (p, _, _) -> Hashtbl.replace st p Unblocked
    | Action.Crash p | Action.Recover p -> Hashtbl.replace st p Unblocked
    | _ -> ()
  in
  M.make name on_action
