(* Monitor for the connection-oriented reliable FIFO multicast service
   specification (paper §3.2, Figure 3, automaton CO_RFIFO).

   Reconstructs the per-pair channels from send events and checks that
   every delivery pops the channel head (gap-free FIFO), and that loss
   happens only toward targets outside the sender's reliable set and
   only from the channel tail. *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

let monitor ?(name = "co_rfifo_spec") () =
  let channels : (Proc.t * Proc.t, Msg.Wire.t Fqueue.t) Hashtbl.t = Hashtbl.create 64 in
  let reliable : (Proc.t, Proc.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let chan pq = match Hashtbl.find_opt channels pq with Some c -> c | None -> Fqueue.empty in
  let reliable_set p =
    match Hashtbl.find_opt reliable p with Some s -> s | None -> Proc.Set.singleton p
  in
  let on_action (a : Action.t) =
    match a with
    | Action.Rf_send (p, set, m) ->
        Proc.Set.iter (fun q -> Hashtbl.replace channels (p, q) (Fqueue.push (chan (p, q)) m)) set
    | Action.Rf_deliver (p, q, m) -> (
        match Fqueue.pop (chan (p, q)) with
        | Some (m', rest) when Msg.Wire.equal m m' -> Hashtbl.replace channels (p, q) rest
        | Some (m', _) ->
            M.violate ~monitor:name
              "deliver_{%a,%a}(%a) is not the channel head (%a expected): FIFO violated"
              Proc.pp p Proc.pp q Msg.Wire.pp m Msg.Wire.pp m'
        | None ->
            M.violate ~monitor:name "deliver_{%a,%a}(%a) from an empty channel"
              Proc.pp p Proc.pp q Msg.Wire.pp m)
    | Action.Rf_lose (p, q) -> (
        M.check ~monitor:name
          (not (Proc.Set.mem q (reliable_set p)))
          "lose(%a,%a) while %a is in %a's reliable set" Proc.pp p Proc.pp q
          Proc.pp q Proc.pp p;
        match Fqueue.drop_last (chan (p, q)) with
        | Some rest -> Hashtbl.replace channels (p, q) rest
        | None -> M.violate ~monitor:name "lose(%a,%a) on empty channel" Proc.pp p Proc.pp q)
    | Action.Rf_reliable (p, set) -> Hashtbl.replace reliable p set
    | Action.Crash p ->
        Hashtbl.replace reliable p Proc.Set.empty;
        (* incoming connections die with the process *)
        Hashtbl.iter
          (fun (a, b) _ -> if Proc.equal b p then Hashtbl.replace channels (a, b) Fqueue.empty)
          (Hashtbl.copy channels)
    | _ -> ()
  in
  M.make name on_action
