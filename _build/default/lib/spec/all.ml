(* Convenience: every safety monitor at once — what the integration and
   property-based tests attach to monitored runs. *)

let safety () =
  [
    Mbrshp_spec.monitor ();
    Co_rfifo_spec.monitor ();
    Wv_rfifo_spec.monitor ();
    Vs_rfifo_spec.monitor ();
    Trans_set_spec.monitor ();
    Self_spec.monitor ();
    Client_spec.monitor ();
  ]

(* Monitors meaningful for the pure within-view layer (`Wv endpoints):
   no virtual synchrony, transitional sets, or self-delivery claims. *)
let wv_only () =
  [ Mbrshp_spec.monitor (); Co_rfifo_spec.monitor (); Wv_rfifo_spec.monitor () ]
