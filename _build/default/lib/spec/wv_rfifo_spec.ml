(* Monitor for the within-view reliable FIFO multicast service
   specification (paper §4.1.1, Figure 4, automaton WV_RFIFO : SPEC).

   - views delivered to the application satisfy Self Inclusion and
     Local Monotonicity;
   - the i'th message delivered to p from q in p's current view is the
     i'th message q's application sent in that view (within-view,
     gap-free FIFO delivery). *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

let monitor ?(name = "wv_rfifo_spec") () =
  let t = Tracker.create () in
  let on_action (a : Action.t) =
    (match a with
    | Action.App_deliver (p, q, m) -> (
        let v = Tracker.current_view t p in
        let i = Tracker.last_dlvrd t ~from:q ~at:p + 1 in
        match Tracker.msg_at t q v i with
        | Some m' when Msg.App_msg.equal m m' -> ()
        | Some m' ->
            M.violate ~monitor:name
              "deliver_%a(%a,%a): index %d in view %a holds %a" Proc.pp p Proc.pp
              q Msg.App_msg.pp m i View.Id.pp (View.id v) Msg.App_msg.pp m'
        | None ->
            M.violate ~monitor:name
              "deliver_%a(%a,%a): no message at index %d of msgs[%a][%a]" Proc.pp
              p Proc.pp q Msg.App_msg.pp m i Proc.pp q View.Id.pp (View.id v))
    | Action.App_view (p, v, _) ->
        M.check ~monitor:name (View.mem p v) "view_%a(%a): Self Inclusion violated"
          Proc.pp p View.pp v;
        M.check ~monitor:name
          (View.Id.lt (View.id (Tracker.current_view t p)) (View.id v))
          "view_%a(%a): Local Monotonicity violated (current %a)" Proc.pp p
          View.pp v View.Id.pp (View.id (Tracker.current_view t p))
    | _ -> ());
    Tracker.update t a
  in
  M.make name on_action
