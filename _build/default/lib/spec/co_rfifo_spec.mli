(** Monitor for the CO_RFIFO specification (paper §3.2, Figure 3):
    reconstructs the per-pair channels from send events and checks
    gap-free FIFO delivery, and that loss happens only toward targets
    outside the sender's reliable set and only from the channel tail. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
