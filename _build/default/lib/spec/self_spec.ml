(* Monitor for the Self Delivery property
   (paper §4.1.4, Figure 7, automaton SELF : SPEC).

   An end-point may not deliver a new view without having delivered to
   its own application every message that application sent in the
   current view: at every view_p event,
   last_dlvrd[p][p] = LastIndexOf(msgs[p][current_view[p]]). *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

let monitor ?(name = "self_spec") () =
  let t = Tracker.create () in
  let on_action (a : Action.t) =
    (match a with
    | Action.App_view (p, _, _) ->
        let v = Tracker.current_view t p in
        let sent = Tracker.sent_in_view t p v in
        let delivered = Tracker.last_dlvrd t ~from:p ~at:p in
        M.check ~monitor:name (delivered = sent)
          "Self Delivery violated: %a delivered %d of its own %d messages \
           before leaving view %a"
          Proc.pp p delivered sent View.Id.pp (View.id v)
    | _ -> ());
    Tracker.update t a
  in
  M.make name on_action
