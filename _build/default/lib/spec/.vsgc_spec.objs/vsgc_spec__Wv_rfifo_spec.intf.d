lib/spec/wv_rfifo_spec.mli: Vsgc_ioa
