lib/spec/tracker.ml: Action Int Map Msg Proc View Vsgc_types
