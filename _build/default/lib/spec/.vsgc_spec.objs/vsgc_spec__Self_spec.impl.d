lib/spec/self_spec.ml: Action Proc Tracker View Vsgc_ioa Vsgc_types
