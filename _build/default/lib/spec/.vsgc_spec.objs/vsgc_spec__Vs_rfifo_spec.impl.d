lib/spec/vs_rfifo_spec.ml: Action Map Msg Proc Tracker View Vsgc_ioa Vsgc_types
