lib/spec/tracker.mli: Action Msg Proc View Vsgc_types
