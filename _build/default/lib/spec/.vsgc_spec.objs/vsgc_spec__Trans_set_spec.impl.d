lib/spec/trans_set_spec.ml: Action List Proc Tracker View Vsgc_ioa Vsgc_types
