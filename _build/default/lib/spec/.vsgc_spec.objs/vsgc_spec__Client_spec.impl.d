lib/spec/client_spec.ml: Action Hashtbl Msg Proc Vsgc_ioa Vsgc_types
