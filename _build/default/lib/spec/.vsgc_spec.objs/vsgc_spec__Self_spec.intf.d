lib/spec/self_spec.mli: Vsgc_ioa
