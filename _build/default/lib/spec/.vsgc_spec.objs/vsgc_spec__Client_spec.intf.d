lib/spec/client_spec.mli: Vsgc_ioa
