lib/spec/all.ml: Client_spec Co_rfifo_spec Mbrshp_spec Self_spec Trans_set_spec Vs_rfifo_spec Wv_rfifo_spec
