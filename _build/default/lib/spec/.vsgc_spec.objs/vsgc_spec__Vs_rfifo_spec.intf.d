lib/spec/vs_rfifo_spec.mli: Vsgc_ioa
