lib/spec/all.mli: Vsgc_ioa
