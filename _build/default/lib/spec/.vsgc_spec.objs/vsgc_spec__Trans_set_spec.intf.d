lib/spec/trans_set_spec.mli: Vsgc_ioa
