lib/spec/mbrshp_spec.mli: Vsgc_ioa
