lib/spec/mbrshp_spec.ml: Action Hashtbl Proc View Vsgc_ioa Vsgc_types
