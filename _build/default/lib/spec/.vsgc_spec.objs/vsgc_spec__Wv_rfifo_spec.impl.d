lib/spec/wv_rfifo_spec.ml: Action Msg Proc Tracker View Vsgc_ioa Vsgc_types
