lib/spec/co_rfifo_spec.mli: Vsgc_ioa
