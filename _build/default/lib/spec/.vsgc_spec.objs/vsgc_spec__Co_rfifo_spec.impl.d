lib/spec/co_rfifo_spec.ml: Action Fqueue Hashtbl Msg Proc Vsgc_ioa Vsgc_types
