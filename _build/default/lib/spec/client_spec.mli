(** Monitor for the blocking-client contract (paper §6.4, Figure 12):
    block_ok only answers a pending block, no sends while blocked,
    blocks are not reissued before the view. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
