(** Monitor for the Self Delivery property (paper §4.1.4, Figure 7):
    at every view event, the process has delivered to its own
    application every message that application sent in the current
    view. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
