(** Monitor for VS_RFIFO : SPEC (paper §4.1.2, Figure 5). The abstract
    set_cut nondeterminism is resolved exactly as the refinement proof
    resolves it with the H_cut history variable (§6.2.2): the first
    process observed to move from v to v' defines cut[v][v']; every
    later v->v' mover must have delivered exactly that vector. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
