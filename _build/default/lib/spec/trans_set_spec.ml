(* Monitor for the Transitional Set property
   (paper §4.1.3, Figure 6, automaton TRANS_SET : SPEC; Property 4.1).

   When p moves from v to v' delivering transitional set T:
   - T is a subset of v.set ∩ v'.set and contains p;
   - every process q of v.set ∩ v'.set that (ever) delivers v' is in T
     iff q moved to v' directly from v;
   - two processes moving v -> v' deliver the same T.

   The second clause can only be judged once q's own transition is
   observed, so it is checked both online (against already-recorded
   transitions) and at the end of the trace. *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

type transition = { who : Proc.t; prev : View.t; next : View.t; tset : Proc.Set.t }

let monitor ?(name = "trans_set_spec") () =
  let t = Tracker.create () in
  let transitions : transition list ref = ref [] in
  let cross_check (a : transition) (b : transition) =
    (* b is q's transition into the view a moved into *)
    if View.equal a.next b.next && Proc.Set.mem b.who (Proc.Set.inter (View.set a.prev) (View.set a.next))
    then begin
      let together = View.equal b.prev a.prev in
      M.check ~monitor:name
        (Proc.Set.mem b.who a.tset = together)
        "Transitional Set violated: %a's T for %a->%a %s %a, which moved from %a"
        Proc.pp a.who View.Id.pp (View.id a.prev) View.Id.pp (View.id a.next)
        (if Proc.Set.mem b.who a.tset then "contains" else "omits")
        Proc.pp b.who View.Id.pp (View.id b.prev);
      if together then
        M.check ~monitor:name
          (Proc.Set.equal a.tset b.tset)
          "processes %a and %a move %a->%a with different transitional sets %a vs %a"
          Proc.pp a.who Proc.pp b.who View.Id.pp (View.id a.prev) View.Id.pp
          (View.id a.next) Proc.Set.pp a.tset Proc.Set.pp b.tset
    end
  in
  let on_action (a : Action.t) =
    (match a with
    | Action.App_view (p, v', tset) ->
        let v = Tracker.current_view t p in
        M.check ~monitor:name
          (Proc.Set.subset tset (Proc.Set.inter (View.set v) (View.set v')))
          "T=%a not within %a ∩ %a" Proc.Set.pp tset Proc.Set.pp (View.set v)
          Proc.Set.pp (View.set v');
        M.check ~monitor:name (Proc.Set.mem p tset)
          "process %a missing from its own transitional set %a" Proc.pp p
          Proc.Set.pp tset;
        let tr = { who = p; prev = v; next = v'; tset } in
        List.iter
          (fun old ->
            cross_check tr old;
            cross_check old tr)
          !transitions;
        transitions := tr :: !transitions
    | _ -> ());
    Tracker.update t a
  in
  (* The online pass already cross-checks every pair (each new
     transition is checked against all recorded ones, in both
     directions), so at_end has nothing left to verify. *)
  M.make name on_action
