(** Shared trace bookkeeping for the specification monitors:
    reconstructs, from the externally observable trace alone, the state
    of the centralized specification automata of paper §4 — per-process
    current views, the per-sender per-view message sequences, and the
    delivery indices. Crash events reset the crashed process's receiver
    state (§8). *)

open Vsgc_types

type t

val create : unit -> t
val current_view : t -> Proc.t -> View.t
val sent_in_view : t -> Proc.t -> View.t -> int
val msg_at : t -> Proc.t -> View.t -> int -> Msg.App_msg.t option
val last_dlvrd : t -> from:Proc.t -> at:Proc.t -> int

val update : t -> Action.t -> unit
(** Bookkeeping update; monitors call it AFTER their checks. *)
