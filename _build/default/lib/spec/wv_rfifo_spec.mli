(** Monitor for WV_RFIFO : SPEC (paper §4.1.1, Figure 4): Self
    Inclusion and Local Monotonicity on application views; the i'th
    message delivered to p from q in p's current view is the i'th
    message q's application sent in that view. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
