(** Monitor for the membership service safety specification
    (paper §3.1, Figure 2): locally unique increasing start_change
    identifiers, Self Inclusion, Local Monotonicity, view sets within
    the preceding proposal, startId bookkeeping, mode discipline. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
