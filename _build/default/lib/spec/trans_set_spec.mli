(** Monitor for the Transitional Set property (paper §4.1.3, Figure 6;
    Property 4.1): T within the view intersection and containing the
    mover; membership in T iff the peer moved from the same previous
    view (cross-checked pairwise over all observed transitions); equal
    T for processes moving together. *)

val monitor : ?name:string -> unit -> Vsgc_ioa.Monitor.t
