(* Shared trace bookkeeping for the specification monitors.

   Reconstructs, from the externally observable trace alone, the state
   of the centralized specification automata of paper §4: per-process
   current views, the per-sender per-view message sequences (msgs[p][v])
   as defined by send events, and the delivery indices
   (last_dlvrd[q][p]). Each monitor owns its own tracker so monitors
   stay independent. *)

open Vsgc_types
module Int_map = Map.Make (Int)

type t = {
  mutable current_view : View.t Proc.Map.t;  (* default View.initial p *)
  mutable msgs : Msg.App_msg.t Int_map.t View.Map.t Proc.Map.t;
      (* msgs[sender][view][i], 1-based, always contiguous *)
  mutable sent_count : int View.Map.t Proc.Map.t;
  mutable last_dlvrd : int Proc.Map.t Proc.Map.t;  (* last_dlvrd[q][p]: q's msgs delivered to p *)
}

let create () =
  {
    current_view = Proc.Map.empty;
    msgs = Proc.Map.empty;
    sent_count = Proc.Map.empty;
    last_dlvrd = Proc.Map.empty;
  }

let current_view t p = Proc.Map.find_default ~default:(View.initial p) p t.current_view

let sent_in_view t p v =
  match Proc.Map.find_opt p t.sent_count with
  | None -> 0
  | Some m -> ( match View.Map.find_opt v m with None -> 0 | Some n -> n)

let msg_at t p v i =
  match Proc.Map.find_opt p t.msgs with
  | None -> None
  | Some per_view -> (
      match View.Map.find_opt v per_view with
      | None -> None
      | Some q -> Int_map.find_opt i q)

let last_dlvrd t ~from:q ~at:p =
  match Proc.Map.find_opt q t.last_dlvrd with
  | None -> 0
  | Some m -> Proc.Map.find_default ~default:0 p m

(* Bookkeeping update; call AFTER a monitor's checks for the action. *)
let update t (a : Action.t) =
  match a with
  | Action.App_send (p, m) ->
      let v = current_view t p in
      let n = sent_in_view t p v + 1 in
      let per_view =
        match Proc.Map.find_opt p t.msgs with None -> View.Map.empty | Some x -> x
      in
      let q = match View.Map.find_opt v per_view with None -> Int_map.empty | Some x -> x in
      t.msgs <- Proc.Map.add p (View.Map.add v (Int_map.add n m q) per_view) t.msgs;
      let counts =
        match Proc.Map.find_opt p t.sent_count with None -> View.Map.empty | Some x -> x
      in
      t.sent_count <- Proc.Map.add p (View.Map.add v n counts) t.sent_count
  | Action.App_deliver (p, q, _) ->
      let m =
        match Proc.Map.find_opt q t.last_dlvrd with None -> Proc.Map.empty | Some x -> x
      in
      let n = Proc.Map.find_default ~default:0 p m + 1 in
      t.last_dlvrd <- Proc.Map.add q (Proc.Map.add p n m) t.last_dlvrd
  | Action.App_view (p, v, _) ->
      t.current_view <- Proc.Map.add p v t.current_view;
      (* (forall q) last_dlvrd[q][p] <- 0 *)
      t.last_dlvrd <-
        Proc.Map.map (fun m -> Proc.Map.remove p m) t.last_dlvrd
  | Action.Crash p ->
      (* §8: the end-point restarts from its initial state (no stable
         storage); messages it sent earlier stay visible to others —
         except those of its private initial singleton view, which only
         it could ever deliver and which a restart wipes. *)
      t.current_view <- Proc.Map.remove p t.current_view;
      t.last_dlvrd <- Proc.Map.map (fun m -> Proc.Map.remove p m) t.last_dlvrd;
      let wipe_initial m =
        match Proc.Map.find_opt p m with
        | Some per_view -> Proc.Map.add p (View.Map.remove (View.initial p) per_view) m
        | None -> m
      in
      t.msgs <- wipe_initial t.msgs;
      t.sent_count <- wipe_initial t.sent_count
  | _ -> ()
