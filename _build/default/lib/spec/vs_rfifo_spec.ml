(* Monitor for the virtually synchronous reliable FIFO multicast
   service specification (paper §4.1.2, Figure 5, automaton
   VS_RFIFO : SPEC, a child of WV_RFIFO : SPEC).

   The abstract set_cut action is internal, so the monitor resolves the
   nondeterminism exactly as the refinement proof does with the H_cut
   history variable (paper §6.2.2): the first process observed to move
   from view v to view v' defines cut[v][v'] as its delivered-message
   vector; every later process moving v -> v' must match it exactly. *)

open Vsgc_types
module M = Vsgc_ioa.Monitor

module Vpair = Map.Make (struct
  type t = View.t * View.t

  let compare (a, b) (c, d) =
    match View.compare a c with 0 -> View.compare b d | r -> r
end)

let monitor ?(name = "vs_rfifo_spec") () =
  let t = Tracker.create () in
  let cuts : Msg.Cut.t Vpair.t ref = ref Vpair.empty in
  let on_action (a : Action.t) =
    (match a with
    | Action.App_view (p, v', _) -> (
        let v = Tracker.current_view t p in
        (* p's delivered-message vector in v, restricted to v's members *)
        let delivered =
          Proc.Set.fold
            (fun q acc -> Msg.Cut.set acc q (Tracker.last_dlvrd t ~from:q ~at:p))
            (View.set v) Msg.Cut.empty
        in
        match Vpair.find_opt (v, v') !cuts with
        | None -> cuts := Vpair.add (v, v') delivered !cuts
        | Some cut ->
            Proc.Set.iter
              (fun q ->
                M.check ~monitor:name
                  (Msg.Cut.get cut q = Msg.Cut.get delivered q)
                  "Virtual Synchrony violated: %a moves %a->%a having delivered \
                   %d messages from %a, but the established cut says %d"
                  Proc.pp p View.Id.pp (View.id v) View.Id.pp (View.id v')
                  (Msg.Cut.get delivered q) Proc.pp q (Msg.Cut.get cut q))
              (View.set v))
    | _ -> ());
    Tracker.update t a
  in
  M.make name on_action
