(** Monitor bundles. *)

val safety : unit -> Vsgc_ioa.Monitor.t list
(** Every safety monitor of §4 plus the environment specs — what
    monitored integration runs attach. *)

val wv_only : unit -> Vsgc_ioa.Monitor.t list
(** The monitors meaningful for the pure within-view layer. *)
