lib/mbrshp/servers.ml: Action Fmt List Proc Server Srv_msg View Vsgc_ioa Vsgc_types
