lib/mbrshp/srv_net.mli: Action Fqueue Map Server Srv_msg Vsgc_ioa Vsgc_types
