lib/mbrshp/oracle.ml: Action Fmt List Proc View Vsgc_ioa Vsgc_types
