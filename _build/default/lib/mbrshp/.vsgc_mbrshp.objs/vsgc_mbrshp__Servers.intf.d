lib/mbrshp/servers.mli: Action Proc Server Srv_msg View Vsgc_ioa Vsgc_types
