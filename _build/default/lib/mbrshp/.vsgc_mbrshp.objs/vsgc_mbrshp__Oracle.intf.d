lib/mbrshp/oracle.mli: Action Proc View Vsgc_ioa Vsgc_types
