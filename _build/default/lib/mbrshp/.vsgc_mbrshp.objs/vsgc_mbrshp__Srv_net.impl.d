lib/mbrshp/srv_net.ml: Action Fqueue Hashtbl Map Server Srv_msg Vsgc_ioa Vsgc_types
