(** Reliable FIFO transport between membership servers.

    The service of [27] assumes reliable server-to-server links; this
    component provides them (no loss, per-pair FIFO). Deliveries are
    ordinary scheduler tasks, so server rounds interleave freely with
    client traffic — which is what the parallel-rounds experiments
    measure. *)

open Vsgc_types

module Pair_map : Map.S with type key = Server.t * Server.t

type state = Srv_msg.t Fqueue.t Pair_map.t

val initial : state
val channel : state -> Server.t -> Server.t -> Srv_msg.t Fqueue.t
val accepts : Action.t -> bool
val outputs : state -> Action.t list
val apply : state -> Action.t -> state
val def : state Vsgc_ioa.Component.def
val component : unit -> Vsgc_ioa.Component.packed * state ref
val round_budget : state ref -> unit -> Vsgc_ioa.Sync_runner.budget
