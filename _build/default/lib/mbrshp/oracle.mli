(** A scriptable membership service satisfying the MBRSHP specification
    (paper §3.1, Figure 2) by construction.

    Harnesses drive reconfigurations through the queueing API; the
    component emits the queued start_change and view events to each
    client in FIFO order, interleaved freely by the scheduler. Spec
    obligations (local monotonicity, self inclusion, startId
    bookkeeping, mode alternation) are validated at queueing time, so a
    script bug fails fast with [Invalid_argument]. *)

open Vsgc_types

type mode = Normal | Change_started

type pst = {
  last_cid : View.Sc_id.t;  (** last start_change id queued for p *)
  last_sc_set : Proc.Set.t;  (** member set in that start_change *)
  last_vid : View.Id.t;  (** id of the last view queued for p *)
  mode : mode;
  pending : Action.t list;  (** events queued, newest first *)
}

type state = pst Proc.Map.t

val initial : state
val pst : state -> Proc.t -> pst

(** {1 Scripting API (operates on the shared state ref)} *)

val queue_start_change : state ref -> set:Proc.Set.t -> View.Sc_id.t Proc.Map.t
(** Queue a start_change to every member of [set], each with a fresh
    locally-unique identifier; returns the identifiers. *)

val queue_view : state ref -> View.t -> unit
(** Queue delivery of a hand-built view to its members.
    @raise Invalid_argument if it violates the MBRSHP spec. *)

val form_view : state ref -> origin:int -> set:Proc.Set.t -> View.t
(** Build and queue the view following the queued start_changes:
    identifier above every member's last, startId map from the pending
    identifiers. *)

val change : state ref -> ?origin:int -> set:Proc.Set.t -> unit -> View.t
(** A full reconfiguration: start_change to all of [set], then the view. *)

(** {1 Component} *)

val outputs : state -> Action.t list
val apply : state -> Action.t -> state
val def : state Vsgc_ioa.Component.def
val component : unit -> Vsgc_ioa.Component.packed * state ref

val drained : state ref -> bool
(** True when every queued event has been emitted. *)
