(* Layer tests: the pure within-view reliable FIFO end-point (Figure 9)
   without the virtual-synchrony restrictions. *)

open Vsgc_types
module System = Vsgc_harness.System

let check = Alcotest.(check bool)

let wv_system ~seed ~n = System.create ~seed ~layer:`Wv ~monitors:`Wv ~n ()

let test_fifo_payloads () =
  let sys = wv_system ~seed:31 ~n:2 in
  let set = Proc.Set.of_range 0 1 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  for i = 1 to 10 do
    System.send sys 0 (Fmt.str "seq-%d" i)
  done;
  System.settle sys;
  let got =
    List.map Msg.App_msg.payload (Vsgc_core.Client.delivered_from !(System.client sys 1) 0)
  in
  Alcotest.(check (list string))
    "gap-free FIFO order" (List.init 10 (fun i -> Fmt.str "seq-%d" (i + 1))) got

let test_within_view_delivery () =
  (* a message sent in v1 must never be delivered in v2; with the WV
     layer, messages sent just before a view change are simply dropped
     at end-points that move on (no virtual synchrony yet) — the
     wv_rfifo_spec monitor validates every delivery's view *)
  let sys = wv_system ~seed:32 ~n:3 in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  System.broadcast sys ~senders:set ~per_sender:5;
  (* reconfigure concurrently with the traffic *)
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  check "monitored run completed" true true

let test_self_delivery_requires_send () =
  (* an end-point self-delivers its own message only after last_sent
     catches up (Figure 9's (q = p) => last_dlvrd < last_sent guard) *)
  let w = ref (Vsgc_core.Wv_rfifo.initial 0) in
  w := Vsgc_core.Wv_rfifo.send_effect !w (Msg.App_msg.make "mine");
  (* initial view is the singleton {p0}: no peers, but the guard still
     requires the CO_RFIFO send to have happened *)
  check "not deliverable before send" false (Vsgc_core.Wv_rfifo.deliver_enabled !w 0);
  (* the initial view's marker counts as already announced (the default
     view_msg[p] is the initial view), so the app send is next *)
  check "view_msg already announced initially" false
    (Vsgc_core.Wv_rfifo.view_msg_send_enabled !w);
  check "app send enabled" true (Vsgc_core.Wv_rfifo.app_msg_send_enabled !w);
  w := Vsgc_core.Wv_rfifo.app_msg_send_effect !w;
  check "deliverable after send" true (Vsgc_core.Wv_rfifo.deliver_enabled !w 0)

let test_longest_prefix_vs_last_index () =
  let open Vsgc_core.Wv_rfifo in
  let v = View.initial 9 in
  let w = initial 0 in
  let w = msgs_set w 9 v 1 (Msg.App_msg.make "a") in
  let w = msgs_set w 9 v 3 (Msg.App_msg.make "c") in
  Alcotest.(check int) "prefix stops at gap" 1 (longest_prefix w 9 v);
  Alcotest.(check int) "last index sees the gap" 3 (last_index w 9 v);
  let w = msgs_set w 9 v 2 (Msg.App_msg.make "b") in
  Alcotest.(check int) "prefix closes the gap" 3 (longest_prefix w 9 v)

let test_view_msg_resets_stream () =
  let open Vsgc_core.Wv_rfifo in
  let w = initial 0 in
  let v1 = View.initial 1 in
  let v2 =
    View.make ~id:(View.Id.make ~num:1 ~origin:0)
      ~set:(Proc.Set.of_list [ 0; 1 ])
      ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 1)
  in
  let w = recv w 1 (Msg.Wire.App (Msg.App_msg.make "x")) in
  Alcotest.(check int) "filed under v1 at index 1" 1 (last_rcvd w 1);
  check "stored in sender's announced view" true
    (msgs_get w 1 v1 1 <> None);
  let w = recv w 1 (Msg.Wire.View_msg v2) in
  Alcotest.(check int) "marker resets the index" 0 (last_rcvd w 1);
  let w = recv w 1 (Msg.Wire.App (Msg.App_msg.make "y")) in
  check "new messages filed under v2" true (msgs_get w 1 v2 1 <> None);
  check "old view untouched" true (msgs_get w 1 v1 1 <> None)

let suite =
  [
    Alcotest.test_case "gap-free FIFO payloads" `Quick test_fifo_payloads;
    Alcotest.test_case "within-view delivery under churn" `Quick test_within_view_delivery;
    Alcotest.test_case "self delivery requires send" `Quick test_self_delivery_requires_send;
    Alcotest.test_case "longest prefix vs last index" `Quick test_longest_prefix_vs_last_index;
    Alcotest.test_case "view_msg resets the stream" `Quick test_view_msg_resets_stream;
  ]
