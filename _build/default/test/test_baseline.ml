(* The sequential-rounds baseline must satisfy the same safety
   specifications in benign scenarios — it is slower, not wrong. *)

open Vsgc_types
module System = Vsgc_harness.System

let baseline_system ~seed ~n =
  System.create ~seed ~n
    ~endpoint_builder:(fun p -> fst (Vsgc_baseline.component p))
    ()

let test_view_and_multicast () =
  let sys = baseline_system ~seed:21 ~n:3 in
  let set = Proc.Set.of_range 0 2 in
  let view = System.reconfigure sys ~set in
  System.settle sys;
  Alcotest.(check bool) "view installed" true (System.all_in_view sys view);
  System.broadcast sys ~senders:set ~per_sender:4;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          Alcotest.(check int)
            (Fmt.str "%a got all of %a" Proc.pp p Proc.pp q)
            4
            (List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q)))
        set)
    set

let test_cascaded_views () =
  let sys = baseline_system ~seed:22 ~n:4 in
  let all = Proc.Set.of_range 0 3 in
  let v1 = System.reconfigure sys ~set:all in
  System.settle sys;
  Alcotest.(check bool) "v1" true (System.all_in_view sys v1);
  System.broadcast sys ~senders:all ~per_sender:2;
  let v2 = System.reconfigure sys ~set:(Proc.Set.of_range 0 2) in
  System.settle sys;
  Alcotest.(check bool) "v2" true (System.all_in_view sys v2)

(* The headline behavioural difference (paper §1): when the membership
   delivers a view that is already superseded, the paper's algorithm
   skips it while the baseline processes views to termination in order.
   Both are checked here at the trace level. *)
let obsolete_scenario sys =
  let trio = Proc.Set.of_range 0 2 in
  let quad = Proc.Set.of_range 0 3 in
  let _v1 = System.reconfigure sys ~set:trio in
  (* joiner shows up before anyone hears of v1: second change queued
     immediately, so endpoints see sc1,v1,sc2,v2 back to back. The
     round-synchronous runner makes the race deterministic: all four
     membership events land before any synchronization message does. *)
  let _v2 = System.reconfigure sys ~set:quad in
  ignore (System.run_rounds sys);
  System.settle sys;
  List.length (System.views_of sys 0)

let test_gcs_skips_obsolete () =
  let sys = System.create ~seed:23 ~n:4 () in
  let n_views = obsolete_scenario sys in
  Alcotest.(check int) "GCS delivers only the fresh view" 1 n_views

let test_baseline_delivers_obsolete () =
  let sys = baseline_system ~seed:23 ~n:4 in
  let n_views = obsolete_scenario sys in
  Alcotest.(check int) "baseline delivers both views" 2 n_views

let suite =
  [
    Alcotest.test_case "baseline: view and multicast" `Quick test_view_and_multicast;
    Alcotest.test_case "baseline: cascaded views" `Quick test_cascaded_views;
    Alcotest.test_case "GCS skips obsolete views" `Quick test_gcs_skips_obsolete;
    Alcotest.test_case "baseline delivers obsolete views" `Quick test_baseline_delivers_obsolete;
  ]
