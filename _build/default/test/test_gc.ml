(* The §5.1 garbage-collection optimization: with [gc] on, installing a
   view discards buffers of views older than the previous one, without
   affecting any externally observable behaviour (monitored runs). *)

open Vsgc_types
module System = Vsgc_harness.System
module Wv = Vsgc_core.Wv_rfifo

let run_views ~gc ~changes =
  let sys = System.create ~seed:77 ~gc ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  for i = 1 to changes do
    ignore (System.reconfigure sys ~origin:i ~set:all);
    System.broadcast sys ~senders:all ~per_sender:2;
    System.settle sys
  done;
  let w = Vsgc_core.Endpoint.wv !(System.endpoint sys 0) in
  Wv.buffered_queues w

let test_gc_bounds_buffers () =
  let with_gc = run_views ~gc:true ~changes:6 in
  let without = run_views ~gc:false ~changes:6 in
  (* gc keeps at most the previous and current view per sender *)
  Alcotest.(check bool)
    (Fmt.str "gc bounds buffers (%d <= 6)" with_gc)
    true (with_gc <= 6);
  Alcotest.(check bool)
    (Fmt.str "without gc buffers accumulate (%d > %d)" without with_gc)
    true (without > with_gc)

let test_gc_preserves_semantics () =
  (* the full partition/merge/forwarding machinery still works and
     passes every monitor with gc enabled *)
  let sys = System.create ~seed:78 ~gc:true ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:3;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  let v = System.reconfigure sys ~set:all in
  System.settle sys;
  Alcotest.(check bool) "merged view installed" true (System.all_in_view sys v);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          Alcotest.(check bool)
            (Fmt.str "%a got %a's post-merge traffic" Proc.pp p Proc.pp q)
            true
            (List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q) >= 2))
        all)
    all

let suite =
  [
    Alcotest.test_case "gc bounds buffers" `Quick test_gc_bounds_buffers;
    Alcotest.test_case "gc preserves semantics" `Quick test_gc_preserves_semantics;
  ]
