(* The §5.2.4 optimization: synchronization messages sent to processes
   outside the current view shrink to "I am not in your transitional
   set" markers. Semantics must be unchanged (the full monitor battery
   and invariants hold); the bytes on the wire must drop. *)

open Vsgc_types
module System = Vsgc_harness.System

let merge_scenario ?compact_sync ~seed () =
  let sys = System.create ~seed ?compact_sync ~n:6 () in
  System.attach_invariants ~every:5 sys;
  let left = Proc.Set.of_range 0 2 in
  let right = Proc.Set.of_range 3 5 in
  let all = Proc.Set.of_range 0 5 in
  ignore (System.reconfigure sys ~origin:0 ~set:left);
  ignore (System.reconfigure sys ~origin:1 ~set:right);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  (* the merge: each side's start_change set includes the other side,
     which is outside its current view — markers apply *)
  let v = System.reconfigure sys ~origin:0 ~set:all in
  System.settle sys;
  Alcotest.(check bool) "merged view installed" true (System.all_in_view sys v);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  Vsgc_ioa.Metrics.sent_bytes (Vsgc_ioa.Executor.metrics (System.exec sys)) Msg.Wire.K_sync

let test_semantics_preserved () =
  (* the scenario itself asserts view installation and runs under all
     monitors and invariants; traffic must flow after the merge *)
  ignore (merge_scenario ~compact_sync:true ~seed:101 ());
  ignore (merge_scenario ~compact_sync:true ~seed:102 ())

let test_bytes_reduced () =
  let full = merge_scenario ~seed:103 () in
  let compact = merge_scenario ~compact_sync:true ~seed:103 () in
  Alcotest.(check bool)
    (Fmt.str "compact sync cheaper (%d < %d bytes)" compact full)
    true (compact < full)

let test_marker_shape () =
  (* markers carry the sender's initial singleton view and empty cut,
     so no receiver can ever place the sender in its transitional set
     through one *)
  let open Vsgc_core.Vs_rfifo_ts in
  let vs = initial ~compact_sync:true 0 in
  let vs = start_change_effect vs ~cid:1 ~set:(Proc.Set.of_range 0 2) in
  (* p0's current view is its initial singleton; peers 1,2 are outside *)
  Alcotest.(check bool) "marker targets outside the view" true
    (Proc.Set.equal (marker_dests vs) (Proc.Set.of_range 1 2));
  match marker_send_action vs with
  | Action.Rf_send (_, dests, Msg.Wire.Sync { view; cut; cid }) ->
      Alcotest.(check bool) "dests" true (Proc.Set.equal dests (Proc.Set.of_range 1 2));
      Alcotest.(check bool) "view is the initial singleton" true
        (View.equal view (View.initial 0));
      Alcotest.(check bool) "cut empty" true (Msg.Cut.equal cut Msg.Cut.empty);
      Alcotest.(check int) "cid" 1 cid
  | _ -> Alcotest.fail "unexpected marker action"

let test_crossing_joiner () =
  (* a joiner from a singleton view gets markers from everyone and
     still installs the merged view *)
  let sys = System.create ~seed:104 ~compact_sync:true ~n:4 () in
  System.attach_invariants ~every:5 sys;
  let trio = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~origin:0 ~set:trio);
  System.settle sys;
  let v = System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 0 3) in
  System.settle sys;
  Alcotest.(check bool) "joiner included" true (System.all_in_view sys v);
  match System.last_view_of sys 3 with
  | Some (_, tset) ->
      Alcotest.(check bool) "joiner's T is itself" true
        (Proc.Set.equal tset (Proc.Set.singleton 3))
  | None -> Alcotest.fail "joiner has no view"

let suite =
  [
    Alcotest.test_case "semantics preserved under monitors" `Quick test_semantics_preserved;
    Alcotest.test_case "bytes reduced" `Quick test_bytes_reduced;
    Alcotest.test_case "marker shape" `Quick test_marker_shape;
    Alcotest.test_case "joiner crossing via markers" `Quick test_crossing_joiner;
  ]
