(* qcheck laws for the vocabulary data structures. *)

open Vsgc_types

let rand = Random.State.make [| 0xD00D |]
let mk t = QCheck_alcotest.to_alcotest ~rand t

(* -- Fqueue: behaves as a list queue -------------------------------------- *)

let gen_ops =
  QCheck.Gen.(list_size (int_range 0 40) (frequency [ (3, map (fun n -> `Push n) small_int); (2, return `Pop); (1, return `Drop_last) ]))

let arb_ops =
  QCheck.make gen_ops ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function `Push n -> Fmt.str "push %d" n | `Pop -> "pop" | `Drop_last -> "drop")
           ops))

let fqueue_model =
  QCheck.Test.make ~count:300 ~name:"Fqueue behaves as a list queue" arb_ops (fun ops ->
      let q, model =
        List.fold_left
          (fun (q, model) op ->
            match op with
            | `Push n -> (Fqueue.push q n, model @ [ n ])
            | `Pop -> (
                match (Fqueue.pop q, model) with
                | Some (x, q'), m :: rest when x = m -> (q', rest)
                | None, [] -> (q, [])
                | _ -> QCheck.Test.fail_report "pop mismatch")
            | `Drop_last -> (
                match (Fqueue.drop_last q, List.rev model) with
                | Some q', _ :: rev_rest -> (q', List.rev rev_rest)
                | None, [] -> (q, [])
                | _ -> QCheck.Test.fail_report "drop_last mismatch"))
          (Fqueue.empty, []) ops
      in
      Fqueue.to_list q = model && Fqueue.length q = List.length model)

(* -- Cut: max_over laws ----------------------------------------------------- *)

let arb_cut =
  QCheck.make
    QCheck.Gen.(
      map
        (fun l -> Msg.Cut.of_bindings (List.map (fun (p, i) -> (p mod 6, i mod 20)) l))
        (list_size (int_range 0 8) (pair small_int small_int)))
    ~print:(Fmt.str "%a" Msg.Cut.pp)

let cut_max_over_laws =
  QCheck.Test.make ~count:300 ~name:"Cut.max_over: pointwise, monotone, commutative"
    QCheck.(triple arb_cut arb_cut (QCheck.make QCheck.Gen.(int_range 0 5)))
    (fun (a, b, q) ->
      let m = Msg.Cut.max_over [ a; b ] q in
      m = max (Msg.Cut.get a q) (Msg.Cut.get b q)
      && m = Msg.Cut.max_over [ b; a ] q
      && m >= Msg.Cut.get a q
      && Msg.Cut.max_over [ a ] q = Msg.Cut.get a q)

let cut_zero_normalization =
  QCheck.Test.make ~count:200 ~name:"Cut: zero entries are identities" arb_cut (fun c ->
      Msg.Cut.equal (Msg.Cut.set c 3 0) (Msg.Cut.set (Msg.Cut.set c 3 0) 3 0)
      && Msg.Cut.get (Msg.Cut.set c 4 0) 4 = 0)

(* -- View.Id: total order laws ---------------------------------------------- *)

let arb_vid =
  QCheck.make
    QCheck.Gen.(map2 (fun n o -> View.Id.make ~num:(n mod 50) ~origin:(o mod 8)) small_int small_int)
    ~print:(Fmt.str "%a" View.Id.pp)

let vid_total_order =
  QCheck.Test.make ~count:300 ~name:"View.Id is a total order with zero as minimum"
    QCheck.(triple arb_vid arb_vid arb_vid)
    (fun (a, b, c) ->
      let ( <= ) x y = View.Id.compare x y <= 0 in
      (a <= b || b <= a)
      && ((not (a <= b && b <= c)) || a <= c)
      && (View.Id.equal a b = (a <= b && b <= a))
      && View.Id.zero <= a
      && View.Id.lt a (View.Id.succ_from ~origin:0 a))

(* -- Wire: size model positive and equality reflexive ------------------------ *)

let arb_wire =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> Msg.Wire.App (Msg.App_msg.make s)) string_small;
          map (fun p -> Msg.Wire.View_msg (View.initial (abs p mod 8))) small_int;
          map2
            (fun p i ->
              Msg.Wire.Fwd
                { origin = abs p mod 8; view = View.initial (abs p mod 8);
                  index = 1 + (abs i mod 10); msg = Msg.App_msg.make "f" })
            small_int small_int;
          map
            (fun c ->
              Msg.Wire.Sync { cid = 1; view = View.initial 0; cut = c })
            arb_cut.QCheck.gen;
        ])
  in
  QCheck.make gen ~print:(Fmt.str "%a" Msg.Wire.pp)

let wire_laws =
  QCheck.Test.make ~count:300 ~name:"Wire: equality reflexive, size positive" arb_wire
    (fun w -> Msg.Wire.equal w w && Msg.Wire.size_bytes w > 0)

let suite =
  List.map mk
    [ fqueue_model; cut_max_over_laws; cut_zero_normalization; vid_total_order; wire_laws ]
