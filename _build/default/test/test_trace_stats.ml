(* Unit tests for the trace-query helpers. *)

open Vsgc_types
module TS = Vsgc_ioa.Trace_stats

let v1 =
  View.make
    ~id:(View.Id.make ~num:1 ~origin:0)
    ~set:(Proc.Set.of_list [ 0; 1 ])
    ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 1)

let msg s = Msg.App_msg.make s

let trace =
  [
    Action.Mb_start_change (0, 1, Proc.Set.of_list [ 0; 1 ]);
    Action.Block 0;
    Action.Block_ok 0;
    Action.App_deliver (0, 1, msg "during-1");
    Action.App_deliver (1, 0, msg "other-proc");
    Action.App_deliver (0, 1, msg "during-2");
    Action.App_view (0, v1, Proc.Set.singleton 0);
    Action.App_deliver (0, 1, msg "after");
    Action.Mb_start_change (0, 2, Proc.Set.of_list [ 0; 1 ]);
    Action.Block_ok 0;
    Action.App_deliver (0, 1, msg "second-window");
    Action.App_view (0, v1, Proc.Set.singleton 0);
  ]

let test_deliveries_during_reconfiguration () =
  Alcotest.(check int) "first window" 2
    (TS.deliveries_during_reconfiguration ~at:0 trace);
  Alcotest.(check int) "second window" 1
    (TS.deliveries_during_reconfiguration ~nth_change:2 ~at:0 trace);
  Alcotest.(check int) "other process untouched" 0
    (TS.deliveries_during_reconfiguration ~at:1 trace)

let test_views_at () =
  Alcotest.(check int) "two views at p0" 2 (List.length (TS.views_at ~at:0 trace));
  Alcotest.(check int) "none at p1" 0 (List.length (TS.views_at ~at:1 trace))

let test_delivered_payloads () =
  Alcotest.(check (list string)) "p0 from p1 in order"
    [ "during-1"; "during-2"; "after"; "second-window" ]
    (TS.delivered_payloads ~at:0 ~sender:1 trace)

let test_blocked_windows () =
  (* first window: block_ok at index 2, view at index 6 -> 4 steps;
     second: block_ok at 9, view at 11 -> 2 steps *)
  Alcotest.(check (list int)) "window lengths" [ 4; 2 ] (TS.blocked_windows ~at:0 trace)

let test_happens_before () =
  let is_block = function Action.Block 0 -> true | _ -> false in
  let is_view = function Action.App_view (0, _, _) -> true | _ -> false in
  Alcotest.(check bool) "block before view" true (TS.happens_before is_block is_view trace);
  Alcotest.(check bool) "view not before block" false
    (TS.happens_before is_view is_block trace)

let test_count_and_categories () =
  Alcotest.(check int) "deliver count" 5
    (TS.count (function Action.App_deliver _ -> true | _ -> false) trace);
  let tbl = TS.category_counts trace in
  Alcotest.(check (option int)) "views counted" (Some 2)
    (Hashtbl.find_opt tbl Action.C_app_view)

let suite =
  [
    Alcotest.test_case "deliveries during reconfiguration" `Quick
      test_deliveries_during_reconfiguration;
    Alcotest.test_case "views_at" `Quick test_views_at;
    Alcotest.test_case "delivered payloads" `Quick test_delivered_payloads;
    Alcotest.test_case "blocked windows" `Quick test_blocked_windows;
    Alcotest.test_case "happens_before" `Quick test_happens_before;
    Alcotest.test_case "count and categories" `Quick test_count_and_categories;
  ]
