(* The scenario DSL: the named catalog passes on every end-point
   configuration (plain, gc, compact, hierarchical), and the DSL's
   failure modes are precise. *)

open Vsgc_types
module System = Vsgc_harness.System
module Scenario = Vsgc_harness.Scenario

let configs =
  [
    ("plain", fun ~seed ~n -> System.create ~seed ~n ());
    ("gc", fun ~seed ~n -> System.create ~seed ~gc:true ~n ());
    ("compact", fun ~seed ~n -> System.create ~seed ~compact_sync:true ~n ());
    ("hierarchy", fun ~seed ~n -> System.create ~seed ~hierarchy:2 ~n ());
    ("min-copies", fun ~seed ~n -> System.create ~seed ~strategy:Vsgc_core.Forwarding.Min_copies ~n ());
  ]

let test_catalog_everywhere () =
  List.iter
    (fun (cname, build) ->
      List.iter
        (fun (sname, scenario) ->
          let sys = build ~seed:7 ~n:5 in
          try Scenario.run sys scenario
          with e ->
            Alcotest.failf "scenario %s on config %s: %s" sname cname
              (Printexc.to_string e))
        (Scenario.catalog ~n:5))
    configs

let test_check_failure_is_reported () =
  let sys = System.create ~seed:8 ~n:2 () in
  let scenario =
    [ Scenario.Check ("doomed", fun _ -> false) ]
  in
  Alcotest.check_raises "failed checks surface by name"
    (Vsgc_harness.Scenario.Check_failed "doomed") (fun () -> Scenario.run sys scenario)

let test_assertion_helpers () =
  let sys = System.create ~seed:9 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  Scenario.run sys
    [
      Scenario.Reconfigure { origin = 0; set = all };
      Scenario.Send { from = 1; payloads = [ "a"; "b" ] };
      Scenario.Settle;
      Scenario.Check ("in view", Scenario.all_in_last_view all);
      Scenario.Check
        ("p0 got p1's messages", Scenario.delivered_at_least ~at:0 ~from:1 ~count:2);
    ]

let test_scenarios_print () =
  let s = Fmt.str "%a" Scenario.pp (Scenario.partition_heal ~n:4) in
  Alcotest.(check bool) "printable" true (String.length s > 20)

let suite =
  [
    Alcotest.test_case "catalog passes on every configuration" `Quick test_catalog_everywhere;
    Alcotest.test_case "check failures are reported" `Quick test_check_failure_is_reported;
    Alcotest.test_case "assertion helpers" `Quick test_assertion_helpers;
    Alcotest.test_case "scenarios print" `Quick test_scenarios_print;
  ]
