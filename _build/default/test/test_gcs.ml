(* Layer tests: Self Delivery and the blocking protocol (Figure 11 and
   the CLIENT spec of Figure 12). *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

let check = Alcotest.(check bool)

let test_block_per_reconfiguration () =
  let sys = System.create ~seed:51 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  Alcotest.(check int) "one block for the first change" 1 !(System.client sys 0).Client.blocks_seen;
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  Alcotest.(check int) "one more for the second" 2 !(System.client sys 0).Client.blocks_seen

let test_self_delivery () =
  (* every message a client sends in a view is delivered back to it
     before the next view (Figure 7), even under reconfiguration *)
  let sys = System.create ~seed:52 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  System.broadcast sys ~senders:set ~per_sender:6;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  List.iter
    (fun p ->
      let c = !(System.client sys p) in
      Alcotest.(check int)
        (Fmt.str "%a delivered everything it sent" Proc.pp p)
        (List.length (Client.sent c))
        (List.length (Client.delivered_from c p)))
    [ 0; 1; 2 ]

let test_sends_resume_after_view () =
  (* a message queued during a reconfiguration is never sent while
     blocked (client_spec enforces that) yet is eventually sent and
     self-delivered; traffic after the view reaches the peer *)
  let sys = System.create ~seed:53 ~n:2 ~send_while_requested:false () in
  let set = Proc.Set.of_range 0 1 in
  ignore (System.reconfigure sys ~set);
  System.send sys 0 "early";
  System.settle sys;
  let c0 = !(System.client sys 0) in
  check "early message self-delivered" true
    (List.exists (fun m -> Msg.App_msg.payload m = "early") (Client.delivered_from c0 0));
  System.send sys 0 "late";
  System.settle sys;
  let c1 = !(System.client sys 1) in
  check "post-view traffic reaches the peer" true
    (List.exists (fun m -> Msg.App_msg.payload m = "late") (Client.delivered_from c1 0))

let test_unblocked_without_change () =
  let sys = System.create ~seed:54 ~n:2 () in
  let set = Proc.Set.of_range 0 1 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  let g = Vsgc_core.Endpoint.gcs !(System.endpoint sys 0) in
  check "endpoint unblocked in steady state" true (g.Vsgc_core.Gcs.block_status = Vsgc_core.Gcs.Unblocked);
  check "client unblocked in steady state" true
    (!(System.client sys 0).Client.block_status = Client.Unblocked)

let test_client_component_protocol () =
  (* the scripted client honours Figure 12 transitions *)
  let c = ref (Client.initial 0) in
  Client.push c "m";
  check "send enabled when unblocked" true
    (List.exists (function Action.App_send _ -> true | _ -> false) (Client.outputs !c));
  c := Client.apply !c (Action.Block 0);
  check "block_ok offered when requested" true
    (List.exists (function Action.Block_ok _ -> true | _ -> false) (Client.outputs !c));
  c := Client.apply !c (Action.Block_ok 0);
  check "no sends while blocked" true
    (not (List.exists (function Action.App_send _ -> true | _ -> false) (Client.outputs !c)));
  c := Client.apply !c (Action.App_view (0, View.initial 0, Proc.Set.singleton 0));
  check "sends resume after view" true
    (List.exists (function Action.App_send _ -> true | _ -> false) (Client.outputs !c))

let suite =
  [
    Alcotest.test_case "block once per reconfiguration" `Quick test_block_per_reconfiguration;
    Alcotest.test_case "self delivery" `Quick test_self_delivery;
    Alcotest.test_case "queued sends resume after view" `Quick test_sends_resume_after_view;
    Alcotest.test_case "steady state is unblocked" `Quick test_unblocked_without_change;
    Alcotest.test_case "client protocol transitions" `Quick test_client_component_protocol;
  ]
