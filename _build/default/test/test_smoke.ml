(* End-to-end smoke tests: the full GCS stack under the oracle
   membership, monitored by every safety spec. *)

open Vsgc_types
module System = Vsgc_harness.System

let check = Alcotest.(check bool)

let test_initial_reconfiguration () =
  let sys = System.create ~seed:1 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  let view = System.reconfigure sys ~set in
  System.settle sys;
  check "all members installed the view" true (System.all_in_view sys view)

let test_stable_multicast () =
  let sys = System.create ~seed:2 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  let view = System.reconfigure sys ~set in
  System.settle sys;
  check "view installed" true (System.all_in_view sys view);
  System.broadcast sys ~senders:set ~per_sender:5;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          let from_q = Vsgc_core.Client.delivered_from !(System.client sys p) q in
          Alcotest.(check int)
            (Fmt.str "%a delivered all of %a's messages" Proc.pp p Proc.pp q)
            5 (List.length from_q))
        set)
    set

let test_two_reconfigurations () =
  let sys = System.create ~seed:3 ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  let v1 = System.reconfigure sys ~set:all in
  System.settle sys;
  check "v1 installed" true (System.all_in_view sys v1);
  System.broadcast sys ~senders:all ~per_sender:3;
  let sub = Proc.Set.of_range 0 1 in
  let v2 = System.reconfigure sys ~set:sub in
  System.settle sys;
  check "v2 installed by survivors" true (System.all_in_view sys v2)

let suite =
  [
    Alcotest.test_case "initial reconfiguration" `Quick test_initial_reconfiguration;
    Alcotest.test_case "stable multicast" `Quick test_stable_multicast;
    Alcotest.test_case "two reconfigurations" `Quick test_two_reconfigurations;
  ]
