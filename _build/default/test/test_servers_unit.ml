(* Unit tests for the membership servers' pure logic: estimates,
   refresh, readiness, deterministic synthesis, commit validation. *)

open Vsgc_types
module Servers = Vsgc_mbrshp.Servers

let two_servers = Server.Set.of_range 0 1

let proposal ~round ~from ~servers ~clients ~members ~max_vid =
  { Srv_msg.round; from; servers; clients; members; max_vid }

let test_estimate_unions_proposals () =
  let st = Servers.initial ~clients:(Proc.Set.of_list [ 0; 2 ]) ~servers:two_servers 0 in
  Alcotest.(check bool) "own clients only at first" true
    (Proc.Set.equal (Servers.estimate st) (Proc.Set.of_list [ 0; 2 ]));
  let p1 =
    proposal ~round:1 ~from:1 ~servers:two_servers
      ~clients:Proc.Map.(empty |> add 1 1 |> add 3 1)
      ~members:(Proc.Set.of_list [ 1; 3 ]) ~max_vid:View.Id.zero
  in
  let st = Servers.apply st (Action.Srv_deliver (1, 0, Srv_msg.Proposal p1)) in
  Alcotest.(check bool) "union includes the peer's clients" true
    (Proc.Set.equal (Servers.estimate st) (Proc.Set.of_list [ 0; 1; 2; 3 ]))

let test_refresh_issues_fresh_cids () =
  let st = Servers.initial ~clients:(Proc.Set.of_list [ 0 ]) ~servers:two_servers 0 in
  let st = Servers.refresh st in
  let cid1 = Proc.Map.find 0 st.Servers.sent_cid in
  let st = Servers.refresh st in
  let cid2 = Proc.Map.find 0 st.Servers.sent_cid in
  Alcotest.(check bool) "cids increase across refreshes" true
    (View.Sc_id.compare cid2 cid1 > 0);
  Alcotest.(check bool) "in change" true st.Servers.in_change;
  Alcotest.(check int) "a proposal per refresh queued" 2 (List.length st.Servers.outbox)

let test_single_server_concludes_alone () =
  let st = Servers.initial ~clients:(Proc.Set.of_list [ 0; 1 ]) ~servers:(Server.Set.singleton 0) 0 in
  let st = Servers.apply st (Action.Fd_change (0, Server.Set.singleton 0)) in
  Alcotest.(check bool) "concluded" true (not st.Servers.in_change);
  Alcotest.(check bool) "view recorded" true
    (Proc.Set.equal st.Servers.last_view_set (Proc.Set.of_list [ 0; 1 ]));
  (* the clients each got a start_change then the view, in order *)
  List.iter
    (fun c ->
      match Proc.Map.find_opt c st.Servers.pending with
      | Some [ Action.Mb_start_change (c', _, _); Action.Mb_view (c'', v) ] ->
          Alcotest.(check int) "sc target" c c';
          Alcotest.(check int) "view target" c c'';
          Alcotest.(check bool) "view covers both clients" true
            (Proc.Set.equal (View.set v) (Proc.Set.of_list [ 0; 1 ]))
      | _ -> Alcotest.fail "unexpected pending queue")
    [ 0; 1 ]

let test_synthesis_contents () =
  (* the committer merges all proposals: the view's member set is the
     client union, the startId map takes each client's identifier from
     its owner's proposal, and the identifier exceeds everything seen *)
  let st = Servers.initial ~clients:(Proc.Set.singleton 0) ~servers:two_servers 0 in
  let st = Servers.refresh st in
  let p =
    proposal ~round:1 ~from:1 ~servers:two_servers
      ~clients:(Proc.Map.singleton 1 7)
      ~members:(Proc.Set.of_list [ 0; 1 ])
      ~max_vid:(View.Id.make ~num:4 ~origin:1)
  in
  let st = { st with Servers.proposals = Server.Map.add 1 p st.Servers.proposals } in
  let v = Servers.synthesize st in
  Alcotest.(check bool) "member set is the union" true
    (Proc.Set.equal (View.set v) (Proc.Set.of_list [ 0; 1 ]));
  Alcotest.(check int) "peer client keeps its owner's cid" 7 (View.start_id v 1);
  Alcotest.(check bool) "own client cid from own proposal" true
    (View.Sc_id.equal (View.start_id v 0) (Proc.Map.find 0 st.Servers.sent_cid));
  Alcotest.(check int) "identifier exceeds the maximum seen" 5 (View.Id.num (View.id v))

let test_not_ready_without_all_proposals () =
  let st = Servers.initial ~clients:(Proc.Set.singleton 0) ~servers:two_servers 0 in
  let st = Servers.refresh st in
  Alcotest.(check bool) "missing peer proposal blocks conclusion" false (Servers.ready st)

let test_non_min_never_ready () =
  let st = Servers.initial ~clients:(Proc.Set.singleton 5) ~servers:two_servers 1 in
  let st = Servers.refresh st in
  let p =
    proposal ~round:1 ~from:0 ~servers:two_servers ~clients:Proc.Map.empty
      ~members:(Proc.Set.singleton 5) ~max_vid:View.Id.zero
  in
  let st = { st with Servers.proposals = Server.Map.add 0 p st.Servers.proposals } in
  Alcotest.(check bool) "only the minimum live server concludes" false (Servers.ready st)

let test_stale_commit_rejected () =
  (* a commit whose identifiers do not match what this server last sent
     its clients must be discarded *)
  let st = Servers.initial ~clients:(Proc.Set.singleton 1) ~servers:two_servers 1 in
  let st = Servers.refresh st in
  let stale =
    View.make
      ~id:(View.Id.make ~num:5 ~origin:0)
      ~set:(Proc.Set.of_list [ 0; 1 ])
      ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 99)
  in
  let before = st in
  let st' = Servers.apply st (Action.Srv_deliver (0, 1, Srv_msg.Commit stale)) in
  Alcotest.(check bool) "still mid-change" true st'.Servers.in_change;
  Alcotest.(check bool) "no view queued for the client" true
    (Proc.Map.find_default ~default:[] 1 st'.Servers.pending
    = Proc.Map.find_default ~default:[] 1 before.Servers.pending)

let suite =
  [
    Alcotest.test_case "estimate unions proposals" `Quick test_estimate_unions_proposals;
    Alcotest.test_case "refresh issues fresh cids" `Quick test_refresh_issues_fresh_cids;
    Alcotest.test_case "single server concludes alone" `Quick test_single_server_concludes_alone;
    Alcotest.test_case "synthesis contents" `Quick test_synthesis_contents;
    Alcotest.test_case "not ready without all proposals" `Quick test_not_ready_without_all_proposals;
    Alcotest.test_case "non-min never concludes" `Quick test_non_min_never_ready;
    Alcotest.test_case "stale commit rejected" `Quick test_stale_commit_rejected;
  ]
