(* Mutation tests: the spec monitors must have teeth. We run weakened
   algorithms — the plain within-view layer without virtual synchrony,
   and the no-blocking layer without self delivery — in scenarios where
   their missing guarantees actually break, and require the monitors to
   catch them. *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

let expect_violation f =
  try
    f ();
    Alcotest.fail "expected a specification violation"
  with Vsgc_ioa.Monitor.Violation { monitor; _ } -> monitor

(* Without the synchronization round, two processes move together into
   a view having delivered different message sets: Virtual Synchrony is
   violated and the VS_RFIFO monitor must say so. *)
let test_wv_layer_violates_virtual_synchrony () =
  let monitor =
    expect_violation (fun () ->
        let phase = ref `Frozen in
        let weights (a : Action.t) =
          match a with
          | Action.Rf_deliver (2, 1, _) when !phase = `Frozen -> 0.0
          | Action.Rf_lose _ -> 0.0
          | _ -> 1.0
        in
        (* `Wv endpoints, but with ALL monitors attached *)
        let sys = System.create ~seed:55 ~weights ~layer:`Wv ~monitors:`All ~n:3 () in
        let all = Proc.Set.of_range 0 2 in
        ignore (System.reconfigure sys ~set:all);
        System.settle sys;
        for i = 1 to 4 do
          System.send sys 2 (Fmt.str "u%d" i)
        done;
        (* p0 receives p2's messages; p1's channel from p2 is frozen *)
        (match
           System.run sys ~max_steps:100_000 ~stop:(fun () ->
               List.length (Client.delivered_from !(System.client sys 0) 2) = 4)
         with
        | Vsgc_ioa.Executor.Quiescent _ -> ()
        | Vsgc_ioa.Executor.Step_limit -> failwith "setup failed");
        (* both survivors move on immediately: no cut agreement *)
        ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
        System.settle sys)
  in
  (* the WV layer also emits empty transitional sets, so either the
     VS or the T monitor fires first depending on the schedule *)
  Alcotest.(check bool)
    (Fmt.str "caught by a virtual-synchrony monitor (%s)" monitor)
    true
    (List.mem monitor [ "vs_rfifo_spec"; "trans_set_spec" ])

(* Without blocking, an application keeps sending during the view
   change; messages beyond the announced cut are not self-delivered
   before the view: Self Delivery is violated. *)
let test_vs_layer_violates_self_delivery () =
  let monitor =
    expect_violation (fun () ->
        let sys = System.create ~seed:56 ~layer:`Vs ~monitors:`All ~n:3 () in
        let all = Proc.Set.of_range 0 2 in
        ignore (System.reconfigure sys ~set:all);
        System.settle sys;
        ignore (System.start_change sys ~set:all);
        (* run until every endpoint has published its cut *)
        let sync_count () =
          Vsgc_ioa.Metrics.category_count
            (Vsgc_ioa.Executor.metrics (System.exec sys))
            Action.C_rf_send
        in
        let base = sync_count () in
        ignore
          (System.run sys ~max_steps:100_000 ~stop:(fun () -> sync_count () >= base + 3));
        (* the unblocked application sends more — beyond the cuts *)
        System.send sys 0 "too-late-1";
        System.send sys 0 "too-late-2";
        ignore (System.deliver_view sys ~set:all);
        System.settle sys)
  in
  Alcotest.(check string) "caught by the Self Delivery monitor" "self_spec" monitor

let suite =
  [
    Alcotest.test_case "WV layer caught violating virtual synchrony" `Quick
      test_wv_layer_violates_virtual_synchrony;
    Alcotest.test_case "VS layer caught violating self delivery" `Quick
      test_vs_layer_violates_self_delivery;
  ]
