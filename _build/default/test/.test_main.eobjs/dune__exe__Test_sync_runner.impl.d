test/test_sync_runner.ml: Action Alcotest Fmt List Msg Proc Vsgc_corfifo Vsgc_ioa Vsgc_types
