test/test_tord_symmetric.ml: Alcotest Fmt Hashtbl List Msg Proc String Vsgc_harness Vsgc_ioa Vsgc_totalorder Vsgc_types
