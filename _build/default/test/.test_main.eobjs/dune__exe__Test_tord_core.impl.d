test/test_tord_core.ml: Alcotest Fmt Hashtbl List Proc QCheck QCheck_alcotest Random View Vsgc_totalorder Vsgc_types
