test/test_baseline.ml: Alcotest Fmt List Proc Vsgc_baseline Vsgc_core Vsgc_harness Vsgc_types
