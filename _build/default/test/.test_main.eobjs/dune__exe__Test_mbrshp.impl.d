test/test_mbrshp.ml: Action Alcotest List Proc View Vsgc_ioa Vsgc_mbrshp Vsgc_spec Vsgc_types
