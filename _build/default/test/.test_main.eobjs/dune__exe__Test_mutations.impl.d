test/test_mutations.ml: Action Alcotest Fmt List Proc Vsgc_core Vsgc_harness Vsgc_ioa Vsgc_types
