test/test_spec_rejections.ml: Action Alcotest List Msg Proc View Vsgc_ioa Vsgc_spec Vsgc_types
