test/test_hierarchy.ml: Alcotest Fmt List Msg Proc Vsgc_core Vsgc_harness Vsgc_ioa Vsgc_types
