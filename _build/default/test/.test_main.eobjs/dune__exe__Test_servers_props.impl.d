test/test_servers_props.ml: Fmt List Proc QCheck QCheck_alcotest Random Server String View Vsgc_harness Vsgc_types
