test/test_types_props.ml: Fmt Fqueue List Msg QCheck QCheck_alcotest Random String View Vsgc_types
