test/test_servers.ml: Alcotest Fmt List Proc Server View Vsgc_core Vsgc_harness Vsgc_types
