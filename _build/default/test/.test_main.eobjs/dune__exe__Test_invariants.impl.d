test/test_invariants.ml: Alcotest List Proc Vsgc_harness Vsgc_types
