test/test_crash.ml: Alcotest Fmt List Proc View Vsgc_core Vsgc_harness Vsgc_types
