test/test_trace_stats.ml: Action Alcotest Hashtbl List Msg Proc View Vsgc_ioa Vsgc_types
