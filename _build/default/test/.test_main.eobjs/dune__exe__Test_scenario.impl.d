test/test_scenario.ml: Alcotest Fmt List Printexc Proc String Vsgc_core Vsgc_harness Vsgc_types
