test/test_smoke.ml: Alcotest Fmt List Proc Vsgc_core Vsgc_harness Vsgc_types
