test/test_composition.ml: Alcotest Fmt Hashtbl List Proc String Vsgc_core Vsgc_harness Vsgc_replication Vsgc_totalorder Vsgc_types
