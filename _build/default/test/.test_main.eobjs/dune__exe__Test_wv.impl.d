test/test_wv.ml: Alcotest Fmt List Msg Proc View Vsgc_core Vsgc_harness Vsgc_types
