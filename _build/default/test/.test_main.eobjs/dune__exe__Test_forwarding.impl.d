test/test_forwarding.ml: Action Alcotest Fmt List Msg Proc Vsgc_core Vsgc_corfifo Vsgc_harness Vsgc_ioa Vsgc_types
