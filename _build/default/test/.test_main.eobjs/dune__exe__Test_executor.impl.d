test/test_executor.ml: Action Alcotest Fmt List Msg Vsgc_ioa Vsgc_types
