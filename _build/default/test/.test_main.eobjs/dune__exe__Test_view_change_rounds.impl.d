test/test_view_change_rounds.ml: Alcotest Fmt List Proc Vsgc_baseline Vsgc_harness Vsgc_ioa Vsgc_types
