test/test_types.ml: Action Alcotest Fqueue List Msg Proc View Vsgc_ioa Vsgc_types
