test/test_totalorder.ml: Alcotest Fmt Hashtbl List Proc String Vsgc_harness Vsgc_totalorder Vsgc_types
