test/test_gcs.ml: Action Alcotest Fmt List Msg Proc View Vsgc_core Vsgc_harness Vsgc_types
