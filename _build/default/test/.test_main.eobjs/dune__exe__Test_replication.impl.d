test/test_replication.ml: Alcotest Fmt Hashtbl List Proc String Vsgc_harness Vsgc_replication Vsgc_types
