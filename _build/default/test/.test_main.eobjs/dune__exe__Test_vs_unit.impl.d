test/test_vs_unit.ml: Alcotest List Msg Proc View Vsgc_core Vsgc_types
