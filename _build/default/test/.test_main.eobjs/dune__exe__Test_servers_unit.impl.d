test/test_servers_unit.ml: Action Alcotest List Proc Server Srv_msg View Vsgc_mbrshp Vsgc_types
