test/test_determinism.ml: Action Alcotest List Vsgc_harness Vsgc_ioa Vsgc_types
