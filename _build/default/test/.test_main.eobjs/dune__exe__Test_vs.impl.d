test/test_vs.ml: Alcotest Fmt List Proc View Vsgc_core Vsgc_harness Vsgc_ioa Vsgc_types
