test/test_props.ml: Action Array Fmt Fun List Msg Proc QCheck QCheck_alcotest Random String View Vsgc_core Vsgc_harness Vsgc_types
