test/test_compact_sync.ml: Action Alcotest Fmt Msg Proc View Vsgc_core Vsgc_harness Vsgc_ioa Vsgc_types
