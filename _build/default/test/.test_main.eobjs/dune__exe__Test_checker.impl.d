test/test_checker.ml: Alcotest Fmt List Msg Proc String View Vsgc_checker Vsgc_core Vsgc_harness Vsgc_types
