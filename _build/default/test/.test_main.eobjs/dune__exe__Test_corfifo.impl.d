test/test_corfifo.ml: Action Alcotest List Msg Proc View Vsgc_corfifo Vsgc_ioa Vsgc_spec Vsgc_types
