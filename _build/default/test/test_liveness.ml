(* Liveness (Property 4.2): once the membership stabilizes on a view v
   delivered to all its members with no later events, every member
   eventually installs v, and every message sent in v afterwards is
   delivered to every member. Fair executions are approximated by long
   seeded random schedules run to quiescence. *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

let check = Alcotest.(check bool)

let assert_property_4_2 sys view =
  (* part 1: GCS.view_p(v) occurred at every member *)
  check "every member installed the stable view" true (System.all_in_view sys view);
  (* part 2: post-view sends are delivered everywhere *)
  let members = View.set view in
  System.broadcast sys ~senders:members ~per_sender:3;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          check
            (Fmt.str "%a delivered %a's post-view traffic" Proc.pp p Proc.pp q)
            true
            (List.length (Client.delivered_from !(System.client sys p) q) >= 3))
        members)
    members

let test_stabilized_after_churn ~seed () =
  let sys = System.create ~seed ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  (* churn: several overlapping changes with traffic in flight *)
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.broadcast sys ~senders:(Proc.Set.of_range 0 2) ~per_sender:2;
  (* final, stable view *)
  let v = System.reconfigure sys ~set:all in
  System.settle sys;
  assert_property_4_2 sys v

let test_stabilized_after_partition ~seed () =
  let sys = System.create ~seed ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  System.broadcast sys ~senders:all ~per_sender:3;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  let v = System.reconfigure sys ~set:all in
  System.settle sys;
  assert_property_4_2 sys v

let test_liveness_through_servers ~seed () =
  let ss = Vsgc_harness.Server_system.create ~seed ~n_clients:5 ~n_servers:2 () in
  Vsgc_harness.Server_system.bootstrap ss;
  let sys = Vsgc_harness.Server_system.sys ss in
  System.settle sys;
  match System.last_view_of sys 0 with
  | Some (v, _) -> assert_property_4_2 sys v
  | None -> Alcotest.fail "no stable view emerged"

let seeds = [ 2; 17; 101 ]

let multi name f =
  Alcotest.test_case name `Quick (fun () -> List.iter (fun seed -> f ~seed ()) seeds)

let suite =
  [
    multi "stabilization after churn" test_stabilized_after_churn;
    multi "stabilization after partition" test_stabilized_after_partition;
    multi "stabilization through membership servers" test_liveness_through_servers;
  ]
