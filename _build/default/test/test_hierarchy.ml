(* The §9 two-tier hierarchy: members route synchronization messages
   through group leaders, who aggregate. Semantics must be unchanged
   (full monitor battery + invariants); the message count must drop
   from O(n²) toward O(n + g²); latency grows by the relay hops. *)

open Vsgc_types
module System = Vsgc_harness.System
module Vs = Vsgc_core.Vs_rfifo_ts

let sync_copies sys =
  let m = Vsgc_ioa.Executor.metrics (System.exec sys) in
  Vsgc_ioa.Metrics.sent_count m Msg.Wire.K_sync
  + Vsgc_ioa.Metrics.sent_count m Msg.Wire.K_sync_batch

let churn_scenario ?hierarchy ~seed ~n () =
  let sys = System.create ~seed ?hierarchy ~n () in
  let all = Proc.Set.of_range 0 (n - 1) in
  let v1 = System.reconfigure sys ~origin:0 ~set:all in
  System.settle sys;
  Alcotest.(check bool) "first view installed" true (System.all_in_view sys v1);
  System.broadcast sys ~senders:all ~per_sender:2;
  let v2 = System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 0 (n - 2)) in
  System.settle sys;
  Alcotest.(check bool) "second view installed" true (System.all_in_view sys v2);
  sys

let test_semantics_under_monitors () =
  (* two reconfigurations with traffic, n=8, g=3: all monitors green *)
  let sys = churn_scenario ~hierarchy:3 ~seed:111 ~n:8 () in
  let all = Proc.Set.of_range 0 5 in
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          Alcotest.(check bool)
            (Fmt.str "%a got %a's post-change traffic" Proc.pp p Proc.pp q)
            true
            (List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q) >= 2))
        all)
    all

let test_invariants_hold () =
  let sys = System.create ~seed:112 ~hierarchy:2 ~n:6 () in
  System.attach_invariants ~every:5 sys;
  let all = Proc.Set.of_range 0 5 in
  ignore (System.reconfigure sys ~origin:0 ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 0 3));
  System.settle sys

let test_message_reduction () =
  let n = 12 in
  let direct = sync_copies (churn_scenario ~seed:113 ~n ()) in
  let hier = sync_copies (churn_scenario ~hierarchy:3 ~seed:113 ~n ()) in
  Alcotest.(check bool)
    (Fmt.str "hierarchy sends fewer sync copies (%d < %d)" hier direct)
    true (hier < direct)

let test_latency_cost () =
  (* the flip side: the relay hops cost extra rounds on a view change *)
  let measure ?hierarchy () =
    let sys = System.create ~seed:114 ?hierarchy ~n:9 () in
    let all = Proc.Set.of_range 0 8 in
    let v1 = System.reconfigure sys ~origin:0 ~set:all in
    let exec = System.exec sys in
    let wait pred =
      ignore (Vsgc_ioa.Sync_runner.local_quiesce exec);
      let rec go r =
        if pred () || r > 30 then r
        else begin
          ignore (Vsgc_ioa.Sync_runner.round exec ~make_budget:(System.round_budget sys));
          go (r + 1)
        end
      in
      go 0
    in
    ignore (wait (fun () -> System.all_in_view sys v1));
    let target = Proc.Set.of_range 0 7 in
    let v2 = System.reconfigure sys ~origin:1 ~set:target in
    wait (fun () -> System.all_in_view sys v2)
  in
  let direct = measure () in
  let hier = measure ~hierarchy:3 () in
  Alcotest.(check int) "direct synchronization: one round" 1 direct;
  Alcotest.(check bool)
    (Fmt.str "hierarchy pays relay latency (%d > %d)" hier direct)
    true (hier > direct)

let test_leader_election_is_deterministic () =
  let set = Proc.Set.of_list [ 0; 1; 2; 3; 4; 5; 6 ] in
  (* groups mod 3: {0,3,6} {1,4} {2,5}; leaders 0, 1, 2 *)
  Alcotest.(check int) "leader of 6 is 0" 0 (Vs.leader_of ~g:3 set 6);
  Alcotest.(check int) "leader of 4 is 1" 1 (Vs.leader_of ~g:3 set 4);
  Alcotest.(check int) "leader of 2 is itself" 2 (Vs.leader_of ~g:3 set 2);
  Alcotest.(check bool) "all leaders" true
    (Proc.Set.equal (Vs.all_leaders ~g:3 set) (Proc.Set.of_list [ 0; 1; 2 ]))

let suite =
  [
    Alcotest.test_case "semantics under monitors" `Quick test_semantics_under_monitors;
    Alcotest.test_case "invariants hold" `Quick test_invariants_hold;
    Alcotest.test_case "message reduction" `Quick test_message_reduction;
    Alcotest.test_case "latency cost" `Quick test_latency_cost;
    Alcotest.test_case "leader election deterministic" `Quick test_leader_election_is_deterministic;
  ]
