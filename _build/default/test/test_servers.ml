(* The client-server membership stack end-to-end: servers agree on
   views in one proposal round while the GCS end-points run the
   virtual-synchrony round, all under every safety monitor. *)

open Vsgc_types
module System = Vsgc_harness.System
module SS = Vsgc_harness.Server_system

let check = Alcotest.(check bool)

let settled_view ss =
  (* after settle, every client of the system should share one view *)
  let sys = SS.sys ss in
  let p0_view = System.last_view_of sys 0 in
  match p0_view with
  | None -> None
  | Some (v, _) -> if System.all_in_view sys v then Some v else None

let test_initial_view ~n_clients ~n_servers ~seed =
  let ss = SS.create ~seed ~n_clients ~n_servers () in
  SS.bootstrap ss;
  System.settle (SS.sys ss);
  match settled_view ss with
  | Some v ->
      Alcotest.(check int)
        "view covers all clients" n_clients
        (Proc.Set.cardinal (View.set v))
  | None -> Alcotest.fail "clients did not converge on a common view"

let test_multicast_through_servers () =
  let ss = SS.create ~seed:11 ~n_clients:6 ~n_servers:2 () in
  SS.bootstrap ss;
  let sys = SS.sys ss in
  System.settle sys;
  let all = Proc.Set.of_range 0 5 in
  System.broadcast sys ~senders:all ~per_sender:3;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          Alcotest.(check int)
            (Fmt.str "%a got all of %a" Proc.pp p Proc.pp q)
            3
            (List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q)))
        all)
    all

let test_join_leave () =
  let ss = SS.create ~seed:5 ~n_clients:5 ~n_servers:2 () in
  SS.bootstrap ss;
  let sys = SS.sys ss in
  System.settle sys;
  (* client 4 leaves, then rejoins: two further reconfigurations *)
  SS.leave ss 4;
  System.settle sys;
  (match System.last_view_of sys 0 with
  | Some (v, _) ->
      check "leaver excluded" true (not (View.mem 4 v));
      check "others converged" true (System.all_in_view sys v)
  | None -> Alcotest.fail "no view after leave");
  SS.join ss 4;
  System.settle sys;
  match System.last_view_of sys 0 with
  | Some (v, _) ->
      check "rejoiner included" true (View.mem 4 v);
      check "all converged" true (System.all_in_view sys v)
  | None -> Alcotest.fail "no view after rejoin"

let test_server_partition () =
  (* 4 clients, 2 servers; the servers partition from each other, each
     side forming its own (disjoint) client view. *)
  let ss = SS.create ~seed:8 ~n_clients:4 ~n_servers:2 () in
  SS.bootstrap ss;
  let sys = SS.sys ss in
  System.settle sys;
  SS.fd_change ss ~perceived:(Server.Set.singleton 0);
  SS.fd_change ss ~perceived:(Server.Set.singleton 1);
  System.settle sys;
  (* server 0 owns clients 0,2; server 1 owns 1,3 *)
  (match System.last_view_of sys 0 with
  | Some (v, _) ->
      check "side A view is {0,2}" true (Proc.Set.equal (View.set v) (Proc.Set.of_list [ 0; 2 ]))
  | None -> Alcotest.fail "no view on side A");
  match System.last_view_of sys 1 with
  | Some (v, _) ->
      check "side B view is {1,3}" true (Proc.Set.equal (View.set v) (Proc.Set.of_list [ 1; 3 ]))
  | None -> Alcotest.fail "no view on side B"

let suite =
  [
    Alcotest.test_case "initial view, 1 server" `Quick (fun () ->
        test_initial_view ~n_clients:4 ~n_servers:1 ~seed:3);
    Alcotest.test_case "initial view, 2 servers" `Quick (fun () ->
        test_initial_view ~n_clients:6 ~n_servers:2 ~seed:4);
    Alcotest.test_case "initial view, 3 servers" `Quick (fun () ->
        test_initial_view ~n_clients:9 ~n_servers:3 ~seed:9);
    Alcotest.test_case "multicast through servers" `Quick test_multicast_through_servers;
    Alcotest.test_case "join and leave" `Quick test_join_leave;
    Alcotest.test_case "server partition" `Quick test_server_partition;
  ]
