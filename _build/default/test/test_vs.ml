(* Layer tests: virtual synchrony and transitional sets (Figure 10),
   exercised through client-visible observations. *)

open Vsgc_types
module System = Vsgc_harness.System

let check = Alcotest.(check bool)

let test_agreed_delivery_sets () =
  (* processes moving together deliver identical message sets in the
     old view — checked structurally here, beyond the online monitor *)
  let sys = System.create ~seed:41 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  System.broadcast sys ~senders:set ~per_sender:7;
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  let counts p =
    List.map
      (fun q -> List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q))
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "p0/p1 same delivery vector" (counts 0) (counts 1);
  Alcotest.(check (list int)) "p0/p2 same delivery vector" (counts 0) (counts 2)

let test_transitional_set_joint_move () =
  let sys = System.create ~seed:42 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  let pair = Proc.Set.of_range 0 1 in
  ignore (System.reconfigure sys ~set:pair);
  System.settle sys;
  List.iter
    (fun p ->
      match System.last_view_of sys p with
      | Some (_, tset) ->
          check
            (Fmt.str "T at %a is the joint movers" Proc.pp p)
            true (Proc.Set.equal tset pair)
      | None -> Alcotest.fail "no view")
    [ 0; 1 ]

let test_transitional_set_first_view () =
  (* moving out of the initial singleton views, every process moves
     from a different previous view: T = {self} *)
  let sys = System.create ~seed:43 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  List.iter
    (fun p ->
      match System.last_view_of sys p with
      | Some (_, tset) ->
          check "T is the singleton self" true (Proc.Set.equal tset (Proc.Set.singleton p))
      | None -> Alcotest.fail "no view")
    [ 0; 1; 2 ]

let test_transitional_set_merge () =
  (* {0,1} and {2} evolve separately, then merge: the pair's T is
     {0,1}, the singleton's is {2} *)
  let sys = System.create ~seed:44 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  let pair = Proc.Set.of_range 0 1 in
  let solo = Proc.Set.singleton 2 in
  ignore (System.reconfigure sys ~origin:0 ~set:pair);
  ignore (System.reconfigure sys ~origin:1 ~set:solo);
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:all);
  System.settle sys;
  let t_of p =
    match System.last_view_of sys p with
    | Some (_, t) -> t
    | None -> Alcotest.failf "no view at %a" Proc.pp p
  in
  check "T at p0" true (Proc.Set.equal (t_of 0) pair);
  check "T at p1" true (Proc.Set.equal (t_of 1) pair);
  check "T at p2" true (Proc.Set.equal (t_of 2) solo)

let test_no_pre_agreed_identifier () =
  (* the mechanism under test: different processes may receive
     different start_change identifiers for the same reconfiguration,
     and the view's startId map reconciles them; here p2's cid history
     diverges from p0/p1's because it went through an extra solo change *)
  let sys = System.create ~seed:45 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.singleton 2));
  ignore (System.reconfigure sys ~origin:2 ~set:(Proc.Set.singleton 2));
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:all);
  System.settle sys;
  match System.last_view_of sys 0 with
  | Some (v, _) ->
      check "cids differ across members" true
        (not (View.Sc_id.equal (View.start_id v 0) (View.start_id v 2)));
      check "everyone installed it anyway" true (System.all_in_view sys v)
  | None -> Alcotest.fail "no view"

let test_messages_delivered_while_reconfiguring () =
  (* paper §1: some application messages may be delivered while the
     algorithm reconfigures — deliveries occur between start_change and
     the new view at the trace level *)
  let sys = System.create ~seed:46 ~n:3 () in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  System.broadcast sys ~senders:set ~per_sender:10;
  (match System.run sys ~max_steps:120 with _ -> ());
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  let tr = Vsgc_ioa.Executor.trace (System.exec sys) in
  (* deliveries at p0 strictly between its second start_change and its
     second view *)
  let n = Vsgc_ioa.Trace_stats.deliveries_during_reconfiguration ~nth_change:2 ~at:0 tr in
  check "deliveries happened during reconfiguration" true (n > 0)

let suite =
  [
    Alcotest.test_case "agreed delivery sets" `Quick test_agreed_delivery_sets;
    Alcotest.test_case "transitional set: joint move" `Quick test_transitional_set_joint_move;
    Alcotest.test_case "transitional set: first view" `Quick test_transitional_set_first_view;
    Alcotest.test_case "transitional set: merge" `Quick test_transitional_set_merge;
    Alcotest.test_case "no pre-agreed identifier needed" `Quick test_no_pre_agreed_identifier;
    Alcotest.test_case "delivery during reconfiguration" `Quick
      test_messages_delivered_while_reconfiguring;
  ]
