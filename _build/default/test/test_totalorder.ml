(* The totally ordered multicast layer: same total order everywhere,
   preserved across view changes by Virtual Synchrony. *)

open Vsgc_types
module System = Vsgc_harness.System
module Tord = Vsgc_totalorder.Tord_client

let build ~seed ~n =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed ~n
      ~client_builder:(fun p ->
        let c, r = Tord.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  (sys, fun p -> Hashtbl.find refs p)

let orders_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (p, s) (q, t) -> Proc.equal p q && String.equal s t) a b

let test_same_total_order () =
  let sys, tord = build ~seed:81 ~n:3 in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  (* concurrent multicasts from everyone *)
  List.iter
    (fun p ->
      for i = 1 to 6 do
        Tord.push (tord p) (Fmt.str "c%a.%d" Proc.pp p i)
      done)
    [ 0; 1; 2 ];
  System.settle sys;
  let o0 = Tord.total_order !(tord 0) in
  Alcotest.(check int) "all messages ordered" 18 (List.length o0);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "p%d agrees with p0" p)
        true
        (orders_equal o0 (Tord.total_order !(tord p))))
    [ 1; 2 ]

let test_order_across_view_change () =
  let sys, tord = build ~seed:82 ~n:3 in
  let set = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set);
  System.settle sys;
  List.iter
    (fun p ->
      for i = 1 to 5 do
        Tord.push (tord p) (Fmt.str "m%a.%d" Proc.pp p i)
      done)
    [ 0; 1; 2 ];
  (* reconfigure while traffic is in flight: the flush at the view
     boundary must keep survivors identical *)
  (match System.run sys ~max_steps:200 with _ -> ());
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  let o0 = Tord.total_order !(tord 0) in
  let o1 = Tord.total_order !(tord 1) in
  Alcotest.(check bool) "survivors share one order" true (orders_equal o0 o1);
  Alcotest.(check int) "nothing lost for the survivors' senders" 15 (List.length o0)

let test_order_under_sequencer_loss () =
  (* the sequencer (minimum member) leaves; the others re-elect and
     keep a consistent order *)
  let sys, tord = build ~seed:83 ~n:3 in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  List.iter (fun p -> Tord.push (tord p) (Fmt.str "pre%d" p)) [ 0; 1; 2 ];
  System.settle sys;
  System.crash sys 0;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 1 2));
  System.settle sys;
  List.iter (fun p -> Tord.push (tord p) (Fmt.str "post%d" p)) [ 1; 2 ];
  System.settle sys;
  let o1 = Tord.total_order !(tord 1) in
  let o2 = Tord.total_order !(tord 2) in
  Alcotest.(check bool) "orders equal after sequencer loss" true (orders_equal o1 o2);
  Alcotest.(check int) "all five commands ordered" 5 (List.length o1)

let test_core_decode () =
  let open Vsgc_totalorder.Tord_core in
  (match decode (encode_data "hello") with
  | Data "hello" -> ()
  | _ -> Alcotest.fail "data roundtrip");
  (match decode (encode_order ~sender:3 ~index:17) with
  | Order (3, 17) -> ()
  | _ -> Alcotest.fail "order roundtrip");
  match decode "garbage" with
  | Other _ -> ()
  | _ -> Alcotest.fail "garbage classified"

let suite =
  [
    Alcotest.test_case "same total order everywhere" `Quick test_same_total_order;
    Alcotest.test_case "order preserved across view change" `Quick test_order_across_view_change;
    Alcotest.test_case "order survives sequencer loss" `Quick test_order_under_sequencer_loss;
    Alcotest.test_case "core wire encoding" `Quick test_core_decode;
  ]
