(* The invariant checkers themselves must have teeth: hand-corrupted
   global states violating specific §6/§7 invariants are rejected by
   exactly the right checker, and the healthy state passes all. *)

open Vsgc_types
module Inv = Vsgc_checker.Invariants
module System = Vsgc_harness.System
module Endpoint = Vsgc_core.Endpoint
module Wv = Vsgc_core.Wv_rfifo
module Vs = Vsgc_core.Vs_rfifo_ts

(* A healthy settled system's snapshot, to corrupt. *)
let healthy () =
  let sys = System.create ~seed:131 ~n:3 () in
  let all = Proc.Set.of_range 0 2 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  (sys, System.snapshot sys)

(* A corruption usually breaks several related invariants at once (the
   proofs lean on each other); we require that SOME checker fires and
   that it is one of the expected family. *)
let rejects names f =
  let _, snap = healthy () in
  let snap = f snap in
  try
    Inv.check_all snap;
    Alcotest.failf "corrupted state passed all invariants (%s)"
      (String.concat "/" names)
  with Inv.Invariant_violation { name = got; _ } ->
    Alcotest.(check bool)
      (Fmt.str "an expected invariant fired (%s ∈ %s)" got (String.concat "/" names))
      true (List.mem got names)

let mutate_endpoint snap p f =
  { snap with Inv.endpoints = Proc.Map.add p (f (Proc.Map.find p snap.Inv.endpoints)) snap.Inv.endpoints }

let test_healthy_passes () =
  let _, snap = healthy () in
  Inv.check_all snap

let test_6_1 () =
  (* an end-point whose current view excludes it *)
  rejects [ "6.1" ] (fun snap ->
      mutate_endpoint snap 0 (fun e ->
          let w = Endpoint.wv e in
          let v_foreign = View.initial 1 in
          let w' = { w with Wv.current_view = v_foreign } in
          { e with Endpoint.g =
              { e.Endpoint.g with Vsgc_core.Gcs.vs =
                  { e.Endpoint.g.Vsgc_core.Gcs.vs with Vs.wv = w' } } }))

let test_6_9 () =
  (* an own sync message recorded against a different view *)
  rejects [ "6.9"; "6.8"; "6.7" ] (fun snap ->
      mutate_endpoint snap 0 (fun e ->
          let vs = Endpoint.vs e in
          let bogus = { Vs.view = View.initial 0; cut = Msg.Cut.empty } in
          let own = Proc.Map.find_default ~default:Vs.Sc_map.empty 0 vs.Vs.sync_msgs in
          let sync_msgs = Proc.Map.add 0 (Vs.Sc_map.add 99 bogus own) vs.Vs.sync_msgs in
          let vs' = { vs with Vs.sync_msgs; start_change = Some (99, Proc.Set.of_range 0 2) } in
          { e with Endpoint.g = { e.Endpoint.g with Vsgc_core.Gcs.vs = vs' } }))

let test_6_11 () =
  (* end-point blocked, client unblocked *)
  rejects [ "6.11" ] (fun snap ->
      mutate_endpoint snap 0 (fun e ->
          { e with Endpoint.g =
              { e.Endpoint.g with Vsgc_core.Gcs.block_status = Vsgc_core.Gcs.Blocked } }))

let test_6_6_3 () =
  (* a receiver holding a message its sender never sent *)
  rejects [ "6.6.3" ] (fun snap ->
      mutate_endpoint snap 0 (fun e ->
          let w = Endpoint.wv e in
          let w' = Wv.msgs_set w 1 w.Wv.current_view 7 (Msg.App_msg.make "forged") in
          { e with Endpoint.g =
              { e.Endpoint.g with Vsgc_core.Gcs.vs =
                  { e.Endpoint.g.Vsgc_core.Gcs.vs with Vs.wv = w' } } }))

let test_7_2 () =
  (* a cut committing to messages the owner does not hold *)
  rejects [ "7.2"; "6.8"; "6.7"; "6.13" ] (fun snap ->
      mutate_endpoint snap 0 (fun e ->
          let vs = Endpoint.vs e in
          let cut = Msg.Cut.of_bindings [ (1, 42) ] in
          let sm = { Vs.view = (Endpoint.wv e).Wv.current_view; cut } in
          let own = Proc.Map.find_default ~default:Vs.Sc_map.empty 0 vs.Vs.sync_msgs in
          let sync_msgs = Proc.Map.add 0 (Vs.Sc_map.add 99 sm own) vs.Vs.sync_msgs in
          let vs' = { vs with Vs.sync_msgs; start_change = Some (99, Proc.Set.of_range 0 2) } in
          { e with Endpoint.g = { e.Endpoint.g with Vsgc_core.Gcs.vs = vs' } }))

let suite =
  [
    Alcotest.test_case "healthy state passes all invariants" `Quick test_healthy_passes;
    Alcotest.test_case "6.1 rejects self-exclusion" `Quick test_6_1;
    Alcotest.test_case "6.9 rejects wrong-view own sync" `Quick test_6_9;
    Alcotest.test_case "6.11 rejects block disagreement" `Quick test_6_11;
    Alcotest.test_case "6.6.3 rejects forged messages" `Quick test_6_6_3;
    Alcotest.test_case "7.2 rejects over-committing cuts" `Quick test_7_2;
  ]
