(* White-box unit tests for the VS_RFIFO+TS layer's guards (Figure 10),
   on hand-built states: the view-readiness precondition, the delivery
   restriction, obsolete-view skipping, and cut computation. *)

open Vsgc_types
module Vs = Vsgc_core.Vs_rfifo_ts
module Wv = Vsgc_core.Wv_rfifo

let mk_view ~num ~origin ~ids =
  let set = Proc.Set.of_list (List.map fst ids) in
  View.make ~id:(View.Id.make ~num ~origin) ~set
    ~start_ids:(Proc.Map.of_seq (List.to_seq ids))

let check = Alcotest.(check bool)

(* Build p0's state: installed view v1 = {0,1,2}, pending change c2. *)
let v1 = mk_view ~num:1 ~origin:0 ~ids:[ (0, 1); (1, 1); (2, 1) ]
let v2 = mk_view ~num:2 ~origin:0 ~ids:[ (0, 2); (1, 2); (2, 2) ]

let base () =
  let t = Vs.initial 0 in
  let t = Vs.lift t (fun w -> Wv.mbrshp_view_effect w v1) in
  let t = Vs.start_change_effect t ~cid:1 ~set:(View.set v1) in
  let t = Vs.lift t (fun w -> Wv.view_effect w v1) in
  let t = Vs.view_effect t v1 in
  (* next change *)
  let t = Vs.start_change_effect t ~cid:2 ~set:(View.set v2) in
  let t = Vs.lift t (fun w -> Wv.mbrshp_view_effect w v2) in
  t

let with_sync t q ~cid ~view = Vs.recv_sync t q ~cid ~view ~cut:Msg.Cut.empty

let test_view_not_ready_without_syncs () =
  let t = base () in
  check "no syncs at all" true (Vs.view_ready t v2 = None);
  let t = Vs.sync_send_effect t in
  check "own sync alone is not enough" true (Vs.view_ready t v2 = None);
  let t = with_sync t 1 ~cid:2 ~view:v1 in
  check "still missing p2" true (Vs.view_ready t v2 = None);
  let t = with_sync t 2 ~cid:2 ~view:v1 in
  match Vs.view_ready t v2 with
  | Some tset ->
      check "all three in T" true (Proc.Set.equal tset (View.set v2))
  | None -> Alcotest.fail "view should be ready"

let test_wrong_cid_not_counted () =
  let t = base () in
  let t = Vs.sync_send_effect t in
  (* p1's sync for the OLD change does not satisfy the new view *)
  let t = with_sync t 1 ~cid:1 ~view:v1 in
  let t = with_sync t 2 ~cid:2 ~view:v1 in
  check "old-cid sync ignored" true (Vs.view_ready t v2 = None)

let test_foreign_view_excluded_from_t () =
  let t = base () in
  let t = Vs.sync_send_effect t in
  let t = with_sync t 1 ~cid:2 ~view:v1 in
  (* p2 moves to v2 from elsewhere *)
  let other = mk_view ~num:1 ~origin:5 ~ids:[ (2, 1) ] in
  let t = with_sync t 2 ~cid:2 ~view:other in
  match Vs.view_ready t v2 with
  | Some tset ->
      check "p2 excluded from T" true (Proc.Set.equal tset (Proc.Set.of_list [ 0; 1 ]))
  | None -> Alcotest.fail "ready with p2 as a joiner"

let test_obsolete_view_skipped () =
  let t = base () in
  let t = Vs.sync_send_effect t in
  let t = with_sync t 1 ~cid:2 ~view:v1 in
  let t = with_sync t 2 ~cid:2 ~view:v1 in
  (* a newer start_change supersedes the change v2 belongs to *)
  let t = Vs.start_change_effect t ~cid:3 ~set:(View.set v2) in
  check "superseded view never ready" true (Vs.view_ready t v2 = None)

let test_deliver_restriction_phases () =
  let t = base () in
  (* before the own sync: unrestricted *)
  check "unrestricted before own sync" true (Vs.deliver_restriction t 1);
  (* p1 sent 2 messages in the current view v1; our cut commits them *)
  let t =
    Vs.lift t (fun w ->
        let w = Wv.msgs_set w 1 v1 1 (Msg.App_msg.make "a") in
        Wv.msgs_set w 1 v1 2 (Msg.App_msg.make "b"))
  in
  let t = Vs.sync_send_effect t in
  (* mbrshp view v2 carries startId(p0)=2 = our cid: restriction uses
     the transitional members' cuts; only our own sync is in *)
  check "own cut admits message 1" true (Vs.deliver_restriction t 1);
  let t' = Vs.lift t (fun w -> Wv.deliver_effect w 1) in
  check "own cut admits message 2" true (Vs.deliver_restriction t' 1);
  let t'' = Vs.lift t' (fun w -> Wv.deliver_effect w 1) in
  check "beyond the cut is blocked" false (Vs.deliver_restriction t'' 1)

let test_sync_cut_commits_buffered_prefix () =
  let t = base () in
  let t =
    Vs.lift t (fun w ->
        let w = Wv.msgs_set w 2 v1 1 (Msg.App_msg.make "x") in
        (* gap at 2 *)
        Wv.msgs_set w 2 v1 3 (Msg.App_msg.make "z"))
  in
  let cut = Vs.sync_cut t in
  Alcotest.(check int) "cut stops at the gap" 1 (Msg.Cut.get cut 2);
  Alcotest.(check int) "nothing from silent members" 0 (Msg.Cut.get cut 1)

let test_transitional_set_requires_sync () =
  let t = base () in
  let t = Vs.sync_send_effect t in
  check "T contains self once synced" true
    (Proc.Set.mem 0 (Vs.transitional_set t v2));
  check "peers without syncs excluded" false
    (Proc.Set.mem 1 (Vs.transitional_set t v2))

let suite =
  [
    Alcotest.test_case "view not ready without syncs" `Quick test_view_not_ready_without_syncs;
    Alcotest.test_case "wrong cid not counted" `Quick test_wrong_cid_not_counted;
    Alcotest.test_case "foreign view excluded from T" `Quick test_foreign_view_excluded_from_t;
    Alcotest.test_case "obsolete view skipped" `Quick test_obsolete_view_skipped;
    Alcotest.test_case "delivery restriction phases" `Quick test_deliver_restriction_phases;
    Alcotest.test_case "sync cut commits buffered prefix" `Quick test_sync_cut_commits_buffered_prefix;
    Alcotest.test_case "transitional set requires syncs" `Quick test_transitional_set_requires_sync;
  ]
