(* Forwarding strategies (§5.2.2): when a disconnected end-point's
   messages are committed to by some survivors but missing at others,
   the survivors forward them. The scenario freezes the channel from
   the eventual crasher to one survivor, so that survivor must recover
   the messages through its peers.

   Expected copy counts: with [Min_copies] exactly one survivor (the
   minimum-id committed holder) forwards each missing message — 5
   copies; with [Simple] every committed holder does — 10 copies. *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

type phase = Frozen | Lossy | Normal

let run_scenario ~strategy ~seed =
  let phase = ref Normal in
  let weights (a : Action.t) =
    match a with
    | Action.Rf_deliver (2, 1, _) when !phase = Frozen -> 0.0
    | Action.Rf_lose (2, 1) when !phase = Lossy -> 1.0
    | Action.Rf_lose _ -> 0.0
    | _ -> 1.0
  in
  let sys = System.create ~seed ~weights ~strategy ~n:4 () in
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.settle sys;
  (* p2 multicasts; p1's incoming channel from p2 is frozen *)
  phase := Frozen;
  for i = 1 to 5 do
    System.send sys 2 (Fmt.str "lost-%d" i)
  done;
  let have_all p = List.length (Client.delivered_from !(System.client sys p) 2) = 5 in
  (match
     System.run sys ~max_steps:100_000 ~stop:(fun () -> have_all 0 && have_all 3)
   with
  | Vsgc_ioa.Executor.Quiescent _ -> ()
  | Vsgc_ioa.Executor.Step_limit -> Alcotest.fail "survivors never got the traffic");
  Alcotest.(check bool) "p0 holds the messages" true (have_all 0);
  (* the sender dies; the frozen channel's contents are lost *)
  System.crash sys 2;
  phase := Lossy;
  (match
     System.run sys ~max_steps:100_000 ~stop:(fun () ->
         Vsgc_corfifo.channel_length !(System.corfifo sys) 2 1 = 0)
   with
  | Vsgc_ioa.Executor.Quiescent _ -> ()
  | Vsgc_ioa.Executor.Step_limit -> Alcotest.fail "channel never drained");
  phase := Normal;
  (* survivors reconfigure; p1 must recover p2's messages to move *)
  ignore (System.reconfigure sys ~set:(Proc.Set.of_list [ 0; 1; 3 ]));
  System.settle sys;
  Alcotest.(check int)
    "p1 recovered every message" 5
    (List.length (Client.delivered_from !(System.client sys 1) 2));
  Vsgc_ioa.Metrics.sent_count (Vsgc_ioa.Executor.metrics (System.exec sys)) Msg.Wire.K_fwd

let test_min_copies () =
  let copies = run_scenario ~strategy:Vsgc_core.Forwarding.Min_copies ~seed:61 in
  Alcotest.(check int) "exactly one copy per missing message" 5 copies

let test_simple () =
  let copies = run_scenario ~strategy:Vsgc_core.Forwarding.Simple ~seed:61 in
  Alcotest.(check int) "every committed holder forwards" 10 copies

let test_no_duplicate_forwards () =
  (* forwarded_set: even under repeated enabling, the same (dest,
     origin, view, index) is forwarded at most once per holder *)
  let copies_a = run_scenario ~strategy:Vsgc_core.Forwarding.Simple ~seed:62 in
  let copies_b = run_scenario ~strategy:Vsgc_core.Forwarding.Simple ~seed:63 in
  Alcotest.(check int) "copy count independent of schedule (a)" 10 copies_a;
  Alcotest.(check int) "copy count independent of schedule (b)" 10 copies_b

let suite =
  [
    Alcotest.test_case "min-copies strategy" `Quick test_min_copies;
    Alcotest.test_case "simple strategy" `Quick test_simple;
    Alcotest.test_case "no duplicate forwards" `Quick test_no_duplicate_forwards;
  ]
