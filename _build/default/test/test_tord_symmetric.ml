(* The symmetric (logical-timestamp) total order: agreement everywhere,
   consistency across view changes, and the traffic/latency tradeoff
   against the sequencer variant — the two endpoints of [13]'s adaptive
   protocol, both atop the same WV_RFIFO substrate. *)

open Vsgc_types
module System = Vsgc_harness.System
module Sym = Vsgc_totalorder.Tord_sym_client
module Seq = Vsgc_totalorder.Tord_client

let build_sym ~seed ~n =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed ~n
      ~client_builder:(fun p ->
        let c, r = Sym.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  (sys, fun p -> Hashtbl.find refs p)

let orders_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (p, s) (q, t) -> Proc.equal p q && String.equal s t) a b

let test_agreement () =
  let sys, sym = build_sym ~seed:151 ~n:3 in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  List.iter
    (fun p ->
      for i = 1 to 5 do
        Sym.push (sym p) (Fmt.str "s%d.%d" p i)
      done)
    [ 0; 1; 2 ];
  System.settle sys;
  let o0 = Sym.total_order !(sym 0) in
  Alcotest.(check int) "all ordered" 15 (List.length o0);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "p%d agrees" p)
        true
        (orders_equal o0 (Sym.total_order !(sym p))))
    [ 1; 2 ]

let test_order_respects_timestamps () =
  (* entries come out sorted per view segment by (ts, sender) *)
  let sys, sym = build_sym ~seed:152 ~n:2 in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  Sym.push (sym 0) "a";
  Sym.push (sym 0) "b";
  Sym.push (sym 1) "c";
  System.settle sys;
  let o = Sym.total_order !(sym 0) in
  (* p0's a,b keep their relative order; all three present *)
  let payloads = List.map snd o in
  Alcotest.(check int) "three entries" 3 (List.length o);
  Alcotest.(check bool) "a before b" true
    (let rec idx x i = function
       | [] -> -1
       | y :: _ when String.equal x y -> i
       | _ :: r -> idx x (i + 1) r
     in
     idx "a" 0 payloads < idx "b" 0 payloads)

let test_across_view_change () =
  let sys, sym = build_sym ~seed:153 ~n:3 in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  List.iter (fun p -> Sym.push (sym p) (Fmt.str "pre%d" p)) [ 0; 1; 2 ];
  (match System.run sys ~max_steps:150 with _ -> ());
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  List.iter (fun p -> Sym.push (sym p) (Fmt.str "post%d" p)) [ 0; 1 ];
  System.settle sys;
  let o0 = Sym.total_order !(sym 0) in
  let o1 = Sym.total_order !(sym 1) in
  Alcotest.(check bool) "survivors agree across the change" true (orders_equal o0 o1);
  Alcotest.(check int) "all five ordered" 5 (List.length o0)

(* The tradeoff against the sequencer variant: symmetric ordering costs
   O(n²) ack copies per multicast but no sequencer hotspot; the
   sequencer costs O(n) announcement copies. *)
let test_traffic_tradeoff () =
  let app_copies sys =
    Vsgc_ioa.Metrics.sent_count (Vsgc_ioa.Executor.metrics (System.exec sys)) Msg.Wire.K_app
  in
  let n = 5 in
  let run_sym () =
    let sys, sym = build_sym ~seed:154 ~n in
    ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 (n - 1)));
    System.settle sys;
    let before = app_copies sys in
    Sym.push (sym 2) "solo";
    System.settle sys;
    app_copies sys - before
  in
  let run_seq () =
    let refs = Hashtbl.create 8 in
    let sys =
      System.create ~seed:154 ~n
        ~client_builder:(fun p ->
          let c, r = Seq.component p in
          Hashtbl.replace refs p r;
          c)
        ()
    in
    ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 (n - 1)));
    System.settle sys;
    let before = app_copies sys in
    Seq.push (Hashtbl.find refs 2) "solo";
    System.settle sys;
    app_copies sys - before
  in
  let sym = run_sym () and seq = run_seq () in
  (* sequencer: data (n-1) + announcement (n-1) = 8;
     symmetric: data (n-1) + an ack from each other member ((n-1)²) = 20 *)
  Alcotest.(check int) "sequencer copies" (2 * (n - 1)) seq;
  Alcotest.(check bool)
    (Fmt.str "symmetric costs more copies (%d > %d)" sym seq)
    true (sym > seq)

let suite =
  [
    Alcotest.test_case "symmetric order: agreement" `Quick test_agreement;
    Alcotest.test_case "symmetric order: timestamps respected" `Quick
      test_order_respects_timestamps;
    Alcotest.test_case "symmetric order: across view change" `Quick test_across_view_change;
    Alcotest.test_case "traffic tradeoff vs sequencer" `Quick test_traffic_tradeoff;
  ]
