(* Property-based tests for the client-server membership stack: random
   sequences of failure-detector events, joins and leaves, followed by
   stabilization, must leave every attached client of every connected
   server component in one agreed view — with the whole run under the
   MBRSHP monitor and the rest of the safety battery. *)

open Vsgc_types
module System = Vsgc_harness.System
module SS = Vsgc_harness.Server_system

let n_clients = 6
let n_servers = 2

type op = Leave of Proc.t | Rejoin of Proc.t | Split | Heal | Run of int | Traffic

let pp_op = function
  | Leave p -> Fmt.str "leave(%a)" Proc.pp p
  | Rejoin p -> Fmt.str "rejoin(%a)" Proc.pp p
  | Split -> "split"
  | Heal -> "heal"
  | Run k -> Fmt.str "run(%d)" k
  | Traffic -> "traffic"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun p -> Leave p) (int_range 0 (n_clients - 1)));
        (2, map (fun p -> Rejoin p) (int_range 0 (n_clients - 1)));
        (1, return Split);
        (1, return Heal);
        (3, map (fun k -> Run k) (int_range 20 200));
        (2, return Traffic);
      ])

let arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 8) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

let execute ~seed ops =
  let ss = SS.create ~seed ~n_clients ~n_servers () in
  let sys = SS.sys ss in
  SS.bootstrap ss;
  let present = ref (Proc.Set.of_range 0 (n_clients - 1)) in
  List.iter
    (fun op ->
      match op with
      | Leave p ->
          if Proc.Set.mem p !present then begin
            SS.leave ss p;
            present := Proc.Set.remove p !present
          end
      | Rejoin p ->
          if not (Proc.Set.mem p !present) then begin
            SS.join ss p;
            present := Proc.Set.add p !present
          end
      | Split ->
          SS.fd_change ss ~perceived:(Server.Set.singleton 0);
          SS.fd_change ss ~perceived:(Server.Set.singleton 1)
      | Heal -> SS.fd_change ss ~perceived:(Server.Set.of_range 0 (n_servers - 1))
      | Run k -> ignore (System.run sys ~max_steps:k)
      | Traffic ->
          Proc.Set.iter
            (fun p -> System.send sys p (Fmt.str "t%a" Proc.pp p))
            !present)
    ops;
  (* stabilize: heal the servers and settle *)
  SS.fd_change ss ~perceived:(Server.Set.of_range 0 (n_servers - 1));
  System.settle ~max_steps:2_000_000 sys;
  (ss, sys, !present)

let prop_monitored seed ops =
  ignore (execute ~seed ops);
  true

let prop_agreement seed ops =
  let _ss, sys, present = execute ~seed ops in
  (* after stabilization, all currently attached clients share one view
     whose member set is exactly the attached set *)
  Proc.Set.is_empty present
  ||
  match System.last_view_of sys (Proc.Set.min_elt present) with
  | None -> false
  | Some (v, _) -> Proc.Set.equal (View.set v) present && System.all_in_view sys v

let mk name prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xFACE |])
    (QCheck.Test.make ~count:40 ~name
       QCheck.(pair (int_range 0 10_000) arb)
       (fun (seed, ops) -> prop seed ops))

let suite =
  [
    mk "random membership events satisfy all specs" prop_monitored;
    mk "clients converge after stabilization" prop_agreement;
  ]
