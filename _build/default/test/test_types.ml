(* Unit tests for the vocabulary types: identifiers, views, cuts,
   queues, and the deterministic RNG. *)

open Vsgc_types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Proc --------------------------------------------------------------- *)

let test_proc () =
  check_int "roundtrip" 7 (Proc.to_int (Proc.of_int 7));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Proc.of_int: negative process id")
    (fun () -> ignore (Proc.of_int (-1)));
  check "of_range" true (Proc.Set.equal (Proc.Set.of_range 2 4) (Proc.Set.of_list [ 2; 3; 4 ]));
  check "of_range empty" true (Proc.Set.is_empty (Proc.Set.of_range 3 2));
  Alcotest.(check string) "pp" "p3" (Proc.to_string 3)

let test_proc_map () =
  let m = Proc.Map.(empty |> add 1 "a" |> add 3 "b") in
  Alcotest.(check string) "find_default hit" "a" (Proc.Map.find_default ~default:"z" 1 m);
  Alcotest.(check string) "find_default miss" "z" (Proc.Map.find_default ~default:"z" 2 m);
  check "key_set" true (Proc.Set.equal (Proc.Map.key_set m) (Proc.Set.of_list [ 1; 3 ]));
  Alcotest.(check (list int)) "keys sorted" [ 1; 3 ] (Proc.Map.keys m)

(* -- View ids and views -------------------------------------------------- *)

let test_view_id_order () =
  let a = View.Id.make ~num:1 ~origin:0 in
  let b = View.Id.make ~num:1 ~origin:1 in
  let c = View.Id.make ~num:2 ~origin:0 in
  check "same num, origin breaks tie" true (View.Id.lt a b);
  check "num dominates" true (View.Id.lt b c);
  check "zero least" true (View.Id.lt View.Id.zero a);
  check "succ_from increments num" true
    (View.Id.equal (View.Id.succ_from ~origin:5 a) (View.Id.make ~num:2 ~origin:5))

let test_view_make_validation () =
  let set = Proc.Set.of_list [ 0; 1 ] in
  let ok = Proc.Map.(empty |> add 0 1 |> add 1 1) in
  ignore (View.make ~id:(View.Id.make ~num:1 ~origin:0) ~set ~start_ids:ok);
  let missing = Proc.Map.singleton 0 1 in
  check "partial start_ids rejected" true
    (try
       ignore (View.make ~id:View.Id.zero ~set ~start_ids:missing);
       false
     with Invalid_argument _ -> true);
  let extra = Proc.Map.(ok |> add 2 1) in
  check "extra start_ids rejected" true
    (try
       ignore (View.make ~id:View.Id.zero ~set ~start_ids:extra);
       false
     with Invalid_argument _ -> true)

let test_view_identity () =
  (* two views are the same only if the whole triple matches — in
     particular differing startId maps make different views (§9) *)
  let set = Proc.Set.of_list [ 0; 1 ] in
  let id = View.Id.make ~num:1 ~origin:0 in
  let v1 = View.make ~id ~set ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 1) in
  let v2 = View.make ~id ~set ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 2) in
  check "same id, different startIds: different views" false (View.equal v1 v2);
  check "equal to itself" true (View.equal v1 v1);
  check_int "start_id lookup" 2 (View.start_id v2 1);
  check "initial view is self-inclusive" true (View.mem 4 (View.initial 4))

(* -- Cuts ---------------------------------------------------------------- *)

let test_cut () =
  let c = Msg.Cut.of_bindings [ (0, 3); (1, 0); (2, 5) ] in
  check_int "get set" 3 (Msg.Cut.get c 0);
  check_int "zero binding is default" 0 (Msg.Cut.get c 1);
  check_int "missing is zero" 0 (Msg.Cut.get c 9);
  let d = Msg.Cut.of_bindings [ (0, 4); (2, 1) ] in
  check_int "max_over picks pointwise max" 4 (Msg.Cut.max_over [ c; d ] 0);
  check_int "max_over other key" 5 (Msg.Cut.max_over [ c; d ] 2);
  check_int "max_over empty list" 0 (Msg.Cut.max_over [] 0);
  check "cuts with zero entries equal" true
    (Msg.Cut.equal (Msg.Cut.of_bindings [ (1, 0) ]) Msg.Cut.empty);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Cut.set: negative index") (fun () ->
      ignore (Msg.Cut.set Msg.Cut.empty 0 (-1)))

(* -- Fqueue --------------------------------------------------------------- *)

let test_fqueue () =
  let q = List.fold_left Fqueue.push Fqueue.empty [ 1; 2; 3 ] in
  check_int "length" 3 (Fqueue.length q);
  (match Fqueue.pop q with
  | Some (1, q') -> check_int "pop preserves rest" 2 (Fqueue.length q')
  | _ -> Alcotest.fail "pop head");
  Alcotest.(check (list int)) "to_list order" [ 1; 2; 3 ] (Fqueue.to_list q);
  (match Fqueue.drop_last q with
  | Some q' -> Alcotest.(check (list int)) "drop_last" [ 1; 2 ] (Fqueue.to_list q')
  | None -> Alcotest.fail "drop_last");
  (* drop_last after a pop forced the front list *)
  (match Fqueue.pop q with
  | Some (_, q') -> (
      match Fqueue.drop_last q' with
      | Some q'' -> Alcotest.(check (list int)) "drop_last on front" [ 2 ] (Fqueue.to_list q'')
      | None -> Alcotest.fail "drop_last on front")
  | None -> Alcotest.fail "pop");
  check "drop_last empty" true (Fqueue.drop_last Fqueue.empty = None);
  check "peek" true (Fqueue.peek q = Some 1);
  check "of_list roundtrip" true (Fqueue.to_list (Fqueue.of_list [ 9; 8 ]) = [ 9; 8 ])

(* -- Rng ------------------------------------------------------------------ *)

let test_rng () =
  let a = Vsgc_ioa.Rng.make 7 and b = Vsgc_ioa.Rng.make 7 in
  let seq r = List.init 20 (fun _ -> Vsgc_ioa.Rng.int r 1000) in
  Alcotest.(check (list int)) "deterministic" (seq a) (seq b);
  let r = Vsgc_ioa.Rng.make 1 in
  for _ = 1 to 1000 do
    let v = Vsgc_ioa.Rng.int r 10 in
    check "int in bounds" true (v >= 0 && v < 10);
    let f = Vsgc_ioa.Rng.float r in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  let l = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int))
    "shuffle permutes" l
    (List.sort compare (Vsgc_ioa.Rng.shuffle r l));
  check "pick member" true (List.mem (Vsgc_ioa.Rng.pick r l) l)

(* -- Actions --------------------------------------------------------------- *)

let test_action () =
  let v = View.initial 2 in
  let a = Action.App_view (2, v, Proc.Set.singleton 2) in
  check "equal self" true (Action.equal a a);
  check "different kinds differ" false (Action.equal a (Action.Block 2));
  Alcotest.(check int) "locus of deliver is receiver" 5
    (Action.locus (Action.Rf_deliver (1, 5, Msg.Wire.App (Msg.App_msg.make "x"))));
  Alcotest.(check int) "locus of view" 2 (Action.locus a);
  Alcotest.(check string) "category name" "app_view"
    (Action.category_to_string (Action.category a))

let suite =
  [
    Alcotest.test_case "proc ids" `Quick test_proc;
    Alcotest.test_case "proc maps" `Quick test_proc_map;
    Alcotest.test_case "view id order" `Quick test_view_id_order;
    Alcotest.test_case "view validation" `Quick test_view_make_validation;
    Alcotest.test_case "view identity is the triple" `Quick test_view_identity;
    Alcotest.test_case "cuts" `Quick test_cut;
    Alcotest.test_case "fqueue" `Quick test_fqueue;
    Alcotest.test_case "rng" `Quick test_rng;
    Alcotest.test_case "actions" `Quick test_action;
  ]
