(* Property-based tests (qcheck): randomized scenarios over the full
   stack. Every generated run executes under all seven safety monitors
   and all §6/§7 invariant checkers — a random search for reachable
   states that falsify the paper's proof obligations — plus trace-level
   properties checked here directly. *)

open Vsgc_types
module System = Vsgc_harness.System
module Client = Vsgc_core.Client

let n = 4
let all = Proc.Set.of_range 0 (n - 1)

type op =
  | Reconfigure of Proc.Set.t
  | Send of Proc.t * int
  | Crash of Proc.t
  | Recover of Proc.t
  | Run of int  (* partial run: let the scheduler interleave *)

let pp_op = function
  | Reconfigure s -> Fmt.str "reconf%a" Proc.Set.pp s
  | Send (p, k) -> Fmt.str "send(%a,%d)" Proc.pp p k
  | Crash p -> Fmt.str "crash(%a)" Proc.pp p
  | Recover p -> Fmt.str "recover(%a)" Proc.pp p
  | Run k -> Fmt.str "run(%d)" k

let gen_subset =
  (* non-empty subset of the universe *)
  QCheck.Gen.(
    map
      (fun bits ->
        let s =
          List.fold_left
            (fun acc i -> if bits land (1 lsl i) <> 0 then Proc.Set.add i acc else acc)
            Proc.Set.empty
            (List.init n Fun.id)
        in
        if Proc.Set.is_empty s then Proc.Set.singleton 0 else s)
      (int_range 1 ((1 lsl n) - 1)))

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun s -> Reconfigure s) gen_subset);
        (4, map2 (fun p k -> Send (p, k)) (int_range 0 (n - 1)) (int_range 1 4));
        (1, map (fun p -> Crash p) (int_range 0 (n - 1)));
        (1, map (fun p -> Recover p) (int_range 0 (n - 1)));
        (3, map (fun k -> Run k) (int_range 10 200));
      ])

let gen_scenario = QCheck.Gen.(list_size (int_range 1 10) gen_op)

let arb_scenario =
  QCheck.make gen_scenario ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

(* Execute a scenario. Returns the system, the per-process send
   history since the last crash (newest first), the live set, and the
   set of processes that ever crashed. *)
let execute ?hierarchy ?weights ~seed ops =
  let sys = System.create ~seed ?weights ?hierarchy ~n () in
  System.attach_invariants ~every:5 sys;
  let counter = ref 0 in
  let history = Array.make n [] in
  let crashed = ref Proc.Set.empty in
  let ever = ref Proc.Set.empty in
  let origin = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Reconfigure set ->
          (* reconfigure the non-crashed members of [set]; the oracle
             view must go to processes that can eventually act *)
          let set = Proc.Set.diff set !crashed in
          if not (Proc.Set.is_empty set) then begin
            incr origin;
            ignore (System.reconfigure sys ~origin:!origin ~set)
          end
      | Send (p, k) ->
          if not (Proc.Set.mem p !crashed) then
            for _ = 1 to k do
              incr counter;
              let payload = Fmt.str "x%d" !counter in
              System.send sys p payload;
              history.(p) <- payload :: history.(p)
            done
      | Crash p ->
          if not (Proc.Set.mem p !crashed) then begin
            System.crash sys p;
            crashed := Proc.Set.add p !crashed;
            ever := Proc.Set.add p !ever;
            history.(p) <- []
          end
      | Recover p ->
          if Proc.Set.mem p !crashed then begin
            System.recover sys p;
            crashed := Proc.Set.remove p !crashed
          end
      | Run k -> ignore (System.run sys ~max_steps:k))
    ops;
  (* stabilize on the live membership *)
  let live = Proc.Set.diff all !crashed in
  if not (Proc.Set.is_empty live) then begin
    incr origin;
    ignore (System.reconfigure sys ~origin:!origin ~set:live)
  end;
  System.settle sys;
  (sys, history, live, !ever)

(* [sub] is a subsequence of [full]. *)
let rec is_subsequence sub full =
  match (sub, full) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> if String.equal x y then is_subsequence xs ys else is_subsequence (x :: xs) ys

let prop_monitored_run seed ops =
  (* monitors + invariants raise on any violation *)
  ignore (execute ~seed ops);
  true

let prop_monitored_run_hierarchy seed ops =
  (* the §9 two-tier relaying must satisfy the same specs everywhere *)
  ignore (execute ~hierarchy:2 ~seed ops);
  true

let prop_monitored_run_lossy seed ops =
  (* adversarial message loss: CO_RFIFO may drop suffixes toward any
     target outside a sender's reliable set (the spec's lose action at
     full weight). Safety must be untouched, and the final stabilized
     view must still form: reliable connections cover view members, so
     loss only ever hits processes excluded from the next view. *)
  let weights (a : Action.t) = match a with Action.Rf_lose _ -> 1.0 | _ -> 1.0 in
  let sys, _, live, _ = execute ~weights ~seed ops in
  Proc.Set.is_empty live
  ||
  match System.last_view_of sys (Proc.Set.min_elt live) with
  | Some (v, _) -> System.all_in_view sys v
  | None -> false

let prop_fifo_subsequence seed ops =
  let sys, history, _live, ever = execute ~seed ops in
  List.for_all
    (fun p ->
      List.for_all
        (fun q ->
          (* a crash wipes q's history, so only never-crashed senders
             can be checked against the recorded send order *)
          Proc.Set.mem q ever
          ||
          let got =
            List.map Msg.App_msg.payload (Client.delivered_from !(System.client sys p) q)
          in
          is_subsequence got (List.rev history.(q)))
        (List.init n Fun.id))
    (List.init n Fun.id)

let prop_self_delivery seed ops =
  let sys, _history, live, _ = execute ~seed ops in
  Proc.Set.for_all
    (fun p ->
      let c = !(System.client sys p) in
      List.length (Client.sent c) = List.length (Client.delivered_from c p))
    live

let prop_stable_view_agreement seed ops =
  let sys, _history, live, _ = execute ~seed ops in
  (* after stabilization every live process sits in the same view with
     the same member set *)
  Proc.Set.is_empty live
  ||
  match System.last_view_of sys (Proc.Set.min_elt live) with
  | None -> Proc.Set.cardinal live <= 1
  | Some (v, _) ->
      Proc.Set.equal (View.set v) live && System.all_in_view sys v

let mk_test name prop =
  QCheck.Test.make ~count:60 ~name
    QCheck.(pair (int_range 0 10_000) arb_scenario)
    (fun (seed, ops) -> prop seed ops)

let suite =
  (* pinned randomness: property runs must be reproducible *)
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~long:false ~rand:(Random.State.make [| 0xBEEF |]) t)
    [
      mk_test "random runs satisfy all specs and invariants" prop_monitored_run;
      mk_test "random runs with the two-tier hierarchy" prop_monitored_run_hierarchy;
      mk_test "random runs under adversarial message loss" prop_monitored_run_lossy;
      mk_test "deliveries are FIFO subsequences of sends" prop_fifo_subsequence;
      mk_test "self delivery after stabilization" prop_self_delivery;
      mk_test "stable views agree" prop_stable_view_agreement;
    ]
