(* Unit tests for the total-order core: sequencer announcements,
   order-before-data races, deterministic flushes, cross-member
   agreement under random interleavings (qcheck). *)

open Vsgc_types
module Core = Vsgc_totalorder.Tord_core

let view ~num ~members =
  let set = Proc.Set.of_list members in
  View.make
    ~id:(View.Id.make ~num ~origin:0)
    ~set
    ~start_ids:(Proc.Set.fold (fun p m -> Proc.Map.add p 1 m) set Proc.Map.empty)

let payloads t = List.map (fun (e : Core.entry) -> e.Core.payload) (Core.total_order t)

let test_sequencer_announces () =
  let v = view ~num:1 ~members:[ 0; 1 ] in
  let t, _ = Core.on_view (Core.create 0) ~view:v ~transitional:Proc.Set.empty in
  Alcotest.(check bool) "minimum member sequences" true (Core.is_sequencer t);
  let _, newly, ann = Core.on_deliver t ~sender:1 ~payload:(Core.encode_data "a") in
  Alcotest.(check int) "one announcement" 1 (List.length ann);
  Alcotest.(check int) "nothing ordered before the announcement returns" 0 (List.length newly)

let test_non_sequencer_waits () =
  let v = view ~num:1 ~members:[ 0; 1 ] in
  let t, _ = Core.on_view (Core.create 1) ~view:v ~transitional:Proc.Set.empty in
  Alcotest.(check bool) "p1 is not the sequencer" false (Core.is_sequencer t);
  let t, newly, ann = Core.on_deliver t ~sender:0 ~payload:(Core.encode_data "a") in
  Alcotest.(check int) "no announcements from followers" 0 (List.length ann);
  Alcotest.(check int) "data pends" 0 (List.length newly);
  (* the sequencer's announcement arrives: now it is ordered *)
  let _, newly, _ =
    Core.on_deliver t ~sender:0 ~payload:(Core.encode_order ~sender:0 ~index:1)
  in
  Alcotest.(check int) "ordered on announcement" 1 (List.length newly)

let test_order_before_data () =
  (* announcements may overtake data from other senders; ordering waits *)
  let v = view ~num:1 ~members:[ 0; 1; 2 ] in
  let t, _ = Core.on_view (Core.create 1) ~view:v ~transitional:Proc.Set.empty in
  let t, newly, _ =
    Core.on_deliver t ~sender:0 ~payload:(Core.encode_order ~sender:2 ~index:1)
  in
  Alcotest.(check int) "order queued, nothing delivered" 0 (List.length newly);
  let _, newly, _ = Core.on_deliver t ~sender:2 ~payload:(Core.encode_data "late") in
  Alcotest.(check (list string))
    "delivered when the data lands"
    [ "late" ]
    (List.map (fun (e : Core.entry) -> e.Core.payload) newly)

let test_flush_is_deterministic () =
  (* unannounced messages flush in (sender, index) order at the view
     boundary — same at every member with the same pending set *)
  let v1 = view ~num:1 ~members:[ 0; 1; 2 ] in
  let v2 = view ~num:2 ~members:[ 0; 1; 2 ] in
  let feed t =
    let t, _ = Core.on_view t ~view:v1 ~transitional:Proc.Set.empty in
    let t, _, _ = Core.on_deliver t ~sender:2 ~payload:(Core.encode_data "c1") in
    let t, _, _ = Core.on_deliver t ~sender:1 ~payload:(Core.encode_data "b1") in
    let t, _, _ = Core.on_deliver t ~sender:2 ~payload:(Core.encode_data "c2") in
    let t, flushed = Core.on_view t ~view:v2 ~transitional:Proc.Set.empty in
    (t, List.map (fun (e : Core.entry) -> e.Core.payload) flushed)
  in
  (* p1 and p2 are followers (p0 sequences); they never saw
     announcements, so everything flushes *)
  let _, f1 = feed (Core.create 1) in
  let _, f2 = feed (Core.create 2) in
  Alcotest.(check (list string)) "flush order is (sender, index)" [ "b1"; "c1"; "c2" ] f1;
  Alcotest.(check (list string)) "identical at both members" f1 f2

let test_announced_prefix_then_flush () =
  let v1 = view ~num:1 ~members:[ 0; 1 ] in
  let v2 = view ~num:2 ~members:[ 0; 1 ] in
  let t, _ = Core.on_view (Core.create 1) ~view:v1 ~transitional:Proc.Set.empty in
  let t, _, _ = Core.on_deliver t ~sender:0 ~payload:(Core.encode_data "x") in
  let t, _, _ = Core.on_deliver t ~sender:1 ~payload:(Core.encode_data "y") in
  (* only x gets announced before the change *)
  let t, _, _ = Core.on_deliver t ~sender:0 ~payload:(Core.encode_order ~sender:0 ~index:1) in
  let t, _ = Core.on_view t ~view:v2 ~transitional:Proc.Set.empty in
  Alcotest.(check (list string)) "announced prefix precedes the flush" [ "x"; "y" ] (payloads t)

(* qcheck: two followers fed the same per-sender FIFO streams in
   different global interleavings end with the same total order. *)
let prop_interleaving_agnostic =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (pair (int_range 0 2) (int_range 0 1)))
  in
  QCheck.Test.make ~count:100 ~name:"total order independent of interleaving"
    (QCheck.make gen) (fun script ->
      (* build per-sender streams: data from senders 0..2, with the
         sequencer's announcements interleaved per the script bit *)
      let v = view ~num:1 ~members:[ 0; 1; 2; 3 ] in
      let events =
        List.mapi
          (fun i (sender, _) -> (sender, Core.encode_data (Fmt.str "m%d" i)))
          script
      in
      (* follower A sees events in script order, with announcements
         right after each data; follower B sees all data first (per
         sender FIFO preserved), then all announcements *)
      let counts = Hashtbl.create 4 in
      let indexed =
        List.map
          (fun (s, p) ->
            let i = (match Hashtbl.find_opt counts s with Some n -> n | None -> 0) + 1 in
            Hashtbl.replace counts s i;
            (s, p, i))
          events
      in
      let feed order =
        let t, _ = Core.on_view (Core.create 3) ~view:v ~transitional:Proc.Set.empty in
        List.fold_left
          (fun t (sender, payload) ->
            let t, _, _ = Core.on_deliver t ~sender ~payload in
            t)
          t order
      in
      let a_order =
        List.concat_map
          (fun (s, p, i) -> [ (s, p); (0, Core.encode_order ~sender:s ~index:i) ])
          indexed
      in
      let b_order =
        List.map (fun (s, p, _) -> (s, p)) indexed
        @ List.map (fun (s, _, i) -> (0, Core.encode_order ~sender:s ~index:i)) indexed
      in
      payloads (feed a_order) = payloads (feed b_order))

let suite =
  [
    Alcotest.test_case "sequencer announces" `Quick test_sequencer_announces;
    Alcotest.test_case "followers wait for announcements" `Quick test_non_sequencer_waits;
    Alcotest.test_case "order before data" `Quick test_order_before_data;
    Alcotest.test_case "deterministic flush" `Quick test_flush_is_deterministic;
    Alcotest.test_case "announced prefix then flush" `Quick test_announced_prefix_then_flush;
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 77 |]) prop_interleaving_agnostic;
  ]
