(* Unit tests for the membership components: the oracle's by-
   construction conformance to Figure 2, its script validation, and the
   MBRSHP spec monitor's rejection of bad services. *)

open Vsgc_types
module Oracle = Vsgc_mbrshp.Oracle

let check = Alcotest.(check bool)

let test_oracle_fresh_cids () =
  let r = ref Oracle.initial in
  let set = Proc.Set.of_list [ 0; 1 ] in
  let cids1 = Oracle.queue_start_change r ~set in
  let cids2 = Oracle.queue_start_change r ~set in
  Proc.Set.iter
    (fun p ->
      check "cids strictly increase" true
        (View.Sc_id.compare (Proc.Map.find p cids2) (Proc.Map.find p cids1) > 0))
    set

let test_oracle_form_view () =
  let r = ref Oracle.initial in
  let set = Proc.Set.of_list [ 0; 1; 2 ] in
  let cids = Oracle.queue_start_change r ~set in
  let v = Oracle.form_view r ~origin:0 ~set in
  check "view covers set" true (Proc.Set.equal (View.set v) set);
  Proc.Set.iter
    (fun p ->
      check "startId is the queued cid" true
        (View.Sc_id.equal (View.start_id v p) (Proc.Map.find p cids)))
    set;
  check "id above zero" true (View.Id.lt View.Id.zero (View.id v))

let test_oracle_rejects_view_without_start_change () =
  let r = ref Oracle.initial in
  let set = Proc.Set.of_list [ 0; 1 ] in
  check "form_view before start_change rejected" true
    (try
       ignore (Oracle.form_view r ~origin:0 ~set);
       false
     with Invalid_argument _ -> true)

let test_oracle_rejects_nonmonotonic_view () =
  let r = ref Oracle.initial in
  let set = Proc.Set.of_list [ 0 ] in
  let v1 = Oracle.change r ~set () in
  ignore (Oracle.queue_start_change r ~set);
  (* hand-build a view with a stale identifier *)
  let stale =
    View.make ~id:(View.id v1) ~set ~start_ids:(Proc.Map.singleton 0 ((Oracle.pst !r 0).Oracle.last_cid))
  in
  check "stale view id rejected" true
    (try
       Oracle.queue_view r stale;
       false
     with Invalid_argument _ -> true)

let test_oracle_emission_order () =
  (* events reach each client in exactly the order they were queued *)
  let oracle_c, r = Oracle.component () in
  let exec = Vsgc_ioa.Executor.create ~seed:3 [ oracle_c ] in
  let set = Proc.Set.of_list [ 0; 1 ] in
  ignore (Oracle.queue_start_change r ~set);
  let v1 = Oracle.form_view r ~origin:0 ~set in
  ignore (Oracle.queue_start_change r ~set);
  let v2 = Oracle.form_view r ~origin:0 ~set in
  (match Vsgc_ioa.Executor.run exec with
  | Vsgc_ioa.Executor.Quiescent _ -> ()
  | Vsgc_ioa.Executor.Step_limit -> Alcotest.fail "oracle did not drain");
  check "drained" true (Oracle.drained r);
  let per_proc p =
    List.filter_map
      (function
        | Action.Mb_start_change (q, _, _) when q = p -> Some "sc"
        | Action.Mb_view (q, v) when q = p ->
            Some (if View.equal v v1 then "v1" else if View.equal v v2 then "v2" else "?")
        | _ -> None)
      (Vsgc_ioa.Executor.trace exec)
  in
  Alcotest.(check (list string)) "order at p0" [ "sc"; "v1"; "sc"; "v2" ] (per_proc 0);
  Alcotest.(check (list string)) "order at p1" [ "sc"; "v1"; "sc"; "v2" ] (per_proc 1)

(* -- The MBRSHP monitor must reject non-conforming services -------------- *)

let expect_violation actions =
  let m = Vsgc_spec.Mbrshp_spec.monitor () in
  try
    List.iter m.Vsgc_ioa.Monitor.on_action actions;
    false
  with Vsgc_ioa.Monitor.Violation _ -> true

let view ~num ~origin ~set ~ids =
  View.make ~id:(View.Id.make ~num ~origin) ~set:(Proc.Set.of_list set)
    ~start_ids:(Proc.Map.of_seq (List.to_seq ids))

let test_monitor_rejects_view_without_start_change () =
  check "view without start_change" true
    (expect_violation [ Action.Mb_view (0, view ~num:1 ~origin:0 ~set:[ 0 ] ~ids:[ (0, 0) ]) ])

let test_monitor_rejects_nonmonotonic_ids () =
  check "non-increasing cid" true
    (expect_violation
       [
         Action.Mb_start_change (0, 2, Proc.Set.singleton 0);
         Action.Mb_start_change (0, 2, Proc.Set.singleton 0);
       ])

let test_monitor_rejects_self_exclusion () =
  check "start_change omitting target" true
    (expect_violation [ Action.Mb_start_change (0, 1, Proc.Set.singleton 1) ]);
  check "view omitting target" true
    (expect_violation
       [
         Action.Mb_start_change (0, 1, Proc.Set.of_list [ 0; 1 ]);
         Action.Mb_view (0, view ~num:1 ~origin:0 ~set:[ 1 ] ~ids:[ (1, 1) ]);
       ])

let test_monitor_rejects_wrong_start_id () =
  check "startId mismatch" true
    (expect_violation
       [
         Action.Mb_start_change (0, 5, Proc.Set.singleton 0);
         Action.Mb_view (0, view ~num:1 ~origin:0 ~set:[ 0 ] ~ids:[ (0, 4) ]);
       ])

let test_monitor_rejects_superset_view () =
  check "view beyond start_change set" true
    (expect_violation
       [
         Action.Mb_start_change (0, 1, Proc.Set.singleton 0);
         Action.Mb_view (0, view ~num:1 ~origin:0 ~set:[ 0; 1 ] ~ids:[ (0, 1); (1, 1) ]);
       ])

let test_monitor_rejects_two_views_one_change () =
  check "mode discipline" true
    (expect_violation
       [
         Action.Mb_start_change (0, 1, Proc.Set.singleton 0);
         Action.Mb_view (0, view ~num:1 ~origin:0 ~set:[ 0 ] ~ids:[ (0, 1) ]);
         Action.Mb_view (0, view ~num:2 ~origin:0 ~set:[ 0 ] ~ids:[ (0, 1) ]);
       ])

let suite =
  [
    Alcotest.test_case "oracle issues fresh cids" `Quick test_oracle_fresh_cids;
    Alcotest.test_case "oracle forms conforming views" `Quick test_oracle_form_view;
    Alcotest.test_case "oracle rejects view w/o start_change" `Quick
      test_oracle_rejects_view_without_start_change;
    Alcotest.test_case "oracle rejects stale view ids" `Quick test_oracle_rejects_nonmonotonic_view;
    Alcotest.test_case "oracle emits per-client FIFO" `Quick test_oracle_emission_order;
    Alcotest.test_case "monitor: view needs start_change" `Quick
      test_monitor_rejects_view_without_start_change;
    Alcotest.test_case "monitor: cids must increase" `Quick test_monitor_rejects_nonmonotonic_ids;
    Alcotest.test_case "monitor: self inclusion" `Quick test_monitor_rejects_self_exclusion;
    Alcotest.test_case "monitor: startId must match" `Quick test_monitor_rejects_wrong_start_id;
    Alcotest.test_case "monitor: view within proposal" `Quick test_monitor_rejects_superset_view;
    Alcotest.test_case "monitor: mode discipline" `Quick test_monitor_rejects_two_views_one_change;
  ]
