(* The paper's proof obligations, checked dynamically: every invariant
   of §6/§7 must hold after every step of randomized monitored runs
   covering reconfigurations, partitions, concurrent traffic, joins
   mid-change, and crashes. *)

open Vsgc_types
module System = Vsgc_harness.System

let run_checked ~seed scenario =
  let sys = System.create ~seed ~n:4 () in
  System.attach_invariants sys;
  scenario sys;
  System.settle sys

let scenario_stable sys =
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:4

let scenario_cascade sys =
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.broadcast sys ~senders:(Proc.Set.of_range 0 2) ~per_sender:2;
  ignore (System.reconfigure sys ~set:all)

let scenario_partition sys =
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:3;
  (* split into two concurrent disjoint views *)
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.broadcast sys ~senders:(Proc.Set.of_range 0 1) ~per_sender:2

let scenario_join_mid_change sys =
  let trio = Proc.Set.of_range 0 2 in
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:trio);
  System.broadcast sys ~senders:trio ~per_sender:2;
  (* membership changes its mind: start_change for the trio, then a
     fresh start_change adding the joiner, then the final view *)
  ignore (System.start_change sys ~set:trio);
  ignore (System.start_change sys ~set:all);
  ignore (System.deliver_view sys ~origin:0 ~set:all)

let scenario_crash sys =
  let all = Proc.Set.of_range 0 3 in
  ignore (System.reconfigure sys ~set:all);
  System.broadcast sys ~senders:all ~per_sender:2;
  (match System.run sys ~max_steps:200 with _ -> ());
  System.crash sys 3;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2))

let case name scenario =
  Alcotest.test_case name `Quick (fun () ->
      List.iter (fun seed -> run_checked ~seed scenario) [ 1; 7; 23; 91 ])

let suite =
  [
    case "stable run upholds invariants" scenario_stable;
    case "cascaded reconfigurations uphold invariants" scenario_cascade;
    case "partition upholds invariants" scenario_partition;
    case "join mid-change upholds invariants" scenario_join_mid_change;
    case "crash upholds invariants" scenario_crash;
  ]
