(* The headline theorem of the reproduction, as a test (bench E1's
   assertion form): the paper's algorithm completes a view change in
   ONE communication round beyond the membership's; the pre-agreement
   baseline needs TWO. Checked across group sizes and feature
   configurations. *)

open Vsgc_types
module System = Vsgc_harness.System
module Sync_runner = Vsgc_ioa.Sync_runner

let measure build ~n =
  let sys = build ~n in
  let exec = System.exec sys in
  let wait pred =
    ignore (Sync_runner.local_quiesce exec);
    let rec go r =
      if pred () || r > 30 then r
      else begin
        ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
        go (r + 1)
      end
    in
    go 0
  in
  let all = Proc.Set.of_range 0 (n - 1) in
  let v0 = System.reconfigure sys ~set:all in
  ignore (wait (fun () -> System.all_in_view sys v0));
  let target = Proc.Set.of_range 0 (n - 2) in
  ignore (System.start_change sys ~set:target);
  ignore (Sync_runner.local_quiesce exec);
  (* the membership round; the paper's algorithm synchronizes within it *)
  ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
  let v = System.deliver_view sys ~set:target in
  1 + wait (fun () -> System.all_in_view sys v)

let gcs ~n = System.create ~seed:141 ~n ()
let gcs_compact ~n = System.create ~seed:141 ~compact_sync:true ~n ()
let gcs_gc ~n = System.create ~seed:141 ~gc:true ~n ()

let baseline ~n =
  System.create ~seed:141 ~n ~endpoint_builder:(fun p -> fst (Vsgc_baseline.component p)) ()

let test_one_round () =
  List.iter
    (fun n ->
      Alcotest.(check int) (Fmt.str "gcs n=%d: one round" n) 1 (measure gcs ~n))
    [ 3; 5; 9 ]

let test_one_round_with_options () =
  Alcotest.(check int) "compact sync: still one round" 1 (measure gcs_compact ~n:5);
  Alcotest.(check int) "gc: still one round" 1 (measure gcs_gc ~n:5)

let test_baseline_two_rounds () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Fmt.str "baseline n=%d: two rounds" n)
        2 (measure baseline ~n))
    [ 3; 5; 9 ]

let test_hierarchy_three_rounds () =
  (* §9 mode deliberately trades rounds for messages *)
  Alcotest.(check int) "hierarchy: three rounds" 3
    (measure (fun ~n -> System.create ~seed:141 ~hierarchy:2 ~n ()) ~n:6)

let suite =
  [
    Alcotest.test_case "gcs completes in one round" `Quick test_one_round;
    Alcotest.test_case "optimizations keep one round" `Quick test_one_round_with_options;
    Alcotest.test_case "baseline needs two rounds" `Quick test_baseline_two_rounds;
    Alcotest.test_case "hierarchy costs three rounds" `Quick test_hierarchy_three_rounds;
  ]
