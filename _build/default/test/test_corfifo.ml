(* Unit tests for the CO_RFIFO component (Figure 3) and its spec
   monitor: FIFO order, loss rules, liveness gating, crash effects. *)

open Vsgc_types
module C = Vsgc_corfifo

let msg s = Msg.Wire.App (Msg.App_msg.make s)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let apply_all st actions = List.fold_left C.apply st actions

let test_fifo_order () =
  let st =
    apply_all C.initial
      [
        Action.Rf_send (0, Proc.Set.of_list [ 1; 2 ], msg "a");
        Action.Rf_send (0, Proc.Set.singleton 1, msg "b");
      ]
  in
  check_int "chan 0->1 holds two" 2 (C.channel_length st 0 1);
  check_int "chan 0->2 holds one" 1 (C.channel_length st 0 2);
  (* only channel heads are deliverable, and only to live targets *)
  let st = C.apply st (Action.Rf_live (0, Proc.Set.of_list [ 0; 1; 2 ])) in
  let deliveries =
    List.filter_map
      (function Action.Rf_deliver (p, q, m) -> Some (p, q, m) | _ -> None)
      (C.outputs st)
  in
  check "head of 0->1 is a" true
    (List.exists (fun (p, q, m) -> p = 0 && q = 1 && Msg.Wire.equal m (msg "a")) deliveries);
  check "b is not deliverable yet" false
    (List.exists (fun (_, _, m) -> Msg.Wire.equal m (msg "b")) deliveries);
  let st = C.apply st (Action.Rf_deliver (0, 1, msg "a")) in
  check_int "after deliver, one left" 1 (C.channel_length st 0 1)

let test_deliver_wrong_head_rejected () =
  let st = C.apply C.initial (Action.Rf_send (0, Proc.Set.singleton 1, msg "a")) in
  check "delivering non-head raises" true
    (try
       ignore (C.apply st (Action.Rf_deliver (0, 1, msg "b")));
       false
     with Invalid_argument _ -> true)

let test_live_gating () =
  let st = C.apply C.initial (Action.Rf_send (0, Proc.Set.singleton 1, msg "a")) in
  (* default live_set[0] = {0}: no delivery task toward 1 *)
  check "no delivery to non-live target" true
    (not
       (List.exists
          (function Action.Rf_deliver _ -> true | _ -> false)
          (C.outputs st)));
  let st = C.apply st (Action.Rf_live (0, Proc.Set.of_list [ 0; 1 ])) in
  check "delivery enabled once live" true
    (List.exists (function Action.Rf_deliver _ -> true | _ -> false) (C.outputs st))

let test_lose_only_unreliable () =
  let st =
    apply_all C.initial
      [
        Action.Rf_send (0, Proc.Set.singleton 1, msg "a");
        Action.Rf_send (0, Proc.Set.singleton 1, msg "b");
        Action.Rf_reliable (0, Proc.Set.of_list [ 0; 1 ]);
      ]
  in
  check "no lose toward reliable peer" true
    (not (List.exists (function Action.Rf_lose _ -> true | _ -> false) (C.outputs st)));
  let st = C.apply st (Action.Rf_reliable (0, Proc.Set.singleton 0)) in
  check "lose enabled toward unreliable peer" true
    (List.exists (function Action.Rf_lose (0, 1) -> true | _ -> false) (C.outputs st));
  let st = C.apply st (Action.Rf_lose (0, 1)) in
  check_int "lose drops the tail" 1 (C.channel_length st 0 1);
  Alcotest.(check (list string))
    "head survives" [ "a" ]
    (List.filter_map
       (function Msg.Wire.App m -> Some (Msg.App_msg.payload m) | _ -> None)
       (C.channel_contents st 0 1))

let test_membership_link_updates_live () =
  (* Figure 8: Mb_start_change and Mb_view drive live_p *)
  let v =
    View.make
      ~id:(View.Id.make ~num:1 ~origin:0)
      ~set:(Proc.Set.of_list [ 0; 1 ])
      ~start_ids:Proc.Map.(empty |> add 0 1 |> add 1 1)
  in
  let st = C.apply C.initial (Action.Mb_start_change (0, 1, Proc.Set.of_list [ 0; 1; 2 ])) in
  check "start_change sets live" true
    (Proc.Set.equal (C.live_set st 0) (Proc.Set.of_list [ 0; 1; 2 ]));
  let st = C.apply st (Action.Mb_view (0, v)) in
  check "view narrows live" true (Proc.Set.equal (C.live_set st 0) (Proc.Set.of_list [ 0; 1 ]))

let test_crash_clears_sets () =
  let st =
    apply_all C.initial
      [
        Action.Rf_reliable (0, Proc.Set.of_list [ 0; 1 ]);
        Action.Rf_live (0, Proc.Set.of_list [ 0; 1 ]);
        Action.Crash 0;
      ]
  in
  check "reliable emptied" true (Proc.Set.is_empty (C.reliable_set st 0));
  check "live emptied" true (Proc.Set.is_empty (C.live_set st 0))

(* -- The spec monitor must reject bad transports ------------------------- *)

let feed monitor actions = List.iter monitor.Vsgc_ioa.Monitor.on_action actions

let expect_violation actions =
  let m = Vsgc_spec.Co_rfifo_spec.monitor () in
  try
    feed m actions;
    false
  with Vsgc_ioa.Monitor.Violation _ -> true

let test_monitor_catches_reorder () =
  check "out-of-order delivery rejected" true
    (expect_violation
       [
         Action.Rf_send (0, Proc.Set.singleton 1, msg "a");
         Action.Rf_send (0, Proc.Set.singleton 1, msg "b");
         Action.Rf_deliver (0, 1, msg "b");
       ])

let test_monitor_catches_fabrication () =
  check "delivery from empty channel rejected" true
    (expect_violation [ Action.Rf_deliver (0, 1, msg "ghost") ])

let test_monitor_catches_bad_lose () =
  check "loss toward reliable peer rejected" true
    (expect_violation
       [
         Action.Rf_reliable (0, Proc.Set.of_list [ 0; 1 ]);
         Action.Rf_send (0, Proc.Set.singleton 1, msg "a");
         Action.Rf_lose (0, 1);
       ])

let test_monitor_accepts_implementation () =
  (* drive the executable CO_RFIFO randomly and feed its trace to the
     monitor: the implementation must satisfy its own spec *)
  let rng = Vsgc_ioa.Rng.make 99 in
  let m = Vsgc_spec.Co_rfifo_spec.monitor () in
  let st = ref C.initial in
  let do_action a =
    st := C.apply !st a;
    m.Vsgc_ioa.Monitor.on_action a
  in
  do_action (Action.Rf_live (0, Proc.Set.of_list [ 0; 1; 2 ]));
  do_action (Action.Rf_live (1, Proc.Set.of_list [ 0; 1; 2 ]));
  for i = 1 to 200 do
    (match Vsgc_ioa.Rng.int rng 3 with
    | 0 ->
        do_action
          (Action.Rf_send
             (Vsgc_ioa.Rng.int rng 2, Proc.Set.singleton (Vsgc_ioa.Rng.int rng 3), msg (string_of_int i)))
    | 1 ->
        do_action (Action.Rf_reliable (Vsgc_ioa.Rng.int rng 2, Proc.Set.of_range 0 (Vsgc_ioa.Rng.int rng 2)))
    | _ -> ());
    (* drain one enabled output if any *)
    match C.outputs !st with a :: _ -> do_action a | [] -> ()
  done;
  check "implementation satisfies spec" true true

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "wrong head rejected" `Quick test_deliver_wrong_head_rejected;
    Alcotest.test_case "live gating" `Quick test_live_gating;
    Alcotest.test_case "loss only to unreliable" `Quick test_lose_only_unreliable;
    Alcotest.test_case "membership link drives live" `Quick test_membership_link_updates_live;
    Alcotest.test_case "crash clears sets" `Quick test_crash_clears_sets;
    Alcotest.test_case "monitor rejects reorder" `Quick test_monitor_catches_reorder;
    Alcotest.test_case "monitor rejects fabrication" `Quick test_monitor_catches_fabrication;
    Alcotest.test_case "monitor rejects bad loss" `Quick test_monitor_catches_bad_lose;
    Alcotest.test_case "implementation satisfies own spec" `Quick test_monitor_accepts_implementation;
  ]
