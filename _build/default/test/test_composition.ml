(* Composition torture tests: the optional features (garbage
   collection, compact markers, the two-tier hierarchy, min-copies
   forwarding) and the application layers compose — everything on at
   once, under all monitors. *)

open Vsgc_types
module System = Vsgc_harness.System
module Replica = Vsgc_replication.Replica
module Tord = Vsgc_totalorder.Tord_client

let everything_on ~seed ~n ~client_builder =
  System.create ~seed ~gc:true ~compact_sync:true ~hierarchy:2
    ~strategy:Vsgc_core.Forwarding.Min_copies ?client_builder ~n ()

let test_everything_on_gcs () =
  let sys = everything_on ~seed:121 ~n:6 ~client_builder:None in
  let all = Proc.Set.of_range 0 5 in
  Vsgc_harness.Scenario.run sys (Vsgc_harness.Scenario.partition_heal ~n:6);
  System.broadcast sys ~senders:all ~per_sender:2;
  System.settle sys;
  Proc.Set.iter
    (fun p ->
      Proc.Set.iter
        (fun q ->
          Alcotest.(check bool)
            (Fmt.str "%a got %a's traffic" Proc.pp p Proc.pp q)
            true
            (List.length (Vsgc_core.Client.delivered_from !(System.client sys p) q) >= 2))
        all)
    all

let test_replication_over_hierarchy () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed:122 ~hierarchy:2 ~gc:true ~n:4
      ~client_builder:(fun p ->
        let c, r = Replica.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 1));
  ignore (System.reconfigure sys ~origin:1 ~set:(Proc.Set.of_range 2 3));
  System.settle sys;
  Replica.set (Hashtbl.find refs 0) ~key:"a" ~value:"1";
  Replica.set (Hashtbl.find refs 2) ~key:"b" ~value:"2";
  System.settle sys;
  ignore (System.reconfigure sys ~origin:0 ~set:(Proc.Set.of_range 0 3));
  System.settle sys;
  let s0 = Replica.state !(Hashtbl.find refs 0) in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "replica %d converged" p)
        true
        (Replica.Smap.equal String.equal s0 (Replica.state !(Hashtbl.find refs p))))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "both sides' writes merged" true
    (Replica.get !(Hashtbl.find refs 1) "a" = Some "1"
    && Replica.get !(Hashtbl.find refs 1) "b" = Some "2")

let test_total_order_with_compact_and_gc () =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed:123 ~compact_sync:true ~gc:true ~n:3
      ~client_builder:(fun p ->
        let c, r = Tord.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 2));
  System.settle sys;
  List.iter (fun p -> Tord.push (Hashtbl.find refs p) (Fmt.str "op%d" p)) [ 0; 1; 2 ];
  System.settle sys;
  ignore (System.reconfigure sys ~set:(Proc.Set.of_range 0 1));
  System.settle sys;
  let o0 = Tord.total_order !(Hashtbl.find refs 0) in
  let o1 = Tord.total_order !(Hashtbl.find refs 1) in
  Alcotest.(check bool) "orders agree" true (o0 = o1);
  Alcotest.(check int) "all ops ordered" 3 (List.length o0)

let test_everything_on_invariants () =
  let sys = everything_on ~seed:124 ~n:4 ~client_builder:None in
  System.attach_invariants ~every:5 sys;
  Vsgc_harness.Scenario.run sys (Vsgc_harness.Scenario.crash_recover ~n:4)

let suite =
  [
    Alcotest.test_case "everything on: partition & heal" `Quick test_everything_on_gcs;
    Alcotest.test_case "replication over the hierarchy" `Quick test_replication_over_hierarchy;
    Alcotest.test_case "total order with compact + gc" `Quick test_total_order_with_compact_and_gc;
    Alcotest.test_case "everything on: invariants through crash" `Quick
      test_everything_on_invariants;
  ]
