(* vsgc_demo — command-line driver for monitored scenario runs.

     dune exec bin/vsgc_demo.exe -- run --scenario partition --trace
     dune exec bin/vsgc_demo.exe -- rounds --n 8 --algo baseline
     dune exec bin/vsgc_demo.exe -- servers --clients 6 --servers 2

   Every run executes under all the safety monitors of §4 (and, with
   --invariants, the §6/§7 invariant checkers), so the CLI doubles as a
   quick conformance harness for the algorithms. *)

open Vsgc_types
open Cmdliner
module System = Vsgc_harness.System
module SS = Vsgc_harness.Server_system
module Sync_runner = Vsgc_ioa.Sync_runner

(* -- shared arguments ----------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let n_arg =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full action trace.")

let invariants_arg =
  Arg.(value & flag & info [ "invariants" ] ~doc:"Check the §6/§7 invariants after every step.")

let hierarchy_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hierarchy" ] ~docv:"G"
        ~doc:"Route synchronization through G leader groups (§9 two-tier mode).")

let compact_arg =
  Arg.(value & flag & info [ "compact" ] ~doc:"Use the §5.2.4 compact sync markers.")

let gc_arg =
  Arg.(value & flag & info [ "gc" ] ~doc:"Enable §5.1 buffer garbage collection.")

let print_trace sys =
  List.iteri (fun i a -> Fmt.pr "%5d  %a@." i Action.pp a)
    (Vsgc_ioa.Executor.trace (System.exec sys))

let summary sys procs =
  Proc.Set.iter
    (fun p ->
      let c = !(System.client sys p) in
      let last =
        match Vsgc_core.Client.last_view c with
        | Some (v, tset) -> Fmt.str "%a T=%a" View.Id.pp (View.id v) Proc.Set.pp tset
        | None -> "(none)"
      in
      Fmt.pr "%a: views=%d delivered=%d sent=%d last=%s@." Proc.pp p
        (List.length (Vsgc_core.Client.views c))
        (List.length (Vsgc_core.Client.delivered c))
        (List.length (Vsgc_core.Client.sent c))
        last)
    procs;
  Fmt.pr "metrics: %a@." Vsgc_ioa.Metrics.pp
    (Vsgc_ioa.Executor.metrics (System.exec sys))

(* -- run: named scenarios (the harness's declarative catalog) -------------- *)

let scenario_names = List.map fst (Vsgc_harness.Scenario.catalog ~n:4)

let scenario_arg =
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) scenario_names)) "stable"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:(Fmt.str "One of: %s." (String.concat ", " scenario_names)))

let run_cmd =
  let go seed n name trace invariants hierarchy compact gc =
    let sys = System.create ~seed ?hierarchy ~compact_sync:compact ~gc ~n () in
    if invariants then System.attach_invariants sys;
    let scenario = List.assoc name (Vsgc_harness.Scenario.catalog ~n) in
    Fmt.pr "running scenario %S with n=%d seed=%d (monitored)@.  steps: %a@." name n
      seed Vsgc_harness.Scenario.pp scenario;
    Vsgc_harness.Scenario.run sys scenario;
    System.settle sys;
    if trace then print_trace sys;
    summary sys (Proc.Set.of_range 0 (n - 1));
    Fmt.pr "all safety specifications and scenario checks satisfied.@."
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a named monitored scenario.")
    Term.(
      const go $ seed_arg $ n_arg $ scenario_arg $ trace_arg $ invariants_arg
      $ hierarchy_arg $ compact_arg $ gc_arg)

(* -- rounds: view-change latency ------------------------------------------- *)

let algo_arg =
  Arg.(
    value
    & opt (enum [ ("gcs", `Gcs); ("baseline", `Baseline) ]) `Gcs
    & info [ "algo" ] ~docv:"ALGO" ~doc:"gcs (the paper's algorithm) or baseline.")

let rounds_cmd =
  let go seed n algo =
    let sys =
      match algo with
      | `Gcs -> System.create ~seed ~n ()
      | `Baseline ->
          System.create ~seed ~n
            ~endpoint_builder:(fun p -> fst (Vsgc_baseline.component p))
            ()
    in
    let all = Proc.Set.of_range 0 (n - 1) in
    let v0 = System.reconfigure sys ~set:all in
    let exec = System.exec sys in
    let wait pred =
      ignore (Sync_runner.local_quiesce exec);
      let rec go r =
        if pred () || r > 50 then r
        else begin
          ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
          go (r + 1)
        end
      in
      go 0
    in
    ignore (wait (fun () -> System.all_in_view sys v0));
    let target = Proc.Set.of_range 0 (n - 2) in
    ignore (System.start_change sys ~set:target);
    ignore (Sync_runner.local_quiesce exec);
    ignore (Sync_runner.round exec ~make_budget:(System.round_budget sys));
    let v = System.deliver_view sys ~set:target in
    let extra = wait (fun () -> System.all_in_view sys v) in
    Fmt.pr "%s, n=%d: view change completed in %d communication round(s)@."
      (match algo with `Gcs -> "gcs" | `Baseline -> "baseline")
      n (1 + extra)
  in
  Cmd.v
    (Cmd.info "rounds" ~doc:"Measure view-change latency in communication rounds.")
    Term.(const go $ seed_arg $ n_arg $ algo_arg)

(* -- servers: the client-server stack ---------------------------------------- *)

let servers_cmd =
  let clients_arg =
    Arg.(value & opt int 6 & info [ "clients" ] ~docv:"N" ~doc:"Number of clients.")
  in
  let nsrv_arg =
    Arg.(value & opt int 2 & info [ "servers" ] ~docv:"S" ~doc:"Number of membership servers.")
  in
  let go seed n_clients n_servers trace =
    let ss = SS.create ~seed ~n_clients ~n_servers () in
    let sys = SS.sys ss in
    Fmt.pr "bootstrapping %d clients over %d membership server(s)...@." n_clients
      n_servers;
    SS.bootstrap ss;
    System.settle sys;
    let all = Proc.Set.of_range 0 (n_clients - 1) in
    System.broadcast sys ~senders:all ~per_sender:2;
    System.settle sys;
    Fmt.pr "client %a leaves...@." Proc.pp (n_clients - 1);
    SS.leave ss (n_clients - 1);
    System.settle sys;
    if trace then print_trace sys;
    summary sys all;
    Fmt.pr "all safety specifications satisfied.@."
  in
  Cmd.v
    (Cmd.info "servers" ~doc:"Exercise the full client-server membership stack.")
    Term.(const go $ seed_arg $ clients_arg $ nsrv_arg $ trace_arg)

let () =
  let doc = "virtually synchronous group multicast — scenario driver" in
  exit (Cmd.eval (Cmd.group (Cmd.info "vsgc_demo" ~doc) [ run_cmd; rounds_cmd; servers_cmd ]))
