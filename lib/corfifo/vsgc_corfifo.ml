(* CO_RFIFO: the connection-oriented reliable FIFO multicast service
   (paper §3.2, Figure 3), made executable.

   The automaton keeps a FIFO channel per ordered pair of end-points.
   [reliable_set] is client-controlled (via co_rfifo.reliable); for a
   target outside the sender's reliable set an arbitrary suffix of the
   channel may be lost (the lose action, an adversary move the scheduler
   only takes when a scenario gives it weight). [live_set] reflects the
   real network: deliveries happen only toward live targets, which is
   how partitions are modelled. Following Figure 8, the membership
   actions start_change_p and view_p are linked with live_p, so this
   component also accepts Mb_* actions and updates live_set from them.

   Crash handling (§8): crash_p empties reliable_set[p] and live_set[p],
   allowing in-transit messages from p to be dropped. *)

open Vsgc_types

module Pair_map = Map.Make (struct
  type t = Proc.t * Proc.t

  let compare (a, b) (c, d) =
    match Proc.compare a c with 0 -> Proc.compare b d | r -> r
end)

type state = {
  channels : Msg.Wire.t Fqueue.t Pair_map.t;
  reliable : Proc.Set.t Proc.Map.t;  (* default {p} *)
  live : Proc.Set.t Proc.Map.t;  (* default {p} *)
}

let initial = { channels = Pair_map.empty; reliable = Proc.Map.empty; live = Proc.Map.empty }

let channel st p q =
  match Pair_map.find_opt (p, q) st.channels with
  | Some c -> c
  | None -> Fqueue.empty

let set_channel st p q c =
  { st with
    channels =
      (if Fqueue.is_empty c then Pair_map.remove (p, q) st.channels
       else Pair_map.add (p, q) c st.channels) }

let reliable_set st p = Proc.Map.find_default ~default:(Proc.Set.singleton p) p st.reliable
let live_set st p = Proc.Map.find_default ~default:(Proc.Set.singleton p) p st.live

let channel_length st p q = Fqueue.length (channel st p q)

let channel_contents st p q = Fqueue.to_list (channel st p q)

(* All non-empty channels, with their occupancy — used by Sync_runner
   budgets and by tests. *)
let occupancy st =
  Pair_map.fold (fun (p, q) c acc -> ((p, q), Fqueue.length c) :: acc) st.channels []

let accepts (a : Action.t) =
  match a with
  | Action.Rf_send _ | Action.Rf_reliable _ | Action.Rf_live _ | Action.Crash _
  | Action.Mb_start_change _ | Action.Mb_view _ -> true
  | _ -> false

let outputs st =
  Pair_map.fold
    (fun (p, q) c acc ->
      match Fqueue.peek c with
      | None -> acc
      | Some m ->
          let acc =
            (* deliver_{p,q} fires only toward live targets: live_set
               reflects the real network (paper §3.2). *)
            if Proc.Set.mem q (live_set st p) then
              Action.Rf_deliver (p, q, m) :: acc
            else acc
          in
          (* lose(p,q) is enabled when q is outside p's reliable set;
             scenarios give it weight to exercise lossy behaviour. *)
          if not (Proc.Set.mem q (reliable_set st p)) then
            Action.Rf_lose (p, q) :: acc
          else acc)
    st.channels []

let apply st (a : Action.t) =
  match a with
  | Action.Rf_send (p, set, m) ->
      Proc.Set.fold (fun q st -> set_channel st p q (Fqueue.push (channel st p q) m)) set st
  | Action.Rf_deliver (p, q, m) -> (
      match Fqueue.pop (channel st p q) with
      | Some (m', rest) when Msg.Wire.equal m m' -> set_channel st p q rest
      | _ -> invalid_arg "Co_rfifo: deliver of a message that is not the channel head")
  | Action.Rf_lose (p, q) -> (
      match Fqueue.drop_last (channel st p q) with
      | Some rest -> set_channel st p q rest
      | None -> invalid_arg "Co_rfifo: lose on empty channel")
  | Action.Rf_reliable (p, set) -> { st with reliable = Proc.Map.add p set st.reliable }
  | Action.Rf_live (p, set) -> { st with live = Proc.Map.add p set st.live }
  | Action.Mb_start_change (p, _, set) -> { st with live = Proc.Map.add p set st.live }
  | Action.Mb_view (p, v) -> { st with live = Proc.Map.add p (View.set v) st.live }
  | Action.Crash p ->
      (* connection-oriented: the crashed process's incoming queues die
         with it; its outgoing queues become losable (empty reliable
         set) as in §8 *)
      { channels = Pair_map.filter (fun (_, q) _ -> not (Proc.equal q p)) st.channels;
        reliable = Proc.Map.add p Proc.Set.empty st.reliable;
        live = Proc.Map.add p Proc.Set.empty st.live }
  | _ -> st

(* CO_RFIFO's share of each action. Delivery and loss are gated by the
   sender's live/reliable sets, so they read Net_ctl as well as the
   channel they pop; the membership actions write Net_ctl because
   Figure 8 links them with live_p; crash wipes every channel into the
   crashed process plus its Net_ctl entry. *)
let footprint (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.Rf_send (p, set, _) ->
      make ~writes:(Proc.Set.fold (fun q acc -> Channel (p, q) :: acc) set []) ()
  | Action.Rf_deliver (p, q, _) | Action.Rf_lose (p, q) ->
      make ~reads:[ Net_ctl p; Channel (p, q) ] ~writes:[ Channel (p, q) ] ()
  | Action.Rf_reliable (p, _) | Action.Rf_live (p, _)
  | Action.Mb_start_change (p, _, _) | Action.Mb_view (p, _) ->
      make ~writes:[ Net_ctl p ] ()
  | Action.Crash p -> make ~writes:[ Channels_to p; Net_ctl p ] ()
  | _ -> empty

let emits (a : Action.t) =
  match a with Action.Rf_deliver _ | Action.Rf_lose _ -> true | _ -> false

(* Shadow slices for the effect sanitizer: one per non-empty channel,
   one Net_ctl slice per process with an explicit reliable/live entry.
   Slices digest canonical projections (queue contents as a list, sets
   as sorted elements), not the persistent-map internals, so the same
   logical value always digests the same — the race replay compares
   digests across different operation orders. *)
let observe st =
  let open Vsgc_ioa.Footprint in
  let digest = Vsgc_ioa.Component.digest in
  let slices =
    Pair_map.fold
      (fun (p, q) c acc -> (Channel (p, q), digest (Fqueue.to_list c)) :: acc)
      st.channels []
  in
  let ctl_procs =
    Proc.Map.fold
      (fun p _ acc -> Proc.Set.add p acc)
      st.reliable
      (Proc.Map.fold (fun p _ acc -> Proc.Set.add p acc) st.live Proc.Set.empty)
  in
  Proc.Set.fold
    (fun p acc ->
      ( Net_ctl p,
        digest
          ( Proc.Set.elements (reliable_set st p),
            Proc.Set.elements (live_set st p) ) )
      :: acc)
    ctl_procs slices

let def : state Vsgc_ioa.Component.def =
  {
    name = "co_rfifo";
    init = initial;
    accepts;
    outputs;
    apply;
    footprint;
    emits;
    observe;
  }

(* Build the component together with a typed handle on its state, for
   invariant checkers and Sync_runner budgets. *)
let component () =
  let r = ref initial in
  (Vsgc_ioa.Component.pack_with_ref def r, r)

(* A Sync_runner budget that allows exactly the messages currently in
   transit (one round's worth of deliveries). *)
let round_budget (r : state ref) () : Vsgc_ioa.Sync_runner.budget =
  let remaining = Hashtbl.create 16 in
  Pair_map.iter (fun pq c -> Hashtbl.replace remaining pq (Fqueue.length c)) !r.channels;
  let get pq = match Hashtbl.find_opt remaining pq with Some n -> n | None -> 0 in
  {
    allow = (fun a ->
      match a with Action.Rf_deliver (p, q, _) -> get (p, q) > 0 | _ -> false);
    consume = (fun a ->
      match a with
      | Action.Rf_deliver (p, q, _) -> Hashtbl.replace remaining (p, q) (get (p, q) - 1)
      | _ -> ());
  }
