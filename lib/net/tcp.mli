(** Real-socket transport: non-blocking TCP under a select loop.

    Topology is configured, not discovered: a node listens on one
    address and dials the peers it is told to (each deployment lists
    every edge exactly once). Both sides ship a [Hello] as their
    first frame; a link is [Up] when the peer's [Hello] arrives.

    A malformed frame or a peer crash costs the link, never the
    process: the connection is dropped, [Down]/[Malformed] reported,
    and every configured peer is redialed forever with exponential
    backoff. *)

open Vsgc_wire

type addr = string * int
(** Host (dotted quad) and port. *)

type config = {
  me : Node_id.t;
  listen : addr option;
  peers : (Node_id.t * addr) list;  (** peers this node dials *)
  poll_timeout : float;  (** seconds {!Transport.recv} may block *)
  backoff_min : float;
  backoff_max : float;
}

val config :
  ?listen:addr option ->
  ?peers:(Node_id.t * addr) list ->
  ?poll_timeout:float ->
  ?backoff_min:float ->
  ?backoff_max:float ->
  Node_id.t ->
  config
(** Defaults: no listener, no peers, 50 ms poll, backoff 50 ms - 2 s. *)

val create : config -> Transport.t
(** Binds the listener (if any) and arms the dials; actual connecting
    happens inside {!Transport.recv} polls. [close] makes a bounded
    best-effort flush of queued output before tearing links down.
    @raise Unix.Unix_error if binding the listen address fails. *)
