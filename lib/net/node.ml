(* A deployable vsgc node: one OS-process-worth of the system.

   A node hosts the UNCHANGED automata — a GCS end-point plus its
   scripted client, or a membership server — inside a private
   [Executor], bridged to a transport by an [Io_pump]:

     transport events --[handle]--> environment inputs
     [step]: pump to quiescence, captured outputs --> packets out

   The translation is mechanical and total:

   client p            Rf packet            -> Rf_deliver(q, p, wire)
                       Start_change packet  -> Mb_start_change
                       View packet          -> Mb_view
                       Up(its server)       -> emits a Join packet
                       Rf_send(p, set, w)   -> one Rf packet per target

   server s            Join/Leave packet    -> Client_join/Client_leave
                       Srv packet           -> Srv_deliver
                       Up/Down(server)      -> Fd_change(s, connected+s)
                       Down(client p)       -> Client_leave(p, s)
                       Srv_send(s, s', m)   -> one Srv packet to s'
                       Mb_start_change/view -> Start_change/View packet

   Malformed transport events bump a counter and nothing else: a bad
   frame can cost a link (the transport's business), never the node. *)

open Vsgc_types
open Vsgc_wire

type role =
  | Client_node of { proc : Proc.t; attach : Server.t }
  | Sym_client_node of { proc : Proc.t; attach : Server.t }
  | Server_node of { server : Server.t }

type kind =
  | Client_k of {
      proc : Proc.t;
      attach : Server.t;
      client : Vsgc_core.Client.t ref;
      endpoint : Vsgc_core.Endpoint.t ref;
    }
  | Sym_k of {
      proc : Proc.t;
      attach : Server.t;
      client : Vsgc_totalorder.Tord_sym_client.t ref;
      endpoint : Vsgc_core.Endpoint.t ref;
    }
  | Server_k of {
      server : Server.t;
      state : Vsgc_mbrshp.Servers.t ref;
      mutable connected : Server.Set.t;  (* live links to peer servers *)
      mutable attached : Proc.Set.t;  (* clients that sent Join *)
    }


type t = {
  id : Node_id.t;
  exec : Vsgc_ioa.Executor.t;
  pump : Vsgc_ioa.Io_pump.t;
  outq : (Node_id.t * Packet.t) Queue.t;
  mutable malformed : int;
  kind : kind;
}

let create ?(seed = 0) ?(layer = `Full) role =
  match role with
  | Client_node { proc; attach } ->
      let ep_packed, endpoint = Vsgc_core.Endpoint.component ~layer proc in
      let cl_packed, client = Vsgc_core.Client.component proc in
      let exec =
        Vsgc_ioa.Executor.create ~seed ~keep_trace:true [ ep_packed; cl_packed ]
      in
      let capture = function
        | Action.Rf_send (q, _, _) -> Proc.equal q proc
        | _ -> false
      in
      {
        id = Node_id.Client proc;
        exec;
        pump = Vsgc_ioa.Io_pump.create ~capture exec;
        outq = Queue.create ();
        malformed = 0;
        kind = Client_k { proc; attach; client; endpoint };
      }
  | Sym_client_node { proc; attach } ->
      let ep_packed, endpoint = Vsgc_core.Endpoint.component ~layer proc in
      let cl_packed, client =
        Vsgc_totalorder.Tord_sym_client.component proc
      in
      let exec =
        Vsgc_ioa.Executor.create ~seed ~keep_trace:true [ ep_packed; cl_packed ]
      in
      let capture = function
        | Action.Rf_send (q, _, _) -> Proc.equal q proc
        | _ -> false
      in
      {
        id = Node_id.Client proc;
        exec;
        pump = Vsgc_ioa.Io_pump.create ~capture exec;
        outq = Queue.create ();
        malformed = 0;
        kind = Sym_k { proc; attach; client; endpoint };
      }
  | Server_node { server } ->
      let packed, state =
        Vsgc_mbrshp.Servers.component
          ~servers:(Server.Set.singleton server)
          server
      in
      let exec = Vsgc_ioa.Executor.create ~seed ~keep_trace:true [ packed ] in
      let capture = function
        | Action.Srv_send (s, _, _) -> Server.equal s server
        | Action.Mb_start_change _ | Action.Mb_view _ -> true
        | _ -> false
      in
      {
        id = Node_id.Server server;
        exec;
        pump = Vsgc_ioa.Io_pump.create ~capture exec;
        outq = Queue.create ();
        malformed = 0;
        kind =
          Server_k
            {
              server;
              state;
              connected = Server.Set.empty;
              attached = Proc.Set.empty;
            };
      }

let id t = t.id
let executor t = t.exec
let malformed t = t.malformed

let send_pkt t dst pkt = Queue.add (dst, pkt) t.outq
let enqueue t a = Vsgc_ioa.Io_pump.enqueue t.pump a

let handle t ev =
  match t.kind with
  (* -- client side (either client kind: same wire translation) -- *)
  | Client_k { proc; attach; _ } | Sym_k { proc; attach; _ } -> (
      match ev with
      | Transport.Malformed _ -> t.malformed <- t.malformed + 1
      | Transport.Up (Node_id.Server s) when Server.equal s attach ->
          send_pkt t (Node_id.Server s) (Packet.Join proc)
      | Transport.Up _ | Transport.Down _ -> ()
      | Transport.Received (_, Packet.Rf { from; wire }) ->
          enqueue t (Action.Rf_deliver (from, proc, wire))
      | Transport.Received (_, Packet.Start_change { target; cid; set })
        when Proc.equal target proc ->
          enqueue t (Action.Mb_start_change (proc, cid, set))
      | Transport.Received (_, Packet.View { target; view })
        when Proc.equal target proc ->
          enqueue t (Action.Mb_view (proc, view))
      | Transport.Received _ -> ())
  (* -- server side -- *)
  | Server_k sk -> (
      match ev with
      | Transport.Malformed _ -> t.malformed <- t.malformed + 1
      | Transport.Up (Node_id.Server s') ->
          sk.connected <- Server.Set.add s' sk.connected;
          enqueue t
            (Action.Fd_change (sk.server, Server.Set.add sk.server sk.connected))
      | Transport.Down (Node_id.Server s') ->
          sk.connected <- Server.Set.remove s' sk.connected;
          enqueue t
            (Action.Fd_change (sk.server, Server.Set.add sk.server sk.connected))
      | Transport.Up (Node_id.Client _ | Node_id.Kv_client _) -> ()
      | Transport.Down (Node_id.Client p) ->
          if Proc.Set.mem p sk.attached then begin
            sk.attached <- Proc.Set.remove p sk.attached;
            enqueue t (Action.Client_leave (p, sk.server))
          end
      | Transport.Down (Node_id.Kv_client _) -> ()
      | Transport.Received (_, Packet.Join p) ->
          sk.attached <- Proc.Set.add p sk.attached;
          enqueue t (Action.Client_join (p, sk.server))
      | Transport.Received (_, Packet.Leave p) ->
          if Proc.Set.mem p sk.attached then begin
            sk.attached <- Proc.Set.remove p sk.attached;
            enqueue t (Action.Client_leave (p, sk.server))
          end
      | Transport.Received (_, Packet.Srv { from; msg }) ->
          enqueue t (Action.Srv_deliver (from, sk.server, msg))
      | Transport.Received _ -> ())

(* Captured executor outputs become packets. *)
let route t a =
  match (t.kind, a) with
  | ( (Client_k { proc; _ } | Sym_k { proc; _ }),
      Action.Rf_send (p, targets, wire) )
    when Proc.equal p proc ->
      Proc.Set.iter
        (fun q -> send_pkt t (Node_id.Client q) (Packet.Rf { from = p; wire }))
        targets
  | Server_k sk, Action.Srv_send (from, dst, msg) when Server.equal from sk.server
    ->
      send_pkt t (Node_id.Server dst) (Packet.Srv { from; msg })
  | Server_k _, Action.Mb_start_change (p, cid, set) ->
      send_pkt t (Node_id.Client p) (Packet.Start_change { target = p; cid; set })
  | Server_k _, Action.Mb_view (p, view) ->
      send_pkt t (Node_id.Client p) (Packet.View { target = p; view })
  | _ -> ()

let step ?max_steps t =
  Vsgc_ioa.Io_pump.pump ?max_steps t.pump;
  List.iter (route t) (Vsgc_ioa.Io_pump.drain t.pump);
  let pkts = List.of_seq (Queue.to_seq t.outq) in
  Queue.clear t.outq;
  pkts

let inject = enqueue

let push t payload =
  match t.kind with
  | Client_k c -> Vsgc_core.Client.push c.client payload
  | Sym_k c -> Vsgc_totalorder.Tord_sym_client.push c.client payload
  | Server_k _ -> invalid_arg "Node.push: not a client node"

let client_state t =
  match t.kind with
  | Client_k c -> !(c.client)
  | Sym_k _ -> invalid_arg "Node.client_state: a symmetric-arm client node"
  | Server_k _ -> invalid_arg "Node.client_state: not a client node"

let sym_state t =
  match t.kind with
  | Sym_k c -> !(c.client)
  | Client_k _ | Server_k _ ->
      invalid_arg "Node.sym_state: not a symmetric-arm client node"

let endpoint_state t =
  match t.kind with
  | Client_k { endpoint; _ } | Sym_k { endpoint; _ } -> !endpoint
  | Server_k _ -> invalid_arg "Node.endpoint_state: not a client node"

let crashed t =
  match t.kind with
  | Client_k { endpoint; _ } | Sym_k { endpoint; _ } ->
      Vsgc_core.Endpoint.crashed !endpoint
  | Server_k _ -> false

(* -- Self-stabilization (DESIGN.md §13) --------------------------------- *)

(* The harness writes the corrupted state straight into the component
   ref, like [Client.push] does for payloads: the executor re-syncs
   cached enabled-sets from the refs at its next public entry, so the
   out-of-band write is safe under both scheduler modes. *)
let corrupt t ~salt field =
  match t.kind with
  | Client_k { endpoint; _ } | Sym_k { endpoint; _ } ->
      endpoint := Vsgc_core.Endpoint.corrupt ~salt field !endpoint
  | Server_k _ -> invalid_arg "Node.corrupt: not a client node"

let self_check t =
  match t.kind with
  | Client_k { endpoint; _ } | Sym_k { endpoint; _ } ->
      Vsgc_core.Endpoint.self_check !endpoint
  | Server_k sk -> Vsgc_mbrshp.Servers.self_check !(sk.state)

let steps t = Vsgc_ioa.Executor.trace_length t.exec

let delivered t =
  match t.kind with
  | Client_k c -> Vsgc_core.Client.delivered !(c.client)
  | Sym_k c ->
      (* The symmetric arm's deliveries are its total order. *)
      List.map
        (fun (sender, payload) -> (sender, Msg.App_msg.make payload))
        (Vsgc_totalorder.Tord_sym_client.total_order !(c.client))
  | Server_k _ -> invalid_arg "Node.delivered: not a client node"

let views t =
  match t.kind with
  | Client_k c -> Vsgc_core.Client.views !(c.client)
  | Sym_k c -> Vsgc_totalorder.Tord_sym_client.views !(c.client)
  | Server_k _ -> invalid_arg "Node.views: not a client node"

let last_view t =
  match t.kind with
  | Client_k c -> Vsgc_core.Client.last_view !(c.client)
  | Sym_k c -> Vsgc_totalorder.Tord_sym_client.last_view !(c.client)
  | Server_k _ -> invalid_arg "Node.last_view: not a client node"

let current_view t =
  match t.kind with
  | Client_k { endpoint; _ } | Sym_k { endpoint; _ } ->
      Vsgc_core.Endpoint.current_view !endpoint
  | Server_k _ -> invalid_arg "Node.current_view: not a client node"

let attached t =
  match t.kind with
  | Server_k sk -> sk.attached
  | Client_k _ | Sym_k _ -> invalid_arg "Node.attached: not a server node"

let trace t = Vsgc_ioa.Executor.trace t.exec

let quiescent t =
  Vsgc_ioa.Io_pump.quiescent t.pump && Queue.is_empty t.outq

let fingerprint t = Vsgc_ioa.Trace_stats.fingerprint (trace t)
