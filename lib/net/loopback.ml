(* Deterministic in-process transport.

   All endpoints attach to one [hub]; [tick] advances a virtual clock
   and moves due packets into receiver mailboxes. Every packet is
   FRAMED on send and DECODED on delivery — the loopback path
   exercises exactly the bytes the TCP path ships, so codec bugs
   surface under the deterministic harness, not just on sockets.

   Fault knobs (all driven by the hub's seeded Rng, so a (seed, knobs)
   pair fully determines behaviour):
   - [delay]    each packet is due 1 + uniform(0..delay) ticks out
   - [drop]     probability a packet vanishes in flight
   - [reorder]  probability a packet may overtake earlier ones on the
                same link (otherwise per-link FIFO is enforced, like a
                TCP stream) *)

open Vsgc_wire

type knobs = { delay : int; drop : float; reorder : float }

let default_knobs = { delay = 0; drop = 0.0; reorder = 0.0 }

type flight = {
  due : int;
  seq : int;  (* tie-break: FIFO among same-tick packets *)
  src : Node_id.t;
  dst : Node_id.t;
  frame : bytes;
}

type endpoint_state = {
  id : Node_id.t;
  mailbox : Transport.event Queue.t;
  mutable closed : bool;
}

type hub = {
  rng : Vsgc_ioa.Rng.t;
  knobs : knobs;
  mutable now : int;
  mutable seq : int;
  mutable in_flight : flight list;  (* unordered; selected by (due, seq) *)
  links : (Node_id.t * Node_id.t, unit) Hashtbl.t;  (* symmetric pairs *)
  fifo_floor : (Node_id.t * Node_id.t, int) Hashtbl.t;
      (* per directed link: latest due already assigned *)
  mutable endpoints : endpoint_state list;  (* sorted by id *)
  mutable dropped : int;
  mutable delivered : int;
}

let hub ?(seed = 0) ?(knobs = default_knobs) () =
  {
    rng = Vsgc_ioa.Rng.make seed;
    knobs;
    now = 0;
    seq = 0;
    in_flight = [];
    links = Hashtbl.create 16;
    fifo_floor = Hashtbl.create 16;
    endpoints = [];
    dropped = 0;
    delivered = 0;
  }

let dropped h = h.dropped
let delivered h = h.delivered
let now h = h.now

let find_endpoint h id =
  List.find_opt (fun e -> Node_id.equal e.id id) h.endpoints

let linked h a b = Hashtbl.mem h.links (a, b) || Hashtbl.mem h.links (b, a)

let push h id ev =
  match find_endpoint h id with
  | Some e when not e.closed -> Queue.add ev e.mailbox
  | Some _ | None -> ()

let unlink h a b =
  Hashtbl.remove h.links (a, b);
  Hashtbl.remove h.links (b, a)

let attach h id =
  (match find_endpoint h id with
  | Some _ -> invalid_arg "Loopback.attach: id already attached"
  | None -> ());
  let ep = { id; mailbox = Queue.create (); closed = false } in
  h.endpoints <-
    List.sort
      (fun a b -> Node_id.compare a.id b.id)
      (ep :: h.endpoints);
  let connect peer =
    if ep.closed then ()
    else
      match find_endpoint h peer with
      | Some other when not other.closed ->
          if not (linked h id peer) then begin
            Hashtbl.replace h.links (id, peer) ();
            push h id (Transport.Up peer);
            push h peer (Transport.Up id)
          end
      | Some _ | None -> ()
  in
  let send peer pkt =
    if ep.closed || not (linked h id peer) then ()
    else if h.knobs.drop > 0.0 && Vsgc_ioa.Rng.float h.rng < h.knobs.drop then
      h.dropped <- h.dropped + 1
    else begin
      let jitter =
        if h.knobs.delay > 0 then Vsgc_ioa.Rng.int h.rng (h.knobs.delay + 1)
        else 0
      in
      let base = h.now + 1 + jitter in
      let floor =
        Option.value ~default:0 (Hashtbl.find_opt h.fifo_floor (id, peer))
      in
      let overtake =
        h.knobs.reorder > 0.0 && Vsgc_ioa.Rng.float h.rng < h.knobs.reorder
      in
      let due = if overtake then base else Stdlib.max base floor in
      if due > floor then Hashtbl.replace h.fifo_floor (id, peer) due;
      h.seq <- h.seq + 1;
      h.in_flight <-
        { due; seq = h.seq; src = id; dst = peer; frame = Frame.encode pkt }
        :: h.in_flight
    end
  in
  let recv () =
    let evs = List.of_seq (Queue.to_seq ep.mailbox) in
    Queue.clear ep.mailbox;
    evs
  in
  let close () =
    if not ep.closed then begin
      ep.closed <- true;
      List.iter
        (fun other ->
          if (not (Node_id.equal other.id id)) && linked h id other.id then begin
            unlink h id other.id;
            push h other.id (Transport.Down id)
          end)
        h.endpoints;
      Queue.clear ep.mailbox
    end
  in
  { Transport.me = id; connect; send; recv; close }

(* Advance the virtual clock one tick and deliver everything due, in
   (due, seq) order — the only order, so runs are reproducible. *)
let tick h =
  h.now <- h.now + 1;
  let due, rest = List.partition (fun f -> f.due <= h.now) h.in_flight in
  h.in_flight <- rest;
  let due = List.sort (fun a b -> compare (a.due, a.seq) (b.due, b.seq)) due in
  List.iter
    (fun f ->
      if linked h f.src f.dst then begin
        (match Frame.decode f.frame with
        | Ok pkt ->
            h.delivered <- h.delivered + 1;
            push h f.dst (Transport.Received (f.src, pkt))
        | Error error ->
            push h f.dst (Transport.Malformed { peer = Some f.src; error }));
        ()
      end
      else h.dropped <- h.dropped + 1)
    due

(* Nothing in flight and every mailbox drained. Mailboxes only empty
   when their endpoint [recv]s, so idleness is checked by the node
   loop after a recv pass, not busy-waited on here. *)
let idle h =
  h.in_flight = []
  && List.for_all (fun e -> Queue.is_empty e.mailbox) h.endpoints
