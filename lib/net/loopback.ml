(* Deterministic in-process transport.

   All endpoints attach to one [hub]; [tick] advances a virtual clock
   and moves due packets into receiver mailboxes. Every packet is
   FRAMED on send and DECODED on delivery — the loopback path
   exercises exactly the bytes the TCP path ships, so codec bugs
   surface under the deterministic harness, not just on sockets.

   The hub models CONNECTIONS, not datagrams: each directed link is a
   stream, so a receiver always sees a link's packets in send order
   (resequenced via per-link sequence numbers), and a packet is lost
   only when its link goes down. The fault knobs therefore all resolve
   to per-packet LATENCY — exactly what loss and reordering look like
   through a reliable transport:
   - [delay]    base jitter, uniform(0..delay) extra ticks
   - [drop]     probability a send needs a retransmission round; each
                round (geometric, capped) adds delay + 2 ticks and
                bumps the [retransmits] counter
   - [reorder]  probability a packet takes a slow path; it still
                arrives in order because the link resequences

   All randomness comes from the hub's seeded Rng, so a (seed, knobs,
   link-control history) triple fully determines behaviour.

   Link control ([set_link]) is the partition primitive: taking a link
   down delivers [Down] to both ends and blocks reconnection until the
   link is set up again. Traffic caught on (or sent into) a downed
   link is PARKED, not lost — a session layer that retransmits on
   reconnect, which is exactly the CO_RFIFO contract the end-points
   are built on: channels between mutually-live processes may stall
   but never silently lose a message. Only [discard] (a node death:
   its buffers die with it) and a permanent [close] destroy traffic. *)

open Vsgc_wire

type knobs = { delay : int; drop : float; reorder : float }

let default_knobs = { delay = 0; drop = 0.0; reorder = 0.0 }

(* Retransmission rounds are capped so drop = 1.0 still terminates
   (the cap models a transport that eventually gets through). *)
let max_retransmit_rounds = 6

type flight = {
  due : int;
  seq : int;  (* global tie-break: FIFO among same-tick packets *)
  lseq : int;  (* position in its directed link's stream *)
  src : Node_id.t;
  dst : Node_id.t;
  frame : bytes;
}

type endpoint_state = {
  id : Node_id.t;
  mailbox : Transport.event Queue.t;
  mutable closed : bool;
}

type hub = {
  rng : Vsgc_ioa.Rng.t;
  mutable knobs : knobs;  (* default; per-link overrides win *)
  mutable now : int;
  mutable seq : int;
  mutable in_flight : flight list;  (* unordered; selected by (due, seq) *)
  links : (Node_id.t * Node_id.t, unit) Hashtbl.t;  (* symmetric pairs *)
  blocked : (Node_id.t * Node_id.t, unit) Hashtbl.t;
      (* normalized pairs an operator forced down; connect is refused *)
  link_knobs : (Node_id.t * Node_id.t, knobs) Hashtbl.t;  (* normalized *)
  sent_count : (Node_id.t * Node_id.t, int) Hashtbl.t;
      (* per directed link: next lseq to assign *)
  next_expected : (Node_id.t * Node_id.t, int) Hashtbl.t;
      (* per directed link: next lseq the receiver may consume *)
  parked : (Node_id.t * Node_id.t, (int * bytes) Queue.t) Hashtbl.t;
      (* per directed link: (lseq, frame) held while the link is down,
         re-injected in order when it comes back up *)
  mutable endpoints : endpoint_state list;  (* sorted by id *)
  scratch : Vsgc_types.Bin.Wbuf.t;
      (* every send encodes its frame here, then copies out exactly the
         frame's bytes for the flight — the buffer itself is reused *)
  mutable dropped : int;
  mutable delivered : int;
  mutable delivered_bytes : int;  (* frame bytes of delivered packets *)
  mutable retransmits : int;
}

let hub ?(seed = 0) ?(knobs = default_knobs) () =
  {
    rng = Vsgc_ioa.Rng.make seed;
    knobs;
    now = 0;
    seq = 0;
    in_flight = [];
    links = Hashtbl.create 16;
    blocked = Hashtbl.create 16;
    link_knobs = Hashtbl.create 16;
    sent_count = Hashtbl.create 16;
    next_expected = Hashtbl.create 16;
    parked = Hashtbl.create 16;
    endpoints = [];
    scratch = Vsgc_types.Bin.Wbuf.create 256;
    dropped = 0;
    delivered = 0;
    delivered_bytes = 0;
    retransmits = 0;
  }

let dropped h = h.dropped
let delivered h = h.delivered
let delivered_bytes h = h.delivered_bytes
let retransmits h = h.retransmits
let now h = h.now

let norm a b = if Node_id.compare a b <= 0 then (a, b) else (b, a)

let find_endpoint h id =
  List.find_opt (fun e -> Node_id.equal e.id id) h.endpoints

let linked h a b = Hashtbl.mem h.links (a, b) || Hashtbl.mem h.links (b, a)
let is_blocked h a b = Hashtbl.mem h.blocked (norm a b)

let knobs_for h a b =
  Option.value ~default:h.knobs (Hashtbl.find_opt h.link_knobs (norm a b))

let set_knobs h knobs = h.knobs <- knobs

let set_link_knobs h a b knobs =
  match knobs with
  | Some k -> Hashtbl.replace h.link_knobs (norm a b) k
  | None -> Hashtbl.remove h.link_knobs (norm a b)

let push h id ev =
  match find_endpoint h id with
  | Some e when not e.closed -> Queue.add ev e.mailbox
  | Some _ | None -> ()

let unlink h a b =
  Hashtbl.remove h.links (a, b);
  Hashtbl.remove h.links (b, a)

let parked_queue h src dst =
  match Hashtbl.find_opt h.parked (src, dst) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace h.parked (src, dst) q;
      q

(* The full latency model: base jitter, geometric retransmission
   penalty, occasional slow path. One call per frame put in flight. *)
let latency h a b =
  let k = knobs_for h a b in
  let jitter = if k.delay > 0 then Vsgc_ioa.Rng.int h.rng (k.delay + 1) else 0 in
  let penalty = ref 0 in
  if k.drop > 0.0 then begin
    let rounds = ref 0 in
    while
      !rounds < max_retransmit_rounds && Vsgc_ioa.Rng.float h.rng < k.drop
    do
      incr rounds;
      penalty := !penalty + k.delay + 2;
      h.retransmits <- h.retransmits + 1
    done
  end;
  let slow_path =
    if k.reorder > 0.0 && Vsgc_ioa.Rng.float h.rng < k.reorder then
      1 + Vsgc_ioa.Rng.int h.rng ((2 * k.delay) + 3)
    else 0
  in
  1 + jitter + !penalty + slow_path

(* Encode through the hub's reusable scratch; the flight gets an owned
   copy of just the frame's bytes (flights outlive the send). *)
let encode_frame h pkt =
  Vsgc_types.Bin.Wbuf.clear h.scratch;
  Frame.encode_into h.scratch pkt;
  Vsgc_types.Bin.Wbuf.to_bytes h.scratch

let enqueue_flight h ~src ~dst ~lseq frame =
  let due = h.now + latency h src dst in
  h.seq <- h.seq + 1;
  h.in_flight <- { due; seq = h.seq; lseq; src; dst; frame } :: h.in_flight

(* Move everything in flight on the directed link src->dst into its
   parking buffer, in stream order — the link went down with the
   frames unacknowledged; they go out again on reconnect. *)
let park h src dst =
  let caught, kept =
    List.partition
      (fun f -> Node_id.equal f.src src && Node_id.equal f.dst dst)
      h.in_flight
  in
  h.in_flight <- kept;
  let q = parked_queue h src dst in
  List.iter
    (fun f -> Queue.add (f.lseq, f.frame) q)
    (List.sort (fun a b -> compare a.lseq b.lseq) caught)

(* Re-inject the parking buffer into flight, oldest first, with fresh
   latencies — the reconnect retransmission. *)
let unpark h src dst =
  match Hashtbl.find_opt h.parked (src, dst) with
  | None -> ()
  | Some q ->
      Queue.iter (fun (lseq, frame) -> enqueue_flight h ~src ~dst ~lseq frame) q;
      Queue.clear q

(* Destroy everything in flight or parked on the directed link
   src->dst. The receiver must not wait for the destroyed frames, so
   its stream cursor skips to the end of what was ever sent. *)
let purge h src dst =
  let gone, kept =
    List.partition
      (fun f -> Node_id.equal f.src src && Node_id.equal f.dst dst)
      h.in_flight
  in
  h.in_flight <- kept;
  let n_parked =
    match Hashtbl.find_opt h.parked (src, dst) with
    | None -> 0
    | Some q ->
        let n = Queue.length q in
        Queue.clear q;
        n
  in
  h.dropped <- h.dropped + List.length gone + n_parked;
  let sent = Option.value ~default:0 (Hashtbl.find_opt h.sent_count (src, dst)) in
  Hashtbl.replace h.next_expected (src, dst) sent

let attach h id =
  (match find_endpoint h id with
  | Some _ -> invalid_arg "Loopback.attach: id already attached"
  | None -> ());
  let ep = { id; mailbox = Queue.create (); closed = false } in
  h.endpoints <-
    List.sort
      (fun a b -> Node_id.compare a.id b.id)
      (ep :: h.endpoints);
  let connect peer =
    if ep.closed || is_blocked h id peer then ()
    else
      match find_endpoint h peer with
      | Some other when not other.closed ->
          if not (linked h id peer) then begin
            Hashtbl.replace h.links (id, peer) ();
            push h id (Transport.Up peer);
            push h peer (Transport.Up id)
          end
      | Some _ | None -> ()
  in
  let next_lseq peer =
    let lseq =
      Option.value ~default:0 (Hashtbl.find_opt h.sent_count (id, peer))
    in
    Hashtbl.replace h.sent_count (id, peer) (lseq + 1);
    lseq
  in
  let send peer pkt =
    if ep.closed then ()
    else if linked h id peer then
      enqueue_flight h ~src:id ~dst:peer ~lseq:(next_lseq peer)
        (encode_frame h pkt)
    else if
      (* Link forced down but the peer is alive: the session layer
         holds the frame for retransmission on reconnect. *)
      is_blocked h id peer
      && match find_endpoint h peer with
         | Some other -> not other.closed
         | None -> false
    then
      Queue.add (next_lseq peer, encode_frame h pkt) (parked_queue h id peer)
    else
      (* No connection and none pending: the bytes never leave. *)
      h.dropped <- h.dropped + 1
  in
  let recv () =
    let evs = List.of_seq (Queue.to_seq ep.mailbox) in
    Queue.clear ep.mailbox;
    evs
  in
  let close () =
    if not ep.closed then begin
      ep.closed <- true;
      List.iter
        (fun other ->
          if not (Node_id.equal other.id id) then begin
            if linked h id other.id then begin
              unlink h id other.id;
              push h other.id (Transport.Down id)
            end;
            purge h id other.id;
            purge h other.id id
          end)
        h.endpoints;
      Queue.clear ep.mailbox
    end
  in
  { Transport.me = id; connect; send; recv; close }

let set_link h a b ~up =
  if Node_id.equal a b then invalid_arg "Loopback.set_link: a = b";
  if up then begin
    Hashtbl.remove h.blocked (norm a b);
    match (find_endpoint h a, find_endpoint h b) with
    | Some ea, Some eb when (not ea.closed) && not eb.closed ->
        if not (linked h a b) then begin
          Hashtbl.replace h.links (a, b) ();
          push h a (Transport.Up b);
          push h b (Transport.Up a);
          unpark h a b;
          unpark h b a
        end
    | _ ->
        (* One end is gone for good; the session can never resume. *)
        purge h a b;
        purge h b a
  end
  else begin
    Hashtbl.replace h.blocked (norm a b) ();
    if linked h a b then begin
      unlink h a b;
      push h a (Transport.Down b);
      push h b (Transport.Down a)
    end;
    park h a b;
    park h b a
  end

let discard h id =
  List.iter
    (fun other ->
      if not (Node_id.equal other.id id) then begin
        purge h id other.id;
        purge h other.id id
      end)
    h.endpoints

let connected h a b = linked h a b

(* Advance the virtual clock one tick and deliver everything due, in
   (due, seq) order — the only order, so runs are reproducible. A
   packet is consumable only when it is the next one in its link's
   stream; a due-but-early packet waits for its predecessors (that is
   what "the link resequences" means), so delivering one packet can
   make the next consumable within the same tick. *)
let tick h =
  h.now <- h.now + 1;
  let next_exp src dst =
    Option.value ~default:0 (Hashtbl.find_opt h.next_expected (src, dst))
  in
  let rec deliver_due () =
    let eligible =
      List.filter
        (fun f -> f.due <= h.now && f.lseq = next_exp f.src f.dst)
        h.in_flight
    in
    match eligible with
    | [] -> ()
    | _ :: _ ->
        let f =
          List.fold_left
            (fun best f ->
              if compare (f.due, f.seq) (best.due, best.seq) < 0 then f
              else best)
            (List.hd eligible) (List.tl eligible)
        in
        h.in_flight <-
          List.filter (fun (g : flight) -> g.seq <> f.seq) h.in_flight;
        Hashtbl.replace h.next_expected (f.src, f.dst) (f.lseq + 1);
        if linked h f.src f.dst then begin
          match Frame.decode f.frame with
          | Ok pkt ->
              h.delivered <- h.delivered + 1;
              h.delivered_bytes <- h.delivered_bytes + Bytes.length f.frame;
              push h f.dst (Transport.Received (f.src, pkt))
          | Error error ->
              push h f.dst (Transport.Malformed { peer = Some f.src; error })
        end
        else h.dropped <- h.dropped + 1;
        deliver_due ()
  in
  deliver_due ()

(* Nothing in flight and every mailbox drained. Mailboxes only empty
   when their endpoint [recv]s, so idleness is checked by the node
   loop after a recv pass, not busy-waited on here. *)
let idle h =
  h.in_flight = []
  && List.for_all (fun e -> Queue.is_empty e.mailbox) h.endpoints
