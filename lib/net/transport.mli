(** The transport interface of the runtime (DESIGN.md §10).

    A transport endpoint belongs to one node and mediates all its
    communication. The interface is a record of closures so that nodes
    are polymorphic in the transport: {!Loopback} provides the
    deterministic in-process implementation, {!Tcp} the real one. *)

open Vsgc_wire

type event =
  | Up of Node_id.t  (** a link to this peer is established *)
  | Down of Node_id.t  (** the link is lost *)
  | Received of Node_id.t * Packet.t  (** a decoded packet *)
  | Malformed of { peer : Node_id.t option; error : Frame.error }
      (** undecodable bytes; the link is dropped, never the process *)

val pp_event : Format.formatter -> event -> unit

type t = {
  me : Node_id.t;
  connect : Node_id.t -> unit;
  send : Node_id.t -> Packet.t -> unit;
  recv : unit -> event list;
  close : unit -> unit;
}

val me : t -> Node_id.t

val connect : t -> Node_id.t -> unit
(** Dial a peer; idempotent. [Up] is reported once established. *)

val send : t -> Node_id.t -> Packet.t -> unit
(** Frame and ship; silently dropped when the link is down. *)

val recv : t -> event list
(** Drain pending events, oldest first. *)

val close : t -> unit
