(* The transport interface of the runtime.

   A transport endpoint belongs to one node and mediates all its
   communication: it dials peers, ships framed packets, and surfaces
   everything observable as a queue of [event]s the node drains each
   iteration of its main loop. Implementations:

   - [Loopback]: deterministic in-process hub with seeded fault knobs,
     so networked compositions stay reproducible and explorable.
   - [Tcp]: real sockets, non-blocking select loop, reconnecting.

   The interface is a record of closures rather than a functor: every
   endpoint carries its own connection state, and nodes stay
   polymorphic in the transport without staging. *)

open Vsgc_wire

type event =
  | Up of Node_id.t  (** a link to this peer is established *)
  | Down of Node_id.t  (** the link is lost (peer closed, crashed...) *)
  | Received of Node_id.t * Packet.t  (** a decoded packet from the peer *)
  | Malformed of { peer : Node_id.t option; error : Frame.error }
      (** undecodable bytes arrived; the link is dropped, never the
          process *)

let pp_event ppf = function
  | Up id -> Fmt.pf ppf "up(%a)" Node_id.pp id
  | Down id -> Fmt.pf ppf "down(%a)" Node_id.pp id
  | Received (id, pkt) -> Fmt.pf ppf "recv(%a,%a)" Node_id.pp id Packet.pp pkt
  | Malformed { peer; error } ->
      Fmt.pf ppf "malformed(%a,%a)"
        Fmt.(option ~none:(any "?") Node_id.pp)
        peer Frame.pp_error error

type t = {
  me : Node_id.t;
  connect : Node_id.t -> unit;
      (** dial a peer; idempotent, [Up] is reported when established *)
  send : Node_id.t -> Packet.t -> unit;
      (** frame and ship; silently dropped when the link is down *)
  recv : unit -> event list;  (** drain pending events, oldest first *)
  close : unit -> unit;  (** tear down every link *)
}

let me t = t.me
let connect t peer = t.connect peer
let send t peer pkt = t.send peer pkt
let recv t = t.recv ()
let close t = t.close ()
