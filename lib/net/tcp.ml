(* Real-socket transport: non-blocking TCP under a select loop.

   Topology is configured, not discovered: a node [listen]s on one
   address and dials the [peers] it is told to. Each deployment lists
   every edge exactly once (by convention the higher node dials the
   lower), so no connection dedup is needed.

   Identification: both sides ship a [Hello] as their first frame —
   the dialer when its connect completes, the acceptor when it
   accepts. A link is [Up] when the peer's [Hello] arrives, so by
   then both directions are known good.

   Failure policy (the acceptance criterion: a malformed frame or a
   peer crash costs the LINK, never the process):
   - read error / EOF / malformed frame -> drop the connection, emit
     [Down] (and [Malformed] first, when that is the cause);
   - every configured peer we dial is retried forever with exponential
     backoff in [backoff_min, backoff_max];
   - bytes addressed to a peer whose link is down are dropped, as the
     transport contract says — CO_RFIFO sits above and owns
     retransmission semantics via view changes.

   One exception to the drop rule: packets addressed to a peer no link
   has identified YET are parked (bounded, drop-newest) and flushed
   the moment that peer's [Hello] registers. A view change triggers
   its state-transfer burst the instant the membership round closes,
   which can race the direct link's dial at process startup — and a
   FIFO stream never recovers from a lost prefix. Parking bridges
   exactly that window; a [Down] clears the peer's parked queue, so a
   reborn incarnation never inherits a dead view's traffic.

   The loop never blocks except inside [recv]'s select, bounded by
   [poll_timeout]. *)

open Vsgc_wire
module Bin = Vsgc_types.Bin

type addr = string * int

type config = {
  me : Node_id.t;
  listen : addr option;
  peers : (Node_id.t * addr) list;  (* peers this node dials *)
  poll_timeout : float;  (* seconds recv may block in select *)
  backoff_min : float;
  backoff_max : float;
}

let config ?(listen = None) ?(peers = []) ?(poll_timeout = 0.05)
    ?(backoff_min = 0.05) ?(backoff_max = 2.0) me =
  { me; listen; peers; poll_timeout; backoff_min; backoff_max }

type conn = {
  fd : Unix.file_descr;
  feeder : Frame.feeder;
  out : Bin.Wbuf.t;
      (* the coalescing write path: every queued frame is encoded
         straight into this buffer (no per-frame bytes), and one
         [write] syscall flushes everything pending *)
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable peer : Node_id.t option;  (* known once the Hello arrives *)
  mutable hello_sent : bool;
  dialed : Node_id.t option;  (* Some p when we dialed this as p *)
  mutable connecting : bool;  (* non-blocking connect in progress *)
}

let pending conn = Bin.Wbuf.length conn.out - conn.out_off

(* One burst must not pin its high-water buffer forever. *)
let out_shrink_cap = 1 lsl 20

let out_drained conn =
  conn.out_off <- 0;
  if Bin.Wbuf.capacity conn.out > out_shrink_cap then Bin.Wbuf.shrink conn.out
  else Bin.Wbuf.clear conn.out

type dial = {
  addr : addr;
  mutable backoff : float;
  mutable retry_at : float;  (* 0. = dial immediately *)
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr option;
  mutable conns : conn list;
  dials : (Node_id.t, dial) Hashtbl.t;  (* peers we owe a connection *)
  parked : (Node_id.t, Packet.t Queue.t) Hashtbl.t;
      (* packets addressed to a peer no link has identified yet;
         flushed on that peer's Hello, cleared on its Down *)
  events : Transport.event Queue.t;
  scratch : bytes;
  mutable closed : bool;
}

let nonblock fd = Unix.set_nonblock fd

let mk_listen (host, port) =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  nonblock fd;
  fd

let emit st ev = Queue.add ev st.events

let enqueue_pkt conn pkt = Frame.encode_into conn.out pkt

(* Startup-race bridge only: far more than any state-transfer burst,
   far less than an unbounded leak if the peer never shows up. Overflow
   drops the NEWEST — a FIFO stream survives losing its tail (CO_RFIFO
   re-syncs on the next view change) but never a hole in its prefix. *)
let park_cap = 512

let park st peer pkt =
  let q =
    match Hashtbl.find_opt st.parked peer with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace st.parked peer q;
        q
  in
  if Queue.length q < park_cap then Queue.add pkt q

let unpark st conn peer =
  match Hashtbl.find_opt st.parked peer with
  | Some q ->
      Queue.iter (enqueue_pkt conn) q;
      Hashtbl.remove st.parked peer
  | None -> ()

let send_hello st conn =
  if not conn.hello_sent then begin
    conn.hello_sent <- true;
    enqueue_pkt conn (Packet.Hello st.cfg.me)
  end

(* Drop a connection. [down] says whether to emit [Down] (only for
   identified links); a dialed peer is always rescheduled. *)
let drop_conn st conn ~down =
  st.conns <- List.filter (fun c -> c.fd != conn.fd) st.conns;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  (match conn.peer with
  | Some p when down ->
      Hashtbl.remove st.parked p;
      emit st (Transport.Down p)
  | _ -> ());
  match conn.dialed with
  | Some p -> (
      match Hashtbl.find_opt st.dials p with
      | Some d ->
          d.retry_at <- Unix.gettimeofday () +. d.backoff;
          d.backoff <- Float.min (d.backoff *. 2.0) st.cfg.backoff_max
      | None -> ())
  | None -> ()

let start_dial st peer (d : dial) =
  let host, port = d.addr in
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ ->
      d.retry_at <- Unix.gettimeofday () +. d.backoff;
      d.backoff <- Float.min (d.backoff *. 2.0) st.cfg.backoff_max
  | fd -> (
      nonblock fd;
      let conn =
        {
          fd;
          feeder = Frame.feeder ();
          out = Bin.Wbuf.create 256;
          out_off = 0;
          peer = None;
          hello_sent = false;
          dialed = Some peer;
          connecting = true;
        }
      in
      d.retry_at <- Float.max_float (* re-armed by drop_conn on failure *);
      match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
      | () ->
          conn.connecting <- false;
          send_hello st conn;
          st.conns <- conn :: st.conns
      | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
        ->
          st.conns <- conn :: st.conns
      | exception Unix.Unix_error _ -> drop_conn st conn ~down:false)

let start_due_dials st =
  let nowt = Unix.gettimeofday () in
  Hashtbl.iter
    (fun peer d -> if d.retry_at <= nowt then start_dial st peer d)
    st.dials

(* A completed (or failed) non-blocking connect shows up as writable. *)
let finish_connect st conn =
  conn.connecting <- false;
  match Unix.getsockopt_error conn.fd with
  | None -> send_hello st conn
  | Some _ -> drop_conn st conn ~down:false

let flush_out conn =
  (* Returns false when the connection broke mid-write. Everything
     queued since the last flush goes out in ONE syscall; a partial
     write just advances the offset and the rest goes next pass. *)
  match pending conn with
  | 0 -> true
  | len -> (
      match
        Unix.write conn.fd (Bin.Wbuf.unsafe_contents conn.out) conn.out_off len
      with
      | n when n = len ->
          out_drained conn;
          true
      | n ->
          conn.out_off <- conn.out_off + n;
          true
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> true
      | exception Unix.Unix_error _ -> false)

let handle_frames st conn =
  let rec go () =
    match Frame.next conn.feeder with
    | None -> ()
    | Some (Error error) ->
        emit st (Transport.Malformed { peer = conn.peer; error });
        drop_conn st conn ~down:true
    | Some (Ok (Packet.Hello id)) ->
        (match conn.peer with
        | None ->
            conn.peer <- Some id;
            send_hello st conn;
            unpark st conn id;
            emit st (Transport.Up id)
        | Some _ -> () (* duplicate Hello: harmless *));
        go ()
    | Some (Ok pkt) -> (
        match conn.peer with
        | Some p ->
            emit st (Transport.Received (p, pkt));
            go ()
        | None ->
            (* data before identification: protocol violation *)
            emit st
              (Transport.Malformed
                 {
                   peer = None;
                   error = Frame.Body (Vsgc_types.Bin.Bad_value
                            { what = "hello"; detail = "packet before hello" });
                 });
            drop_conn st conn ~down:false)
  in
  go ()

let handle_readable st conn =
  match Unix.read conn.fd st.scratch 0 (Bytes.length st.scratch) with
  | 0 -> drop_conn st conn ~down:true
  | n ->
      Frame.feed conn.feeder st.scratch ~off:0 ~len:n;
      handle_frames st conn
  | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn st conn ~down:true

let accept_new st listen_fd =
  let rec go () =
    match Unix.accept listen_fd with
    | fd, _ ->
        nonblock fd;
        let conn =
          {
            fd;
            feeder = Frame.feeder ();
            out = Bin.Wbuf.create 256;
            out_off = 0;
            peer = None;
            hello_sent = false;
            dialed = None;
            connecting = false;
          }
        in
        send_hello st conn;
        st.conns <- conn :: st.conns;
        go ()
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let poll st timeout =
  if not st.closed then begin
    start_due_dials st;
    let reads =
      Option.to_list st.listen_fd
      @ List.filter_map
          (fun c -> if c.connecting then None else Some c.fd)
          st.conns
    in
    let writes =
      List.filter_map
        (fun c -> if c.connecting || pending c > 0 then Some c.fd else None)
        st.conns
    in
    match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | rs, ws, _ ->
        (match st.listen_fd with
        | Some lfd when List.memq lfd rs -> accept_new st lfd
        | Some _ | None -> ());
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) st.conns with
            | None -> ()
            | Some conn ->
                if conn.connecting then finish_connect st conn
                else if not (flush_out conn) then drop_conn st conn ~down:true)
          ws;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) st.conns with
            | None -> () (* the listen fd, or a conn dropped this pass *)
            | Some conn -> handle_readable st conn)
          rs
  end

let create cfg =
  let listen_fd = Option.map mk_listen cfg.listen in
  let st =
    {
      cfg;
      listen_fd;
      conns = [];
      dials = Hashtbl.create 8;
      parked = Hashtbl.create 8;
      events = Queue.create ();
      scratch = Bytes.create 65536;
      closed = false;
    }
  in
  List.iter
    (fun (peer, addr) ->
      Hashtbl.replace st.dials peer { addr; backoff = cfg.backoff_min; retry_at = 0.0 })
    cfg.peers;
  let find_peer peer =
    List.find_opt
      (fun c -> (not c.connecting) && match c.peer with
         | Some p -> Node_id.equal p peer
         | None -> false)
      st.conns
  in
  let connect peer =
    (* Dialing is config-driven; connect() only accelerates a pending
       retry so tests need not wait out a backoff. *)
    match Hashtbl.find_opt st.dials peer with
    | Some d -> if find_peer peer = None then d.retry_at <- 0.0
    | None -> ()
  in
  let send peer pkt =
    match find_peer peer with
    | Some conn ->
        enqueue_pkt conn pkt;
        if not (flush_out conn) then drop_conn st conn ~down:true
    | None -> park st peer pkt
  in
  let recv () =
    poll st cfg.poll_timeout;
    let evs = List.of_seq (Queue.to_seq st.events) in
    Queue.clear st.events;
    evs
  in
  let close () =
    if not st.closed then begin
      (* Best-effort flush so frames sent just before exit get out. *)
      let deadline = Unix.gettimeofday () +. 1.0 in
      let rec flush_all () =
        let pending = List.exists (fun c -> pending c > 0) st.conns in
        if pending && Unix.gettimeofday () < deadline then begin
          poll st 0.01;
          flush_all ()
        end
      in
      flush_all ();
      st.closed <- true;
      (match st.listen_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.conns;
      st.conns <- []
    end
  in
  { Transport.me = cfg.me; connect; send; recv; close }
