(** A deployable vsgc node: one OS-process-worth of the system.

    Hosts the unchanged automata — a GCS end-point plus its scripted
    client, or a membership server — inside a private executor,
    bridged to a transport by an I/O pump. Transport events go in via
    {!handle}; {!step} pumps the composition to quiescence and
    returns the packets to ship (DESIGN.md §10). *)

open Vsgc_types
open Vsgc_wire

type role =
  | Client_node of { proc : Proc.t; attach : Server.t }
      (** a GCS end-point, registering with membership server [attach] *)
  | Sym_client_node of { proc : Proc.t; attach : Server.t }
      (** a GCS end-point hosting the symmetric total-order client
          ({!Vsgc_totalorder.Tord_sym_client}, DESIGN.md §16) instead
          of the scripted application client *)
  | Server_node of { server : Server.t }  (** a membership server *)

type t

val create : ?seed:int -> ?layer:Vsgc_core.Endpoint.layer -> role -> t
(** [layer] (default [`Full]) selects the end-point's inheritance
    layer; ignored for servers. *)

val id : t -> Node_id.t
val executor : t -> Vsgc_ioa.Executor.t

val handle : t -> Transport.event -> unit
(** Translate one transport event into environment inputs (queued for
    the next {!step}). Total: malformed events only bump a counter. *)

val step : ?max_steps:int -> t -> (Node_id.t * Packet.t) list
(** Pump every queued input and run the composition to quiescence;
    returns the packets this produced, oldest first, addressed. *)

val inject : t -> Action.t -> unit
(** Queue a raw environment input — scripted membership events in
    server-less deployments, crash/recover, ... *)

val push : t -> string -> unit
(** Queue an application payload for multicast (client nodes).
    @raise Invalid_argument on a server node. *)

val corrupt : t -> salt:int -> Vsgc_core.Endpoint.corruption -> unit
(** Apply a seeded state corruption to the hosted end-point
    (DESIGN.md §13), out-of-band like {!push}.
    @raise Invalid_argument on a server node or a crashed end-point. *)

val self_check : t -> string option
(** The hosted automaton's local legitimacy guards
    ({!Vsgc_core.Endpoint.self_check} / {!Vsgc_mbrshp.Servers.self_check});
    [Some reason] witnesses corrupt or counter-exhausted state. *)

(** {1 Observation} *)

val steps : t -> int
(** Actions this node's executor has performed (trace length). *)

val delivered : t -> (Proc.t * Msg.App_msg.t) list
(** Client node: application deliveries, oldest first. *)

val views : t -> (View.t * Proc.Set.t) list
(** Client node: views delivered to the application, oldest first. *)

val last_view : t -> (View.t * Proc.Set.t) option
val current_view : t -> View.t

val attached : t -> Proc.Set.t
(** Server node: clients currently joined. *)

val client_state : t -> Vsgc_core.Client.t
(** Client node: the hosted application automaton's state.
    @raise Invalid_argument on a server or symmetric-arm node. *)

val sym_state : t -> Vsgc_totalorder.Tord_sym_client.t
(** Symmetric-arm client node: the hosted ordering client's state.
    @raise Invalid_argument on any other node. *)

val endpoint_state : t -> Vsgc_core.Endpoint.t
(** Client node: the hosted GCS end-point's state — what the §6/§7
    invariant checkers consume.
    @raise Invalid_argument on a server node. *)

val crashed : t -> bool
(** Client node currently crashed (§8)? Always [false] for servers. *)

val malformed : t -> int
(** Malformed transport events survived so far. *)

val trace : t -> Action.t list
val quiescent : t -> bool

val fingerprint : t -> string
(** {!Vsgc_ioa.Trace_stats.fingerprint} of this node's trace. *)
