(** Deterministic in-process transport.

    All endpoints attach to one {!hub}; {!tick} advances a virtual
    clock and moves due packets into receiver mailboxes. Every packet
    is framed on send and decoded on delivery, so the loopback path
    exercises exactly the bytes the TCP path ships. A (seed, knobs)
    pair fully determines behaviour. *)

open Vsgc_wire

type knobs = {
  delay : int;  (** each packet is due 1 + uniform(0..delay) ticks out *)
  drop : float;  (** probability a packet vanishes in flight *)
  reorder : float;
      (** probability a packet may overtake earlier ones on its link;
          at 0.0 per-link FIFO is enforced, like a TCP stream *)
}

val default_knobs : knobs
(** No delay, no loss, FIFO links. *)

type hub

val hub : ?seed:int -> ?knobs:knobs -> unit -> hub

val attach : hub -> Node_id.t -> Transport.t
(** A fresh endpoint with this identity.
    @raise Invalid_argument if the identity is already attached. *)

val tick : hub -> unit
(** Advance the virtual clock one tick; deliver every due packet in
    (due, sequence) order. *)

val idle : hub -> bool
(** Nothing in flight and every mailbox drained. *)

val now : hub -> int
val dropped : hub -> int
val delivered : hub -> int
