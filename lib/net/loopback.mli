(** Deterministic in-process transport.

    All endpoints attach to one {!hub}; {!tick} advances a virtual
    clock and moves due packets into receiver mailboxes. Every packet
    is framed on send and decoded on delivery, so the loopback path
    exercises exactly the bytes the TCP path ships.

    The hub models connections, not datagrams: each directed link is a
    stream — receivers see a link's packets in send order, and a
    packet is lost only when its link goes down. The fault knobs all
    resolve to per-packet latency, which is what loss and reordering
    look like through a reliable transport. A (seed, knobs,
    link-control history) triple fully determines behaviour. *)

open Vsgc_wire

type knobs = {
  delay : int;  (** base jitter: uniform(0..delay) extra ticks *)
  drop : float;
      (** probability a send needs a retransmission round; each round
          (geometric, capped) adds delay + 2 ticks of latency and
          bumps {!retransmits} *)
  reorder : float;
      (** probability a packet takes a slow path (up to 2·delay + 3
          extra ticks); it still arrives in order because the link
          resequences *)
}

val default_knobs : knobs
(** No delay, no retransmissions, no slow paths. *)

type hub

val hub : ?seed:int -> ?knobs:knobs -> unit -> hub

val attach : hub -> Node_id.t -> Transport.t
(** A fresh endpoint with this identity.
    @raise Invalid_argument if the identity is already attached. *)

val tick : hub -> unit
(** Advance the virtual clock one tick; deliver every consumable
    packet in (due, sequence) order. A packet is consumable when it is
    due and is the next one in its directed link's stream. *)

val idle : hub -> bool
(** Nothing in flight and every mailbox drained. *)

val set_link : hub -> Node_id.t -> Node_id.t -> up:bool -> unit
(** Force the link between two endpoints down or allow it back up.

    [up:false] blocks the pair: both ends receive [Down], everything
    in flight between them (and every later send into the downed
    link) is parked, and [connect] is refused until the block is
    lifted. [up:true] lifts the block and, when both endpoints are
    attached and open, re-establishes the link (both ends receive
    [Up]) and re-injects the parked traffic in stream order — the
    session layer retransmitting on reconnect, preserving the
    CO_RFIFO contract that channels between live processes stall but
    never silently lose messages. Parked traffic is destroyed only by
    {!discard} or a permanent close.
    @raise Invalid_argument if both identities are equal. *)

val discard : hub -> Node_id.t -> unit
(** Destroy all in-flight and parked traffic to and from this node
    (counted in {!dropped}) — a node death: its session buffers die
    with it. Stream cursors skip past the destroyed frames so traffic
    after a later reconnect flows again. *)

val set_knobs : hub -> knobs -> unit
(** Replace the hub-wide default knobs (takes effect on subsequent
    sends; packets already in flight keep their latency). *)

val set_link_knobs : hub -> Node_id.t -> Node_id.t -> knobs option -> unit
(** Override (or, with [None], restore) the knobs for one symmetric
    pair; overrides win over the hub-wide default. *)

val connected : hub -> Node_id.t -> Node_id.t -> bool
(** Is the link between the two endpoints currently up? *)

val now : hub -> int
val dropped : hub -> int
val delivered : hub -> int

val delivered_bytes : hub -> int
(** Total framed bytes of delivered packets — the wire-byte cost a
    bake-off arm paid for its traffic. *)

val retransmits : hub -> int
(** Total retransmission rounds charged by the [drop] knob. *)
