(** Totally ordered multicast atop the within-view reliable FIFO
    service — the construction the paper points to in §4.1.1 ("the
    totally ordered multicast algorithm of [13] is implemented atop a
    service that satisfies the WV_RFIFO specification").

    A fixed sequencer per view (the minimum member) multicasts order
    announcements through its own FIFO stream; at a view change,
    Virtual Synchrony makes the undelivered remainder identical at all
    members of the transitional set, so a deterministic flush extends
    the total order consistently across views with no extra agreement.
    Pure core; see {!Tord_client} for the component. *)

open Vsgc_types

type entry = { sender : Proc.t; index : int; payload : string }

type t

val create : Proc.t -> t
val is_sequencer : t -> bool

val view : t -> View.t
(** The view this instance currently orders within. *)

val total_order : t -> entry list
(** The totally ordered prefix, oldest first — identical at every
    member that has processed the same GCS events. *)

val total_count : t -> int
(** Length of the totally ordered prefix (O(1)). *)

val entries_from : t -> int -> entry list
(** [entries_from t k]: the ordered suffix starting at global position
    [k] (0-based), oldest first — the cursor read the KV service layers
    its incremental store on. Beyond-the-log cursors read as empty. *)

(** {1 Wire encoding (inside opaque GCS payloads)} *)

val encode_data : string -> string
val encode_order : sender:Proc.t -> index:int -> string

val encode_order_batch : (Proc.t * int) list -> string
(** The sequencer's whole announcement backlog coalesced into one
    multicast; delivering a batch is delivering its members in order. *)

type decoded =
  | Data of string
  | Order of Proc.t * int
  | Order_batch of (Proc.t * int) list
  | Other of string

val decode : string -> decoded

(** {1 Events} *)

val on_deliver :
  t -> sender:Proc.t -> payload:string -> t * entry list * (Proc.t * int) list
(** A GCS delivery. Returns the new state, the entries that just became
    totally ordered, and the announcement pairs to multicast (non-empty
    only at the sequencer; the client layer picks the single or batched
    encoding). *)

val on_view : t -> view:View.t -> transitional:Proc.Set.t -> t * entry list
(** A GCS view. Flushes the unannounced remainder in deterministic
    (sender, index) order; returns the flushed entries. *)
