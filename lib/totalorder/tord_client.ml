(* The totally-ordered-multicast application component: plays the
   blocking-client role (Figure 12) toward a GCS end-point and exposes
   a totally ordered delivery log built by {!Tord_core}.

   Announcements the sequencer could not send while blocked are dropped
   at the view boundary: Virtual Synchrony means no member saw them, and
   the deterministic flush of {!Tord_core.on_view} orders the affected
   messages identically everywhere.

   With [batch_orders] the sequencer coalesces its whole announcement
   backlog into one [Tord_core.encode_order_batch] multicast instead of
   one wire message per data message — the Derecho-style batching that
   keeps throughput wire-bound (DESIGN.md §15). The resulting total
   order is identical to the unbatched path: a batch delivers its
   members in announcement order. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  core : Tord_core.t;
  me : Proc.t;
  block_status : block_status;
  to_send : string list;  (* encoded data payloads, oldest first *)
  announce_queue : (Proc.t * int) list;  (* unsent announcements, oldest first *)
  views : (View.t * Proc.Set.t) list;  (* newest first *)
  crashed : bool;
  batch_orders : bool;  (* coalesce the backlog into one multicast *)
}

let initial ?(batch_orders = false) me =
  {
    core = Tord_core.create me;
    me;
    block_status = Unblocked;
    to_send = [];
    announce_queue = [];
    views = [];
    crashed = false;
    batch_orders;
  }

(* -- Scripting / observation API ----------------------------------------- *)

let push (r : t ref) payload =
  r := { !r with to_send = !r.to_send @ [ Tord_core.encode_data payload ] }

let total_order t =
  List.map (fun (e : Tord_core.entry) -> (e.Tord_core.sender, e.Tord_core.payload))
    (Tord_core.total_order t.core)

let views t = List.rev t.views
let last_view t = match t.views with [] -> None | v :: _ -> Some v

(* -- Component ------------------------------------------------------------ *)

(* The pending announcement multicast, if any: the head alone, or the
   whole backlog in one batch payload when [batch_orders] is set. *)
let announcement_payload t =
  match t.announce_queue with
  | [] -> None
  | [ (sender, index) ] -> Some (Tord_core.encode_order ~sender ~index)
  | (sender, index) :: _ when not t.batch_orders ->
      Some (Tord_core.encode_order ~sender ~index)
  | batch -> Some (Tord_core.encode_order_batch batch)

let next_send t =
  match announcement_payload t with
  | Some a -> Some a
  | None -> ( match t.to_send with d :: _ -> Some d | [] -> None)

let outputs t =
  if t.crashed then []
  else
    let acc = if t.block_status = Requested then [ Action.Block_ok t.me ] else [] in
    match next_send t with
    | Some s when t.block_status <> Blocked ->
        Action.App_send (t.me, Msg.App_msg.make s) :: acc
    | _ -> acc

let accepts me (a : Action.t) =
  match a with
  | Action.App_deliver (p, _, _) | Action.App_view (p, _, _) | Action.Block p
  | Action.Crash p | Action.Recover p -> Proc.equal p me
  | _ -> false

let apply t (a : Action.t) =
  if t.crashed then
    match a with
    | Action.Recover p when Proc.equal p t.me ->
        initial ~batch_orders:t.batch_orders t.me
    | _ -> t
  else
    match a with
    | Action.App_send (_, m) -> (
        let s = Msg.App_msg.payload m in
        match announcement_payload t with
        | Some a when String.equal a s ->
            (* A batch payload covers the whole backlog; a single
               encoding covers exactly the head. *)
            let announce_queue =
              if t.batch_orders then []
              else match t.announce_queue with _ :: rest -> rest | [] -> []
            in
            { t with announce_queue }
        | _ -> (
            match t.to_send with
            | d :: rest when String.equal d s -> { t with to_send = rest }
            | _ -> t))
    | Action.Block_ok _ -> { t with block_status = Blocked }
    | Action.Block _ -> { t with block_status = Requested }
    | Action.App_deliver (_, q, m) ->
        let core, _newly, announcements =
          Tord_core.on_deliver t.core ~sender:q ~payload:(Msg.App_msg.payload m)
        in
        { t with core; announce_queue = t.announce_queue @ announcements }
    | Action.App_view (_, v, tset) ->
        let core, _flushed = Tord_core.on_view t.core ~view:v ~transitional:tset in
        { t with
          core;
          announce_queue = [];
          views = (v, tset) :: t.views;
          block_status = Unblocked }
    | Action.Crash _ -> { t with crashed = true }
    | _ -> t

(* Client-role component: everything is co-located at me. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.App_deliver (p, _, _)
  | Action.App_view (p, _, _) | Action.Block p | Action.Crash p | Action.Recover p
    when Proc.equal p me -> rw [ Proc_state me ]
  | _ -> empty

let emits me (a : Action.t) =
  match a with
  | Action.App_send (p, _) | Action.Block_ok p -> Proc.equal p me
  | _ -> false

let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state me, Vsgc_ioa.Component.digest st) ]

let def ?batch_orders me : t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "tord_%a" Proc.pp me;
    init = initial ?batch_orders me;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits me;
    observe = observe me;
  }

let component ?batch_orders me =
  let d = def ?batch_orders me in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
