(* Symmetric (logical-timestamp) totally ordered multicast atop the
   within-view reliable FIFO service.

   The paper points at Chockler-Huleihel-Dolev [13] — an ADAPTIVE
   totally ordered protocol implemented "atop a service that satisfies
   the WV_RFIFO specification" — which switches between two orderings:
   the sequencer-based one ({!Tord_core}) and the symmetric one built
   here. Every message carries a Lamport timestamp; the total order is
   (timestamp, sender), and a message becomes deliverable once every
   view member has been heard from at or beyond its timestamp (each
   sender's timestamps are strictly increasing, so nothing earlier can
   still arrive). Silent members acknowledge: upon seeing a timestamp
   above the last one it broadcast, a member multicasts an
   acknowledgment — at most one per message received, so ack cascades
   terminate.

   At a view change, Virtual Synchrony gives all transitional-set
   members the same delivered set of data and acks; the undeliverable
   remainder is flushed in (timestamp, sender) order, extending the
   total order consistently with no extra agreement — the same argument
   as for the sequencer variant, which is what makes [13]'s switching
   sound. *)

open Vsgc_types

type entry = { ts : int; sender : Proc.t; payload : string }

let entry_compare a b =
  match Int.compare a.ts b.ts with 0 -> Proc.compare a.sender b.sender | c -> c

type t = {
  me : Proc.t;
  view : View.t;
  lamport : int;  (* largest timestamp seen or used *)
  last_broadcast : int;  (* largest timestamp this process multicast *)
  heard : int Proc.Map.t;  (* largest timestamp heard per member, this view *)
  pending : entry list;  (* sorted by (ts, sender) *)
  total : entry list;  (* delivered total order, newest first *)
}

let create me =
  {
    me;
    view = View.initial me;
    lamport = 0;
    last_broadcast = 0;
    heard = Proc.Map.empty;
    pending = [];
    total = [];
  }

let me t = t.me
let total_order t = List.rev t.total

(* -- Wire encoding (inside opaque GCS payloads) -------------------------- *)

let encode_data ~ts payload = Fmt.str "T%d:%s" ts payload
let encode_ack ~ts = Fmt.str "A%d" ts

type decoded = Data of int * string | Ack of int | Other of string

let decode s =
  if String.length s = 0 then Other s
  else
    match s.[0] with
    | 'T' -> (
        match String.index_opt s ':' with
        | Some i -> (
            match int_of_string_opt (String.sub s 1 (i - 1)) with
            | Some ts -> Data (ts, String.sub s (i + 1) (String.length s - i - 1))
            | None -> Other s)
        | None -> Other s)
    | 'A' -> (
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some ts -> Ack ts
        | None -> Other s)
    | _ -> Other s

(* -- Deliverability -------------------------------------------------------- *)

(* Timestamps per sender are strictly increasing, so an entry (t, s) is
   safe once every member has been heard from at or beyond t: anything
   still in flight from them is later in the total order. *)
let deliverable t (e : entry) =
  Proc.Set.for_all
    (fun q -> Proc.Map.find_default ~default:0 q t.heard >= e.ts)
    (View.set t.view)

let rec drain t delivered =
  match t.pending with
  | e :: rest when deliverable t e ->
      drain { t with pending = rest; total = e :: t.total } (e :: delivered)
  | _ -> (t, List.rev delivered)

let insert_sorted e l =
  let rec go = function
    | x :: rest when entry_compare x e < 0 -> x :: go rest
    | rest -> e :: rest
  in
  go l

(* -- Events ------------------------------------------------------------------ *)

(* The broadcast discipline: every message this process multicasts —
   data or ack — carries a timestamp strictly larger than its previous
   one, assigned AT SEND TIME (assigning earlier would let a later ack
   overtake queued data and break the per-sender monotonicity the
   deliverability rule relies on). [heard.(me)] advances only at
   self-delivery, keeping the local total order aligned with the GCS's
   own delivery order. *)

(* Timestamp and encode a payload for sending now. *)
let stamp t payload =
  let ts = t.lamport + 1 in
  ({ t with lamport = ts; last_broadcast = ts }, encode_data ~ts payload)

(* An acknowledgment is due whenever this process has seen a timestamp
   above everything it has broadcast — i.e. peers may be waiting to
   hear from it. Sending data first supersedes the ack. *)
let ack_due t = t.lamport > t.last_broadcast
let ack_payload t = encode_ack ~ts:t.lamport
let ack_sent t = { t with last_broadcast = t.lamport }

(* A GCS delivery from [sender]. Returns the new state and the newly
   totally ordered entries. *)
let on_deliver t ~sender ~payload =
  let note ts t =
    { t with
      lamport = max t.lamport ts;
      heard =
        Proc.Map.add sender
          (max ts (Proc.Map.find_default ~default:0 sender t.heard))
          t.heard }
  in
  match decode payload with
  | Data (ts, body) ->
      let t = note ts t in
      let t = { t with pending = insert_sorted { ts; sender; payload = body } t.pending } in
      drain t []
  | Ack ts ->
      let t = note ts t in
      drain t []
  | Other _ -> (t, [])

(* A GCS view: flush the remainder deterministically (identical at all
   transitional-set members, by Virtual Synchrony). *)
let on_view t ~view ~transitional:_ =
  let flushed = List.sort entry_compare t.pending in
  ( { t with
      view;
      heard = Proc.Map.empty;
      (* re-announce in the new view: an ack becomes due immediately,
         seeding everyone's heard map for the fresh membership *)
      last_broadcast = 0;
      pending = [];
      total = List.rev_append flushed t.total },
    flushed )
