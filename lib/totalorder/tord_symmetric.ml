(* Symmetric (logical-timestamp) totally ordered multicast atop the
   within-view reliable FIFO service.

   The paper points at Chockler-Huleihel-Dolev [13] — an ADAPTIVE
   totally ordered protocol implemented "atop a service that satisfies
   the WV_RFIFO specification" — which switches between two orderings:
   the sequencer-based one ({!Tord_core}) and the symmetric one built
   here. Every message carries a Lamport timestamp; the total order is
   (timestamp, sender), and a message becomes deliverable once every
   view member has been heard from at or beyond its timestamp (each
   sender's timestamps are strictly increasing, so nothing earlier can
   still arrive). Silent members acknowledge: upon seeing a timestamp
   above the last one it broadcast, a member multicasts an
   acknowledgment — at most one per message received, so ack cascades
   terminate.

   At a view change, Virtual Synchrony gives all transitional-set
   members the same delivered set of data and acks; the undeliverable
   remainder is flushed in (timestamp, sender) order, extending the
   total order consistently with no extra agreement — the same argument
   as for the sequencer variant, which is what makes [13]'s switching
   sound. The member then announces the boundary with a Flush message
   (a fresh timestamp plus a digest of the flushed chunk): it seeds the
   new view's heard maps the way the old re-announcement ack did, and
   gives the Skeen trace monitor (DESIGN.md §16) cross-member evidence
   that all transitional-set members flushed identically.

   Traffic is binary on the wire: {!Vsgc_wire.Sym_msg} carried inside
   the GCS's opaque application payloads. *)

open Vsgc_types
module Sym_msg = Vsgc_wire.Sym_msg

type entry = { ts : int; sender : Proc.t; payload : string }

let entry_compare a b =
  match Int.compare a.ts b.ts with 0 -> Proc.compare a.sender b.sender | c -> c

type t = {
  me : Proc.t;
  view : View.t;
  lamport : int;  (* largest timestamp seen or used *)
  last_broadcast : int;  (* largest timestamp this process multicast *)
  heard : int Proc.Map.t;  (* largest timestamp heard per member, this view *)
  pending : entry list;  (* sorted by (ts, sender) *)
  total : entry list;  (* delivered total order, newest first *)
  count : int;  (* length of [total] *)
}

let create me =
  {
    me;
    view = View.initial me;
    lamport = 0;
    last_broadcast = 0;
    heard = Proc.Map.empty;
    pending = [];
    total = [];
    count = 0;
  }

let me t = t.me
let view t = t.view
let total_order t = List.rev t.total
let total_count t = t.count

(* The log suffix past index [k], oldest first — the KV service's
   stable-delivery cursor reads this (same contract as
   {!Tord_core.entries_from}). *)
let entries_from t k =
  if k >= t.count then []
  else
    let rec take n acc = function
      | e :: rest when n > 0 -> take (n - 1) (e :: acc) rest
      | _ -> acc
    in
    take (t.count - k) [] t.total

(* The flushed-chunk fingerprint a Flush message announces: position,
   timestamp, sender and payload of every flushed entry, digested. *)
let flush_digest entries =
  let buf = Buffer.create 64 in
  List.iteri
    (fun i (e : entry) ->
      Buffer.add_string buf
        (Fmt.str "%d:%d:%a:%d;" i e.ts Proc.pp e.sender (String.length e.payload));
      Buffer.add_string buf e.payload)
    entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* -- Deliverability -------------------------------------------------------- *)

(* Timestamps per sender are strictly increasing, so an entry (t, s) is
   safe once every member has been heard from at or beyond t: anything
   still in flight from them is later in the total order. *)
let deliverable t (e : entry) =
  Proc.Set.for_all
    (fun q -> Proc.Map.find_default ~default:0 q t.heard >= e.ts)
    (View.set t.view)

let rec drain t delivered =
  match t.pending with
  | e :: rest when deliverable t e ->
      drain
        { t with pending = rest; total = e :: t.total; count = t.count + 1 }
        (e :: delivered)
  | _ -> (t, List.rev delivered)

let insert_sorted e l =
  let rec go = function
    | x :: rest when entry_compare x e < 0 -> x :: go rest
    | rest -> e :: rest
  in
  go l

(* -- Events ------------------------------------------------------------------ *)

(* The broadcast discipline: every message this process multicasts —
   data, flush or ack — carries a timestamp at most (data, flush:
   strictly) greater than its previous one, assigned AT SEND TIME
   (assigning earlier would let a later ack overtake queued data and
   break the per-sender monotonicity the deliverability rule relies
   on). [heard.(me)] advances only at self-delivery, keeping the local
   total order aligned with the GCS's own delivery order. *)

(* Timestamp and encode a payload for sending now. *)
let stamp t payload =
  let ts = t.lamport + 1 in
  ( { t with lamport = ts; last_broadcast = ts },
    Sym_msg.to_payload (Sym_msg.Data { ts; body = payload }) )

(* An acknowledgment is due whenever this process has seen a timestamp
   above everything it has broadcast — i.e. peers may be waiting to
   hear from it. Sending data first supersedes the ack. *)
let ack_due t = t.lamport > t.last_broadcast
let ack_payload t = Sym_msg.to_payload (Sym_msg.Ack { ts = t.lamport })
let ack_sent t = { t with last_broadcast = t.lamport }

(* The view-change boundary announcement: a fresh timestamp (so the
   per-sender monotonicity is strict even across the boundary) plus the
   flushed-chunk digest. Counts as a broadcast — it supersedes the ack
   the old encoding's re-announcement provided. *)
let flush_stamp t ~digest =
  let ts = t.lamport + 1 in
  ( { t with lamport = ts; last_broadcast = ts },
    Sym_msg.to_payload (Sym_msg.Flush { ts; view = View.id t.view; digest }) )

(* A GCS delivery from [sender]. Returns the new state and the newly
   totally ordered entries. *)
let on_deliver t ~sender ~payload =
  let note ts t =
    { t with
      lamport = max t.lamport ts;
      heard =
        Proc.Map.add sender
          (max ts (Proc.Map.find_default ~default:0 sender t.heard))
          t.heard }
  in
  match Sym_msg.of_payload payload with
  | Ok (Sym_msg.Data { ts; body }) ->
      let t = note ts t in
      let t = { t with pending = insert_sorted { ts; sender; payload = body } t.pending } in
      drain t []
  | Ok (Sym_msg.Ack { ts }) | Ok (Sym_msg.Flush { ts; _ }) ->
      let t = note ts t in
      drain t []
  | Error _ -> (t, [])

(* A GCS view: flush the remainder deterministically (identical at all
   transitional-set members, by Virtual Synchrony). The caller owes a
   {!flush_stamp} broadcast in the new view — it re-seeds everyone's
   heard map for the fresh membership. *)
let on_view t ~view ~transitional:_ =
  let flushed = List.sort entry_compare t.pending in
  ( { t with
      view;
      heard = Proc.Map.empty;
      pending = [];
      total = List.rev_append flushed t.total;
      count = t.count + List.length flushed },
    flushed )
