(** The symmetric-total-order application component: the blocking-client
    shell (Figure 12) over {!Tord_symmetric}. Timestamps are assigned at
    actual send time; send priority is Flush (owed after every view
    change), then queued data, then the derived acknowledgment. Every
    append to the local total order is reported as a
    {!Vsgc_types.Action.Sym_deliver} output for the Skeen trace
    monitor. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  core : Tord_symmetric.t;
  me : Proc.t;
  block_status : block_status;
  to_send : string list;
  flush_due : string option;
  reports : (Proc.t * int * string) list;
  views : (View.t * Proc.Set.t) list;
  crashed : bool;
}

val initial : Proc.t -> t

val push : t ref -> string -> unit
(** Queue a payload for totally ordered multicast. *)

val total_order : t -> (Proc.t * string) list
val views : t -> (View.t * Proc.Set.t) list
val last_view : t -> (View.t * Proc.Set.t) option

val core : t -> Tord_symmetric.t
(** The ordering core — cursor access ({!Tord_symmetric.entries_from})
    for stable-delivery consumers. *)

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : Proc.t -> t Vsgc_ioa.Component.def
val component : Proc.t -> Vsgc_ioa.Component.packed * t ref
