(** The totally-ordered-multicast application component: plays the
    blocking-client role (Figure 12) toward a GCS end-point and exposes
    the total order built by {!Tord_core}. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  core : Tord_core.t;
  me : Proc.t;
  block_status : block_status;
  to_send : string list;  (** encoded data payloads, oldest first *)
  announce_queue : (Proc.t * int) list;
      (** unsent sequencer announcements, oldest first *)
  views : (View.t * Proc.Set.t) list;  (** newest first *)
  crashed : bool;
  batch_orders : bool;
      (** coalesce the announcement backlog into one multicast
          ({!Tord_core.encode_order_batch}) — identical total order,
          fewer wire messages *)
}

val initial : ?batch_orders:bool -> Proc.t -> t

val push : t ref -> string -> unit
(** Queue a payload for totally ordered multicast. *)

val total_order : t -> (Proc.t * string) list
(** (original sender, payload), oldest first. *)

val views : t -> (View.t * Proc.Set.t) list
val last_view : t -> (View.t * Proc.Set.t) option

val outputs : t -> Action.t list
val accepts : Proc.t -> Action.t -> bool
val apply : t -> Action.t -> t
val def : ?batch_orders:bool -> Proc.t -> t Vsgc_ioa.Component.def
val component : ?batch_orders:bool -> Proc.t -> Vsgc_ioa.Component.packed * t ref
