(* Totally ordered multicast atop the within-view reliable FIFO
   service — the construction the paper points to in §4.1.1 ("the
   totally ordered multicast algorithm of [13] is implemented atop a
   service that satisfies the WV_RFIFO specification").

   A fixed sequencer per view (the minimum member) assigns the total
   order: every process multicasts data messages through the GCS; the
   sequencer, as it delivers each data message, multicasts an order
   announcement naming (original sender, per-sender index). Because the
   announcements travel in the sequencer's own FIFO stream, every
   member receives them in the same order, and delivers data messages
   in exactly that order.

   At a view change, Virtual Synchrony guarantees that processes moving
   together have delivered the same set of data and announcement
   messages; the announced prefix is therefore identical, and the
   unannounced remainder is flushed in a deterministic (sender, index)
   order — so the total order extends consistently across views without
   any extra agreement round. This module is the pure core; see
   {!Tord_client} for the component and [vsgc_replication] for the
   replicated state machine built on top. *)

open Vsgc_types

type entry = { sender : Proc.t; index : int; payload : string }

type t = {
  me : Proc.t;
  view : View.t;
  sequencer : Proc.t;
  recv_count : int Proc.Map.t;  (* data messages delivered per sender, this view *)
  pending : entry list;  (* delivered data not yet totally ordered, oldest first *)
  order_queue : (Proc.t * int) list;  (* announcements not yet matched, oldest first *)
  total : entry list;  (* the totally ordered prefix, newest first *)
}

let create me =
  {
    me;
    view = View.initial me;
    sequencer = me;
    recv_count = Proc.Map.empty;
    pending = [];
    order_queue = [];
    total = [];
  }

let is_sequencer t = Proc.equal t.me t.sequencer
let view t = t.view
let total_order t = List.rev t.total

(* -- Wire encoding (within opaque GCS payloads) -------------------------- *)

let encode_data payload = "D" ^ payload

let encode_order ~sender ~index = Fmt.str "O%d:%d" (Proc.to_int sender) index

type decoded = Data of string | Order of Proc.t * int | Other of string

let decode s =
  if String.length s = 0 then Other s
  else
    match s.[0] with
    | 'D' -> Data (String.sub s 1 (String.length s - 1))
    | 'O' -> (
        match String.split_on_char ':' (String.sub s 1 (String.length s - 1)) with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some sender, Some index -> Order (Proc.of_int sender, index)
            | _ -> Other s)
        | _ -> Other s)
    | _ -> Other s

(* -- Matching announcements against pending data ------------------------- *)

let take_pending t sender index =
  let rec go acc = function
    | [] -> None
    | e :: rest when Proc.equal e.sender sender && e.index = index ->
        Some (e, List.rev_append acc rest)
    | e :: rest -> go (e :: acc) rest
  in
  go [] t.pending

(* Deliver every queued announcement whose data message has arrived. *)
let rec drain t delivered =
  match t.order_queue with
  | (sender, index) :: rest -> (
      match take_pending t sender index with
      | Some (e, pending) ->
          drain { t with pending; order_queue = rest; total = e :: t.total } (e :: delivered)
      | None -> (t, List.rev delivered))
  | [] -> (t, List.rev delivered)

(* -- Events --------------------------------------------------------------- *)

(* A data or order message delivered by the GCS from [sender]. Returns
   the new state, the data entries that just became totally ordered,
   and the announcements this process must multicast (non-empty only at
   the sequencer). *)
let on_deliver t ~sender ~payload =
  match decode payload with
  | Data body ->
      let index = Proc.Map.find_default ~default:0 sender t.recv_count + 1 in
      let e = { sender; index; payload = body } in
      let t =
        { t with
          recv_count = Proc.Map.add sender index t.recv_count;
          pending = t.pending @ [ e ] }
      in
      let announcements =
        if is_sequencer t then [ encode_order ~sender ~index ] else []
      in
      let t, newly = drain t [] in
      (t, newly, announcements)
  | Order (sender, index) ->
      let t = { t with order_queue = t.order_queue @ [ (sender, index) ] } in
      let t, newly = drain t [] in
      (t, newly, [])
  | Other _ -> (t, [], [])

(* A view delivered by the GCS. Virtual Synchrony makes the remaining
   pending set identical at all members of the transitional set, so the
   deterministic flush keeps their total orders equal. Returns the
   flushed entries (delivered at the boundary, before the new view's
   traffic). *)
let on_view t ~view ~transitional:_ =
  let flushed =
    List.sort
      (fun a b ->
        match Proc.compare a.sender b.sender with
        | 0 -> Int.compare a.index b.index
        | c -> c)
      t.pending
  in
  let t =
    {
      t with
      view;
      sequencer =
        (match Proc.Set.min_elt_opt (View.set view) with Some s -> s | None -> t.me);
      recv_count = Proc.Map.empty;
      pending = [];
      order_queue = [];
      total = List.rev_append flushed t.total;
    }
  in
  (t, flushed)
