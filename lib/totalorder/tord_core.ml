(* Totally ordered multicast atop the within-view reliable FIFO
   service — the construction the paper points to in §4.1.1 ("the
   totally ordered multicast algorithm of [13] is implemented atop a
   service that satisfies the WV_RFIFO specification").

   A fixed sequencer per view (the minimum member) assigns the total
   order: every process multicasts data messages through the GCS; the
   sequencer, as it delivers each data message, multicasts an order
   announcement naming (original sender, per-sender index). Because the
   announcements travel in the sequencer's own FIFO stream, every
   member receives them in the same order, and delivers data messages
   in exactly that order.

   At a view change, Virtual Synchrony guarantees that processes moving
   together have delivered the same set of data and announcement
   messages; the announced prefix is therefore identical, and the
   unannounced remainder is flushed in a deterministic (sender, index)
   order — so the total order extends consistently across views without
   any extra agreement round. This module is the pure core; see
   {!Tord_client} for the component and [vsgc_replication] for the
   replicated state machine built on top. *)

open Vsgc_types

type entry = { sender : Proc.t; index : int; payload : string }

type t = {
  me : Proc.t;
  view : View.t;
  sequencer : Proc.t;
  recv_count : int Proc.Map.t;  (* data messages delivered per sender, this view *)
  pending : entry list;  (* delivered data not yet totally ordered, oldest first *)
  order_queue : (Proc.t * int) list;  (* announcements not yet matched, oldest first *)
  total : entry list;  (* the totally ordered prefix, newest first *)
  count : int;  (* length of [total], maintained incrementally *)
}

let create me =
  {
    me;
    view = View.initial me;
    sequencer = me;
    recv_count = Proc.Map.empty;
    pending = [];
    order_queue = [];
    total = [];
    count = 0;
  }

let is_sequencer t = Proc.equal t.me t.sequencer
let view t = t.view
let total_order t = List.rev t.total
let total_count t = t.count

(* The ordered suffix starting at global position [k] (0-based), oldest
   first — the cursor read the KV service layers its incremental store
   on. A cursor beyond the log (a reborn core) reads as empty. *)
let entries_from t k =
  if k >= t.count then []
  else
    let rec take n acc = function
      | e :: rest when n > 0 -> take (n - 1) (e :: acc) rest
      | _ -> acc
    in
    take (t.count - k) [] t.total

(* -- Wire encoding (within opaque GCS payloads) -------------------------- *)

let encode_data payload = "D" ^ payload

let encode_order ~sender ~index = Fmt.str "O%d:%d" (Proc.to_int sender) index

(* A batch of announcements in one payload — the sequencer's whole
   backlog coalesced into a single multicast (DESIGN.md §15). The pairs
   keep their announcement order, so delivering a batch is exactly
   delivering its members back to back. *)
let encode_order_batch pairs =
  "B"
  ^ String.concat ";"
      (List.map (fun (s, i) -> Fmt.str "%d:%d" (Proc.to_int s) i) pairs)

type decoded =
  | Data of string
  | Order of Proc.t * int
  | Order_batch of (Proc.t * int) list
  | Other of string

let parse_pair part =
  match String.split_on_char ':' part with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some sender, Some index -> Some (Proc.of_int sender, index)
      | _ -> None)
  | _ -> None

let decode s =
  if String.length s = 0 then Other s
  else
    match s.[0] with
    | 'D' -> Data (String.sub s 1 (String.length s - 1))
    | 'O' -> (
        match parse_pair (String.sub s 1 (String.length s - 1)) with
        | Some (sender, index) -> Order (sender, index)
        | None -> Other s)
    | 'B' -> (
        let body = String.sub s 1 (String.length s - 1) in
        if body = "" then Other s
        else
          let parts = String.split_on_char ';' body in
          let pairs = List.filter_map parse_pair parts in
          if List.length pairs = List.length parts then Order_batch pairs
          else Other s)
    | _ -> Other s

(* -- Matching announcements against pending data ------------------------- *)

let take_pending t sender index =
  let rec go acc = function
    | [] -> None
    | e :: rest when Proc.equal e.sender sender && e.index = index ->
        Some (e, List.rev_append acc rest)
    | e :: rest -> go (e :: acc) rest
  in
  go [] t.pending

(* Deliver every queued announcement whose data message has arrived. *)
let rec drain t delivered =
  match t.order_queue with
  | (sender, index) :: rest -> (
      match take_pending t sender index with
      | Some (e, pending) ->
          drain
            { t with
              pending;
              order_queue = rest;
              total = e :: t.total;
              count = t.count + 1 }
            (e :: delivered)
      | None -> (t, List.rev delivered))
  | [] -> (t, List.rev delivered)

(* -- Events --------------------------------------------------------------- *)

(* A data or order message delivered by the GCS from [sender]. Returns
   the new state, the data entries that just became totally ordered,
   and the announcement pairs this process must multicast (non-empty
   only at the sequencer; the client layer picks the single or batched
   encoding). *)
let on_deliver t ~sender ~payload =
  match decode payload with
  | Data body ->
      let index = Proc.Map.find_default ~default:0 sender t.recv_count + 1 in
      let e = { sender; index; payload = body } in
      let t =
        { t with
          recv_count = Proc.Map.add sender index t.recv_count;
          pending = t.pending @ [ e ] }
      in
      let announcements = if is_sequencer t then [ (sender, index) ] else [] in
      let t, newly = drain t [] in
      (t, newly, announcements)
  | Order (sender, index) ->
      let t = { t with order_queue = t.order_queue @ [ (sender, index) ] } in
      let t, newly = drain t [] in
      (t, newly, [])
  | Order_batch pairs ->
      let t = { t with order_queue = t.order_queue @ pairs } in
      let t, newly = drain t [] in
      (t, newly, [])
  | Other _ -> (t, [], [])

(* A view delivered by the GCS. Virtual Synchrony makes the remaining
   pending set identical at all members of the transitional set, so the
   deterministic flush keeps their total orders equal. Returns the
   flushed entries (delivered at the boundary, before the new view's
   traffic). *)
let on_view t ~view ~transitional:_ =
  let flushed =
    List.sort
      (fun a b ->
        match Proc.compare a.sender b.sender with
        | 0 -> Int.compare a.index b.index
        | c -> c)
      t.pending
  in
  let t =
    {
      t with
      view;
      sequencer =
        (match Proc.Set.min_elt_opt (View.set view) with Some s -> s | None -> t.me);
      recv_count = Proc.Map.empty;
      pending = [];
      order_queue = [];
      total = List.rev_append flushed t.total;
      count = t.count + List.length flushed;
    }
  in
  (t, flushed)
