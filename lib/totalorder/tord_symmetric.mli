(** Symmetric (logical-timestamp) totally ordered multicast atop the
    within-view reliable FIFO service — the other endpoint of the
    adaptive protocol of [13] that the paper cites (§4.1.1), next to
    the sequencer-based {!Tord_core}.

    The total order is (Lamport timestamp, sender); an entry delivers
    once every view member has been heard at or beyond its timestamp
    (per-sender timestamps are strictly increasing, so nothing earlier
    can still arrive). Silent members owe acknowledgments; at a view
    change the undeliverable remainder flushes in (timestamp, sender)
    order, identical at all transitional-set members by Virtual
    Synchrony. *)

open Vsgc_types

type entry = { ts : int; sender : Proc.t; payload : string }

val entry_compare : entry -> entry -> int
(** The total order: (timestamp, sender), lexicographic. *)

type t

val create : Proc.t -> t
val me : t -> Proc.t

val total_order : t -> entry list
(** The delivered totally ordered prefix, oldest first. *)

(** {1 Wire encoding (inside opaque GCS payloads)} *)

val encode_data : ts:int -> string -> string
val encode_ack : ts:int -> string

type decoded = Data of int * string | Ack of int | Other of string

val decode : string -> decoded

(** {1 Events} *)

val stamp : t -> string -> t * string
(** Timestamp and encode a payload for sending NOW — broadcast
    timestamps must increase in wire order, so stamping must coincide
    with the actual send. *)

val ack_due : t -> bool
(** Peers may be waiting to hear from this process (it has seen a
    timestamp above everything it broadcast). Queued data supersedes
    the acknowledgment. *)

val ack_payload : t -> string
val ack_sent : t -> t

val on_deliver : t -> sender:Proc.t -> payload:string -> t * entry list
(** A GCS delivery; returns the newly totally ordered entries. *)

val on_view : t -> view:View.t -> transitional:Proc.Set.t -> t * entry list
(** A GCS view: flush the remainder deterministically. *)
