(** Symmetric (logical-timestamp) totally ordered multicast atop the
    within-view reliable FIFO service — the other endpoint of the
    adaptive protocol of [13] that the paper cites (§4.1.1), next to
    the sequencer-based {!Tord_core}.

    The total order is (Lamport timestamp, sender); an entry delivers
    once every view member has been heard at or beyond its timestamp
    (per-sender timestamps are strictly increasing, so nothing earlier
    can still arrive). Silent members owe acknowledgments; at a view
    change the undeliverable remainder flushes in (timestamp, sender)
    order, identical at all transitional-set members by Virtual
    Synchrony, and every member then announces the boundary with a
    {!Vsgc_wire.Sym_msg.Flush} broadcast ({!flush_stamp}).

    Traffic is binary: {!Vsgc_wire.Sym_msg} inside opaque GCS
    application payloads. *)

open Vsgc_types

type entry = { ts : int; sender : Proc.t; payload : string }

val entry_compare : entry -> entry -> int
(** The total order: (timestamp, sender), lexicographic. *)

type t

val create : Proc.t -> t
val me : t -> Proc.t

val view : t -> View.t
(** The current view (whose id a {!flush_stamp} announces). *)

val total_order : t -> entry list
(** The delivered totally ordered prefix, oldest first. *)

val total_count : t -> int
(** Length of {!total_order} without materialising it. *)

val entries_from : t -> int -> entry list
(** [entries_from t k] is the suffix of the total order past index
    [k], oldest first — the stable-delivery cursor contract of
    {!Tord_core.entries_from}. *)

val flush_digest : entry list -> string
(** Fingerprint of a flushed chunk (position, timestamp, sender and
    payload of every entry) — what a Flush message announces so the
    Skeen monitor can compare transitional-set members. *)

(** {1 Events}

    Broadcast timestamps must increase in wire order, so stamping
    coincides with the actual send: both {!stamp} and {!flush_stamp}
    are called at the moment the message goes out. *)

val stamp : t -> string -> t * string
(** Timestamp and encode a data payload for sending NOW. *)

val ack_due : t -> bool
(** Peers may be waiting to hear from this process (it has seen a
    timestamp above everything it broadcast). Queued data and owed
    flushes supersede the acknowledgment. *)

val ack_payload : t -> string
val ack_sent : t -> t

val flush_stamp : t -> digest:string -> t * string
(** Encode the view-change boundary announcement: a Flush carrying a
    fresh timestamp, the current view id and the flushed-chunk
    [digest]. Counts as a broadcast (it seeds the new view's heard
    maps). *)

val on_deliver : t -> sender:Proc.t -> payload:string -> t * entry list
(** A GCS delivery; returns the newly totally ordered entries. *)

val on_view : t -> view:View.t -> transitional:Proc.Set.t -> t * entry list
(** A GCS view: flush the remainder deterministically. The caller owes
    a {!flush_stamp} broadcast in the new view. *)
