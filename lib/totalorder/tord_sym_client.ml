(* The symmetric-total-order application component: the same
   blocking-client shell as {!Tord_client}, over {!Tord_symmetric}.

   Timestamps are assigned at the moment a message is actually sent
   (the output and its effect recompute the same deterministic stamp
   from the same state), so this process's broadcast timestamps are
   strictly increasing on the wire. Send priority is Flush (owed after
   every view change), then queued data, then the derived
   acknowledgment — each class supersedes the ones after it.

   Every append to the local total order is reported as a
   {!Action.Sym_deliver} output: the queue head is exposed, the effect
   pops it. The reports carry no protocol state — they exist so the
   Skeen trace monitor (and the socket harness) can observe
   implementation deliveries and check them against the specification's
   deliverability condition. *)

open Vsgc_types

type block_status = Unblocked | Requested | Blocked

type t = {
  core : Tord_symmetric.t;
  me : Proc.t;
  block_status : block_status;
  to_send : string list;  (* raw payloads, oldest first *)
  flush_due : string option;  (* flushed-chunk digest owed as a Flush *)
  reports : (Proc.t * int * string) list;  (* Sym_deliver queue, oldest first *)
  views : (View.t * Proc.Set.t) list;  (* newest first *)
  crashed : bool;
}

let initial me =
  {
    core = Tord_symmetric.create me;
    me;
    block_status = Unblocked;
    to_send = [];
    flush_due = None;
    reports = [];
    views = [];
    crashed = false;
  }

let push (r : t ref) payload = r := { !r with to_send = !r.to_send @ [ payload ] }

let total_order t =
  List.map
    (fun (e : Tord_symmetric.entry) -> (e.Tord_symmetric.sender, e.Tord_symmetric.payload))
    (Tord_symmetric.total_order t.core)

let views t = List.rev t.views
let last_view t = match t.views with [] -> None | v :: _ -> Some v
let core t = t.core

let report_of (e : Tord_symmetric.entry) =
  (e.Tord_symmetric.sender, e.Tord_symmetric.ts, e.Tord_symmetric.payload)

(* The next wire payload, recomputed identically by outputs and apply:
   an owed flush supersedes data, data supersedes the ack. *)
let next_send t =
  match t.flush_due with
  | Some digest -> Some (snd (Tord_symmetric.flush_stamp t.core ~digest))
  | None -> (
      match t.to_send with
      | payload :: _ -> Some (snd (Tord_symmetric.stamp t.core payload))
      | [] ->
          if Tord_symmetric.ack_due t.core then Some (Tord_symmetric.ack_payload t.core)
          else None)

let outputs t =
  if t.crashed then []
  else
    let acc = if t.block_status = Requested then [ Action.Block_ok t.me ] else [] in
    let acc =
      match t.reports with
      | (sender, ts, payload) :: _ -> Action.Sym_deliver (t.me, sender, ts, payload) :: acc
      | [] -> acc
    in
    match next_send t with
    | Some s when t.block_status <> Blocked ->
        Action.App_send (t.me, Msg.App_msg.make s) :: acc
    | _ -> acc

let accepts me (a : Action.t) =
  match a with
  | Action.App_deliver (p, _, _) | Action.App_view (p, _, _) | Action.Block p
  | Action.Crash p | Action.Recover p -> Proc.equal p me
  | _ -> false

let apply t (a : Action.t) =
  if t.crashed then
    match a with Action.Recover p when Proc.equal p t.me -> initial t.me | _ -> t
  else
    match a with
    | Action.App_send (_, _) -> (
        match t.flush_due with
        | Some digest ->
            let core, _ = Tord_symmetric.flush_stamp t.core ~digest in
            { t with core; flush_due = None }
        | None -> (
            match t.to_send with
            | payload :: rest ->
                let core, _ = Tord_symmetric.stamp t.core payload in
                { t with core; to_send = rest }
            | [] ->
                if Tord_symmetric.ack_due t.core then
                  { t with core = Tord_symmetric.ack_sent t.core }
                else t))
    | Action.Sym_deliver _ -> (
        match t.reports with [] -> t | _ :: rest -> { t with reports = rest })
    | Action.Block_ok _ -> { t with block_status = Blocked }
    | Action.Block _ -> { t with block_status = Requested }
    | Action.App_deliver (_, q, m) ->
        let core, newly =
          Tord_symmetric.on_deliver t.core ~sender:q ~payload:(Msg.App_msg.payload m)
        in
        { t with core; reports = t.reports @ List.map report_of newly }
    | Action.App_view (_, v, tset) ->
        let core, flushed = Tord_symmetric.on_view t.core ~view:v ~transitional:tset in
        { t with
          core;
          flush_due = Some (Tord_symmetric.flush_digest flushed);
          reports = t.reports @ List.map report_of flushed;
          views = (v, tset) :: t.views;
          block_status = Unblocked }
    | Action.Crash _ -> { t with crashed = true }
    | _ -> t

(* Client-role component: everything is co-located at me. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.App_deliver (p, _, _)
  | Action.App_view (p, _, _) | Action.Block p | Action.Crash p | Action.Recover p
  | Action.Sym_deliver (p, _, _, _)
    when Proc.equal p me -> rw [ Proc_state me ]
  | _ -> empty

let emits me (a : Action.t) =
  match a with
  | Action.App_send (p, _) | Action.Block_ok p | Action.Sym_deliver (p, _, _, _) ->
      Proc.equal p me
  | _ -> false

let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Proc_state me, Vsgc_ioa.Component.digest st) ]

let def me : t Vsgc_ioa.Component.def =
  {
    name = Fmt.str "tord_sym_%a" Proc.pp me;
    init = initial me;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits me;
    observe = observe me;
  }

let component me =
  let d = def me in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
