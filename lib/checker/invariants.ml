(* Executable renderings of the paper's proof obligations.

   Each function checks one invariant of §6/§7 on a snapshot of the
   composed system's global state (the end-point states, the CO_RFIFO
   channels, and the membership bookkeeping). The test harness runs
   them after every step of randomized executions, which is this
   reproduction's analogue of the paper's inductive proofs: the
   invariants must hold in every reachable state we ever visit.

   Invariants that quantify over crashed end-points are vacuous for
   them (§8: "all the invariants still hold whenever crashed_p is
   false"). *)

open Vsgc_types
module Endpoint = Vsgc_core.Endpoint
module Wv = Vsgc_core.Wv_rfifo
module Vs = Vsgc_core.Vs_rfifo_ts
module Gcs = Vsgc_core.Gcs
module Client = Vsgc_core.Client

exception Invariant_violation of { name : string; message : string }

let fail name fmt =
  Fmt.kstr (fun message -> raise (Invariant_violation { name; message })) fmt

let checkf name cond fmt = if cond then Fmt.kstr ignore fmt else fail name fmt

type snapshot = {
  endpoints : Endpoint.t Proc.Map.t;  (* live (non-crashed) end-point states *)
  clients : Client.t Proc.Map.t;
  net : Vsgc_corfifo.state;
  mbrshp : Vsgc_mbrshp.Oracle.state option;
  reborn : Proc.Set.t;
      (* processes that crashed at least once: their pre-crash queues
         are gone (§8, no stable storage), so sender-side checks about
         their old messages are vacuous *)
}

let wv_of e = Endpoint.wv e
let vs_of e = Endpoint.vs e

(* Invariant 6.1: self inclusion of both view variables. *)
let inv_6_1 s =
  Proc.Map.iter
    (fun p e ->
      let w = wv_of e in
      checkf "6.1" (View.mem p w.Wv.current_view)
        "%a not a member of its current_view %a" Proc.pp p View.pp w.Wv.current_view;
      checkf "6.1" (View.mem p w.Wv.mbrshp_view)
        "%a not a member of its mbrshp_view %a" Proc.pp p View.pp w.Wv.mbrshp_view)
    s.endpoints

(* Invariant 6.2: once the view_msg for the current view is out, the
   reliable set covers the current members. *)
let inv_6_2 s =
  Proc.Map.iter
    (fun p e ->
      let w = wv_of e in
      if View.equal w.Wv.current_view (Wv.view_msg_of w p) then
        checkf "6.2"
          (Proc.Set.subset (View.set w.Wv.current_view) w.Wv.reliable_set)
          "%a sent view_msg but reliable_set %a misses members of %a" Proc.pp p
          Proc.Set.pp w.Wv.reliable_set View.pp w.Wv.current_view)
    s.endpoints

(* Invariant 6.3: the stream of view markers from p to q — q's recorded
   view_msg[p] followed by the view_msgs in transit — is strictly
   increasing; p's current view bounds it per parts 2 and 3. *)
let inv_6_3 s =
  Proc.Map.iter
    (fun p e ->
      let wp = wv_of e in
      Proc.Map.iter
        (fun q e_q ->
          (* §8: either side having crashed wipes one end of the
             stream bookkeeping; the invariant is stated for pairs
             whose records are intact *)
          if (not (Proc.equal p q))
             && (not (Proc.Set.mem p s.reborn))
             && not (Proc.Set.mem q s.reborn)
          then begin
            let wq = wv_of e_q in
            let in_transit =
              List.filter_map
                (function Msg.Wire.View_msg v -> Some v | _ -> None)
                (Vsgc_corfifo.channel_contents s.net p q)
            in
            let seq = Wv.view_msg_of wq p :: in_transit in
            let rec strictly_mono = function
              | a :: (b :: _ as rest) ->
                  checkf "6.3.1"
                    (View.Id.lt (View.id a) (View.id b))
                    "view_msg stream %a->%a not monotone: %a then %a" Proc.pp p
                    Proc.pp q View.Id.pp (View.id a) View.Id.pp (View.id b);
                  strictly_mono rest
              | _ -> ()
            in
            strictly_mono seq;
            let last = List.nth seq (List.length seq - 1) in
            if not (View.equal wp.Wv.current_view (Wv.view_msg_of wp p)) then
              checkf "6.3.2"
                (View.Id.lt (View.id last) (View.id wp.Wv.current_view))
                "%a has not announced %a yet but the stream to %a already reaches %a"
                Proc.pp p View.Id.pp (View.id wp.Wv.current_view) Proc.pp q
                View.Id.pp (View.id last)
            else if View.mem q wp.Wv.current_view then
              checkf "6.3.3" (View.equal last wp.Wv.current_view)
                "%a announced %a but the stream to member %a ends at %a" Proc.pp p
                View.Id.pp (View.id wp.Wv.current_view) Proc.pp q View.Id.pp
                (View.id last)
          end)
        s.endpoints)
    s.endpoints

(* Invariants 6.4-6.6 (condensed, without explicit history variables):
   walking each channel and associating every application message with
   the view of the closest preceding view marker (or the receiver's
   recorded one) and with its FIFO index, the message equals the entry
   at that position of the sender's own queue; and anything already
   filed at a receiver matches the sender's queue. *)
let inv_6_6 s =
  (* parts 1 & 2: messages in transit *)
  Proc.Map.iter
    (fun p e_p ->
      let wp = wv_of e_p in
      Proc.Map.iter
        (fun q e_q ->
          if (not (Proc.equal p q))
             && (not (Proc.Set.mem p s.reborn))
             && not (Proc.Set.mem q s.reborn)
          then begin
            let wq = wv_of e_q in
            let hv = ref (Wv.view_msg_of wq p) in
            let hi = ref (Wv.last_rcvd wq p) in
            List.iter
              (fun (w : Msg.Wire.t) ->
                match w with
                | Msg.Wire.View_msg v ->
                    hv := v;
                    hi := 0
                | Msg.Wire.App m -> (
                    incr hi;
                    match Wv.msgs_get wp p !hv !hi with
                    | Some m' when Msg.App_msg.equal m m' -> ()
                    | Some m' ->
                        fail "6.6.1"
                          "in-transit %a->%a message %a at (%a,%d) mismatches sender queue %a"
                          Proc.pp p Proc.pp q Msg.App_msg.pp m View.Id.pp
                          (View.id !hv) !hi Msg.App_msg.pp m'
                    | None ->
                        fail "6.6.1"
                          "in-transit %a->%a message %a at (%a,%d) absent from sender queue"
                          Proc.pp p Proc.pp q Msg.App_msg.pp m View.Id.pp
                          (View.id !hv) !hi)
                | Msg.Wire.Fwd { origin; view; index; msg } -> (
                    match
                      (if Proc.Set.mem origin s.reborn then None
                       else Proc.Map.find_opt origin s.endpoints)
                    with
                    | None -> ()  (* origin crashed: its queue is gone *)
                    | Some e_o -> (
                        match Wv.msgs_get (wv_of e_o) origin view index with
                        | Some m' ->
                            checkf "6.6.2" (Msg.App_msg.equal msg m')
                              "forwarded copy of (%a,%a,%d) differs from origin's queue"
                              Proc.pp origin View.Id.pp (View.id view) index
                        | None -> ()))
                | Msg.Wire.Sync _ | Msg.Wire.Sync_batch _ | Msg.Wire.Bsync _ -> ())
              (Vsgc_corfifo.channel_contents s.net p q)
          end)
        s.endpoints)
    s.endpoints;
  (* part 3: anything filed at any receiver matches the sender's queue.
     A receiver that has crashed and recovered may hold peers' later
     messages misfiled under their default initial views (the stream
     markers were lost with the crash); such entries are never
     deliverable, so the check is vacuous for reborn receivers (§8). *)
  Proc.Map.iter
    (fun q e_q ->
      if Proc.Set.mem q s.reborn then ()
      else
      let wq = wv_of e_q in
      Proc.Map.iter
        (fun p per_view ->
          match
            (if Proc.Set.mem p s.reborn then None else Proc.Map.find_opt p s.endpoints)
          with
          | None -> ()
          | Some e_p ->
              let wp = wv_of e_p in
              View.Map.iter
                (fun v qmap ->
                  Wv.Int_map.iter
                    (fun i m ->
                      match Wv.msgs_get wp p v i with
                      | Some m' ->
                          checkf "6.6.3" (Msg.App_msg.equal m m')
                            "receiver's msgs[%a][%a][%d] differs from sender's"
                            Proc.pp p View.Id.pp (View.id v) i
                      | None ->
                          fail "6.6.3"
                            "receiver holds msgs[%a][%a][%d] the sender never sent"
                            Proc.pp p View.Id.pp (View.id v) i)
                    qmap)
                per_view)
        wq.Wv.msgs)
    s.endpoints

(* Invariant 6.7: a received synchronization message equals the
   sender's own record of it. *)
let inv_6_7 s =
  Proc.Map.iter
    (fun q e_q ->
      Proc.Map.iter
        (fun p per_cid ->
          if (not (Proc.equal p q)) && not (Proc.Set.mem p s.reborn) then
            match Proc.Map.find_opt p s.endpoints with
            | None -> ()
            | Some e_p ->
                Vs.Sc_map.iter
                  (fun cid (sm : Vs.sync) ->
                    (* §5.2.4 markers are recorded by the sender only as
                       a flag; their shape is fixed *)
                    let is_marker =
                      Vs.Sc_set.mem cid (vs_of e_p).Vs.marker_sent
                      && View.equal sm.Vs.view (View.initial p)
                      && Msg.Cut.equal sm.Vs.cut Msg.Cut.empty
                    in
                    if not is_marker then
                      match Vs.sync_msg (vs_of e_p) p cid with
                      | Some own ->
                          checkf "6.7"
                            (View.equal own.Vs.view sm.Vs.view
                            && Msg.Cut.equal own.Vs.cut sm.Vs.cut)
                            "%a's copy of %a's sync_msg[%a] differs from the original"
                            Proc.pp q Proc.pp p View.Sc_id.pp cid
                      | None ->
                          fail "6.7" "%a holds a sync_msg %a never recorded sending (cid %a)"
                            Proc.pp q Proc.pp p View.Sc_id.pp cid)
                  per_cid)
        (vs_of e_q).Vs.sync_msgs)
    s.endpoints

(* Invariant 6.8: no end-point has a sync_msg tagged above the last
   start_change identifier the membership issued to it. *)
let inv_6_8 s =
  match s.mbrshp with
  | None -> ()
  | Some oracle ->
      Proc.Map.iter
        (fun p e ->
          let last = (Vsgc_mbrshp.Oracle.pst oracle p).Vsgc_mbrshp.Oracle.last_cid in
          match Proc.Map.find_opt p (vs_of e).Vs.sync_msgs with
          | None -> ()
          | Some per_cid ->
              Vs.Sc_map.iter
                (fun cid _ ->
                  checkf "6.8"
                    (View.Sc_id.compare cid last <= 0)
                    "%a recorded own sync_msg for future start_change %a (last issued %a)"
                    Proc.pp p View.Sc_id.pp cid View.Sc_id.pp last)
                per_cid)
        s.endpoints

(* Invariant 6.9: the own pending sync message was sent in the current view. *)
let inv_6_9 s =
  Proc.Map.iter
    (fun p e ->
      let v = vs_of e in
      match Vs.own_sync v with
      | Some own ->
          checkf "6.9"
            (View.equal own.Vs.view (wv_of e).Wv.current_view)
            "%a's own sync view %a is not its current view %a" Proc.pp p View.Id.pp
            (View.id own.Vs.view) View.Id.pp (View.id (wv_of e).Wv.current_view)
      | None -> ())
    s.endpoints

(* Invariant 6.11: end-point and client agree on the blocking status. *)
let inv_6_11 s =
  Proc.Map.iter
    (fun p e ->
      match Proc.Map.find_opt p s.clients with
      | None -> ()
      | Some c ->
          let g = Endpoint.gcs e in
          let same =
            match (g.Gcs.block_status, c.Client.block_status) with
            | Gcs.Unblocked, Client.Unblocked
            | Gcs.Requested, Client.Requested
            | Gcs.Blocked, Client.Blocked -> true
            | _ -> false
          in
          checkf "6.11" same "%a: end-point and client disagree on block status"
            Proc.pp p)
    s.endpoints

(* Invariant 6.12: before the application is blocked, no sync message
   for the pending start_change has been sent. *)
let inv_6_12 s =
  Proc.Map.iter
    (fun p e ->
      let g = Endpoint.gcs e in
      match (vs_of e).Vs.start_change with
      | Some (cid, _) when g.Gcs.block_status <> Gcs.Blocked ->
          checkf "6.12"
            (Vs.sync_msg (vs_of e) p cid = None)
            "%a sent its sync_msg for %a while not blocked" Proc.pp p
            View.Sc_id.pp cid
      | _ -> ())
    s.endpoints

(* Invariant 6.13: the own cut commits to every own message of the
   current view (Self Delivery's key lemma). *)
let inv_6_13 s =
  Proc.Map.iter
    (fun p e ->
      match Vs.own_sync (vs_of e) with
      | Some own ->
          let w = wv_of e in
          checkf "6.13"
            (Msg.Cut.get own.Vs.cut p = Wv.last_index w p w.Wv.current_view)
            "%a's own cut %d misses own messages (have %d)" Proc.pp p
            (Msg.Cut.get own.Vs.cut p)
            (Wv.last_index w p w.Wv.current_view)
      | None -> ())
    s.endpoints

(* Invariant 7.1: deliveries never exceed the committed cuts once the
   own sync message is out. *)
let inv_7_1 s =
  Proc.Map.iter
    (fun p e ->
      let v = vs_of e in
      let w = wv_of e in
      match (v.Vs.start_change, Vs.own_sync v) with
      | Some (cid, _), Some own ->
          let mb = w.Wv.mbrshp_view in
          let bound q =
            let use_mb =
              View.mem p mb && View.Sc_id.equal (View.start_id mb p) cid
            in
            if not use_mb then Msg.Cut.get own.Vs.cut q
            else
              let cuts =
                Proc.Set.fold
                  (fun r acc ->
                    match Vs.sync_msg v r (View.start_id mb r) with
                    | Some sm when View.equal sm.Vs.view w.Wv.current_view ->
                        sm.Vs.cut :: acc
                    | _ -> acc)
                  (Proc.Set.inter (View.set mb) (View.set w.Wv.current_view))
                  []
              in
              Msg.Cut.max_over cuts q
          in
          Proc.Set.iter
            (fun q ->
              checkf "7.1"
                (Wv.last_dlvrd w q <= bound q)
                "%a delivered %d messages from %a, beyond the committed cut %d"
                Proc.pp p (Wv.last_dlvrd w q) Proc.pp q (bound q))
            (View.set w.Wv.current_view)
      | _ -> ())
    s.endpoints

(* Invariant 7.2: cuts refer to messages actually buffered. *)
let inv_7_2 s =
  Proc.Map.iter
    (fun p e ->
      match Vs.own_sync (vs_of e) with
      | Some own ->
          let w = wv_of e in
          Proc.Set.iter
            (fun q ->
              let k = Msg.Cut.get own.Vs.cut q in
              for i = 1 to k do
                checkf "7.2"
                  (Wv.msgs_get w q w.Wv.current_view i <> None)
                  "%a's cut commits to msgs[%a][%a][%d] which it does not hold"
                  Proc.pp p Proc.pp q View.Id.pp (View.id w.Wv.current_view) i
              done)
            (View.set w.Wv.current_view)
      | None -> ())
    s.endpoints

(* Self-stabilization (DESIGN.md §13): every live automaton passes its
   own local legitimacy guards. Reachable states always do — the guard
   battery is a strict subset of the global invariants — so a failure
   here means corrupted state survived the harness's detect-and-rejoin
   scan: the "silent divergence" the self-checks exist to prevent. *)
let inv_self s =
  Proc.Map.iter
    (fun p e ->
      match Endpoint.self_check e with
      | Some reason -> fail "self" "%a: undetected corrupt state: %s" Proc.pp p reason
      | None -> ())
    s.endpoints

let all =
  [
    ("6.1", inv_6_1);
    ("6.2", inv_6_2);
    ("6.3", inv_6_3);
    ("6.6", inv_6_6);
    ("6.7", inv_6_7);
    ("6.8", inv_6_8);
    ("6.9", inv_6_9);
    ("6.11", inv_6_11);
    ("6.12", inv_6_12);
    ("6.13", inv_6_13);
    ("7.1", inv_7_1);
    ("7.2", inv_7_2);
    (* last: overlapping corruptions classify under the historical
       names above; "self" only fires for corruption no global
       invariant describes (e.g. counter wraparound) *)
    ("self", inv_self);
  ]

let check_all snapshot = List.iter (fun (_, f) -> f snapshot) all
