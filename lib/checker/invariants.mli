(** Executable renderings of the paper's proof obligations.

    Each function checks one invariant of §6/§7 on a snapshot of the
    composed system's global state. The harness runs them after every
    step of randomized executions — the dynamic analogue of the paper's
    inductive proofs: the invariants must hold in every reachable state
    visited.

    Crash/recovery (§8): invariants are vacuous for crashed end-points;
    checks that reference state wiped by a restart (stream bookkeeping,
    buffered queues, recorded synchronization messages) are skipped for
    processes that have ever crashed — the paper itself notes that the
    formal treatment needs history variables "beyond the scope". *)

open Vsgc_types

exception Invariant_violation of { name : string; message : string }

type snapshot = {
  endpoints : Vsgc_core.Endpoint.t Proc.Map.t;
      (** live (non-crashed) end-point states *)
  clients : Vsgc_core.Client.t Proc.Map.t;
  net : Vsgc_corfifo.state;
  mbrshp : Vsgc_mbrshp.Oracle.state option;
  reborn : Proc.Set.t;  (** processes that crashed at least once *)
}

val inv_self : snapshot -> unit
(** Self-stabilization (DESIGN.md §13): every live end-point passes its
    local legitimacy guards ({!Vsgc_core.Endpoint.self_check}) — a
    failure means corrupted state survived detect-and-rejoin. *)

val inv_6_1 : snapshot -> unit
(** Self inclusion of current_view and mbrshp_view. *)

val inv_6_2 : snapshot -> unit
(** view_msg announced ⟹ reliable set covers the current members. *)

val inv_6_3 : snapshot -> unit
(** The per-pair stream of view markers is strictly increasing and
    bounded by the sender's current view (parts 1-3). *)

val inv_6_6 : snapshot -> unit
(** Invariants 6.4-6.6 condensed: every in-transit or filed application
    message matches the sender's own queue at its (view, index). *)

val inv_6_7 : snapshot -> unit
(** Received synchronization messages equal the sender's record. *)

val inv_6_8 : snapshot -> unit
(** No sync message tagged above the last issued start_change id. *)

val inv_6_9 : snapshot -> unit
(** The own pending sync message was sent in the current view. *)

val inv_6_11 : snapshot -> unit
(** End-point and client agree on the blocking status. *)

val inv_6_12 : snapshot -> unit
(** No sync message before the client is blocked. *)

val inv_6_13 : snapshot -> unit
(** The own cut covers every own message of the current view. *)

val inv_7_1 : snapshot -> unit
(** Deliveries never exceed the committed cuts. *)

val inv_7_2 : snapshot -> unit
(** Cuts refer to messages actually buffered. *)

val all : (string * (snapshot -> unit)) list
val check_all : snapshot -> unit
