(* A scriptable membership service satisfying the MBRSHP specification
   (paper §3.1, Figure 2) by construction.

   Test harnesses drive reconfigurations through the queueing API; the
   component then emits the queued start_change and view events to each
   client in FIFO order, interleaved freely with the rest of the system
   by the scheduler. All spec obligations (local monotonicity, self
   inclusion, startId bookkeeping, mode alternation) are enforced at
   queueing time, so a script bug fails fast with Invalid_argument. *)

open Vsgc_types

type mode = Normal | Change_started

type pst = {
  last_cid : View.Sc_id.t;  (* id of the last start_change queued for p *)
  last_sc_set : Proc.Set.t;  (* member set in that start_change *)
  last_vid : View.Id.t;  (* id of the last view queued for p *)
  mode : mode;
  pending : Action.t list;  (* events queued, newest first *)
}

let initial_pst p =
  {
    last_cid = View.Sc_id.zero;
    last_sc_set = Proc.Set.singleton p;
    last_vid = View.Id.zero;
    mode = Normal;
    pending = [];
  }

type state = pst Proc.Map.t

let initial : state = Proc.Map.empty

let pst st p = Proc.Map.find_default ~default:(initial_pst p) p st

(* -- Scripting API (operates on the shared state ref) ----------------- *)

(* Queue a start_change to every member of [set], each with a fresh
   locally-unique identifier. Returns the per-process identifiers. *)
let queue_start_change (r : state ref) ~(set : Proc.Set.t) :
    View.Sc_id.t Proc.Map.t =
  let cids =
    Proc.Set.fold
      (fun p acc ->
        let ps = pst !r p in
        let cid = View.Sc_id.succ ps.last_cid in
        let ps' =
          {
            ps with
            last_cid = cid;
            last_sc_set = set;
            mode = Change_started;
            pending = Action.Mb_start_change (p, cid, set) :: ps.pending;
          }
        in
        r := Proc.Map.add p ps' !r;
        Proc.Map.add p cid acc)
      set Proc.Map.empty
  in
  cids

(* Queue delivery of [view] to every member, validating the MBRSHP spec
   preconditions against the queue-projected state. *)
let queue_view (r : state ref) (view : View.t) : unit =
  Proc.Set.iter
    (fun p ->
      let ps = pst !r p in
      if not (View.Id.lt ps.last_vid (View.id view)) then
        invalid_arg
          (Fmt.str "Oracle.queue_view: %a not > %a for %a" View.Id.pp
             (View.id view) View.Id.pp ps.last_vid Proc.pp p);
      if not (Proc.Set.subset (View.set view) ps.last_sc_set) then
        invalid_arg
          (Fmt.str "Oracle.queue_view: view set %a not within start_change set %a"
             Proc.Set.pp (View.set view) Proc.Set.pp ps.last_sc_set);
      if ps.mode <> Change_started then
        invalid_arg "Oracle.queue_view: no start_change precedes this view";
      if not (View.Sc_id.equal (View.start_id view p) ps.last_cid) then
        invalid_arg
          (Fmt.str "Oracle.queue_view: startId(%a)=%a but last cid is %a" Proc.pp
             p View.Sc_id.pp (View.start_id view p) View.Sc_id.pp ps.last_cid);
      let ps' =
        {
          ps with
          last_vid = View.id view;
          mode = Normal;
          pending = Action.Mb_view (p, view) :: ps.pending;
        }
      in
      r := Proc.Map.add p ps' !r)
    (View.set view)

(* Build the view that follows the queued start_changes: identifier
   strictly above every member's last view id, startId map taken from
   the members' pending start_change identifiers. *)
let form_view (r : state ref) ~(origin : int) ~(set : Proc.Set.t) : View.t =
  let max_vid =
    Proc.Set.fold
      (fun p acc ->
        let ps = pst !r p in
        if View.Id.lt acc ps.last_vid then ps.last_vid else acc)
      set View.Id.zero
  in
  let start_ids =
    Proc.Set.fold (fun p acc -> Proc.Map.add p (pst !r p).last_cid acc) set
      Proc.Map.empty
  in
  let view =
    View.make ~id:(View.Id.succ_from ~origin max_vid) ~set ~start_ids
  in
  queue_view r view;
  view

(* A full reconfiguration: start_change to all of [set], then the view. *)
let change (r : state ref) ?(origin = 0) ~(set : Proc.Set.t) () : View.t =
  ignore (queue_start_change r ~set);
  form_view r ~origin ~set

(* -- Component --------------------------------------------------------- *)

let outputs (st : state) =
  Proc.Map.fold
    (fun _p ps acc ->
      match List.rev ps.pending with [] -> acc | a :: _ -> a :: acc)
    st []

let apply (st : state) (a : Action.t) =
  match a with
  | Action.Mb_start_change (p, _, _) | Action.Mb_view (p, _) -> (
      let ps = pst st p in
      match List.rev ps.pending with
      | head :: rest when Action.equal head a ->
          Proc.Map.add p { ps with pending = List.rev rest } st
      | _ -> st)
  | _ -> st

(* Each queued event's emission depends on and pops exactly the pending
   queue toward its target client. *)
let footprint (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.Mb_start_change (p, _, _) | Action.Mb_view (p, _) -> rw [ Mb_queue p ]
  | _ -> empty

let emits (a : Action.t) =
  match a with Action.Mb_start_change _ | Action.Mb_view _ -> true | _ -> false

(* One shadow slice per client: everything the oracle tracks for [p]
   (bookkeeping and pending queue) lives under Mb_queue p, matching the
   footprint above. The scripting API's direct ref mutations happen
   between steps, so the sanitizer's per-step snapshots absorb them. *)
let observe (st : state) =
  Proc.Map.fold
    (fun p ps acc ->
      (Vsgc_ioa.Footprint.Mb_queue p, Vsgc_ioa.Component.digest ps) :: acc)
    st []

let def : state Vsgc_ioa.Component.def =
  {
    name = "mbrshp_oracle";
    init = initial;
    accepts = (fun _ -> false);
    outputs;
    apply;
    footprint;
    emits;
    observe;
  }

let component () =
  let r = ref initial in
  (Vsgc_ioa.Component.pack_with_ref def r, r)

(* True when every queued event has been emitted. *)
let drained (r : state ref) =
  Proc.Map.for_all (fun _ ps -> ps.pending = []) !r
