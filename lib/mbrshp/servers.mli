(** A client-server membership algorithm in the style of
    Keidar-Sussman-Marzullo-Dolev [27] (Moshe) — the external
    membership service the paper's GCS was implemented against.

    Dedicated servers maintain the client membership; each client is
    attached to exactly one server. A failure-detector event, join or
    leave starts a change: fresh locally-unique start_change
    identifiers to the attached clients, and a proposal to the live
    peers. The minimum live server synthesizes the view once all live
    proposals agree on the server set and client union, delivers it to
    its clients, and commits it to its peers, which validate before
    delivering. Fast path: one proposal wave (concurrent with the GCS
    end-points' synchronization round) plus the commit hop — see
    DESIGN.md §2 for the recorded simplification vs Moshe's symmetric
    fast path. *)

open Vsgc_types

type t = {
  me : Server.t;
  alive : Server.Set.t;  (** failure-detector estimate, includes me *)
  clients : Proc.Set.t;  (** clients attached to this server *)
  round : int;
  sent_cid : View.Sc_id.t Proc.Map.t;  (** last start_change id per client *)
  announced : Proc.Set.t option;  (** member set of the last start_change batch *)
  proposals : Srv_msg.proposal Server.Map.t;  (** latest per live server *)
  concluded_rounds : int Server.Map.t;
      (** proposal rounds behind the last delivered view *)
  max_vid : View.Id.t;
  in_change : bool;
  last_view_set : Proc.Set.t;
  pending : Action.t list Proc.Map.t;  (** per-client event queue *)
  outbox : (Server.t * Srv_msg.t) list;
}

val initial : ?clients:Proc.Set.t -> servers:Server.Set.t -> Server.t -> t

val estimate : t -> Proc.Set.t
(** The estimated client union over the live servers' latest proposals. *)

val refresh : t -> t
(** Start (or restart) a change: fresh identifiers and a new proposal. *)

val ready : t -> bool
(** May this server (the minimum live one) conclude the view? *)

val synthesize : t -> View.t
(** Deterministic view synthesis from the proposal table. *)

val self_check : t -> string option
(** Local legitimacy guards (DESIGN.md §13): bounded counters at
    {!Vsgc_types.View.counter_bound} and structural consistency.
    [None] on every reachable state; [Some reason] witnesses corrupt
    or counter-exhausted bookkeeping. *)

val accepts : Server.t -> Action.t -> bool
val outputs : t -> Action.t list
val apply : t -> Action.t -> t
val def : ?clients:Proc.Set.t -> servers:Server.Set.t -> Server.t -> t Vsgc_ioa.Component.def
val component :
  ?clients:Proc.Set.t -> servers:Server.Set.t -> Server.t ->
  Vsgc_ioa.Component.packed * t ref
