(* Reliable FIFO transport between membership servers.

   The membership service of [27] assumes reliable server-to-server
   communication; this component provides it (no loss, per-pair FIFO).
   Deliveries are ordinary scheduler tasks, so server rounds interleave
   freely with client traffic — which is exactly what the parallel-
   rounds experiments measure. *)

open Vsgc_types

module Pair_map = Map.Make (struct
  type t = Server.t * Server.t

  let compare (a, b) (c, d) =
    match Server.compare a c with 0 -> Server.compare b d | r -> r
end)

type state = Srv_msg.t Fqueue.t Pair_map.t

let initial : state = Pair_map.empty

let channel st s s' =
  match Pair_map.find_opt (s, s') st with Some c -> c | None -> Fqueue.empty

let accepts (a : Action.t) = match a with Action.Srv_send _ -> true | _ -> false

let outputs st =
  Pair_map.fold
    (fun (s, s') c acc ->
      match Fqueue.peek c with
      | Some m -> Action.Srv_deliver (s, s', m) :: acc
      | None -> acc)
    st []

let apply st (a : Action.t) =
  match a with
  | Action.Srv_send (s, s', m) -> Pair_map.add (s, s') (Fqueue.push (channel st s s') m) st
  | Action.Srv_deliver (s, s', _) -> (
      match Fqueue.pop (channel st s s') with
      | Some (_, rest) ->
          if Fqueue.is_empty rest then Pair_map.remove (s, s') st
          else Pair_map.add (s, s') rest st
      | None -> st)
  | _ -> st

let footprint (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.Srv_send (s, s', _) -> make ~writes:[ Srv_channel (s, s') ] ()
  | Action.Srv_deliver (s, s', _) -> rw [ Srv_channel (s, s') ]
  | _ -> empty

let emits (a : Action.t) = match a with Action.Srv_deliver _ -> true | _ -> false

(* One shadow slice per non-empty server pair, digesting the queue's
   canonical contents — deliveries on disjoint pairs must digest
   independently of the map's internal tree shape, or the sanitizer's
   both-orders race replay would see phantom divergence. *)
let observe (st : state) =
  Pair_map.fold
    (fun (s, s') c acc ->
      ( Vsgc_ioa.Footprint.Srv_channel (s, s'),
        Vsgc_ioa.Component.digest (Fqueue.to_list c) )
      :: acc)
    st []

let def : state Vsgc_ioa.Component.def =
  {
    name = "srv_net";
    init = initial;
    accepts;
    outputs;
    apply;
    footprint;
    emits;
    observe;
  }

let component () =
  let r = ref initial in
  (Vsgc_ioa.Component.pack_with_ref def r, r)

let round_budget (r : state ref) () : Vsgc_ioa.Sync_runner.budget =
  let remaining = Hashtbl.create 8 in
  Pair_map.iter (fun k c -> Hashtbl.replace remaining k (Fqueue.length c)) !r;
  let get k = match Hashtbl.find_opt remaining k with Some n -> n | None -> 0 in
  {
    allow =
      (fun a -> match a with Action.Srv_deliver (s, s', _) -> get (s, s') > 0 | _ -> false);
    consume =
      (fun a ->
        match a with
        | Action.Srv_deliver (s, s', _) -> Hashtbl.replace remaining (s, s') (get (s, s') - 1)
        | _ -> ());
  }
