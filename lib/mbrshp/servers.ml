(* A client-server membership algorithm in the style of
   Keidar-Sussman-Marzullo-Dolev [27] (Moshe) — the external membership
   service the paper's GCS was implemented against (see DESIGN.md §2).

   Dedicated servers maintain the client membership; each client is
   attached to exactly one server. A failure-detector event, join or
   leave starts a change: the server sends each attached client a
   start_change with a fresh locally-unique identifier and the
   estimated member set, and sends every live peer a proposal (its
   clients and their identifiers, its server-set estimate, its client-
   union estimate, the largest view identifier it has seen). A server
   refreshes — new identifiers, new proposal — whenever its estimated
   union drifts from what it last announced, or when it learns a peer
   proposal newer than the one used for its last delivered view.

   Once the minimum live server holds proposals from all live servers
   that agree on the server set and the client union, it synthesizes
   the view (successor of the maximum view identifier, the union as the
   member set, the startId map merged from the proposals), delivers it
   to its own clients, and commits it to its peers; a peer delivers a
   commit after validating it against its own bookkeeping (it is mid-
   change, the view is fresh, the member set is covered by what it
   announced, and the identifiers of its own clients match what it last
   sent). Stale commits are discarded; the refresh rules guarantee a
   fresh one follows.

   In the failure-free fast path this costs one proposal wave (run
   concurrently with the GCS end-points' single synchronization round)
   plus the commit hop. Moshe's symmetric fast path saves that hop;
   our commit step trades it for a much simpler consistency argument —
   a substitution recorded in DESIGN.md §2. *)

open Vsgc_types

type t = {
  me : Server.t;
  alive : Server.Set.t;  (* failure-detector estimate, includes me *)
  clients : Proc.Set.t;  (* clients attached to this server *)
  round : int;
  sent_cid : View.Sc_id.t Proc.Map.t;  (* last start_change id per client, ever *)
  announced : Proc.Set.t option;  (* member set of the last start_change batch *)
  proposals : Srv_msg.proposal Server.Map.t;  (* latest per live server, incl. self *)
  concluded_rounds : int Server.Map.t;  (* proposal rounds behind the last delivered view *)
  max_vid : View.Id.t;
  in_change : bool;
  last_view_set : Proc.Set.t;
  pending : Action.t list Proc.Map.t;  (* per-client event queue, oldest first *)
  outbox : (Server.t * Srv_msg.t) list;  (* oldest first *)
}

let initial ?(clients = Proc.Set.empty) ~servers me =
  {
    me;
    alive = servers;
    clients;
    round = 0;
    sent_cid = Proc.Map.empty;
    announced = None;
    proposals = Server.Map.empty;
    concluded_rounds = Server.Map.empty;
    max_vid = View.Id.zero;
    in_change = false;
    last_view_set = Proc.Set.empty;
    pending = Proc.Map.empty;
    outbox = [];
  }

(* The estimated client union: this server's clients plus the clients
   reported by the latest proposal of every other live server. *)
let estimate st =
  Server.Set.fold
    (fun s acc ->
      if Server.equal s st.me then acc
      else
        match Server.Map.find_opt s st.proposals with
        | Some (p : Srv_msg.proposal) ->
            Proc.Set.union acc (Proc.Map.key_set p.Srv_msg.clients)
        | None -> acc)
    st.alive st.clients

let queue_for st c a =
  let q = Proc.Map.find_default ~default:[] c st.pending in
  { st with pending = Proc.Map.add c (q @ [ a ]) st.pending }

(* Start (or restart) a change: fresh start_change identifiers for the
   attached clients, and a fresh proposal to the live peers. *)
let refresh st =
  let target = estimate st in
  let round = st.round + 1 in
  let st, cids =
    Proc.Set.fold
      (fun c (st, cids) ->
        let cid =
          View.Sc_id.succ (Proc.Map.find_default ~default:View.Sc_id.zero c st.sent_cid)
        in
        let st = { st with sent_cid = Proc.Map.add c cid st.sent_cid } in
        (queue_for st c (Action.Mb_start_change (c, cid, target)), Proc.Map.add c cid cids))
      st.clients (st, Proc.Map.empty)
  in
  let proposal =
    { Srv_msg.round; from = st.me; servers = st.alive; clients = cids;
      members = target; max_vid = st.max_vid }
  in
  let peers = Server.Set.remove st.me st.alive in
  {
    st with
    round;
    announced = Some target;
    in_change = true;
    proposals = Server.Map.add st.me proposal st.proposals;
    outbox =
      st.outbox @ List.map (fun s -> (s, Srv_msg.Proposal proposal)) (Server.Set.elements peers);
  }

let is_min st = Server.Set.min_elt_opt st.alive = Some st.me

(* The minimum live server may conclude when every live server's latest
   proposal agrees on the server set and on the client union it itself
   announced to its clients. *)
let ready st =
  st.in_change && is_min st
  && (match st.announced with
     | Some s -> Proc.Set.equal s (estimate st)
     | None -> false)
  && Server.Set.for_all
       (fun s ->
         match Server.Map.find_opt s st.proposals with
         | Some (p : Srv_msg.proposal) ->
             Server.Set.equal p.Srv_msg.servers st.alive
             && (match st.announced with
                | Some u -> Proc.Set.equal p.Srv_msg.members u
                | None -> false)
         | None -> false)
       st.alive

(* Deterministic view synthesis from the proposal table. *)
let synthesize st =
  let props =
    Server.Set.fold
      (fun s acc ->
        match Server.Map.find_opt s st.proposals with Some p -> p :: acc | None -> acc)
      st.alive []
  in
  let max_vid =
    List.fold_left
      (fun acc (p : Srv_msg.proposal) ->
        if View.Id.lt acc p.Srv_msg.max_vid then p.Srv_msg.max_vid else acc)
      st.max_vid props
  in
  let start_ids =
    List.fold_left
      (fun acc (p : Srv_msg.proposal) -> Proc.Map.union (fun _ a _ -> Some a) acc p.Srv_msg.clients)
      Proc.Map.empty props
  in
  View.make
    ~id:(View.Id.succ_from ~origin:(Server.to_int st.me) max_vid)
    ~set:(Proc.Map.key_set start_ids) ~start_ids

let table_rounds st =
  Server.Set.fold
    (fun s acc ->
      match Server.Map.find_opt s st.proposals with
      | Some (p : Srv_msg.proposal) -> Server.Map.add s p.Srv_msg.round acc
      | None -> acc)
    st.alive Server.Map.empty

(* Deliver [view] to this server's attached clients (those that are
   members) and leave the change. *)
let install st view =
  let st =
    Proc.Set.fold
      (fun c st ->
        if View.mem c view then queue_for st c (Action.Mb_view (c, view)) else st)
      st.clients st
  in
  {
    st with
    in_change = false;
    announced = None;
    max_vid = View.id view;
    last_view_set = View.set view;
    concluded_rounds = table_rounds st;
  }

let conclude st =
  if not (ready st) then st
  else
    let view = synthesize st in
    let st = install st view in
    let peers = Server.Set.remove st.me st.alive in
    { st with
      outbox =
        st.outbox @ List.map (fun s -> (s, Srv_msg.Commit view)) (Server.Set.elements peers) }

(* A peer validates a committed view before delivering it: it must be
   mid-change, the view fresh, its member set covered by the announced
   set (the MBRSHP spec's subset obligation), and the identifiers of
   this server's own clients must match what it last sent them. *)
let commit_valid st view =
  st.in_change
  && View.Id.lt st.max_vid (View.id view)
  && (match st.announced with
     | Some u -> Proc.Set.subset (View.set view) u
     | None -> false)
  && Proc.Set.for_all
       (fun c ->
         (not (View.mem c view))
         || View.Sc_id.equal (View.start_id view c)
              (Proc.Map.find_default ~default:View.Sc_id.zero c st.sent_cid))
       st.clients

(* A change is needed when the estimated union drifted from what this
   server last announced, or — after a view — when a peer proposal
   newer than the one behind that view arrives (somebody is
   reconfiguring; we must join in so the committer can use fresh
   identifiers for our clients too). *)
let reconcile st =
  let u = estimate st in
  let drifted =
    if st.in_change then
      match st.announced with Some s -> not (Proc.Set.equal s u) | None -> true
    else
      (not (Proc.Set.equal u st.last_view_set))
      || Server.Set.exists
           (fun s ->
             match Server.Map.find_opt s st.proposals with
             | Some (p : Srv_msg.proposal) ->
                 p.Srv_msg.round > Server.Map.find_default ~default:0 s st.concluded_rounds
             | None -> false)
           st.alive
  in
  let st = if drifted then refresh st else st in
  conclude st

(* -- Self-stabilization (DESIGN.md §13) --------------------------------- *)

(* Local legitimacy guards over the server's bookkeeping: bounded
   counters (proposal rounds, start_change ids, view identifiers) and
   structural consistency every reachable state satisfies. A [Some]
   answer witnesses corruption or counter exhaustion; unlike a client
   end-point there is no rejoin machinery behind a server yet, so the
   harness only reports these (ROADMAP: server recycling). *)
let self_check st =
  let bound = View.counter_bound in
  if
    st.round >= bound
    || View.Id.num st.max_vid >= bound
    || Proc.Map.exists (fun _ c -> c >= bound) st.sent_cid
  then Some (Fmt.str "wraparound: counter at bound in round %d" st.round)
  else if not (Server.Set.mem st.me st.alive) then
    Some (Fmt.str "self-exclusion: %a not in own estimate" Server.pp st.me)
  else if st.in_change && st.announced = None then
    Some "mid-change without an announced member set"
  else None

let accepts me (a : Action.t) =
  match a with
  | Action.Fd_change (s, _) -> Server.equal s me
  | Action.Client_join (_, s) | Action.Client_leave (_, s) -> Server.equal s me
  | Action.Srv_deliver (_, s, _) -> Server.equal s me
  | _ -> false

let outputs st =
  let acc =
    match st.outbox with
    | (dest, m) :: _ -> [ Action.Srv_send (st.me, dest, m) ]
    | [] -> []
  in
  Proc.Map.fold
    (fun _c q acc -> match q with a :: _ -> a :: acc | [] -> acc)
    st.pending acc

let apply st (a : Action.t) =
  match a with
  | Action.Fd_change (_, servers) ->
      let st = { st with alive = Server.Set.add st.me servers } in
      conclude (refresh st)
  | Action.Client_join (p, _) ->
      let st = { st with clients = Proc.Set.add p st.clients } in
      conclude (refresh st)
  | Action.Client_leave (p, _) ->
      let st =
        { st with clients = Proc.Set.remove p st.clients;
          pending = Proc.Map.remove p st.pending }
      in
      conclude (refresh st)
  | Action.Srv_deliver (s, _, Srv_msg.Proposal m) ->
      let newer =
        match Server.Map.find_opt s st.proposals with
        | Some (old : Srv_msg.proposal) -> old.Srv_msg.round < m.Srv_msg.round
        | None -> true
      in
      if not newer then st
      else
        let st =
          { st with
            proposals = Server.Map.add s m st.proposals;
            max_vid =
              (if View.Id.lt st.max_vid m.Srv_msg.max_vid then m.Srv_msg.max_vid
               else st.max_vid) }
        in
        reconcile st
  | Action.Srv_deliver (_, _, Srv_msg.Commit view) ->
      if commit_valid st view then install st view else st
  | Action.Srv_send (_, _, _) -> (
      match st.outbox with _ :: rest -> { st with outbox = rest } | [] -> st)
  | Action.Mb_start_change (c, _, _) | Action.Mb_view (c, _) -> (
      match Proc.Map.find_opt c st.pending with
      | Some (_ :: rest) -> { st with pending = Proc.Map.add c rest st.pending }
      | _ -> st)
  | _ -> st

(* Every action this server takes part in touches its local state; the
   client-facing membership events additionally touch the pending queue
   toward that client. The footprint claims Mb_queue for ANY client —
   attachment is dynamic (Client_join may bring in new clients), so the
   conservative claim keeps the independence relation sound under
   migration. *)
let footprint me (a : Action.t) =
  let open Vsgc_ioa.Footprint in
  match a with
  | Action.Fd_change (s, _) when Server.equal s me -> rw [ Server_state me ]
  | (Action.Client_join (_, s) | Action.Client_leave (_, s)) when Server.equal s me
    -> rw [ Server_state me ]
  | Action.Srv_deliver (_, s, _) when Server.equal s me -> rw [ Server_state me ]
  | Action.Srv_send (s, _, _) when Server.equal s me -> rw [ Server_state me ]
  | Action.Mb_start_change (c, _, _) | Action.Mb_view (c, _) ->
      rw [ Server_state me; Mb_queue c ]
  | _ -> empty

(* The static output signature reflects the initial wiring: membership
   events go to the initially attached clients (a Client_join moves
   write ownership at runtime — the linter checks the initial
   composition, see DESIGN.md §9). *)
let emits ~clients me (a : Action.t) =
  match a with
  | Action.Srv_send (s, _, _) -> Server.equal s me
  | Action.Mb_start_change (c, _, _) | Action.Mb_view (c, _) -> Proc.Set.mem c clients
  | _ -> false

(* The whole server state as one Server_state slice — NOT decomposed
   into per-client Mb_queue slices, deliberately: Client_join and
   Srv_deliver write [st.pending] while declaring only Server_state me
   (they are server-locus actions; the per-client Mb_queue claim is for
   the client-facing emission), so a finer decomposition would report
   false undeclared-writes. Sound because every pending-writer declares
   Server_state me. *)
let observe me (st : t) =
  [ (Vsgc_ioa.Footprint.Server_state me, Vsgc_ioa.Component.digest st) ]

let def ?clients ~servers me : t Vsgc_ioa.Component.def =
  let init = initial ?clients ~servers me in
  {
    name = Fmt.str "mbrshp_server_%a" Server.pp me;
    init;
    accepts = accepts me;
    outputs;
    apply;
    footprint = footprint me;
    emits = emits ~clients:init.clients me;
    observe = observe me;
  }

let component ?clients ~servers me =
  let d = def ?clients ~servers me in
  let r = ref d.Vsgc_ioa.Component.init in
  (Vsgc_ioa.Component.pack_with_ref d r, r)
