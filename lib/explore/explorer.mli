(** Bounded depth-first schedule exploration with sleep-set reduction.

    Replays a schedule as a driving prefix, then enumerates every
    interleaving of the enabled locally-controlled actions up to a
    depth bound, pruning provably commuting orders with sleep sets
    driven by the footprint-derived independence relation. Backtracking is
    replay-based — rebuild from {!Sysconf} + re-run prefix and path —
    which is also exactly how a finding is later reproduced from its
    saved schedule. Every explored state is watched by the full oracle
    battery (spec monitors + §6/§7 invariants); leaves are optionally
    probed to completion (seeded settle + end-of-trace monitor
    obligations). *)

type outcome =
  | Found of Schedule.t * Replay.violation
      (** the returned schedule replays to this violation
          deterministically; its [expect] header is set accordingly *)
  | Exhausted  (** whole bounded tree explored, no violation *)
  | Run_budget  (** [max_runs] replays spent before the tree was done *)

type report = {
  outcome : outcome;
  runs : int;  (** system rebuild+replays performed *)
  states : int;  (** interior nodes visited *)
  sleep_skips : int;  (** branches pruned by the sleep set *)
}

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

val independence : Sysconf.t -> Vsgc_types.Action.t -> Vsgc_types.Action.t -> bool
(** [independence conf] is the commutation check used by the reduction
    for systems built from [conf]: two actions are independent when,
    over the declared footprints of every component of the
    configuration, neither one's writes interfere with the other's
    reads or writes. Memoized per action; building the relation costs
    one [Sysconf.build]. *)

val explore :
  ?depth:int -> ?max_runs:int -> ?probe:bool -> ?jobs:int -> Schedule.t -> report
(** [explore sched] uses [sched.entries] as the driving prefix;
    [sched.expect] is ignored on input and set on the finding.
    Defaults: [depth 4], [max_runs 10_000], [probe true], [jobs 1].

    [jobs > 1] fans the root's subtrees across the domain pool
    (DESIGN.md §17), each with the same statically-computed sleep set
    the sequential search would give it. The reported finding is made
    canonical — the one the leftmost finding subtree surfaces: a
    subtree that finds a violation cancels only {e later} subtrees,
    and the lowest-index finding wins, so the returned schedule is the
    same DFS-minimal one [jobs:1] reports. On [Exhausted], [states]
    and [sleep_skips] match the sequential search exactly; [runs] may
    differ (each subtree rebuilds its root instead of descending live,
    and a shared budget is spent concurrently), so near [max_runs] the
    parallel search can report [Run_budget] where the sequential one
    finished, or vice versa. *)
