(* Serializable schedules.

   A schedule is the complete recipe for one execution of the composed
   system: the configuration to rebuild it from scratch (Sysconf), plus
   an ordered list of entries — environment operations (the scenario
   ingredients: membership scripting, traffic, crashes), bounded seeded
   scheduler runs, and explicit action choices. Replaying the same
   schedule against a freshly built system reproduces the same
   execution deterministically: explicit choices consume no randomness,
   and the seeded phases draw from the same RNG trajectory.

   Every violation the explorer, the stress soak, or CI finds is saved
   in this form (one human-readable line per entry), shrunk, and
   becomes a regression-corpus artifact under test/corpus/. *)

open Vsgc_types

type env_op =
  | Reconfigure of { origin : int; set : Proc.Set.t }
  | Start_change of Proc.Set.t
  | Deliver_view of { origin : int; set : Proc.Set.t }
  | Send of { from : Proc.t; payload : string }
  | Crash of Proc.t
  | Recover of Proc.t

type entry =
  | Env of env_op
  | Run of int  (* up to k seeded scheduler steps *)
  | Settle  (* seeded run to quiescence + monitor discharge *)
  | Choose of { owner : int; key : string }
      (* perform the unique enabled action with this key, as a step of
         component [owner] *)

type t = {
  name : string;
  expect : string option;  (* violation kind this schedule reproduces *)
  conf : Sysconf.t;
  entries : entry list;
}

(* Action keys: the printed form of the action, escaped onto one line.
   Keys are matched against the escaped printed form of the enabled
   candidates at replay time — the composed system never enables two
   distinct actions with identical printed forms at the same owner. *)
let key_of_action a = String.escaped (Action.to_string a)

let choose owner a = Choose { owner; key = key_of_action a }

(* -- Printing ----------------------------------------------------------- *)

let set_to_string s =
  if Proc.Set.is_empty s then "-"
  else String.concat "," (List.map string_of_int (Proc.Set.elements s))

let set_of_string str =
  if str = "-" then Proc.Set.empty
  else
    List.fold_left
      (fun acc x -> Proc.Set.add (int_of_string x) acc)
      Proc.Set.empty
      (String.split_on_char ',' str)

let env_op_to_string = function
  | Reconfigure { origin; set } -> Fmt.str "env reconfigure %d %s" origin (set_to_string set)
  | Start_change set -> Fmt.str "env start_change %s" (set_to_string set)
  | Deliver_view { origin; set } -> Fmt.str "env deliver_view %d %s" origin (set_to_string set)
  | Send { from; payload } -> Fmt.str "env send %d %s" from (String.escaped payload)
  | Crash p -> Fmt.str "env crash %d" p
  | Recover p -> Fmt.str "env recover %d" p

let entry_to_string = function
  | Env op -> env_op_to_string op
  | Run k -> Fmt.str "run %d" k
  | Settle -> "settle"
  | Choose { owner; key } -> Fmt.str "choose %d %s" owner key

let pp_entry ppf e = Fmt.string ppf (entry_to_string e)
let pp ppf t =
  Fmt.pf ppf "@[<v>schedule %s (%a, %d entries)@,%a@]" t.name Sysconf.pp t.conf
    (List.length t.entries)
    (Fmt.list ~sep:Fmt.cut pp_entry)
    t.entries

let to_string t =
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "vsgc-schedule 1";
  line "name %s" t.name;
  line "n %d" t.conf.Sysconf.n;
  line "seed %d" t.conf.Sysconf.seed;
  line "layer %s" (Sysconf.layer_to_string t.conf.Sysconf.layer);
  line "mutation %s" (Sysconf.mutation_to_string t.conf.Sysconf.mutation);
  (match t.expect with Some e -> line "expect %s" e | None -> line "expect clean");
  List.iter (fun e -> line "%s" (entry_to_string e)) t.entries;
  Buffer.contents b

(* -- Parsing ------------------------------------------------------------ *)

exception Parse_error of string

let fail_parse fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* [rest_after line k] is the line with its first [k] space-separated
   fields removed — used for trailing fields that may contain spaces. *)
let rest_after line k =
  let len = String.length line in
  let rec skip i k =
    if k = 0 then i
    else
      match String.index_from_opt line i ' ' with
      | Some j -> skip (j + 1) (k - 1)
      | None -> len
  in
  String.sub line (skip 0 k) (len - skip 0 k)

let unescape s =
  try Scanf.unescaped s with Scanf.Scan_failure _ -> fail_parse "bad escape in %S" s

let entry_of_string line =
  match String.split_on_char ' ' line with
  | "run" :: k :: _ -> Run (int_of_string k)
  | "settle" :: _ -> Settle
  | "choose" :: owner :: _ :: _ ->
      Choose { owner = int_of_string owner; key = rest_after line 2 }
  | "env" :: "reconfigure" :: origin :: set :: _ ->
      Env (Reconfigure { origin = int_of_string origin; set = set_of_string set })
  | "env" :: "start_change" :: set :: _ -> Env (Start_change (set_of_string set))
  | "env" :: "deliver_view" :: origin :: set :: _ ->
      Env (Deliver_view { origin = int_of_string origin; set = set_of_string set })
  | "env" :: "send" :: from :: _ :: _ ->
      Env (Send { from = int_of_string from; payload = unescape (rest_after line 3) })
  | "env" :: "crash" :: p :: _ -> Env (Crash (int_of_string p))
  | "env" :: "recover" :: p :: _ -> Env (Recover (int_of_string p))
  | _ -> fail_parse "unrecognized schedule entry %S" line

let of_string text =
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' text))
  in
  match lines with
  | magic :: rest when magic = "vsgc-schedule 1" ->
      let name = ref "unnamed" and expect = ref None in
      let n = ref 0 and seed = ref 42 in
      let layer = ref `Full and mutation = ref None in
      let entries = ref [] in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | "name" :: _ :: _ -> name := rest_after line 1
          | "n" :: x :: _ -> n := int_of_string x
          | "seed" :: x :: _ -> seed := int_of_string x
          | "layer" :: x :: _ -> layer := Sysconf.layer_of_string x
          | "mutation" :: x :: _ -> mutation := Sysconf.mutation_of_string x
          | "expect" :: x :: _ -> expect := (if x = "clean" then None else Some x)
          | _ -> entries := entry_of_string line :: !entries)
        rest;
      if !n <= 0 then fail_parse "schedule is missing a positive 'n' header";
      {
        name = !name;
        expect = !expect;
        conf = Sysconf.make ~seed:!seed ~layer:!layer ?mutation:!mutation ~n:!n ();
        entries = List.rev !entries;
      }
  | first :: _ -> fail_parse "bad magic %S (want \"vsgc-schedule 1\")" first
  | [] -> fail_parse "empty schedule"

(* -- Files -------------------------------------------------------------- *)

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (really_input_string ic (in_channel_length ic)))

(* -- Scenario conversion ------------------------------------------------ *)

(* The env-expressible subset of the harness scenario language; [Check]
   steps carry closures and are dropped (the explorer's own oracles —
   monitors and invariants — keep watching). *)
let of_scenario (sc : Vsgc_harness.Scenario.t) : entry list =
  List.concat_map
    (fun (step : Vsgc_harness.Scenario.step) ->
      match step with
      | Vsgc_harness.Scenario.Reconfigure { origin; set } ->
          [ Env (Reconfigure { origin; set }) ]
      | Vsgc_harness.Scenario.Start_change set -> [ Env (Start_change set) ]
      | Vsgc_harness.Scenario.Deliver_view { origin; set } ->
          [ Env (Deliver_view { origin; set }) ]
      | Vsgc_harness.Scenario.Send { from; payloads } ->
          List.map (fun payload -> Env (Send { from; payload })) payloads
      | Vsgc_harness.Scenario.Broadcast { senders; per_sender } ->
          List.concat_map
            (fun p ->
              List.init per_sender (fun i ->
                  Env (Send { from = p; payload = Fmt.str "m-%a-%d" Proc.pp p (i + 1) })))
            (Proc.Set.elements senders)
      | Vsgc_harness.Scenario.Crash p -> [ Env (Crash p) ]
      | Vsgc_harness.Scenario.Recover p -> [ Env (Recover p) ]
      | Vsgc_harness.Scenario.Run k -> [ Run k ]
      | Vsgc_harness.Scenario.Settle -> [ Settle ]
      | Vsgc_harness.Scenario.Check _ -> [])
    sc
