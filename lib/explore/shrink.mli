(** Delta-debugging schedule minimization (ddmin).

    Minimizes a violating schedule's entry list — environment script
    and explicit choices alike — while preserving the violation kind
    named by its [expect] header. Candidate sub-schedules are judged
    with tolerant replay (entries invalidated by a deletion are
    skipped); the final result is normalized to the entries that
    actually apply and verified with a strict replay. *)

val ddmin : ('a list -> bool) -> 'a list -> 'a list
(** Generic ddmin: greatest-granularity complement reduction over a
    list, given a reproduction test. The test is assumed to hold for
    the full input. *)

val minimize : Schedule.t -> Schedule.t
(** @raise Invalid_argument if the schedule has an [expect] header it
    does not reproduce. Schedules with [expect = None] are returned
    unchanged. The result strictly replays to the expected kind. *)
