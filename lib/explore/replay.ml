(* Deterministic schedule replay.

   Rebuilds the system a schedule describes and re-executes its entries
   against the full oracle battery (all spec monitors + all §6/§7
   invariants, attached by Sysconf.build). Explicit Choose entries
   consume no randomness; Run/Settle entries draw from the seeded RNG,
   whose trajectory is a function of the seed and the entry list alone —
   so replaying the same schedule always reproduces the same execution,
   and in particular the same violation at the same step. *)

module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor

type violation = { kind : string; message : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.kind v.message

exception Divergence of string

(* The Settle step budget — shared with the explorer's leaf probes so a
   saved schedule replays through the identical code path. *)
let settle_steps = 200_000

let violation_of_exn = function
  | Vsgc_ioa.Monitor.Violation { monitor; message } -> Some { kind = monitor; message }
  | Vsgc_checker.Invariants.Invariant_violation { name; message } ->
      Some { kind = name; message }
  | Vsgc_ioa.Sanitizer.Violation d ->
      (* A footprint lie caught by the effect sanitizer (VSGC_SANITIZE)
         is a verdict like any monitor violation — the sanitized corpus
         gate replays expecting none. *)
      Some { kind = "sanitize"; message = Vsgc_ioa.Diag.to_string d }
  | _ -> None

let apply_env sys (op : Schedule.env_op) =
  match op with
  | Schedule.Reconfigure { origin; set } -> ignore (System.reconfigure sys ~origin ~set)
  | Schedule.Start_change set -> ignore (System.start_change sys ~set)
  | Schedule.Deliver_view { origin; set } -> ignore (System.deliver_view sys ~origin ~set)
  | Schedule.Send { from; payload } -> System.send sys from payload
  | Schedule.Crash p -> System.crash sys p
  | Schedule.Recover p -> System.recover sys p

(* Run to quiescence under the step budget and discharge residual
   monitor obligations; hitting the budget is not itself a failure
   (bounded probes stop there). *)
let settle_once sys =
  match Executor.run ~max_steps:settle_steps (System.exec sys) with
  | Executor.Quiescent _ -> Executor.finish (System.exec sys)
  | Executor.Step_limit -> ()

let find_candidate sys ~owner ~key =
  let matching =
    List.filter
      (fun (_, a) -> String.equal (Schedule.key_of_action a) key)
      (Executor.candidates (System.exec sys))
  in
  match List.find_opt (fun (i, _) -> i = owner) matching with
  | Some x -> Some x
  | None -> ( match matching with x :: _ -> Some x | [] -> None)

let apply_entry sys (e : Schedule.entry) =
  match e with
  | Schedule.Env op -> apply_env sys op
  | Schedule.Run k -> ignore (Executor.run ~max_steps:k (System.exec sys))
  | Schedule.Settle -> settle_once sys
  | Schedule.Choose { owner; key } -> (
      match find_candidate sys ~owner ~key with
      | Some (i, a) -> Executor.perform (System.exec sys) ~owner:i a
      | None ->
          raise
            (Divergence (Fmt.str "no enabled candidate matches choose %d %s" owner key)))

let replay sys entries = List.iter (apply_entry sys) entries

let run (s : Schedule.t) =
  let sys = Sysconf.build s.conf in
  match replay sys s.entries with
  | () -> Ok sys
  | exception e -> ( match violation_of_exn e with Some v -> Error v | None -> raise e)

(* Tolerant replay, for the shrinker: candidate schedules produced by
   deleting entries may leave later entries unmatched (a Choose whose
   action is no longer enabled) or invalid (an env op the oracle's
   scripting preconditions reject); those are skipped. Returns the
   entries that actually applied — a strict replay of exactly that list
   behaves identically — and the violation, if one fired. *)
let run_tolerant (s : Schedule.t) =
  let sys = Sysconf.build s.conf in
  let applied = ref [] in
  let viol = ref None in
  (try
     List.iter
       (fun e ->
         match apply_entry sys e with
         | () -> applied := e :: !applied
         | exception Divergence _ -> ()
         | exception Invalid_argument _ -> ()
         | exception ex -> (
             match violation_of_exn ex with
             | Some v ->
                 applied := e :: !applied;
                 viol := Some v;
                 raise Exit
             | None -> raise ex))
       s.entries
   with Exit -> ());
  (List.rev !applied, !viol)

(* Check a schedule against its recorded expectation. *)
type verdict = Reproduced | Unexpected of violation | Missing of string | Clean_ok

let check (s : Schedule.t) =
  match (run s, s.expect) with
  | Ok _, None -> Clean_ok
  | Ok _, Some kind -> Missing kind
  | Error v, Some kind when String.equal v.kind kind -> Reproduced
  | Error v, _ -> Unexpected v
