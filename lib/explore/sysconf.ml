(* A rebuildable system configuration.

   Everything the explorer needs to reconstruct a monitored system from
   scratch lives here, so a saved schedule is self-contained: the same
   configuration plus the same entry list reproduces the same execution
   bit for bit. Rebuilt systems always carry every safety monitor and
   every §6/§7 invariant (checked after each step) — exploration is
   only as strong as the oracles watching each visited state. *)

module System = Vsgc_harness.System

type t = {
  n : int;  (* processes 0..n-1 *)
  seed : int;  (* scheduler seed, used by Run/Settle entries *)
  layer : Vsgc_core.Endpoint.layer;
  mutation : Vsgc_core.Vs_rfifo_ts.mutation option;
      (* seeded algorithm weakening under test, if any *)
}

let make ?(seed = 42) ?(layer = `Full) ?mutation ~n () = { n; seed; layer; mutation }

let layer_to_string = function `Wv -> "wv" | `Vs -> "vs" | `Full -> "full"

let layer_of_string = function
  | "wv" -> `Wv
  | "vs" -> `Vs
  | "full" -> `Full
  | s -> invalid_arg (Fmt.str "Sysconf.layer_of_string: %S" s)

let mutation_to_string = function
  | None -> "none"
  | Some Vsgc_core.Vs_rfifo_ts.No_sync_wait -> "no_sync_wait"

let mutation_of_string = function
  | "none" -> None
  | "no_sync_wait" -> Some Vsgc_core.Vs_rfifo_ts.No_sync_wait
  | s -> invalid_arg (Fmt.str "Sysconf.mutation_of_string: %S" s)

let pp ppf t =
  Fmt.pf ppf "n=%d seed=%d layer=%s mutation=%s" t.n t.seed
    (layer_to_string t.layer)
    (mutation_to_string t.mutation)

(* The blocking invariants (6.11, 6.12) assert the Figure 11/12 block
   protocol, which the layers below `Full omit by construction — there
   they are not proof obligations but false alarms. *)
let invariants_for = function
  | `Full -> Vsgc_checker.Invariants.all
  | `Wv | `Vs ->
      List.filter
        (fun (name, _) -> name <> "6.11" && name <> "6.12")
        Vsgc_checker.Invariants.all

let build t =
  let sys =
    System.create ~seed:t.seed ~n:t.n ~layer:t.layer ?mutation:t.mutation
      ~monitors:`All ()
  in
  let invs = invariants_for t.layer in
  Vsgc_ioa.Executor.add_step_hook (System.exec sys) (fun _ ->
      let snap = System.snapshot sys in
      List.iter (fun (_, check) -> check snap) invs);
  sys
