(* Bounded depth-first schedule exploration with sleep-set reduction.

   The explorer takes a schedule as a driving prefix (environment
   operations + seeded runs, typically derived from a scenario),
   replays it, then systematically enumerates every interleaving of the
   enabled locally-controlled actions up to a depth bound. Backtracking
   is replay-based: the executor offers no state snapshots, so each
   alternative is reached by rebuilding the system from its Sysconf and
   re-running prefix + path — cheap at the small configurations model
   checking targets, and exactly the mechanism that later reproduces a
   finding from its saved schedule.

   Reduction: a sleep-set variant of partial-order reduction. After a
   sibling action [a] has been fully explored at a node, [a] is added
   to the sleep set of the node's remaining children and stays asleep
   as long as every action taken commutes with it. Independence is
   derived from the components' declared read/write footprints
   ({!Vsgc_ioa.Footprint}): two actions commute when, summed over every
   component of the configuration, neither one's writes interfere with
   the other's reads or writes. This subsumes the historical hand-coded
   relation (deliveries at distinct receivers) and additionally sleeps
   e.g. [App_send]s at distinct processes and [Srv_deliver]s at
   distinct servers.

   At each leaf (and at nodes with no enabled candidates) the explorer
   optionally probes completion: a seeded run to quiescence plus the
   monitors' end-of-trace obligations, same procedure as a [Settle]
   entry. A violation surfaced anywhere — during the prefix, during a
   chosen step, or during a probe — is returned together with the
   schedule that reaches it. *)

module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor
module Action = Vsgc_types.Action

type outcome =
  | Found of Schedule.t * Replay.violation
  | Exhausted
  | Run_budget  (* max_runs replays spent before the tree was done *)

type report = {
  outcome : outcome;
  runs : int;  (* system rebuild+replays performed *)
  states : int;  (* interior nodes visited *)
  sleep_skips : int;  (* branches pruned by the sleep set *)
}

let pp_outcome ppf = function
  | Found (s, v) ->
      Fmt.pf ppf "violation %a via %d-entry schedule" Replay.pp_violation v
        (List.length s.Schedule.entries)
  | Exhausted -> Fmt.string ppf "exhausted (no violation)"
  | Run_budget -> Fmt.string ppf "run budget spent (no violation)"

let pp_report ppf r =
  Fmt.pf ppf "%a [runs %d, states %d, sleep skips %d]" pp_outcome r.outcome r.runs
    r.states r.sleep_skips

(* Two actions commute when neither can enable, disable, or change the
   effect of the other. The relation is derived from the declared
   footprints of one freshly built instance of the configuration;
   footprints are static per action, so the instance's state never
   matters and the relation is valid at every node of the tree. *)
let independence conf =
  let sys = Sysconf.build conf in
  Executor.independence (System.exec sys)

exception Stop of Schedule.t * Replay.violation
exception Budget
exception Cancelled

let explore_seq ~depth ~max_runs ~probe (sched : Schedule.t) =
  let runs = ref 0 and states = ref 0 and sleep_skips = ref 0 in
  let independent = independence sched.Schedule.conf in
  let prefix = sched.Schedule.entries in
  (* Entries reaching the current node, newest first. *)
  let found path v =
    let entries = prefix @ List.rev path in
    raise
      (Stop
         ( { sched with Schedule.entries; expect = Some v.Replay.kind; name = sched.Schedule.name },
           v ))
  in
  (* Rebuild + replay up to the node [path] leads to. Any violation on
     the way ends the search: the path that raised is the finding. *)
  let rebuild path =
    if !runs >= max_runs then raise Budget;
    incr runs;
    let sys = Sysconf.build sched.Schedule.conf in
    (try Replay.replay sys (prefix @ List.rev path) with
    | e -> (
        match Replay.violation_of_exn e with
        | Some v -> found path v
        | None -> raise e));
    sys
  in
  let probe_leaf sys path =
    if probe then
      try Replay.settle_once sys with
      | e -> (
          match Replay.violation_of_exn e with
          | Some v -> found (Schedule.Settle :: path) v
          | None -> raise e)
  in
  (* Deterministic candidate order: sorted by (key, owner). Adversarial
     losses are the fairness assumption's to exclude, not the DFS's to
     enumerate. *)
  let node_candidates sys =
    Executor.candidates (System.exec sys)
    |> List.filter (fun (_, a) -> Action.category a <> Action.C_rf_lose)
    |> List.map (fun (i, a) -> (Schedule.key_of_action a, i, a))
    |> List.sort compare
  in
  (* [sys] is live at the node [path] reaches; it may be consumed by
     the first explored child (a replay-free descent), after which the
     remaining children rebuild. *)
  let rec dfs sys path d sleep =
    if d = 0 then probe_leaf sys path
    else begin
      let cands = node_candidates sys in
      if cands = [] then probe_leaf sys path
      else begin
        incr states;
        let used_live = ref false in
        let explored = ref [] in
        List.iter
          (fun (key, owner, a) ->
            if List.exists (Action.equal a) sleep then incr sleep_skips
            else begin
              (* the child may keep asleep whatever commutes with the
                 step taken: fully-explored siblings join the set *)
              let child_sleep = List.filter (independent a) (sleep @ !explored) in
              let child_path = Schedule.Choose { owner; key } :: path in
              let child_sys =
                if !used_live then rebuild child_path
                else begin
                  used_live := true;
                  (try Executor.perform (System.exec sys) ~owner a with
                  | e -> (
                      match Replay.violation_of_exn e with
                      | Some v -> found child_path v
                      | None -> raise e));
                  sys
                end
              in
              dfs child_sys child_path (d - 1) child_sleep;
              explored := a :: !explored
            end)
          cands
      end
    end
  in
  let outcome =
    try
      (match rebuild [] with
      | sys -> dfs sys [] depth []
      | exception Budget -> ());
      Exhausted
    with
    | Stop (s, v) -> Found (s, v)
    | Budget -> Run_budget
  in
  { outcome; runs = !runs; states = !states; sleep_skips = !sleep_skips }

(* -- The parallel search (DESIGN.md §17) ---------------------------------

   The root's subtrees fan out across the domain pool, each handed the
   same statically-computed sleep set the sequential search would give
   it (the root's own sleep set is empty, so subtree [i] may keep
   asleep exactly its earlier siblings that commute with its action).
   Counters are shared atomics; the replay budget is a shared pot.

   Canonical findings: a subtree that surfaces a violation cancels only
   LATER subtrees and earlier ones run to completion, so the finding at
   the lowest subtree index is the same DFS-minimal schedule the
   sequential search reports. On [Exhausted], [states]/[sleep_skips]
   match the sequential search; [runs] may differ (each subtree
   rebuilds its root instead of descending live, and budget is spent
   concurrently). Each system a task builds is confined to that task;
   each task memoizes its own copy of the independence relation (the
   closure's cache is a plain Hashtbl, not domain-safe to share). *)

module Dpool = Vsgc_ioa.Dpool

let explore_par ~depth ~max_runs ~probe ~jobs (sched : Schedule.t) =
  let runs = Atomic.make 0 in
  let states = Atomic.make 0 in
  let sleep_skips = Atomic.make 0 in
  let budget_hit = Atomic.make false in
  let stop_at = Atomic.make max_int in
  (* lowest subtree index that found a violation so far *)
  let prefix = sched.Schedule.entries in
  let found path v =
    let entries = prefix @ List.rev path in
    raise
      (Stop
         ( { sched with Schedule.entries; expect = Some v.Replay.kind; name = sched.Schedule.name },
           v ))
  in
  (* One subtree engine — the sequential [dfs] with shared counters and
     a cancellation probe checked before every replay and node. *)
  let engine ~independent ~cancelled =
    let rebuild path =
      if cancelled () then raise Cancelled;
      if Atomic.get runs >= max_runs then raise Budget;
      Atomic.incr runs;
      let sys = Sysconf.build sched.Schedule.conf in
      (try Replay.replay sys (prefix @ List.rev path) with
      | e -> (
          match Replay.violation_of_exn e with
          | Some v -> found path v
          | None -> raise e));
      sys
    in
    let probe_leaf sys path =
      if probe then
        try Replay.settle_once sys with
        | e -> (
            match Replay.violation_of_exn e with
            | Some v -> found (Schedule.Settle :: path) v
            | None -> raise e)
    in
    let node_candidates sys =
      Executor.candidates (System.exec sys)
      |> List.filter (fun (_, a) -> Action.category a <> Action.C_rf_lose)
      |> List.map (fun (i, a) -> (Schedule.key_of_action a, i, a))
      |> List.sort compare
    in
    let rec dfs sys path d sleep =
      if cancelled () then raise Cancelled;
      if d = 0 then probe_leaf sys path
      else begin
        let cands = node_candidates sys in
        if cands = [] then probe_leaf sys path
        else begin
          Atomic.incr states;
          let used_live = ref false in
          let explored = ref [] in
          List.iter
            (fun (key, owner, a) ->
              if List.exists (Action.equal a) sleep then Atomic.incr sleep_skips
              else begin
                let child_sleep =
                  List.filter (independent a) (sleep @ !explored)
                in
                let child_path = Schedule.Choose { owner; key } :: path in
                let child_sys =
                  if !used_live then rebuild child_path
                  else begin
                    used_live := true;
                    (try Executor.perform (System.exec sys) ~owner a with
                    | e -> (
                        match Replay.violation_of_exn e with
                        | Some v -> found child_path v
                        | None -> raise e));
                    sys
                  end
                in
                dfs child_sys child_path (d - 1) child_sleep;
                explored := a :: !explored
              end)
            cands
        end
      end
    in
    (rebuild, node_candidates, probe_leaf, dfs)
  in
  let report outcome =
    {
      outcome;
      runs = min (Atomic.get runs) max_runs;
      states = Atomic.get states;
      sleep_skips = Atomic.get sleep_skips;
    }
  in
  let independent0 = independence sched.Schedule.conf in
  let rebuild0, node_candidates0, probe_leaf0, _ =
    engine ~independent:independent0 ~cancelled:(fun () -> false)
  in
  match
    match rebuild0 [] with
    | sys ->
        let cands = Array.of_list (node_candidates0 sys) in
        if depth = 0 || Array.length cands = 0 then begin
          probe_leaf0 sys [];
          Exhausted
        end
        else begin
          Atomic.incr states;
          let acts = Array.map (fun (_, _, a) -> a) cands in
          let sleeps =
            Array.mapi
              (fun i (_, _, a) ->
                List.filter (independent0 a)
                  (Array.to_list (Array.sub acts 0 i)))
              cands
          in
          let findings = Array.make (Array.length cands) None in
          let task i =
            let key, owner, _ = cands.(i) in
            let cancelled () = i > Atomic.get stop_at in
            let independent = independence sched.Schedule.conf in
            let rebuild, _, _, dfs = engine ~independent ~cancelled in
            let path = [ Schedule.Choose { owner; key } ] in
            match dfs (rebuild path) path (depth - 1) sleeps.(i) with
            | () -> ()
            | exception Stop (s, v) ->
                findings.(i) <- Some (s, v);
                let rec lower () =
                  let cur = Atomic.get stop_at in
                  if i < cur && not (Atomic.compare_and_set stop_at cur i)
                  then lower ()
                in
                lower ()
            | exception Budget -> Atomic.set budget_hit true
            | exception Cancelled -> ()
          in
          Dpool.run (Dpool.global ~jobs) task (Array.length cands);
          match Array.find_map Fun.id findings with
          | Some (s, v) -> Found (s, v)
          | None -> if Atomic.get budget_hit then Run_budget else Exhausted
        end
    (* parity with the sequential search: a budget hit on the very
       first (root) replay reports the empty tree as exhausted *)
    | exception Budget -> Exhausted
  with
  | outcome -> report outcome
  | exception Stop (s, v) -> report (Found (s, v))
  | exception Budget -> report Run_budget

let explore ?(depth = 4) ?(max_runs = 10_000) ?(probe = true) ?(jobs = 1)
    (sched : Schedule.t) =
  if jobs <= 1 then explore_seq ~depth ~max_runs ~probe sched
  else explore_par ~depth ~max_runs ~probe ~jobs sched
