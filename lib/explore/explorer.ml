(* Bounded depth-first schedule exploration with sleep-set reduction.

   The explorer takes a schedule as a driving prefix (environment
   operations + seeded runs, typically derived from a scenario),
   replays it, then systematically enumerates every interleaving of the
   enabled locally-controlled actions up to a depth bound. Backtracking
   is replay-based: the executor offers no state snapshots, so each
   alternative is reached by rebuilding the system from its Sysconf and
   re-running prefix + path — cheap at the small configurations model
   checking targets, and exactly the mechanism that later reproduces a
   finding from its saved schedule.

   Reduction: a sleep-set variant of partial-order reduction. After a
   sibling action [a] has been fully explored at a node, [a] is added
   to the sleep set of the node's remaining children and stays asleep
   as long as every action taken commutes with it. Independence is
   derived from the components' declared read/write footprints
   ({!Vsgc_ioa.Footprint}): two actions commute when, summed over every
   component of the configuration, neither one's writes interfere with
   the other's reads or writes. This subsumes the historical hand-coded
   relation (deliveries at distinct receivers) and additionally sleeps
   e.g. [App_send]s at distinct processes and [Srv_deliver]s at
   distinct servers.

   At each leaf (and at nodes with no enabled candidates) the explorer
   optionally probes completion: a seeded run to quiescence plus the
   monitors' end-of-trace obligations, same procedure as a [Settle]
   entry. A violation surfaced anywhere — during the prefix, during a
   chosen step, or during a probe — is returned together with the
   schedule that reaches it. *)

module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor
module Action = Vsgc_types.Action

type outcome =
  | Found of Schedule.t * Replay.violation
  | Exhausted
  | Run_budget  (* max_runs replays spent before the tree was done *)

type report = {
  outcome : outcome;
  runs : int;  (* system rebuild+replays performed *)
  states : int;  (* interior nodes visited *)
  sleep_skips : int;  (* branches pruned by the sleep set *)
}

let pp_outcome ppf = function
  | Found (s, v) ->
      Fmt.pf ppf "violation %a via %d-entry schedule" Replay.pp_violation v
        (List.length s.Schedule.entries)
  | Exhausted -> Fmt.string ppf "exhausted (no violation)"
  | Run_budget -> Fmt.string ppf "run budget spent (no violation)"

let pp_report ppf r =
  Fmt.pf ppf "%a [runs %d, states %d, sleep skips %d]" pp_outcome r.outcome r.runs
    r.states r.sleep_skips

(* Two actions commute when neither can enable, disable, or change the
   effect of the other. The relation is derived from the declared
   footprints of one freshly built instance of the configuration;
   footprints are static per action, so the instance's state never
   matters and the relation is valid at every node of the tree. *)
let independence conf =
  let sys = Sysconf.build conf in
  Executor.independence (System.exec sys)

exception Stop of Schedule.t * Replay.violation
exception Budget

let explore ?(depth = 4) ?(max_runs = 10_000) ?(probe = true) (sched : Schedule.t) =
  let runs = ref 0 and states = ref 0 and sleep_skips = ref 0 in
  let independent = independence sched.Schedule.conf in
  let prefix = sched.Schedule.entries in
  (* Entries reaching the current node, newest first. *)
  let found path v =
    let entries = prefix @ List.rev path in
    raise
      (Stop
         ( { sched with Schedule.entries; expect = Some v.Replay.kind; name = sched.Schedule.name },
           v ))
  in
  (* Rebuild + replay up to the node [path] leads to. Any violation on
     the way ends the search: the path that raised is the finding. *)
  let rebuild path =
    if !runs >= max_runs then raise Budget;
    incr runs;
    let sys = Sysconf.build sched.Schedule.conf in
    (try Replay.replay sys (prefix @ List.rev path) with
    | e -> (
        match Replay.violation_of_exn e with
        | Some v -> found path v
        | None -> raise e));
    sys
  in
  let probe_leaf sys path =
    if probe then
      try Replay.settle_once sys with
      | e -> (
          match Replay.violation_of_exn e with
          | Some v -> found (Schedule.Settle :: path) v
          | None -> raise e)
  in
  (* Deterministic candidate order: sorted by (key, owner). Adversarial
     losses are the fairness assumption's to exclude, not the DFS's to
     enumerate. *)
  let node_candidates sys =
    Executor.candidates (System.exec sys)
    |> List.filter (fun (_, a) -> Action.category a <> Action.C_rf_lose)
    |> List.map (fun (i, a) -> (Schedule.key_of_action a, i, a))
    |> List.sort compare
  in
  (* [sys] is live at the node [path] reaches; it may be consumed by
     the first explored child (a replay-free descent), after which the
     remaining children rebuild. *)
  let rec dfs sys path d sleep =
    if d = 0 then probe_leaf sys path
    else begin
      let cands = node_candidates sys in
      if cands = [] then probe_leaf sys path
      else begin
        incr states;
        let used_live = ref false in
        let explored = ref [] in
        List.iter
          (fun (key, owner, a) ->
            if List.exists (Action.equal a) sleep then incr sleep_skips
            else begin
              (* the child may keep asleep whatever commutes with the
                 step taken: fully-explored siblings join the set *)
              let child_sleep = List.filter (independent a) (sleep @ !explored) in
              let child_path = Schedule.Choose { owner; key } :: path in
              let child_sys =
                if !used_live then rebuild child_path
                else begin
                  used_live := true;
                  (try Executor.perform (System.exec sys) ~owner a with
                  | e -> (
                      match Replay.violation_of_exn e with
                      | Some v -> found child_path v
                      | None -> raise e));
                  sys
                end
              in
              dfs child_sys child_path (d - 1) child_sleep;
              explored := a :: !explored
            end)
          cands
      end
    end
  in
  let outcome =
    try
      (match rebuild [] with
      | sys -> dfs sys [] depth []
      | exception Budget -> ());
      Exhausted
    with
    | Stop (s, v) -> Found (s, v)
    | Budget -> Run_budget
  in
  { outcome; runs = !runs; states = !states; sleep_skips = !sleep_skips }
