(** Schedule recording — turn any live run into a replayable schedule.

    Registers an executor choice hook so every performed step is
    captured as an explicit {!Schedule.entry.Choose}; crash/recover
    injections are captured as env ops through the same hook. Client
    pushes and oracle scripting have no executor footprint, so drive
    the system through the wrappers below (not {!System} directly) for
    a complete recording. *)

module System = Vsgc_harness.System

type t

val create : Sysconf.t -> t
val system : t -> System.t
val entries : t -> Schedule.entry list

val send : t -> Vsgc_types.Proc.t -> string -> unit
val reconfigure : ?origin:int -> t -> set:Vsgc_types.Proc.Set.t -> Vsgc_types.View.t
val start_change :
  t -> set:Vsgc_types.Proc.Set.t -> Vsgc_types.View.Sc_id.t Vsgc_types.Proc.Map.t
val deliver_view : ?origin:int -> t -> set:Vsgc_types.Proc.Set.t -> Vsgc_types.View.t
val crash : t -> Vsgc_types.Proc.t -> unit
val recover : t -> Vsgc_types.Proc.t -> unit

val run : t -> int -> unit
(** Up to [k] seeded steps, each captured as an explicit choice. *)

val settle : t -> unit
(** Settle; the trailing [Settle] entry is recorded even when a
    monitor or invariant raises, so the recording is complete. *)

val schedule : ?name:string -> ?expect:string -> t -> Schedule.t

val capture : ?name:string -> Sysconf.t -> (t -> unit) -> Schedule.t
(** Drive a function over a fresh recorder; a monitor or invariant
    violation is classified into the result's [expect] header, any
    other exception propagates. *)
