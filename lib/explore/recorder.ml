(* Schedule recording — turn any live run into a replayable schedule.

   A recorder builds a system from a Sysconf and registers an executor
   choice hook (Executor.add_choice_hook), so every performed step is
   captured as an explicit [Choose] entry — including steps taken
   inside seeded [run]s, whose RNG draws therefore need not be
   re-enacted at replay. Crash/recover injections surface through the
   same hook with no owner and are recorded as env ops. The remaining
   environment operations have no executor footprint (client pushes,
   oracle scripting), so drive the system through the recorder's
   wrappers, not [System] directly, or those inputs will be missing
   from the recording. *)

module System = Vsgc_harness.System
module Executor = Vsgc_ioa.Executor
module Action = Vsgc_types.Action

type t = {
  conf : Sysconf.t;
  sys : System.t;
  mutable rev_entries : Schedule.entry list;
}

let push t e = t.rev_entries <- e :: t.rev_entries

let create conf =
  let sys = Sysconf.build conf in
  let t = { conf; sys; rev_entries = [] } in
  Executor.add_choice_hook (System.exec sys) (fun owner a ->
      match (owner, a) with
      | Some i, _ -> push t (Schedule.Choose { owner = i; key = Schedule.key_of_action a })
      | None, Action.Crash p -> push t (Schedule.Env (Schedule.Crash p))
      | None, Action.Recover p -> push t (Schedule.Env (Schedule.Recover p))
      | None, _ -> ());
  t

let system t = t.sys
let entries t = List.rev t.rev_entries

(* -- Recorded drivers ---------------------------------------------------- *)

let send t p payload =
  push t (Schedule.Env (Schedule.Send { from = p; payload }));
  System.send t.sys p payload

let reconfigure ?(origin = 0) t ~set =
  push t (Schedule.Env (Schedule.Reconfigure { origin; set }));
  System.reconfigure ~origin t.sys ~set

let start_change t ~set =
  push t (Schedule.Env (Schedule.Start_change set));
  System.start_change t.sys ~set

let deliver_view ?(origin = 0) t ~set =
  push t (Schedule.Env (Schedule.Deliver_view { origin; set }));
  System.deliver_view ~origin t.sys ~set

(* Recorded as env ops by the choice hook (injection path). *)
let crash t p = System.crash t.sys p
let recover t p = System.recover t.sys p

let run t k = ignore (Executor.run ~max_steps:k (System.exec t.sys))

(* Steps taken while settling are captured as explicit choices; the
   trailing [Settle] entry is still recorded so replay re-discharges
   the monitors' end-of-trace obligations (the run-to-quiescence part
   is then a no-op: the explicit choices land it already quiescent). *)
let settle t =
  Fun.protect ~finally:(fun () -> push t Schedule.Settle) (fun () -> Replay.settle_once t.sys)

let schedule ?(name = "recorded") ?expect t =
  { Schedule.name; expect; conf = t.conf; entries = entries t }

(* Drive [f] over a fresh recorder; classify any monitor/invariant
   violation into the schedule's [expect] header. *)
let capture ?name conf f =
  let t = create conf in
  match f t with
  | () -> schedule ?name t
  | exception e -> (
      match Replay.violation_of_exn e with
      | Some v -> schedule ?name ~expect:v.Replay.kind t
      | None -> raise e)
