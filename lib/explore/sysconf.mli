(** A rebuildable system configuration.

    Everything needed to reconstruct a monitored system from scratch,
    so a saved schedule is self-contained: the same configuration plus
    the same entries reproduces the same execution deterministically. *)

module System = Vsgc_harness.System

type t = {
  n : int;  (** processes 0..n-1 *)
  seed : int;  (** scheduler seed, used by Run/Settle entries *)
  layer : Vsgc_core.Endpoint.layer;
  mutation : Vsgc_core.Vs_rfifo_ts.mutation option;
      (** seeded algorithm weakening under test, if any *)
}

val make :
  ?seed:int ->
  ?layer:Vsgc_core.Endpoint.layer ->
  ?mutation:Vsgc_core.Vs_rfifo_ts.mutation ->
  n:int ->
  unit ->
  t

val layer_to_string : Vsgc_core.Endpoint.layer -> string
val layer_of_string : string -> Vsgc_core.Endpoint.layer
val mutation_to_string : Vsgc_core.Vs_rfifo_ts.mutation option -> string
val mutation_of_string : string -> Vsgc_core.Vs_rfifo_ts.mutation option
val pp : Format.formatter -> t -> unit

val build : t -> System.t
(** Fresh system with all safety monitors and the §6/§7 invariants
    checked after each step. At layers below [`Full] the blocking
    invariants (6.11, 6.12) are omitted — those assert the block
    protocol that such layers leave out by construction. *)
