(** Deterministic schedule replay.

    Rebuilds the system a schedule describes (full oracle battery: all
    spec monitors + all §6/§7 invariants) and re-executes its entries.
    Explicit choices consume no randomness and seeded phases draw the
    same RNG trajectory, so the same schedule always reproduces the
    same execution — and the same violation at the same step. *)

module System = Vsgc_harness.System

type violation = { kind : string; message : string }
(** [kind] is the monitor name (e.g. ["vs_rfifo_spec"]) or the
    invariant name (e.g. ["6.7"]). *)

val pp_violation : Format.formatter -> violation -> unit

exception Divergence of string
(** A [Choose] entry matched no enabled candidate (strict replay). *)

val settle_steps : int
(** Step budget of [Settle] entries and explorer probes (shared so
    saved schedules replay through the identical code path). *)

val violation_of_exn : exn -> violation option
(** Classify monitor/invariant violations; [None] for anything else. *)

val apply_env : System.t -> Schedule.env_op -> unit
val apply_entry : System.t -> Schedule.entry -> unit
val settle_once : System.t -> unit
val replay : System.t -> Schedule.entry list -> unit

val run : Schedule.t -> (System.t, violation) result
(** Build + strict replay. [Error] is a classified violation; replay
    divergence and non-violation exceptions propagate. *)

val run_tolerant : Schedule.t -> Schedule.entry list * violation option
(** Shrinker-grade replay: skips unmatched choices and rejected env
    ops. Returns the entries that actually applied (a strict replay of
    exactly that list behaves identically) and the violation, if any. *)

type verdict = Reproduced | Unexpected of violation | Missing of string | Clean_ok

val check : Schedule.t -> verdict
(** Strict replay judged against the schedule's [expect] header. *)
