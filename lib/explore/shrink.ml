(* Delta-debugging schedule minimization.

   Classic ddmin over the entry list: split into n chunks, test each
   complement with a tolerant replay (deleting an entry can invalidate
   later ones — unmatched choices and rejected env ops are skipped, not
   fatal), keep any complement that still reproduces the expected
   violation kind, refine granularity otherwise. The result is then
   normalized — re-run tolerantly and reduced to the entries that
   actually applied — and the normalized schedule is verified with a
   strict replay before being returned, so callers always get a
   schedule that reproduces its [expect] exactly as written. *)

let split_chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go i xs =
    if i >= n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest =
        let rec take k acc = function
          | xs when k = 0 -> (List.rev acc, xs)
          | x :: xs -> take (k - 1) (x :: acc) xs
          | [] -> (List.rev acc, [])
        in
        take size [] xs
      in
      chunk :: go (i + 1) rest
  in
  go 0 xs

let ddmin reproduces entries =
  let rec go entries n =
    let len = List.length entries in
    if len < 2 then entries
    else
      let chunks = split_chunks (min n len) entries in
      let complements =
        List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks
      in
      match List.find_opt reproduces complements with
      | Some smaller -> go smaller (max (n - 1) 2)
      | None -> if n < len then go entries (min len (2 * n)) else entries
  in
  go entries 2

let minimize (s : Schedule.t) =
  match s.expect with
  | None -> s
  | Some kind ->
      let same_kind = function
        | Some v -> String.equal v.Replay.kind kind
        | None -> false
      in
      let reproduces entries =
        let _, v = Replay.run_tolerant { s with Schedule.entries } in
        same_kind v
      in
      if not (reproduces s.entries) then
        invalid_arg "Shrink.minimize: schedule does not reproduce its expect header";
      let best = ddmin reproduces s.entries in
      let applied, v = Replay.run_tolerant { s with Schedule.entries = best } in
      let entries = if same_kind v then applied else best in
      let cand = { s with Schedule.entries } in
      (* The normalized entries applied without a skip, so a strict
         replay performs the identical operations; verify anyway and
         fall back to the (reproducing) input if anything disagrees. *)
      match Replay.run cand with
      | Error v when String.equal v.Replay.kind kind -> cand
      | Ok _ | Error _ -> s
      | exception Replay.Divergence _ -> s
