(** Serializable schedules — replayable execution recipes.

    A schedule is a {!Sysconf.t} (how to rebuild the system) plus an
    ordered entry list: environment operations, bounded seeded runs,
    and explicit action choices. Replaying the same schedule against a
    freshly built system reproduces the same execution
    deterministically; every violation found by exploration, stress, or
    CI is saved in this form and shrunk into a regression-corpus
    artifact. The file format is one line per entry, human-readable. *)

open Vsgc_types

type env_op =
  | Reconfigure of { origin : int; set : Proc.Set.t }
  | Start_change of Proc.Set.t
  | Deliver_view of { origin : int; set : Proc.Set.t }
  | Send of { from : Proc.t; payload : string }
  | Crash of Proc.t
  | Recover of Proc.t

type entry =
  | Env of env_op
  | Run of int  (** up to k seeded scheduler steps *)
  | Settle  (** seeded run to quiescence + monitor discharge *)
  | Choose of { owner : int; key : string }
      (** perform the unique enabled action with this key as a step of
          component [owner] *)

type t = {
  name : string;
  expect : string option;
      (** violation kind this schedule reproduces; [None] means the
          replay must complete cleanly *)
  conf : Sysconf.t;
  entries : entry list;
}

val key_of_action : Action.t -> string
(** The printed form of the action, escaped onto one line — the match
    key used by {!Replay} to find the candidate again. *)

val choose : int -> Action.t -> entry

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

exception Parse_error of string

val to_string : t -> string
val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val save : t -> string -> unit
val load : string -> t

val of_scenario : Vsgc_harness.Scenario.t -> entry list
(** The env-expressible subset of the scenario language; [Check] steps
    carry closures and are dropped (monitors and invariants keep
    watching during replay). *)
