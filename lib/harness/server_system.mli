(** System assembly with the client-server membership stack of the
    paper's Figure 1: GCS end-points and clients as in {!System}, with
    views produced by dedicated membership servers exchanging proposals
    over their own reliable transport. Client p attaches to server
    [p mod n_servers]. *)

open Vsgc_types

type t

val create :
  ?seed:int ->
  ?weights:(Action.t -> float) ->
  ?strategy:Vsgc_core.Forwarding.kind ->
  ?layer:Vsgc_core.Endpoint.layer ->
  ?monitors:System.monitors ->
  ?send_while_requested:bool ->
  ?endpoint_builder:(Proc.t -> Vsgc_ioa.Component.packed) ->
  n_clients:int ->
  n_servers:int ->
  unit ->
  t
(** @raise Invalid_argument when [n_servers <= 0]. *)

val sys : t -> System.t
val server : t -> Server.t -> Vsgc_mbrshp.Servers.t ref
val srv_net : t -> Vsgc_mbrshp.Srv_net.state ref
val server_of : t -> Proc.t -> Server.t

val bootstrap : t -> unit
(** Kick every server's failure detector with the full server set —
    triggers the initial view agreement. *)

val fd_change : t -> perceived:Server.Set.t -> unit
(** Inject a consistent failure-detector event at every server in
    [perceived]: they now believe exactly [perceived] are alive. *)

val join : t -> Proc.t -> unit
val leave : t -> Proc.t -> unit
