(** System assembly: the composition of the paper's Figure 8 (a).

    [n] GCS end-points with their blocking clients, the CO_RFIFO
    service, and a membership service — by default the scriptable,
    spec-conformant Oracle; the client-server stack plugs in through
    {!Server_system}. Typed handles on every component state back the
    invariant checkers, scenario drivers, and assertions. *)

open Vsgc_types
module Executor = Vsgc_ioa.Executor
module Sync_runner = Vsgc_ioa.Sync_runner

type t

type monitors = [ `All | `Wv | `None ]

val create :
  ?seed:int ->
  ?weights:(Action.t -> float) ->
  ?strategy:Vsgc_core.Forwarding.kind ->
  ?gc:bool ->
  ?compact_sync:bool ->
  ?hierarchy:int ->
  ?mutation:Vsgc_core.Vs_rfifo_ts.mutation ->
  ?layer:Vsgc_core.Endpoint.layer ->
  ?monitors:monitors ->
  ?with_oracle:bool ->
  ?extra_components:Vsgc_ioa.Component.packed list ->
  ?extra_budgets:(unit -> Sync_runner.budget) list ->
  ?send_while_requested:bool ->
  ?endpoint_builder:(Proc.t -> Vsgc_ioa.Component.packed) ->
  ?client_builder:(Proc.t -> Vsgc_ioa.Component.packed) ->
  n:int ->
  unit ->
  t
(** Build a monitored system over processes 0..n-1. [endpoint_builder]
    substitutes custom end-points (e.g. the baseline comparator) — the
    invariant checkers then have no typed handles; [client_builder]
    substitutes application components (total order, replicas) — the
    client-log observations are then unavailable. *)

val exec : t -> Executor.t
val procs : t -> Proc.Set.t
val corfifo : t -> Vsgc_corfifo.state ref
val endpoint : t -> Proc.t -> Vsgc_core.Endpoint.t ref
val client : t -> Proc.t -> Vsgc_core.Client.t ref
val oracle : t -> Vsgc_mbrshp.Oracle.state ref
(** @raise Invalid_argument if built with [with_oracle:false]. *)

(** {1 Invariant checking} *)

val snapshot : t -> Vsgc_checker.Invariants.snapshot
val attach_invariants : ?every:int -> t -> unit
(** Check every §6/§7 invariant after each [every]'th step (default 1). *)

(** {1 Scenario drivers} *)

val send : t -> Proc.t -> string -> unit
val broadcast : t -> senders:Proc.Set.t -> per_sender:int -> unit

val reconfigure : ?origin:int -> t -> set:Proc.Set.t -> View.t
(** Script a full reconfiguration through the oracle: start_change to
    all of [set], then the agreed view. *)

val start_change : t -> set:Proc.Set.t -> View.Sc_id.t Proc.Map.t
val deliver_view : ?origin:int -> t -> set:Proc.Set.t -> View.t
val crash : t -> Proc.t -> unit
val recover : t -> Proc.t -> unit

(** {1 Running} *)

val run : ?max_steps:int -> ?stop:(unit -> bool) -> t -> Executor.outcome

val settle : ?max_steps:int -> t -> unit
(** Run to quiescence and discharge residual monitor obligations.
    @raise Vsgc_ioa.Monitor.Violation on any safety failure.
    @raise Failure if the step budget runs out (a liveness bug). *)

val round_budget : t -> unit -> Sync_runner.budget
(** The combined per-round delivery allowance over all transports. *)

val run_rounds : ?max_rounds:int -> ?stop:(unit -> bool) -> t -> int
(** Round-synchronous run; returns communication rounds executed. *)

(** {1 Observations} *)

val last_view_of : t -> Proc.t -> (View.t * Proc.Set.t) option
val all_in_view : t -> View.t -> bool
(** Every member's latest client view is exactly this view. *)

val delivered : t -> Proc.t -> (Proc.t * Msg.App_msg.t) list
val views_of : t -> Proc.t -> (View.t * Proc.Set.t) list
