(** Networked system assembly: every end-point (and optionally every
    membership server) in its own executor behind the deterministic
    loopback transport (DESIGN.md §10).

    With [n_servers = 0] membership is scripted through a standalone
    oracle whose bookkeeping matches the in-memory {!System}'s — the
    equivalence tests rely on identical scripts producing identical
    identifiers and views. With [n_servers > 0] the client-server
    membership algorithm runs for real, over packets. *)

open Vsgc_types

type t

val create :
  ?seed:int ->
  ?knobs:Vsgc_net.Loopback.knobs ->
  ?layer:Vsgc_core.Endpoint.layer ->
  n:int ->
  ?n_servers:int ->
  unit ->
  t
(** [n] client nodes (full mesh); [n_servers] server nodes (full mesh,
    client [p] attached to [p mod n_servers]). A (seed, knobs) pair
    fully determines every run. *)

val hub : t -> Vsgc_net.Loopback.hub
val client_node : t -> Proc.t -> Vsgc_net.Node.t
val server_node : t -> Server.t -> Vsgc_net.Node.t

val run : ?max_ticks:int -> t -> unit
(** Drive recv/step/tick rounds until nothing is in flight and every
    node is quiescent.
    @raise Failure when the tick budget runs out first. *)

val quiescent : t -> bool

(** {1 Scenario drivers} *)

val send : t -> Proc.t -> string -> unit
(** Queue a payload at client [p]'s application (takes effect on the
    next {!run}). *)

val broadcast : t -> senders:Proc.Set.t -> per_sender:int -> unit

val start_change : t -> set:Proc.Set.t -> View.Sc_id.t Proc.Map.t
(** Scripted membership only.
    @raise Invalid_argument when real servers are running. *)

val deliver_view : ?origin:int -> t -> set:Proc.Set.t -> View.t
val reconfigure : ?origin:int -> t -> set:Proc.Set.t -> View.t

(** {1 Observations} *)

val delivered : t -> Proc.t -> (Proc.t * Msg.App_msg.t) list
(** Oldest first. *)

val views_of : t -> Proc.t -> (View.t * Proc.Set.t) list
(** Oldest first. *)

val last_view_of : t -> Proc.t -> (View.t * Proc.Set.t) option
val all_in_view : t -> View.t -> bool

val malformed : t -> int
(** Malformed transport events across all nodes (0 in healthy runs). *)

val fingerprint : t -> string
(** Per-node trace fingerprints plus hub counters; equal iff every
    node behaved identically. *)
