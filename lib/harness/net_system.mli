(** Networked system assembly: every end-point (and optionally every
    membership server) in its own executor behind the deterministic
    loopback transport (DESIGN.md §10).

    With [n_servers = 0] membership is scripted through a standalone
    oracle whose bookkeeping matches the in-memory {!System}'s — the
    equivalence tests rely on identical scripts producing identical
    identifiers and views. With [n_servers > 0] the client-server
    membership algorithm runs for real, over packets.

    The fault surface (partitions over the created topology, §8 client
    crash/recovery, knob spikes) plus the monitor/invariant bridging
    below is what [lib/fault] drives (DESIGN.md §11). *)

open Vsgc_types

type t

val create :
  ?seed:int ->
  ?knobs:Vsgc_net.Loopback.knobs ->
  ?layer:Vsgc_core.Endpoint.layer ->
  ?arm:[ `Gcs | `Sym ] ->
  n:int ->
  ?n_servers:int ->
  unit ->
  t
(** [n] client nodes (full mesh); [n_servers] server nodes (full mesh,
    client [p] attached to [p mod n_servers]). A (seed, knobs, fault
    history) triple fully determines every run. [arm] picks the
    automaton every client node hosts: the scripted application client
    (default [`Gcs]) or the symmetric total-order client of DESIGN.md
    §16 ([`Sym]), whose deliveries surface through the same
    {!delivered}/{!views_of} observations. *)

val hub : t -> Vsgc_net.Loopback.hub
val client_node : t -> Proc.t -> Vsgc_net.Node.t
val server_node : t -> Server.t -> Vsgc_net.Node.t
val procs : t -> Proc.Set.t

val run : ?max_ticks:int -> t -> unit
(** Drive recv/step/tick rounds until nothing is in flight and every
    node is quiescent.
    @raise Failure when the tick budget runs out first. *)

val run_ticks : t -> int -> unit
(** Drive exactly that many rounds, quiescent or not — the hook for
    injecting a fault into the middle of a protocol exchange. *)

val quiescent : t -> bool

(** {1 Fault surface}

    All operations act on the base links established at [create]; a
    link is up iff no partition class separates its ends and neither
    end is crashed. Every operation is synchronous with the drive
    loop, so a (seed, fault history) pair replays exactly. *)

val set_partition : t -> Vsgc_wire.Node_id.t list list -> unit
(** Partition the deployment into the given classes: links inside a
    class stay up, links across classes (and links to nodes listed in
    no class) go down. Replaces any previous partition. *)

val heal : t -> unit
(** Remove the partition; links between non-crashed nodes come back
    up (both ends see [Up], clients re-run the Join handshake with
    their servers). *)

val crash_client : t -> Proc.t -> unit
(** Crash the §8 end-point and client automata at this node and take
    all its links down.
    @raise Invalid_argument if already crashed. *)

val restart_client : t -> Proc.t -> unit
(** Restart a crashed client from initial state under its original
    identity (§8 Recover) and bring its links back up, subject to the
    current partition.
    @raise Invalid_argument if not currently crashed. *)

val crashed_clients : t -> Proc.Set.t
(** Clients currently down. *)

val set_knobs : t -> Vsgc_net.Loopback.knobs -> unit
(** Replace the hub-wide default knobs (e.g. a delay spike); per-link
    overrides via {!hub} and {!Vsgc_net.Loopback.set_link_knobs}. *)

(** {1 Self-stabilization (DESIGN.md §13)} *)

val corrupt_client : t -> Proc.t -> salt:int -> Vsgc_core.Endpoint.corruption -> unit
(** Apply a seeded state corruption to client [p]'s end-point between
    rounds. The drive loop runs every live client's local legitimacy
    guards ({!Vsgc_core.Endpoint.self_check}) at the top of each round:
    a detected client is crashed on the spot — before it takes another
    locally controlled step — and restarted one round later through the
    ordinary §8 rejoin path, recycling its bounded counters.
    @raise Invalid_argument on a crashed client. *)

val detections : t -> (Proc.t * string * int) list
(** Every guard detection so far as (client, reason, hub time at
    detection), oldest first. Empty iff no corruption was detected —
    the "detected-and-rejoined" / "diverged" classifier's input. *)

val corruptions : t -> (Proc.t * int) list
(** Every {!corrupt_client} call so far as (client, hub time), oldest
    first — paired with {!detections} for detection-latency numbers. *)

(** {1 Specification oracles} *)

val attach_monitors : t -> Vsgc_ioa.Monitor.t list -> unit
(** Attach shared spec monitors to every client node executor. The
    drive loop is single-threaded with a fixed node order, so the
    monitors observe one deterministic merged trace. (Client
    executors only: the membership actions servers share with clients
    would otherwise be observed twice.) *)

val finish : t -> unit
(** Discharge the attached monitors' residual obligations.
    @raise Vsgc_ioa.Monitor.Violation on the first failure. *)

val snapshot : t -> Vsgc_checker.Invariants.snapshot
(** Global state of the client-hosted automata for the §6/§7 invariant
    checkers. Meaningful at quiescent points: the wire state lives in
    the hub as frames, so CO_RFIFO channels are rendered empty — which
    they are once the system is quiescent. *)

val check_invariants : t -> unit
(** Run the invariant battery on {!snapshot}, skipping the blocking
    invariants (6.11/6.12) below the [`Full] layer.
    @raise Vsgc_checker.Invariants.Invariant_violation on failure. *)

(** {1 Scenario drivers} *)

val send : t -> Proc.t -> string -> unit
(** Queue a payload at client [p]'s application (takes effect on the
    next {!run}). *)

val broadcast : t -> senders:Proc.Set.t -> per_sender:int -> unit

val start_change : t -> set:Proc.Set.t -> View.Sc_id.t Proc.Map.t
(** Scripted membership only.
    @raise Invalid_argument when real servers are running. *)

val deliver_view : ?origin:int -> t -> set:Proc.Set.t -> View.t
val reconfigure : ?origin:int -> t -> set:Proc.Set.t -> View.t

(** {1 Observations} *)

val delivered : t -> Proc.t -> (Proc.t * Msg.App_msg.t) list
(** Oldest first. *)

val views_of : t -> Proc.t -> (View.t * Proc.Set.t) list
(** Oldest first. *)

val last_view_of : t -> Proc.t -> (View.t * Proc.Set.t) option
val all_in_view : t -> View.t -> bool

val malformed : t -> int
(** Malformed transport events across all nodes (0 in healthy runs). *)

val steps : t -> int
(** Actions performed across all node executors — the soak layer's
    step count. *)

val fingerprint : t -> string
(** Per-node trace fingerprints plus hub counters; equal iff every
    node behaved identically. *)
