(* System assembly: the composition of Figure 8 (a).

   n GCS end-points and their blocking clients, the CO_RFIFO service,
   and a membership service — by default the scriptable Oracle
   (spec-conformant by construction); the client-server membership
   stack of vsgc_mbrshp.Servers plugs in through [extra_components].
   Typed handles on every component state back the invariant checkers,
   scenario drivers and assertions. *)

open Vsgc_types
module Executor = Vsgc_ioa.Executor
module Sync_runner = Vsgc_ioa.Sync_runner

type t = {
  exec : Executor.t;
  procs : Proc.Set.t;
  corfifo : Vsgc_corfifo.state ref;
  oracle : Vsgc_mbrshp.Oracle.state ref option;
  endpoints : Vsgc_core.Endpoint.t ref Proc.Map.t;
  clients : Vsgc_core.Client.t ref Proc.Map.t;
  extra_budgets : (unit -> Sync_runner.budget) list;
  ever_crashed : Proc.Set.t ref;
}

type monitors = [ `All | `Wv | `None ]

let create ?(seed = 42) ?weights ?strategy ?gc ?compact_sync ?hierarchy ?mutation
    ?(layer = `Full) ?(monitors = `All)
    ?(with_oracle = true) ?(extra_components = []) ?(extra_budgets = [])
    ?(send_while_requested = true) ?endpoint_builder ?client_builder ~n () =
  let procs = Proc.Set.of_range 0 (n - 1) in
  let corfifo_c, corfifo = Vsgc_corfifo.component () in
  let oracle_pair = if with_oracle then Some (Vsgc_mbrshp.Oracle.component ()) else None in
  let endpoints, endpoint_cs =
    match endpoint_builder with
    | Some build ->
        (* custom end-points (e.g. the baseline comparator): no typed
           handles, so the §6/§7 invariant checkers are unavailable *)
        (Proc.Map.empty, Proc.Set.fold (fun p cs -> build p :: cs) procs [])
    | None ->
        Proc.Set.fold
          (fun p (m, cs) ->
            let c, r =
              Vsgc_core.Endpoint.component ?strategy ?gc ?compact_sync ?hierarchy
                ?mutation ~layer p
            in
            (Proc.Map.add p r m, c :: cs))
          procs (Proc.Map.empty, [])
  in
  let clients, client_cs =
    match client_builder with
    | Some build ->
        (* custom application components (total order, replicas):
           client-log observations are unavailable through [client] *)
        (Proc.Map.empty, Proc.Set.fold (fun p cs -> build p :: cs) procs [])
    | None ->
        Proc.Set.fold
          (fun p (m, cs) ->
            let c, r = Vsgc_core.Client.component ~send_while_requested p in
            (Proc.Map.add p r m, c :: cs))
          procs (Proc.Map.empty, [])
  in
  let components =
    (corfifo_c :: (match oracle_pair with Some (c, _) -> [ c ] | None -> []))
    @ endpoint_cs @ client_cs @ extra_components
  in
  let exec = Executor.create ~seed ?weights components in
  let ever_crashed = ref Proc.Set.empty in
  Executor.add_step_hook exec (fun a ->
      match a with
      | Action.Crash p -> ever_crashed := Proc.Set.add p !ever_crashed
      | _ -> ());
  (match monitors with
  | `All -> List.iter (Executor.add_monitor exec) (Vsgc_spec.All.safety ())
  | `Wv -> List.iter (Executor.add_monitor exec) (Vsgc_spec.All.wv_only ())
  | `None -> ());
  {
    exec;
    procs;
    corfifo;
    oracle = (match oracle_pair with Some (_, r) -> Some r | None -> None);
    endpoints;
    clients;
    extra_budgets;
    ever_crashed;
  }

let exec t = t.exec
let procs t = t.procs
let corfifo t = t.corfifo
let endpoint t p = Proc.Map.find p t.endpoints
let client t p = Proc.Map.find p t.clients

let oracle t =
  match t.oracle with
  | Some r -> r
  | None -> invalid_arg "System.oracle: system built without the oracle"

(* -- Invariant checking -------------------------------------------------- *)

(* Snapshot the composed system's global state for the invariant
   checkers. Crashed end-points are excluded (§8: the invariants hold
   whenever crashed_p is false). *)
let snapshot t : Vsgc_checker.Invariants.snapshot =
  let endpoints =
    Proc.Map.filter_map
      (fun _ r -> if Vsgc_core.Endpoint.crashed !r then None else Some !r)
      t.endpoints
  in
  let clients =
    Proc.Map.filter_map
      (fun _ r -> if !r.Vsgc_core.Client.crashed then None else Some !r)
      t.clients
  in
  {
    endpoints;
    clients;
    net = !(t.corfifo);
    mbrshp = Option.map ( ! ) t.oracle;
    reborn = !(t.ever_crashed);
  }

(* Check every invariant of §6/§7 after each [every]'th step. *)
let attach_invariants ?(every = 1) t =
  let count = ref 0 in
  Executor.add_step_hook t.exec (fun _ ->
      incr count;
      if !count mod every = 0 then Vsgc_checker.Invariants.check_all (snapshot t))

(* -- Scenario drivers --------------------------------------------------- *)

let send t p payload = Vsgc_core.Client.push (client t p) payload

let broadcast t ~senders ~per_sender =
  Proc.Set.iter
    (fun p ->
      for i = 1 to per_sender do
        send t p (Fmt.str "m-%a-%d" Proc.pp p i)
      done)
    senders

(* Script a full reconfiguration through the oracle: start_change to
   all of [set], then the agreed view. Returns the view. *)
let reconfigure ?(origin = 0) t ~set = Vsgc_mbrshp.Oracle.change (oracle t) ~origin ~set ()

let start_change t ~set = Vsgc_mbrshp.Oracle.queue_start_change (oracle t) ~set

let deliver_view ?(origin = 0) t ~set =
  Vsgc_mbrshp.Oracle.form_view (oracle t) ~origin ~set

let crash t p = Executor.inject t.exec (Action.Crash p)
let recover t p = Executor.inject t.exec (Action.Recover p)

(* -- Running ------------------------------------------------------------ *)

let run ?max_steps ?stop t = Executor.run ?max_steps ?stop t.exec

(* Run to quiescence and then discharge residual monitor obligations.
   Raises Monitor.Violation on any safety failure; raises Failure if
   the step budget is exhausted (a liveness bug in the algorithms). *)
let settle ?(max_steps = 500_000) t =
  (match Executor.run ~max_steps t.exec with
  | Executor.Quiescent _ -> ()
  | Executor.Step_limit -> failwith "System.settle: step limit reached before quiescence");
  Executor.finish t.exec

let round_budget t () =
  Sync_runner.(
    let budgets = Vsgc_corfifo.round_budget t.corfifo () :: List.map (fun f -> f ()) t.extra_budgets in
    {
      allow = (fun a -> List.exists (fun b -> b.allow a) budgets);
      consume =
        (fun a ->
          match List.find_opt (fun b -> b.allow a) budgets with
          | Some b -> b.consume a
          | None -> ());
    })

(* Round-synchronous run (see Sync_runner): returns communication
   rounds executed before [stop] held or the system went quiet. *)
let run_rounds ?max_rounds ?(stop = fun () -> false) t =
  Sync_runner.run_rounds ?max_rounds t.exec ~make_budget:(round_budget t) ~stop

(* -- Observations -------------------------------------------------------- *)

let last_view_of t p = Vsgc_core.Client.last_view !(client t p)

let all_in_view t view =
  Proc.Set.for_all
    (fun p ->
      match last_view_of t p with
      | Some (v, _) -> View.equal v view
      | None -> false)
    (View.set view)

let delivered t p = Vsgc_core.Client.delivered !(client t p)
let views_of t p = Vsgc_core.Client.views !(client t p)
