(* System assembly with the client-server membership stack of Figure 1:
   GCS end-points and clients as in System, but views come from
   dedicated membership servers (vsgc_mbrshp.Servers) exchanging
   proposals over their own reliable transport, instead of the
   scriptable oracle. *)

open Vsgc_types
module Servers = Vsgc_mbrshp.Servers
module Srv_net = Vsgc_mbrshp.Srv_net
module Executor = Vsgc_ioa.Executor

type t = {
  sys : System.t;
  servers : Servers.t ref Server.Map.t;
  srv_net : Srv_net.state ref;
  server_set : Server.Set.t;
  n_servers : int;
}

(* Client p is attached to server (p mod n_servers). *)
let server_of t p = Proc.to_int p mod t.n_servers

let create ?seed ?weights ?strategy ?layer ?monitors ?send_while_requested
    ?endpoint_builder ~n_clients ~n_servers () =
  if n_servers <= 0 then invalid_arg "Server_system.create: need at least one server";
  let server_set = Server.Set.of_range 0 (n_servers - 1) in
  let clients_of s =
    let rec go acc p =
      if p >= n_clients then acc
      else go (if p mod n_servers = s then Proc.Set.add p acc else acc) (p + 1)
    in
    go Proc.Set.empty 0
  in
  let srv_net_c, srv_net = Srv_net.component () in
  let servers, server_cs =
    Server.Set.fold
      (fun s (m, cs) ->
        let c, r = Servers.component ~clients:(clients_of s) ~servers:server_set s in
        (Server.Map.add s r m, c :: cs))
      server_set (Server.Map.empty, [])
  in
  let sys =
    System.create ?seed ?weights ?strategy ?layer ?monitors ?send_while_requested
      ?endpoint_builder ~with_oracle:false
      ~extra_components:(srv_net_c :: server_cs)
      ~extra_budgets:[ Srv_net.round_budget srv_net ]
      ~n:n_clients ()
  in
  { sys; servers; srv_net; server_set; n_servers }

let sys t = t.sys
let server t s = Server.Map.find s t.servers
let srv_net t = t.srv_net

(* Kick every server's failure detector with the full server set —
   triggers the initial view agreement. *)
let bootstrap t =
  Server.Set.iter
    (fun s -> Executor.inject (System.exec t.sys) (Action.Fd_change (s, t.server_set)))
    t.server_set

(* Inject a consistent failure-detector event at every server in
   [perceived]: they now believe exactly [perceived] are alive. *)
let fd_change t ~perceived =
  Server.Set.iter
    (fun s -> Executor.inject (System.exec t.sys) (Action.Fd_change (s, perceived)))
    perceived

let join t p =
  let s = server_of t p in
  Executor.inject (System.exec t.sys) (Action.Client_join (p, s))

let leave t p =
  let s = server_of t p in
  Executor.inject (System.exec t.sys) (Action.Client_leave (p, s))
