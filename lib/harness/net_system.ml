(* Networked system assembly: the Figure 8 (a) composition again, but
   with every end-point (and, optionally, every membership server) in
   its own executor behind the deterministic loopback transport —
   deployment topology under harness control.

   Two membership modes:
   - [n_servers = 0]: scripted membership. A standalone Oracle state
     validates and sequences the scripted events exactly as the
     in-memory System's oracle component does, then the events are
     injected into each client node. Same script => same cids and
     views on both sides, which is what the equivalence tests check.
   - [n_servers > 0]: real client-server membership. Server nodes run
     the Servers automaton; clients join over the wire; views are
     proposed, committed and shipped as packets.

   The drive loop is synchronous and deterministic: recv+handle at
   every node (fixed order), step every node and ship its packets,
   tick the hub — until nothing is in flight and every node is
   quiescent. *)

open Vsgc_types
module Node = Vsgc_net.Node
module Transport = Vsgc_net.Transport
module Loopback = Vsgc_net.Loopback
module Node_id = Vsgc_wire.Node_id
module Oracle = Vsgc_mbrshp.Oracle

type t = {
  hub : Loopback.hub;
  clients : (Proc.t * (Node.t * Transport.t)) list;  (* ascending *)
  servers : (Server.t * (Node.t * Transport.t)) list;  (* ascending *)
  script : Oracle.state ref;  (* drives membership when servers = [] *)
}

let create ?(seed = 42) ?knobs ?layer ~n ?(n_servers = 0) () =
  let hub = Loopback.hub ~seed ?knobs () in
  let clients =
    List.init n (fun p ->
        let attach = Server.of_int (if n_servers = 0 then 0 else p mod n_servers) in
        let node =
          Node.create ~seed:(seed + 1 + p) ?layer
            (Node.Client_node { proc = p; attach })
        in
        (p, (node, Loopback.attach hub (Node_id.Client p))))
  in
  let servers =
    List.init n_servers (fun s ->
        let node =
          Node.create ~seed:(seed + 1 + n + s) (Node.Server_node { server = s })
        in
        (s, (node, Loopback.attach hub (Node_id.Server s))))
  in
  (* Full client mesh (CO_RFIFO is point-to-point between any two
     members), each client to its own server, full server mesh. *)
  List.iter
    (fun (p, (_, tr)) ->
      List.iter
        (fun (q, _) -> if q > p then Transport.connect tr (Node_id.Client q))
        clients;
      if n_servers > 0 then
        Transport.connect tr (Node_id.Server (p mod n_servers)))
    clients;
  List.iter
    (fun (s, (_, tr)) ->
      List.iter
        (fun (s', _) -> if s' > s then Transport.connect tr (Node_id.Server s'))
        servers)
    servers;
  { hub; clients; servers; script = ref Oracle.initial }

let hub t = t.hub

let client_node t p =
  match List.assoc_opt p t.clients with
  | Some (node, _) -> node
  | None -> invalid_arg (Fmt.str "Net_system.client_node: no client %a" Proc.pp p)

let server_node t s =
  match List.assoc_opt s t.servers with
  | Some (node, _) -> node
  | None ->
      invalid_arg (Fmt.str "Net_system.server_node: no server %a" Server.pp s)

let nodes t = List.map snd t.clients @ List.map snd t.servers

(* -- Driving ------------------------------------------------------------- *)

let quiescent t =
  Loopback.idle t.hub && List.for_all (fun (n, _) -> Node.quiescent n) (nodes t)

let run ?(max_ticks = 50_000) t =
  let rec go budget =
    List.iter
      (fun (node, tr) -> List.iter (Node.handle node) (Transport.recv tr))
      (nodes t);
    List.iter
      (fun (node, tr) ->
        List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Node.step node))
      (nodes t);
    if not (quiescent t) then
      if budget = 0 then failwith "Net_system.run: tick budget exhausted"
      else begin
        Loopback.tick t.hub;
        go (budget - 1)
      end
  in
  go max_ticks

(* -- Scenario drivers ---------------------------------------------------- *)

let send t p payload = Node.push (client_node t p) payload

let broadcast t ~senders ~per_sender =
  Proc.Set.iter
    (fun p ->
      for i = 1 to per_sender do
        send t p (Fmt.str "m-%a-%d" Proc.pp p i)
      done)
    senders

(* Scripted membership: queue through the standalone oracle state (so
   identifiers and view ids follow exactly the in-memory System's
   bookkeeping), then move the queued events into the node inboxes. *)
let require_scripted t what =
  if t.servers <> [] then
    invalid_arg (Fmt.str "Net_system.%s: system runs real servers" what)

let drain_script t =
  Proc.Map.iter
    (fun p (pst : Oracle.pst) ->
      List.iter
        (fun a -> Node.inject (client_node t p) a)
        (List.rev pst.Oracle.pending))
    !(t.script);
  t.script :=
    Proc.Map.map (fun (pst : Oracle.pst) -> { pst with Oracle.pending = [] })
      !(t.script)

let start_change t ~set =
  require_scripted t "start_change";
  let cids = Oracle.queue_start_change t.script ~set in
  drain_script t;
  cids

let deliver_view ?(origin = 0) t ~set =
  require_scripted t "deliver_view";
  let v = Oracle.form_view t.script ~origin ~set in
  drain_script t;
  v

let reconfigure ?(origin = 0) t ~set =
  require_scripted t "reconfigure";
  let v = Oracle.change t.script ~origin ~set () in
  drain_script t;
  v

(* -- Observations --------------------------------------------------------- *)

let delivered t p = Node.delivered (client_node t p)
let views_of t p = Node.views (client_node t p)
let last_view_of t p = Node.last_view (client_node t p)

let all_in_view t view =
  Proc.Set.for_all
    (fun p ->
      match last_view_of t p with
      | Some (v, _) -> View.equal v view
      | None -> false)
    (View.set view)

let malformed t =
  List.fold_left (fun acc (n, _) -> acc + Node.malformed n) 0 (nodes t)

(* One digest for the whole deployment: per-node trace fingerprints in
   node order plus the hub's delivery counters. Equal iff every node
   behaved identically — the determinism regression's yardstick. *)
let fingerprint t =
  let parts =
    List.map
      (fun (node, _) ->
        Fmt.str "%s=%s" (Node_id.to_string (Node.id node)) (Node.fingerprint node))
      (nodes t)
  in
  Fmt.str "%s|hub:%d/%d" (String.concat ";" parts) (Loopback.delivered t.hub)
    (Loopback.dropped t.hub)
