(* Networked system assembly: the Figure 8 (a) composition again, but
   with every end-point (and, optionally, every membership server) in
   its own executor behind the deterministic loopback transport —
   deployment topology under harness control.

   Two membership modes:
   - [n_servers = 0]: scripted membership. A standalone Oracle state
     validates and sequences the scripted events exactly as the
     in-memory System's oracle component does, then the events are
     injected into each client node. Same script => same cids and
     views on both sides, which is what the equivalence tests check.
   - [n_servers > 0]: real client-server membership. Server nodes run
     the Servers automaton; clients join over the wire; views are
     proposed, committed and shipped as packets.

   The drive loop is synchronous and deterministic: recv+handle at
   every node (fixed order), step every node and ship its packets,
   tick the hub — until nothing is in flight and every node is
   quiescent.

   Fault surface (lib/fault drives it, tests use it directly too):
   - [set_partition]/[heal] force hub links down/up along the
     topology established at [create] (the base links). A link is up
     iff no partition class separates its ends AND neither end is
     crashed; every fault operation recomputes that predicate over all
     base links, so crash+partition compose.
   - [crash_client]/[restart_client] reuse the §8 crash/recovery layer
     of the hosted end-point (Crash/Recover actions) and take the
     node's links down/up with it. On restart the transport [Up] from
     the attach server re-triggers the Join handshake, so a reborn
     client re-enters membership by the ordinary protocol.
   - [attach_monitors] attaches shared spec monitors to every CLIENT
     node executor: the drive loop is single-threaded and visits nodes
     in a fixed order, so the monitors observe one deterministic
     merged trace. Server executors are excluded — the membership
     actions they share with clients would otherwise be observed
     twice. [check_invariants] snapshots the client-hosted automata at
     quiescent points (in-flight CO_RFIFO state is not reconstructible
     from outside, and at quiescence the channels are empty). *)

open Vsgc_types
module Node = Vsgc_net.Node
module Transport = Vsgc_net.Transport
module Loopback = Vsgc_net.Loopback
module Node_id = Vsgc_wire.Node_id
module Oracle = Vsgc_mbrshp.Oracle

type t = {
  hub : Loopback.hub;
  clients : (Proc.t * (Node.t * Transport.t)) list;  (* ascending *)
  servers : (Server.t * (Node.t * Transport.t)) list;  (* ascending *)
  script : Oracle.state ref;  (* drives membership when servers = [] *)
  layer : Vsgc_core.Endpoint.layer;
  arm : [ `Gcs | `Sym ];  (* which client automaton every node hosts *)
  base_links : (Node_id.t * Node_id.t) list;  (* topology at create *)
  mutable partition : Node_id.t list list option;  (* None = healed *)
  mutable down_nodes : Node_id.t list;  (* currently crashed clients *)
  ever_crashed : Proc.Set.t ref;
  mutable monitors : Vsgc_ioa.Monitor.t list;
  mutable healing : Proc.t list;  (* detected last round, restart next *)
  mutable detections : (Proc.t * string * int) list;  (* newest first *)
  mutable corruptions : (Proc.t * int) list;  (* newest first *)
}

let create ?(seed = 42) ?knobs ?(layer = `Full) ?(arm = `Gcs) ~n
    ?(n_servers = 0) () =
  let hub = Loopback.hub ~seed ?knobs () in
  let clients =
    List.init n (fun p ->
        let attach = Server.of_int (if n_servers = 0 then 0 else p mod n_servers) in
        let role =
          match arm with
          | `Gcs -> Node.Client_node { proc = p; attach }
          | `Sym -> Node.Sym_client_node { proc = p; attach }
        in
        let node = Node.create ~seed:(seed + 1 + p) ~layer role in
        (p, (node, Loopback.attach hub (Node_id.Client p))))
  in
  let servers =
    List.init n_servers (fun s ->
        let node =
          Node.create ~seed:(seed + 1 + n + s) (Node.Server_node { server = s })
        in
        (s, (node, Loopback.attach hub (Node_id.Server s))))
  in
  (* Full client mesh (CO_RFIFO is point-to-point between any two
     members), each client to its own server, full server mesh. *)
  let base_links = ref [] in
  let connect tr a b =
    Transport.connect tr b;
    base_links := (a, b) :: !base_links
  in
  List.iter
    (fun (p, (_, tr)) ->
      List.iter
        (fun (q, _) ->
          if q > p then connect tr (Node_id.Client p) (Node_id.Client q))
        clients;
      if n_servers > 0 then
        connect tr (Node_id.Client p) (Node_id.Server (p mod n_servers)))
    clients;
  List.iter
    (fun (s, (_, tr)) ->
      List.iter
        (fun (s', _) ->
          if s' > s then connect tr (Node_id.Server s) (Node_id.Server s'))
        servers)
    servers;
  {
    hub;
    clients;
    servers;
    script = ref Oracle.initial;
    layer;
    arm;
    base_links = List.rev !base_links;
    partition = None;
    down_nodes = [];
    ever_crashed = ref Proc.Set.empty;
    monitors = [];
    healing = [];
    detections = [];
    corruptions = [];
  }

let hub t = t.hub

let client_node t p =
  match List.assoc_opt p t.clients with
  | Some (node, _) -> node
  | None -> invalid_arg (Fmt.str "Net_system.client_node: no client %a" Proc.pp p)

let server_node t s =
  match List.assoc_opt s t.servers with
  | Some (node, _) -> node
  | None ->
      invalid_arg (Fmt.str "Net_system.server_node: no server %a" Server.pp s)

let nodes t = List.map snd t.clients @ List.map snd t.servers

let procs t = Proc.Set.of_list (List.map fst t.clients)

let crashed_clients t =
  List.fold_left
    (fun acc id ->
      match id with
      | Node_id.Client p -> Proc.Set.add p acc
      | Node_id.Server _ | Node_id.Kv_client _ -> acc)
    Proc.Set.empty t.down_nodes

(* -- Fault surface -------------------------------------------------------- *)

let is_down t id = List.exists (Node_id.equal id) t.down_nodes

let same_class classes a b =
  List.exists
    (fun cls ->
      List.exists (Node_id.equal a) cls && List.exists (Node_id.equal b) cls)
    classes

(* Recompute every base link's desired state from the partition and
   the crash set. Idempotent per link (Loopback.set_link only pushes
   Up/Down on actual transitions), so fault operations compose by
   just calling this again. *)
let apply_links t =
  List.iter
    (fun (a, b) ->
      let up =
        (match t.partition with
        | None -> true
        | Some classes -> same_class classes a b)
        && (not (is_down t a))
        && not (is_down t b)
      in
      Loopback.set_link t.hub a b ~up)
    t.base_links

let set_partition t classes =
  t.partition <- Some classes;
  apply_links t

let heal t =
  t.partition <- None;
  apply_links t

let crash_client t p =
  let node = client_node t p in
  if Node.crashed node then
    invalid_arg (Fmt.str "Net_system.crash_client: %a already crashed" Proc.pp p);
  Node.inject node (Action.Crash p);
  t.down_nodes <- Node_id.Client p :: t.down_nodes;
  t.ever_crashed := Proc.Set.add p !(t.ever_crashed);
  apply_links t;
  (* The dead node's session buffers die with it: §8's corfifo crash
     wipes the channels into p and lets p's outgoing traffic drop. *)
  Loopback.discard t.hub (Node_id.Client p)

let restart_client t p =
  let node = client_node t p in
  if not (is_down t (Node_id.Client p)) then
    invalid_arg (Fmt.str "Net_system.restart_client: %a not crashed" Proc.pp p);
  t.down_nodes <-
    List.filter (fun id -> not (Node_id.equal id (Node_id.Client p))) t.down_nodes;
  Node.inject node (Action.Recover p);
  apply_links t

let set_knobs t knobs = Loopback.set_knobs t.hub knobs

let corrupt_client t p ~salt field =
  let node = client_node t p in
  if Node.crashed node || is_down t (Node_id.Client p) then
    invalid_arg (Fmt.str "Net_system.corrupt_client: %a is crashed" Proc.pp p);
  t.corruptions <- (p, Loopback.now t.hub) :: t.corruptions;
  Node.corrupt node ~salt field

let detections t = List.rev t.detections
let corruptions t = List.rev t.corruptions

(* -- Driving ------------------------------------------------------------- *)

let quiescent t =
  t.healing = []
  && Loopback.idle t.hub
  && List.for_all (fun (n, _) -> Node.quiescent n) (nodes t)

(* Self-stabilization (DESIGN.md §13): before a round's inputs reach
   the automata, restart the clients whose corruption was detected last
   round, then run every live client's local legitimacy guards. A
   detected client is crashed on the spot — so a detectably corrupted
   end-point never takes another locally controlled step — and queued
   for restart at the next round's scan, one round of downtime, exactly
   the ordinary §8 crash-rejoin path (bounded counters recycle because
   rejoining from initial state resets them all). *)
let self_stabilize t =
  let heal = t.healing in
  t.healing <- [];
  List.iter
    (fun p -> if is_down t (Node_id.Client p) then restart_client t p)
    heal;
  List.iter
    (fun (p, (node, _)) ->
      if (not (Node.crashed node)) && not (is_down t (Node_id.Client p)) then
        match Node.self_check node with
        | Some reason ->
            t.detections <- (p, reason, Loopback.now t.hub) :: t.detections;
            crash_client t p;
            t.healing <- t.healing @ [ p ]
        | None -> ())
    t.clients

(* One synchronous round: drain the wire into every node, then step
   every node and ship what it produced. Fixed node order makes the
   merged action stream (and so the shared monitors) deterministic. *)
let round t =
  self_stabilize t;
  List.iter
    (fun (node, tr) -> List.iter (Node.handle node) (Transport.recv tr))
    (nodes t);
  List.iter
    (fun (node, tr) ->
      List.iter (fun (dst, pkt) -> Transport.send tr dst pkt) (Node.step node))
    (nodes t)

let run ?(max_ticks = 50_000) t =
  let rec go budget =
    round t;
    if not (quiescent t) then
      if budget = 0 then failwith "Net_system.run: tick budget exhausted"
      else begin
        Loopback.tick t.hub;
        go (budget - 1)
      end
  in
  go max_ticks

(* Exactly [k] rounds, quiescent or not — for injecting faults into
   the middle of a protocol exchange (e.g. mid view-change). *)
let run_ticks t k =
  for _ = 1 to k do
    round t;
    Loopback.tick t.hub
  done

(* -- Specification oracles ------------------------------------------------ *)

let attach_monitors t ms =
  t.monitors <- t.monitors @ ms;
  List.iter
    (fun m ->
      List.iter
        (fun (_, (node, _)) -> Vsgc_ioa.Executor.add_monitor (Node.executor node) m)
        t.clients)
    ms

let finish t =
  List.iter
    (fun (m : Vsgc_ioa.Monitor.t) ->
      match m.at_end () with
      | [] -> ()
      | msg :: _ ->
          raise (Vsgc_ioa.Monitor.Violation { monitor = m.name; message = msg }))
    t.monitors

let snapshot t : Vsgc_checker.Invariants.snapshot =
  let endpoints =
    List.fold_left
      (fun m (p, (node, _)) ->
        let ep = Node.endpoint_state node in
        if Vsgc_core.Endpoint.crashed ep then m else Proc.Map.add p ep m)
      Proc.Map.empty t.clients
  in
  (* The symmetric arm hosts no [Client] automaton, so its snapshot
     carries an empty client map: the client-level invariants hold
     vacuously, and the Skeen monitor does the arm's checking. *)
  let clients =
    match t.arm with
    | `Sym -> Proc.Map.empty
    | `Gcs ->
        List.fold_left
          (fun m (p, (node, _)) ->
            let c = Node.client_state node in
            if c.Vsgc_core.Client.crashed then m else Proc.Map.add p c m)
          Proc.Map.empty t.clients
  in
  {
    endpoints;
    clients;
    (* The wire state lives in the hub as frames, not as CO_RFIFO
       channel contents; at the quiescent points where this snapshot
       is taken the channels are empty, which [initial] renders. *)
    net = Vsgc_corfifo.initial;
    mbrshp = (if t.servers = [] then Some !(t.script) else None);
    reborn = !(t.ever_crashed);
  }

(* The blocking invariants (6.11, 6.12) assert the Figure 11/12 block
   protocol, which the layers below `Full omit by construction. *)
let check_invariants t =
  let invs =
    match t.layer with
    | `Full -> Vsgc_checker.Invariants.all
    | `Wv | `Vs ->
        List.filter
          (fun (name, _) -> name <> "6.11" && name <> "6.12")
          Vsgc_checker.Invariants.all
  in
  let snap = snapshot t in
  List.iter (fun (_, check) -> check snap) invs

(* -- Scenario drivers ---------------------------------------------------- *)

let send t p payload = Node.push (client_node t p) payload

let broadcast t ~senders ~per_sender =
  Proc.Set.iter
    (fun p ->
      for i = 1 to per_sender do
        send t p (Fmt.str "m-%a-%d" Proc.pp p i)
      done)
    senders

(* Scripted membership: queue through the standalone oracle state (so
   identifiers and view ids follow exactly the in-memory System's
   bookkeeping), then move the queued events into the node inboxes. *)
let require_scripted t what =
  if t.servers <> [] then
    invalid_arg (Fmt.str "Net_system.%s: system runs real servers" what)

let drain_script t =
  Proc.Map.iter
    (fun p (pst : Oracle.pst) ->
      List.iter
        (fun a -> Node.inject (client_node t p) a)
        (List.rev pst.Oracle.pending))
    !(t.script);
  t.script :=
    Proc.Map.map (fun (pst : Oracle.pst) -> { pst with Oracle.pending = [] })
      !(t.script)

let start_change t ~set =
  require_scripted t "start_change";
  let cids = Oracle.queue_start_change t.script ~set in
  drain_script t;
  cids

let deliver_view ?(origin = 0) t ~set =
  require_scripted t "deliver_view";
  let v = Oracle.form_view t.script ~origin ~set in
  drain_script t;
  v

let reconfigure ?(origin = 0) t ~set =
  require_scripted t "reconfigure";
  let v = Oracle.change t.script ~origin ~set () in
  drain_script t;
  v

(* -- Observations --------------------------------------------------------- *)

let delivered t p = Node.delivered (client_node t p)
let views_of t p = Node.views (client_node t p)
let last_view_of t p = Node.last_view (client_node t p)

let all_in_view t view =
  Proc.Set.for_all
    (fun p ->
      match last_view_of t p with
      | Some (v, _) -> View.equal v view
      | None -> false)
    (View.set view)

let malformed t =
  List.fold_left (fun acc (n, _) -> acc + Node.malformed n) 0 (nodes t)

let steps t = List.fold_left (fun acc (n, _) -> acc + Node.steps n) 0 (nodes t)

(* One digest for the whole deployment: per-node trace fingerprints in
   node order plus the hub's traffic counters. Equal iff every node
   behaved identically — the determinism regression's yardstick. *)
let fingerprint t =
  let parts =
    List.map
      (fun (node, _) ->
        Fmt.str "%s=%s" (Node_id.to_string (Node.id node)) (Node.fingerprint node))
      (nodes t)
  in
  Fmt.str "%s|hub:%d/%d/%d" (String.concat ";" parts)
    (Loopback.delivered t.hub) (Loopback.dropped t.hub)
    (Loopback.retransmits t.hub)
