(* The wire-codec checker (vet pass 4).

   The transport runtime stands on two codec properties the type
   system cannot see: every value the automata can produce must
   survive encode/decode unchanged (round-trip), and decode must be
   total — arbitrary bytes yield [Error _], never an exception (a
   malformed frame costs a link, not a process). The deep QCheck
   coverage lives in test/test_wire.ml; this pass is the cheap static
   gate CI and humans run via [vet wire], and it renders any codec
   failure in the one-line diagnostic vocabulary:

     vet:wire:roundtrip-broken: <value>: ... <rendered codec error>
     vet:wire:roundtrip-drift:  <value>: decodes to a different value
     vet:wire:decode-raises:    <decoder>: ... <raised exception>

   Samples come from the representative {!Universe}: one value per
   constructor per wire kind is exactly the granularity the codecs
   dispatch on. *)

open Vsgc_types
open Vsgc_wire

let diag check ~subject fmt = Diag.vf ~pass:"wire" ~check ~subject fmt

(* -- Round-trip over the representative universe ------------------------- *)

(* The packets a deployment can ship, one per constructor, built from
   the universe's representative payloads. *)
let packets ~n ~n_servers : Packet.t list =
  let v = Universe.view ~n in
  let cid = View.Sc_id.succ View.Sc_id.zero in
  [
    Packet.Hello (Node_id.client 0);
    Packet.Hello (Node_id.server (Server.of_int 0));
    Packet.Join 0;
    Packet.Leave (n - 1);
    Packet.Start_change { target = 0; cid; set = Proc.Set.of_range 0 (n - 1) };
    Packet.View { target = 0; view = v };
  ]
  @ List.map (fun w -> Packet.Rf { from = 0; wire = w }) (Universe.wires ~n)
  @ List.map
      (fun m -> Packet.Srv { from = Server.of_int 0; msg = m })
      (Universe.srv_msgs ~n ~n_servers)

let roundtrip ?(n = 3) ?(n_servers = 2) () : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let one ~what ~pp ~equal ~encode ~decode x =
    let subject = Fmt.str "%s %a" what pp x in
    match decode (encode x) with
    | Ok y when equal x y -> ()
    | Ok _ -> add (diag "roundtrip-drift" ~subject "decodes to a different value")
    | Error e ->
        add
          (diag "roundtrip-broken" ~subject "own encoding rejected: %s"
             (Frame.error_to_string e))
    | exception exn ->
        add
          (diag "decode-raises" ~subject "decoding own encoding raised %s"
             (Printexc.to_string exn))
  in
  (* Packets through the full frame path — the bytes TCP actually
     ships — which transitively round-trips every Msg.Wire, Srv_msg,
     View and Node_id constructor the universe knows. *)
  List.iter
    (one ~what:"packet" ~pp:Packet.pp ~equal:Packet.equal ~encode:Frame.encode
       ~decode:Frame.decode)
    (packets ~n ~n_servers);
  List.rev !diags

(* -- Totality spot-check -------------------------------------------------- *)

(* Seeded fuzz: random byte strings, random bodies behind a valid
   frame header, and single-byte corruptions of a valid frame. The
   only acceptable outcomes are [Ok] and [Error]. *)
let totality ?(seed = 7) ?(count = 1_000) () : Diag.t list =
  let rng = Vsgc_ioa.Rng.make seed in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let random_bytes len =
    Bytes.init len (fun _ -> Char.chr (Vsgc_ioa.Rng.int rng 256))
  in
  let sample = Frame.encode (Packet.Join 1) in
  let input i =
    match i mod 3 with
    | 0 -> random_bytes (Vsgc_ioa.Rng.int rng 65)
    | 1 ->
        (* a valid header with a random body: exercises the payload
           decoders, not just the frame envelope *)
        let body = random_bytes (Vsgc_ioa.Rng.int rng 33) in
        let b = Buffer.create 16 in
        Buffer.add_char b 'V';
        Buffer.add_char b 'G';
        Buffer.add_uint8 b Frame.version;
        Buffer.add_int32_be b (Int32.of_int (Bytes.length body));
        Buffer.add_bytes b body;
        Buffer.to_bytes b
    | _ ->
        let c = Bytes.copy sample in
        Bytes.set c
          (Vsgc_ioa.Rng.int rng (Bytes.length c))
          (Char.chr (Vsgc_ioa.Rng.int rng 256));
        c
  in
  let decoders =
    [
      ("frame.decode", fun buf -> ignore (Frame.decode buf));
      ("packet.of_bytes", fun buf -> ignore (Packet.of_bytes buf));
    ]
  in
  for i = 0 to count - 1 do
    let buf = input i in
    List.iter
      (fun (name, d) ->
        try d buf
        with exn ->
          add
            (diag "decode-raises" ~subject:name "raised %s on a %d-byte input"
               (Printexc.to_string exn) (Bytes.length buf)))
      decoders
  done;
  List.rev !diags

let check ?n ?n_servers ?seed ?count () =
  roundtrip ?n ?n_servers () @ totality ?seed ?count ()
