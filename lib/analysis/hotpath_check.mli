(** The hot-path allocation lint (vet pass "hotpath").

    Greps the wire layer's sources for the copy idioms the zero-copy
    encode/decode path exists to avoid ([Buffer.to_bytes],
    [Bytes.sub_string]) and reports each occurrence as a
    [vet:hotpath:hot-path-copy] diagnostic. A line carrying the
    [hotpath-allow] marker comment is exempt. *)

val scan_file : string -> Diag.t list

val check : ?dir:string -> unit -> Diag.t list
(** Scan every [.ml] directly under [dir] (default ["lib/wire"]). *)
