(* The multicore-partition audit (vet pass "domains") — the static
   soundness certificate for the racy parallel engine (DESIGN.md §17).

   The racy executor places footprint-connected components in one
   group and lets distinct groups step concurrently between barriers.
   Its safety argument has two legs: (1) an action is performed inside
   a group only when its exact participants stay in-group — checked at
   runtime per action by [Partition.internal_to]; and (2) actions
   whose participants live in different groups are footprint-
   independent, so their joint steps commute and the canonical merge
   of per-group logs is a real execution of the composition. This
   pass certifies leg (2) statically, per shipped composition, over
   the representative universe:

   - cross-group-interference: two universe actions whose participant
     sets sit in different groups of the planned partition, yet whose
     composition-wide footprints interfere. Such a pair would let
     concurrent group quanta race on shared state. The partition
     unions by shared participants; footprints interfere by declared
     locations; the diagnostic fires exactly where the two disagree
     (e.g. two components sharing no action but both naming one
     Global cell).

   - unplaceable-action: a probed action whose participants did not
     all land in one group. The union-find makes this impossible for
     any action in the probe set, so firing means the partitioner and
     its probe went out of sync — a bug caught here rather than as a
     lost action at a runtime barrier. *)

open Vsgc_types
module Executor = Vsgc_ioa.Executor
module Partition = Vsgc_ioa.Partition

let diag check ~subject fmt = Diag.vf ~pass:"domains" ~check ~subject fmt

let audit ~universe (exec : Executor.t) : Diag.t list =
  let comps = Executor.components exec in
  let part = Partition.compute ~probe:universe comps in
  let independent = Executor.independence exec in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let group_of a =
    match Partition.participants comps a with
    | [] -> None (* no participant: the action cannot occur here *)
    | i0 :: rest ->
        let g = Partition.group_of part i0 in
        if List.for_all (fun i -> Partition.group_of part i = g) rest then
          Some g
        else begin
          add
            (diag "unplaceable-action" ~subject:(Action.to_string a)
               "participants span several groups of the planned partition");
          None
        end
  in
  let placed =
    List.filter_map
      (fun a -> Option.map (fun g -> (a, g)) (group_of a))
      universe
  in
  let rec pairs = function
    | [] -> ()
    | (a, ga) :: rest ->
        List.iter
          (fun (b, gb) ->
            if ga <> gb && not (independent a b) then
              add
                (diag "cross-group-interference"
                   ~subject:(Fmt.str "%a || %a" Action.pp a Action.pp b)
                   "placed in different partition groups but the declared \
                    footprints interfere"))
          rest;
        pairs rest
  in
  pairs placed;
  List.rev !diags

(* -- Drivers for the shipped compositions -------------------------------- *)

module System = Vsgc_harness.System
module Server_system = Vsgc_harness.Server_system

let layer ?(n = 3) (l : Vsgc_core.Endpoint.layer) : Diag.t list =
  let sys = System.create ~seed:11 ~n ~layer:l ~monitors:`None () in
  audit ~universe:(Universe.actions ~n ()) (System.exec sys)

let server_stack ?(n_clients = 4) ?(n_servers = 2) () : Diag.t list =
  let t = Server_system.create ~n_clients ~n_servers ~monitors:`None () in
  audit
    ~universe:(Universe.actions ~n:n_clients ~n_servers ())
    (System.exec (Server_system.sys t))

let kv_stack ?(n = 3) () : Diag.t list =
  let sys =
    System.create ~seed:23 ~n ~monitors:`None
      ~client_builder:(fun p -> fst (Vsgc_replication.Replica.component p))
      ()
  in
  audit ~universe:(Universe.actions ~n ()) (System.exec sys)

(* Every shipped composition, as the vet driver runs them. *)
let all () : (string * Diag.t list) list =
  [
    ("domains wv", layer `Wv);
    ("domains vs", layer `Vs);
    ("domains full", layer `Full);
    ("domains server-stack", server_stack ());
    ("domains kv-stack", kv_stack ());
  ]
