(* The effect audit (vet pass "effects") — the static half of the
   footprint honesty certificate (DESIGN.md §14; the dynamic half is
   Vsgc_ioa.Sanitizer).

   Checks, per component over the representative universe:

   - coarse-fallback: the component is still on the Footprint.coarse
     default (every action mapped to one Global cell). Sound but
     useless — it serializes the component against everything, so the
     explorer never prunes around it and the planned multicore
     partitioning could never schedule it in parallel. Shipped
     components must declare real footprints or be whitelisted here
     with a reason.

   - writeless-output / readless-output: the emit signature
     cross-checked against the footprint. An emitted action with no
     declared write could never disable itself (its own firing would
     not change state it owns), and one with no declared read has
     enabledness depending on nothing — both are contradictions for a
     locally-controlled action, so they expose a footprint that was
     never written for the action at all.

   - write-gap (totality): every shadow-state slice a component ever
     exposes (its Component.observe domain, sampled along a driven
     run) must be covered by the declared writes of some action the
     component participates in. A slice nothing ever claims to write
     is mutable state the independence relation cannot see — the
     classic lying-footprint shape, caught statically here and
     dynamically by the sanitizer's per-step diff.

   - inherit-footprint: across the WV <- VS <- Full inheritance tower
     (paper §4-§6), a child layer may extend the parent's footprint
     but must still cover it on every action — an inherited action
     whose declared effect shrank is a refactoring accident.

   Deliberately NOT checked: a declared footprint for an action the
   component never participates in. Over-declaration only adds
   interference — sound, and sometimes deliberate (the membership
   servers claim Mb_queue for any client because attachment is
   dynamic). The audit hunts lies, not conservatism. *)

open Vsgc_types
module Component = Vsgc_ioa.Component
module Executor = Vsgc_ioa.Executor
module Footprint = Vsgc_ioa.Footprint

let diag check ~subject fmt = Diag.vf ~pass:"effects" ~check ~subject fmt

(* Components allowed to stay on the coarse Global fallback. Empty
   today: every shipped component declares a real footprint, and this
   list holds the line. Add a name ONLY with a comment saying why
   coarse is acceptable for that component. *)
let coarse_whitelist : string list = []

let is_coarse ~universe c =
  let name = Component.name c in
  universe <> []
  && List.for_all
       (fun a ->
         match Component.footprint c a with
         | {
             Footprint.reads = [ Footprint.Global n ];
             writes = [ Footprint.Global n' ];
           } ->
             String.equal n name && String.equal n' name
         | _ -> false)
       universe

(* -- Static signature checks --------------------------------------------- *)

let static ~universe (comps : Component.packed list) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun c ->
      let name = Component.name c in
      if is_coarse ~universe c && not (List.mem name coarse_whitelist) then
        add
          (diag "coarse-fallback" ~subject:name
             "still on the Footprint.coarse default: everything interferes, \
              nothing is ever reordered or pruned")
      else
        List.iter
          (fun a ->
            if Component.emits c a then begin
              let fp = Component.footprint c a in
              let subject = Action.to_string a in
              if fp.Footprint.writes = [] then
                add
                  (diag "writeless-output" ~subject
                     "%s emits this action but declares no write — its own \
                      firing could never disable it"
                     name);
              if fp.Footprint.reads = [] then
                add
                  (diag "readless-output" ~subject
                     "%s emits this action but declares no read — its \
                      enabledness would depend on nothing"
                     name)
            end)
          universe)
    comps;
  List.rev !diags

(* -- Footprint totality (write-gap) over driven domains ------------------- *)

(* The observed shadow-slice domain of each component, accumulated by
   sampling Component.observe along a run (keyed by component name;
   names are unique within a composition). *)
type domains = (string, Footprint.loc list) Hashtbl.t

let sample_domains (acc : domains) (comps : Component.packed array) =
  Array.iter
    (fun c ->
      let name = Component.name c in
      let locs =
        match Hashtbl.find_opt acc name with Some l -> l | None -> []
      in
      let locs =
        List.fold_left
          (fun ls (l, _) -> if List.mem l ls then ls else l :: ls)
          locs (Component.observe c)
      in
      Hashtbl.replace acc name locs)
    comps

let write_gap ~universe ~(domains : domains) (comps : Component.packed list) :
    Diag.t list =
  let diags = ref [] in
  List.iter
    (fun c ->
      let name = Component.name c in
      let dom =
        match Hashtbl.find_opt domains name with Some l -> l | None -> []
      in
      List.iter
        (fun l ->
          let covered =
            List.exists
              (fun a ->
                (Component.accepts c a || Component.emits c a)
                && List.exists
                     (Footprint.loc_interferes l)
                     (Component.footprint c a).Footprint.writes)
              universe
          in
          if not covered then
            diags :=
              diag "write-gap" ~subject:name
                "observed state at %a is covered by no participating \
                 action's declared writes"
                Footprint.pp_loc l
              :: !diags)
        dom)
    comps;
  List.rev !diags

(* Run the whole audit over an executor-driven composition: sample the
   observe domains at start and after every step, then apply the
   signature and totality checks. Used by the fixtures and tests; the
   shipped compositions go through [layer]/[server_stack] below, whose
   scripted scenarios reach deeper states. *)
let audit ?(steps = 50) ~universe (comps : Component.packed list) :
    Diag.t list =
  let exec = Executor.create ~seed:1 ~sanitize:None comps in
  let arr = Executor.components exec in
  let domains : domains = Hashtbl.create 16 in
  sample_domains domains arr;
  Executor.add_step_hook exec (fun _ -> sample_domains domains arr);
  ignore (Executor.run ~max_steps:steps exec);
  static ~universe comps @ write_gap ~universe ~domains comps

(* -- Drivers for the shipped compositions -------------------------------- *)

module System = Vsgc_harness.System
module Server_system = Vsgc_harness.Server_system
module Sysconf = Vsgc_explore.Sysconf

let drain sys = ignore (System.run ~max_steps:5_000 sys)

let with_domains sys f =
  let exec = System.exec sys in
  let arr = Executor.components exec in
  let domains : domains = Hashtbl.create 16 in
  sample_domains domains arr;
  Executor.add_step_hook exec (fun _ -> sample_domains domains arr);
  f ();
  domains

(* Audit one Sysconf layer along the same scripted scenario the wiring
   linter drives (reconfiguration with traffic, a partial change, a
   crash/recovery) — the shapes that populate every kind of shadow
   slice the components expose. *)
let layer ?(n = 3) (l : Vsgc_core.Endpoint.layer) : Diag.t list =
  let conf = Sysconf.make ~n ~layer:l () in
  let sys =
    System.create ~seed:conf.Sysconf.seed ~n:conf.Sysconf.n
      ~layer:conf.Sysconf.layer ~monitors:`None ()
  in
  let comps = Array.to_list (Executor.components (System.exec sys)) in
  let universe = Universe.actions ~n () in
  let all = Proc.Set.of_range 0 (n - 1) in
  let domains =
    with_domains sys (fun () ->
        ignore (System.reconfigure sys ~set:all);
        System.send sys 0 "vet-a";
        System.send sys 1 "vet-b";
        ignore (System.start_change sys ~set:(Proc.Set.remove (n - 1) all));
        ignore
          (System.deliver_view ~origin:1 sys ~set:(Proc.Set.remove (n - 1) all));
        System.crash sys (n - 1);
        System.recover sys (n - 1);
        ignore (System.reconfigure ~origin:2 sys ~set:all);
        drain sys)
  in
  static ~universe comps @ write_gap ~universe ~domains comps

(* Audit the client-server membership stack (Figure 1): servers and
   their transport replace the oracle. *)
let server_stack ?(n_clients = 4) ?(n_servers = 2) () : Diag.t list =
  let t = Server_system.create ~n_clients ~n_servers ~monitors:`None () in
  let sys = Server_system.sys t in
  let comps = Array.to_list (Executor.components (System.exec sys)) in
  let universe = Universe.actions ~n:n_clients ~n_servers () in
  let domains =
    with_domains sys (fun () ->
        Server_system.bootstrap t;
        Server_system.fd_change t
          ~perceived:(Server.Set.of_range 0 (n_servers - 1));
        Server_system.leave t (n_clients - 1);
        Server_system.join t (n_clients - 1);
        drain sys)
  in
  static ~universe comps @ write_gap ~universe ~domains comps

(* Audit the KV service stack (DESIGN.md §15): the composition a
   [Vsgc_kv.Kv_node] hosts — a Full end-point plus a strict [Replica]
   per process — along a scripted scenario that exercises ordered
   writes, a partial view change and a crash/recovery. The KV engine
   itself (store, service, load) runs outside the executor at the
   node edge, so the component stack is exactly this pair. *)
let kv_stack ?(n = 3) () : Diag.t list =
  let refs = Hashtbl.create 8 in
  let sys =
    System.create ~seed:23 ~n ~monitors:`None
      ~client_builder:(fun p ->
        let c, r = Vsgc_replication.Replica.component p in
        Hashtbl.replace refs p r;
        c)
      ()
  in
  let rep p : Vsgc_replication.Replica.t ref = Hashtbl.find refs p in
  let comps = Array.to_list (Executor.components (System.exec sys)) in
  let universe = Universe.actions ~n () in
  let all = Proc.Set.of_range 0 (n - 1) in
  let domains =
    with_domains sys (fun () ->
        ignore (System.reconfigure sys ~set:all);
        drain sys;
        Vsgc_replication.Replica.set (rep 0) ~key:"vet" ~value:"a";
        Vsgc_replication.Replica.write (rep 1) ~client:0 ~seq:0 ~key:"vet-w"
          ~value:"b";
        drain sys;
        ignore (System.start_change sys ~set:(Proc.Set.remove (n - 1) all));
        ignore
          (System.deliver_view ~origin:1 sys ~set:(Proc.Set.remove (n - 1) all));
        System.crash sys (n - 1);
        System.recover sys (n - 1);
        ignore (System.reconfigure ~origin:2 sys ~set:all);
        drain sys)
  in
  static ~universe comps @ write_gap ~universe ~domains comps

(* -- Inheritance cross-check ---------------------------------------------- *)

(* Across the WV <- VS <- Full tower, a child layer may extend the
   parent's declared footprint but must still cover it: every parent
   read interferes some child read, every parent write some child
   write. *)
let inherit_footprints ?(n = 3) () : Diag.t list =
  let universe = Universe.actions ~n () in
  let covers locs locs' =
    List.for_all (fun l -> List.exists (Footprint.loc_interferes l) locs') locs
  in
  List.concat_map
    (fun p ->
      let fp_at layer =
        let c, _ = Vsgc_core.Endpoint.component ~layer p in
        Component.footprint c
      in
      let pairs =
        [
          ("vs<-wv", fp_at `Wv, fp_at `Vs);
          ("full<-vs", fp_at `Vs, fp_at `Full);
        ]
      in
      List.concat_map
        (fun (pair, parent, child) ->
          List.filter_map
            (fun a ->
              let fpp = parent a and fpc = child a in
              if
                covers fpp.Footprint.reads fpc.Footprint.reads
                && covers fpp.Footprint.writes fpc.Footprint.writes
              then None
              else
                Some
                  (diag "inherit-footprint" ~subject:(Action.to_string a)
                     "the %s layer pair narrows the parent's declared \
                      footprint at %a"
                     pair Proc.pp p))
            universe)
        pairs)
    (List.init n Fun.id)

(* Every shipped composition, as the vet driver runs them. *)
let all () : (string * Diag.t list) list =
  [
    ("effects wv", layer `Wv);
    ("effects vs", layer `Vs);
    ("effects full", layer `Full);
    ("effects server-stack", server_stack ());
    ("effects kv-stack", kv_stack ());
    ("effects inherit", inherit_footprints ());
  ]
