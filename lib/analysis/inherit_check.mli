(** The inheritance-discipline checker (vet pass 2).

    The paper builds its end-point as an inheritance tower (§2, §5):

    {v WV_RFIFO_p  <-  VS_RFIFO+TS_p  <-  GCS_p v}

    where a child may only STRENGTHEN preconditions of inherited
    actions and EXTEND effects with writes to its own new variables.
    Checked over a corpus of reachable child states:

    - precondition strengthening: every inherited action the child
      enables is also enabled in the parent projection;
    - effect extension: child and parent transitions agree on the
      parent's state variables;
    - frame condition: a child-new action leaves the parent's state
      variables untouched. *)

type pair = Full_over_vs | Vs_over_wv

val pair_name : pair -> string

type report = {
  pair : string;
  states : int;  (** corpus states checked *)
  transitions : int;  (** transition pairs compared *)
  diags : Diag.t list;
}

val check : ?n:int -> ?seed:int -> pair -> report
(** Check one adjacent pair of the tower over a driven state corpus. *)

val all : ?n:int -> ?seed:int -> unit -> report list
(** Both adjacent pairs, child-most first. *)

val pp_report : Format.formatter -> report -> unit
