(* Machine-readable diagnostics shared by the vet passes.

   One line per finding, stable format:

     vet:<pass>:<check>: <subject>: <message>

   so CI greps and humans read the same output. A pass that returns an
   empty list is clean; any diagnostic is a wiring error (exit code 1
   in the vet driver). *)

type t = {
  pass : string;  (* "wiring" | "inherit" | "sched" *)
  check : string;  (* e.g. "dangling-output", "multi-writer" *)
  subject : string;  (* the offending action, component, or file *)
  message : string;
}

let v ~pass ~check ~subject message = { pass; check; subject; message }

let vf ~pass ~check ~subject fmt = Fmt.kstr (v ~pass ~check ~subject) fmt

let to_string d = Fmt.str "vet:%s:%s: %s: %s" d.pass d.check d.subject d.message

let pp ppf d = Fmt.string ppf (to_string d)
