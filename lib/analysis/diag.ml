(* The diagnostic record moved down to lib/ioa so the runtime effect
   sanitizer (Vsgc_ioa.Sanitizer) can report findings in the same
   vocabulary as the static passes. Re-exported here so every vet pass
   and caller keeps its [Diag.t] spelling — the types are equal, not
   merely isomorphic. *)

include Vsgc_ioa.Diag
