(* The schedule/corpus checker (vet pass 3).

   Regression schedules under test/corpus/ are replayed by CI against
   freshly built systems, so a schedule that drifted out of the layer's
   action signature fails late and confusingly (an unmatched Choose at
   replay time) or, worse, silently validates nothing. This pass checks
   each schedule STATICALLY against the signature of its declared
   configuration:

   - every Choose key must parse as a known action shape (classified by
     the stable pp prefixes the schedules serialize);
   - the action must belong to the layer: block/block_ok only at
     `Full; sync/sync_batch/fwd wire traffic only above `Wv; no server
     vocabulary in any Sysconf (oracle-driven) schedule;
   - loci must be in range: processes < n, owner index < 2n+2 (the
     corfifo + oracle + n end-points + n clients composition);
   - environment operations must also target processes < n. *)

module Schedule = Vsgc_explore.Schedule
module Sysconf = Vsgc_explore.Sysconf

let diag check ~subject fmt = Diag.vf ~pass:"sched" ~check ~subject fmt

(* -- Choose-key classification ------------------------------------------- *)

type wire_kind = W_view_msg | W_app | W_fwd | W_sync | W_sync_batch | W_bsync | W_unknown

(* Action shapes, recovered from Action.pp's stable prefixes. Only the
   layer- and range-relevant structure is parsed; payloads are opaque. *)
type shape =
  | App_send of int
  | App_deliver of int * int
  | App_view of int
  | Block of int
  | Block_ok of int
  | Mb of int  (* mbrshp.start_change / mbrshp.view *)
  | Rf_send of int * wire_kind
  | Rf_deliver of int * int * wire_kind
  | Rf_reliable of int
  | Rf_live of int
  | Rf_lose of int * int
  | Crash of int
  | Recover of int
  | Server_action  (* srv.*, fd_change, join, leave *)
  | Unknown

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The integer right after [prefix], read up to the first non-digit. *)
let int_after s prefix =
  let i = String.length prefix in
  let j = ref i in
  while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
  if !j = i then None else int_of_string_opt (String.sub s i (!j - i))

(* "<prefix><a>,p<b>..." — the two process ids of a pairwise action. *)
let pair_after s prefix =
  match int_after s prefix with
  | None -> None
  | Some a -> (
      let at = String.length prefix + String.length (string_of_int a) in
      let rest = String.sub s at (String.length s - at) in
      match int_after rest ",p" with Some b -> Some (a, b) | None -> None)

let wire_kind_of payload =
  if prefixed ~prefix:"view_msg(" payload then W_view_msg
  else if prefixed ~prefix:"app(" payload then W_app
  else if prefixed ~prefix:"fwd(" payload then W_fwd
  else if prefixed ~prefix:"sync_batch[" payload then W_sync_batch
  else if prefixed ~prefix:"bsync(" payload then W_bsync
  else if prefixed ~prefix:"sync(" payload then W_sync
  else W_unknown

(* The wire payload: co_rfifo.send_pN({set},WIRE) — after the first
   "},"; co_rfifo.deliver_{pA,pB}(WIRE) — after the first '('. *)
let send_payload s =
  let rec find i =
    if i + 1 >= String.length s then ""
    else if s.[i] = '}' && s.[i + 1] = ',' then
      String.sub s (i + 2) (String.length s - i - 2)
    else find (i + 1)
  in
  find 0

let deliver_payload s =
  match String.index_opt s '(' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> ""

let classify (key : string) : shape =
  let s = try Scanf.unescaped key with Scanf.Scan_failure _ -> key in
  let p1 prefix mk = match int_after s prefix with Some p -> mk p | None -> Unknown in
  let p2 prefix mk = match pair_after s prefix with Some pq -> mk pq | None -> Unknown in
  if prefixed ~prefix:"send_p" s then p1 "send_p" (fun p -> App_send p)
  else if prefixed ~prefix:"deliver_p" s then
    p2 "deliver_p" (fun (p, q) -> App_deliver (p, q))
  else if prefixed ~prefix:"view_p" s then p1 "view_p" (fun p -> App_view p)
  else if prefixed ~prefix:"block_ok_p" s then p1 "block_ok_p" (fun p -> Block_ok p)
  else if prefixed ~prefix:"block_p" s then p1 "block_p" (fun p -> Block p)
  else if prefixed ~prefix:"crash_p" s then p1 "crash_p" (fun p -> Crash p)
  else if prefixed ~prefix:"recover_p" s then p1 "recover_p" (fun p -> Recover p)
  else if prefixed ~prefix:"mbrshp.start_change_p" s then
    p1 "mbrshp.start_change_p" (fun p -> Mb p)
  else if prefixed ~prefix:"mbrshp.view_p" s then p1 "mbrshp.view_p" (fun p -> Mb p)
  else if prefixed ~prefix:"co_rfifo.send_p" s then
    p1 "co_rfifo.send_p" (fun p -> Rf_send (p, wire_kind_of (send_payload s)))
  else if prefixed ~prefix:"co_rfifo.deliver_{p" s then
    p2 "co_rfifo.deliver_{p" (fun (p, q) ->
        Rf_deliver (p, q, wire_kind_of (deliver_payload s)))
  else if prefixed ~prefix:"co_rfifo.reliable_p" s then
    p1 "co_rfifo.reliable_p" (fun p -> Rf_reliable p)
  else if prefixed ~prefix:"co_rfifo.live_p" s then
    p1 "co_rfifo.live_p" (fun p -> Rf_live p)
  else if prefixed ~prefix:"co_rfifo.lose(p" s then
    p2 "co_rfifo.lose(p" (fun (p, q) -> Rf_lose (p, q))
  else if
    prefixed ~prefix:"srv." s
    || prefixed ~prefix:"fd_change_s" s
    || prefixed ~prefix:"join(p" s
    || prefixed ~prefix:"leave(p" s
  then Server_action
  else Unknown

(* -- Per-schedule checks ------------------------------------------------- *)

let check_sched (sched : Schedule.t) : Diag.t list =
  let conf = sched.Schedule.conf in
  let n = conf.Sysconf.n in
  let layer = conf.Sysconf.layer in
  let n_comps = (2 * n) + 2 in
  let subject = sched.Schedule.name in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let check_proc what p =
    if p < 0 || p >= n then
      add (diag "locus-range" ~subject "%s targets p%d but n = %d" what p n)
  in
  let check_env (op : Schedule.env_op) =
    match op with
    | Schedule.Reconfigure { set; _ }
    | Schedule.Start_change set
    | Schedule.Deliver_view { set; _ } ->
        Vsgc_types.Proc.Set.iter (check_proc "env op") set
    | Schedule.Send { from; _ } -> check_proc "env send" from
    | Schedule.Crash p -> check_proc "env crash" p
    | Schedule.Recover p -> check_proc "env recover" p
  in
  let wire_ok = function
    | W_sync | W_sync_batch | W_fwd -> layer <> `Wv
    | W_view_msg | W_app | W_bsync -> true
    | W_unknown -> false
  in
  let check_choose ~owner ~key =
    if owner < 0 || owner >= n_comps then
      add
        (diag "owner-range" ~subject
           "choose owner %d out of range (composition has %d components)" owner
           n_comps);
    match classify key with
    | Unknown ->
        add (diag "unknown-action" ~subject "unrecognized choose key %S" key)
    | Server_action ->
        add
          (diag "layer-mismatch" ~subject
             "server-stack action %S in an oracle-driven schedule" key)
    | Block p | Block_ok p ->
        check_proc "choose" p;
        if layer <> `Full then
          add
            (diag "layer-mismatch" ~subject
               "blocking action %S below the full layer (%s)" key
               (Sysconf.layer_to_string layer))
    | Rf_send (p, k) ->
        check_proc "choose" p;
        if not (wire_ok k) then
          add
            (diag "layer-mismatch" ~subject
               "wire payload of %S out of layer %s" key
               (Sysconf.layer_to_string layer))
    | Rf_deliver (p, q, k) ->
        check_proc "choose" p;
        check_proc "choose" q;
        if not (wire_ok k) then
          add
            (diag "layer-mismatch" ~subject
               "wire payload of %S out of layer %s" key
               (Sysconf.layer_to_string layer))
    | App_send p | App_view p | Rf_reliable p | Rf_live p | Crash p | Recover p
    | Mb p ->
        check_proc "choose" p
    | App_deliver (p, q) | Rf_lose (p, q) ->
        check_proc "choose" p;
        check_proc "choose" q
  in
  List.iter
    (fun (e : Schedule.entry) ->
      match e with
      | Schedule.Env op -> check_env op
      | Schedule.Run _ | Schedule.Settle -> ()
      | Schedule.Choose { owner; key } -> check_choose ~owner ~key)
    sched.Schedule.entries;
  List.rev !diags

let check_file path : Diag.t list =
  match Schedule.load path with
  | sched -> check_sched sched
  | exception Schedule.Parse_error m -> [ diag "parse-error" ~subject:path "%s" m ]
  | exception Sys_error m -> [ diag "parse-error" ~subject:path "%s" m ]

(* Check every *.sched under [dir]. *)
let check_dir dir : Diag.t list =
  match Sys.readdir dir with
  | files ->
      Array.sort String.compare files;
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".sched")
      |> List.concat_map (fun f -> check_file (Filename.concat dir f))
  | exception Sys_error m ->
      [ diag "parse-error" ~subject:dir "cannot read corpus directory: %s" m ]
