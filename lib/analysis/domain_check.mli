(** The multicore-partition audit (vet pass "domains") — the static
    soundness certificate for the racy parallel engine (DESIGN.md §17).

    Computes the planned footprint partition of each shipped
    composition over the representative {!Universe} and cross-checks
    it against the footprint-derived independence relation:
    [cross-group-interference] flags two actions placed in different
    groups whose composition-wide footprints nonetheless interfere
    (concurrent group quanta could race on shared state), and
    [unplaceable-action] flags a probed action whose participants
    span groups — impossible by construction of the union-find, so it
    marks a partitioner bug. *)

val audit :
  universe:Vsgc_types.Action.t list -> Vsgc_ioa.Executor.t -> Diag.t list
(** Audit one live composition against its planned partition. *)

val layer : ?n:int -> Vsgc_core.Endpoint.layer -> Diag.t list
(** Audit one end-point layer's standard composition. *)

val server_stack : ?n_clients:int -> ?n_servers:int -> unit -> Diag.t list
(** Audit the client-server membership stack (Figure 1). *)

val kv_stack : ?n:int -> unit -> Diag.t list
(** Audit the KV service stack (DESIGN.md §15). *)

val all : unit -> (string * Diag.t list) list
(** Every shipped composition, as the vet driver runs them. *)
