(* Seeded miswiring fixtures — the linter's negative tests.

   Each fixture is a deliberately broken miniature composition; running
   the named vet pass over it MUST produce at least one diagnostic of
   the expected check. CI asserts this (vet.exe fixture <name> exits
   non-zero), so a refactor that silently blinds a linter check fails
   the build rather than shipping a toothless vet. *)

open Vsgc_types
module Component = Vsgc_ioa.Component
module Footprint = Vsgc_ioa.Footprint
module Executor = Vsgc_ioa.Executor

(* Fixture actions must be members of the representative universe —
   the static pass checks exactly that set, and Action.equal compares
   payloads — so the fixtures reuse the universe's message. *)
let msg = Universe.msg

let universe = Universe.actions ~n:2 ()

let fp _ = Footprint.rw [ Footprint.Proc_state 0 ]

(* A one-shot emitter of [a]: outputs it until applied once. *)
let emitter ?(name = "emitter") ?(accepts = fun _ -> false) a =
  Component.pack
    (Component.make ~footprint:fp
       ~emits:(Action.equal a) ~name ~init:false
       ~accepts
       ~outputs:(fun fired -> if fired then [] else [ a ])
       ~apply:(fun _ _ -> true)
       ())

(* [deliver] is emitted, but no other component accepts it. The
   [send]/[speaker] wiring is sound, so the only finding is the
   dangling [deliver]. *)
let dangling_output () =
  let deliver = Action.App_deliver (0, 1, msg) in
  let send = Action.App_send (0, msg) in
  [
    emitter ~name:"speaker"
      ~accepts:(fun a -> Action.category a = Action.C_app_send)
      deliver;
    emitter ~name:"other" send;
  ]

(* Two components both declare [send] as their output. *)
let multi_writer () =
  let send = Action.App_send (0, msg) in
  let deliver = Action.App_deliver (0, 1, msg) in
  let accepts_deliver a = Action.category a = Action.C_app_deliver in
  [
    emitter ~name:"writer-a" ~accepts:accepts_deliver send;
    emitter ~name:"writer-b" ~accepts:accepts_deliver send;
    Component.pack
      (Component.make ~footprint:fp ~emits:(Action.equal deliver) ~name:"sink"
         ~init:false
         ~accepts:(fun a -> Action.category a = Action.C_app_send)
         ~outputs:(fun fired -> if fired then [] else [ deliver ])
         ~apply:(fun _ _ -> true)
         ());
  ]

(* A component that emits nothing (an observer by signature) yet only
   accepts one category — a silent blind spot. *)
let partial_observer () =
  let send = Action.App_send (0, msg) in
  [
    emitter ~name:"speaker" ~accepts:(fun a -> Action.category a = Action.C_app_send) send;
    Component.pack
      (Component.make ~footprint:fp
         ~emits:(fun _ -> false) ~name:"half-logger" ~init:0
         ~accepts:(fun a -> Action.category a = Action.C_app_send)
         ~outputs:(fun _ -> [])
         ~apply:(fun k _ -> k + 1)
         ());
  ]

(* The dynamic check: outputs produce [Block_ok 0] while the static
   signature only admits [App_send] — the over-approximation is a lie. *)
let emits_unsound () =
  let send = Action.App_send (0, msg) in
  let sneaky = Action.Block_ok 0 in
  [
    Component.pack
      (Component.make ~footprint:fp ~emits:(Action.equal send) ~name:"liar"
         ~init:false
         ~accepts:(fun _ -> false)
         ~outputs:(fun fired -> if fired then [] else [ sneaky ])
         ~apply:(fun _ _ -> true)
         ());
    Component.pack
      (Component.make ~footprint:fp ~emits:(fun _ -> false) ~name:"listener"
         ~init:0
         ~accepts:(fun _ -> true)
         ~outputs:(fun _ -> [])
         ~apply:(fun k _ -> k + 1)
         ());
  ]

(* The planted lying footprint — the effect passes' negative test. The
   liar accepts [send] and increments its counter, but declares a
   READ-ONLY footprint and exposes its state as a Proc_state 0 slice:
   the written slice is covered by no declared write. The static
   write-gap check and the dynamic sanitizer must BOTH catch it. *)
let lying_footprint () =
  let send = Action.App_send (0, msg) in
  [
    emitter ~name:"speaker" send;
    Component.pack
      (Component.make
         ~footprint:(fun a ->
           if Action.equal a send then
             Footprint.make ~reads:[ Footprint.Proc_state 0 ] ()
           else Footprint.empty)
         ~emits:(fun _ -> false)
         ~observe:(fun k -> [ (Footprint.Proc_state 0, Component.digest k) ])
         ~name:"liar" ~init:0 ~accepts:(Action.equal send)
         ~outputs:(fun _ -> [])
         ~apply:(fun k a -> if Action.equal a send then k + 1 else k)
         ());
  ]

(* A planted false independence: [flagger] accepts [act1] with an EMPTY
   declared footprint for it, yet applying [act1] disables its own
   output [act2] — so fp(act1)={Proc_state 0} and fp(act2)={Proc_state 1}
   are declared independent while act1 observably flips act2's
   enabledness. The sanitizer's enabledness diff must catch it. *)
let false_independence () =
  let act1 = Action.App_send (0, msg) in
  let act2 = Action.Block_ok 1 in
  [
    (* A one-shot trigger whose footprint claims only its own action —
       the [emitter] helper claims Proc_state 0 for everything, which
       would make the pair dependent and defeat the plant. *)
    Component.pack
      (Component.make
         ~footprint:(fun a ->
           if Action.equal a act1 then Footprint.rw [ Footprint.Proc_state 0 ]
           else Footprint.empty)
         ~emits:(Action.equal act1)
         ~observe:(fun fired ->
           [ (Footprint.Proc_state 0, Component.digest fired) ])
         ~name:"trigger" ~init:false
         ~accepts:(fun _ -> false)
         ~outputs:(fun fired -> if fired then [] else [ act1 ])
         ~apply:(fun _ _ -> true)
         ());
    Component.pack
      (Component.make
         ~footprint:(fun a ->
           if Action.equal a act2 then
             Footprint.rw [ Footprint.Proc_state 1 ]
           else Footprint.empty)
         ~emits:(Action.equal act2) ~name:"flagger" ~init:false
         ~accepts:(Action.equal act1)
         ~outputs:(fun flag -> if flag then [] else [ act2 ])
         ~apply:(fun flag a -> if Action.equal a act1 then true else flag)
         ());
  ]

(* Drive a fixture composition under the collecting sanitizer and
   return its diagnostics. *)
let sanitized_diags comps =
  let exec = Executor.create ~seed:1 ~sanitize:(Some `Collect) comps in
  ignore (Executor.run ~max_steps:50 exec);
  match Executor.sanitizer exec with
  | Some s -> Vsgc_ioa.Sanitizer.diags s
  | None -> []

(* The hotpath lint's negative test: a seeded source file committing
   both banned copy idioms (plus one exempted line, which must stay
   silent); scanning it must flag hot-path-copy twice. *)
let hotpath_offender () =
  let file = Filename.temp_file "vsgc-hotpath" ".ml" in
  Out_channel.with_open_text file (fun oc ->
      output_string oc
        "let snapshot b = Buffer.to_bytes b\n\
         let window b = Bytes.sub_string b 0 8\n\
         let dump b = Bytes.sub_string b 0 8 (* hotpath-allow: diagnostic *)\n");
  let diags = Hotpath_check.scan_file file in
  Sys.remove file;
  diags

type t = { name : string; expect : string; run : unit -> Diag.t list }

let all : t list =
  [
    {
      name = "dangling-output";
      expect = "dangling-output";
      run = (fun () -> Lint.static ~universe (dangling_output ()));
    };
    {
      name = "multi-writer";
      expect = "multi-writer";
      run = (fun () -> Lint.static ~universe (multi_writer ()));
    };
    {
      name = "partial-observer";
      expect = "partial-observer";
      run = (fun () -> Lint.static ~universe (partial_observer ()));
    };
    {
      name = "emits-unsound";
      expect = "emits-unsound";
      run = (fun () -> Lint.dynamic ~steps:10 (Executor.create ~seed:1 (emits_unsound ())));
    };
    {
      name = "hotpath-copy";
      expect = "hot-path-copy";
      run = hotpath_offender;
    };
    {
      name = "lying-footprint";
      expect = "write-gap";
      run =
        (fun () -> Effect_check.audit ~steps:10 ~universe (lying_footprint ()));
    };
    {
      name = "sanitize-undeclared-write";
      expect = "undeclared-write";
      run = (fun () -> sanitized_diags (lying_footprint ()));
    };
    {
      name = "sanitize-false-independence";
      expect = "false-independence";
      run = (fun () -> sanitized_diags (false_independence ()));
    };
  ]

let find name = List.find_opt (fun f -> f.name = name) all

let names = List.map (fun f -> f.name) all
