(** The wire-codec checker (vet pass 4).

    Round-trips every representative {!Universe} value through the
    frame codec and spot-checks decode totality on seeded fuzz
    inputs, rendering any failure in the one-line [vet:wire:...]
    diagnostic vocabulary ([roundtrip-broken], [roundtrip-drift],
    [decode-raises]). The deep property coverage lives in
    [test/test_wire.ml]; this is the cheap static gate. *)

val packets : n:int -> n_servers:int -> Vsgc_wire.Packet.t list
(** One packet per constructor, built from the universe's
    representative payloads. *)

val roundtrip : ?n:int -> ?n_servers:int -> unit -> Diag.t list
(** Encode/decode every representative packet through the full frame
    path (the bytes TCP actually ships). *)

val totality : ?seed:int -> ?count:int -> unit -> Diag.t list
(** Seeded fuzz (default 1000 inputs): random bytes, random bodies
    behind a valid header, and single-byte corruptions. Any raised
    exception is a diagnostic. *)

val check :
  ?n:int -> ?n_servers:int -> ?seed:int -> ?count:int -> unit -> Diag.t list
(** {!roundtrip} followed by {!totality}. *)
