(** The effect audit (vet pass "effects") — the static half of the
    footprint honesty certificate (DESIGN.md §14; the dynamic half is
    {!Vsgc_ioa.Sanitizer}).

    Checks: [coarse-fallback] (component still on the sound-but-useless
    {!Vsgc_ioa.Footprint.coarse} default, unless whitelisted with a
    reason), [writeless-output]/[readless-output] (the emit signature
    cross-checked against the declared footprint over the
    representative {!Universe}), [write-gap] (footprint totality: every
    shadow slice a component exposes along a driven run must be covered
    by some participating action's declared writes), and
    [inherit-footprint] (a child layer of the WV <- VS <- Full tower
    must cover the parent's footprint on every action).

    Over-declaration — a footprint for an action the component never
    participates in — is deliberately not flagged: it only adds
    interference, which is sound and sometimes deliberate. *)

type domains = (string, Vsgc_ioa.Footprint.loc list) Hashtbl.t
(** Observed shadow-slice domain per component name, accumulated by
    {!sample_domains} along a run. *)

val sample_domains : domains -> Vsgc_ioa.Component.packed array -> unit

val static :
  universe:Vsgc_types.Action.t list ->
  Vsgc_ioa.Component.packed list ->
  Diag.t list
(** The signature checks (coarse-fallback, writeless/readless-output). *)

val write_gap :
  universe:Vsgc_types.Action.t list ->
  domains:domains ->
  Vsgc_ioa.Component.packed list ->
  Diag.t list
(** The totality check over sampled domains. *)

val audit :
  ?steps:int ->
  universe:Vsgc_types.Action.t list ->
  Vsgc_ioa.Component.packed list ->
  Diag.t list
(** Drive an ad-hoc composition for [steps] (default 50) seeded
    scheduler steps, sampling domains each step, then run the
    signature and totality checks — the fixture/test entry point. *)

val layer : ?n:int -> Vsgc_core.Endpoint.layer -> Diag.t list
(** Audit one Sysconf layer along the linter's scripted scenario. *)

val server_stack : ?n_clients:int -> ?n_servers:int -> unit -> Diag.t list
(** Audit the client-server membership stack (Figure 1). *)

val kv_stack : ?n:int -> unit -> Diag.t list
(** Audit the KV service stack: Full end-point + strict replica per
    process (DESIGN.md §15), under ordered writes, a partial view
    change and a crash/recovery. *)

val inherit_footprints : ?n:int -> unit -> Diag.t list
(** The inheritance cross-check over the end-point tower. *)

val all : unit -> (string * Diag.t list) list
(** Every shipped composition, as the vet driver runs them. *)
