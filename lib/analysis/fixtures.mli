(** Seeded miswiring fixtures — the linter's negative tests.

    Each fixture is a deliberately broken miniature composition;
    running the named vet pass over it MUST produce at least one
    diagnostic of the expected check. CI asserts this
    ([vet.exe fixture <name>] exits non-zero), so a refactor that
    silently blinds a linter check fails the build rather than
    shipping a toothless vet. *)

type t = {
  name : string;
  expect : string;  (** the {!Diag.t.check} the fixture must trigger *)
  run : unit -> Diag.t list;
}

val all : t list
val find : string -> t option
val names : string list
