(* The wiring linter (vet pass 1).

   Composition in the paper's §2 sense is sound only when the action
   vocabulary is wired consistently: every output reaches someone,
   every action category has one writer per locus, and purely reactive
   components (observers) see the whole vocabulary. These are exactly
   the properties the executor cannot check at runtime — a dangling
   output or a shadowed writer produces a quietly wrong execution, not
   a crash — so they are checked statically here, over the declared
   [emits]/[accepts] signatures and the representative universe.

   Checks:
   - dangling-output: an emitted, non-environment action no other
     component accepts. The emitter would fire into the void.
   - multi-writer: two components both declare an action as output.
     The single-writer discipline is what makes "the owner moves, the
     acceptors follow" composition deterministic.
   - partial-observer: a component that emits nothing is an observer;
     an observer that rejects some action has a silent blind spot.
   - footprint-gap: a component participates in an action (accepts or
     emits it) but declares an empty footprint — the independence
     relation would wrongly commute it past everything.
   - emits-unsound (dynamic): over a driven run, an enabled candidate
     outside its owner's declared static signature disproves the
     [emits] over-approximation that every static pass relies on.

   Environment-controlled categories (crashes, failure-detector events,
   client attachment, adversarial loss, liveness inputs) have no
   component writer or no component reader by design and are exempt
   from the dangling-output check. *)

open Vsgc_types
module Component = Vsgc_ioa.Component
module Executor = Vsgc_ioa.Executor

let env_category = function
  | Action.C_crash | Action.C_recover | Action.C_rf_live | Action.C_rf_lose
  | Action.C_fd_change | Action.C_client_join | Action.C_client_leave
  (* delivery reports: emitted for the monitors/harness, no component
     reader by design *)
  | Action.C_sym_deliver -> true
  | Action.C_app_send | Action.C_app_deliver | Action.C_app_view | Action.C_block
  | Action.C_block_ok | Action.C_mb_start_change | Action.C_mb_view
  | Action.C_rf_send | Action.C_rf_deliver | Action.C_rf_reliable
  | Action.C_srv_send | Action.C_srv_deliver -> false

let diag check ~subject fmt = Diag.vf ~pass:"wiring" ~check ~subject fmt

(* -- Static pass --------------------------------------------------------- *)

let static ~universe (comps : Component.packed list) : Diag.t list =
  let comps = Array.of_list comps in
  let names = Array.map Component.name comps in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* A component that statically emits nothing is a pure observer. *)
  let observer =
    Array.map
      (fun c -> List.for_all (fun a -> not (Component.emits c a)) universe)
      comps
  in
  List.iter
    (fun a ->
      let subject = Action.to_string a in
      let writers = ref [] in
      Array.iteri (fun i c -> if Component.emits c a then writers := i :: !writers) comps;
      let writers = List.rev !writers in
      (match writers with
      | _ :: _ :: _ ->
          add
            (diag "multi-writer" ~subject "emitted by %s (want a single writer per %s at %a)"
               (String.concat " and " (List.map (fun i -> names.(i)) writers))
               (Action.category_to_string (Action.category a))
               Proc.pp (Action.locus a))
      | _ -> ());
      if not (env_category (Action.category a)) then
        List.iter
          (fun w ->
            let accepted =
              Array.exists Fun.id
                (Array.mapi (fun i c -> i <> w && Component.accepts c a) comps)
            in
            if not accepted then
              add
                (diag "dangling-output" ~subject
                   "output of %s but no other component accepts it" names.(w)))
          writers;
      Array.iteri
        (fun i c ->
          if
            (not observer.(i))
            && (Component.accepts c a || Component.emits c a)
            && Vsgc_ioa.Footprint.is_empty (Component.footprint c a)
          then
            add
              (diag "footprint-gap" ~subject
                 "%s participates but declares an empty footprint" names.(i)))
        comps)
    universe;
  Array.iteri
    (fun i c ->
      if observer.(i) then
        match List.find_opt (fun a -> not (Component.accepts c a)) universe with
        | Some a ->
            add
              (diag "partial-observer" ~subject:names.(i)
                 "emits nothing (an observer) yet rejects %a" Action.pp a)
        | None -> ())
    comps;
  List.rev !diags

(* -- Dynamic pass -------------------------------------------------------- *)

(* Check every enabled candidate of the current state against its
   owner's declared signature, then take one seeded scheduler step;
   repeat. Duplicate findings (same owner, same action) are reported
   once. *)
let dynamic ?(steps = 500) (exec : Executor.t) : Diag.t list =
  let comps = Executor.components exec in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  let check () =
    List.iter
      (fun (i, a) ->
        if not (Component.emits comps.(i) a) then begin
          let key = (i, Action.to_string a) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            diags :=
              diag "emits-unsound" ~subject:(Action.to_string a)
                "enabled output of %s outside its declared static signature"
                (Component.name comps.(i))
              :: !diags
          end
        end)
      (Executor.candidates exec)
  in
  check ();
  let budget = ref steps in
  while !budget > 0 && Executor.step exec do
    check ();
    decr budget
  done;
  List.rev !diags

(* -- Drivers for the shipped compositions -------------------------------- *)

module System = Vsgc_harness.System
module Server_system = Vsgc_harness.Server_system
module Sysconf = Vsgc_explore.Sysconf

let drain sys = ignore (System.run ~max_steps:5_000 sys)

(* Lint one Sysconf layer: the static pass over the built composition,
   then the dynamic pass along a scripted reconfiguration with traffic,
   a partial change, and a crash/recovery — the scenario shapes that
   exercise every branch of every [outputs]. Monitors stay off: the
   linter checks wiring, not the algorithm (the sub-`Full layers are
   deliberately incomplete algorithms whose oracles may fire). *)
let layer ?(n = 3) (l : Vsgc_core.Endpoint.layer) : Diag.t list =
  let conf = Sysconf.make ~n ~layer:l () in
  let sys =
    System.create ~seed:conf.Sysconf.seed ~n:conf.Sysconf.n
      ~layer:conf.Sysconf.layer ~monitors:`None ()
  in
  let comps = Array.to_list (Executor.components (System.exec sys)) in
  let static_diags = static ~universe:(Universe.actions ~n ()) comps in
  let exec = System.exec sys in
  let all = Proc.Set.of_range 0 (n - 1) in
  let dynamic_diags = ref [] in
  let collect ?steps () = dynamic_diags := !dynamic_diags @ dynamic ?steps exec in
  ignore (System.reconfigure sys ~set:all);
  collect ();
  System.send sys 0 "vet-a";
  System.send sys 1 "vet-b";
  ignore (System.start_change sys ~set:(Proc.Set.remove (n - 1) all));
  collect ();
  ignore (System.deliver_view ~origin:1 sys ~set:(Proc.Set.remove (n - 1) all));
  collect ();
  System.crash sys (n - 1);
  System.recover sys (n - 1);
  ignore (System.reconfigure ~origin:2 sys ~set:all);
  collect ();
  drain sys;
  static_diags @ !dynamic_diags

(* Lint the client-server membership stack (Figure 1): servers and
   their transport replace the oracle; the universe gains the server
   vocabulary. *)
let server_stack ?(n_clients = 4) ?(n_servers = 2) () : Diag.t list =
  let t = Server_system.create ~n_clients ~n_servers ~monitors:`None () in
  let sys = Server_system.sys t in
  let comps = Array.to_list (Executor.components (System.exec sys)) in
  let static_diags =
    static ~universe:(Universe.actions ~n:n_clients ~n_servers ()) comps
  in
  let exec = System.exec sys in
  Server_system.bootstrap t;
  let d1 = dynamic exec in
  Server_system.fd_change t ~perceived:(Server.Set.of_range 0 (n_servers - 1));
  Server_system.leave t (n_clients - 1);
  Server_system.join t (n_clients - 1);
  let d2 = dynamic exec in
  drain sys;
  static_diags @ d1 @ d2
