(* A finite, representative action universe for the static vet passes.

   The static signatures (accepts, emits, footprint) are parametric in
   message contents: every component dispatches on the constructor, the
   loci, and — for [Rf_send]/[Rf_deliver] — the wire-message kind,
   never on payloads or identifiers. One representative action per
   (category, locus tuple, wire kind) therefore drives every branch of
   every signature, which is what lets a check over this finite set
   stand for the infinite action vocabulary. *)

open Vsgc_types

let msg = Msg.App_msg.make "vet"

let procs n = List.init n (fun p -> p)

(* A plausible non-initial view over all of 0..n-1. *)
let view ~n =
  let set = Proc.Set.of_range 0 (n - 1) in
  let start_ids =
    Proc.Set.fold
      (fun p acc -> Proc.Map.add p (View.Sc_id.succ View.Sc_id.zero) acc)
      set Proc.Map.empty
  in
  View.make ~id:(View.Id.make ~num:1 ~origin:0) ~set ~start_ids

(* One wire message per kind. *)
let wires ~n : Msg.Wire.t list =
  let v = view ~n in
  let cid = View.Sc_id.succ View.Sc_id.zero in
  [
    Msg.Wire.View_msg v;
    Msg.Wire.App msg;
    Msg.Wire.Fwd { origin = 0; view = v; index = 1; msg };
    Msg.Wire.Sync { cid; view = v; cut = Msg.Cut.empty };
    Msg.Wire.Sync_batch [ { Msg.Wire.origin = 0; cid; sview = v; cut = Msg.Cut.empty } ];
    Msg.Wire.Bsync { vid = View.Id.make ~num:1 ~origin:0; view = v; cut = Msg.Cut.empty };
  ]

let srv_msgs ~n ~n_servers : Srv_msg.t list =
  [
    Srv_msg.Proposal
      {
        round = 1;
        from = Server.of_int 0;
        servers = Server.Set.of_range 0 (n_servers - 1);
        clients = Proc.Map.empty;
        members = Proc.Set.of_range 0 (n - 1);
        max_vid = View.Id.zero;
      };
    Srv_msg.Commit (view ~n);
  ]

(* The universe for a composition over processes 0..n-1 and (when
   [n_servers] > 0) servers 0..n_servers-1. *)
let actions ?(n_servers = 0) ~n () : Action.t list =
  let v = view ~n in
  let all = Proc.Set.of_range 0 (n - 1) in
  let cid = View.Sc_id.succ View.Sc_id.zero in
  let acc = ref [] in
  let add a = acc := a :: !acc in
  List.iter
    (fun p ->
      add (Action.App_send (p, msg));
      add (Action.Block p);
      add (Action.Block_ok p);
      add (Action.Crash p);
      add (Action.Recover p);
      add (Action.Mb_start_change (p, cid, all));
      add (Action.Mb_view (p, v));
      add (Action.Rf_reliable (p, all));
      add (Action.Rf_live (p, all));
      add (Action.App_view (p, v, all));
      add (Action.App_view (p, v, Proc.Set.empty));
      List.iter (fun w -> add (Action.Rf_send (p, all, w))) (wires ~n);
      List.iter
        (fun q ->
          add (Action.App_deliver (p, q, msg));
          add (Action.Rf_lose (p, q));
          List.iter (fun w -> add (Action.Rf_deliver (p, q, w))) (wires ~n))
        (procs n))
    (procs n);
  if n_servers > 0 then begin
    let all_servers = Server.Set.of_range 0 (n_servers - 1) in
    List.iter
      (fun s ->
        let s = Server.of_int s in
        add (Action.Fd_change (s, all_servers));
        List.iter
          (fun p ->
            add (Action.Client_join (p, s));
            add (Action.Client_leave (p, s)))
          (procs n);
        List.iter
          (fun s' ->
            let s' = Server.of_int s' in
            List.iter
              (fun m ->
                add (Action.Srv_send (s, s', m));
                add (Action.Srv_deliver (s, s', m)))
              (srv_msgs ~n ~n_servers))
          (procs n_servers))
      (procs n_servers)
  end;
  List.rev !acc
