(* The hot-path allocation lint (vet pass "hotpath").

   The zero-copy wire path earns its numbers by never materializing
   intermediate byte copies: frames encode into one pooled [Bin.Wbuf]
   and decode in place via [Bin.run_sub]. The cheapest way to lose that
   is one innocent-looking line — a [Buffer.to_bytes] that snapshots a
   whole buffer, or a [Bytes.sub_string] that copies a window the
   decoder only needed to read. This pass greps the wire layer's
   sources for exactly those idioms and flags each occurrence, so the
   regression shows up in vet (and CI) before it shows up in E14.

   Escape hatch: a line carrying the marker comment

     (* hotpath-allow *)

   is exempt — for the rare site where the copy is the point (say, a
   diagnostic dump). The marker is per-line and greppable, so every
   exemption stays visible. *)

let pass = "hotpath"
let allow_marker = "hotpath-allow"

(* The banned idioms, each with the rewrite the diagnostic suggests. *)
let banned =
  [
    ("Buffer.to_bytes", "encode into a pooled Bin.Wbuf instead");
    ("Bytes.sub_string", "decode the window in place via Bin.run_sub");
  ]

let contains ~needle line =
  let n = String.length needle and l = String.length line in
  let rec go i =
    i + n <= l && (String.sub line i n = needle || go (i + 1))
  in
  go 0

let scan_line ~file ~lineno line =
  if contains ~needle:allow_marker line then []
  else
    List.filter_map
      (fun (needle, fix) ->
        if contains ~needle line then
          Some
            (Diag.vf ~pass ~check:"hot-path-copy"
               ~subject:(Fmt.str "%s:%d" file lineno)
               "%s allocates a copy on the wire hot path — %s (or mark \
                the line %s)"
               needle fix allow_marker)
        else None)
      banned

let scan_file file =
  match In_channel.with_open_text file In_channel.input_lines with
  | exception Sys_error msg ->
      [ Diag.vf ~pass ~check:"unreadable" ~subject:file "%s" msg ]
  | lines ->
      List.concat
        (List.mapi (fun i line -> scan_line ~file ~lineno:(i + 1) line) lines)

(* Scan every .ml under [dir] (default: the wire layer), in sorted
   order so the diagnostics are stable. *)
let check ?(dir = "lib/wire") () =
  match Sys.readdir dir with
  | exception Sys_error msg ->
      [ Diag.vf ~pass ~check:"unreadable" ~subject:dir "%s" msg ]
  | entries ->
      Array.sort compare entries;
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.concat_map (fun f -> scan_file (Filename.concat dir f))
