(** The wiring linter (vet pass 1).

    Composition in the paper's §2 sense is sound only when the action
    vocabulary is wired consistently: every output reaches someone,
    every action category has one writer per locus, and purely
    reactive components (observers) see the whole vocabulary. These
    are exactly the properties the executor cannot check at runtime —
    a dangling output or a shadowed writer produces a quietly wrong
    execution, not a crash — so they are checked statically here, over
    the declared [emits]/[accepts] signatures and the representative
    {!Universe}.

    Checks: [dangling-output], [multi-writer], [partial-observer],
    [footprint-gap] (static) and [emits-unsound] (dynamic). *)

val static :
  universe:Vsgc_types.Action.t list ->
  Vsgc_ioa.Component.packed list ->
  Diag.t list
(** The static pass over a composition's declared signatures. *)

val dynamic : ?steps:int -> Vsgc_ioa.Executor.t -> Diag.t list
(** Check every enabled candidate against its owner's declared static
    signature along [steps] (default 500) seeded scheduler steps.
    Duplicate findings (same owner, same action) are reported once. *)

val layer : ?n:int -> Vsgc_core.Endpoint.layer -> Diag.t list
(** Lint one Sysconf layer: the static pass over the built
    composition, then the dynamic pass along a scripted
    reconfiguration with traffic, a partial change and a
    crash/recovery. *)

val server_stack : ?n_clients:int -> ?n_servers:int -> unit -> Diag.t list
(** Lint the client-server membership stack (Figure 1): servers and
    their transport replace the oracle; the universe gains the server
    vocabulary. *)
