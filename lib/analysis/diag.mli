(** Machine-readable diagnostics shared by the vet passes.

    The record itself lives in {!Vsgc_ioa.Diag} (the runtime effect
    sanitizer reports in the same vocabulary); this module re-exports
    it with type equality so analysis-side callers are unaffected. *)

include module type of struct
  include Vsgc_ioa.Diag
end
