(** The schedule/corpus checker (vet pass 3).

    Regression schedules under [test/corpus/] are replayed by CI
    against freshly built systems, so a schedule that drifted out of
    its layer's action signature fails late and confusingly (an
    unmatched Choose at replay time) or, worse, silently validates
    nothing. This pass checks each schedule statically against the
    signature of its declared configuration: every Choose key must
    parse as a known action shape, belong to the declared layer, and
    target loci in range. *)

val check_sched : Vsgc_explore.Schedule.t -> Diag.t list
val check_file : string -> Diag.t list

val check_dir : string -> Diag.t list
(** Check every [*.sched] under a directory, in file-name order. *)
