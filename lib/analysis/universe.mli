(** A finite, representative action universe for the static vet passes.

    The static signatures (accepts, emits, footprint) are parametric in
    message contents: every component dispatches on the constructor,
    the loci, and — for [Rf_send]/[Rf_deliver] — the wire-message kind,
    never on payloads or identifiers. One representative action per
    (category, locus tuple, wire kind) therefore drives every branch of
    every signature, which is what lets a check over this finite set
    stand for the infinite action vocabulary. *)

open Vsgc_types

val msg : Msg.App_msg.t
(** The one representative application payload. *)

val view : n:int -> View.t
(** A plausible non-initial view over all of [0..n-1]. *)

val wires : n:int -> Msg.Wire.t list
(** One wire message per kind. *)

val srv_msgs : n:int -> n_servers:int -> Srv_msg.t list
(** One server-to-server message per constructor. *)

val actions : ?n_servers:int -> n:int -> unit -> Action.t list
(** The universe for a composition over processes [0..n-1] and (when
    [n_servers] > 0) servers [0..n_servers-1]. *)
