(* The application-level packet vocabulary of the runtime.

   Everything two vsgc nodes ever exchange is one of these; the framing
   layer ([Frame]) wraps them with a magic/version/length header. The
   variants mirror the action vocabulary at each process boundary:

   - [Hello]          connection preamble: the dialer announces who it
                      is, so the acceptor can map the socket to a node.
   - [Rf]             a CO_RFIFO-level wire message between end-points
                      (carried client-to-client via the transport).
   - [Srv]            an inter-server membership message.
   - [Join]/[Leave]   a client (de)registering with its membership
                      server.
   - [Start_change]   server -> client: the mb_start_change event.
   - [View]           server -> client: the mb_view event.
   - [Kv_req]         load client -> kv-server: a KV service request.
   - [Kv_resp]        kv-server -> load client: the acknowledgement. *)

open Vsgc_types

type t =
  | Hello of Node_id.t
  | Rf of { from : Proc.t; wire : Msg.Wire.t }
  | Srv of { from : Server.t; msg : Srv_msg.t }
  | Join of Proc.t
  | Leave of Proc.t
  | Start_change of { target : Proc.t; cid : View.Sc_id.t; set : Proc.Set.t }
  | View of { target : Proc.t; view : View.t }
  | Kv_req of Kv_msg.request
  | Kv_resp of Kv_msg.response

let equal a b =
  match (a, b) with
  | Hello x, Hello y -> Node_id.equal x y
  | Rf x, Rf y -> Proc.equal x.from y.from && Msg.Wire.equal x.wire y.wire
  | Srv x, Srv y -> Server.equal x.from y.from && Srv_msg.equal x.msg y.msg
  | Join p, Join q | Leave p, Leave q -> Proc.equal p q
  | Start_change x, Start_change y ->
      Proc.equal x.target y.target
      && View.Sc_id.equal x.cid y.cid
      && Proc.Set.equal x.set y.set
  | View x, View y -> Proc.equal x.target y.target && View.equal x.view y.view
  | Kv_req x, Kv_req y -> Kv_msg.request_equal x y
  | Kv_resp x, Kv_resp y -> Kv_msg.response_equal x y
  | ( ( Hello _ | Rf _ | Srv _ | Join _ | Leave _ | Start_change _ | View _
      | Kv_req _ | Kv_resp _ ),
      _ ) ->
      false

let pp ppf = function
  | Hello id -> Fmt.pf ppf "hello(%a)" Node_id.pp id
  | Rf { from; wire } -> Fmt.pf ppf "rf(%a,%a)" Proc.pp from Msg.Wire.pp wire
  | Srv { from; msg } -> Fmt.pf ppf "srv(%a,%a)" Server.pp from Srv_msg.pp msg
  | Join p -> Fmt.pf ppf "join(%a)" Proc.pp p
  | Leave p -> Fmt.pf ppf "leave(%a)" Proc.pp p
  | Start_change { target; cid; set } ->
      Fmt.pf ppf "start_change(%a,%a,%a)" Proc.pp target View.Sc_id.pp cid
        Proc.Set.pp set
  | View { target; view } ->
      Fmt.pf ppf "view(%a,%a)" Proc.pp target View.pp view
  | Kv_req req -> Fmt.pf ppf "kv_req(%a)" Kv_msg.pp_request req
  | Kv_resp resp -> Fmt.pf ppf "kv_resp(%a)" Kv_msg.pp_response resp

let to_string t = Fmt.str "%a" pp t

let write b = function
  | Hello id ->
      Bin.w_u8 b 1;
      Node_id.write b id
  | Rf { from; wire } ->
      Bin.w_u8 b 2;
      Proc.write b from;
      Msg.Wire.write b wire
  | Srv { from; msg } ->
      Bin.w_u8 b 3;
      Server.write b from;
      Srv_msg.write b msg
  | Join p ->
      Bin.w_u8 b 4;
      Proc.write b p
  | Leave p ->
      Bin.w_u8 b 5;
      Proc.write b p
  | Start_change { target; cid; set } ->
      Bin.w_u8 b 6;
      Proc.write b target;
      View.Sc_id.write b cid;
      Bin.w_list b Proc.write (Proc.Set.elements set)
  | View { target; view } ->
      Bin.w_u8 b 7;
      Proc.write b target;
      View.write b view
  | Kv_req req ->
      Bin.w_u8 b 8;
      Kv_msg.write_request b req
  | Kv_resp resp ->
      Bin.w_u8 b 9;
      Kv_msg.write_response b resp

let read r =
  match Bin.r_u8 r ~what:"packet" with
  | 1 -> Hello (Node_id.read r)
  | 2 ->
      let from = Proc.read r in
      let wire = Msg.Wire.read r in
      Rf { from; wire }
  | 3 ->
      let from = Server.read r in
      let msg = Srv_msg.read r in
      Srv { from; msg }
  | 4 -> Join (Proc.read r)
  | 5 -> Leave (Proc.read r)
  | 6 ->
      let target = Proc.read r in
      let cid = View.Sc_id.read r in
      let set =
        Proc.Set.of_list (Bin.r_list r ~what:"start_change.set" Proc.read)
      in
      Start_change { target; cid; set }
  | 7 ->
      let target = Proc.read r in
      let view = View.read r in
      View { target; view }
  | 8 -> Kv_req (Kv_msg.read_request r)
  | 9 -> Kv_resp (Kv_msg.read_response r)
  | tag -> Bin.fail (Bad_tag { what = "packet"; tag })

(* A cheap lower bound on the encoded size, so encode paths size their
   buffer from the payload instead of discovering it by doubling. Only
   the variants that can carry large payloads matter; the fixed-size
   ones fall back to the default scratch size. *)
let size_hint = function
  | Rf { wire; _ } -> 16 + Msg.Wire.size_bytes wire
  | Kv_req req -> 16 + Kv_msg.request_size_hint req
  | Kv_resp resp -> 16 + Kv_msg.response_size_hint resp
  | Srv _ | View _ | Start_change _ | Hello _ | Join _ | Leave _ -> 64

let to_bytes t = Bin.to_bytes ~hint:(size_hint t) write t
let of_bytes buf = Bin.run read buf
