(* Network-level endpoint identities.

   A node on the wire is a GCS client end-point (a [Proc.t]), a
   membership server (a [Server.t]), or a KV load client that speaks
   only the request/response protocol and never joins the group. The
   id spaces overlap as integers, so the wire identity carries the
   role tag. *)

open Vsgc_types

type t = Client of Proc.t | Server of Server.t | Kv_client of int

let client p = Client p
let server s = Server s
let kv_client k = Kv_client k

let rank = function Client _ -> 0 | Server _ -> 1 | Kv_client _ -> 2

let compare a b =
  match (a, b) with
  | Client p, Client q -> Proc.compare p q
  | Server s, Server t -> Server.compare s t
  | Kv_client k, Kv_client l -> Int.compare k l
  | (Client _ | Server _ | Kv_client _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let pp ppf = function
  | Client p -> Proc.pp ppf p
  | Server s -> Server.pp ppf s
  | Kv_client k -> Fmt.pf ppf "k%d" k

let to_string t = Fmt.str "%a" pp t

let write b = function
  | Client p ->
      Bin.w_u8 b 0;
      Proc.write b p
  | Server s ->
      Bin.w_u8 b 1;
      Server.write b s
  | Kv_client k ->
      Bin.w_u8 b 2;
      Bin.w_int b k

let read r =
  match Bin.r_u8 r ~what:"node_id" with
  | 0 -> Client (Proc.read r)
  | 1 -> Server (Server.read r)
  | 2 -> Kv_client (Bin.r_int r ~what:"node_id.kv")
  | tag -> Bin.fail (Bad_tag { what = "node_id"; tag })

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
