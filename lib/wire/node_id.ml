(* Network-level endpoint identities.

   A node on the wire is either a GCS client end-point (a [Proc.t]) or
   a membership server (a [Server.t]). The two id spaces overlap as
   integers, so the wire identity carries the role tag. *)

open Vsgc_types

type t = Client of Proc.t | Server of Server.t

let client p = Client p
let server s = Server s

let compare a b =
  match (a, b) with
  | Client p, Client q -> Proc.compare p q
  | Server s, Server t -> Server.compare s t
  | Client _, Server _ -> -1
  | Server _, Client _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Client p -> Proc.pp ppf p
  | Server s -> Server.pp ppf s

let to_string t = Fmt.str "%a" pp t

let write b = function
  | Client p ->
      Bin.w_u8 b 0;
      Proc.write b p
  | Server s ->
      Bin.w_u8 b 1;
      Server.write b s

let read r =
  match Bin.r_u8 r ~what:"node_id" with
  | 0 -> Client (Proc.read r)
  | 1 -> Server (Server.read r)
  | tag -> Bin.fail (Bad_tag { what = "node_id"; tag })

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
