(* Framing: every packet travels as

     magic 'V' 'G' | version u8 | body length u32 | body

   The header lets a receiver reject garbage cheaply, the version byte
   lets future PRs evolve the body codec, and the length prefix
   delimits packets on a TCP stream. [decode] is total; the
   incremental [feeder] incorporates bytes as they arrive and yields
   complete packets (or structured errors) without ever raising. *)

open Vsgc_types

let magic0 = 'V'
let magic1 = 'G'
let version = 1
let header_len = 2 + 1 + 4

(* Upper bound on a body: anything larger on a real socket is far more
   likely a corrupt length prefix than a genuine packet, and trusting
   it would let one bad header allocate gigabytes. *)
let max_body_len = 16 * 1024 * 1024

type error =
  | Bad_magic of { got : char * char }
  | Bad_version of int
  | Oversize of int
  | Body of Bin.error

let pp_error ppf = function
  | Bad_magic { got = c0, c1 } ->
      Fmt.pf ppf "bad frame magic 0x%02x%02x" (Char.code c0) (Char.code c1)
  | Bad_version v -> Fmt.pf ppf "unsupported frame version %d" v
  | Oversize n -> Fmt.pf ppf "frame body of %d bytes exceeds limit" n
  | Body e -> Fmt.pf ppf "frame body: %a" Bin.pp_error e

let error_to_string e = Fmt.str "%a" pp_error e

(* Append one whole frame to [b]: header, a length placeholder, the
   body written IN PLACE (no encode-to-bytes-then-embed), then the
   length backpatched. One buffer end to end; callers that batch
   multiple frames into one write keep appending to the same [b]. *)
let encode_into b pkt =
  let base = Bin.Wbuf.length b in
  Bin.Wbuf.add_char b magic0;
  Bin.Wbuf.add_char b magic1;
  Bin.w_u8 b version;
  Bin.w_u32 b 0 (* length; patched below *);
  Packet.write b pkt;
  Bin.Wbuf.patch_u32 b ~at:(base + 3) (Bin.Wbuf.length b - base - header_len)

let encode pkt =
  Bin.with_scratch
    ~hint:(header_len + Packet.size_hint pkt)
    (fun b ->
      encode_into b pkt;
      Bin.Wbuf.to_bytes b)

type header = Need_more | Body_len of int

let check_header buf ~pos ~have =
  if have < header_len then Ok Need_more
  else
    let c0 = Bytes.get buf pos and c1 = Bytes.get buf (pos + 1) in
    if c0 <> magic0 || c1 <> magic1 then Error (Bad_magic { got = (c0, c1) })
    else
      let v = Char.code (Bytes.get buf (pos + 2)) in
      if v <> version then Error (Bad_version v)
      else
        let b i = Char.code (Bytes.get buf (pos + 3 + i)) in
        let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if n > max_body_len then Error (Oversize n) else Ok (Body_len n)

let decode buf =
  let have = Bytes.length buf in
  match check_header buf ~pos:0 ~have with
  | Error e -> Error e
  | Ok Need_more ->
      Error
        (Body (Bin.Truncated { what = "frame header"; need = header_len; have }))
  | Ok (Body_len n) ->
      if have < header_len + n then
        Error
          (Body
             (Bin.Truncated
                { what = "frame body"; need = n; have = have - header_len }))
      else if have > header_len + n then
        Error (Body (Bin.Trailing { extra = have - header_len - n }))
      else (
        (* decode the body in place — no copy of the window *)
        match Bin.run_sub Packet.read buf ~pos:header_len ~len:n with
        | Ok pkt -> Ok pkt
        | Error e -> Error (Body e))

(* -- Incremental decoding for stream transports -------------------------- *)

type feeder = { mutable acc : bytes; mutable len : int }

let feeder () = { acc = Bytes.create 4096; len = 0 }

let feed f buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Frame.feed: bad slice";
  let need = f.len + len in
  if need > Bytes.length f.acc then begin
    let cap = ref (Bytes.length f.acc * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let acc = Bytes.create !cap in
    Bytes.blit f.acc 0 acc 0 f.len;
    f.acc <- acc
  end;
  Bytes.blit buf off f.acc f.len len;
  f.len <- f.len + len

let buffered f = f.len

let consume f n =
  Bytes.blit f.acc n f.acc 0 (f.len - n);
  f.len <- f.len - n

let next f =
  match check_header f.acc ~pos:0 ~have:f.len with
  | Error e ->
      (* The stream is out of sync. The caller is expected to drop the
         connection, so don't try to resynchronize — just flush. *)
      f.len <- 0;
      Some (Error e)
  | Ok Need_more -> None
  | Ok (Body_len n) ->
      if f.len < header_len + n then None
      else begin
        (* decode straight out of the accumulator (decoders copy any
           payload they keep), then slide the window *)
        let res =
          match Bin.run_sub Packet.read f.acc ~pos:header_len ~len:n with
          | Ok pkt -> Ok pkt
          | Error e -> Error (Body e)
        in
        consume f (header_len + n);
        Some res
      end
