(** Wire vocabulary of the symmetric (Skeen-style) total-order arm:
    timestamped data, acknowledgments, and the view-change flush
    announcement. Rides inside opaque GCS application payloads; the
    codec is total on decode like every other [Bin]-based codec. *)

open Vsgc_types

type t =
  | Data of { ts : int; body : string }
  | Ack of { ts : int }
  | Flush of { ts : int; view : View.Id.t; digest : string }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val ts : t -> int
(** The Lamport timestamp every symmetric-arm message carries. *)

val write : Bin.wbuf -> t -> unit
val read : Bin.reader -> t

val size_hint : t -> int
val to_bytes : t -> bytes
val of_bytes : bytes -> (t, Bin.error) result

val to_payload : t -> string
(** Encode for travel inside an opaque [Msg.App_msg] payload. *)

val of_payload : string -> (t, Bin.error) result
(** Total decode of a payload; non-symmetric-arm payloads yield
    [Error]. *)
