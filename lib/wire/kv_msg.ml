(* Request/response vocabulary of the replicated KV service.

   A command id is the pair (client, seq): [client] is the load
   client's wire identity ([Node_id.Kv_client]), [seq] its private
   monotone counter. The id travels through the total order inside the
   replicated command, so retransmitted requests stay idempotent and
   both sides can dedup acknowledgements by id. *)

open Vsgc_types

type request =
  | Put of { client : int; seq : int; key : string; value : string }
  | Get of { client : int; seq : int; key : string }

type response =
  | Put_ack of { client : int; seq : int }
  | Get_reply of { client : int; seq : int; value : string option }

let request_equal a b =
  match (a, b) with
  | Put x, Put y ->
      x.client = y.client && x.seq = y.seq
      && String.equal x.key y.key
      && String.equal x.value y.value
  | Get x, Get y ->
      x.client = y.client && x.seq = y.seq && String.equal x.key y.key
  | (Put _ | Get _), _ -> false

let response_equal a b =
  match (a, b) with
  | Put_ack x, Put_ack y -> x.client = y.client && x.seq = y.seq
  | Get_reply x, Get_reply y ->
      x.client = y.client && x.seq = y.seq
      && Option.equal String.equal x.value y.value
  | (Put_ack _ | Get_reply _), _ -> false

let pp_request ppf = function
  | Put { client; seq; key; value } ->
      Fmt.pf ppf "put(k%d#%d,%S=%S)" client seq key value
  | Get { client; seq; key } -> Fmt.pf ppf "get(k%d#%d,%S)" client seq key

let pp_response ppf = function
  | Put_ack { client; seq } -> Fmt.pf ppf "put_ack(k%d#%d)" client seq
  | Get_reply { client; seq; value } ->
      Fmt.pf ppf "get_reply(k%d#%d,%a)" client seq
        (Fmt.option ~none:(Fmt.any "none") (Fmt.fmt "%S"))
        value

let write_request b = function
  | Put { client; seq; key; value } ->
      Bin.w_u8 b 1;
      Bin.w_int b client;
      Bin.w_int b seq;
      Bin.w_string b key;
      Bin.w_string b value
  | Get { client; seq; key } ->
      Bin.w_u8 b 2;
      Bin.w_int b client;
      Bin.w_int b seq;
      Bin.w_string b key

let read_request r =
  match Bin.r_u8 r ~what:"kv_req" with
  | 1 ->
      let client = Bin.r_int r ~what:"kv_req.client" in
      let seq = Bin.r_int r ~what:"kv_req.seq" in
      let key = Bin.r_string r ~what:"kv_req.key" in
      let value = Bin.r_string r ~what:"kv_req.value" in
      Put { client; seq; key; value }
  | 2 ->
      let client = Bin.r_int r ~what:"kv_req.client" in
      let seq = Bin.r_int r ~what:"kv_req.seq" in
      let key = Bin.r_string r ~what:"kv_req.key" in
      Get { client; seq; key }
  | tag -> Bin.fail (Bad_tag { what = "kv_req"; tag })

let write_response b = function
  | Put_ack { client; seq } ->
      Bin.w_u8 b 1;
      Bin.w_int b client;
      Bin.w_int b seq
  | Get_reply { client; seq; value } ->
      Bin.w_u8 b 2;
      Bin.w_int b client;
      Bin.w_int b seq;
      (match value with
      | None -> Bin.w_u8 b 0
      | Some v ->
          Bin.w_u8 b 1;
          Bin.w_string b v)

let read_response r =
  match Bin.r_u8 r ~what:"kv_resp" with
  | 1 ->
      let client = Bin.r_int r ~what:"kv_resp.client" in
      let seq = Bin.r_int r ~what:"kv_resp.seq" in
      Put_ack { client; seq }
  | 2 ->
      let client = Bin.r_int r ~what:"kv_resp.client" in
      let seq = Bin.r_int r ~what:"kv_resp.seq" in
      let value =
        match Bin.r_u8 r ~what:"kv_resp.some" with
        | 0 -> None
        | 1 -> Some (Bin.r_string r ~what:"kv_resp.value")
        | tag -> Bin.fail (Bad_tag { what = "kv_resp.some"; tag })
      in
      Get_reply { client; seq; value }
  | tag -> Bin.fail (Bad_tag { what = "kv_resp"; tag })

let request_size_hint = function
  | Put { key; value; _ } -> 32 + String.length key + String.length value
  | Get { key; _ } -> 32 + String.length key

let response_size_hint = function
  | Put_ack _ -> 32
  | Get_reply { value; _ } ->
      32 + match value with None -> 0 | Some v -> String.length v

let request_to_bytes t =
  Bin.to_bytes ~hint:(request_size_hint t) write_request t

let request_of_bytes buf = Bin.run read_request buf

let response_to_bytes t =
  Bin.to_bytes ~hint:(response_size_hint t) write_response t

let response_of_bytes buf = Bin.run read_response buf
