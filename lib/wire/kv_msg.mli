(** Request/response vocabulary of the replicated KV service
    (DESIGN.md §15). A command id is the pair [(client, seq)] — it
    rides inside the replicated command, so retransmissions are
    idempotent and acknowledgements dedup by id. *)

open Vsgc_types

type request =
  | Put of { client : int; seq : int; key : string; value : string }
  | Get of { client : int; seq : int; key : string }

type response =
  | Put_ack of { client : int; seq : int }
  | Get_reply of { client : int; seq : int; value : string option }

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
val write_request : Bin.wbuf -> request -> unit
val write_response : Bin.wbuf -> response -> unit

val read_request : Bin.reader -> request
(** @raise Bin.Error *)

val read_response : Bin.reader -> response
(** @raise Bin.Error *)

val request_size_hint : request -> int
val response_size_hint : response -> int
val request_to_bytes : request -> bytes
val response_to_bytes : response -> bytes

val request_of_bytes : bytes -> (request, Bin.error) result
(** Total: never raises on malformed input. *)

val response_of_bytes : bytes -> (response, Bin.error) result
(** Total: never raises on malformed input. *)
