(** The application-level packet vocabulary of the runtime: everything
    two vsgc nodes exchange, prior to framing (DESIGN.md §10). *)

open Vsgc_types

type t =
  | Hello of Node_id.t
      (** connection preamble: the dialer announces its identity *)
  | Rf of { from : Proc.t; wire : Msg.Wire.t }
      (** a CO_RFIFO-level wire message between GCS end-points *)
  | Srv of { from : Server.t; msg : Srv_msg.t }
      (** an inter-server membership message *)
  | Join of Proc.t  (** client registers with its membership server *)
  | Leave of Proc.t  (** client deregisters *)
  | Start_change of { target : Proc.t; cid : View.Sc_id.t; set : Proc.Set.t }
      (** server -> client mb_start_change event *)
  | View of { target : Proc.t; view : View.t }
      (** server -> client mb_view event *)
  | Kv_req of Kv_msg.request  (** load client -> kv-server request *)
  | Kv_resp of Kv_msg.response  (** kv-server -> load client reply *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val write : Bin.wbuf -> t -> unit

val read : Bin.reader -> t
(** @raise Bin.Error *)

val size_hint : t -> int
(** A cheap lower bound on the encoded size, used to size encode
    buffers from the payload instead of growing by doubling. *)

val to_bytes : t -> bytes

val of_bytes : bytes -> (t, Bin.error) result
(** Total: never raises on malformed input. *)
