(** Packet framing for stream and datagram transports.

    Every {!Packet.t} travels as [magic 'V' 'G' | version u8 |
    body length u32 | body]. {!decode} and {!next} are total: malformed
    input yields an {!error}, never an exception (DESIGN.md §10). *)

open Vsgc_types

val version : int
(** Current wire-format version (1). *)

val header_len : int
(** Bytes of framing overhead per packet (7). *)

val max_body_len : int
(** Bodies larger than this are rejected as {!Oversize} — a corrupt
    length prefix must not drive allocation. *)

type error =
  | Bad_magic of { got : char * char }
  | Bad_version of int
  | Oversize of int
  | Body of Bin.error

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode : Packet.t -> bytes
(** One whole frame: header plus body, encoded through a pooled
    scratch buffer sized from {!Packet.size_hint}. *)

val encode_into : Bin.wbuf -> Packet.t -> unit
(** Append one whole frame to the buffer — body written in place,
    length prefix backpatched. Batching callers append several frames
    to the same buffer and ship them in one write. *)

val decode : bytes -> (Packet.t, error) result
(** Decodes exactly one whole frame. Total: truncated input reports
    [Body (Truncated _)], excess input [Body (Trailing _)]. *)

(** {1 Incremental decoding}

    A [feeder] accumulates stream bytes as they arrive and yields
    complete packets. After {!next} returns a framing error the
    feeder's buffer is flushed — the caller should drop the
    connection, since a byte stream that lost framing cannot be
    trusted to recover. *)

type feeder

val feeder : unit -> feeder

val feed : feeder -> bytes -> off:int -> len:int -> unit
(** Appends [len] bytes of [buf] starting at [off].
    @raise Invalid_argument on a slice outside [buf]. *)

val buffered : feeder -> int
(** Bytes accumulated but not yet consumed by {!next}. *)

val next : feeder -> (Packet.t, error) result option
(** [next f] is [Some (Ok pkt)] when a complete frame is buffered,
    [Some (Error e)] when the buffered bytes cannot be a frame, and
    [None] when more bytes are needed. Never raises. *)
