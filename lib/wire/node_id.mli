(** Network-level endpoint identities: a node is a GCS client
    end-point, a membership server, or a KV load client (request /
    response only — never a group member). The integer id spaces
    overlap, so the wire identity carries the role tag. *)

open Vsgc_types

type t = Client of Proc.t | Server of Server.t | Kv_client of int

val client : Proc.t -> t
val server : Server.t -> t
val kv_client : int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val write : Bin.wbuf -> t -> unit

val read : Bin.reader -> t
(** @raise Bin.Error *)

module Map : Map.S with type key = t
