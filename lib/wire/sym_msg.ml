(* Wire vocabulary of the symmetric (Skeen-style logical-timestamp)
   total-order arm (DESIGN.md §16).

   These messages ride as opaque application payloads inside the GCS's
   own [Msg.App_msg] — the symmetric protocol is an application of the
   within-view reliable FIFO service, exactly as [13] builds it — so
   the codec converts to and from [string] at its edge ([to_payload] /
   [of_payload]) while sharing the [Bin] discipline of every other
   wire codec: tagged, length-prefixed, and total on decode.

     Data  <ts, body>          a timestamped application multicast
     Ack   <ts>                a silent member's acknowledgment
     Flush <ts, view, digest>  the view-change boundary announcement:
                               the sender flushed its undeliverable
                               remainder into the total order and
                               [digest] fingerprints that flushed
                               chunk. Doubles as the first ack of the
                               new view (it carries a fresh timestamp),
                               seeding every member's heard map — and
                               gives the Skeen trace monitor the
                               cross-member flush-agreement evidence. *)

open Vsgc_types

type t =
  | Data of { ts : int; body : string }
  | Ack of { ts : int }
  | Flush of { ts : int; view : View.Id.t; digest : string }

let equal a b =
  match (a, b) with
  | Data x, Data y -> x.ts = y.ts && String.equal x.body y.body
  | Ack x, Ack y -> x.ts = y.ts
  | Flush x, Flush y ->
      x.ts = y.ts && View.Id.equal x.view y.view && String.equal x.digest y.digest
  | (Data _ | Ack _ | Flush _), _ -> false

let pp ppf = function
  | Data { ts; body } -> Fmt.pf ppf "data(t%d,%S)" ts body
  | Ack { ts } -> Fmt.pf ppf "ack(t%d)" ts
  | Flush { ts; view; digest } ->
      Fmt.pf ppf "flush(t%d,%a,%s)" ts View.Id.pp view digest

let ts = function Data { ts; _ } | Ack { ts } | Flush { ts; _ } -> ts

let write b = function
  | Data { ts; body } ->
      Bin.w_u8 b 1;
      Bin.w_int b ts;
      Bin.w_string b body
  | Ack { ts } ->
      Bin.w_u8 b 2;
      Bin.w_int b ts
  | Flush { ts; view; digest } ->
      Bin.w_u8 b 3;
      Bin.w_int b ts;
      View.Id.write b view;
      Bin.w_string b digest

let read r =
  match Bin.r_u8 r ~what:"sym_msg" with
  | 1 ->
      let ts = Bin.r_int r ~what:"sym_msg.ts" in
      let body = Bin.r_string r ~what:"sym_msg.body" in
      if ts <= 0 then Bin.bad_value ~what:"sym_msg.ts" "non-positive timestamp";
      Data { ts; body }
  | 2 ->
      let ts = Bin.r_int r ~what:"sym_msg.ts" in
      if ts <= 0 then Bin.bad_value ~what:"sym_msg.ts" "non-positive timestamp";
      Ack { ts }
  | 3 ->
      let ts = Bin.r_int r ~what:"sym_msg.ts" in
      let view = View.Id.read r in
      let digest = Bin.r_string r ~what:"sym_msg.digest" in
      if ts <= 0 then Bin.bad_value ~what:"sym_msg.ts" "non-positive timestamp";
      Flush { ts; view; digest }
  | tag -> Bin.fail (Bad_tag { what = "sym_msg"; tag })

let size_hint = function
  | Data { body; _ } -> 24 + String.length body
  | Ack _ -> 16
  | Flush { digest; _ } -> 40 + String.length digest

let to_bytes t = Bin.to_bytes ~hint:(size_hint t) write t
let of_bytes buf = Bin.run read buf

(* The payload edge: symmetric-arm traffic travels inside opaque
   [Msg.App_msg] strings, so the GCS below needs no new packet kind. *)
let to_payload t = Bytes.unsafe_to_string (to_bytes t)
let of_payload s = of_bytes (Bytes.unsafe_of_string s)
