(** The composed system's action signature.

    Every external action of every automaton in the paper appears here,
    tagged (as in the paper) with the process at which it occurs. The
    executable framework ({!Vsgc_ioa}) composes components over this
    shared vocabulary. *)

type t =
  (* application interface of a GCS end-point (Figures 4-11) *)
  | App_send of Proc.t * Msg.App_msg.t  (** send_p(m) *)
  | App_deliver of Proc.t * Proc.t * Msg.App_msg.t  (** deliver_p(q, m) *)
  | App_view of Proc.t * View.t * Proc.Set.t  (** view_p(v, T) *)
  | Block of Proc.t  (** block_p() (Fig. 11) *)
  | Block_ok of Proc.t  (** block_ok_p() (Fig. 12) *)
  (* membership service interface (Figure 2) *)
  | Mb_start_change of Proc.t * View.Sc_id.t * Proc.Set.t
  | Mb_view of Proc.t * View.t
  (* CO_RFIFO interface (Figure 3) *)
  | Rf_send of Proc.t * Proc.Set.t * Msg.Wire.t
  | Rf_deliver of Proc.t * Proc.t * Msg.Wire.t  (** from p, at q *)
  | Rf_reliable of Proc.t * Proc.Set.t
  | Rf_live of Proc.t * Proc.Set.t
  | Rf_lose of Proc.t * Proc.t  (** adversary move; weight-gated *)
  (* crash and recovery of end-points (paper §8) *)
  | Crash of Proc.t
  | Recover of Proc.t
  (* membership-server substrate (client-server architecture, Fig. 1) *)
  | Srv_send of Server.t * Server.t * Srv_msg.t
  | Srv_deliver of Server.t * Server.t * Srv_msg.t
  | Fd_change of Server.t * Server.Set.t
      (** failure-detector event at a server *)
  | Client_join of Proc.t * Server.t
  | Client_leave of Proc.t * Server.t
  (* symmetric total-order arm (DESIGN.md §16) *)
  | Sym_deliver of Proc.t * Proc.t * int * string
      (** at p: the symmetric ordering layer appended <sender, ts,
          payload> to its local total order — the delivery report the
          Skeen trace monitor checks *)

(** One constructor per action family; used for metrics and weights. *)
type category =
  | C_app_send
  | C_app_deliver
  | C_app_view
  | C_block
  | C_block_ok
  | C_mb_start_change
  | C_mb_view
  | C_rf_send
  | C_rf_deliver
  | C_rf_reliable
  | C_rf_live
  | C_rf_lose
  | C_crash
  | C_recover
  | C_srv_send
  | C_srv_deliver
  | C_fd_change
  | C_client_join
  | C_client_leave
  | C_sym_deliver

val category : t -> category
val category_to_string : category -> string

val locus : t -> Proc.t
(** The process (or server) at which the action occurs — the paper's
    subscript p. For point-to-point deliveries, the receiver. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
