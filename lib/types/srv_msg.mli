(** Inter-server messages of the client-server membership algorithm —
    our executable rendering of the service of [27] (DESIGN.md §2). *)

type proposal = {
  round : int;  (** the proposer's local attempt number *)
  from : Server.t;
  servers : Server.Set.t;  (** proposer's failure-detector estimate *)
  clients : View.Sc_id.t Proc.Map.t;
      (** attached clients with the start_change ids last sent to them *)
  members : Proc.Set.t;  (** proposer's estimate of the full client union *)
  max_vid : View.Id.t;  (** largest view identifier the proposer has seen *)
}

type t =
  | Proposal of proposal
  | Commit of View.t
      (** the view synthesized by the minimum live server; peers
          validate it against their own bookkeeping before delivering *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val write : Bin.wbuf -> t -> unit
(** The real codec (u8 constructor tag, then the fields). *)

val read : Bin.reader -> t
(** @raise Bin.Error *)
