(** Views and their identifiers (paper §3.1, Figure 2).

    A view is the triple [<id, set, startId>]. Two views are the same
    only if the triples are identical — in particular, a view carrying a
    different [startId] map is a {e different} view (paper §9). *)

(** Locally-unique, increasing start_change identifiers ([StartChangeId]). *)
module Sc_id : sig
  type t = int

  val zero : t
  (** The least element [cid0]. *)

  val succ : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val write : Bin.wbuf -> t -> unit

  val read : Bin.reader -> t
  (** @raise Bin.Error *)
end

(** View identifiers, a totally ordered refinement of the paper's
    partially ordered [ViewId]. *)
module Id : sig
  type t = private { num : int; origin : int }

  val zero : t
  (** The least element [vid0], used by every initial view. *)

  val make : num:int -> origin:int -> t
  val num : t -> int
  val origin : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val lt : t -> t -> bool

  val succ_from : origin:int -> t -> t
  (** [succ_from ~origin vid] is the identifier a membership server
      [origin] assigns to the view following [vid]. *)

  val pp : Format.formatter -> t -> unit
  val write : Bin.wbuf -> t -> unit

  val read : Bin.reader -> t
  (** @raise Bin.Error *)
end

val counter_bound : int
(** Bounded-counter discipline (practically-self-stabilizing virtual
    synchrony): a view identifier, start_change identifier, or message
    sequence number at or beyond this bound counts as exhausted. The
    endpoint self-check treats it as corrupt state and recycles the
    epoch by rejoining from initial state. *)

type t = private { id : Id.t; set : Proc.Set.t; start_ids : Sc_id.t Proc.Map.t }

val make : id:Id.t -> set:Proc.Set.t -> start_ids:Sc_id.t Proc.Map.t -> t
(** [make ~id ~set ~start_ids] builds a view.
    @raise Invalid_argument unless [start_ids] is total exactly on [set]. *)

val id : t -> Id.t
val set : t -> Proc.Set.t
val mem : Proc.t -> t -> bool

val start_id : t -> Proc.t -> Sc_id.t
(** [start_id v p] is [v.startId(p)]: the identifier of the last
    start_change delivered to member [p] before [v].
    @raise Invalid_argument if [p] is not a member of [v]. *)

val start_ids : t -> Sc_id.t Proc.Map.t

val initial : Proc.t -> t
(** [initial p] is process [p]'s default initial view
    [<vid0, {p}, {p -> cid0}>]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val write : Bin.wbuf -> t -> unit
(** Serializes the id and the [start_ids] bindings; the member set is
    recovered from the bindings' keys on decode. *)

val read : Bin.reader -> t
(** @raise Bin.Error *)

(** Maps keyed by whole views (triple comparison). *)
module Map : Map.S with type key = t
