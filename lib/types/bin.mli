(** Binary codec primitives shared by every wire codec.

    Writers append to a {!Wbuf.t} — a growable byte sink supporting
    in-place length-prefix backpatching and pooling — and never fail;
    readers raise the private {!Error} internally, and {!run} converts
    any exception a malformed input can provoke into a [result] — the
    public decoding entry points built on it are total. *)

type error =
  | Truncated of { what : string; need : int; have : int }
  | Bad_tag of { what : string; tag : int }
  | Bad_value of { what : string; detail : string }
  | Trailing of { extra : int }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Error of error

val fail : error -> 'a
val bad_value : what:string -> string -> 'a

(** {1 The writer sink} *)

module Wbuf : sig
  type t
  (** A growable byte sink; the live region is [buf[0, len)]. *)

  val create : int -> t
  (** [create hint] sizes the backing store for [hint] bytes. *)

  val length : t -> int
  val capacity : t -> int
  val clear : t -> unit

  val shrink : t -> unit
  (** Clear AND release the backing store back to a small buffer —
      for long-lived buffers after an unusually large burst. *)

  val grow : t -> int -> unit
  (** Ensure capacity of at least the given byte count (one copy). *)

  val add_char : t -> char -> unit
  val add_string : t -> string -> unit
  val add_int64_be : t -> int64 -> unit

  val to_bytes : t -> bytes
  (** A fresh copy of the live region. *)

  val blit : t -> dst:bytes -> dst_off:int -> unit
  (** Copy the live region into [dst] at [dst_off]. *)

  val patch_u32 : t -> at:int -> int -> unit
  (** Backpatch a big-endian u32 over 4 already-written bytes at
      offset [at] — the length-prefix idiom: reserve, write the body,
      patch. @raise Invalid_argument outside the live region. *)

  val unsafe_contents : t -> bytes
  (** The raw backing store; only [[0, length t)] is meaningful, and
      any append invalidates it. For handing to a syscall. *)
end

type wbuf = Wbuf.t

(** {1 The scratch-buffer pool}

    Encode paths borrow a scratch buffer, fill it, copy the result
    out, and return it — steady-state hot paths allocate only the
    result bytes. LIFO, so nested borrows never alias. *)

module Pool : sig
  val acquire : hint:int -> Wbuf.t
  (** Borrow a scratch from the {e calling domain's} pool. Pools are
      domain-local (Domain.DLS): a scratch never crosses domains, so
      the wire fast path stays allocation-free without locks even when
      several domains encode concurrently. *)

  val release : Wbuf.t -> unit
  (** Return a scratch to the calling domain's pool. Release on the
      domain that acquired (the [with_scratch] discipline guarantees
      this: the borrow never escapes the callback). *)

  val reused : unit -> int
  (** Scratch acquisitions served from a pool — summed over every
      domain that ever touched the pool. *)

  val allocated : unit -> int
  (** Scratch acquisitions that had to allocate (all domains). *)
end

val with_scratch : hint:int -> (Wbuf.t -> 'a) -> 'a
(** Borrow a pooled scratch for the extent of the callback; the
    scratch is returned to the pool even on raise. The callback must
    not retain the scratch. *)

(** {1 Writers} *)

val w_u8 : wbuf -> int -> unit
val w_u32 : wbuf -> int -> unit
val w_int : wbuf -> int -> unit
val w_string : wbuf -> string -> unit
val w_list : wbuf -> (wbuf -> 'a -> unit) -> 'a list -> unit

(** {1 Readers (raise {!Error})} *)

type reader

val reader : ?pos:int -> ?len:int -> bytes -> reader
val remaining : reader -> int
val r_u8 : reader -> what:string -> int
val r_u32 : reader -> what:string -> int
val r_int : reader -> what:string -> int
val r_string : reader -> what:string -> string
val r_list : reader -> what:string -> (reader -> 'a) -> 'a list
val expect_end : reader -> unit

(** {1 Total decoding} *)

val run : (reader -> 'a) -> bytes -> ('a, error) result
(** [run read buf] decodes the whole of [buf] with [read]; any raised
    exception becomes an [Error]. Never raises. *)

val run_sub : (reader -> 'a) -> bytes -> pos:int -> len:int -> ('a, error) result
(** Like {!run} over the window [buf[pos, pos+len)], decoded in place
    — no copy of the window. Never raises (a bad window included). *)

val to_bytes : ?hint:int -> (wbuf -> 'a -> unit) -> 'a -> bytes
(** Encode via a pooled scratch buffer; [hint] sizes the first
    allocation so large payloads skip the doubling copies (default
    64). *)
