(** Binary codec primitives shared by every wire codec.

    Writers append to a [Buffer.t] and never fail; readers raise the
    private {!Error} internally, and {!run} converts any exception a
    malformed input can provoke into a [result] — the public decoding
    entry points built on it are total. *)

type error =
  | Truncated of { what : string; need : int; have : int }
  | Bad_tag of { what : string; tag : int }
  | Bad_value of { what : string; detail : string }
  | Trailing of { extra : int }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Error of error

val fail : error -> 'a
val bad_value : what:string -> string -> 'a

(** {1 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_int : Buffer.t -> int -> unit
val w_string : Buffer.t -> string -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** {1 Readers (raise {!Error})} *)

type reader

val reader : ?pos:int -> ?len:int -> bytes -> reader
val remaining : reader -> int
val r_u8 : reader -> what:string -> int
val r_u32 : reader -> what:string -> int
val r_int : reader -> what:string -> int
val r_string : reader -> what:string -> string
val r_list : reader -> what:string -> (reader -> 'a) -> 'a list
val expect_end : reader -> unit

(** {1 Total decoding} *)

val run : (reader -> 'a) -> bytes -> ('a, error) result
(** [run read buf] decodes the whole of [buf] with [read]; any raised
    exception becomes an [Error]. Never raises. *)

val to_bytes : (Buffer.t -> 'a -> unit) -> 'a -> bytes
