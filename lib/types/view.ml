(* Views and their identifiers (paper §3.1, Figure 2).

   A view is a triple <id, set, startId>: an increasing identifier, the
   member set, and a map from members to the start_change identifiers
   they received last before the view. Two views are the same iff the
   triples are identical. *)

module Sc_id = struct
  (* Locally-unique, increasing start_change identifiers (paper's
     [StartChangeId], a totally ordered set with least element cid0). *)
  type t = int

  let zero = 0
  let succ = Int.succ
  let compare = Int.compare
  let equal = Int.equal
  let pp ppf c = Fmt.pf ppf "c%d" c

  let write b c = Bin.w_int b c

  let read r =
    let c = Bin.r_int r ~what:"sc_id" in
    if c < 0 then Bin.bad_value ~what:"sc_id" "negative start_change id";
    c
end

module Id = struct
  (* View identifiers: the paper only needs a partially ordered set with
     least element vid0 and per-process monotonicity. We use the totally
     ordered pair (num, origin) so that concurrent views created by
     different membership servers are comparable and distinct. *)
  type t = { num : int; origin : int }

  let zero = { num = 0; origin = 0 }
  let make ~num ~origin = { num; origin }
  let num t = t.num
  let origin t = t.origin

  let compare a b =
    match Int.compare a.num b.num with
    | 0 -> Int.compare a.origin b.origin
    | c -> c

  let equal a b = compare a b = 0
  let lt a b = compare a b < 0
  let succ_from ~origin t = { num = t.num + 1; origin }
  let pp ppf t = Fmt.pf ppf "v%d.%d" t.num t.origin

  let write b t =
    Bin.w_int b t.num;
    Bin.w_int b t.origin

  let read r =
    let num = Bin.r_int r ~what:"view_id.num" in
    let origin = Bin.r_int r ~what:"view_id.origin" in
    { num; origin }
end

(* Bounded-counter discipline (practically-self-stabilizing virtual
   synchrony, PAPERS.md): identifiers and sequence numbers live in a
   finite range. A counter at or beyond this bound is treated as
   exhausted — the self-check guards flag it so the endpoint recycles
   its epoch by rejoining from initial state, where every counter is
   again zero. Far below max_int so arithmetic on corrupted values
   cannot overflow before the guard sees them. *)
let counter_bound = 1 lsl 30

type t = { id : Id.t; set : Proc.Set.t; start_ids : Sc_id.t Proc.Map.t }

let make ~id ~set ~start_ids =
  if not (Proc.Set.subset (Proc.Map.key_set start_ids) set) then
    invalid_arg "View.make: start_ids mentions non-members";
  if not (Proc.Set.for_all (fun p -> Proc.Map.mem p start_ids) set) then
    invalid_arg "View.make: start_ids must be total on the member set";
  { id; set; start_ids }

let id t = t.id
let set t = t.set
let mem p t = Proc.Set.mem p t.set

let start_id t p =
  match Proc.Map.find_opt p t.start_ids with
  | Some cid -> cid
  | None -> invalid_arg (Fmt.str "View.start_id: %a not in %a" Proc.pp p Id.pp t.id)

let start_ids t = t.start_ids

(* The default initial view of process p: <vid0, {p}, {p -> cid0}>. *)
let initial p =
  { id = Id.zero;
    set = Proc.Set.singleton p;
    start_ids = Proc.Map.singleton p Sc_id.zero }

let compare a b =
  match Id.compare a.id b.id with
  | 0 -> (
      match Proc.Set.compare a.set b.set with
      | 0 -> Proc.Map.compare Sc_id.compare a.start_ids b.start_ids
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "<%a %a [%a]>" Id.pp t.id Proc.Set.pp t.set
    (Proc.Map.pp Sc_id.pp) t.start_ids

let to_string t = Fmt.str "%a" pp t

(* On the wire a view is its id plus the [start_ids] bindings: the
   member set is exactly the map's key set ([make] enforces totality),
   so encoding it separately could only introduce inconsistency. *)
let write b t =
  Id.write b t.id;
  Bin.w_list b
    (fun b (p, c) ->
      Proc.write b p;
      Sc_id.write b c)
    (Proc.Map.bindings t.start_ids)

let read r =
  let id = Id.read r in
  let bindings =
    Bin.r_list r ~what:"view.start_ids" (fun r ->
        let p = Proc.read r in
        let c = Sc_id.read r in
        (p, c))
  in
  let start_ids =
    List.fold_left (fun m (p, c) -> Proc.Map.add p c m) Proc.Map.empty bindings
  in
  make ~id ~set:(Proc.Map.key_set start_ids) ~start_ids

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
