(** Application messages, cuts, and the wire messages exchanged by GCS
    end-points over CO_RFIFO (paper §5, Figures 9-11). *)

(** Opaque application payloads. *)
module App_msg : sig
  type t = { payload : string }

  val make : string -> t
  val payload : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val write : Bin.wbuf -> t -> unit

  val read : Bin.reader -> t
  (** @raise Bin.Error *)
end

(** A cut maps each process to the index of the last of its messages
    the cut's owner commits to deliver before the next view (§5.2).
    Processes absent from the map are committed to index 0. *)
module Cut : sig
  type t = int Proc.Map.t

  val empty : t
  val get : t -> Proc.t -> int
  val set : t -> Proc.t -> int -> t
  (** @raise Invalid_argument on a negative index. *)

  val of_bindings : (Proc.t * int) list -> t

  val max_over : t list -> Proc.t -> int
  (** Pointwise maximum: the paper's max over the transitional set of
      sync_msg[r][...].cut(q). Empty list gives 0. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val write : Bin.wbuf -> t -> unit

  val read : Bin.reader -> t
  (** Decodes to the canonical representation (zero indices dropped).
      @raise Bin.Error *)
end

(** Messages GCS end-points exchange through CO_RFIFO. *)
module Wire : sig
  type sync_entry = {
    origin : Proc.t;
    cid : View.Sc_id.t;
    sview : View.t;
    cut : Cut.t;
  }
  (** One relayed synchronization message inside a leader's batch. *)

  type t =
    | View_msg of View.t
        (** stream marker: subsequent [App] messages from this sender
            were sent in this view (Fig. 9) *)
    | App of App_msg.t  (** an original application message (Fig. 9) *)
    | Fwd of { origin : Proc.t; view : View.t; index : int; msg : App_msg.t }
        (** a message forwarded on behalf of [origin], tagged with its
            original view and FIFO index (Fig. 9, §5.2.2) *)
    | Sync of { cid : View.Sc_id.t; view : View.t; cut : Cut.t }
        (** a synchronization message tagged with a locally unique
            start_change id (Fig. 10) *)
    | Sync_batch of sync_entry list
        (** §9 two-tier hierarchy: a leader's aggregation of
            synchronization messages into a single message *)
    | Bsync of { vid : View.Id.t; view : View.t; cut : Cut.t }
        (** the sequential-rounds baseline's cut exchange, tagged with
            the target view's identifier (the pre-agreed global tag) *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val write : Bin.wbuf -> t -> unit
  (** The real codec (u8 constructor tag 1-6, then the fields). *)

  val read : Bin.reader -> t
  (** @raise Bin.Error *)

  val size_bytes : t -> int
  (** Approximate serialized size — a cost model for the overhead
      benches, not a real codec. *)

  (** Coarse classification for the metrics layer (bench E2). *)
  type kind = K_view_msg | K_app | K_fwd | K_sync | K_sync_batch | K_bsync

  val kind : t -> kind
  val kind_to_string : kind -> string
end
