(* Application messages, cuts, and the wire messages exchanged by GCS
   end-points over CO_RFIFO (paper §5, Figures 9-11). *)

module App_msg = struct
  (* Opaque application payloads. Identity is structural; the queues of
     the algorithms index messages positionally, as in the paper. *)
  type t = { payload : string }

  let make payload = { payload }
  let payload t = t.payload
  let equal a b = String.equal a.payload b.payload
  let compare a b = String.compare a.payload b.payload
  let pp ppf t = Fmt.pf ppf "%S" t.payload
  let write b t = Bin.w_string b t.payload
  let read r = { payload = Bin.r_string r ~what:"app_msg" }
end

module Cut = struct
  (* A cut maps each process to the index of the last message from that
     process that the cut's owner commits to deliver (paper §5.2). A
     process absent from the map is committed to index 0 (no messages). *)
  type t = int Proc.Map.t

  let empty = Proc.Map.empty
  let get cut q = Proc.Map.find_default ~default:0 q cut

  let set cut q i =
    if i < 0 then invalid_arg "Cut.set: negative index";
    if i = 0 then Proc.Map.remove q cut else Proc.Map.add q i cut

  let of_bindings l = List.fold_left (fun c (q, i) -> set c q i) empty l

  (* Pointwise maximum over a set of cuts: the paper's
     max_{r in T} sync_msg[r][...].cut(q). *)
  let max_over cuts q =
    List.fold_left (fun acc c -> Stdlib.max acc (get c q)) 0 cuts

  let equal a b = Proc.Map.equal_by Int.equal a b

  let pp ppf cut =
    Fmt.pf ppf "[%a]"
      Fmt.(list ~sep:(any ";") (fun ppf (q, i) -> Fmt.pf ppf "%a:%d" Proc.pp q i))
      (Proc.Map.bindings cut)

  let write b cut =
    Bin.w_list b
      (fun b (q, i) ->
        Proc.write b q;
        Bin.w_int b i)
      (Proc.Map.bindings cut)

  let read r =
    let bindings =
      Bin.r_list r ~what:"cut" (fun r ->
          let q = Proc.read r in
          let i = Bin.r_int r ~what:"cut.index" in
          if i < 0 then Bin.bad_value ~what:"cut.index" "negative index";
          (q, i))
    in
    of_bindings bindings
end

module Wire = struct
  (* Messages GCS end-points exchange through CO_RFIFO.

     - [View_msg v]   stream marker: subsequent [App] messages from this
                      sender were sent in view [v] (Fig. 9).
     - [App m]        an original application message (Fig. 9).
     - [Fwd]          an application message forwarded on behalf of
                      [origin]; tagged with the view it was originally
                      sent in and its index in the sender's queue (Fig. 9).
     - [Sync]         a synchronization message tagged with a locally
                      unique start_change id, carrying the sender's
                      current view and cut (Fig. 10).
     - [Bsync]       used only by the sequential-rounds baseline
                      comparator: a cut exchanged after the membership
                      view arrived, tagged with that view's identifier
                      (the pre-agreed globally unique tag). *)
  type sync_entry = {
    origin : Proc.t;
    cid : View.Sc_id.t;
    sview : View.t;
    cut : Cut.t;
  }

  type t =
    | View_msg of View.t
    | App of App_msg.t
    | Fwd of { origin : Proc.t; view : View.t; index : int; msg : App_msg.t }
    | Sync of { cid : View.Sc_id.t; view : View.t; cut : Cut.t }
    | Sync_batch of sync_entry list
        (* §9 two-tier hierarchy: a leader's aggregation of
           synchronization messages into a single message *)
    | Bsync of { vid : View.Id.t; view : View.t; cut : Cut.t }

  let equal a b =
    match (a, b) with
    | View_msg u, View_msg v -> View.equal u v
    | App m, App n -> App_msg.equal m n
    | Fwd f, Fwd g ->
        Proc.equal f.origin g.origin && View.equal f.view g.view
        && f.index = g.index && App_msg.equal f.msg g.msg
    | Sync s, Sync t ->
        View.Sc_id.equal s.cid t.cid && View.equal s.view t.view
        && Cut.equal s.cut t.cut
    | Sync_batch a', Sync_batch b' ->
        List.length a' = List.length b'
        && List.for_all2
             (fun (x : sync_entry) (y : sync_entry) ->
               Proc.equal x.origin y.origin
               && View.Sc_id.equal x.cid y.cid
               && View.equal x.sview y.sview && Cut.equal x.cut y.cut)
             a' b'
    | Bsync s, Bsync t ->
        View.Id.equal s.vid t.vid && View.equal s.view t.view && Cut.equal s.cut t.cut
    | (View_msg _ | App _ | Fwd _ | Sync _ | Sync_batch _ | Bsync _), _ -> false

  let pp ppf = function
    | View_msg v -> Fmt.pf ppf "view_msg(%a)" View.pp v
    | App m -> Fmt.pf ppf "app(%a)" App_msg.pp m
    | Fwd f ->
        Fmt.pf ppf "fwd(%a,%a,%d,%a)" Proc.pp f.origin View.Id.pp (View.id f.view)
          f.index App_msg.pp f.msg
    | Sync s ->
        Fmt.pf ppf "sync(%a,%a,%a)" View.Sc_id.pp s.cid View.Id.pp (View.id s.view)
          Cut.pp s.cut
    | Sync_batch entries ->
        Fmt.pf ppf "sync_batch[%a]"
          Fmt.(list ~sep:(any ";") (fun ppf (e : sync_entry) ->
                   Fmt.pf ppf "%a:%a" Proc.pp e.origin View.Sc_id.pp e.cid))
          entries
    | Bsync b ->
        Fmt.pf ppf "bsync(%a,%a,%a)" View.Id.pp b.vid View.Id.pp (View.id b.view) Cut.pp b.cut

  (* The real codec. Tags 1-6 follow the constructor order; tag 0 is
     reserved so an all-zero buffer never decodes. *)
  let write_sync_entry b (e : sync_entry) =
    Proc.write b e.origin;
    View.Sc_id.write b e.cid;
    View.write b e.sview;
    Cut.write b e.cut

  let read_sync_entry r =
    let origin = Proc.read r in
    let cid = View.Sc_id.read r in
    let sview = View.read r in
    let cut = Cut.read r in
    { origin; cid; sview; cut }

  let write b = function
    | View_msg v ->
        Bin.w_u8 b 1;
        View.write b v
    | App m ->
        Bin.w_u8 b 2;
        App_msg.write b m
    | Fwd f ->
        Bin.w_u8 b 3;
        Proc.write b f.origin;
        View.write b f.view;
        Bin.w_int b f.index;
        App_msg.write b f.msg
    | Sync s ->
        Bin.w_u8 b 4;
        View.Sc_id.write b s.cid;
        View.write b s.view;
        Cut.write b s.cut
    | Sync_batch entries ->
        Bin.w_u8 b 5;
        Bin.w_list b write_sync_entry entries
    | Bsync s ->
        Bin.w_u8 b 6;
        View.Id.write b s.vid;
        View.write b s.view;
        Cut.write b s.cut

  let read r =
    match Bin.r_u8 r ~what:"wire" with
    | 1 -> View_msg (View.read r)
    | 2 -> App (App_msg.read r)
    | 3 ->
        let origin = Proc.read r in
        let view = View.read r in
        let index = Bin.r_int r ~what:"fwd.index" in
        let msg = App_msg.read r in
        Fwd { origin; view; index; msg }
    | 4 ->
        let cid = View.Sc_id.read r in
        let view = View.read r in
        let cut = Cut.read r in
        Sync { cid; view; cut }
    | 5 -> Sync_batch (Bin.r_list r ~what:"sync_batch" read_sync_entry)
    | 6 ->
        let vid = View.Id.read r in
        let view = View.read r in
        let cut = Cut.read r in
        Bsync { vid; view; cut }
    | tag -> Bin.fail (Bad_tag { what = "wire"; tag })

  (* Approximate serialized size in bytes, for the overhead benches:
     8 bytes per identifier or integer, 4 per member-set entry, plus
     payload lengths. Not an actual codec — a cost model. *)
  let view_size v =
    8 + (4 * Proc.Set.cardinal (View.set v)) + (8 * Proc.Set.cardinal (View.set v))

  let cut_size c = 1 + (8 * List.length (Proc.Map.bindings c))

  let size_bytes = function
    | View_msg v -> 1 + view_size v
    | App m -> 1 + 4 + String.length m.payload
    | Fwd f -> 1 + 4 + view_size f.view + 8 + String.length (App_msg.payload f.msg)
    | Sync s -> 1 + 8 + view_size s.view + cut_size s.cut
    | Sync_batch entries ->
        List.fold_left
          (fun acc (e : sync_entry) -> acc + 12 + view_size e.sview + cut_size e.cut)
          1 entries
    | Bsync b -> 1 + 8 + view_size b.view + cut_size b.cut

  (* Coarse classification used by the metrics layer (bench E2). *)
  type kind = K_view_msg | K_app | K_fwd | K_sync | K_sync_batch | K_bsync

  let kind = function
    | View_msg _ -> K_view_msg
    | App _ -> K_app
    | Fwd _ -> K_fwd
    | Sync _ -> K_sync
    | Sync_batch _ -> K_sync_batch
    | Bsync _ -> K_bsync

  let kind_to_string = function
    | K_view_msg -> "view_msg"
    | K_app -> "app"
    | K_fwd -> "fwd"
    | K_sync -> "sync"
    | K_sync_batch -> "sync_batch"
    | K_bsync -> "bsync"
end
