(* Binary codec primitives shared by every wire codec in the repo.

   Conventions (all big-endian):
     - u8            one byte (tags, booleans)
     - int           8-byte two's-complement (ids, indices, rounds)
     - string        u32 length + raw bytes
     - list          u32 count + elements

   Writers append to a [Wbuf.t] — a growable byte sink that, unlike
   [Buffer.t], supports in-place backpatching (length prefixes written
   before the lengths are known) and pooling (one scratch buffer
   serves every encode on a hot path instead of one allocation per
   message). Writers never fail. Readers raise the private [Error]
   exception internally; [run] converts it — and any other exception a
   malformed input provokes in a constructor — into a [result], so the
   public decoding entry points are TOTAL: they never raise on
   arbitrary bytes. *)

type error =
  | Truncated of { what : string; need : int; have : int }
      (* the input ends before [what]'s [need] bytes *)
  | Bad_tag of { what : string; tag : int }  (* unknown constructor tag *)
  | Bad_value of { what : string; detail : string }
      (* structurally well-formed bytes denoting an invalid value *)
  | Trailing of { extra : int }  (* decode succeeded with bytes left over *)

let pp_error ppf = function
  | Truncated { what; need; have } ->
      Fmt.pf ppf "truncated %s (need %d bytes, have %d)" what need have
  | Bad_tag { what; tag } -> Fmt.pf ppf "bad %s tag %d" what tag
  | Bad_value { what; detail } -> Fmt.pf ppf "bad %s: %s" what detail
  | Trailing { extra } -> Fmt.pf ppf "%d trailing bytes after message" extra

let error_to_string e = Fmt.str "%a" pp_error e

exception Error of error

let fail e = raise (Error e)
let bad_value ~what detail = fail (Bad_value { what; detail })

(* -- The writer sink ----------------------------------------------------- *)

module Wbuf = struct
  (* A growable byte sink. The live region is [buf[0, len)]; [grow]
     jumps straight to the needed capacity (doubled), so one oversized
     payload costs one copy, not a cascade of doubling copies. *)
  type t = { mutable buf : bytes; mutable len : int }

  let create hint = { buf = Bytes.create (max 16 hint); len = 0 }
  let length t = t.len
  let clear t = t.len <- 0
  let capacity t = Bytes.length t.buf

  (* Drop an oversized backing store after a burst, so one large
     encode does not pin its high-water capacity forever. *)
  let shrink t =
    t.buf <- Bytes.create 64;
    t.len <- 0

  let grow t need =
    let cap = max (2 * Bytes.length t.buf) need in
    let buf = Bytes.create cap in
    Bytes.blit t.buf 0 buf 0 t.len;
    t.buf <- buf

  let reserve t n = if t.len + n > Bytes.length t.buf then grow t (t.len + n)

  let add_char t c =
    reserve t 1;
    Bytes.unsafe_set t.buf t.len c;
    t.len <- t.len + 1

  let add_string t s =
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let add_int64_be t v =
    reserve t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let to_bytes t = Bytes.sub t.buf 0 t.len

  let blit t ~dst ~dst_off = Bytes.blit t.buf 0 dst dst_off t.len

  (* Backpatch a big-endian u32 at [at] (already written). The length-
     prefix idiom: reserve 4 bytes, write the body, patch the length. *)
  let patch_u32 t ~at v =
    if at < 0 || at + 4 > t.len then invalid_arg "Wbuf.patch_u32: out of range";
    if v < 0 || v > 0xffff_ffff then invalid_arg "Wbuf.patch_u32: out of range";
    Bytes.unsafe_set t.buf at (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set t.buf (at + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set t.buf (at + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set t.buf (at + 3) (Char.unsafe_chr (v land 0xff))

  (* The raw backing store, for callers that hand [buf[0, len)] to a
     syscall or blit it out themselves. Invalidated by any append. *)
  let unsafe_contents t = t.buf
end

type wbuf = Wbuf.t

(* -- The scratch-buffer pool --------------------------------------------- *)

(* Encode paths borrow a scratch Wbuf, fill it, copy the result out,
   and return it — so a steady-state hot path allocates exactly the
   result bytes per message, never the intermediate buffer. Each domain
   owns its own small LIFO stack (Domain.DLS), so the fast path stays
   lock-free and no scratch buffer is ever visible to two domains:
   nested encodes on one domain borrow distinct buffers, and parallel
   encodes on different domains borrow from different pools. The reuse
   counters are kept per domain too ([Atomic], so the summing reader
   races with no one) and summed on demand via a registry of every
   domain's stats record. *)
module Pool = struct
  type stats = { reused : int Atomic.t; allocated : int Atomic.t }
  type dpool = { stats : stats; mutable free : Wbuf.t list }

  let max_pooled = 8

  (* Every domain's stats record, appended once at first use. *)
  let registry_mu = Mutex.create ()
  let registry : stats list ref = ref []

  let key : dpool Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let stats = { reused = Atomic.make 0; allocated = Atomic.make 0 } in
        Mutex.lock registry_mu;
        registry := stats :: !registry;
        Mutex.unlock registry_mu;
        { stats; free = [] })

  let acquire ~hint =
    let p = Domain.DLS.get key in
    match p.free with
    | w :: rest ->
        p.free <- rest;
        Atomic.incr p.stats.reused;
        if hint > Wbuf.capacity w then Wbuf.grow w hint;
        w
    | [] ->
        Atomic.incr p.stats.allocated;
        Wbuf.create (max 64 hint)

  let release w =
    Wbuf.clear w;
    let p = Domain.DLS.get key in
    if List.length p.free < max_pooled then p.free <- w :: p.free

  let sum field =
    Mutex.lock registry_mu;
    let l = !registry in
    Mutex.unlock registry_mu;
    List.fold_left (fun acc s -> acc + Atomic.get (field s)) 0 l

  let reused () = sum (fun s -> s.reused)
  let allocated () = sum (fun s -> s.allocated)
end

(* Borrow a pooled scratch, run [f] on it, and return [f]'s result.
   The scratch goes back to the pool even when [f] raises. *)
let with_scratch ~hint f =
  let w = Pool.acquire ~hint in
  match f w with
  | v ->
      Pool.release w;
      v
  | exception exn ->
      Pool.release w;
      raise exn

(* -- Writers ------------------------------------------------------------- *)

let w_u8 b i = Wbuf.add_char b (Char.chr (i land 0xff))

let w_u32 b i =
  if i < 0 || i > 0xffff_ffff then invalid_arg "Bin.w_u32: out of range";
  Wbuf.add_char b (Char.chr ((i lsr 24) land 0xff));
  Wbuf.add_char b (Char.chr ((i lsr 16) land 0xff));
  Wbuf.add_char b (Char.chr ((i lsr 8) land 0xff));
  Wbuf.add_char b (Char.chr (i land 0xff))

let w_int b i = Wbuf.add_int64_be b (Int64.of_int i)

let w_string b s =
  w_u32 b (String.length s);
  Wbuf.add_string b s

let w_list b w_elt l =
  w_u32 b (List.length l);
  List.iter (w_elt b) l

(* -- Readers ------------------------------------------------------------- *)

type reader = { buf : bytes; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len buf =
  let limit = match len with Some l -> pos + l | None -> Bytes.length buf in
  if pos < 0 || limit > Bytes.length buf || pos > limit then
    invalid_arg "Bin.reader: bad window";
  { buf; pos; limit }

let remaining r = r.limit - r.pos

let need r ~what n =
  if remaining r < n then
    fail (Truncated { what; need = n; have = remaining r })

let r_u8 r ~what =
  need r ~what 1;
  let c = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  c

let r_u32 r ~what =
  need r ~what 4;
  let b i = Char.code (Bytes.get r.buf (r.pos + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let r_int r ~what =
  need r ~what 8;
  let v = Bytes.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  (* Reject the two 64-bit values that do not fit OCaml's 63-bit int:
     truncating them would make decode(encode x) lossy for no x we
     ever produce, so they can only denote a corrupt input. *)
  let v' = Int64.to_int v in
  if Int64.of_int v' <> v then
    bad_value ~what (Fmt.str "integer %Ld out of range" v);
  v'

let r_string r ~what =
  let n = r_u32 r ~what in
  (* A length prefix exceeding the bytes actually present is corrupt;
     checking it here also prevents absurd allocations. *)
  need r ~what n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r ~what r_elt =
  let n = r_u32 r ~what in
  (* every element encodes to >= 1 byte, so a count beyond the bytes
     left is corrupt — and bounding it keeps the loop allocation-safe *)
  if n > remaining r then
    fail (Truncated { what; need = n; have = remaining r });
  let rec go acc k = if k = 0 then List.rev acc else go (r_elt r :: acc) (k - 1) in
  go [] n

let expect_end r =
  if remaining r > 0 then fail (Trailing { extra = remaining r })

(* -- Total decoding ------------------------------------------------------ *)

let run_reader mk_reader read =
  match
    let r = mk_reader () in
    let v = read r in
    expect_end r;
    v
  with
  | v -> Ok v
  | exception Error e -> Error e
  | exception exn ->
      (* Backstop: a constructor invariant (View.make, Cut.set, ...)
         tripped by structurally valid bytes — or a caller-supplied
         window outside the buffer. Decoding stays total. *)
      Error (Bad_value { what = "decode"; detail = Printexc.to_string exn })

let run read buf = run_reader (fun () -> reader buf) read

(* Decode a window of [buf] in place — no [Bytes.sub] copy of the
   window. The framing layer uses this to decode a body straight out
   of the frame (or the stream accumulator) it arrived in. *)
let run_sub read buf ~pos ~len = run_reader (fun () -> reader ~pos ~len buf) read

let to_bytes ?(hint = 64) write v =
  with_scratch ~hint (fun b ->
      write b v;
      Wbuf.to_bytes b)
