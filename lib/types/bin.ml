(* Binary codec primitives shared by every wire codec in the repo.

   Conventions (all big-endian):
     - u8            one byte (tags, booleans)
     - int           8-byte two's-complement (ids, indices, rounds)
     - string        u32 length + raw bytes
     - list          u32 count + elements

   Writers append to a [Buffer.t] and never fail. Readers raise the
   private [Error] exception internally; [run] converts it — and any
   other exception a malformed input provokes in a constructor — into
   a [result], so the public decoding entry points are TOTAL: they
   never raise on arbitrary bytes. *)

type error =
  | Truncated of { what : string; need : int; have : int }
      (* the input ends before [what]'s [need] bytes *)
  | Bad_tag of { what : string; tag : int }  (* unknown constructor tag *)
  | Bad_value of { what : string; detail : string }
      (* structurally well-formed bytes denoting an invalid value *)
  | Trailing of { extra : int }  (* decode succeeded with bytes left over *)

let pp_error ppf = function
  | Truncated { what; need; have } ->
      Fmt.pf ppf "truncated %s (need %d bytes, have %d)" what need have
  | Bad_tag { what; tag } -> Fmt.pf ppf "bad %s tag %d" what tag
  | Bad_value { what; detail } -> Fmt.pf ppf "bad %s: %s" what detail
  | Trailing { extra } -> Fmt.pf ppf "%d trailing bytes after message" extra

let error_to_string e = Fmt.str "%a" pp_error e

exception Error of error

let fail e = raise (Error e)
let bad_value ~what detail = fail (Bad_value { what; detail })

(* -- Writers ------------------------------------------------------------- *)

let w_u8 b i = Buffer.add_char b (Char.chr (i land 0xff))

let w_u32 b i =
  if i < 0 || i > 0xffff_ffff then invalid_arg "Bin.w_u32: out of range";
  Buffer.add_char b (Char.chr ((i lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((i lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((i lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (i land 0xff))

let w_int b i = Buffer.add_int64_be b (Int64.of_int i)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b w_elt l =
  w_u32 b (List.length l);
  List.iter (w_elt b) l

(* -- Readers ------------------------------------------------------------- *)

type reader = { buf : bytes; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len buf =
  let limit = match len with Some l -> pos + l | None -> Bytes.length buf in
  if pos < 0 || limit > Bytes.length buf || pos > limit then
    invalid_arg "Bin.reader: bad window";
  { buf; pos; limit }

let remaining r = r.limit - r.pos

let need r ~what n =
  if remaining r < n then
    fail (Truncated { what; need = n; have = remaining r })

let r_u8 r ~what =
  need r ~what 1;
  let c = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  c

let r_u32 r ~what =
  need r ~what 4;
  let b i = Char.code (Bytes.get r.buf (r.pos + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let r_int r ~what =
  need r ~what 8;
  let v = Bytes.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  (* Reject the two 64-bit values that do not fit OCaml's 63-bit int:
     truncating them would make decode(encode x) lossy for no x we
     ever produce, so they can only denote a corrupt input. *)
  let v' = Int64.to_int v in
  if Int64.of_int v' <> v then
    bad_value ~what (Fmt.str "integer %Ld out of range" v);
  v'

let r_string r ~what =
  let n = r_u32 r ~what in
  (* A length prefix exceeding the bytes actually present is corrupt;
     checking it here also prevents absurd allocations. *)
  need r ~what n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r ~what r_elt =
  let n = r_u32 r ~what in
  (* every element encodes to >= 1 byte, so a count beyond the bytes
     left is corrupt — and bounding it keeps the loop allocation-safe *)
  if n > remaining r then
    fail (Truncated { what; need = n; have = remaining r });
  let rec go acc k = if k = 0 then List.rev acc else go (r_elt r :: acc) (k - 1) in
  go [] n

let expect_end r =
  if remaining r > 0 then fail (Trailing { extra = remaining r })

(* -- Total decoding ------------------------------------------------------ *)

let run read buf =
  match
    let r = reader buf in
    let v = read r in
    expect_end r;
    v
  with
  | v -> Ok v
  | exception Error e -> Error e
  | exception exn ->
      (* Backstop: a constructor invariant (View.make, Cut.set, ...)
         tripped by structurally valid bytes. Decoding stays total. *)
      Error (Bad_value { what = "decode"; detail = Printexc.to_string exn })

let to_bytes write v =
  let b = Buffer.create 64 in
  write b v;
  Buffer.to_bytes b
