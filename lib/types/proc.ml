(* Process (GCS end-point) identifiers.

   The paper ranges over an arbitrary universe [Proc]; we use small
   integers so that sets and maps are cheap and traces are readable. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash

let of_int i =
  if i < 0 then invalid_arg "Proc.of_int: negative process id";
  i

let to_int p = p
let pp ppf p = Fmt.pf ppf "p%d" p
let to_string p = Fmt.str "%a" pp p

let write b p = Bin.w_int b p

let read r =
  let i = Bin.r_int r ~what:"proc" in
  if i < 0 then Bin.bad_value ~what:"proc" "negative process id";
  i

module Set = struct
  include Set.Make (Int)

  let of_range lo hi =
    (* [of_range lo hi] is the set {lo, ..., hi} (empty when lo > hi). *)
    let rec go acc i = if i > hi then acc else go (add i acc) (i + 1) in
    go empty lo

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") (fun ppf p -> pp ppf p)) (elements s)

  let to_string s = Fmt.str "%a" pp s
end

module Map = struct
  include Map.Make (Int)

  let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev

  let key_set m = fold (fun k _ acc -> Set.add k acc) m Set.empty

  let find_default ~default k m =
    match find_opt k m with Some v -> v | None -> default

  (* Structural equality independent of internal tree shape. *)
  let equal_by veq a b = equal veq a b

  let pp pp_v ppf m =
    let pp_binding ppf (k, v) = Fmt.pf ppf "%a->%a" pp k pp_v v in
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp_binding) (bindings m)
end
