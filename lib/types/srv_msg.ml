(* Inter-server messages of the client-server membership algorithm
   (our executable rendering of the one-round membership service of
   Keidar-Sussman-Marzullo-Dolev [27]; see DESIGN.md §2).

   [Proposal]: a server's current picture — its failure-detector
   estimate, its attached clients with the start_change identifiers it
   last sent them, its estimate of the full client union, and the
   largest view identifier it has seen.

   [Commit]: the view synthesized by the minimum live server once all
   live servers' proposals agree on the server set and client union;
   peers validate it against their own bookkeeping and deliver it to
   their attached clients. *)

type proposal = {
  round : int;  (* the proposer's local attempt number *)
  from : Server.t;
  servers : Server.Set.t;  (* proposer's current estimate of live servers *)
  clients : View.Sc_id.t Proc.Map.t;
      (* clients attached to the proposer, with the start_change ids it
         last sent them for this attempt *)
  members : Proc.Set.t;  (* proposer's estimate of the full client union *)
  max_vid : View.Id.t;  (* largest view identifier the proposer has seen *)
}

type t = Proposal of proposal | Commit of View.t

(* Structural equality; the map/set comparisons go through the
   shape-independent helpers, never [Stdlib.compare] on trees. *)
let equal_proposal a b =
  a.round = b.round && Server.equal a.from b.from
  && Server.Set.equal a.servers b.servers
  && Proc.Map.equal_by View.Sc_id.equal a.clients b.clients
  && Proc.Set.equal a.members b.members
  && View.Id.equal a.max_vid b.max_vid

let equal a b =
  match (a, b) with
  | Proposal p, Proposal q -> equal_proposal p q
  | Commit u, Commit v -> View.equal u v
  | (Proposal _ | Commit _), _ -> false

let write b = function
  | Proposal m ->
      Bin.w_u8 b 1;
      Bin.w_int b m.round;
      Server.write b m.from;
      Bin.w_list b Server.write (Server.Set.elements m.servers);
      Bin.w_list b
        (fun b (p, c) ->
          Proc.write b p;
          View.Sc_id.write b c)
        (Proc.Map.bindings m.clients);
      Bin.w_list b Proc.write (Proc.Set.elements m.members);
      View.Id.write b m.max_vid
  | Commit v ->
      Bin.w_u8 b 2;
      View.write b v

let read r =
  match Bin.r_u8 r ~what:"srv_msg" with
  | 1 ->
      let round = Bin.r_int r ~what:"proposal.round" in
      if round < 0 then Bin.bad_value ~what:"proposal.round" "negative round";
      let from = Server.read r in
      let servers =
        Server.Set.of_list (Bin.r_list r ~what:"proposal.servers" Server.read)
      in
      let clients =
        List.fold_left
          (fun m (p, c) -> Proc.Map.add p c m)
          Proc.Map.empty
          (Bin.r_list r ~what:"proposal.clients" (fun r ->
               let p = Proc.read r in
               let c = View.Sc_id.read r in
               (p, c)))
      in
      let members =
        Proc.Set.of_list (Bin.r_list r ~what:"proposal.members" Proc.read)
      in
      let max_vid = View.Id.read r in
      Proposal { round; from; servers; clients; members; max_vid }
  | 2 -> Commit (View.read r)
  | tag -> Bin.fail (Bad_tag { what = "srv_msg"; tag })

let pp ppf = function
  | Proposal m ->
      Fmt.pf ppf "propose(r%d,%a,srv=%a,cl=%a,U=%a,max=%a)" m.round Server.pp
        m.from Server.Set.pp m.servers (Proc.Map.pp View.Sc_id.pp) m.clients
        Proc.Set.pp m.members View.Id.pp m.max_vid
  | Commit v -> Fmt.pf ppf "commit(%a)" View.pp v
