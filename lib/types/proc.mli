(** Process (GCS end-point) identifiers.

    The paper's [Proc] universe. Identifiers are non-negative integers;
    [pp] renders them as ["p<i>"]. Membership servers reuse the same
    identifier space (rendered by {!Vsgc_types.Server}). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_int : int -> t
(** [of_int i] is the process with id [i].
    @raise Invalid_argument if [i < 0]. *)

val to_int : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val write : Bin.wbuf -> t -> unit

val read : Bin.reader -> t
(** @raise Bin.Error on a negative or truncated identifier. *)

(** Sets of processes, with helpers used throughout the algorithms. *)
module Set : sig
  include Set.S with type elt = t

  val of_range : int -> int -> t
  (** [of_range lo hi] is [{lo, ..., hi}], empty when [lo > hi]. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** Maps keyed by processes. *)
module Map : sig
  include Map.S with type key = t

  val keys : 'a t -> key list
  val key_set : 'a t -> Set.t

  val find_default : default:'a -> key -> 'a t -> 'a
  (** Total lookup with a default, used for cuts and index tables. *)

  val equal_by : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
  (** Structural equality independent of internal tree shape. *)

  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end
