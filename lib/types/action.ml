(* The composed system's action signature.

   Every external action of every automaton in the paper appears here,
   tagged (as in the paper) with the process at which it occurs. The
   executable I/O-automaton framework (vsgc_ioa) composes components
   over this shared type: an action that is an output of one component
   is simultaneously an input of every component that accepts it. *)

type t =
  (* -- Application interface of a GCS end-point (Figures 4-11) -- *)
  | App_send of Proc.t * Msg.App_msg.t  (* send_p(m) *)
  | App_deliver of Proc.t * Proc.t * Msg.App_msg.t  (* deliver_p(q, m) *)
  | App_view of Proc.t * View.t * Proc.Set.t  (* view_p(v, T) *)
  | Block of Proc.t  (* block_p() *)
  | Block_ok of Proc.t  (* block_ok_p() *)
  (* -- Membership service interface (Figure 2) -- *)
  | Mb_start_change of Proc.t * View.Sc_id.t * Proc.Set.t
  | Mb_view of Proc.t * View.t
  (* -- CO_RFIFO interface (Figure 3) -- *)
  | Rf_send of Proc.t * Proc.Set.t * Msg.Wire.t  (* co_rfifo.send_p(set, m) *)
  | Rf_deliver of Proc.t * Proc.t * Msg.Wire.t  (* co_rfifo.deliver_{p,q}(m) *)
  | Rf_reliable of Proc.t * Proc.Set.t  (* co_rfifo.reliable_p(set) *)
  | Rf_live of Proc.t * Proc.Set.t  (* co_rfifo.live_p(set) *)
  | Rf_lose of Proc.t * Proc.t  (* internal lose(p, q), exposed for adversaries *)
  (* -- Crash and recovery of end-points (paper §8) -- *)
  | Crash of Proc.t
  | Recover of Proc.t
  (* -- Membership-server substrate (client-server architecture, Fig. 1) -- *)
  | Srv_send of Server.t * Server.t * Srv_msg.t
  | Srv_deliver of Server.t * Server.t * Srv_msg.t
  | Fd_change of Server.t * Server.Set.t
      (* failure-detector event: server s now perceives this live server set *)
  | Client_join of Proc.t * Server.t  (* client p attaches to server s *)
  | Client_leave of Proc.t * Server.t  (* client p detaches / is expelled *)
  (* -- Symmetric total-order arm (DESIGN.md §16) -- *)
  | Sym_deliver of Proc.t * Proc.t * int * string
      (* at p: the symmetric ordering layer appended <sender, ts,
         payload> to its local total order — the delivery report the
         Skeen trace monitor checks against the specification's
         deliverability condition *)

type category =
  | C_app_send
  | C_app_deliver
  | C_app_view
  | C_block
  | C_block_ok
  | C_mb_start_change
  | C_mb_view
  | C_rf_send
  | C_rf_deliver
  | C_rf_reliable
  | C_rf_live
  | C_rf_lose
  | C_crash
  | C_recover
  | C_srv_send
  | C_srv_deliver
  | C_fd_change
  | C_client_join
  | C_client_leave
  | C_sym_deliver

let category = function
  | App_send _ -> C_app_send
  | App_deliver _ -> C_app_deliver
  | App_view _ -> C_app_view
  | Block _ -> C_block
  | Block_ok _ -> C_block_ok
  | Mb_start_change _ -> C_mb_start_change
  | Mb_view _ -> C_mb_view
  | Rf_send _ -> C_rf_send
  | Rf_deliver _ -> C_rf_deliver
  | Rf_reliable _ -> C_rf_reliable
  | Rf_live _ -> C_rf_live
  | Rf_lose _ -> C_rf_lose
  | Crash _ -> C_crash
  | Recover _ -> C_recover
  | Srv_send _ -> C_srv_send
  | Srv_deliver _ -> C_srv_deliver
  | Fd_change _ -> C_fd_change
  | Client_join _ -> C_client_join
  | Client_leave _ -> C_client_leave
  | Sym_deliver _ -> C_sym_deliver

let category_to_string = function
  | C_app_send -> "app_send"
  | C_app_deliver -> "app_deliver"
  | C_app_view -> "app_view"
  | C_block -> "block"
  | C_block_ok -> "block_ok"
  | C_mb_start_change -> "mb_start_change"
  | C_mb_view -> "mb_view"
  | C_rf_send -> "rf_send"
  | C_rf_deliver -> "rf_deliver"
  | C_rf_reliable -> "rf_reliable"
  | C_rf_live -> "rf_live"
  | C_rf_lose -> "rf_lose"
  | C_crash -> "crash"
  | C_recover -> "recover"
  | C_srv_send -> "srv_send"
  | C_srv_deliver -> "srv_deliver"
  | C_fd_change -> "fd_change"
  | C_client_join -> "client_join"
  | C_client_leave -> "client_leave"
  | C_sym_deliver -> "sym_deliver"

(* The process (or server) at which the action occurs — the paper's
   subscript p. For point-to-point deliveries this is the receiver. *)
let locus = function
  | App_send (p, _)
  | App_deliver (p, _, _)
  | App_view (p, _, _)
  | Block p
  | Block_ok p
  | Mb_start_change (p, _, _)
  | Mb_view (p, _)
  | Rf_send (p, _, _)
  | Rf_reliable (p, _)
  | Rf_live (p, _)
  | Crash p
  | Recover p -> p
  | Rf_deliver (_, q, _) -> q
  | Rf_lose (p, _) -> p
  | Srv_send (s, _, _) -> s
  | Srv_deliver (_, s, _) -> s
  | Fd_change (s, _) -> s
  | Client_join (p, _) -> p
  | Client_leave (p, _) -> p
  | Sym_deliver (p, _, _, _) -> p

let equal a b =
  match (a, b) with
  | App_send (p, m), App_send (p', m') -> Proc.equal p p' && Msg.App_msg.equal m m'
  | App_deliver (p, q, m), App_deliver (p', q', m') ->
      Proc.equal p p' && Proc.equal q q' && Msg.App_msg.equal m m'
  | App_view (p, v, t), App_view (p', v', t') ->
      Proc.equal p p' && View.equal v v' && Proc.Set.equal t t'
  | Block p, Block p' | Block_ok p, Block_ok p' -> Proc.equal p p'
  | Mb_start_change (p, c, s), Mb_start_change (p', c', s') ->
      Proc.equal p p' && View.Sc_id.equal c c' && Proc.Set.equal s s'
  | Mb_view (p, v), Mb_view (p', v') -> Proc.equal p p' && View.equal v v'
  | Rf_send (p, s, m), Rf_send (p', s', m') ->
      Proc.equal p p' && Proc.Set.equal s s' && Msg.Wire.equal m m'
  | Rf_deliver (p, q, m), Rf_deliver (p', q', m') ->
      Proc.equal p p' && Proc.equal q q' && Msg.Wire.equal m m'
  | Rf_reliable (p, s), Rf_reliable (p', s')
  | Rf_live (p, s), Rf_live (p', s') -> Proc.equal p p' && Proc.Set.equal s s'
  | Rf_lose (p, q), Rf_lose (p', q') -> Proc.equal p p' && Proc.equal q q'
  | Crash p, Crash p' | Recover p, Recover p' -> Proc.equal p p'
  | Srv_send (a1, b1, m), Srv_send (a2, b2, m')
  | Srv_deliver (a1, b1, m), Srv_deliver (a2, b2, m') ->
      Server.equal a1 a2 && Server.equal b1 b2 && m = m'
  | Fd_change (s, set), Fd_change (s', set') ->
      Server.equal s s' && Server.Set.equal set set'
  | Client_join (p, s), Client_join (p', s')
  | Client_leave (p, s), Client_leave (p', s') ->
      Proc.equal p p' && Server.equal s s'
  | Sym_deliver (p, q, ts, m), Sym_deliver (p', q', ts', m') ->
      Proc.equal p p' && Proc.equal q q' && ts = ts' && String.equal m m'
  | ( ( App_send _ | App_deliver _ | App_view _ | Block _ | Block_ok _
      | Mb_start_change _ | Mb_view _ | Rf_send _ | Rf_deliver _
      | Rf_reliable _ | Rf_live _ | Rf_lose _ | Crash _ | Recover _
      | Srv_send _ | Srv_deliver _ | Fd_change _ | Client_join _
      | Client_leave _ | Sym_deliver _ ),
      _ ) -> false

let pp ppf = function
  | App_send (p, m) -> Fmt.pf ppf "send_%a(%a)" Proc.pp p Msg.App_msg.pp m
  | App_deliver (p, q, m) ->
      Fmt.pf ppf "deliver_%a(%a,%a)" Proc.pp p Proc.pp q Msg.App_msg.pp m
  | App_view (p, v, t) ->
      Fmt.pf ppf "view_%a(%a,T=%a)" Proc.pp p View.pp v Proc.Set.pp t
  | Block p -> Fmt.pf ppf "block_%a()" Proc.pp p
  | Block_ok p -> Fmt.pf ppf "block_ok_%a()" Proc.pp p
  | Mb_start_change (p, cid, set) ->
      Fmt.pf ppf "mbrshp.start_change_%a(%a,%a)" Proc.pp p View.Sc_id.pp cid
        Proc.Set.pp set
  | Mb_view (p, v) -> Fmt.pf ppf "mbrshp.view_%a(%a)" Proc.pp p View.pp v
  | Rf_send (p, set, m) ->
      Fmt.pf ppf "co_rfifo.send_%a(%a,%a)" Proc.pp p Proc.Set.pp set Msg.Wire.pp m
  | Rf_deliver (p, q, m) ->
      Fmt.pf ppf "co_rfifo.deliver_{%a,%a}(%a)" Proc.pp p Proc.pp q Msg.Wire.pp m
  | Rf_reliable (p, set) ->
      Fmt.pf ppf "co_rfifo.reliable_%a(%a)" Proc.pp p Proc.Set.pp set
  | Rf_live (p, set) -> Fmt.pf ppf "co_rfifo.live_%a(%a)" Proc.pp p Proc.Set.pp set
  | Rf_lose (p, q) -> Fmt.pf ppf "co_rfifo.lose(%a,%a)" Proc.pp p Proc.pp q
  | Crash p -> Fmt.pf ppf "crash_%a()" Proc.pp p
  | Recover p -> Fmt.pf ppf "recover_%a()" Proc.pp p
  | Srv_send (s, s', m) ->
      Fmt.pf ppf "srv.send_{%a->%a}(%a)" Server.pp s Server.pp s' Srv_msg.pp m
  | Srv_deliver (s, s', m) ->
      Fmt.pf ppf "srv.deliver_{%a->%a}(%a)" Server.pp s Server.pp s' Srv_msg.pp m
  | Fd_change (s, set) ->
      Fmt.pf ppf "fd_change_%a(%a)" Server.pp s Server.Set.pp set
  | Client_join (p, s) -> Fmt.pf ppf "join(%a@%a)" Proc.pp p Server.pp s
  | Client_leave (p, s) -> Fmt.pf ppf "leave(%a@%a)" Proc.pp p Server.pp s
  | Sym_deliver (p, q, ts, m) ->
      Fmt.pf ppf "sym_deliver_%a(%a,t%d,%S)" Proc.pp p Proc.pp q ts m

let to_string a = Fmt.str "%a" pp a
