(* Membership-server identifiers (paper §1, Figure 1).

   Servers live in the same integer id space as processes but are
   rendered distinctly in traces. *)

type t = int

let compare = Int.compare
let equal = Int.equal
let of_int i =
  if i < 0 then invalid_arg "Server.of_int: negative server id";
  i

let to_int s = s
let pp ppf s = Fmt.pf ppf "s%d" s

let write b s = Bin.w_int b s

let read r =
  let i = Bin.r_int r ~what:"server" in
  if i < 0 then Bin.bad_value ~what:"server" "negative server id";
  i

module Set = Proc.Set
module Map = Proc.Map
