(** Membership-server identifiers (paper §1, Figure 1).

    Servers share the integer id space with processes but render
    distinctly (["s<i>"]) in traces. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool

val of_int : int -> t
(** @raise Invalid_argument if negative. *)

val to_int : t -> int
val pp : Format.formatter -> t -> unit

val write : Bin.wbuf -> t -> unit

val read : Bin.reader -> t
(** @raise Bin.Error on a negative or truncated identifier. *)

module Set : module type of Proc.Set
module Map : module type of Proc.Map
