(* Seeded chaos: sample structured-random fault schedules, judge each
   against the full oracle battery, shrink what fails.

   A sampled schedule is not arbitrary noise — it has the shape the
   paper's scenarios have: stabilize, then a bounded number of fault
   blocks (partition / heal / crash / restart / knob spike / traffic,
   each followed by a bounded run that leaves the system mid-protocol
   as often as not), then a deterministic cool-down that restarts
   every crashed client, heals, restores the knobs, sends one last
   traffic batch, settles, and demands convergence. So every sample
   asks the acid-test question: after arbitrary faults stop, does the
   service reconverge to one agreed view with consistent transitional
   sets — with every spec monitor and invariant green along the way?

   Sampling is a pure function of (seed, config); round [i] of a find
   uses seed*10_000 + i, so a found schedule's name alone ("chaos-N")
   is enough to regenerate it. *)

open Vsgc_types
module Rng = Vsgc_ioa.Rng
module Node_id = Vsgc_wire.Node_id
module Loopback = Vsgc_net.Loopback

type config = {
  clients : int;
  servers : int;
  layer : Vsgc_core.Endpoint.layer;
  arm : [ `Gcs | `Sym ];
  knobs : Loopback.knobs;
  fault_blocks : int;
  corruption : bool;
      (* sample state-corruption events (DESIGN.md §13) alongside the
         crash-fault classes; only detectable fields, so a green run
         means detected-and-rejoined, never silently-lucky *)
}

let default_config =
  {
    clients = 3;
    servers = 2;
    layer = `Full;
    arm = `Gcs;
    knobs = { Loopback.delay = 1; drop = 0.0; reorder = 0.0 };
    fault_blocks = 4;
    corruption = false;
  }

let all_ids c =
  List.init c.clients Node_id.client
  @ List.init c.servers (fun s -> Node_id.server (Server.of_int s))

let sample ~seed (c : config) : Schedule.t =
  let rng = Rng.make seed in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* Stabilize: joins settle into a first common view, one clean
     traffic batch proves the fault-free path. *)
  emit Schedule.Settle;
  emit (Schedule.Traffic 1);
  emit Schedule.Settle;
  let crashed = ref Proc.Set.empty in
  let partitioned = ref false in
  let live () =
    List.filter (fun p -> not (Proc.Set.mem p !crashed)) (List.init c.clients Fun.id)
  in
  for _ = 1 to c.fault_blocks do
    let choices =
      List.concat
        [
          [ `Partition; `Spike; `Traffic ];
          (if !partitioned then [ `Heal ] else []);
          (match live () with [] -> [] | _ -> [ `Crash ]);
          (if Proc.Set.is_empty !crashed then [] else [ `Restart ]);
          (match (c.corruption, live ()) with
          | true, _ :: _ -> [ `Corrupt ]
          | _ -> []);
        ]
    in
    (match Rng.pick rng choices with
    | `Partition ->
        let ids = Rng.shuffle rng (all_ids c) in
        let cut = 1 + Rng.int rng (List.length ids - 1) in
        let left = List.filteri (fun i _ -> i < cut) ids in
        let right = List.filteri (fun i _ -> i >= cut) ids in
        partitioned := true;
        emit (Schedule.Partition [ left; right ])
    | `Heal ->
        partitioned := false;
        emit Schedule.Heal
    | `Crash ->
        let p = Rng.pick rng (live ()) in
        crashed := Proc.Set.add p !crashed;
        emit (Schedule.Crash p)
    | `Restart ->
        let p = Rng.pick rng (Proc.Set.elements !crashed) in
        crashed := Proc.Set.remove p !crashed;
        emit (Schedule.Restart p)
    | `Spike ->
        emit
          (Schedule.Delay_spike
             {
               Loopback.delay = 1 + Rng.int rng 5;
               drop = Rng.pick rng [ 0.0; 0.2; 0.4 ];
               reorder = Rng.pick rng [ 0.0; 0.25 ];
             })
    | `Corrupt ->
        (* Detectable fields only: the guards catch the corruption at
           the next round's scan and the §8 rejoin heals it well within
           the block's run — so every block of rounds that follows, and
           the cool-down's Converged, still demand a green outcome. *)
        let p = Rng.pick rng (live ()) in
        let field = Rng.pick rng Vsgc_core.Endpoint.detectable_corruptions in
        emit (Schedule.Corrupt { target = p; field; salt = Rng.int rng 1000 })
    | `Traffic -> emit (Schedule.Traffic (1 + Rng.int rng 2)));
    emit (Schedule.Run (5 + Rng.int rng 40))
  done;
  (* Cool-down: all faults lifted, then the convergence question. *)
  Proc.Set.iter (fun p -> emit (Schedule.Restart p)) !crashed;
  if !partitioned then emit Schedule.Heal;
  emit (Schedule.Delay_spike c.knobs);
  emit (Schedule.Traffic 1);
  emit Schedule.Settle;
  emit Schedule.Converged;
  {
    Schedule.conf =
      {
        name = Fmt.str "chaos-%d" seed;
        seed;
        clients = c.clients;
        servers = c.servers;
        layer = c.layer;
        arm = c.arm;
        knobs = c.knobs;
        expect = None;
        fingerprint = None;
      };
    events = List.rev !events;
  }

(* -- Shrinking ------------------------------------------------------------ *)

let reproduces (s : Schedule.t) kind events =
  match Inject.run_tolerant { s with events } with
  | Some v -> String.equal v.Inject.kind kind
  | None -> false

(* ddmin over the event list, preserving the violation kind; the
   result is accepted only if a STRICT replay still reproduces it
   (tolerant replay may have been carried by skipped events). *)
let shrink (s : Schedule.t) (v : Inject.violation) =
  let events = Vsgc_explore.Shrink.ddmin (reproduces s v.kind) s.events in
  let candidate = { s with events } in
  match (Inject.run candidate).verdict with
  | Error v' when String.equal v'.kind v.kind -> candidate
  | Ok () | Error _ -> s
  | exception _ -> s

(* -- The find loop -------------------------------------------------------- *)

type found = {
  schedule : Schedule.t;  (* shrunk, expect set to the violation kind *)
  violation : Inject.violation;
  round : int;
  events_before_shrink : int;
}

let round_seed ~seed i = (seed * 10_000) + i

let find ?(rounds = 50) ?(log = fun _ -> ()) ~seed (c : config) =
  let rec go i =
    if i >= rounds then None
    else begin
      let s = sample ~seed:(round_seed ~seed i) c in
      log
        (Fmt.str "round %d/%d: %s (%d events)" (i + 1) rounds s.Schedule.conf.name
           (List.length s.Schedule.events));
      match (Inject.run s).verdict with
      | Ok () -> go (i + 1)
      | Error v ->
          log (Fmt.str "round %d: %a — shrinking" (i + 1) Inject.pp_violation v);
          let expecting =
            {
              s with
              Schedule.conf = { s.Schedule.conf with expect = Some v.kind };
            }
          in
          let shrunk = shrink expecting v in
          Some
            {
              schedule = shrunk;
              violation = v;
              round = i;
              events_before_shrink = List.length s.Schedule.events;
            }
    end
  in
  go 0

(* -- The detection-find loop ---------------------------------------------- *)

(* A detection witness is the dual of a violation: a corruption-enabled
   sample whose run is GREEN but whose harness log shows the guards
   fired — proof the detect-and-rejoin path ran end to end. Shrunk with
   the same ddmin, preserving "clean run with at least one detection"
   (strict replay: a candidate that only detects thanks to skipped
   events is rejected), and pinned with expect detected-and-rejoined. *)

let detection_found (s : Schedule.t) events =
  match Inject.run { s with events } with
  | { Inject.verdict = Ok (); net; _ } ->
      Vsgc_harness.Net_system.detections net <> []
  | { Inject.verdict = Error _; _ } -> false
  | exception _ -> false

type found_detection = {
  schedule : Schedule.t;  (* shrunk, expect set to detected-and-rejoined *)
  detections : (Proc.t * string * int) list;
  round : int;
}

let find_detection ?(rounds = 50) ?(log = fun _ -> ()) ~seed (c : config) =
  let c = { c with corruption = true } in
  let rec go i =
    if i >= rounds then None
    else begin
      let s = sample ~seed:(round_seed ~seed i) c in
      log
        (Fmt.str "round %d/%d: %s (%d events)" (i + 1) rounds s.Schedule.conf.name
           (List.length s.Schedule.events));
      match Inject.run s with
      | { Inject.verdict = Ok (); net; _ }
        when Vsgc_harness.Net_system.detections net <> [] ->
          log (Fmt.str "round %d: detected-and-rejoined — shrinking" (i + 1));
          let expecting =
            {
              s with
              Schedule.conf =
                { s.Schedule.conf with expect = Some Inject.detected_kind };
            }
          in
          let events =
            Vsgc_explore.Shrink.ddmin (detection_found expecting)
              expecting.Schedule.events
          in
          let candidate = { expecting with Schedule.events } in
          let schedule, dets =
            match Inject.run candidate with
            | { Inject.verdict = Ok (); net = net'; _ }
              when Vsgc_harness.Net_system.detections net' <> [] ->
                (candidate, Vsgc_harness.Net_system.detections net')
            | _ -> (expecting, Vsgc_harness.Net_system.detections net)
            | exception _ -> (expecting, Vsgc_harness.Net_system.detections net)
          in
          Some { schedule; detections = dets; round = i }
      | _ -> go (i + 1)
    end
  in
  go 0
