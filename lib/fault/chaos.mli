(** Seeded chaos: sample structured-random fault schedules, judge each
    against the full oracle battery, shrink what fails.

    Every sample stabilizes first, applies a bounded number of fault
    blocks (partition / heal / crash / restart / knob spike / traffic,
    each followed by a bounded run), then lifts every fault and
    demands convergence — so each run asks whether the service
    reconverges to one agreed view with consistent transitional sets
    after the faults stop, with every monitor and invariant green
    along the way. *)

type config = {
  clients : int;
  servers : int;
  layer : Vsgc_core.Endpoint.layer;
  knobs : Vsgc_net.Loopback.knobs;  (** baseline; spikes deviate from it *)
  fault_blocks : int;  (** fault events per sampled schedule *)
}

val default_config : config
(** 3 clients, 2 servers, [`Full] layer, delay-1 knobs, 4 blocks. *)

val sample : seed:int -> config -> Schedule.t
(** Pure: equal (seed, config) give equal schedules. *)

val round_seed : seed:int -> int -> int
(** The sample seed used by round [i] of {!find} — a found schedule
    named "chaos-N" regenerates as [sample ~seed:N]. *)

val shrink : Schedule.t -> Inject.violation -> Schedule.t
(** ddmin the event list while preserving the violation kind; returns
    the input unchanged when the shrunk candidate does not strictly
    reproduce. *)

type found = {
  schedule : Schedule.t;
      (** shrunk, with [expect] set to the violation kind *)
  violation : Inject.violation;
  round : int;
  events_before_shrink : int;
}

val find :
  ?rounds:int -> ?log:(string -> unit) -> seed:int -> config -> found option
(** Sample and judge up to [rounds] schedules (default 50); shrink and
    return the first failure. [None] = everything was green. *)
