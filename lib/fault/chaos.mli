(** Seeded chaos: sample structured-random fault schedules, judge each
    against the full oracle battery, shrink what fails.

    Every sample stabilizes first, applies a bounded number of fault
    blocks (partition / heal / crash / restart / knob spike / traffic,
    each followed by a bounded run), then lifts every fault and
    demands convergence — so each run asks whether the service
    reconverges to one agreed view with consistent transitional sets
    after the faults stop, with every monitor and invariant green
    along the way. *)

type config = {
  clients : int;
  servers : int;
  layer : Vsgc_core.Endpoint.layer;
  arm : [ `Gcs | `Sym ];
      (** client automaton the sampled deployments host (DESIGN.md §16) *)
  knobs : Vsgc_net.Loopback.knobs;  (** baseline; spikes deviate from it *)
  fault_blocks : int;  (** fault events per sampled schedule *)
  corruption : bool;
      (** sample state-corruption events (DESIGN.md §13) alongside the
          crash-fault classes — detectable fields only, so green still
          means detected-and-rejoined, never silently-lucky *)
}

val default_config : config
(** 3 clients, 2 servers, [`Full] layer, GCS arm, delay-1 knobs,
    4 blocks, no corruption. *)

val sample : seed:int -> config -> Schedule.t
(** Pure: equal (seed, config) give equal schedules. *)

val round_seed : seed:int -> int -> int
(** The sample seed used by round [i] of {!find} — a found schedule
    named "chaos-N" regenerates as [sample ~seed:N]. *)

val shrink : Schedule.t -> Inject.violation -> Schedule.t
(** ddmin the event list while preserving the violation kind; returns
    the input unchanged when the shrunk candidate does not strictly
    reproduce. *)

type found = {
  schedule : Schedule.t;
      (** shrunk, with [expect] set to the violation kind *)
  violation : Inject.violation;
  round : int;
  events_before_shrink : int;
}

val find :
  ?rounds:int -> ?log:(string -> unit) -> seed:int -> config -> found option
(** Sample and judge up to [rounds] schedules (default 50); shrink and
    return the first failure. [None] = everything was green. *)

type found_detection = {
  schedule : Schedule.t;
      (** shrunk, with [expect] set to {!Inject.detected_kind} *)
  detections : (Vsgc_types.Proc.t * string * int) list;
      (** {!Vsgc_harness.Net_system.detections} of the final replay *)
  round : int;
}

val find_detection :
  ?rounds:int -> ?log:(string -> unit) -> seed:int -> config ->
  found_detection option
(** The dual of {!find} with corruption forced on: sample until a run
    is green {e and} the corruption guards fired, ddmin while
    preserving exactly that, and return it as a pinnable
    detected-and-rejoined witness. [None] = no sampled corruption was
    detected within the budget. *)
