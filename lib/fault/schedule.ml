(* Serializable fault schedules.

   A fault schedule is the complete recipe for one faulted execution of
   the NETWORKED runtime: the deployment to rebuild from scratch (how
   many clients and servers, loopback seed and knobs) plus an ordered
   list of events — partitions, heals, §8 crashes and restarts, knob
   spikes, traffic, and bounded or settling runs. Replaying the same
   schedule always reproduces the same execution: the hub's RNG
   trajectory is a function of (seed, knobs, fault history) alone, and
   every event is applied at a deterministic point of the synchronous
   drive loop.

   Like the explorer's .sched artifacts, every schedule the chaos
   driver finds is saved in this one-line-per-event form, shrunk, and
   checked into test/corpus/ as a .fault regression — with the
   expected violation kind and, once pinned, the exact
   Net_system.fingerprint the replay must reproduce. *)

open Vsgc_types
module Loopback = Vsgc_net.Loopback
module Node_id = Vsgc_wire.Node_id
module Sysconf = Vsgc_explore.Sysconf

type conf = {
  name : string;
  seed : int;
  clients : int;
  servers : int;  (* 0 = scripted membership (no Joins, no view churn) *)
  layer : Vsgc_core.Endpoint.layer;
  arm : [ `Gcs | `Sym ];  (* which client automaton the nodes host *)
  knobs : Loopback.knobs;
  expect : string option;  (* violation kind this schedule reproduces *)
  fingerprint : string option;  (* pinned deployment fingerprint *)
}

type event =
  | Partition of Node_id.t list list
      (* classes keep their internal links; everything across — and
         every node listed in no class — goes down *)
  | Heal
  | Crash of Proc.t
  | Restart of Proc.t
  | Delay_spike of Loopback.knobs  (* replace the hub default knobs *)
  | Link of { a : Node_id.t; b : Node_id.t; up : bool }
  | Corrupt of { target : Proc.t; field : Vsgc_core.Endpoint.corruption; salt : int }
      (* seeded state corruption of the target client's end-point
         (DESIGN.md §13) — applied between drive rounds; the next
         round's self-check scan decides detected vs diverged *)
  | Send of { from : Proc.t; payload : string }
  | Traffic of int  (* every non-crashed client multicasts k payloads *)
  | Run of int  (* exactly k drive rounds, quiescent or not *)
  | Settle  (* run to quiescence, then the invariant battery *)
  | Converged  (* convergence-after-heal check over the survivors *)

type t = { conf : conf; events : event list }

let with_fingerprint t fingerprint =
  { t with conf = { t.conf with fingerprint = Some fingerprint } }

(* -- Printing ----------------------------------------------------------- *)

let node_id_to_string = Node_id.to_string

let node_id_of_string ~fail s =
  if String.length s >= 2 then
    let n = String.sub s 1 (String.length s - 1) in
    match (s.[0], int_of_string_opt n) with
    | 'p', Some k when k >= 0 -> Node_id.client k
    | 's', Some k when k >= 0 -> Node_id.server (Server.of_int k)
    | _ -> fail ()
  else fail ()

let classes_to_string classes =
  String.concat "|"
    (List.map
       (fun cls -> String.concat "," (List.map node_id_to_string cls))
       classes)

let knob_fields (k : Loopback.knobs) =
  Fmt.str "%d %g %g" k.delay k.drop k.reorder

let event_to_string = function
  | Partition classes -> Fmt.str "partition %s" (classes_to_string classes)
  | Heal -> "heal"
  | Crash p -> Fmt.str "crash %d" p
  | Restart p -> Fmt.str "restart %d" p
  | Delay_spike k -> Fmt.str "spike %s" (knob_fields k)
  | Link { a; b; up } ->
      Fmt.str "link %s %s %s" (node_id_to_string a) (node_id_to_string b)
        (if up then "up" else "down")
  | Corrupt { target; field; salt } ->
      Fmt.str "corrupt %d %s %d" target
        (Vsgc_core.Endpoint.corruption_to_string field)
        salt
  | Send { from; payload } -> Fmt.str "send %d %s" from (String.escaped payload)
  | Traffic k -> Fmt.str "traffic %d" k
  | Run k -> Fmt.str "run %d" k
  | Settle -> "settle"
  | Converged -> "converged"

let pp_event ppf e = Fmt.string ppf (event_to_string e)

let pp ppf t =
  Fmt.pf ppf "@[<v>fault %s (%dc/%ds%s seed %d, %d events)@,%a@]" t.conf.name
    t.conf.clients t.conf.servers
    (match t.conf.arm with `Gcs -> "" | `Sym -> " sym")
    t.conf.seed
    (List.length t.events)
    (Fmt.list ~sep:Fmt.cut pp_event)
    t.events

let to_string t =
  let b = Buffer.create 1024 in
  let line fmt =
    Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
  in
  line "vsgc-fault 1";
  line "name %s" t.conf.name;
  line "seed %d" t.conf.seed;
  line "clients %d" t.conf.clients;
  line "servers %d" t.conf.servers;
  line "layer %s" (Sysconf.layer_to_string t.conf.layer);
  (* The header is omitted for the default arm, so every pre-existing
     schedule round-trips byte-identically. *)
  (match t.conf.arm with `Gcs -> () | `Sym -> line "arm sym");
  line "knobs %s" (knob_fields t.conf.knobs);
  (match t.conf.expect with
  | Some e -> line "expect %s" e
  | None -> line "expect clean");
  (match t.conf.fingerprint with
  | Some fp -> line "fingerprint %s" fp
  | None -> ());
  List.iter (fun e -> line "%s" (event_to_string e)) t.events;
  Buffer.contents b

(* -- Parsing ------------------------------------------------------------ *)

exception Parse_error of string

let fail_parse fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* [rest_after line k] is the line with its first [k] space-separated
   fields removed — for trailing fields that may contain spaces. *)
let rest_after line k =
  let len = String.length line in
  let rec skip i k =
    if k = 0 then i
    else
      match String.index_from_opt line i ' ' with
      | Some j -> skip (j + 1) (k - 1)
      | None -> len
  in
  String.sub line (skip 0 k) (len - skip 0 k)

let unescape s =
  try Scanf.unescaped s
  with Scanf.Scan_failure _ -> fail_parse "bad escape in %S" s

let node_id s =
  node_id_of_string s ~fail:(fun () -> fail_parse "bad node id %S" s)

let classes_of_string s =
  List.map
    (fun cls ->
      match String.split_on_char ',' cls with
      | [ "" ] | [] -> fail_parse "empty partition class in %S" s
      | ids -> List.map node_id ids)
    (String.split_on_char '|' s)

let knobs_of_fields ~d ~dr ~re : Loopback.knobs =
  match (int_of_string_opt d, float_of_string_opt dr, float_of_string_opt re) with
  | Some delay, Some drop, Some reorder when delay >= 0 -> { delay; drop; reorder }
  | _ -> fail_parse "bad knobs %S %S %S" d dr re

let event_of_string line =
  match String.split_on_char ' ' line with
  | "partition" :: classes :: _ -> Partition (classes_of_string classes)
  | "heal" :: _ -> Heal
  | "crash" :: p :: _ -> Crash (int_of_string p)
  | "restart" :: p :: _ -> Restart (int_of_string p)
  | "spike" :: d :: dr :: re :: _ -> Delay_spike (knobs_of_fields ~d ~dr ~re)
  | "link" :: a :: b :: state :: _ ->
      let up =
        match state with
        | "up" -> true
        | "down" -> false
        | _ -> fail_parse "bad link state %S (want up|down)" state
      in
      Link { a = node_id a; b = node_id b; up }
  | "corrupt" :: p :: f :: s :: _ -> (
      match Vsgc_core.Endpoint.corruption_of_string f with
      | Some field -> Corrupt { target = int_of_string p; field; salt = int_of_string s }
      | None -> fail_parse "bad corruption field %S" f)
  | "send" :: from :: _ :: _ ->
      Send { from = int_of_string from; payload = unescape (rest_after line 2) }
  | "traffic" :: k :: _ -> Traffic (int_of_string k)
  | "run" :: k :: _ -> Run (int_of_string k)
  | "settle" :: _ -> Settle
  | "converged" :: _ -> Converged
  | _ -> fail_parse "unrecognized fault event %S" line

let of_string text =
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' text))
  in
  match lines with
  | magic :: rest when magic = "vsgc-fault 1" ->
      let name = ref "unnamed" and expect = ref None and fingerprint = ref None in
      let seed = ref 42 and clients = ref 0 and servers = ref 0 in
      let layer = ref `Full and knobs = ref Loopback.default_knobs in
      let arm = ref `Gcs in
      let events = ref [] in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | "name" :: _ :: _ -> name := rest_after line 1
          | "seed" :: x :: _ -> seed := int_of_string x
          | "clients" :: x :: _ -> clients := int_of_string x
          | "servers" :: x :: _ -> servers := int_of_string x
          | "layer" :: x :: _ -> layer := Sysconf.layer_of_string x
          | "arm" :: x :: _ -> (
              match x with
              | "gcs" -> arm := `Gcs
              | "sym" -> arm := `Sym
              | _ -> fail_parse "bad arm %S (want gcs|sym)" x)
          | "knobs" :: d :: dr :: re :: _ -> knobs := knobs_of_fields ~d ~dr ~re
          | "expect" :: x :: _ ->
              expect := (if x = "clean" then None else Some x)
          | "fingerprint" :: _ :: _ -> fingerprint := Some (rest_after line 1)
          | _ -> events := event_of_string line :: !events)
        rest;
      if !clients <= 0 then
        fail_parse "fault schedule is missing a positive 'clients' header";
      {
        conf =
          {
            name = !name;
            seed = !seed;
            clients = !clients;
            servers = !servers;
            layer = !layer;
            arm = !arm;
            knobs = !knobs;
            expect = !expect;
            fingerprint = !fingerprint;
          };
        events = List.rev !events;
      }
  | first :: _ -> fail_parse "bad magic %S (want \"vsgc-fault 1\")" first
  | [] -> fail_parse "empty fault schedule"

(* -- Files -------------------------------------------------------------- *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
