(* Deterministic fault-schedule injection.

   Rebuilds the networked deployment a schedule describes, attaches
   the service-level spec monitors (WV_RFIFO, VS_RFIFO, TRANS_SET,
   SELF) to it, and applies the events in order. Every Settle runs the
   §6/§7 invariant battery at the quiescent point it creates; the
   final monitor obligations are discharged after the last event. The
   outcome classifies whatever fired first:

     monitor name      a spec monitor rejected the trace
     invariant name    the invariant battery rejected a snapshot
     "stuck"           a run/settle exhausted its budget — the faulted
                       system never returned to quiescence
     "diverged"        the Converged check failed: survivors ended in
                       different views, in a view that does not match
                       the survivor set, or with asymmetric
                       transitional sets

   plus the deployment fingerprint, which is what corpus replays pin.

   Corruption events (DESIGN.md §13) add one expectation kind that is
   NOT a violation: "detected-and-rejoined" demands a clean verdict
   AND a non-empty Net_system.detections — the corruption was caught
   by the local guards and healed through the §8 rejoin. A clean run
   without detections then means the corruption went unnoticed
   (Missing); any violation means it escaped the guards (whatever
   fired first names the divergence). *)

open Vsgc_types
module Net_system = Vsgc_harness.Net_system
module Loopback = Vsgc_net.Loopback

type violation = { kind : string; message : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.kind v.message

exception Diverged of string

let violation_of_exn = function
  | Vsgc_ioa.Monitor.Violation { monitor; message } ->
      Some { kind = monitor; message }
  | Vsgc_checker.Invariants.Invariant_violation { name; message } ->
      Some { kind = name; message }
  | Diverged message -> Some { kind = "diverged"; message }
  | Vsgc_ioa.Sanitizer.Violation d ->
      Some { kind = "sanitize"; message = Vsgc_ioa.Diag.to_string d }
  | Failure message ->
      (* Inside a run the only Failures are exhausted drive budgets
         (Net_system.run, Io_pump.pump) — liveness, not crashes. *)
      Some { kind = "stuck"; message }
  | _ -> None

(* -- Convergence-after-heal ----------------------------------------------- *)

(* All surviving (non-crashed) clients must have ended in one common
   view with mutually consistent transitional sets; under real servers
   that view's membership must be exactly the survivors (a server that
   still carries a dead client, or lost a live one, did not converge). *)
let common_view_failure net =
  let survivors =
    Proc.Set.diff (Net_system.procs net) (Net_system.crashed_clients net)
  in
  if Proc.Set.is_empty survivors then None
  else begin
    let last p = Net_system.last_view_of net p in
    match
      Proc.Set.fold
        (fun p acc ->
          match acc with
          | Error _ -> acc
          | Ok views -> (
              match last p with
              | Some vt -> Ok ((p, vt) :: views)
              | None -> Error p))
        survivors (Ok [])
    with
    | Error p -> Some (Fmt.str "survivor %a never got a view" Proc.pp p)
    | Ok views -> begin
        let p0, (v0, _) = List.hd views in
        match
          List.find_opt (fun (_, (v, _)) -> not (View.equal v v0)) views
        with
        | Some (q, (vq, _)) ->
            Some
              (Fmt.str "survivors disagree on the final view: %a in %a, %a in %a"
                 Proc.pp q View.pp vq Proc.pp p0 View.pp v0)
        | None ->
            let tset q =
              match List.assoc_opt q views with
              | Some (_, t) -> Some t
              | None -> None
            in
            let asymmetric =
              List.find_map
                (fun (p, (_, tp)) ->
                  Proc.Set.fold
                    (fun q acc ->
                      match acc with
                      | Some _ -> acc
                      | None -> (
                          match tset q with
                          | Some tq when not (Proc.Set.mem p tq) -> Some (p, q)
                          | Some _ | None -> None))
                    (Proc.Set.inter tp survivors)
                    None)
                views
            in
            match asymmetric with
            | Some (p, q) ->
                Some
                  (Fmt.str
                     "asymmetric transitional sets in %a: %a in T(%a) but %a \
                      not in T(%a)"
                     View.pp v0 Proc.pp q Proc.pp p Proc.pp p Proc.pp q)
            | None -> None
      end
  end

let convergence_failure ~real_servers net =
  match common_view_failure net with
  | Some _ as f -> f
  | None ->
      let survivors =
        Proc.Set.diff (Net_system.procs net) (Net_system.crashed_clients net)
      in
      if not real_servers || Proc.Set.is_empty survivors then None
      else
        match Net_system.last_view_of net (Proc.Set.min_elt survivors) with
        | Some (v, _) when not (Proc.Set.equal (View.set v) survivors) ->
            Some
              (Fmt.str "final view %a does not match the survivor set %a"
                 View.pp v Proc.Set.pp survivors)
        | Some _ | None -> None

(* -- Applying events ------------------------------------------------------ *)

let build (conf : Schedule.conf) =
  let net =
    Net_system.create ~seed:conf.seed ~knobs:conf.knobs ~layer:conf.layer
      ~arm:conf.arm ~n:conf.clients ~n_servers:conf.servers ()
  in
  let monitors =
    match conf.arm with
    | `Gcs -> Vsgc_spec.All.net_selfstab ()
    | `Sym -> Vsgc_spec.All.net_sym ()
  in
  Net_system.attach_monitors net monitors;
  net

let apply_event ~real_servers ~batch net (ev : Schedule.event) =
  match ev with
  | Schedule.Partition classes -> Net_system.set_partition net classes
  | Schedule.Heal -> Net_system.heal net
  | Schedule.Crash p -> Net_system.crash_client net p
  | Schedule.Restart p -> Net_system.restart_client net p
  | Schedule.Delay_spike k -> Net_system.set_knobs net k
  | Schedule.Corrupt { target; field; salt } ->
      Net_system.corrupt_client net target ~salt field
  | Schedule.Link { a; b; up } ->
      Loopback.set_link (Net_system.hub net) a b ~up
  | Schedule.Send { from; payload } -> Net_system.send net from payload
  | Schedule.Traffic k ->
      incr batch;
      Proc.Set.iter
        (fun p ->
          for i = 1 to k do
            Net_system.send net p (Fmt.str "b%d-%a-%d" !batch Proc.pp p i)
          done)
        (Proc.Set.diff (Net_system.procs net) (Net_system.crashed_clients net))
  | Schedule.Run k -> Net_system.run_ticks net k
  | Schedule.Settle ->
      Net_system.run net;
      Net_system.check_invariants net
  | Schedule.Converged -> (
      match convergence_failure ~real_servers net with
      | Some msg -> raise (Diverged msg)
      | None -> ())

type outcome = {
  verdict : (unit, violation) result;
  fingerprint : string;
  net : Net_system.t;
}

let run (s : Schedule.t) =
  let net = build s.conf in
  let real_servers = s.conf.servers > 0 in
  let batch = ref 0 in
  let verdict =
    match
      List.iter (apply_event ~real_servers ~batch net) s.events;
      Net_system.finish net
    with
    | () -> Ok ()
    | exception e -> (
        match violation_of_exn e with Some v -> Error v | None -> raise e)
  in
  { verdict; fingerprint = Net_system.fingerprint net; net }

(* Tolerant run, for the shrinker: candidate schedules produced by
   deleting events may make later events invalid (a restart of a
   never-crashed client, a crash of an already-crashed one); those
   raise Invalid_argument and are skipped. Returns the violation, if
   one fired. *)
let run_tolerant (s : Schedule.t) =
  let net = build s.conf in
  let real_servers = s.conf.servers > 0 in
  let batch = ref 0 in
  let viol = ref None in
  let classify e =
    match violation_of_exn e with
    | Some v ->
        viol := Some v;
        raise Exit
    | None -> raise e
  in
  (try
     List.iter
       (fun ev ->
         match apply_event ~real_servers ~batch net ev with
         | () -> ()
         | exception Invalid_argument _ -> ()
         | exception e -> classify e)
       s.events;
     match Net_system.finish net with
     | () -> ()
     | exception e -> classify e
   with Exit -> ());
  !viol

(* -- Checking against the recorded expectation ---------------------------- *)

type check_verdict =
  | Reproduced  (** the expected violation kind fired (fingerprint ok) *)
  | Clean_ok  (** no expectation, no violation (fingerprint ok) *)
  | Missing of string  (** expected kind never fired *)
  | Unexpected of violation
  | Fingerprint_mismatch of { expected : string; got : string }

let detected_kind = "detected-and-rejoined"

let check (s : Schedule.t) =
  let o = run s in
  let detected = Net_system.detections o.net <> [] in
  match (o.verdict, s.conf.expect) with
  | Ok (), Some kind when String.equal kind detected_kind && detected ->
      (* not a violation: the corruption was caught by the local guards
         and healed through the §8 rejoin — fall through to the pin *)
      (match s.conf.fingerprint with
      | Some expected when not (String.equal expected o.fingerprint) ->
          Fingerprint_mismatch { expected; got = o.fingerprint }
      | Some _ | None -> Reproduced)
  | Ok (), Some kind -> Missing kind
  | Error v, None -> Unexpected v
  | Error v, Some kind when not (String.equal v.kind kind) -> Unexpected v
  | (Ok () | Error _), _ -> (
      match s.conf.fingerprint with
      | Some expected when not (String.equal expected o.fingerprint) ->
          Fingerprint_mismatch { expected; got = o.fingerprint }
      | Some _ | None -> (
          match s.conf.expect with None -> Clean_ok | Some _ -> Reproduced))
