(** Deterministic fault-schedule injection.

    Rebuilds the networked deployment a {!Schedule.t} describes with
    the service-level spec monitors (WV_RFIFO, VS_RFIFO, TRANS_SET,
    SELF) attached, applies the events in order, runs the §6/§7
    invariant battery at every [Settle], and discharges the residual
    monitor obligations at the end — every faulted run is judged
    against the paper's specifications, not just delivery-log diffs. *)

type violation = { kind : string; message : string }
(** [kind] is a monitor name, an invariant name, ["stuck"] (a drive
    budget ran out before quiescence) or ["diverged"] (the [Converged]
    check failed). *)

val pp_violation : Format.formatter -> violation -> unit

exception Diverged of string

val violation_of_exn : exn -> violation option
(** Classify an exception raised during injection; [None] means it is
    not a specification verdict and should propagate. *)

type outcome = {
  verdict : (unit, violation) result;
  fingerprint : string;  (** {!Vsgc_harness.Net_system.fingerprint} *)
  net : Vsgc_harness.Net_system.t;  (** for post-mortem observation *)
}

val run : Schedule.t -> outcome
(** Build and inject. Deterministic: equal schedules give equal
    outcomes, including the fingerprint. *)

val run_tolerant : Schedule.t -> violation option
(** Shrinker variant: events invalidated by a deletion (e.g. a restart
    of a never-crashed client) are skipped instead of failing. *)

val detected_kind : string
(** ["detected-and-rejoined"]: the one [expect] kind that is not a
    violation (DESIGN.md §13). {!check} judges it as a clean verdict
    {e plus} non-empty {!Vsgc_harness.Net_system.detections} — the
    corruption was caught by the local guards and healed through the
    §8 rejoin; a clean run without detections is [Missing]. *)

type check_verdict =
  | Reproduced  (** expected violation kind fired (fingerprint ok) *)
  | Clean_ok  (** no expectation, no violation (fingerprint ok) *)
  | Missing of string  (** the expected kind never fired *)
  | Unexpected of violation
  | Fingerprint_mismatch of { expected : string; got : string }

val check : Schedule.t -> check_verdict
(** Judge a schedule against its [expect] header and, when present,
    its pinned fingerprint — what corpus replays and CI run. *)
