(** Serializable fault schedules over the networked runtime.

    A fault schedule rebuilds a {!Vsgc_harness.Net_system} deployment
    from scratch and applies an ordered list of fault events to it —
    partitions, heals, §8 crashes and restarts, knob spikes, traffic,
    bounded and settling runs. Same schedule, same execution: the hub
    RNG trajectory is a function of (seed, knobs, fault history), and
    every event lands at a deterministic point of the synchronous
    drive loop (DESIGN.md §11).

    Schedules are saved one human-readable line per event (magic
    ["vsgc-fault 1"]) with an [expect] header naming the violation
    kind they reproduce — or [clean] — and optionally a pinned
    {!Vsgc_harness.Net_system.fingerprint} a replay must match. *)

open Vsgc_types

type conf = {
  name : string;
  seed : int;
  clients : int;
  servers : int;
      (** 0 = scripted membership: no Joins and no fault-driven view
          churn; partitions then only perturb message timing *)
  layer : Vsgc_core.Endpoint.layer;
  arm : [ `Gcs | `Sym ];
      (** which client automaton the nodes host: the scripted
          application client ([`Gcs], the default) or the symmetric
          total-order client of DESIGN.md §16 ([`Sym]). Text form:
          an optional [arm sym] header, omitted for [`Gcs] so
          pre-existing schedules parse and round-trip unchanged *)
  knobs : Vsgc_net.Loopback.knobs;
  expect : string option;  (** violation kind, [None] = clean *)
  fingerprint : string option;  (** pinned deployment fingerprint *)
}

type event =
  | Partition of Vsgc_wire.Node_id.t list list
      (** classes keep their internal links; links across classes —
          and to nodes listed in no class — go down *)
  | Heal
  | Crash of Proc.t  (** §8 crash of a client node *)
  | Restart of Proc.t  (** §8 recovery under the original identity *)
  | Delay_spike of Vsgc_net.Loopback.knobs
      (** replace the hub-wide default knobs from this point on *)
  | Link of { a : Vsgc_wire.Node_id.t; b : Vsgc_wire.Node_id.t; up : bool }
      (** surgical single-link control (partitions generalize this) *)
  | Corrupt of { target : Proc.t; field : Vsgc_core.Endpoint.corruption; salt : int }
      (** seeded state corruption of the target client's end-point
          (DESIGN.md §13), applied between drive rounds; the next
          round's self-check scan decides detected vs diverged. Text
          form: [corrupt <p> <field> <salt>] *)
  | Send of { from : Proc.t; payload : string }
  | Traffic of int
      (** every currently non-crashed client multicasts this many
          deterministically-labelled payloads *)
  | Run of int  (** exactly that many drive rounds, quiescent or not *)
  | Settle  (** run to quiescence, then the §6/§7 invariant battery *)
  | Converged  (** convergence check over the surviving clients *)

type t = { conf : conf; events : event list }

val with_fingerprint : t -> string -> t

(** {1 Text form} *)

exception Parse_error of string

val event_to_string : event -> string
val to_string : t -> string

val of_string : string -> t
(** @raise Parse_error *)

val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Files} *)

val save : t -> string -> unit

val load : string -> t
(** @raise Parse_error on malformed content, [Sys_error] on I/O. *)
