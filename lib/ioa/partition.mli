(** The planned multicore partition (DESIGN.md §17): components grouped
    by static participation over a probe action set. Actions internal
    to one group may be performed by that group's domain without
    synchronization (a participant's step touches only its own state
    ref); actions spanning groups are barrier actions, performed only
    by the master between parallel quanta. The probe set decides work
    placement only — safety comes from the exact per-action
    {!internal_to} guard the racy engine applies at run time, and the
    [vet domains] pass audits that no declared footprint interferes
    across the planned groups. *)

open Vsgc_types

type t

val participants : Component.packed array -> Action.t -> int list
(** Static participants of [a]: every component that could own it
    ([emits]) or takes its step ([accepts]), ascending. *)

val compute : probe:Action.t list -> Component.packed array -> t
(** Union-find over the participants of every probe action. Group ids
    are dense and ordered by smallest member — canonical for a given
    composition and probe set. *)

val group_of : t -> int -> int
val groups : t -> int array array
(** Members per group, ascending component indices. *)

val n_groups : t -> int

val internal_to : t -> Component.packed array -> owner:int -> Action.t -> int option
(** [Some g] when the {e exact} participants of [a] under [owner]
    (owner + acceptors) all live in group [g]; [None] for a barrier
    action. *)

val pp : Format.formatter -> t -> unit
