(** Machine-readable diagnostics shared by the vet passes and the
    runtime effect sanitizer.

    One line per finding, stable format:

    {v vet:<pass>:<check>: <subject>: <message> v}

    so CI greps and humans read the same output. A pass that returns an
    empty list is clean; any diagnostic is a wiring error (exit code 1
    in the vet driver). *)

type t = {
  pass : string;
      (** "wiring" | "inherit" | "sched" | "wire" | "effects" | "sanitize" *)
  check : string;  (** e.g. "dangling-output", "undeclared-write" *)
  subject : string;  (** the offending action, component, or file *)
  message : string;
}

val v : pass:string -> check:string -> subject:string -> string -> t

val vf :
  pass:string ->
  check:string ->
  subject:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [vf] is {!v} with a format string for the message. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object (no trailing newline) — printed one per line
    this is the JSONL side of vet's [--json] output contract. *)
