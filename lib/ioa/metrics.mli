(** Execution metrics backing the benchmark tables: action counts by
    category, wire-message copies by kind (an [Rf_send] to k targets
    counts k), and communication rounds (incremented by the
    round-synchronous runner).

    Scalar counters are domain-safe ([Atomic]); {!record} — which also
    feeds the by-kind tables — must stay on the master domain, which
    the parallel executor guarantees by recording merged step logs at
    the barrier (DESIGN.md §17). *)

open Vsgc_types

type t

val create : unit -> t

val record : t -> Action.t -> unit
(** Called by the executor on every performed action. *)

val steps : t -> int
val rounds : t -> int
val add_round : t -> unit

val note_cand_hits : t -> int -> unit
(** Candidate-cache hits: a scheduling read served from a still-valid
    cached list (whole assembled list, or one component's). Bumped by
    the executor; never part of a trace fingerprint. *)

val note_cand_misses : t -> int -> unit
(** Candidate-cache misses: per-component enabled-output rescans. *)

val cand_hits : t -> int
val cand_misses : t -> int

val note_san_steps : t -> int -> unit
(** Steps performed with the effect sanitizer attached. Like the
    candidate-cache counters, sanitizer counters are observability
    only — never part of a trace fingerprint. *)

val note_san_diffs : t -> int -> unit
(** Per-participant shadow-state diffs computed. *)

val note_san_races : t -> int -> unit
(** Declared-independent candidate pairs replayed in both orders. *)

val note_san_violations : t -> int -> unit
(** Footprint violations reported (after deduplication). *)

val san_steps : t -> int
val san_diffs : t -> int
val san_races : t -> int
val san_violations : t -> int
val category_count : t -> Action.category -> int

val sent_count : t -> Msg.Wire.kind -> int
(** Point-to-point copies sent, by wire-message kind. *)

val sent_bytes : t -> Msg.Wire.kind -> int
(** Approximate bytes sent ({!Vsgc_types.Msg.Wire.size_bytes} × copies). *)

val delivered_count : t -> Msg.Wire.kind -> int
val pp : Format.formatter -> t -> unit
