(* The composed-system executor.

   Implements the I/O-automaton composition and fairness model of the
   paper (§2): components share the action vocabulary; when an output
   action fires, every component that accepts it takes the same step
   atomically. Each locally-controlled action is its own task; the
   seeded random scheduler chooses uniformly (optionally weighted) among
   all enabled actions, which makes long executions fair with
   probability 1 — the setting in which the liveness arguments of §7
   apply. *)

open Vsgc_types

type t = {
  components : Component.packed array;
  rng : Rng.t;
  weights : Action.t -> float;
  metrics : Metrics.t;
  mutable monitors : Monitor.t list;
  mutable trace : Action.t list;  (* reversed *)
  mutable trace_len : int;
  keep_trace : bool;
  mutable step_hooks : (Action.t -> unit) list;
  mutable choice_hooks : (int option -> Action.t -> unit) list;
}

let default_weights (a : Action.t) =
  (* Message loss is an adversary move: scenarios opt into it. *)
  match a with Action.Rf_lose _ -> 0.0 | _ -> 1.0

let create ?(seed = 0xC0FFEE) ?(weights = default_weights) ?(keep_trace = true)
    components =
  {
    components = Array.of_list components;
    rng = Rng.make seed;
    weights;
    metrics = Metrics.create ();
    monitors = [];
    trace = [];
    trace_len = 0;
    keep_trace;
    step_hooks = [];
    choice_hooks = [];
  }

let metrics t = t.metrics
let rng t = t.rng
let add_monitor t m = t.monitors <- m :: t.monitors
let add_step_hook t f = t.step_hooks <- f :: t.step_hooks

let add_choice_hook t f = t.choice_hooks <- f :: t.choice_hooks

let trace t = List.rev t.trace
let trace_length t = t.trace_len

let components t = t.components

(* The composition-wide footprint of [a]: the union of every
   component's declared share. Components unrelated to [a] contribute
   Footprint.empty, so this is exactly the joint step's footprint. *)
let footprint t a =
  Array.fold_left
    (fun acc c -> Footprint.union acc (Component.footprint c a))
    Footprint.empty t.components

(* The independence relation the declared footprints induce on this
   composition: two actions are independent when their composition-wide
   footprints do not interfere. The relation is state-independent (it
   depends only on the component set), so it is memoized per action. *)
let independence t =
  let cache : (Action.t, Footprint.t) Hashtbl.t = Hashtbl.create 64 in
  let fp a =
    match Hashtbl.find_opt cache a with
    | Some f -> f
    | None ->
        let f = footprint t a in
        Hashtbl.add cache a f;
        f
  in
  fun a b -> Footprint.independent (fp a) (fp b)

(* All enabled locally-controlled actions, tagged with owner index. *)
let candidates t =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      List.iter (fun a -> acc := (i, a) :: !acc) (Component.outputs c))
    t.components;
  !acc

(* Perform [a] as a step of the whole composition: the owner (if any)
   and every accepting component move together; monitors observe. *)
let perform t ?owner a =
  (* Choice-point capture first: recorders must see the decision even
     when a monitor or invariant hook raises on this very step. *)
  List.iter (fun f -> f owner a) t.choice_hooks;
  Array.iteri
    (fun i c ->
      let is_owner = match owner with Some o -> i = o | None -> false in
      if is_owner || Component.accepts c a then Component.apply c a)
    t.components;
  Metrics.record t.metrics a;
  if t.keep_trace then begin
    t.trace <- a :: t.trace;
    t.trace_len <- t.trace_len + 1
  end;
  List.iter (fun m -> m.Monitor.on_action a) t.monitors;
  List.iter (fun f -> f a) t.step_hooks

(* Inject an environment input (failure-detector event, crash, join...):
   a step of the composition in which the environment is the owner. *)
let inject t a = perform t a

let weighted_pick t cands =
  let weighted =
    List.filter_map
      (fun (i, a) ->
        let w = t.weights a in
        if w > 0.0 then Some (i, a, w) else None)
      cands
  in
  match weighted with
  | [] -> None
  | _ ->
      let total = List.fold_left (fun s (_, _, w) -> s +. w) 0.0 weighted in
      let x = Rng.float t.rng *. total in
      let rec go acc = function
        | [] -> assert false
        | [ (i, a, _) ] -> (i, a)
        | (i, a, w) :: rest ->
            if x < acc +. w then (i, a) else go (acc +. w) rest
      in
      Some (go 0.0 weighted)

(* One scheduler step. Returns false when the system is quiescent (no
   enabled action has positive weight). *)
let step t =
  match weighted_pick t (candidates t) with
  | None -> false
  | Some (i, a) ->
      perform t ~owner:i a;
      true

type outcome = Quiescent of int | Step_limit

(* Run until quiescence or until [stop] holds (checked between steps). *)
let run ?(max_steps = 200_000) ?(stop = fun () -> false) t =
  let rec go n =
    if n >= max_steps then Step_limit
    else if stop () then Quiescent n
    else if step t then go (n + 1)
    else Quiescent n
  in
  go 0

let is_quiescent t =
  List.for_all (fun (_, a) -> t.weights a <= 0.0) (candidates t)

(* Run restricted to actions satisfying [allow] (used by Sync_runner).
   Returns the number of steps taken before no allowed action remains. *)
let run_filtered ?(max_steps = 200_000) t ~allow =
  let rec go n =
    if n >= max_steps then n
    else
      let cands =
        List.filter (fun (_, a) -> allow a) (candidates t)
      in
      match weighted_pick t cands with
      | None -> n
      | Some (i, a) ->
          perform t ~owner:i a;
          go (n + 1)
  in
  go 0

let finish t =
  (* Collect residual monitor obligations; raise on the first failure. *)
  List.iter
    (fun (m : Monitor.t) ->
      match m.at_end () with
      | [] -> ()
      | msg :: _ -> raise (Monitor.Violation { monitor = m.name; message = msg }))
    t.monitors
