(* The composed-system executor.

   Implements the I/O-automaton composition and fairness model of the
   paper (§2): components share the action vocabulary; when an output
   action fires, every component that accepts it takes the same step
   atomically. Each locally-controlled action is its own task; the
   seeded random scheduler chooses uniformly (optionally weighted) among
   all enabled actions, which makes long executions fair with
   probability 1 — the setting in which the liveness arguments of §7
   apply.

   Scheduling is incremental (DESIGN.md §12): a component's enabled
   outputs are a pure function of its state, and its state changes only
   when it participates in a step (owner or acceptor), so [perform]
   invalidates exactly the participants and every other component's
   cached list stays valid. The candidate list is assembled from the
   per-component caches in the same order the full rescan produced, so
   the scheduler's RNG stream — and therefore every recorded schedule
   and fingerprint — is bit-identical to the rescan implementation.
   Harness code mutates component state refs directly (System.send,
   oracle moves), bypassing [perform]; every PUBLIC entry point that
   reads the cache therefore resynchronizes first, and only the internal
   run loop — where all mutation flows through [perform] — trusts the
   incremental invalidation.

   Multicore ([`Parallel], DESIGN.md §17) splits in two along the merge
   knob. [`Deterministic] keeps the sequential decision loop — every
   scheduling decision depends on the post-state of the previous step
   through the RNG, so a free-running parallel scheduler cannot
   reproduce it — and parallelizes the per-step WORK instead: when
   enough per-component candidate lists are dirty, their refresh (a
   pure function of each component's own state) fans out across the
   domain pool and is committed in canonical component order, giving a
   bit-identical candidate list, RNG stream, trace and fingerprint to
   [`Rescan] by construction. [`Racy] is the footprint-partitioned
   engine: components are grouped by static participation
   ({!Partition}), each group steps on its own domain with its own
   keyed RNG stream for a bounded quantum — performing only actions
   whose exact participants stay inside the group, which is race-free
   because a participant's step touches only its own state ref — and
   the master merges the per-group logs in canonical (group, local
   order) at a barrier, where metrics, monitors and hooks observe the
   merged prefix and cross-group actions are performed sequentially.
   The merged log is a real execution of the composition (each group's
   steps commute with the other groups' — that is what the partition
   means), so the invariant battery and the spec monitors judge it
   as-is; it is reproducible and jobs-independent, but NOT
   fingerprint-identical to [`Rescan]. *)

open Vsgc_types

type mode = [ `Cached | `Rescan | `Parallel ]
type merge = [ `Deterministic | `Racy ]

(* -- Environment knobs (parsed loudly: an unrecognized value warns on
   stderr, naming the accepted values, and falls back to the default —
   it is never silently coerced to some other non-default). *)

let mode_of_env v : (mode * merge) * string option =
  match v with
  | None | Some "" -> ((`Cached, `Deterministic), None)
  | Some "cached" -> ((`Cached, `Deterministic), None)
  | Some "rescan" -> ((`Rescan, `Deterministic), None)
  | Some "parallel" -> ((`Parallel, `Deterministic), None)
  | Some "parallel-racy" -> ((`Parallel, `Racy), None)
  | Some s ->
      ( (`Cached, `Deterministic),
        Some
          (Fmt.str
             "vsgc: unrecognized VSGC_SCHED=%S (accepted: cached, rescan, \
              parallel, parallel-racy); using cached"
             s) )

let sanitize_of_env v : Sanitizer.policy option * string option =
  match v with
  | None | Some "" | Some "0" | Some "off" -> (None, None)
  | Some "collect" -> (Some `Collect, None)
  | Some "1" | Some "on" | Some "raise" -> (Some `Raise, None)
  | Some s ->
      ( None,
        Some
          (Fmt.str
             "vsgc: unrecognized VSGC_SANITIZE=%S (accepted: off, 0, collect, \
              raise, on, 1); sanitizer stays off"
             s) )

let jobs_of_env v : int * string option =
  match v with
  | None | Some "" -> (1, None)
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> (j, None)
      | Some _ | None ->
          ( 1,
            Some
              (Fmt.str
                 "vsgc: unrecognized VSGC_JOBS=%S (want a positive integer); \
                  using 1"
                 s) ))

let warn = function None -> () | Some msg -> prerr_endline msg

(* [VSGC_SCHED=rescan] forces the pre-cache scanning scheduler — the
   CI fingerprint gate replays the corpus under several modes and
   diffs; [parallel] selects the deterministic-merge multicore mode
   (same fingerprints), [parallel-racy] the partitioned engine. *)
let default_mode, default_merge =
  let (m, g), w = mode_of_env (Sys.getenv_opt "VSGC_SCHED") in
  warn w;
  (ref m, ref g)

let set_default_mode m = default_mode := m
let get_default_mode () = !default_mode
let set_default_merge g = default_merge := g
let get_default_merge () = !default_merge

(* [VSGC_SANITIZE] attaches the effect sanitizer to every executor the
   process creates (DESIGN.md §14): [collect] accumulates diagnostics,
   [raise]/[on]/[1] aborts on the first violation — the replay/chaos
   drivers map Sanitizer.Violation to a verdict, so the corpus gate
   runs with the raising policy. *)
let default_sanitize : Sanitizer.policy option ref =
  let s, w = sanitize_of_env (Sys.getenv_opt "VSGC_SANITIZE") in
  warn w;
  ref s

let set_default_sanitize s = default_sanitize := s
let get_default_sanitize () = !default_sanitize

(* [VSGC_JOBS] is the domain-pool width [`Parallel] executors use when
   [?jobs] is omitted. 1 (the default) keeps even [`Parallel] runs on
   the calling domain — correct, just not concurrent. *)
let default_jobs : int ref =
  let j, w = jobs_of_env (Sys.getenv_opt "VSGC_JOBS") in
  warn w;
  ref j

let set_default_jobs j = default_jobs := max 1 j
let get_default_jobs () = !default_jobs

type t = {
  components : Component.packed array;
  rng : Rng.t;
  weights : Action.t -> float;
  metrics : Metrics.t;
  mode : mode;
  merge : merge;  (* [`Parallel] submode; irrelevant otherwise *)
  jobs : int;  (* domain-pool width for [`Parallel] *)
  (* scheduling cache ([`Cached]/[`Parallel] modes) *)
  outs : (int * Action.t) list array;
      (* per component: its enabled outputs in [Component.outputs]
         order, pre-tagged with the owner index *)
  valid : bool array;
  mutable n_dirty : int;  (* components whose cached list is stale *)
  mutable n_enabled : int;  (* valid components with a non-empty list *)
  mutable cand_cache : (int * Action.t) list option;  (* assembled list *)
  mutable monitors : Monitor.t list;
  mutable trace : Action.t list;  (* reversed *)
  mutable trace_len : int;
  keep_trace : bool;
  mutable step_hooks : (Action.t -> unit) list;
  mutable choice_hooks : (int option -> Action.t -> unit) list;
  sanitizer : Sanitizer.t option;
}

let default_weights (a : Action.t) =
  (* Message loss is an adversary move: scenarios opt into it. *)
  match a with Action.Rf_lose _ -> 0.0 | _ -> 1.0

let create ?(seed = 0xC0FFEE) ?(weights = default_weights) ?(keep_trace = true)
    ?mode ?merge ?jobs ?sanitize components =
  let components = Array.of_list components in
  let n = Array.length components in
  let metrics = Metrics.create () in
  let sanitize =
    match sanitize with Some s -> s | None -> !default_sanitize
  in
  {
    components;
    rng = Rng.make seed;
    weights;
    metrics;
    mode = (match mode with Some m -> m | None -> !default_mode);
    merge = (match merge with Some g -> g | None -> !default_merge);
    jobs = (match jobs with Some j -> max 1 j | None -> !default_jobs);
    outs = Array.make n [];
    valid = Array.make n false;
    n_dirty = n;
    n_enabled = 0;
    cand_cache = None;
    monitors = [];
    trace = [];
    trace_len = 0;
    keep_trace;
    step_hooks = [];
    choice_hooks = [];
    sanitizer =
      Option.map
        (fun policy -> Sanitizer.create ~policy components metrics)
        sanitize;
  }

let mode t = t.mode
let merge t = t.merge
let jobs t = t.jobs
let metrics t = t.metrics
let sanitizer t = t.sanitizer
let rng t = t.rng
let add_monitor t m = t.monitors <- m :: t.monitors
let add_step_hook t f = t.step_hooks <- f :: t.step_hooks

let add_choice_hook t f = t.choice_hooks <- f :: t.choice_hooks

let trace t = List.rev t.trace
let trace_length t = t.trace_len

let components t = t.components

(* The composition-wide footprint of [a]: the union of every
   component's declared share. Components unrelated to [a] contribute
   Footprint.empty, so this is exactly the joint step's footprint. *)
let footprint t a =
  Array.fold_left
    (fun acc c -> Footprint.union acc (Component.footprint c a))
    Footprint.empty t.components

(* The independence relation the declared footprints induce on this
   composition: two actions are independent when their composition-wide
   footprints do not interfere. The relation is state-independent (it
   depends only on the component set), so it is memoized per action. *)
let independence t =
  let cache : (Action.t, Footprint.t) Hashtbl.t = Hashtbl.create 64 in
  let fp a =
    match Hashtbl.find_opt cache a with
    | Some f -> f
    | None ->
        let f = footprint t a in
        Hashtbl.add cache a f;
        f
  in
  fun a b -> Footprint.independent (fp a) (fp b)

(* -- The candidate cache ------------------------------------------------- *)

let invalidate t i =
  if t.valid.(i) then begin
    t.valid.(i) <- false;
    if t.outs.(i) <> [] then t.n_enabled <- t.n_enabled - 1;
    t.n_dirty <- t.n_dirty + 1;
    t.cand_cache <- None
  end

(* Drop everything. Public entry points call this because harness code
   mutates component state refs directly, invisibly to [perform]. *)
let resync t =
  if t.mode <> `Rescan then begin
    Array.fill t.valid 0 (Array.length t.valid) false;
    t.n_dirty <- Array.length t.valid;
    t.n_enabled <- 0;
    t.cand_cache <- None
  end

let refresh t i =
  if t.valid.(i) then Metrics.note_cand_hits t.metrics 1
  else begin
    t.outs.(i) <-
      List.map (fun a -> (i, a)) (Component.outputs t.components.(i));
    t.valid.(i) <- true;
    t.n_dirty <- t.n_dirty - 1;
    if t.outs.(i) <> [] then t.n_enabled <- t.n_enabled + 1;
    Metrics.note_cand_misses t.metrics 1
  end

(* All enabled locally-controlled actions, tagged with owner index.

   ORDER IS LOAD-BEARING: the full rescan prepends each component's
   outputs as it scans components 0..n-1, and the weighted pick walks
   the result front to back, so the list order feeds the RNG stream.
   The cached assembly prepends the per-component lists in the same
   scan order and so produces the identical list. *)
let rescan_candidates t =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      List.iter (fun a -> acc := (i, a) :: !acc) (Component.outputs c))
    t.components;
  !acc

(* Fan out only when the refresh round is worth a pool trip: below this
   many dirty components the sequential per-component refresh wins. *)
let par_fanout = 4

(* Refresh every stale per-component list on the domain pool, then
   commit the bookkeeping on the master in canonical index order.
   [Component.outputs] is a pure function of the component's own state
   and the output slots are disjoint, so the fan-out computes exactly
   what the sequential refresh loop would have — this is the whole
   deterministic-merge argument: parallelism lives below the decision
   loop, never beside it. Counter accounting matches the sequential
   path: one miss per refreshed component, one hit per component whose
   list was still valid. *)
let parallel_refresh t =
  let dirty = ref [] in
  Array.iteri (fun i v -> if not v then dirty := i :: !dirty) t.valid;
  let dirty = Array.of_list !dirty in
  let k = Array.length dirty in
  let pool = Dpool.global ~jobs:t.jobs in
  Dpool.run pool
    (fun j ->
      let i = dirty.(j) in
      t.outs.(i) <- List.map (fun a -> (i, a)) (Component.outputs t.components.(i)))
    k;
  Array.iter
    (fun i ->
      t.valid.(i) <- true;
      if t.outs.(i) <> [] then t.n_enabled <- t.n_enabled + 1)
    dirty;
  t.n_dirty <- 0;
  Metrics.note_cand_misses t.metrics k;
  k

let candidates_internal t =
  match t.mode with
  | `Rescan -> rescan_candidates t
  | `Cached | `Parallel -> (
      match t.cand_cache with
      | Some l ->
          Metrics.note_cand_hits t.metrics 1;
          l
      | None ->
          if t.mode = `Parallel && t.jobs > 1 && t.n_dirty >= par_fanout then begin
            let refreshed = parallel_refresh t in
            Metrics.note_cand_hits t.metrics
              (Array.length t.components - refreshed);
            let acc = ref [] in
            Array.iteri
              (fun i _ -> List.iter (fun p -> acc := p :: !acc) t.outs.(i))
              t.components;
            t.cand_cache <- Some !acc;
            !acc
          end
          else begin
            let acc = ref [] in
            Array.iteri
              (fun i _ ->
                refresh t i;
                List.iter (fun p -> acc := p :: !acc) t.outs.(i))
              t.components;
            t.cand_cache <- Some !acc;
            !acc
          end)

let candidates t =
  resync t;
  candidates_internal t

(* Perform [a] as a step of the whole composition: the owner (if any)
   and every accepting component move together; monitors observe. A
   participant's state changed, so its cached outputs are invalidated
   right here — before monitors and hooks run, so the cache is already
   consistent when a monitor raises and the explorer carries on. *)
let perform t ?owner a =
  (* Choice-point capture first: recorders must see the decision even
     when a monitor or invariant hook raises on this very step. *)
  List.iter (fun f -> f owner a) t.choice_hooks;
  (* Shadow snapshot after the decision, before any component moves:
     the sanitizer consumes no randomness and mutates nothing visible,
     so attaching it cannot perturb the schedule. *)
  (match t.sanitizer with Some s -> Sanitizer.pre s ?owner a | None -> ());
  Array.iteri
    (fun i c ->
      let is_owner = match owner with Some o -> i = o | None -> false in
      if is_owner || Component.accepts c a then begin
        Component.apply c a;
        if t.mode <> `Rescan then invalidate t i
      end)
    t.components;
  Metrics.record t.metrics a;
  if t.keep_trace then begin
    t.trace <- a :: t.trace;
    t.trace_len <- t.trace_len + 1
  end;
  (* Diff before monitors run: a monitor raising on this step must not
     hide a footprint lie the very step committed. Race replays restore
     state by value, so the cached candidate lists stay consistent. *)
  (match t.sanitizer with Some s -> Sanitizer.post s ?owner a | None -> ());
  List.iter (fun m -> m.Monitor.on_action a) t.monitors;
  List.iter (fun f -> f a) t.step_hooks

(* Inject an environment input (failure-detector event, crash, join...):
   a step of the composition in which the environment is the owner. *)
let inject t a = perform t a

let weighted_pick_with rng weights cands =
  let weighted =
    List.filter_map
      (fun (i, a) ->
        let w = weights a in
        if w > 0.0 then Some (i, a, w) else None)
      cands
  in
  match weighted with
  | [] -> None
  | _ ->
      let total = List.fold_left (fun s (_, _, w) -> s +. w) 0.0 weighted in
      let x = Rng.float rng *. total in
      let rec go acc = function
        | [] -> assert false
        | [ (i, a, _) ] -> (i, a)
        | (i, a, w) :: rest ->
            if x < acc +. w then (i, a) else go (acc +. w) rest
      in
      Some (go 0.0 weighted)

let weighted_pick t cands = weighted_pick_with t.rng t.weights cands

(* One scheduler step against a trusted cache. The enabled-component
   count gives an O(1) no-candidates check; [weighted_pick] on an empty
   list consumed no randomness in the rescan implementation either, so
   the fast path cannot shift the RNG stream. *)
let step_internal t =
  if t.mode <> `Rescan && t.n_dirty = 0 && t.n_enabled = 0 then false
  else
    match weighted_pick t (candidates_internal t) with
    | None -> false
    | Some (i, a) ->
        perform t ~owner:i a;
        true

(* One scheduler step. Returns false when the system is quiescent (no
   enabled action has positive weight). *)
let step t =
  resync t;
  step_internal t

type outcome = Quiescent of int | Step_limit

(* -- The racy partitioned engine (DESIGN.md §17) ------------------------- *)

(* The planned partition for this composition, probed from the
   currently enabled actions. Work placement only: the engine re-checks
   exact participants per action at perform time. *)
let partition t =
  resync t;
  let probe = List.map snd (candidates_internal t) in
  Partition.compute ~probe t.components

(* Steps a domain takes on its group before the next barrier. *)
let racy_quantum = 64

(* The observation half of [perform], replayed on the master at the
   barrier for every merged step: the components already moved on the
   group's domain, so only the bookkeeping and the observers fire here,
   in canonical merged order. *)
let observe_merged t ~owner a =
  List.iter (fun f -> f (Some owner) a) t.choice_hooks;
  Metrics.record t.metrics a;
  if t.keep_trace then begin
    t.trace <- a :: t.trace;
    t.trace_len <- t.trace_len + 1
  end;
  List.iter (fun m -> m.Monitor.on_action a) t.monitors;
  List.iter (fun f -> f a) t.step_hooks

(* One group's quantum, run on a pool domain: step the group's own
   cached candidate lists with the group's own RNG stream, performing
   only actions whose exact participants stay inside the group. Every
   state ref touched belongs to the group, every value read that could
   vary is group state ([accepts]/[emits]/weights are static), so
   domains proceed with no synchronization until the barrier. *)
let racy_group_run t part ~group ~rng ~budget =
  let m = Array.length group in
  let louts = Array.make m [] in
  let lvalid = Array.make m false in
  let gid = Partition.group_of part group.(0) in
  let internal_memo : (Action.t, bool) Hashtbl.t = Hashtbl.create 64 in
  let internal (i, a) =
    match Hashtbl.find_opt internal_memo a with
    | Some b -> b
    | None ->
        let b = Partition.internal_to part t.components ~owner:i a = Some gid in
        Hashtbl.add internal_memo a b;
        b
  in
  let refresh k =
    if not lvalid.(k) then begin
      let i = group.(k) in
      louts.(k) <-
        List.map (fun a -> (i, a)) (Component.outputs t.components.(i));
      lvalid.(k) <- true
    end
  in
  let log = ref [] in
  let steps = ref 0 in
  (try
     while !steps < budget do
       let cands = ref [] in
       for k = m - 1 downto 0 do
         refresh k;
         List.iter (fun p -> cands := p :: !cands) louts.(k)
       done;
       let cands = List.filter internal !cands in
       match weighted_pick_with rng t.weights cands with
       | None -> raise Exit
       | Some (owner, a) ->
           Array.iteri
             (fun k i ->
               let c = t.components.(i) in
               if i = owner || Component.accepts c a then begin
                 Component.apply c a;
                 lvalid.(k) <- false
               end)
             group;
           log := (owner, a) :: !log;
           incr steps
     done
   with Exit -> ());
  List.rev !log

(* Run loop of the racy engine: parallel quanta, canonical merge,
   sequential cross-group barrier. Fully deterministic and independent
   of [jobs] and of domain timing — each group's evolution depends only
   on its own state and its own RNG stream, and the merge order is
   fixed — but the trace is NOT the [`Rescan] trace: the racy mode is
   gated by the invariant battery and the monitors, not by pinned
   fingerprints. *)
let run_racy ~max_steps ~stop t =
  if t.sanitizer <> None then
    invalid_arg
      "Executor.run: the effect sanitizer requires deterministic merge \
       (racy quanta bypass the per-step shadow diffs)";
  resync t;
  let part = partition t in
  let groups = Partition.groups part in
  let ngroups = Array.length groups in
  let pool = Dpool.global ~jobs:t.jobs in
  (* Per-group RNG streams, split off the master seed stream once at
     partition time — keyed by group index, independent of timing. *)
  let grngs = Array.map (fun _ -> Rng.split t.rng) groups in
  let logs = Array.make ngroups [] in
  (* Sequential tail/fallback: the ordinary cached loop. *)
  let rec tail n =
    if n >= max_steps then Step_limit
    else if stop () then Quiescent n
    else if step_internal t then tail (n + 1)
    else Quiescent n
  in
  (* Cross-group candidates only: internal ones belong to the quanta. *)
  let drain_barrier cap =
    let rec go k =
      if k >= cap then k
      else
        let cross =
          List.filter
            (fun (i, a) ->
              Partition.internal_to part t.components ~owner:i a = None)
            (candidates_internal t)
        in
        match weighted_pick t cross with
        | None -> k
        | Some (i, a) ->
            perform t ~owner:i a;
            go (k + 1)
    in
    go 0
  in
  let rec rounds n =
    if n >= max_steps then Step_limit
    else if stop () then Quiescent n
    else if max_steps - n < ngroups * 2 then tail n
    else begin
      let budget = min racy_quantum ((max_steps - n) / ngroups) in
      Dpool.run pool
        (fun g ->
          logs.(g) <- racy_group_run t part ~group:groups.(g) ~rng:grngs.(g) ~budget)
        ngroups;
      let merged = Array.fold_left (fun acc l -> acc + List.length l) 0 logs in
      Array.iter (List.iter (fun (i, a) -> observe_merged t ~owner:i a)) logs;
      (* The domains moved component state outside [perform]'s view. *)
      resync t;
      let barrier = drain_barrier (max_steps - n - merged) in
      let n = n + merged + barrier in
      if merged = 0 && barrier = 0 then Quiescent n else rounds n
    end
  in
  rounds 0

(* Run until quiescence or until [stop] holds (checked between steps).
   One resync at entry; inside the loop all state changes flow through
   [perform], so the incremental cache is trusted. *)
let run ?(max_steps = 200_000) ?(stop = fun () -> false) t =
  if t.mode = `Parallel && t.merge = `Racy then run_racy ~max_steps ~stop t
  else begin
    resync t;
    let rec go n =
      if n >= max_steps then Step_limit
      else if stop () then Quiescent n
      else if step_internal t then go (n + 1)
      else Quiescent n
    in
    go 0
  end

let is_quiescent t =
  resync t;
  if t.mode <> `Rescan && t.n_dirty = 0 && t.n_enabled = 0 then true
  else
    List.for_all (fun (_, a) -> t.weights a <= 0.0) (candidates_internal t)

(* Run restricted to actions satisfying [allow] (used by Sync_runner).
   Returns the number of steps taken before no allowed action remains. *)
let run_filtered ?(max_steps = 200_000) t ~allow =
  resync t;
  let rec go n =
    if n >= max_steps then n
    else
      let cands =
        List.filter (fun (_, a) -> allow a) (candidates_internal t)
      in
      match weighted_pick t cands with
      | None -> n
      | Some (i, a) ->
          perform t ~owner:i a;
          go (n + 1)
  in
  go 0

let finish t =
  (* Collect residual monitor obligations; raise on the first failure. *)
  List.iter
    (fun (m : Monitor.t) ->
      match m.at_end () with
      | [] -> ()
      | msg :: _ -> raise (Monitor.Violation { monitor = m.name; message = msg }))
    t.monitors
