(* The composed-system executor.

   Implements the I/O-automaton composition and fairness model of the
   paper (§2): components share the action vocabulary; when an output
   action fires, every component that accepts it takes the same step
   atomically. Each locally-controlled action is its own task; the
   seeded random scheduler chooses uniformly (optionally weighted) among
   all enabled actions, which makes long executions fair with
   probability 1 — the setting in which the liveness arguments of §7
   apply.

   Scheduling is incremental (DESIGN.md §12): a component's enabled
   outputs are a pure function of its state, and its state changes only
   when it participates in a step (owner or acceptor), so [perform]
   invalidates exactly the participants and every other component's
   cached list stays valid. The candidate list is assembled from the
   per-component caches in the same order the full rescan produced, so
   the scheduler's RNG stream — and therefore every recorded schedule
   and fingerprint — is bit-identical to the rescan implementation.
   Harness code mutates component state refs directly (System.send,
   oracle moves), bypassing [perform]; every PUBLIC entry point that
   reads the cache therefore resynchronizes first, and only the internal
   run loop — where all mutation flows through [perform] — trusts the
   incremental invalidation. *)

open Vsgc_types

type mode = [ `Cached | `Rescan ]

(* [VSGC_SCHED=rescan] forces the pre-cache scanning scheduler — the
   CI fingerprint gate replays the corpus under both modes and diffs. *)
let default_mode : mode ref =
  ref
    (match Sys.getenv_opt "VSGC_SCHED" with
    | Some "rescan" -> `Rescan
    | Some _ | None -> `Cached)

let set_default_mode m = default_mode := m
let get_default_mode () = !default_mode

(* [VSGC_SANITIZE] attaches the effect sanitizer to every executor the
   process creates (DESIGN.md §14): [collect] accumulates diagnostics,
   any other non-empty value ("1", "raise", ...) aborts on the first
   violation — the replay/chaos drivers map Sanitizer.Violation to a
   verdict, so the corpus gate runs with the raising policy. *)
let default_sanitize : Sanitizer.policy option ref =
  ref
    (match Sys.getenv_opt "VSGC_SANITIZE" with
    | None | Some "" | Some "0" | Some "off" -> None
    | Some "collect" -> Some `Collect
    | Some _ -> Some `Raise)

let set_default_sanitize s = default_sanitize := s
let get_default_sanitize () = !default_sanitize

type t = {
  components : Component.packed array;
  rng : Rng.t;
  weights : Action.t -> float;
  metrics : Metrics.t;
  mode : mode;
  (* scheduling cache ([`Cached] mode only) *)
  outs : (int * Action.t) list array;
      (* per component: its enabled outputs in [Component.outputs]
         order, pre-tagged with the owner index *)
  valid : bool array;
  mutable n_dirty : int;  (* components whose cached list is stale *)
  mutable n_enabled : int;  (* valid components with a non-empty list *)
  mutable cand_cache : (int * Action.t) list option;  (* assembled list *)
  mutable monitors : Monitor.t list;
  mutable trace : Action.t list;  (* reversed *)
  mutable trace_len : int;
  keep_trace : bool;
  mutable step_hooks : (Action.t -> unit) list;
  mutable choice_hooks : (int option -> Action.t -> unit) list;
  sanitizer : Sanitizer.t option;
}

let default_weights (a : Action.t) =
  (* Message loss is an adversary move: scenarios opt into it. *)
  match a with Action.Rf_lose _ -> 0.0 | _ -> 1.0

let create ?(seed = 0xC0FFEE) ?(weights = default_weights) ?(keep_trace = true)
    ?mode ?sanitize components =
  let components = Array.of_list components in
  let n = Array.length components in
  let metrics = Metrics.create () in
  let sanitize =
    match sanitize with Some s -> s | None -> !default_sanitize
  in
  {
    components;
    rng = Rng.make seed;
    weights;
    metrics;
    mode = (match mode with Some m -> m | None -> !default_mode);
    outs = Array.make n [];
    valid = Array.make n false;
    n_dirty = n;
    n_enabled = 0;
    cand_cache = None;
    monitors = [];
    trace = [];
    trace_len = 0;
    keep_trace;
    step_hooks = [];
    choice_hooks = [];
    sanitizer =
      Option.map
        (fun policy -> Sanitizer.create ~policy components metrics)
        sanitize;
  }

let mode t = t.mode
let metrics t = t.metrics
let sanitizer t = t.sanitizer
let rng t = t.rng
let add_monitor t m = t.monitors <- m :: t.monitors
let add_step_hook t f = t.step_hooks <- f :: t.step_hooks

let add_choice_hook t f = t.choice_hooks <- f :: t.choice_hooks

let trace t = List.rev t.trace
let trace_length t = t.trace_len

let components t = t.components

(* The composition-wide footprint of [a]: the union of every
   component's declared share. Components unrelated to [a] contribute
   Footprint.empty, so this is exactly the joint step's footprint. *)
let footprint t a =
  Array.fold_left
    (fun acc c -> Footprint.union acc (Component.footprint c a))
    Footprint.empty t.components

(* The independence relation the declared footprints induce on this
   composition: two actions are independent when their composition-wide
   footprints do not interfere. The relation is state-independent (it
   depends only on the component set), so it is memoized per action. *)
let independence t =
  let cache : (Action.t, Footprint.t) Hashtbl.t = Hashtbl.create 64 in
  let fp a =
    match Hashtbl.find_opt cache a with
    | Some f -> f
    | None ->
        let f = footprint t a in
        Hashtbl.add cache a f;
        f
  in
  fun a b -> Footprint.independent (fp a) (fp b)

(* -- The candidate cache ------------------------------------------------- *)

let invalidate t i =
  if t.valid.(i) then begin
    t.valid.(i) <- false;
    if t.outs.(i) <> [] then t.n_enabled <- t.n_enabled - 1;
    t.n_dirty <- t.n_dirty + 1;
    t.cand_cache <- None
  end

(* Drop everything. Public entry points call this because harness code
   mutates component state refs directly, invisibly to [perform]. *)
let resync t =
  if t.mode = `Cached then begin
    Array.fill t.valid 0 (Array.length t.valid) false;
    t.n_dirty <- Array.length t.valid;
    t.n_enabled <- 0;
    t.cand_cache <- None
  end

let refresh t i =
  if t.valid.(i) then Metrics.note_cand_hits t.metrics 1
  else begin
    t.outs.(i) <-
      List.map (fun a -> (i, a)) (Component.outputs t.components.(i));
    t.valid.(i) <- true;
    t.n_dirty <- t.n_dirty - 1;
    if t.outs.(i) <> [] then t.n_enabled <- t.n_enabled + 1;
    Metrics.note_cand_misses t.metrics 1
  end

(* All enabled locally-controlled actions, tagged with owner index.

   ORDER IS LOAD-BEARING: the full rescan prepends each component's
   outputs as it scans components 0..n-1, and the weighted pick walks
   the result front to back, so the list order feeds the RNG stream.
   The cached assembly prepends the per-component lists in the same
   scan order and so produces the identical list. *)
let rescan_candidates t =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      List.iter (fun a -> acc := (i, a) :: !acc) (Component.outputs c))
    t.components;
  !acc

let candidates_internal t =
  match t.mode with
  | `Rescan -> rescan_candidates t
  | `Cached -> (
      match t.cand_cache with
      | Some l ->
          Metrics.note_cand_hits t.metrics 1;
          l
      | None ->
          let acc = ref [] in
          Array.iteri
            (fun i _ ->
              refresh t i;
              List.iter (fun p -> acc := p :: !acc) t.outs.(i))
            t.components;
          t.cand_cache <- Some !acc;
          !acc)

let candidates t =
  resync t;
  candidates_internal t

(* Perform [a] as a step of the whole composition: the owner (if any)
   and every accepting component move together; monitors observe. A
   participant's state changed, so its cached outputs are invalidated
   right here — before monitors and hooks run, so the cache is already
   consistent when a monitor raises and the explorer carries on. *)
let perform t ?owner a =
  (* Choice-point capture first: recorders must see the decision even
     when a monitor or invariant hook raises on this very step. *)
  List.iter (fun f -> f owner a) t.choice_hooks;
  (* Shadow snapshot after the decision, before any component moves:
     the sanitizer consumes no randomness and mutates nothing visible,
     so attaching it cannot perturb the schedule. *)
  (match t.sanitizer with Some s -> Sanitizer.pre s ?owner a | None -> ());
  Array.iteri
    (fun i c ->
      let is_owner = match owner with Some o -> i = o | None -> false in
      if is_owner || Component.accepts c a then begin
        Component.apply c a;
        if t.mode = `Cached then invalidate t i
      end)
    t.components;
  Metrics.record t.metrics a;
  if t.keep_trace then begin
    t.trace <- a :: t.trace;
    t.trace_len <- t.trace_len + 1
  end;
  (* Diff before monitors run: a monitor raising on this step must not
     hide a footprint lie the very step committed. Race replays restore
     state by value, so the cached candidate lists stay consistent. *)
  (match t.sanitizer with Some s -> Sanitizer.post s ?owner a | None -> ());
  List.iter (fun m -> m.Monitor.on_action a) t.monitors;
  List.iter (fun f -> f a) t.step_hooks

(* Inject an environment input (failure-detector event, crash, join...):
   a step of the composition in which the environment is the owner. *)
let inject t a = perform t a

let weighted_pick t cands =
  let weighted =
    List.filter_map
      (fun (i, a) ->
        let w = t.weights a in
        if w > 0.0 then Some (i, a, w) else None)
      cands
  in
  match weighted with
  | [] -> None
  | _ ->
      let total = List.fold_left (fun s (_, _, w) -> s +. w) 0.0 weighted in
      let x = Rng.float t.rng *. total in
      let rec go acc = function
        | [] -> assert false
        | [ (i, a, _) ] -> (i, a)
        | (i, a, w) :: rest ->
            if x < acc +. w then (i, a) else go (acc +. w) rest
      in
      Some (go 0.0 weighted)

(* One scheduler step against a trusted cache. The enabled-component
   count gives an O(1) no-candidates check; [weighted_pick] on an empty
   list consumed no randomness in the rescan implementation either, so
   the fast path cannot shift the RNG stream. *)
let step_internal t =
  if t.mode = `Cached && t.n_dirty = 0 && t.n_enabled = 0 then false
  else
    match weighted_pick t (candidates_internal t) with
    | None -> false
    | Some (i, a) ->
        perform t ~owner:i a;
        true

(* One scheduler step. Returns false when the system is quiescent (no
   enabled action has positive weight). *)
let step t =
  resync t;
  step_internal t

type outcome = Quiescent of int | Step_limit

(* Run until quiescence or until [stop] holds (checked between steps).
   One resync at entry; inside the loop all state changes flow through
   [perform], so the incremental cache is trusted. *)
let run ?(max_steps = 200_000) ?(stop = fun () -> false) t =
  resync t;
  let rec go n =
    if n >= max_steps then Step_limit
    else if stop () then Quiescent n
    else if step_internal t then go (n + 1)
    else Quiescent n
  in
  go 0

let is_quiescent t =
  resync t;
  if t.mode = `Cached && t.n_dirty = 0 && t.n_enabled = 0 then true
  else
    List.for_all (fun (_, a) -> t.weights a <= 0.0) (candidates_internal t)

(* Run restricted to actions satisfying [allow] (used by Sync_runner).
   Returns the number of steps taken before no allowed action remains. *)
let run_filtered ?(max_steps = 200_000) t ~allow =
  resync t;
  let rec go n =
    if n >= max_steps then n
    else
      let cands =
        List.filter (fun (_, a) -> allow a) (candidates_internal t)
      in
      match weighted_pick t cands with
      | None -> n
      | Some (i, a) ->
          perform t ~owner:i a;
          go (n + 1)
  in
  go 0

let finish t =
  (* Collect residual monitor obligations; raise on the first failure. *)
  List.iter
    (fun (m : Monitor.t) ->
      match m.at_end () with
      | [] -> ()
      | msg :: _ -> raise (Monitor.Violation { monitor = m.name; message = msg }))
    t.monitors
